// BufferPool / SpscIndexRing edge cases: exhaustion during a burst,
// slot reuse after cancel / partial drains, and SPSC integrity under a
// real producer/consumer thread pair.  These are the invariants the I/O
// backends lean on — the receive path borrows pool slots across the
// backend boundary, so a pool bug shows up as corruption in whichever
// backend is serving.
#include "runtime/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace dnscup::runtime {
namespace {

TEST(SpscIndexRingTest, PushFailsOnlyWhenFull) {
  SpscIndexRing ring(4);
  // Rounded up to a power of two internally; at least 4 pushes fit.
  int pushed = 0;
  while (ring.push(static_cast<uint32_t>(pushed))) ++pushed;
  EXPECT_GE(pushed, 4);
  // Full: every further push fails without corrupting the contents.
  EXPECT_FALSE(ring.push(999));
  for (int i = 0; i < pushed; ++i) {
    uint32_t value = 0;
    ASSERT_TRUE(ring.pop(value));
    EXPECT_EQ(value, static_cast<uint32_t>(i));
  }
  uint32_t value = 0;
  EXPECT_FALSE(ring.pop(value));
  EXPECT_TRUE(ring.empty());
}

TEST(BufferPoolTest, ExhaustionDuringBurstDropsThenRecovers) {
  constexpr std::size_t kSlots = 8;
  BufferPool pool(kSlots);

  // Burst larger than the pool: the first kSlots datagrams get slots,
  // the rest see nullptr (the caller's drop path).
  std::vector<BufferPool::Slot*> acquired;
  for (std::size_t i = 0; i < kSlots; ++i) {
    BufferPool::Slot* slot = pool.acquire();
    ASSERT_NE(slot, nullptr) << "slot " << i;
    slot->len = static_cast<uint32_t>(i);
    acquired.push_back(slot);
  }
  EXPECT_EQ(pool.acquire(), nullptr);
  EXPECT_EQ(pool.acquire(), nullptr);  // repeated failure is harmless

  // Commit the burst; worker drains half, releases, and the pool serves
  // exactly that many new acquisitions — no slot lost, none duplicated.
  for (BufferPool::Slot* slot : acquired) pool.commit(slot);
  for (std::size_t i = 0; i < kSlots / 2; ++i) {
    BufferPool::Slot* slot = pool.take_filled();
    ASSERT_NE(slot, nullptr);
    pool.release(slot);
  }
  for (std::size_t i = 0; i < kSlots / 2; ++i) {
    EXPECT_NE(pool.acquire(), nullptr) << "recycled slot " << i;
  }
  EXPECT_EQ(pool.acquire(), nullptr);  // the other half is still filled
}

TEST(BufferPoolTest, CancelReturnsSlotWithoutWakingWorker) {
  BufferPool pool(2);
  BufferPool::Slot* slot = pool.acquire();
  ASSERT_NE(slot, nullptr);
  pool.cancel(slot);  // oversize datagram path
  EXPECT_FALSE(pool.has_filled());
  // The cancelled slot is immediately reusable.
  BufferPool::Slot* a = pool.acquire();
  BufferPool::Slot* b = pool.acquire();
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_EQ(pool.acquire(), nullptr);
}

TEST(BufferPoolTest, PartialDrainsNeverDuplicateSlots) {
  constexpr std::size_t kSlots = 16;
  BufferPool pool(kSlots);
  // Interleave partial fills and partial drains; at every step the set
  // of outstanding slot pointers must stay unique.
  std::set<BufferPool::Slot*> outstanding;
  std::vector<BufferPool::Slot*> filled;
  uint32_t tag = 0;
  for (int round = 0; round < 100; ++round) {
    const std::size_t fill = 1 + (round % 5);
    for (std::size_t i = 0; i < fill; ++i) {
      BufferPool::Slot* slot = pool.acquire();
      if (slot == nullptr) break;
      ASSERT_TRUE(outstanding.insert(slot).second)
          << "slot handed out twice while in flight";
      slot->len = tag++;
      pool.commit(slot);
      filled.push_back(slot);
    }
    const std::size_t drain = 1 + (round % 3);
    for (std::size_t i = 0; i < drain; ++i) {
      BufferPool::Slot* slot = pool.take_filled();
      if (slot == nullptr) break;
      ASSERT_FALSE(filled.empty());
      EXPECT_EQ(slot, filled.front()) << "FIFO order broken";
      filled.erase(filled.begin());
      ASSERT_EQ(outstanding.erase(slot), 1u);
      pool.release(slot);
    }
  }
  // Drain the rest and verify the pool is whole again.
  BufferPool::Slot* slot = nullptr;
  while ((slot = pool.take_filled()) != nullptr) {
    ASSERT_EQ(outstanding.erase(slot), 1u);
    pool.release(slot);
  }
  EXPECT_TRUE(outstanding.empty());
  std::size_t free_count = 0;
  while (pool.acquire() != nullptr) ++free_count;
  EXPECT_EQ(free_count, kSlots);
}

TEST(BufferPoolTest, SpscThreadsPreserveEveryPayload) {
  constexpr std::size_t kSlots = 32;
  constexpr uint32_t kMessages = 20000;
  BufferPool pool(kSlots);

  std::atomic<uint64_t> dropped{0};
  std::thread producer([&] {
    for (uint32_t i = 0; i < kMessages; ++i) {
      BufferPool::Slot* slot = nullptr;
      while ((slot = pool.acquire()) == nullptr) {
        dropped.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
      std::memcpy(slot->bytes.data(), &i, sizeof(i));
      slot->len = sizeof(i);
      pool.commit(slot);
    }
  });

  uint32_t expected = 0;
  while (expected < kMessages) {
    BufferPool::Slot* slot = pool.take_filled();
    if (slot == nullptr) {
      std::this_thread::yield();
      continue;
    }
    uint32_t value = 0;
    ASSERT_EQ(slot->len, sizeof(value));
    std::memcpy(&value, slot->bytes.data(), sizeof(value));
    // The free ring is FIFO and the producer retries until a slot frees
    // up, so no message is lost and order is preserved.
    ASSERT_EQ(value, expected);
    ++expected;
    pool.release(slot);
  }
  producer.join();
  EXPECT_FALSE(pool.has_filled());
}

}  // namespace
}  // namespace dnscup::runtime

#include <gtest/gtest.h>

#include <vector>

#include "net/event_loop.h"

namespace dnscup::net {
namespace {

TEST(EventLoop, StartsAtZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(milliseconds(30), [&] { order.push_back(3); });
  loop.schedule(milliseconds(10), [&] { order.push_back(1); });
  loop.schedule(milliseconds(20), [&] { order.push_back(2); });
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), milliseconds(30));
}

TEST(EventLoop, SameTimeFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule(seconds(1), [&order, i] { order.push_back(i); });
  }
  loop.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, ClockAdvancesToEventTime) {
  EventLoop loop;
  SimTime observed = -1;
  loop.schedule(seconds(5), [&] { observed = loop.now(); });
  loop.run_all();
  EXPECT_EQ(observed, seconds(5));
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(seconds(1), [&] { ++fired; });
  loop.schedule(seconds(10), [&] { ++fired; });
  EXPECT_EQ(loop.run_until(seconds(5)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), seconds(5));
  EXPECT_EQ(loop.run_all(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, RunUntilAdvancesClockEvenWithoutEvents) {
  EventLoop loop;
  loop.run_until(seconds(42));
  EXPECT_EQ(loop.now(), seconds(42));
}

TEST(EventLoop, NestedScheduling) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(seconds(1), [&] {
    order.push_back(1);
    loop.schedule(seconds(1), [&] { order.push_back(2); });
  });
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), seconds(2));
}

TEST(EventLoop, ImmediateEventFromCallbackRunsSameTime) {
  EventLoop loop;
  int count = 0;
  loop.schedule(seconds(1), [&] {
    loop.schedule(0, [&] { ++count; });
  });
  loop.run_until(seconds(1));
  EXPECT_EQ(count, 1);
}

TEST(EventLoop, NegativeDelayClamped) {
  EventLoop loop;
  loop.run_until(seconds(10));
  bool fired = false;
  loop.schedule(-seconds(5), [&] { fired = true; });
  loop.run_until(seconds(10));
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.now(), seconds(10));  // never goes backwards
}

TEST(EventLoop, CancelPreventsFiring) {
  EventLoop loop;
  bool fired = false;
  TimerHandle h = loop.schedule(seconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
  loop.run_all();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, CancelAfterFireIsHarmless) {
  EventLoop loop;
  int count = 0;
  TimerHandle h = loop.schedule(seconds(1), [&] { ++count; });
  loop.run_all();
  h.cancel();
  h.cancel();
  EXPECT_EQ(count, 1);
}

TEST(EventLoop, CancelOneOfMany) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(seconds(1), [&] { order.push_back(1); });
  TimerHandle h = loop.schedule(seconds(2), [&] { order.push_back(2); });
  loop.schedule(seconds(3), [&] { order.push_back(3); });
  h.cancel();
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventLoop, DefaultHandleInactive) {
  TimerHandle h;
  EXPECT_FALSE(h.active());
  h.cancel();  // no-op
}

TEST(EventLoop, ScheduleAtAbsoluteTime) {
  EventLoop loop;
  SimTime observed = -1;
  loop.schedule_at(seconds(7), [&] { observed = loop.now(); });
  loop.run_all();
  EXPECT_EQ(observed, seconds(7));
}

TEST(EventLoop, PendingLiveTracksScheduleFireAndCancel) {
  EventLoop loop;
  EXPECT_EQ(loop.pending_live(), 0u);
  TimerHandle a = loop.schedule(seconds(1), [] {});
  TimerHandle b = loop.schedule(seconds(2), [] {});
  loop.schedule(seconds(3), [] {});
  EXPECT_EQ(loop.pending_live(), 3u);

  b.cancel();  // cancellation decrements immediately, not at fire time
  EXPECT_EQ(loop.pending_live(), 2u);
  b.cancel();  // double-cancel must not decrement twice
  EXPECT_EQ(loop.pending_live(), 2u);

  loop.run_until(seconds(1));
  EXPECT_EQ(loop.pending_live(), 1u);
  a.cancel();  // cancel after fire: already counted down, no change
  EXPECT_EQ(loop.pending_live(), 1u);

  loop.run_all();
  EXPECT_EQ(loop.pending_live(), 0u);
}

TEST(EventLoop, MetricsCountersTrackActivity) {
  metrics::MetricsRegistry registry;
  EventLoop loop(&registry);
  TimerHandle h = loop.schedule(seconds(1), [] {});
  loop.schedule(seconds(2), [] {});
  h.cancel();
  loop.run_all();
  EXPECT_EQ(loop.timers_scheduled(), 2u);
  EXPECT_EQ(loop.timers_cancelled(), 1u);
  EXPECT_EQ(loop.events_fired(), 1u);

  const metrics::Snapshot snap = registry.snapshot(loop.now());
  const auto* fired =
      snap.find("event_loop_events_fired", {{"instance", "0"}});
  ASSERT_NE(fired, nullptr);
  EXPECT_EQ(fired->counter_value, 1u);
  const auto* pending =
      snap.find("event_loop_pending", {{"instance", "0"}});
  ASSERT_NE(pending, nullptr);
  EXPECT_DOUBLE_EQ(pending->gauge_value, 0.0);
  const auto* latency =
      snap.find("event_loop_schedule_latency_us", {{"instance", "0"}});
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->histogram.count, 2u);
}

TEST(EventLoop, ManyEventsStressOrder) {
  EventLoop loop;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    loop.schedule(milliseconds((i * 7919) % 1000), [&] {
      if (loop.now() < last) monotone = false;
      last = loop.now();
    });
  }
  loop.run_all();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace dnscup::net

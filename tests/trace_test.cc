#include <gtest/gtest.h>

#include "sim/trace.h"
#include "sim/trace_gen.h"
#include "util/stats.h"
#include "workload/domain_population.h"

namespace dnscup::sim {
namespace {

using dns::Name;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }

TEST(Trace, SerializeParseRoundTrip) {
  std::vector<TraceRecord> records{
      {net::seconds(1), 0, 17, mk("www.a.com"), RRType::kA},
      {net::seconds(2), 1, 18, mk("www.b.org"), RRType::kTXT},
      {net::milliseconds(2500), 2, 19, mk("c.net"), RRType::kA},
  };
  const std::string text = serialize_trace(records);
  const auto parsed = parse_trace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value(), records);
}

TEST(Trace, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_trace("nonsense\n").ok());
  EXPECT_FALSE(parse_trace("1 0 1 not..a..name A\n").ok());
  EXPECT_FALSE(parse_trace("1 0 1 a.com. BOGUS\n").ok());
  EXPECT_TRUE(parse_trace("").ok());
  EXPECT_TRUE(parse_trace("\n\n").ok());
}

TEST(Trace, SortOrdersByTimeThenNsThenClient) {
  std::vector<TraceRecord> records{
      {net::seconds(5), 0, 1, mk("a.com"), RRType::kA},
      {net::seconds(1), 2, 9, mk("b.com"), RRType::kA},
      {net::seconds(1), 1, 5, mk("c.com"), RRType::kA},
      {net::seconds(1), 1, 2, mk("d.com"), RRType::kA},
  };
  sort_trace(records);
  EXPECT_EQ(records[0].qname, mk("d.com"));
  EXPECT_EQ(records[0].nameserver, 1);
  EXPECT_EQ(records[0].client, 2u);
  EXPECT_EQ(records[1].client, 5u);
  EXPECT_EQ(records[2].nameserver, 2);
  EXPECT_EQ(records[3].timestamp, net::seconds(5));
}

class TraceGenTest : public ::testing::Test {
 protected:
  TraceGenTest() {
    workload::PopulationConfig pop_config;
    pop_config.regular_per_group = 40;
    pop_config.cdn_domains = 20;
    pop_config.dyn_domains = 20;
    pop_config.seed = 5;
    population_ = workload::DomainPopulation::generate(pop_config);
  }

  TraceGenConfig small_trace() {
    TraceGenConfig config;
    config.nameservers = 3;
    config.clients = 60;
    config.duration_s = 6 * 3600.0;
    config.sessions_per_client_hour = 6.0;
    config.seed = 21;
    return config;
  }

  workload::DomainPopulation population_{
      workload::DomainPopulation::generate({})};
};

TEST_F(TraceGenTest, GeneratesSortedRecordsWithinDuration) {
  const auto trace = generate_trace(population_, small_trace());
  ASSERT_GT(trace.size(), 100u);
  net::SimTime prev = 0;
  for (const auto& r : trace) {
    EXPECT_GE(r.timestamp, prev);
    EXPECT_LT(r.timestamp, net::from_seconds(6 * 3600.0));
    EXPECT_LT(r.nameserver, 3);
    EXPECT_LT(r.client, 60u);
    prev = r.timestamp;
  }
}

TEST_F(TraceGenTest, DeterministicForSeed) {
  const auto a = generate_trace(population_, small_trace());
  const auto b = generate_trace(population_, small_trace());
  EXPECT_EQ(a, b);
}

TEST_F(TraceGenTest, ClientsPinnedToNameservers) {
  const auto trace = generate_trace(population_, small_trace());
  std::map<uint32_t, uint16_t> assignment;
  for (const auto& r : trace) {
    auto [it, inserted] = assignment.emplace(r.client, r.nameserver);
    if (!inserted) {
      EXPECT_EQ(it->second, r.nameserver);
    }
  }
}

TEST_F(TraceGenTest, ClientCacheSuppressesQueries) {
  TraceGenConfig with_cache = small_trace();
  with_cache.client_cache_s = 900.0;
  TraceGenConfig no_cache = small_trace();
  no_cache.client_cache_s = 0.0;
  const auto cached = generate_trace(population_, with_cache);
  const auto uncached = generate_trace(population_, no_cache);
  EXPECT_LT(cached.size(), uncached.size());
}

TEST_F(TraceGenTest, PoissonIntervalsWithoutClientCache) {
  // Figure 4's premise: with client caching removed, per-nameserver query
  // inter-arrival CV approaches 1 (Poisson).  We aggregate over all
  // domains at one nameserver.
  TraceGenConfig config = small_trace();
  config.client_cache_s = 0.0;
  config.clients = 120;
  config.duration_s = 12 * 3600.0;
  const auto trace = generate_trace(population_, config);
  util::RunningStats intervals;
  net::SimTime prev = -1;
  for (const auto& r : trace) {
    if (r.nameserver != 0) continue;
    if (prev >= 0) {
      intervals.add(net::to_seconds(r.timestamp - prev));
    }
    prev = r.timestamp;
  }
  ASSERT_GT(intervals.count(), 500u);
  EXPECT_NEAR(intervals.cv(), 1.0, 0.15);
}

TEST_F(TraceGenTest, PopularDomainsDominat) {
  const auto trace = generate_trace(population_, small_trace());
  std::map<std::string, std::size_t> counts;
  for (const auto& r : trace) ++counts[r.qname.to_string()];
  std::vector<std::size_t> sorted;
  for (const auto& [name, count] : counts) sorted.push_back(count);
  std::sort(sorted.rbegin(), sorted.rend());
  ASSERT_GT(sorted.size(), 10u);
  // Zipf head: the most popular domain far exceeds the median.
  EXPECT_GT(sorted.front(),
            sorted[sorted.size() / 2] * 5);
}

}  // namespace
}  // namespace dnscup::sim

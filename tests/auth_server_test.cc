#include <gtest/gtest.h>

#include <set>

#include "net/sim_network.h"
#include "server/authoritative.h"
#include "server/update.h"

namespace dnscup::server {
namespace {

using dns::Message;
using dns::Name;
using dns::Opcode;
using dns::Question;
using dns::Rcode;
using dns::RRClass;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }
dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

class AuthServerTest : public ::testing::Test {
 protected:
  AuthServerTest()
      : network_(loop_, 1),
        server_endpoint_{net::make_ip(10, 0, 0, 1), 53},
        client_endpoint_{net::make_ip(10, 0, 0, 99), 4000},
        server_(network_.bind(server_endpoint_), loop_) {
    dns::SOARdata soa;
    soa.mname = mk("ns1.example.com");
    soa.rname = mk("admin.example.com");
    soa.serial = 1;
    soa.minimum = 60;
    dns::Zone zone = dns::Zone::make(mk("example.com"), soa, 3600,
                                     {mk("ns1.example.com")}, 3600);
    zone.add_record(mk("ns1.example.com"), RRType::kA, 3600,
                    dns::ARdata{ip("10.0.0.1")});
    zone.add_record(mk("www.example.com"), RRType::kA, 300,
                    dns::ARdata{ip("192.0.2.80")});
    zone.add_record(mk("alias.example.com"), RRType::kCNAME, 300,
                    dns::CNAMERdata{mk("www.example.com")});
    zone.add_record(mk("other.example.com"), RRType::kCNAME, 300,
                    dns::CNAMERdata{mk("www.outside.org")});
    zone.add_record(mk("sub.example.com"), RRType::kNS, 3600,
                    dns::NSRdata{mk("ns.sub.example.com")});
    zone.add_record(mk("ns.sub.example.com"), RRType::kA, 3600,
                    dns::ARdata{ip("10.0.0.2")});
    server_.add_zone(std::move(zone));
  }

  Message query(const char* qname, RRType qtype) {
    Message m;
    m.id = 42;
    m.questions.push_back(Question{mk(qname), qtype, RRClass::kIN, 0});
    return m;
  }

  Message ask(const Message& request) {
    auto response = server_.handle(client_endpoint_, request);
    EXPECT_TRUE(response.has_value());
    return response.value_or(Message{});
  }

  net::EventLoop loop_;
  net::SimNetwork network_;
  net::Endpoint server_endpoint_;
  net::Endpoint client_endpoint_;
  AuthServer server_;
};

TEST_F(AuthServerTest, AnswersARecord) {
  const Message resp = ask(query("www.example.com", RRType::kA));
  EXPECT_EQ(resp.flags.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.flags.qr);
  EXPECT_TRUE(resp.flags.aa);
  ASSERT_EQ(resp.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(resp.answers[0].rdata).address,
            ip("192.0.2.80"));
  EXPECT_EQ(resp.id, 42);
}

TEST_F(AuthServerTest, ChasesCnameWithinZone) {
  const Message resp = ask(query("alias.example.com", RRType::kA));
  EXPECT_EQ(resp.flags.rcode, Rcode::kNoError);
  ASSERT_EQ(resp.answers.size(), 2u);
  EXPECT_EQ(resp.answers[0].type(), RRType::kCNAME);
  EXPECT_EQ(resp.answers[1].type(), RRType::kA);
}

TEST_F(AuthServerTest, DanglingCnameReturnsPartialChain) {
  const Message resp = ask(query("other.example.com", RRType::kA));
  EXPECT_EQ(resp.flags.rcode, Rcode::kNoError);
  ASSERT_EQ(resp.answers.size(), 1u);
  EXPECT_EQ(resp.answers[0].type(), RRType::kCNAME);
}

TEST_F(AuthServerTest, ReferralWithGlue) {
  const Message resp = ask(query("host.sub.example.com", RRType::kA));
  EXPECT_EQ(resp.flags.rcode, Rcode::kNoError);
  EXPECT_FALSE(resp.flags.aa);
  EXPECT_TRUE(resp.answers.empty());
  ASSERT_EQ(resp.authority.size(), 1u);
  EXPECT_EQ(resp.authority[0].type(), RRType::kNS);
  ASSERT_EQ(resp.additional.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(resp.additional[0].rdata).address,
            ip("10.0.0.2"));
}

TEST_F(AuthServerTest, NXDomainCarriesSoa) {
  const Message resp = ask(query("missing.example.com", RRType::kA));
  EXPECT_EQ(resp.flags.rcode, Rcode::kNXDomain);
  EXPECT_TRUE(resp.flags.aa);
  ASSERT_EQ(resp.authority.size(), 1u);
  EXPECT_EQ(resp.authority[0].type(), RRType::kSOA);
}

TEST_F(AuthServerTest, NoDataCarriesSoa) {
  const Message resp = ask(query("www.example.com", RRType::kMX));
  EXPECT_EQ(resp.flags.rcode, Rcode::kNoError);
  EXPECT_TRUE(resp.answers.empty());
  ASSERT_EQ(resp.authority.size(), 1u);
  EXPECT_EQ(resp.authority[0].type(), RRType::kSOA);
}

TEST_F(AuthServerTest, OutOfZoneRefused) {
  const Message resp = ask(query("www.unrelated.org", RRType::kA));
  EXPECT_EQ(resp.flags.rcode, Rcode::kRefused);
  EXPECT_EQ(server_.stats().refused, 1u);
}

TEST_F(AuthServerTest, MultiQuestionFormErr) {
  Message m = query("www.example.com", RRType::kA);
  m.questions.push_back(
      Question{mk("x.example.com"), RRType::kA, RRClass::kIN, 0});
  EXPECT_EQ(ask(m).flags.rcode, Rcode::kFormErr);
}

TEST_F(AuthServerTest, UnknownOpcodeNotImp) {
  Message m = query("www.example.com", RRType::kA);
  m.flags.opcode = Opcode::kStatus;
  EXPECT_EQ(ask(m).flags.rcode, Rcode::kNotImp);
}

TEST_F(AuthServerTest, ResponsesAreNotAnswered) {
  Message m = query("www.example.com", RRType::kA);
  m.flags.qr = true;
  EXPECT_FALSE(server_.handle(client_endpoint_, m).has_value());
}

TEST_F(AuthServerTest, QueryHookSeesAndMutatesResponse) {
  bool hook_ran = false;
  server_.set_query_hook([&](const net::Endpoint& from, const Message& q,
                             Message& resp) {
    hook_ran = true;
    EXPECT_EQ(from, client_endpoint_);
    EXPECT_EQ(q.questions[0].qname, mk("www.example.com"));
    resp.flags.ext = true;
    resp.llt = 77;
  });
  const Message resp = ask(query("www.example.com", RRType::kA));
  EXPECT_TRUE(hook_ran);
  EXPECT_TRUE(resp.flags.ext);
  EXPECT_EQ(resp.llt, 77);
}

TEST_F(AuthServerTest, ExtensionHandlerConsumesFirst) {
  int consumed = 0;
  server_.set_extension_handler([&](const net::Endpoint&, const Message& m) {
    if (m.flags.opcode == Opcode::kCacheUpdate) {
      ++consumed;
      return true;
    }
    return false;
  });
  Message cache_update;
  cache_update.flags.opcode = Opcode::kCacheUpdate;
  cache_update.flags.qr = true;
  EXPECT_FALSE(server_.handle(client_endpoint_, cache_update).has_value());
  EXPECT_EQ(consumed, 1);
  // Normal queries still flow through.
  EXPECT_EQ(ask(query("www.example.com", RRType::kA)).flags.rcode,
            Rcode::kNoError);
}

TEST_F(AuthServerTest, FindZoneLongestMatch) {
  dns::SOARdata soa;
  soa.mname = mk("ns.sub.example.com");
  soa.rname = mk("admin.example.com");
  soa.serial = 1;
  server_.add_zone(dns::Zone::make(mk("sub.example.com"), soa, 300,
                                   {mk("ns.sub.example.com")}, 300));
  EXPECT_EQ(server_.find_zone(mk("x.sub.example.com"))->origin(),
            mk("sub.example.com"));
  EXPECT_EQ(server_.find_zone(mk("www.example.com"))->origin(),
            mk("example.com"));
  EXPECT_EQ(server_.find_zone(mk("www.org")), nullptr);
}

TEST_F(AuthServerTest, ReloadZoneDetectsManualEdit) {
  std::vector<dns::RRsetChange> seen;
  server_.add_change_listener(
      [&](const dns::Zone&, const std::vector<dns::RRsetChange>& changes) {
        seen = changes;
      });
  // Operator edits the zone file: www now points elsewhere.
  dns::Zone edited = *server_.find_zone(mk("example.com"));
  edited.remove_rrset(mk("www.example.com"), RRType::kA);
  edited.add_record(mk("www.example.com"), RRType::kA, 300,
                    dns::ARdata{ip("203.0.113.1")});
  const std::size_t n = server_.reload_zone(std::move(edited));
  EXPECT_EQ(n, 1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].name, mk("www.example.com"));
  // Serial was bumped even though the editor forgot.
  EXPECT_GT(server_.find_zone(mk("example.com"))->serial(), 1u);
  // Queries now serve the new address.
  const Message resp = ask(query("www.example.com", RRType::kA));
  EXPECT_EQ(std::get<dns::ARdata>(resp.answers[0].rdata).address,
            ip("203.0.113.1"));
}

TEST_F(AuthServerTest, ReloadZoneNoChangeNoEvent) {
  int events = 0;
  server_.add_change_listener(
      [&](const dns::Zone&, const std::vector<dns::RRsetChange>&) {
        ++events;
      });
  dns::Zone same = *server_.find_zone(mk("example.com"));
  EXPECT_EQ(server_.reload_zone(std::move(same)), 0u);
  EXPECT_EQ(events, 0);
}

TEST_F(AuthServerTest, RoundRobinRotatesAnswers) {
  // Add a second and third address for www, then enable rotation.
  dns::Zone* zone = server_.find_zone(mk("www.example.com"));
  zone->add_record(mk("www.example.com"), RRType::kA, 300,
                   dns::ARdata{ip("192.0.2.81")});
  zone->add_record(mk("www.example.com"), RRType::kA, 300,
                   dns::ARdata{ip("192.0.2.82")});
  server_.set_round_robin(true);

  std::set<uint32_t> first_addresses;
  for (int i = 0; i < 3; ++i) {
    const Message resp = ask(query("www.example.com", RRType::kA));
    ASSERT_EQ(resp.answers.size(), 3u);
    first_addresses.insert(
        std::get<dns::ARdata>(resp.answers[0].rdata).address.addr);
    // All three addresses always present, only the order rotates.
    std::set<uint32_t> all;
    for (const auto& rr : resp.answers) {
      all.insert(std::get<dns::ARdata>(rr.rdata).address.addr);
    }
    EXPECT_EQ(all.size(), 3u);
  }
  EXPECT_EQ(first_addresses.size(), 3u);  // every replica led once
}

TEST_F(AuthServerTest, RoundRobinOffKeepsStableOrder) {
  dns::Zone* zone = server_.find_zone(mk("www.example.com"));
  zone->add_record(mk("www.example.com"), RRType::kA, 300,
                   dns::ARdata{ip("192.0.2.81")});
  const Message a = ask(query("www.example.com", RRType::kA));
  const Message b = ask(query("www.example.com", RRType::kA));
  EXPECT_EQ(a.answers, b.answers);
}

TEST_F(AuthServerTest, StatsCountQueries) {
  ask(query("www.example.com", RRType::kA));
  ask(query("www.example.com", RRType::kA));
  EXPECT_EQ(server_.stats().queries, 2u);
}

TEST_F(AuthServerTest, UndecodableDatagramCountsFormErr) {
  // Drive through the wire path.
  auto& attacker = network_.bind({net::make_ip(10, 0, 0, 66), 1000});
  const std::vector<uint8_t> junk{1, 2, 3};
  attacker.send(server_endpoint_, junk);
  loop_.run_all();
  EXPECT_EQ(server_.stats().formerr, 1u);
}

TEST_F(AuthServerTest, WirePathEndToEnd) {
  auto& client = network_.bind(client_endpoint_);
  std::optional<Message> got;
  client.set_receive_handler(
      [&](const net::Endpoint&, std::span<const uint8_t> data) {
        got = Message::decode(data).value();
      });
  client.send(server_endpoint_, query("www.example.com", RRType::kA).encode());
  loop_.run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->flags.rcode, Rcode::kNoError);
  ASSERT_EQ(got->answers.size(), 1u);
}

}  // namespace
}  // namespace dnscup::server

#include <gtest/gtest.h>

#include "core/cache_update.h"

namespace dnscup::core {
namespace {

using dns::Name;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }
dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

std::vector<dns::RRsetChange> sample_changes() {
  dns::RRset updated{mk("www.example.com"), RRType::kA, dns::RRClass::kIN,
                     300, {}};
  updated.add(dns::ARdata{ip("198.51.100.1")});
  updated.add(dns::ARdata{ip("198.51.100.2")});

  std::vector<dns::RRsetChange> changes;
  changes.push_back({mk("www.example.com"), RRType::kA, std::nullopt,
                     updated});
  changes.push_back({mk("old.example.com"), RRType::kA,
                     dns::RRset{mk("old.example.com"), RRType::kA,
                                dns::RRClass::kIN, 300, {}},
                     std::nullopt});
  return changes;
}

TEST(CacheUpdate, EncodeParseRoundTrip) {
  const dns::Message m =
      encode_cache_update(42, mk("example.com"), 17, sample_changes());
  EXPECT_EQ(m.flags.opcode, dns::Opcode::kCacheUpdate);
  EXPECT_FALSE(m.flags.qr);

  // Survives the wire.
  const dns::Message wire = dns::Message::decode(m.encode()).value();
  auto parsed = parse_cache_update(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const CacheUpdate& update = parsed.value();
  EXPECT_EQ(update.zone, mk("example.com"));
  EXPECT_EQ(update.serial, 17u);
  ASSERT_EQ(update.updated.size(), 1u);
  EXPECT_EQ(update.updated[0].name, mk("www.example.com"));
  EXPECT_EQ(update.updated[0].size(), 2u);
  EXPECT_EQ(update.updated[0].ttl, 300u);
  ASSERT_EQ(update.removed.size(), 1u);
  EXPECT_EQ(update.removed[0].first, mk("old.example.com"));
  EXPECT_EQ(update.removed[0].second, RRType::kA);
}

TEST(CacheUpdate, StaysUnder512Bytes) {
  const dns::Message m =
      encode_cache_update(42, mk("example.com"), 17, sample_changes());
  EXPECT_LE(m.encode().size(), dns::kMaxUdpPayload);
}

TEST(CacheUpdate, AckEchoesIdAndZone) {
  const dns::Message m =
      encode_cache_update(42, mk("example.com"), 17, sample_changes());
  const dns::Message ack = make_cache_update_ack(m);
  EXPECT_EQ(ack.id, 42);
  EXPECT_TRUE(ack.flags.qr);
  EXPECT_EQ(ack.flags.opcode, dns::Opcode::kCacheUpdate);
  EXPECT_TRUE(is_cache_update_ack(ack));
  EXPECT_FALSE(is_cache_update_ack(m));
  // Acks survive the wire too.
  EXPECT_TRUE(is_cache_update_ack(dns::Message::decode(ack.encode()).value()));
}

TEST(CacheUpdate, RejectsWrongOpcode) {
  dns::Message m;
  m.flags.opcode = dns::Opcode::kQuery;
  EXPECT_FALSE(parse_cache_update(m).ok());
}

TEST(CacheUpdate, RejectsResponses) {
  dns::Message m =
      encode_cache_update(1, mk("example.com"), 1, sample_changes());
  m.flags.qr = true;
  EXPECT_FALSE(parse_cache_update(m).ok());
}

TEST(CacheUpdate, RejectsMissingZoneQuestion) {
  dns::Message m;
  m.flags.opcode = dns::Opcode::kCacheUpdate;
  EXPECT_FALSE(parse_cache_update(m).ok());
}

TEST(CacheUpdate, RejectsRecordsOutsideZone) {
  dns::Message m =
      encode_cache_update(1, mk("example.com"), 1, sample_changes());
  m.answers.push_back(dns::ResourceRecord{
      mk("www.other.org"), dns::RRClass::kIN, 60, dns::ARdata{ip("1.1.1.1")}});
  EXPECT_FALSE(parse_cache_update(m).ok());
}

TEST(CacheUpdate, RejectsBadRemovalStub) {
  dns::Message m =
      encode_cache_update(1, mk("example.com"), 1, sample_changes());
  m.authority.push_back(dns::ResourceRecord{
      mk("x.example.com"), dns::RRClass::kIN, 0,
      dns::GenericRdata{static_cast<uint16_t>(RRType::kA), {}}});
  EXPECT_FALSE(parse_cache_update(m).ok());
}

TEST(CacheUpdate, EmptyChangeSetStillValid) {
  const dns::Message m = encode_cache_update(5, mk("example.com"), 9, {});
  const auto parsed = parse_cache_update(m);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().updated.empty());
  EXPECT_TRUE(parsed.value().removed.empty());
  EXPECT_EQ(parsed.value().serial, 9u);
}

TEST(CacheUpdate, MultipleRRsetsGrouped) {
  dns::RRset a{mk("a.example.com"), RRType::kA, dns::RRClass::kIN, 60, {}};
  a.add(dns::ARdata{ip("1.0.0.1")});
  dns::RRset b{mk("b.example.com"), RRType::kA, dns::RRClass::kIN, 60, {}};
  b.add(dns::ARdata{ip("1.0.0.2")});
  std::vector<dns::RRsetChange> changes;
  changes.push_back({a.name, RRType::kA, std::nullopt, a});
  changes.push_back({b.name, RRType::kA, std::nullopt, b});
  const auto parsed = parse_cache_update(
      encode_cache_update(1, mk("example.com"), 2, changes));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().updated.size(), 2u);
}

}  // namespace
}  // namespace dnscup::core

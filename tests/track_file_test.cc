#include <gtest/gtest.h>

#include "core/track_file.h"

namespace dnscup::core {
namespace {

using dns::Name;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }

const net::Endpoint kCacheA{net::make_ip(10, 0, 2, 1), 53};
const net::Endpoint kCacheB{net::make_ip(10, 0, 2, 2), 53};

TEST(TrackFile, GrantAndFind) {
  TrackFile tf;
  tf.grant(kCacheA, mk("www.a.com"), RRType::kA, 0, net::seconds(100));
  const Lease* lease = tf.find(kCacheA, mk("www.a.com"), RRType::kA);
  ASSERT_NE(lease, nullptr);
  EXPECT_EQ(lease->holder, kCacheA);
  EXPECT_EQ(lease->expiry(), net::seconds(100));
  EXPECT_TRUE(lease->valid(net::seconds(99)));
  EXPECT_FALSE(lease->valid(net::seconds(100)));
  EXPECT_EQ(tf.stats().grants, 1u);
}

TEST(TrackFile, FindMissReturnsNull) {
  TrackFile tf;
  EXPECT_EQ(tf.find(kCacheA, mk("x.com"), RRType::kA), nullptr);
  tf.grant(kCacheA, mk("x.com"), RRType::kA, 0, net::seconds(10));
  EXPECT_EQ(tf.find(kCacheB, mk("x.com"), RRType::kA), nullptr);
  EXPECT_EQ(tf.find(kCacheA, mk("x.com"), RRType::kTXT), nullptr);
}

TEST(TrackFile, RenewalRestartsTerm) {
  TrackFile tf;
  tf.grant(kCacheA, mk("x.com"), RRType::kA, 0, net::seconds(100));
  tf.grant(kCacheA, mk("x.com"), RRType::kA, net::seconds(50),
           net::seconds(100));
  EXPECT_EQ(tf.find(kCacheA, mk("x.com"), RRType::kA)->expiry(),
            net::seconds(150));
  EXPECT_EQ(tf.stats().grants, 1u);
  EXPECT_EQ(tf.stats().renewals, 1u);
  EXPECT_EQ(tf.size(), 1u);
}

TEST(TrackFile, RegrantAfterExpiryCountsAsGrant) {
  TrackFile tf;
  tf.grant(kCacheA, mk("x.com"), RRType::kA, 0, net::seconds(10));
  tf.grant(kCacheA, mk("x.com"), RRType::kA, net::seconds(20),
           net::seconds(10));
  EXPECT_EQ(tf.stats().grants, 2u);
  EXPECT_EQ(tf.stats().renewals, 0u);
}

TEST(TrackFile, HoldersOfFiltersValidity) {
  TrackFile tf;
  tf.grant(kCacheA, mk("x.com"), RRType::kA, 0, net::seconds(100));
  tf.grant(kCacheB, mk("x.com"), RRType::kA, 0, net::seconds(10));
  EXPECT_EQ(tf.holders_of(mk("x.com"), RRType::kA, net::seconds(5)).size(),
            2u);
  const auto late = tf.holders_of(mk("x.com"), RRType::kA, net::seconds(50));
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0].holder, kCacheA);
  EXPECT_TRUE(
      tf.holders_of(mk("y.com"), RRType::kA, net::seconds(5)).empty());
}

TEST(TrackFile, LeasesOfHolder) {
  TrackFile tf;
  tf.grant(kCacheA, mk("x.com"), RRType::kA, 0, net::seconds(100));
  tf.grant(kCacheA, mk("y.com"), RRType::kA, 0, net::seconds(100));
  tf.grant(kCacheB, mk("x.com"), RRType::kA, 0, net::seconds(100));
  EXPECT_EQ(tf.leases_of(kCacheA, net::seconds(1)).size(), 2u);
  EXPECT_EQ(tf.leases_of(kCacheB, net::seconds(1)).size(), 1u);
}

TEST(TrackFile, Revoke) {
  TrackFile tf;
  tf.grant(kCacheA, mk("x.com"), RRType::kA, 0, net::seconds(100));
  EXPECT_TRUE(tf.revoke(kCacheA, mk("x.com"), RRType::kA));
  EXPECT_FALSE(tf.revoke(kCacheA, mk("x.com"), RRType::kA));
  EXPECT_EQ(tf.size(), 0u);
  EXPECT_EQ(tf.stats().revocations, 1u);
}

TEST(TrackFile, PruneDropsExpiredOnly) {
  TrackFile tf;
  tf.grant(kCacheA, mk("x.com"), RRType::kA, 0, net::seconds(10));
  tf.grant(kCacheB, mk("x.com"), RRType::kA, 0, net::seconds(100));
  tf.grant(kCacheA, mk("y.com"), RRType::kA, 0, net::seconds(10));
  EXPECT_EQ(tf.prune(net::seconds(50)), 2u);
  EXPECT_EQ(tf.size(), 1u);
  EXPECT_EQ(tf.live_count(net::seconds(50)), 1u);
}

TEST(TrackFile, LiveCountIgnoresExpired) {
  TrackFile tf;
  tf.grant(kCacheA, mk("x.com"), RRType::kA, 0, net::seconds(10));
  tf.grant(kCacheB, mk("y.com"), RRType::kA, 0, net::seconds(100));
  EXPECT_EQ(tf.live_count(net::seconds(5)), 2u);
  EXPECT_EQ(tf.live_count(net::seconds(50)), 1u);
  EXPECT_EQ(tf.size(), 2u);  // expired tuple still stored until prune
}

TEST(TrackFile, SerializeOnlyValidLeases) {
  TrackFile tf;
  tf.grant(kCacheA, mk("live.com"), RRType::kA, 0, net::seconds(100));
  tf.grant(kCacheB, mk("dead.com"), RRType::kA, 0, net::seconds(1));
  const std::string text = tf.serialize(net::seconds(50));
  EXPECT_NE(text.find("live.com."), std::string::npos);
  EXPECT_EQ(text.find("dead.com."), std::string::npos);
  EXPECT_NE(text.find("10.0.2.1:53"), std::string::npos);
}

TEST(TrackFile, SerializeParseRoundTrip) {
  TrackFile tf;
  tf.grant(kCacheA, mk("a.com"), RRType::kA, net::seconds(5),
           net::seconds(100));
  tf.grant(kCacheB, mk("b.com"), RRType::kTXT, net::seconds(7),
           net::seconds(200));
  const std::string text = tf.serialize(net::seconds(10));
  auto parsed = TrackFile::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const TrackFile& copy = parsed.value();
  EXPECT_EQ(copy.size(), 2u);
  const Lease* a = copy.find(kCacheA, mk("a.com"), RRType::kA);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->granted_at, net::seconds(5));
  EXPECT_EQ(a->length, net::seconds(100));
  const Lease* b = copy.find(kCacheB, mk("b.com"), RRType::kTXT);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->length, net::seconds(200));
}

TEST(TrackFile, ParseRejectsGarbage) {
  EXPECT_FALSE(TrackFile::parse("not a lease line\n").ok());
  EXPECT_FALSE(TrackFile::parse("10.0.0.1:53 a.com. BOGUS 1 2\n").ok());
  EXPECT_FALSE(TrackFile::parse("noport a.com. A 1 2\n").ok());
  EXPECT_TRUE(TrackFile::parse("").ok());  // empty file is an empty table
}

// Regression: duplicate (holder, name, type) lines used to silently
// last-write-win; a track file with two grant times for one lease is
// ambiguous and must be rejected as a whole.
TEST(TrackFile, ParseRejectsDuplicateTuples) {
  const std::string text =
      "10.0.2.1:53 a.com. A 1000000 2000000\n"
      "10.0.2.2:53 a.com. A 1000000 2000000\n"   // different holder: fine
      "10.0.2.1:53 a.com. TXT 1000000 2000000\n" // different type: fine
      "10.0.2.1:53 a.com. A 5000000 9000000\n";  // exact tuple again: error
  auto parsed = TrackFile::parse(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, util::ErrorCode::kExists);
  EXPECT_NE(parsed.error().message.find("line 4"), std::string::npos)
      << parsed.error().message;

  // Without the offending line the same file parses.
  EXPECT_TRUE(TrackFile::parse(
                  "10.0.2.1:53 a.com. A 1000000 2000000\n"
                  "10.0.2.2:53 a.com. A 1000000 2000000\n"
                  "10.0.2.1:53 a.com. TXT 1000000 2000000\n")
                  .ok());
}

TEST(TrackFile, RoundTripDropsExpiredLeases) {
  TrackFile tf;
  tf.grant(kCacheA, mk("live.com"), RRType::kA, 0, net::seconds(100));
  tf.grant(kCacheB, mk("dead.com"), RRType::kA, 0, net::seconds(1));
  // Serialization is the valid-lease view: the expired tuple is dropped
  // on the way out, so the round trip is the surviving state only.
  auto parsed = TrackFile::parse(tf.serialize(net::seconds(50)));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 1u);
  EXPECT_NE(parsed.value().find(kCacheA, mk("live.com"), RRType::kA),
            nullptr);
  EXPECT_EQ(parsed.value().find(kCacheB, mk("dead.com"), RRType::kA),
            nullptr);
}

TEST(TrackFile, MaximalLengthNameRoundTrips) {
  // Three 63-octet labels plus one 61-octet label: 255 wire octets, the
  // RFC 1035 ceiling.
  const std::string l63a(63, 'a'), l63b(63, 'b'), l63c(63, 'c');
  const std::string l61(61, 'd');
  const std::string max_name = l63a + "." + l63b + "." + l63c + "." + l61;
  const Name name = mk(max_name.c_str());

  TrackFile tf;
  tf.grant(kCacheA, name, RRType::kA, net::seconds(3), net::seconds(100));
  auto parsed = TrackFile::parse(tf.serialize(net::seconds(10)));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const Lease* lease = parsed.value().find(kCacheA, name, RRType::kA);
  ASSERT_NE(lease, nullptr);
  EXPECT_EQ(lease->name.to_string(), max_name + ".");
  EXPECT_EQ(lease->granted_at, net::seconds(3));

  // One label longer would overflow the wire limit and must not parse.
  EXPECT_FALSE(Name::parse(max_name + ".e").ok());
}

TEST(TrackFile, EveryConcreteRRTypeRoundTrips) {
  const RRType types[] = {RRType::kA,   RRType::kNS,  RRType::kCNAME,
                          RRType::kSOA, RRType::kPTR, RRType::kMX,
                          RRType::kTXT, RRType::kAAAA};
  TrackFile tf;
  for (RRType type : types) {
    tf.grant(kCacheA, mk("multi.example.com"), type, 0, net::seconds(100));
  }
  auto parsed = TrackFile::parse(tf.serialize(net::seconds(1)));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().size(), std::size(types));
  for (RRType type : types) {
    EXPECT_NE(parsed.value().find(kCacheA, mk("multi.example.com"), type),
              nullptr)
        << dns::to_string(type);
  }
}

TEST(TrackFile, ForEachVisitsAllTuples) {
  TrackFile tf;
  tf.grant(kCacheA, mk("a.com"), RRType::kA, 0, net::seconds(10));
  tf.grant(kCacheB, mk("a.com"), RRType::kA, 0, net::seconds(10));
  tf.grant(kCacheA, mk("b.com"), RRType::kA, 0, net::seconds(10));
  std::size_t n = 0;
  tf.for_each([&](const Lease&) { ++n; });
  EXPECT_EQ(n, 3u);
}

TEST(TrackFile, ManyLeasesStress) {
  TrackFile tf;
  for (uint32_t i = 0; i < 1000; ++i) {
    const net::Endpoint holder{net::make_ip(10, 1, static_cast<uint8_t>(i / 250),
                                            static_cast<uint8_t>(i % 250)),
                               53};
    tf.grant(holder, mk(("d" + std::to_string(i % 100) + ".com").c_str()),
             RRType::kA, 0, net::seconds(60 + i % 50));
  }
  EXPECT_EQ(tf.size(), 1000u);
  EXPECT_EQ(tf.live_count(net::seconds(59)), 1000u);
  EXPECT_EQ(tf.live_count(net::seconds(200)), 0u);
  const std::string text = tf.serialize(net::seconds(1));
  EXPECT_EQ(TrackFile::parse(text).value().size(), 1000u);
}

}  // namespace
}  // namespace dnscup::core

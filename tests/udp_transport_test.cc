#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "net/udp_transport.h"

namespace dnscup::net {
namespace {

// Real-socket smoke tests: two loopback sockets exchanging datagrams.
// Everything protocol-level runs on SimNetwork; these only prove the
// Transport abstraction holds on real UDP (the prototype path).

struct Waiter {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::vector<uint8_t>> received;
  Endpoint last_from;

  bool wait_for_messages(std::size_t n) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, std::chrono::seconds(5),
                       [&] { return received.size() >= n; });
  }
};

TEST(UdpTransport, BindEphemeralPort) {
  auto t = UdpTransport::bind(0);
  ASSERT_TRUE(t.ok()) << t.error().to_string();
  EXPECT_NE(t.value()->local_endpoint().port, 0);
  EXPECT_EQ(t.value()->local_endpoint().ip, 0x7F000001u);
}

TEST(UdpTransport, SendAndReceive) {
  auto a = UdpTransport::bind(0);
  auto b = UdpTransport::bind(0);
  ASSERT_TRUE(a.ok() && b.ok());

  Waiter waiter;
  b.value()->set_receive_handler(
      [&](const Endpoint& from, std::span<const uint8_t> data) {
        std::lock_guard lock(waiter.mutex);
        waiter.received.emplace_back(data.begin(), data.end());
        waiter.last_from = from;
        waiter.cv.notify_all();
      });

  const std::vector<uint8_t> msg{1, 2, 3, 4, 5};
  a.value()->send(b.value()->local_endpoint(), msg);
  ASSERT_TRUE(waiter.wait_for_messages(1));
  EXPECT_EQ(waiter.received[0], msg);
  EXPECT_EQ(waiter.last_from, a.value()->local_endpoint());
}

TEST(UdpTransport, RoundTripBothDirections) {
  auto a = UdpTransport::bind(0);
  auto b = UdpTransport::bind(0);
  ASSERT_TRUE(a.ok() && b.ok());

  Waiter wa, wb;
  a.value()->set_receive_handler(
      [&](const Endpoint&, std::span<const uint8_t> data) {
        std::lock_guard lock(wa.mutex);
        wa.received.emplace_back(data.begin(), data.end());
        wa.cv.notify_all();
      });
  b.value()->set_receive_handler(
      [&](const Endpoint& from, std::span<const uint8_t> data) {
        std::lock_guard lock(wb.mutex);
        wb.received.emplace_back(data.begin(), data.end());
        wb.cv.notify_all();
        // Echo back.
        b.value()->send(from, data);
      });

  const std::vector<uint8_t> msg{9, 8, 7};
  a.value()->send(b.value()->local_endpoint(), msg);
  ASSERT_TRUE(wb.wait_for_messages(1));
  ASSERT_TRUE(wa.wait_for_messages(1));
  EXPECT_EQ(wa.received[0], msg);
}

TEST(UdpTransport, StatsCount) {
  auto a = UdpTransport::bind(0);
  auto b = UdpTransport::bind(0);
  ASSERT_TRUE(a.ok() && b.ok());
  Waiter waiter;
  b.value()->set_receive_handler(
      [&](const Endpoint&, std::span<const uint8_t> data) {
        std::lock_guard lock(waiter.mutex);
        waiter.received.emplace_back(data.begin(), data.end());
        waiter.cv.notify_all();
      });
  const std::vector<uint8_t> msg(100, 0xAB);
  a.value()->send(b.value()->local_endpoint(), msg);
  a.value()->send(b.value()->local_endpoint(), msg);
  ASSERT_TRUE(waiter.wait_for_messages(2));
  EXPECT_EQ(a.value()->stats().packets_sent, 2u);
  EXPECT_EQ(a.value()->stats().bytes_sent, 200u);
  EXPECT_EQ(a.value()->stats().max_packet_bytes, 100u);
  EXPECT_EQ(b.value()->stats().packets_received, 2u);
}

TEST(UdpTransport, CleanShutdownWithoutTraffic) {
  // Destroying an idle transport must join its receiver thread promptly.
  auto t = UdpTransport::bind(0);
  ASSERT_TRUE(t.ok());
  t.value().reset();
  SUCCEED();
}

TEST(UdpTransport, SendFromInsideReceiveHandlerWithConcurrentStatsReads) {
  // Regression: send() once shared a mutex with the receive-handler
  // handoff, so sending from inside the handler — the authority's answer
  // path — serialized against stats() readers and could deadlock with a
  // lock-holding scraper.  Now the counters are atomics: the echo chain
  // below must complete while another thread hammers stats() on both
  // transports the whole time.
  auto a = UdpTransport::bind(0);
  auto b = UdpTransport::bind(0);
  ASSERT_TRUE(a.ok() && b.ok());

  constexpr int kChain = 200;
  Waiter done;
  b.value()->set_receive_handler(
      [&](const Endpoint& from, std::span<const uint8_t> data) {
        // Echo from inside the callback — the hot path under test.
        b.value()->send(from, data);
      });
  a.value()->set_receive_handler(
      [&](const Endpoint& from, std::span<const uint8_t> data) {
        {
          std::lock_guard lock(done.mutex);
          done.received.emplace_back(data.begin(), data.end());
          done.cv.notify_all();
        }
        if (done.received.size() < kChain) a.value()->send(from, data);
      });

  std::atomic<bool> scraping{true};
  std::thread scraper([&] {
    uint64_t sink = 0;
    while (scraping.load()) {
      sink += a.value()->stats().packets_sent;
      sink += b.value()->stats().packets_received;
    }
    (void)sink;
  });

  const std::vector<uint8_t> msg{0xDA, 0x7A};
  a.value()->send(b.value()->local_endpoint(), msg);
  const bool finished = done.wait_for_messages(kChain);
  scraping.store(false);
  scraper.join();
  ASSERT_TRUE(finished) << "echo chain stalled — send path blocked";
  EXPECT_GE(a.value()->stats().packets_sent, static_cast<uint64_t>(kChain));
}

TEST(UdpTransport, OptionsConfigureSocketBuffers) {
  UdpTransport::Options options;
  options.rcvbuf_bytes = 1 << 18;
  options.sndbuf_bytes = 1 << 18;
  auto t = UdpTransport::bind(options);
  ASSERT_TRUE(t.ok()) << t.error().to_string();
  EXPECT_NE(t.value()->local_endpoint().port, 0);
  EXPECT_EQ(t.value()->rx_overflow(), 0u);
}

TEST(UdpTransport, ReuseportGroupSharesOnePort) {
  UdpTransport::Options options;
  options.reuseport = true;
  auto a = UdpTransport::bind(options);
  if (!a.ok()) {
    GTEST_SKIP() << "SO_REUSEPORT unavailable: " << a.error().to_string();
  }
  options.port = a.value()->local_endpoint().port;
  auto b = UdpTransport::bind(options);
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  EXPECT_EQ(a.value()->local_endpoint().port,
            b.value()->local_endpoint().port);

  // Without SO_REUSEPORT on the second socket, the same port must refuse.
  UdpTransport::Options plain;
  plain.port = options.port;
  auto c = UdpTransport::bind(plain);
  EXPECT_FALSE(c.ok());
}

TEST(UdpTransport, StopReceivingKeepsSocketSendable) {
  auto a = UdpTransport::bind(0);
  auto b = UdpTransport::bind(0);
  ASSERT_TRUE(a.ok() && b.ok());
  Waiter waiter;
  b.value()->set_receive_handler(
      [&](const Endpoint&, std::span<const uint8_t> data) {
        std::lock_guard lock(waiter.mutex);
        waiter.received.emplace_back(data.begin(), data.end());
        waiter.cv.notify_all();
      });

  a.value()->stop_receiving();
  a.value()->stop_receiving();  // idempotent
  const std::vector<uint8_t> msg{1, 2, 3};
  a.value()->send(b.value()->local_endpoint(), msg);
  ASSERT_TRUE(waiter.wait_for_messages(1));
  EXPECT_EQ(waiter.received[0], msg);
  EXPECT_EQ(a.value()->stats().packets_sent, 1u);
}

TEST(UdpTransport, RxOverflowCountsKernelQueueDrops) {
#ifndef SO_RXQ_OVFL
  GTEST_SKIP() << "SO_RXQ_OVFL not available on this platform";
#else
  // A deliberately tiny receive buffer plus a handler that stalls: the
  // kernel queue fills, later datagrams drop, and the SO_RXQ_OVFL
  // ancillary counter must surface them as rx_overflow().
  UdpTransport::Options options;
  options.rcvbuf_bytes = 2048;  // kernel clamps to its minimum
  auto slow = UdpTransport::bind(options);
  ASSERT_TRUE(slow.ok()) << slow.error().to_string();
  auto sender = UdpTransport::bind(0);
  ASSERT_TRUE(sender.ok());

  std::atomic<int> seen{0};
  slow.value()->set_receive_handler(
      [&](const Endpoint&, std::span<const uint8_t>) {
        ++seen;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      });

  const std::vector<uint8_t> payload(1200, 0x55);
  for (int i = 0; i < 600; ++i) {
    sender.value()->send(slow.value()->local_endpoint(), payload);
  }
  // The kernel reports the cumulative drop count as ancillary data on
  // the *next delivered* datagram, so keep trickling packets until one
  // gets through and carries the overflow tally with it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  uint64_t overflow = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    overflow = slow.value()->rx_overflow();
    if (overflow > 0) break;
    sender.value()->send(slow.value()->local_endpoint(), payload);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(overflow, 0u)
      << "600 x 1200B at a 2KB buffer with a 2ms/datagram handler must "
         "overflow; seen=" << seen.load();
#endif
}

}  // namespace
}  // namespace dnscup::net

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "net/udp_transport.h"

namespace dnscup::net {
namespace {

// Real-socket smoke tests: two loopback sockets exchanging datagrams.
// Everything protocol-level runs on SimNetwork; these only prove the
// Transport abstraction holds on real UDP (the prototype path).

struct Waiter {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::vector<uint8_t>> received;
  Endpoint last_from;

  bool wait_for_messages(std::size_t n) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, std::chrono::seconds(5),
                       [&] { return received.size() >= n; });
  }
};

TEST(UdpTransport, BindEphemeralPort) {
  auto t = UdpTransport::bind(0);
  ASSERT_TRUE(t.ok()) << t.error().to_string();
  EXPECT_NE(t.value()->local_endpoint().port, 0);
  EXPECT_EQ(t.value()->local_endpoint().ip, 0x7F000001u);
}

TEST(UdpTransport, SendAndReceive) {
  auto a = UdpTransport::bind(0);
  auto b = UdpTransport::bind(0);
  ASSERT_TRUE(a.ok() && b.ok());

  Waiter waiter;
  b.value()->set_receive_handler(
      [&](const Endpoint& from, std::span<const uint8_t> data) {
        std::lock_guard lock(waiter.mutex);
        waiter.received.emplace_back(data.begin(), data.end());
        waiter.last_from = from;
        waiter.cv.notify_all();
      });

  const std::vector<uint8_t> msg{1, 2, 3, 4, 5};
  a.value()->send(b.value()->local_endpoint(), msg);
  ASSERT_TRUE(waiter.wait_for_messages(1));
  EXPECT_EQ(waiter.received[0], msg);
  EXPECT_EQ(waiter.last_from, a.value()->local_endpoint());
}

TEST(UdpTransport, RoundTripBothDirections) {
  auto a = UdpTransport::bind(0);
  auto b = UdpTransport::bind(0);
  ASSERT_TRUE(a.ok() && b.ok());

  Waiter wa, wb;
  a.value()->set_receive_handler(
      [&](const Endpoint&, std::span<const uint8_t> data) {
        std::lock_guard lock(wa.mutex);
        wa.received.emplace_back(data.begin(), data.end());
        wa.cv.notify_all();
      });
  b.value()->set_receive_handler(
      [&](const Endpoint& from, std::span<const uint8_t> data) {
        std::lock_guard lock(wb.mutex);
        wb.received.emplace_back(data.begin(), data.end());
        wb.cv.notify_all();
        // Echo back.
        b.value()->send(from, data);
      });

  const std::vector<uint8_t> msg{9, 8, 7};
  a.value()->send(b.value()->local_endpoint(), msg);
  ASSERT_TRUE(wb.wait_for_messages(1));
  ASSERT_TRUE(wa.wait_for_messages(1));
  EXPECT_EQ(wa.received[0], msg);
}

TEST(UdpTransport, StatsCount) {
  auto a = UdpTransport::bind(0);
  auto b = UdpTransport::bind(0);
  ASSERT_TRUE(a.ok() && b.ok());
  Waiter waiter;
  b.value()->set_receive_handler(
      [&](const Endpoint&, std::span<const uint8_t> data) {
        std::lock_guard lock(waiter.mutex);
        waiter.received.emplace_back(data.begin(), data.end());
        waiter.cv.notify_all();
      });
  const std::vector<uint8_t> msg(100, 0xAB);
  a.value()->send(b.value()->local_endpoint(), msg);
  a.value()->send(b.value()->local_endpoint(), msg);
  ASSERT_TRUE(waiter.wait_for_messages(2));
  EXPECT_EQ(a.value()->stats().packets_sent, 2u);
  EXPECT_EQ(a.value()->stats().bytes_sent, 200u);
  EXPECT_EQ(a.value()->stats().max_packet_bytes, 100u);
  EXPECT_EQ(b.value()->stats().packets_received, 2u);
}

TEST(UdpTransport, CleanShutdownWithoutTraffic) {
  // Destroying an idle transport must join its receiver thread promptly.
  auto t = UdpTransport::bind(0);
  ASSERT_TRUE(t.ok());
  t.value().reset();
  SUCCEED();
}

}  // namespace
}  // namespace dnscup::net

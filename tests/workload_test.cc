#include <gtest/gtest.h>

#include <map>

#include "util/stats.h"
#include "workload/change_model.h"
#include "workload/domain_population.h"
#include "workload/prober.h"

namespace dnscup::workload {
namespace {

PopulationConfig small_population() {
  PopulationConfig config;
  config.regular_per_group = 200;
  config.cdn_domains = 100;
  config.dyn_domains = 100;
  config.seed = 13;
  return config;
}

// ---- TTL classes -------------------------------------------------------------

TEST(TtlClass, Table1Boundaries) {
  EXPECT_EQ(ttl_class_of(0), 1);
  EXPECT_EQ(ttl_class_of(59), 1);
  EXPECT_EQ(ttl_class_of(60), 2);
  EXPECT_EQ(ttl_class_of(299), 2);
  EXPECT_EQ(ttl_class_of(300), 3);
  EXPECT_EQ(ttl_class_of(3599), 3);
  EXPECT_EQ(ttl_class_of(3600), 4);
  EXPECT_EQ(ttl_class_of(86399), 4);
  EXPECT_EQ(ttl_class_of(86400), 5);
  EXPECT_EQ(ttl_class_of(10000000), 5);
}

TEST(Table1, MatchesPaper) {
  ASSERT_EQ(kTable1.size(), 5u);
  EXPECT_EQ(kTable1[0].resolution_s, 20.0);
  EXPECT_EQ(kTable1[0].duration_s, 86400.0);
  EXPECT_EQ(kTable1[1].resolution_s, 60.0);
  EXPECT_EQ(kTable1[1].duration_s, 3 * 86400.0);
  EXPECT_EQ(kTable1[2].resolution_s, 300.0);
  EXPECT_EQ(kTable1[4].resolution_s, 86400.0);
  EXPECT_EQ(kTable1[4].duration_s, 30 * 86400.0);
  for (int cls = 1; cls <= 5; ++cls) {
    EXPECT_EQ(probe_params_for_class(cls).ttl_class, cls);
  }
}

// ---- population ----------------------------------------------------------------

TEST(Population, CountsPerCategory) {
  const auto pop = DomainPopulation::generate(small_population());
  EXPECT_EQ(pop.by_category(DomainCategory::kCdn).size(), 100u);
  EXPECT_EQ(pop.by_category(DomainCategory::kDyn).size(), 100u);
  // 5 major groups x 200 + tails.
  EXPECT_GE(pop.by_category(DomainCategory::kRegular).size(), 1000u);
}

TEST(Population, FiveMajorTldGroupsPresent) {
  const auto pop = DomainPopulation::generate(small_population());
  for (const char* tld : {"com", "net", "org", "edu", "country"}) {
    std::size_t regular = 0;
    for (const auto* d : pop.by_tld(tld)) {
      if (d->category == DomainCategory::kRegular) ++regular;
    }
    EXPECT_EQ(regular, 200u) << tld;
  }
  EXPECT_GT(pop.by_tld("gov").size(), 0u);
  EXPECT_GT(pop.by_tld("biz").size(), 0u);
}

TEST(Population, CdnAndDynTtlsBoundedBy300) {
  const auto pop = DomainPopulation::generate(small_population());
  for (const auto* d : pop.by_category(DomainCategory::kCdn)) {
    EXPECT_LE(d->ttl, 300u);
    EXPECT_LE(d->ttl_class, 2);
    EXPECT_TRUE(d->provider == "akamai" || d->provider == "speedera");
  }
  for (const auto* d : pop.by_category(DomainCategory::kDyn)) {
    EXPECT_LE(d->ttl, 300u);
    EXPECT_LE(d->ttl_class, 2);
  }
}

TEST(Population, CdnProvidersUseTheirSignatureTtls) {
  const auto pop = DomainPopulation::generate(small_population());
  for (const auto* d : pop.by_category(DomainCategory::kCdn)) {
    if (d->provider == "akamai") {
      EXPECT_EQ(d->ttl, 20u);
    }
    if (d->provider == "speedera") {
      EXPECT_EQ(d->ttl, 120u);
    }
  }
}

TEST(Population, RegularTtlMassBetweenOneHourAndOneDay) {
  const auto pop = DomainPopulation::generate(small_population());
  std::size_t class4 = 0;
  const auto regular = pop.by_category(DomainCategory::kRegular);
  for (const auto* d : regular) {
    if (d->ttl_class == 4) ++class4;
  }
  // §1: the majority of TTLs range from one hour to one day.
  EXPECT_GT(static_cast<double>(class4) /
                static_cast<double>(regular.size()),
            0.40);
}

TEST(Population, AllFiveClassesPopulated) {
  const auto pop = DomainPopulation::generate(small_population());
  for (int cls = 1; cls <= 5; ++cls) {
    EXPECT_GT(pop.by_class(cls).size(), 0u) << "class " << cls;
  }
}

TEST(Population, NamesAreUniqueAndValid) {
  const auto pop = DomainPopulation::generate(small_population());
  std::map<std::string, int> seen;
  for (const auto& d : pop.domains()) {
    EXPECT_GE(d.name.label_count(), 2u);
    ++seen[d.name.to_string()];
  }
  for (const auto& [name, count] : seen) {
    EXPECT_EQ(count, 1) << name;
  }
}

TEST(Population, DeterministicForSeed) {
  const auto a = DomainPopulation::generate(small_population());
  const auto b = DomainPopulation::generate(small_population());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].ttl, b[i].ttl);
    EXPECT_EQ(a[i].initial_address, b[i].initial_address);
  }
}

TEST(Population, RequestCountsHeavyTailed) {
  const auto pop = DomainPopulation::generate(small_population());
  util::RunningStats stats;
  for (const auto& d : pop.domains()) {
    stats.add(static_cast<double>(d.request_count));
  }
  // Pareto tail: max requests far above the mean.
  EXPECT_GT(stats.max(), stats.mean() * 10);
}

// ---- change behaviour calibration ------------------------------------------------

TEST(ChangeBehavior, SpeederaChangesNearlyEveryProbe) {
  util::Rng rng(1);
  const auto pop = DomainPopulation::generate(small_population());
  for (const auto* d : pop.by_category(DomainCategory::kCdn)) {
    const auto b = assign_change_behavior(*d, rng);
    EXPECT_TRUE(b.changes);
    EXPECT_EQ(b.cause, ChangeCause::kRotation);
    if (d->provider == "speedera") {
      EXPECT_GE(b.per_probe_change_prob, 0.9);
    } else {
      EXPECT_LT(b.per_probe_change_prob, 0.5);
    }
  }
}

TEST(ChangeBehavior, DynDomainsRarelyChange) {
  util::Rng rng(2);
  const auto pop = DomainPopulation::generate(small_population());
  util::RunningStats freq;
  for (const auto* d : pop.by_category(DomainCategory::kDyn)) {
    const auto b = assign_change_behavior(*d, rng);
    freq.add(b.changes ? b.per_probe_change_prob : 0.0);
    if (b.changes) {
      EXPECT_EQ(b.cause, ChangeCause::kRelocation);
    }
  }
  EXPECT_LT(freq.mean(), 0.02);  // §3.2: ≈ 0.4%
}

TEST(ChangeBehavior, RegularClassFractionsCalibrated) {
  util::Rng rng(3);
  // Large synthetic class populations to check the calibrated fractions.
  PopulationConfig config = small_population();
  config.regular_per_group = 2000;
  const auto pop = DomainPopulation::generate(config);
  std::map<int, std::pair<int, int>> per_class;  // class -> (changed, total)
  for (const auto* d : pop.by_category(DomainCategory::kRegular)) {
    const auto b = assign_change_behavior(*d, rng);
    auto& [changed, total] = per_class[d->ttl_class];
    ++total;
    if (b.changes) ++changed;
  }
  // Classes 3-5: about 95% intact (§3.2).
  for (int cls : {3, 4, 5}) {
    const auto [changed, total] = per_class[cls];
    ASSERT_GT(total, 100) << cls;
    const double fraction =
        static_cast<double>(changed) / static_cast<double>(total);
    EXPECT_NEAR(fraction, 0.05, 0.03) << "class " << cls;
  }
  // Class 1: ~70% change.
  {
    const auto [changed, total] = per_class[1];
    ASSERT_GT(total, 30);
    EXPECT_NEAR(static_cast<double>(changed) / total, 0.70, 0.2);
  }
}

// ---- change process ---------------------------------------------------------------

TEST(ChangeProcess, StaticDomainNeverChanges) {
  const auto pop = DomainPopulation::generate(small_population());
  ChangeBehavior none;
  DomainChangeProcess process(pop[0], none, 300.0, 1);
  const auto before = process.addresses();
  process.advance_to(1e7);
  EXPECT_EQ(process.addresses(), before);
  EXPECT_EQ(process.changes_applied(), 0u);
}

TEST(ChangeProcess, RelocationProducesFreshAddresses) {
  const auto pop = DomainPopulation::generate(small_population());
  ChangeBehavior b{true, 0.5, ChangeCause::kRelocation};
  DomainChangeProcess process(pop[0], b, 100.0, 2);
  std::set<uint32_t> seen{process.primary().addr};
  uint32_t last = process.primary().addr;
  for (int i = 1; i <= 100; ++i) {
    process.advance_to(i * 100.0);
    const uint32_t current = process.primary().addr;
    if (current != last) {
      // Relocation must never revisit a previously observed address
      // (changes between probes go unobserved, but what we do observe
      // must always be fresh).
      EXPECT_EQ(seen.count(current), 0u);
      seen.insert(current);
      last = current;
    }
  }
  EXPECT_GT(process.changes_applied(), 10u);
  EXPECT_GT(seen.size(), 10u);
  EXPECT_EQ(process.addresses().size(), 1u);  // one-to-one mapping
}

TEST(ChangeProcess, RotationStaysInPool) {
  const auto pop = DomainPopulation::generate(small_population());
  ChangeBehavior b{true, 1.0, ChangeCause::kRotation};
  DomainChangeProcess process(pop[0], b, 10.0, 3);
  std::set<uint32_t> seen;
  for (int i = 1; i <= 500; ++i) {
    process.advance_to(i * 10.0);
    seen.insert(process.primary().addr);
  }
  EXPECT_GT(process.changes_applied(), 100u);
  EXPECT_LE(seen.size(), 18u);  // bounded rotation pool (hot rotator)
  EXPECT_GE(seen.size(), 2u);
}

TEST(ChangeProcess, AddressIncreaseGrowsSet) {
  const auto pop = DomainPopulation::generate(small_population());
  ChangeBehavior b{true, 0.8, ChangeCause::kAddressIncrease};
  DomainChangeProcess process(pop[0], b, 10.0, 4);
  process.advance_to(200.0);
  ASSERT_GT(process.changes_applied(), 2u);
  EXPECT_GT(process.addresses().size(), 1u);
  EXPECT_LE(process.addresses().size(), 12u);  // bounded
}

TEST(ChangeProcess, EventRateMatchesCalibration) {
  const auto pop = DomainPopulation::generate(small_population());
  ChangeBehavior b{true, 0.1, ChangeCause::kRotation};
  DomainChangeProcess process(pop[0], b, 100.0, 5);
  // rate = 0.1 / 100 s = 1e-3/s; over 1e6 s expect ~1000 changes.
  process.advance_to(1e6);
  EXPECT_NEAR(static_cast<double>(process.changes_applied()), 1000.0, 150.0);
}

// ---- prober ------------------------------------------------------------------------

TEST(Prober, DetectsAndClassifiesCauses) {
  PopulationConfig config = small_population();
  config.regular_per_group = 60;
  config.cdn_domains = 40;
  config.dyn_domains = 20;
  const auto pop = DomainPopulation::generate(config);
  ProberConfig prober_config;
  prober_config.duration_scale = 0.05;  // keep the test fast
  const auto results = run_probing_campaign(pop, prober_config);
  ASSERT_EQ(results.size(), pop.size());

  // CDN domains must be detected as rotating with high frequency for
  // speedera.
  util::RunningStats speedera_freq;
  for (const auto& r : results) {
    if (r.provider == "speedera") {
      speedera_freq.add(r.change_frequency());
      if (r.changes_detected > 3) {
        EXPECT_EQ(r.classified_cause, ChangeCause::kRotation);
      }
    }
  }
  ASSERT_GT(speedera_freq.count(), 0u);
  EXPECT_GT(speedera_freq.mean(), 0.5);
}

TEST(Prober, ProbeCountsMatchResolutionAndDuration) {
  PopulationConfig config = small_population();
  config.regular_per_group = 20;
  config.cdn_domains = 10;
  config.dyn_domains = 10;
  const auto pop = DomainPopulation::generate(config);
  ProberConfig prober_config;
  prober_config.duration_scale = 0.02;
  const auto results = run_probing_campaign(pop, prober_config);
  for (const auto& r : results) {
    const auto& params = probe_params_for_class(r.ttl_class);
    const auto scaled = static_cast<std::size_t>(
        params.duration_s * prober_config.duration_scale /
        params.resolution_s);
    const auto expected = std::max(scaled, prober_config.min_probes);
    EXPECT_EQ(r.probes, expected);
    EXPECT_LE(r.changes_detected, r.probes);
  }
}

TEST(Prober, StaticDomainsReportZeroFrequency) {
  PopulationConfig config = small_population();
  config.regular_per_group = 100;
  config.cdn_domains = 0;
  config.dyn_domains = 0;
  const auto pop = DomainPopulation::generate(config);
  ProberConfig prober_config;
  prober_config.duration_scale = 0.02;
  const auto results = run_probing_campaign(pop, prober_config);
  std::size_t intact = 0;
  for (const auto& r : results) {
    if (r.changes_detected == 0) {
      ++intact;
      EXPECT_EQ(r.classified_cause, ChangeCause::kNone);
      EXPECT_DOUBLE_EQ(r.change_frequency(), 0.0);
    }
  }
  EXPECT_GT(intact, results.size() / 2);
}

}  // namespace
}  // namespace dnscup::workload

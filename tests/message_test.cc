#include <gtest/gtest.h>

#include "dns/message.h"
#include "util/rng.h"

namespace dnscup::dns {
namespace {

Name mk(const char* text) { return Name::parse(text).value(); }

Message sample_query() {
  Message m;
  m.id = 0x1234;
  m.flags.opcode = Opcode::kQuery;
  m.flags.rd = true;
  m.questions.push_back(
      Question{mk("www.example.com"), RRType::kA, RRClass::kIN, 0});
  return m;
}

// ---- flags ------------------------------------------------------------------

struct FlagCase {
  Flags flags;
};

class FlagsPackUnpack : public ::testing::TestWithParam<FlagCase> {};

TEST_P(FlagsPackUnpack, RoundTrips) {
  const Flags f = GetParam().flags;
  EXPECT_EQ(Flags::unpack(f.pack()), f);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, FlagsPackUnpack,
    ::testing::Values(
        FlagCase{Flags{}},
        FlagCase{Flags{true, Opcode::kQuery, true, false, true, true, false,
                       Rcode::kNoError}},
        FlagCase{Flags{true, Opcode::kUpdate, false, false, false, false,
                       false, Rcode::kNXDomain}},
        FlagCase{Flags{false, Opcode::kCacheUpdate, false, false, false,
                       false, true, Rcode::kNoError}},
        FlagCase{Flags{true, Opcode::kNotify, true, true, true, true, true,
                       Rcode::kRefused}},
        FlagCase{Flags{true, Opcode::kCacheUpdate, false, false, false,
                       false, true, Rcode::kNotAuth}}));

TEST(Flags, ExtBitIsReservedZBit) {
  Flags f;
  f.ext = true;
  EXPECT_EQ(f.pack() & 0x0040, 0x0040);
  f.ext = false;
  EXPECT_EQ(f.pack() & 0x0040, 0);
}

TEST(OpcodeNames, Distinct) {
  EXPECT_STREQ(to_string(Opcode::kCacheUpdate), "CACHE-UPDATE");
  EXPECT_STREQ(to_string(Opcode::kUpdate), "UPDATE");
  EXPECT_STREQ(to_string(Rcode::kNXRRSet), "NXRRSET");
}

// ---- LLT / RRC conversions -----------------------------------------------------

TEST(Llt, RoundsUpAndSaturates) {
  EXPECT_EQ(llt_from_seconds(0), 0);
  EXPECT_EQ(llt_from_seconds(1), 1);    // rounds up to one 10 s unit
  EXPECT_EQ(llt_from_seconds(10), 1);
  EXPECT_EQ(llt_from_seconds(11), 2);
  EXPECT_EQ(llt_to_seconds(llt_from_seconds(600)), 600u);
  // 6-day max lease for regular domains must fit (paper §5.1).
  EXPECT_EQ(llt_to_seconds(llt_from_seconds(6 * 86400)), 6u * 86400u);
  EXPECT_EQ(llt_from_seconds(100ull * 86400ull), 0xFFFF);
}

TEST(Rrc, SaturatesAndInverts) {
  EXPECT_EQ(rrc_from_rate(0.0), 0);
  EXPECT_EQ(rrc_from_rate(-1.0), 0);
  EXPECT_EQ(rrc_from_rate(1.0), 3600);  // 1 q/s = 3600 q/h
  EXPECT_EQ(rrc_from_rate(100.0), 0xFFFF);
  EXPECT_NEAR(rrc_to_rate(rrc_from_rate(0.5)), 0.5, 1e-3);
}

TEST(Rrc, TinyRatesStillVisible) {
  // One query an hour must not round down to zero.
  EXPECT_GE(rrc_from_rate(1.0 / 3600.0), 1);
}

// ---- message round trips ---------------------------------------------------------

TEST(Message, QueryRoundTrip) {
  const Message m = sample_query();
  const auto wire = m.encode();
  EXPECT_EQ(Message::decode(wire).value(), m);
  EXPECT_LE(wire.size(), kMaxUdpPayload);
}

TEST(Message, FullResponseRoundTrip) {
  Message m = make_response(sample_query());
  m.flags.aa = true;
  m.answers.push_back(ResourceRecord{
      mk("www.example.com"), RRClass::kIN, 300,
      ARdata{Ipv4::parse("192.0.2.80").value()}});
  SOARdata soa;
  soa.mname = mk("ns1.example.com");
  soa.rname = mk("admin.example.com");
  soa.serial = 5;
  m.authority.push_back(
      ResourceRecord{mk("example.com"), RRClass::kIN, 300, soa});
  m.additional.push_back(ResourceRecord{
      mk("ns1.example.com"), RRClass::kIN, 300,
      ARdata{Ipv4::parse("192.0.2.1").value()}});
  EXPECT_EQ(Message::decode(m.encode()).value(), m);
}

TEST(Message, ExtQueryCarriesRrc) {
  Message m = sample_query();
  m.flags.ext = true;
  m.questions[0].rrc = 1234;
  const Message out = Message::decode(m.encode()).value();
  EXPECT_TRUE(out.flags.ext);
  EXPECT_EQ(out.questions[0].rrc, 1234);
}

TEST(Message, ExtResponseCarriesLlt) {
  Message m = make_response(sample_query());
  m.flags.ext = true;
  m.llt = llt_from_seconds(3600);
  m.answers.push_back(ResourceRecord{
      mk("www.example.com"), RRClass::kIN, 300, ARdata{Ipv4{1}}});
  const Message out = Message::decode(m.encode()).value();
  EXPECT_EQ(llt_to_seconds(out.llt), 3600u);
  EXPECT_EQ(out, m);
}

TEST(Message, NonExtOmitsExtensionFields) {
  // The same message without EXT must be strictly smaller on the wire —
  // i.e. RRC/LLT are truly absent, not zero-filled.
  Message ext = sample_query();
  ext.flags.ext = true;
  Message plain = sample_query();
  EXPECT_EQ(ext.encode().size(), plain.encode().size() + 2);
}

TEST(Message, LegacyDecoderViewIsCompatible) {
  // A non-EXT message must decode identically whether or not the peer
  // knows about DNScup — i.e. it is plain RFC 1035.
  const Message m = sample_query();
  const auto wire = m.encode();
  const Message out = Message::decode(wire).value();
  EXPECT_FALSE(out.flags.ext);
  EXPECT_EQ(out.questions[0].rrc, 0);
}

TEST(Message, MakeResponseMirrorsRequest) {
  Message q = sample_query();
  q.flags.ext = true;
  const Message r = make_response(q);
  EXPECT_TRUE(r.flags.qr);
  EXPECT_TRUE(r.flags.rd);
  EXPECT_TRUE(r.flags.ext);
  EXPECT_EQ(r.id, q.id);
  EXPECT_EQ(r.questions, q.questions);
  EXPECT_EQ(r.flags.opcode, q.flags.opcode);
}

TEST(Message, TrailingBytesRejected) {
  auto wire = sample_query().encode();
  wire.push_back(0);
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(Message, EmptyInputRejected) {
  EXPECT_FALSE(Message::decode({}).ok());
}

TEST(Message, CountsMismatchRejected) {
  auto wire = sample_query().encode();
  wire[5] = 2;  // claim 2 questions, provide 1
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(Message, ToStringMentionsKeyFields) {
  Message m = sample_query();
  m.flags.ext = true;
  m.questions[0].rrc = 7;
  const std::string text = m.to_string();
  EXPECT_NE(text.find("QUERY"), std::string::npos);
  EXPECT_NE(text.find("www.example.com."), std::string::npos);
  EXPECT_NE(text.find("rrc=7"), std::string::npos);
}

class MessageTruncationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MessageTruncationFuzz, EveryPrefixFailsCleanly) {
  Message m = make_response(sample_query());
  m.flags.ext = true;
  m.llt = 99;
  m.answers.push_back(ResourceRecord{
      mk("www.example.com"), RRClass::kIN, 300, ARdata{Ipv4{0x0A000001}}});
  m.additional.push_back(ResourceRecord{
      mk("example.com"), RRClass::kIN, 60, TXTRdata{{"x"}}});
  const auto wire = m.encode();
  // Every strict prefix must decode to an error, never crash.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(Message::decode({wire.data(), len}).ok()) << len;
  }
}

INSTANTIATE_TEST_SUITE_P(One, MessageTruncationFuzz, ::testing::Values(0));

class MessageRandomFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MessageRandomFuzz, RandomBytesNeverCrash) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 128)));
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.uniform_int(0, 255));
    }
    (void)Message::decode(junk);
  }
}

TEST_P(MessageRandomFuzz, BitFlippedValidMessagesNeverCrash) {
  util::Rng rng(GetParam() ^ 0xF00);
  Message m = make_response(sample_query());
  m.answers.push_back(ResourceRecord{
      mk("www.example.com"), RRClass::kIN, 300, ARdata{Ipv4{42}}});
  const auto original = m.encode();
  for (int iter = 0; iter < 3000; ++iter) {
    auto wire = original;
    const auto flips = rng.uniform_int(1, 4);
    for (int64_t f = 0; f < flips; ++f) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int64_t>(
                                                          wire.size() - 1)));
      wire[pos] ^= static_cast<uint8_t>(1 << rng.uniform_int(0, 7));
    }
    (void)Message::decode(wire);  // any outcome but a crash is fine
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageRandomFuzz,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace dnscup::dns

// Crash-consistency for the mmap cache store: a child process is
// SIGKILLed while it hammers puts into a store file; the parent then
// reopens the same file and must adopt every intact slot, drop any torn
// one, and never crash or serve garbage.  This is the kill -9 mid-write
// path the slot CRCs exist for.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "cachestore/mmap_store.h"
#include "server/cache.h"

namespace dnscup::cachestore {
namespace {

using dns::Name;
using dns::RRType;
using server::CacheEntry;
using server::CacheKey;
using server::ResolverCache;

constexpr int64_t kWallBase = 1'700'000'000'000'000;

dns::RRset a_set(const std::string& name, uint32_t ttl, uint32_t addr) {
  dns::RRset set{Name::parse(name).value(), RRType::kA, dns::RRClass::kIN,
                 ttl, {}};
  set.add(dns::ARdata{dns::Ipv4{addr}});
  return set;
}

/// The child's workload: open the store and overwrite a rotating window
/// of entries forever (each put re-persists a slot and appends to the
/// slab), so a SIGKILL at a random instant likely lands mid-mutation.
[[noreturn]] void hammer(const std::string& path) {
  MmapCacheStore::Options opts;
  opts.path = path;
  opts.file_bytes = 1ull << 20;
  opts.wall_now_us = kWallBase;
  auto opened = MmapCacheStore::open(std::move(opts));
  if (!opened.ok()) ::_exit(3);
  ResolverCache cache(0, nullptr, std::move(opened).value());
  for (uint64_t i = 0;; ++i) {
    const std::string name =
        "n" + std::to_string(i % 64) + ".example.com";
    cache.put(a_set(name, 600, static_cast<uint32_t>(i)), 0);
    if (i % 16 == 0) {
      cache.note_zone_serial(Name::parse("example.com").value(),
                             static_cast<uint32_t>(i));
    }
  }
}

TEST(CacheStoreKill, SigkillMidWriteThenReopenRecovers) {
  const std::string path =
      "cachestore_kill_test." + std::to_string(::getpid());
  ::unlink(path.c_str());

  // A few kill-and-reopen rounds to vary where the SIGKILL lands; the
  // second and later rounds also exercise reopening a file the previous
  // crashed child had itself warm-loaded.
  int warm_rounds = 0;
  for (int round = 0; round < 3; ++round) {
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) hammer(path);  // never returns

    ::usleep(60'000 + 40'000 * round);  // let it write for a while
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    MmapCacheStore::Options opts;
    opts.path = path;
    opts.file_bytes = 1ull << 20;
    opts.wall_now_us = kWallBase + net::seconds(1 + round);
    auto reopened = MmapCacheStore::open(std::move(opts));
    ASSERT_TRUE(reopened.ok()) << reopened.error().to_string();
    MmapCacheStore& store = *reopened.value();

    // Torn slots are allowed (that is the point); crashes, parse errors
    // and phantom entries are not.  Anything adopted must decode to a
    // well-formed A record whose address matches its own name's index.
    const auto& report = store.load_report();
    if (!report.cold) {
      ++warm_rounds;
      uint64_t checked = 0;
      store.for_each([&](const CacheKey& key, const CacheEntry& entry) {
        ASSERT_FALSE(entry.negative);
        ASSERT_EQ(entry.rrset.rdatas.size(), 1u);
        const uint32_t addr =
            std::get<dns::ARdata>(entry.rrset.rdatas[0]).address.addr;
        EXPECT_EQ(key.name, Name::parse("n" + std::to_string(addr % 64) +
                                        ".example.com")
                                .value());
        ++checked;
      });
      EXPECT_EQ(checked, report.warm_entries);
      EXPECT_EQ(store.size(), report.warm_entries);
    } else {
      // write_header() runs per slab append; a kill inside its 64-byte
      // memcpy+CRC window legitimately tears the header and cold-starts.
      // Anything else cold is a real recovery bug.
      EXPECT_EQ(report.cold_reason, "bad header crc");
    }
  }
  // The torn-header window is nanoseconds inside a microseconds-long put
  // path: across three kills, warm recovery must be the norm.
  EXPECT_GE(warm_rounds, 2);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace dnscup::cachestore

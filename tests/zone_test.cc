#include <gtest/gtest.h>

#include "dns/zone.h"

namespace dnscup::dns {
namespace {

Name mk(const char* text) { return Name::parse(text).value(); }

Ipv4 ip(const char* text) { return Ipv4::parse(text).value(); }

Zone example_zone() {
  SOARdata soa;
  soa.mname = mk("ns1.example.com");
  soa.rname = mk("admin.example.com");
  soa.serial = 100;
  soa.minimum = 60;
  Zone z = Zone::make(mk("example.com"), soa, 3600, {mk("ns1.example.com")},
                      3600);
  z.add_record(mk("ns1.example.com"), RRType::kA, 3600,
               ARdata{ip("192.0.2.1")});
  z.add_record(mk("www.example.com"), RRType::kA, 300,
               ARdata{ip("192.0.2.80")});
  z.add_record(mk("www.example.com"), RRType::kA, 300,
               ARdata{ip("192.0.2.81")});
  z.add_record(mk("alias.example.com"), RRType::kCNAME, 300,
               CNAMERdata{mk("www.example.com")});
  z.add_record(mk("mail.example.com"), RRType::kMX, 300,
               MXRdata{10, mk("mx1.example.com")});
  // Delegation: sub.example.com is a child zone.
  z.add_record(mk("sub.example.com"), RRType::kNS, 3600,
               NSRdata{mk("ns.sub.example.com")});
  z.add_record(mk("ns.sub.example.com"), RRType::kA, 3600,
               ARdata{ip("192.0.2.53")});  // glue
  // Empty non-terminal: records only below deep.example.com.
  z.add_record(mk("host.deep.example.com"), RRType::kA, 300,
               ARdata{ip("192.0.2.99")});
  return z;
}

// ---- serial arithmetic ------------------------------------------------------

TEST(Serial, Rfc1982Comparison) {
  EXPECT_TRUE(serial_gt(2, 1));
  EXPECT_FALSE(serial_gt(1, 2));
  EXPECT_FALSE(serial_gt(5, 5));
  // Wraparound: 0 is "greater" than 0xFFFFFFFF.
  EXPECT_TRUE(serial_gt(0, 0xFFFFFFFFu));
  EXPECT_TRUE(serial_gt(0x80000000u, 1));
  EXPECT_FALSE(serial_gt(1, 0x80000000u));
}

TEST(Serial, AdditionWraps) {
  EXPECT_EQ(serial_add(0xFFFFFFFFu, 1), 0u);
  EXPECT_EQ(serial_add(10, 5), 15u);
  EXPECT_TRUE(serial_gt(serial_add(0xFFFFFFF0u, 0x20), 0xFFFFFFF0u));
}

// ---- construction / validation ----------------------------------------------

TEST(Zone, ValidateRequiresSoa) {
  Zone empty(mk("example.com"));
  EXPECT_FALSE(empty.validate().ok());
  EXPECT_TRUE(example_zone().validate().ok());
}

TEST(Zone, SoaAccessors) {
  const Zone z = example_zone();
  EXPECT_EQ(z.serial(), 100u);
  EXPECT_EQ(z.soa().minimum, 60u);
  EXPECT_EQ(z.soa_ttl(), 3600u);
}

TEST(Zone, BumpSerial) {
  Zone z = example_zone();
  z.bump_serial();
  EXPECT_EQ(z.serial(), 101u);
  EXPECT_TRUE(serial_gt(z.serial(), 100));
}

TEST(Zone, RecordCounts) {
  const Zone z = example_zone();
  EXPECT_GT(z.rrset_count(), 5u);
  EXPECT_EQ(z.record_count(), z.rrset_count() + 1);  // www has 2 rdatas
}

// ---- mutation ------------------------------------------------------------------

TEST(Zone, AddRecordMergesRRset) {
  Zone z = example_zone();
  const RRset* www = z.find(mk("www.example.com"), RRType::kA);
  ASSERT_NE(www, nullptr);
  EXPECT_EQ(www->size(), 2u);
  // Adding a duplicate changes nothing.
  EXPECT_FALSE(z.add_record(mk("www.example.com"), RRType::kA, 300,
                            ARdata{ip("192.0.2.80")}));
  // Adding a new address changes data.
  EXPECT_TRUE(z.add_record(mk("www.example.com"), RRType::kA, 300,
                           ARdata{ip("192.0.2.82")}));
  EXPECT_EQ(z.find(mk("www.example.com"), RRType::kA)->size(), 3u);
}

TEST(Zone, AddRecordTtlChangeIsAChange) {
  Zone z = example_zone();
  EXPECT_TRUE(z.add_record(mk("www.example.com"), RRType::kA, 999,
                           ARdata{ip("192.0.2.80")}));
  EXPECT_EQ(z.find(mk("www.example.com"), RRType::kA)->ttl, 999u);
}

TEST(Zone, CnameIsSingleton) {
  Zone z = example_zone();
  z.add_record(mk("alias.example.com"), RRType::kCNAME, 300,
               CNAMERdata{mk("www2.example.com")});
  const RRset* cname = z.find(mk("alias.example.com"), RRType::kCNAME);
  ASSERT_NE(cname, nullptr);
  EXPECT_EQ(cname->size(), 1u);
  EXPECT_EQ(std::get<CNAMERdata>(cname->rdatas[0]).target,
            mk("www2.example.com"));
}

TEST(Zone, RemoveRecordDropsEmptyRRset) {
  Zone z = example_zone();
  EXPECT_TRUE(z.remove_record(mk("www.example.com"), RRType::kA,
                              ARdata{ip("192.0.2.80")}));
  EXPECT_TRUE(z.remove_record(mk("www.example.com"), RRType::kA,
                              ARdata{ip("192.0.2.81")}));
  EXPECT_EQ(z.find(mk("www.example.com"), RRType::kA), nullptr);
  EXPECT_FALSE(z.remove_record(mk("www.example.com"), RRType::kA,
                               ARdata{ip("192.0.2.80")}));
}

TEST(Zone, SoaAndApexNsProtected) {
  Zone z = example_zone();
  EXPECT_FALSE(z.remove_rrset(mk("example.com"), RRType::kSOA));
  EXPECT_FALSE(z.remove_rrset(mk("example.com"), RRType::kNS));
  // Last apex NS record cannot be removed either.
  EXPECT_FALSE(z.remove_record(mk("example.com"), RRType::kNS,
                               NSRdata{mk("ns1.example.com")}));
  // remove_name at the apex keeps SOA + NS.
  z.add_record(mk("example.com"), RRType::kTXT, 60, TXTRdata{{"apex"}});
  EXPECT_TRUE(z.remove_name(mk("example.com")));
  EXPECT_NE(z.find(mk("example.com"), RRType::kSOA), nullptr);
  EXPECT_NE(z.find(mk("example.com"), RRType::kNS), nullptr);
  EXPECT_EQ(z.find(mk("example.com"), RRType::kTXT), nullptr);
}

TEST(Zone, RemoveName) {
  Zone z = example_zone();
  EXPECT_TRUE(z.remove_name(mk("www.example.com")));
  EXPECT_FALSE(z.name_exists(mk("www.example.com")));
  EXPECT_FALSE(z.remove_name(mk("nonexistent.example.com")));
}

// ---- lookup --------------------------------------------------------------------

TEST(ZoneLookup, Success) {
  const Zone z = example_zone();
  const auto r = z.lookup(mk("www.example.com"), RRType::kA);
  EXPECT_EQ(r.status, Zone::LookupStatus::kSuccess);
  ASSERT_EQ(r.rrsets.size(), 1u);
  EXPECT_EQ(r.rrsets[0].size(), 2u);
}

TEST(ZoneLookup, CaseInsensitive) {
  const Zone z = example_zone();
  EXPECT_EQ(z.lookup(mk("WWW.EXAMPLE.COM"), RRType::kA).status,
            Zone::LookupStatus::kSuccess);
}

TEST(ZoneLookup, CnamePrecedence) {
  const Zone z = example_zone();
  const auto r = z.lookup(mk("alias.example.com"), RRType::kA);
  EXPECT_EQ(r.status, Zone::LookupStatus::kCName);
  ASSERT_EQ(r.rrsets.size(), 1u);
  EXPECT_EQ(r.rrsets[0].type, RRType::kCNAME);
}

TEST(ZoneLookup, CnameQueryReturnsCname) {
  const Zone z = example_zone();
  const auto r = z.lookup(mk("alias.example.com"), RRType::kCNAME);
  EXPECT_EQ(r.status, Zone::LookupStatus::kSuccess);
}

TEST(ZoneLookup, Delegation) {
  const Zone z = example_zone();
  const auto r = z.lookup(mk("host.sub.example.com"), RRType::kA);
  EXPECT_EQ(r.status, Zone::LookupStatus::kDelegation);
  EXPECT_EQ(r.cut, mk("sub.example.com"));
  ASSERT_EQ(r.rrsets.size(), 1u);
  EXPECT_EQ(r.rrsets[0].type, RRType::kNS);
}

TEST(ZoneLookup, DelegationAtTheCutItself) {
  const Zone z = example_zone();
  const auto r = z.lookup(mk("sub.example.com"), RRType::kA);
  EXPECT_EQ(r.status, Zone::LookupStatus::kDelegation);
}

TEST(ZoneLookup, NXDomain) {
  const Zone z = example_zone();
  EXPECT_EQ(z.lookup(mk("missing.example.com"), RRType::kA).status,
            Zone::LookupStatus::kNXDomain);
}

TEST(ZoneLookup, NoData) {
  const Zone z = example_zone();
  EXPECT_EQ(z.lookup(mk("www.example.com"), RRType::kMX).status,
            Zone::LookupStatus::kNoData);
}

TEST(ZoneLookup, EmptyNonTerminalIsNoDataNotNXDomain) {
  const Zone z = example_zone();
  // deep.example.com owns nothing but host.deep.example.com exists below.
  EXPECT_EQ(z.lookup(mk("deep.example.com"), RRType::kA).status,
            Zone::LookupStatus::kNoData);
  EXPECT_EQ(z.lookup(mk("other.deep.example.com"), RRType::kA).status,
            Zone::LookupStatus::kNXDomain);
}

TEST(ZoneLookup, NotInZone) {
  const Zone z = example_zone();
  EXPECT_EQ(z.lookup(mk("www.other.org"), RRType::kA).status,
            Zone::LookupStatus::kNotInZone);
}

TEST(ZoneLookup, AnyReturnsAllTypes) {
  Zone z = example_zone();
  z.add_record(mk("www.example.com"), RRType::kTXT, 60, TXTRdata{{"hi"}});
  const auto r = z.lookup(mk("www.example.com"), RRType::kANY);
  EXPECT_EQ(r.status, Zone::LookupStatus::kSuccess);
  EXPECT_EQ(r.rrsets.size(), 2u);  // A + TXT
}

TEST(ZoneLookup, ApexQueryIsNotDelegation) {
  const Zone z = example_zone();
  const auto r = z.lookup(mk("example.com"), RRType::kNS);
  EXPECT_EQ(r.status, Zone::LookupStatus::kSuccess);
}

// ---- enumeration / AXFR order ---------------------------------------------------

TEST(Zone, AllRRsetsSoaFirst) {
  const Zone z = example_zone();
  const auto sets = z.all_rrsets();
  ASSERT_FALSE(sets.empty());
  EXPECT_EQ(sets.front().type, RRType::kSOA);
  // SOA appears exactly once.
  std::size_t soa_count = 0;
  for (const auto& s : sets) {
    if (s.type == RRType::kSOA) ++soa_count;
  }
  EXPECT_EQ(soa_count, 1u);
}

// ---- diffing -------------------------------------------------------------------

TEST(ZoneDiff, NoChanges) {
  const Zone z = example_zone();
  EXPECT_TRUE(diff_zones(z, z).empty());
}

TEST(ZoneDiff, SerialOnlyChangeIgnored) {
  const Zone before = example_zone();
  Zone after = before;
  after.bump_serial();
  EXPECT_TRUE(diff_zones(before, after).empty());
}

TEST(ZoneDiff, DataChangeDetected) {
  const Zone before = example_zone();
  Zone after = before;
  after.remove_record(mk("www.example.com"), RRType::kA,
                      ARdata{ip("192.0.2.80")});
  after.add_record(mk("www.example.com"), RRType::kA, 300,
                   ARdata{ip("198.51.100.1")});
  const auto changes = diff_zones(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].name, mk("www.example.com"));
  EXPECT_EQ(changes[0].type, RRType::kA);
  ASSERT_TRUE(changes[0].before.has_value());
  ASSERT_TRUE(changes[0].after.has_value());
  EXPECT_EQ(changes[0].after->size(), 2u);
}

TEST(ZoneDiff, AdditionAndRemovalDetected) {
  const Zone before = example_zone();
  Zone after = before;
  after.add_record(mk("new.example.com"), RRType::kA, 60,
                   ARdata{ip("203.0.113.5")});
  after.remove_rrset(mk("mail.example.com"), RRType::kMX);
  const auto changes = diff_zones(before, after);
  ASSERT_EQ(changes.size(), 2u);
  bool saw_add = false;
  bool saw_remove = false;
  for (const auto& c : changes) {
    if (!c.before.has_value()) {
      saw_add = true;
      EXPECT_EQ(c.name, mk("new.example.com"));
    }
    if (!c.after.has_value()) {
      saw_remove = true;
      EXPECT_EQ(c.name, mk("mail.example.com"));
    }
  }
  EXPECT_TRUE(saw_add);
  EXPECT_TRUE(saw_remove);
}

TEST(ZoneDiff, TtlOnlyChangeDetected) {
  const Zone before = example_zone();
  Zone after = before;
  after.add_record(mk("www.example.com"), RRType::kA, 9999,
                   ARdata{ip("192.0.2.80")});
  const auto changes = diff_zones(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].after->ttl, 9999u);
}

// ---- RRset helpers ---------------------------------------------------------------

TEST(RRset, SameDataIgnoresOrderAndTtl) {
  RRset a{mk("x.com"), RRType::kA, RRClass::kIN, 300, {}};
  a.add(ARdata{ip("1.1.1.1")});
  a.add(ARdata{ip("2.2.2.2")});
  RRset b{mk("x.com"), RRType::kA, RRClass::kIN, 600, {}};
  b.add(ARdata{ip("2.2.2.2")});
  b.add(ARdata{ip("1.1.1.1")});
  EXPECT_TRUE(a.same_data(b));
  b.add(ARdata{ip("3.3.3.3")});
  EXPECT_FALSE(a.same_data(b));
}

TEST(RRset, ToRecordsExpands) {
  RRset a{mk("x.com"), RRType::kA, RRClass::kIN, 300, {}};
  a.add(ARdata{ip("1.1.1.1")});
  a.add(ARdata{ip("2.2.2.2")});
  const auto records = a.to_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, mk("x.com"));
  EXPECT_EQ(records[0].ttl, 300u);
}

}  // namespace
}  // namespace dnscup::dns

#include "core/shard.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "util/rng.h"

namespace dnscup::core {
namespace {

Lease make_lease(uint32_t ip, uint16_t port, const std::string& name,
                 dns::RRType type = dns::RRType::kA) {
  Lease lease;
  lease.holder = net::Endpoint{ip, port};
  lease.name = dns::Name::parse(name).value();
  lease.type = type;
  lease.granted_at = 1000;
  lease.length = net::seconds(60);
  return lease;
}

/// A synthetic-but-diverse lease population: many holders, Zipf-ish name
/// reuse, mixed types.
std::vector<Lease> population(std::size_t count) {
  util::Rng rng(42);
  std::vector<Lease> leases;
  leases.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const uint32_t ip = net::make_ip(
        10, 0, static_cast<uint8_t>(rng.uniform_int(0, 3)),
        static_cast<uint8_t>(rng.uniform_int(1, 250)));
    const uint16_t port =
        static_cast<uint16_t>(rng.uniform_int(1024, 65000));
    const std::string name =
        "w" + std::to_string(rng.uniform_int(0, 499)) + ".example.com";
    const dns::RRType type =
        rng.chance(0.2) ? dns::RRType::kAAAA : dns::RRType::kA;
    leases.push_back(make_lease(ip, port, name, type));
  }
  return leases;
}

TEST(Shard, StableAndInRange) {
  for (const Lease& lease : population(500)) {
    for (const std::size_t n : {1u, 2u, 3u, 7u, 16u}) {
      const std::size_t shard = shard_of(lease, n);
      EXPECT_LT(shard, n);
      // Deterministic: same key, same shard, every time.
      EXPECT_EQ(shard, shard_of(lease.holder, lease.name, lease.type, n));
    }
  }
}

TEST(Shard, NameCaseDoesNotChangeShard) {
  // dns::Name comparisons are case-insensitive, so two spellings of one
  // name are the same lease key and must land in the same shard.
  const auto lower = make_lease(0x0A000001, 5353, "www.example.com");
  const auto upper = make_lease(0x0A000001, 5353, "WWW.Example.COM");
  for (const std::size_t n : {2u, 4u, 13u}) {
    EXPECT_EQ(shard_of(lower, n), shard_of(upper, n)) << "shards=" << n;
  }
}

TEST(Shard, DoublingMovesOnlyExpectedKeys) {
  // Resharding property: going N -> 2N, a key either stays on its shard s
  // or moves to s + N; equivalently shard_of(k, 2N) % N == shard_of(k, N).
  for (const Lease& lease : population(2000)) {
    for (const std::size_t n : {1u, 2u, 4u, 8u}) {
      const std::size_t before = shard_of(lease, n);
      const std::size_t after = shard_of(lease, 2 * n);
      EXPECT_EQ(after % n, before)
          << "key must stay or move exactly +" << n;
      EXPECT_TRUE(after == before || after == before + n);
    }
  }
}

TEST(Shard, SpreadIsReasonable) {
  // Not a statistical guarantee, just a tripwire against a degenerate
  // hash: 2000 keys over 8 shards should not starve any shard.
  std::map<std::size_t, std::size_t> counts;
  const auto leases = population(2000);
  for (const Lease& lease : leases) ++counts[shard_of(lease, 8)];
  ASSERT_EQ(counts.size(), 8u);
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, leases.size() / 8 / 3)
        << "shard " << shard << " is starved";
  }
}

TEST(Shard, PartitionPreservesEveryLeaseExactlyOnce) {
  RecoveredState state;
  state.leases = population(1000);
  state.zone_serials[dns::Name::parse("example.com").value()] = 7;
  state.snapshot_lsn = 123;
  state.replayed_records = 55;
  state.torn_records = 1;

  const auto parts = partition_recovered(state, 4);
  ASSERT_EQ(parts.size(), 4u);

  // Per-shard lease counts sum to the unsharded total, and every lease
  // sits in the shard shard_of() names.
  std::size_t total = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    total += parts[i].leases.size();
    for (const Lease& lease : parts[i].leases) {
      EXPECT_EQ(shard_of(lease, 4), i);
    }
    // Zone serials and snapshot LSN replicate to every shard.
    EXPECT_EQ(parts[i].zone_serials, state.zone_serials);
    EXPECT_EQ(parts[i].snapshot_lsn, state.snapshot_lsn);
  }
  EXPECT_EQ(total, state.leases.size());

  // Recovery telemetry is not double-counted: shard 0 only.
  EXPECT_EQ(parts[0].replayed_records, 55u);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].replayed_records, 0u);
    EXPECT_EQ(parts[i].torn_records, 0u);
  }
}

TEST(Shard, PartitionedTrackFileCountsMatchUnsharded) {
  // Restoring each partition into its own TrackFile and summing live
  // counts must equal the single unsharded TrackFile's count.
  RecoveredState state;
  state.leases = population(800);

  metrics::MetricsRegistry registry;
  core::TrackFile whole(&registry);
  for (const Lease& lease : state.leases) whole.restore(lease);

  const net::SimTime now = 2000;  // all leases valid (granted 1000, 60s)
  const auto parts = partition_recovered(state, 5);
  std::size_t sharded_live = 0;
  std::size_t sharded_size = 0;
  for (const auto& part : parts) {
    core::TrackFile shard_file(&registry);
    for (const Lease& lease : part.leases) shard_file.restore(lease);
    sharded_live += shard_file.live_count(now);
    sharded_size += shard_file.size();
  }
  EXPECT_EQ(sharded_live, whole.live_count(now));
  EXPECT_EQ(sharded_size, whole.size());
}

}  // namespace
}  // namespace dnscup::core

#include <gtest/gtest.h>

#include <cmath>

#include "core/lease_math.h"

namespace dnscup::core {
namespace {

TEST(LeaseMath, ProbabilityFormula) {
  // P = t / (t + 1/λ): with λ = 1 q/s and t = 1 s, P = 0.5.
  EXPECT_DOUBLE_EQ(lease_probability(1.0, 1.0), 0.5);
  // λ = 0.1 (one query per 10 s), t = 10 -> P = 10/20 = 0.5.
  EXPECT_DOUBLE_EQ(lease_probability(10.0, 0.1), 0.5);
  // t = 30, λ = 0.1 -> 30/40 = 0.75.
  EXPECT_DOUBLE_EQ(lease_probability(30.0, 0.1), 0.75);
}

TEST(LeaseMath, ProbabilityBounds) {
  EXPECT_DOUBLE_EQ(lease_probability(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(lease_probability(-3.0, 5.0), 0.0);
  // P -> 1 as t -> inf, never reaching it.
  EXPECT_LT(lease_probability(1e12, 1.0), 1.0);
  EXPECT_GT(lease_probability(1e12, 1.0), 0.999);
}

TEST(LeaseMath, RenewalRateFormula) {
  // M = 1 / (t + 1/λ): λ = 1, t = 1 -> 0.5 renewals/s.
  EXPECT_DOUBLE_EQ(renewal_rate(1.0, 1.0), 0.5);
  // t = 0 degenerates to polling at the full query rate.
  EXPECT_DOUBLE_EQ(renewal_rate(0.0, 3.0), 3.0);
}

TEST(LeaseMath, RenewalNeverExceedsQueryRate) {
  for (double t : {0.0, 0.1, 1.0, 100.0, 1e6}) {
    for (double rate : {0.01, 1.0, 50.0}) {
      EXPECT_LE(renewal_rate(t, rate), rate);
    }
  }
}

TEST(LeaseMath, ComplementIdentity) {
  // M = λ(1 - P): renewals happen exactly when no lease is live.
  for (double t : {0.5, 2.0, 77.0}) {
    for (double rate : {0.2, 1.0, 9.0}) {
      EXPECT_NEAR(renewal_rate(t, rate),
                  rate * (1.0 - lease_probability(t, rate)), 1e-12);
    }
  }
}

TEST(LeaseMath, InverseFunction) {
  for (double p : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    for (double rate : {0.01, 1.0, 42.0}) {
      const double t = lease_length_for_probability(p, rate);
      EXPECT_NEAR(lease_probability(t, rate), p, 1e-9);
    }
  }
}

TEST(LeaseMath, MonotoneInLeaseLength) {
  double prev_p = -1.0;
  double prev_m = 2.0;
  for (double t : {0.0, 1.0, 10.0, 100.0, 1000.0}) {
    const double p = lease_probability(t, 1.0);
    const double m = renewal_rate(t, 1.0);
    EXPECT_GT(p, prev_p);
    EXPECT_LT(m, prev_m);
    prev_p = p;
    prev_m = m;
  }
}

// The §4.1 exchange-rate theorem: for any t2 > t1,
// ΔM / ΔP = λ exactly.
class ExchangeRate
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ExchangeRate, DeltaRatioEqualsQueryRate) {
  const auto [rate, t1, t2] = GetParam();
  ASSERT_LT(t1, t2);
  const double dp = lease_probability(t2, rate) - lease_probability(t1, rate);
  const double dm = renewal_rate(t1, rate) - renewal_rate(t2, rate);
  ASSERT_GT(dp, 0.0);
  EXPECT_NEAR(dm / dp, rate, rate * 1e-9);
  EXPECT_NEAR(message_per_storage_ratio(rate), rate, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExchangeRate,
    ::testing::Combine(::testing::Values(0.01, 0.5, 2.0, 25.0),
                       ::testing::Values(0.0, 1.0, 30.0),
                       ::testing::Values(60.0, 3600.0, 6.0 * 86400.0)));

}  // namespace
}  // namespace dnscup::core

// Coverage for the daemons' shared CLI plumbing (tools/tool_common.h):
// serving-flag parsing (including the io-backend, pin-cpus and push-plane
// flags and their rejection paths), endpoint parsing with error
// reporting, the metrics dump helper and counter aggregation.
#include "../tools/tool_common.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dnscup::tools {
namespace {

/// argv-shaped cursor: parse_serving_flag consumes value arguments
/// through the same `next` closure the daemons use.
struct Args {
  explicit Args(std::vector<std::string> argv) : argv_(std::move(argv)) {}

  FlagParse parse(ServingFlags& flags) {
    const std::string arg = argv_.at(i_++);
    return parse_serving_flag(
        arg,
        [this]() -> const char* {
          return i_ < argv_.size() ? argv_[i_++].c_str() : nullptr;
        },
        flags);
  }

  std::vector<std::string> argv_;
  std::size_t i_ = 0;
};

TEST(ServingFlagsTest, ParsesCoreServingFlags) {
  ServingFlags flags(5300);
  EXPECT_EQ(flags.port, 5300);

  EXPECT_EQ(Args({"--port", "4000"}).parse(flags), FlagParse::kMatched);
  EXPECT_EQ(flags.port, 4000);
  EXPECT_EQ(Args({"--workers", "4"}).parse(flags), FlagParse::kMatched);
  EXPECT_EQ(flags.workers, 4);
  EXPECT_EQ(Args({"--batch", "64"}).parse(flags), FlagParse::kMatched);
  EXPECT_EQ(flags.batch, 64);
  EXPECT_EQ(Args({"--no-reuseport"}).parse(flags), FlagParse::kMatched);
  EXPECT_FALSE(flags.reuseport);
  EXPECT_EQ(Args({"--no-dnscup"}).parse(flags), FlagParse::kMatched);
  EXPECT_FALSE(flags.dnscup);

  // Zero/negative worker and batch counts are rejected, not clamped.
  EXPECT_EQ(Args({"--workers", "0"}).parse(flags), FlagParse::kError);
  EXPECT_EQ(Args({"--batch", "-1"}).parse(flags), FlagParse::kError);
  // A value flag at the end of argv has no value to consume.
  EXPECT_EQ(Args({"--port"}).parse(flags), FlagParse::kError);
  // Unknown flags are left for the daemon's own parser.
  EXPECT_EQ(Args({"--zone"}).parse(flags), FlagParse::kUnmatched);
}

TEST(ServingFlagsTest, ParsesIoBackend) {
  ServingFlags flags(5300);
  EXPECT_EQ(Args({"--io-backend", "portable"}).parse(flags),
            FlagParse::kMatched);
  EXPECT_EQ(flags.io_backend, net::IoBackendKind::kPortable);
  EXPECT_EQ(Args({"--io-backend", "uring"}).parse(flags),
            FlagParse::kMatched);
  EXPECT_EQ(flags.io_backend, net::IoBackendKind::kUring);
  EXPECT_EQ(Args({"--io-backend", "default"}).parse(flags),
            FlagParse::kMatched);
  EXPECT_EQ(flags.io_backend, net::IoBackendKind::kDefault);
  EXPECT_EQ(Args({"--io-backend", "dpdk"}).parse(flags), FlagParse::kError);
  EXPECT_EQ(Args({"--io-backend"}).parse(flags), FlagParse::kError);
}

TEST(ServingFlagsTest, ParsesPinCpus) {
  ServingFlags flags(5300);
  EXPECT_EQ(Args({"--pin-cpus", "0,2,4"}).parse(flags), FlagParse::kMatched);
  EXPECT_EQ(flags.pin_cpus, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(Args({"--pin-cpus", "7"}).parse(flags), FlagParse::kMatched);
  EXPECT_EQ(flags.pin_cpus, (std::vector<int>{7}));

  EXPECT_EQ(Args({"--pin-cpus", ""}).parse(flags), FlagParse::kError);
  EXPECT_EQ(Args({"--pin-cpus", "0,"}).parse(flags), FlagParse::kError);
  EXPECT_EQ(Args({"--pin-cpus", "0,x"}).parse(flags), FlagParse::kError);
  EXPECT_EQ(Args({"--pin-cpus", "-1"}).parse(flags), FlagParse::kError);
  EXPECT_EQ(Args({"--pin-cpus", "9999"}).parse(flags), FlagParse::kError);
}

TEST(ServingFlagsTest, ParsesPushPlaneFlags) {
  ServingFlags flags(5300);
  EXPECT_FALSE(flags.push_plane);

  EXPECT_EQ(Args({"--push-plane"}).parse(flags), FlagParse::kMatched);
  EXPECT_TRUE(flags.push_plane);

  // --push-listen and --push-authority imply --push-plane on their own.
  ServingFlags listen(5300);
  EXPECT_EQ(Args({"--push-listen", "4444"}).parse(listen),
            FlagParse::kMatched);
  EXPECT_TRUE(listen.push_plane);
  EXPECT_EQ(listen.push_listen, 4444);
  EXPECT_EQ(Args({"--push-listen", "99999"}).parse(listen),
            FlagParse::kError);

  ServingFlags authority(5301);
  EXPECT_EQ(Args({"--push-authority", "127.0.0.1:5300"}).parse(authority),
            FlagParse::kMatched);
  EXPECT_TRUE(authority.push_plane);
  EXPECT_EQ(authority.push_authority,
            (net::Endpoint{net::make_ip(127, 0, 0, 1), 5300}));
  EXPECT_EQ(Args({"--push-authority", "127.0.0.1:53x"}).parse(authority),
            FlagParse::kError);
}

TEST(ParseEndpointTest, AcceptsCanonicalForm) {
  const auto endpoint = net::parse_endpoint("10.1.2.3:53");
  ASSERT_TRUE(endpoint.has_value());
  EXPECT_EQ(endpoint->ip, net::make_ip(10, 1, 2, 3));
  EXPECT_EQ(endpoint->port, 53);
  EXPECT_EQ(endpoint->to_string(), "10.1.2.3:53");
}

TEST(ParseEndpointTest, RejectsTrailingGarbageAfterThePort) {
  // Regression: "127.0.0.1:53x" must not parse as port 53.
  std::string error;
  EXPECT_FALSE(net::parse_endpoint("127.0.0.1:53x", &error).has_value());
  EXPECT_NE(error.find("127.0.0.1:53x"), std::string::npos)
      << "error must name the offending input: " << error;
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;

  EXPECT_FALSE(net::parse_endpoint("127.0.0.1:53 ").has_value());
  EXPECT_FALSE(net::parse_endpoint("127.0.0.1:53:54").has_value());
}

TEST(ParseEndpointTest, RejectsMalformedInputsWithSpecificErrors) {
  std::string error;
  EXPECT_FALSE(net::parse_endpoint("", &error).has_value());
  EXPECT_FALSE(net::parse_endpoint("127.0.0.1", &error).has_value());
  EXPECT_NE(error.find("missing ':port'"), std::string::npos) << error;
  EXPECT_FALSE(net::parse_endpoint("300.0.0.1:53", &error).has_value());
  EXPECT_NE(error.find("malformed IPv4"), std::string::npos) << error;
  EXPECT_FALSE(net::parse_endpoint("1.2.3:53", &error).has_value());
  EXPECT_FALSE(net::parse_endpoint("127.0.0.1:0", &error).has_value());
  EXPECT_NE(error.find("port 0"), std::string::npos) << error;
  EXPECT_FALSE(net::parse_endpoint("127.0.0.1:65536", &error).has_value());
  EXPECT_FALSE(net::parse_endpoint("127.0.0.1:", &error).has_value());
  // The null-error overload still just rejects.
  EXPECT_FALSE(net::parse_endpoint("bogus").has_value());
}

TEST(MetricsHelpersTest, DumpWritesSnapshotJson) {
  metrics::MetricsRegistry registry;
  metrics::Counter requests = registry.counter("tool_test_requests");
  requests.inc(3);

  const std::string path = "tool_common_test_metrics.json";
  dump_metrics(registry.snapshot(123), path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "dump did not create " << path;
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("tool_test_requests"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsHelpersTest, CounterSumCollapsesWorkersAndFiltersLabels) {
  metrics::MetricsRegistry a;
  metrics::MetricsRegistry b;
  a.counter("events", {{"result", "ok"}}).inc(2);
  a.counter("events", {{"result", "err"}}).inc(1);
  b.counter("events", {{"result", "ok"}}).inc(5);
  b.counter("other", {{"result", "ok"}}).inc(100);

  auto merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(counter_sum(merged, "events"), 8u);
  EXPECT_EQ(counter_sum(merged, "events", "result", "ok"), 7u);
  EXPECT_EQ(counter_sum(merged, "events", "result", "err"), 1u);
  EXPECT_EQ(counter_sum(merged, "events", "result", "missing"), 0u);
}

}  // namespace
}  // namespace dnscup::tools

#include <gtest/gtest.h>

#include "core/lease_math.h"
#include "sim/lease_sim.h"
#include "util/rng.h"

namespace dnscup::sim {
namespace {

using core::DemandEntry;
using core::LeasePlan;

TEST(LeaseSim, PollingMatchesQueryCount) {
  const std::vector<DemandEntry> demands{{0, 0, 2.0, 100.0}};
  const auto result =
      simulate_leases(demands, {0.0}, 10000.0, /*seed=*/1);
  EXPECT_EQ(result.messages, result.queries);
  EXPECT_DOUBLE_EQ(result.query_rate_percentage, 100.0);
  EXPECT_DOUBLE_EQ(result.mean_live_leases, 0.0);
  // ~2 q/s over 10,000 s -> about 20,000 arrivals.
  EXPECT_NEAR(static_cast<double>(result.queries), 20000.0, 600.0);
}

TEST(LeaseSim, LeasedPairMatchesClosedForm) {
  // One pair, λ = 1 q/s, t = 9 s: P = 0.9, M = 0.1/s.
  const std::vector<DemandEntry> demands{{0, 0, 1.0, 100.0}};
  const auto result = simulate_leases(demands, {9.0}, 50000.0, 2);
  EXPECT_NEAR(result.mean_live_leases, 0.9, 0.02);
  EXPECT_NEAR(result.message_rate, 0.1, 0.01);
}

class AnalyticAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnalyticAgreement, EventSimMatchesEvaluatePlan) {
  util::Rng rng(GetParam());
  std::vector<DemandEntry> demands;
  for (int i = 0; i < 20; ++i) {
    DemandEntry d;
    d.record = static_cast<std::size_t>(i);
    d.cache = 0;
    d.rate = rng.uniform_real(0.05, 3.0);
    d.max_lease = rng.uniform_real(5.0, 500.0);
    demands.push_back(d);
  }
  // Lease half of the pairs at random lengths.
  std::vector<double> lengths(demands.size(), 0.0);
  for (std::size_t i = 0; i < demands.size(); i += 2) {
    lengths[i] = rng.uniform_real(1.0, demands[i].max_lease);
  }

  LeasePlan plan;
  plan.lengths = lengths;
  core::evaluate_plan(demands, plan);
  const auto sim = simulate_leases(demands, lengths, 30000.0, GetParam());

  // The event-driven measurement agrees with §4.1's closed form within
  // Monte-Carlo noise.
  EXPECT_NEAR(sim.mean_live_leases, plan.total_storage,
              0.05 * plan.total_storage + 0.1);
  EXPECT_NEAR(sim.message_rate, plan.total_message_rate,
              0.05 * plan.total_message_rate + 0.05);
  EXPECT_NEAR(sim.storage_percentage, plan.storage_percentage,
              plan.storage_percentage * 0.08 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyticAgreement,
                         ::testing::Values(3, 4, 5, 6, 7));

TEST(LeaseSim, LongerLeaseFewerMessages) {
  const std::vector<DemandEntry> demands{{0, 0, 1.0, 10000.0}};
  const auto short_lease = simulate_leases(demands, {10.0}, 20000.0, 9);
  const auto long_lease = simulate_leases(demands, {100.0}, 20000.0, 9);
  EXPECT_GT(short_lease.messages, long_lease.messages);
  EXPECT_LT(short_lease.mean_live_leases, long_lease.mean_live_leases);
}

TEST(LeaseSim, ZeroRatePairContributesNothing) {
  const std::vector<DemandEntry> demands{
      {0, 0, 0.0, 100.0},
      {1, 0, 1.0, 100.0},
  };
  const auto result = simulate_leases(demands, {50.0, 50.0}, 1000.0, 10);
  EXPECT_GT(result.queries, 0u);
  // All queries come from the live pair.
  EXPECT_NEAR(static_cast<double>(result.queries), 1000.0, 120.0);
}

TEST(LeaseSim, DeterministicForSeed) {
  const std::vector<DemandEntry> demands{{0, 0, 1.0, 100.0}};
  const auto a = simulate_leases(demands, {30.0}, 5000.0, 42);
  const auto b = simulate_leases(demands, {30.0}, 5000.0, 42);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.messages, b.messages);
}

}  // namespace
}  // namespace dnscup::sim

// End-to-end tests of the sharded multi-worker serving runtime: real
// sockets, N worker threads, lease grants over the wire, CACHE-UPDATE
// fan-out on zone reload, cross-shard metrics aggregation and durable
// journaling through the single-writer store.  These are also the tests
// the ThreadSanitizer leg of tools/check.sh runs.
#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cache_update.h"
#include "net/udp_transport.h"
#include "dns/zone_text.h"
#include "store/lease_store.h"

namespace dnscup::runtime {
namespace {

constexpr const char* kZoneText = R"($ORIGIN example.com.
@ IN SOA ns1.example.com. admin.example.com. 1 7200 900 604800 300
@ 300 IN NS ns1.example.com.
ns1 300 IN A 10.0.0.1
w0 300 IN A 10.1.0.10
w1 300 IN A 10.1.0.11
w2 300 IN A 10.1.0.12
w3 300 IN A 10.1.0.13
w4 300 IN A 10.1.0.14
w5 300 IN A 10.1.0.15
w6 300 IN A 10.1.0.16
w7 300 IN A 10.1.0.17
)";

dns::Zone test_zone(const char* text = kZoneText) {
  auto zone =
      dns::parse_zone_text(text, dns::Name::parse("example.com").value());
  EXPECT_TRUE(zone.ok()) << (zone.ok() ? "" : zone.error().to_string());
  return std::move(zone).value();
}

Config test_config(int workers) {
  Config config;
  config.port = 0;  // ephemeral — tests must not collide on a fixed port
  config.workers = workers;
  return config;
}

/// A client socket that decodes every inbound message, optionally acks
/// CACHE-UPDATE pushes, and lets tests wait on predicates.
class Client {
 public:
  explicit Client(bool ack_updates = false) {
    auto bound = net::UdpTransport::bind(0);
    EXPECT_TRUE(bound.ok());
    udp_ = std::move(bound).value();
    udp_->set_receive_handler([this, ack_updates](
                                  const net::Endpoint& from,
                                  std::span<const uint8_t> data) {
      auto message = dns::Message::decode(data);
      if (!message.ok()) return;
      if (ack_updates &&
          message.value().flags.opcode == dns::Opcode::kCacheUpdate &&
          !message.value().flags.qr) {
        // Ack from inside the receive callback, like a real cache.
        udp_->send(from, core::make_cache_update_ack(message.value())
                             .encode());
      }
      std::lock_guard lock(mutex_);
      messages_.push_back(std::move(message).value());
      cv_.notify_all();
    });
  }

  const net::Endpoint& endpoint() const { return udp_->local_endpoint(); }

  /// Sends one query and blocks for the matching response.
  dns::Message query(const net::Endpoint& server, const std::string& name,
                     bool ext) {
    dns::Message query;
    query.id = next_id_++;
    query.flags.opcode = dns::Opcode::kQuery;
    query.flags.rd = true;
    query.flags.ext = ext;
    query.questions.push_back(dns::Question{
        dns::Name::parse(name).value(), dns::RRType::kA, dns::RRClass::kIN,
        ext ? dns::rrc_from_rate(5.0) : static_cast<uint16_t>(0)});
    udp_->send(server, query.encode());
    dns::Message response;
    const bool got = wait_for([&](const std::vector<dns::Message>& all) {
      for (const dns::Message& m : all) {
        if (m.flags.qr && m.id == query.id) {
          response = m;
          return true;
        }
      }
      return false;
    });
    EXPECT_TRUE(got) << "no response for " << name;
    return response;
  }

  /// Waits until `pred(messages)` holds (5s cap).
  template <typename Pred>
  bool wait_for(Pred pred) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, std::chrono::seconds(5),
                        [&] { return pred(messages_); });
  }

  std::vector<dns::Message> messages() {
    std::lock_guard lock(mutex_);
    return messages_;
  }

 private:
  std::unique_ptr<net::UdpTransport> udp_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<dns::Message> messages_;
  uint16_t next_id_ = 100;
};

uint64_t counter_sum(const metrics::Snapshot& snapshot, const char* name) {
  return snapshot.counter_total(name);
}

std::string temp_dir(const char* tag) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("dnscup_runtime_test_") + tag + "_" +
              std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(ServingRuntime, ServesAcrossWorkersAndAggregatesMetrics) {
  auto started = ServingRuntime::start(test_config(4), {test_zone()});
  ASSERT_TRUE(started.ok()) << started.error().to_string();
  ServingRuntime& rt = *started.value();
  ASSERT_FALSE(rt.endpoints().empty());
  const net::Endpoint server = rt.endpoints()[0];

  // Several client sockets: under SO_REUSEPORT each flow hashes to some
  // worker; with per-worker-port fallback they all hit worker 0 — either
  // way every query must be answered and every EXT query leased.
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 6; ++i) clients.push_back(std::make_unique<Client>());
  int queries = 0;
  for (int round = 0; round < 4; ++round) {
    for (auto& client : clients) {
      const std::string name = "w" + std::to_string(round * 2) +
                               ".example.com";
      const auto response = client->query(server, name, /*ext=*/true);
      EXPECT_EQ(response.flags.rcode, dns::Rcode::kNoError);
      EXPECT_TRUE(response.flags.ext);
      EXPECT_GT(response.llt, 0) << "EXT query must be leased";
      ++queries;
    }
  }

  // Each (client, name) pair is one lease tuple.
  EXPECT_EQ(rt.live_leases(), clients.size() * 4);

  // The merged snapshot sees every worker's counters.
  const auto snapshot = rt.metrics();
  EXPECT_EQ(counter_sum(snapshot, "auth_server_requests"),
            static_cast<uint64_t>(queries));
  EXPECT_EQ(counter_sum(snapshot, "listener_lease_decisions"),
            static_cast<uint64_t>(queries));

  rt.stop();
}

TEST(ServingRuntime, PerWorkerPortFallbackServesOnEveryPort) {
  Config config = test_config(3);
  config.reuseport = false;  // force the fallback path
  auto started = ServingRuntime::start(config, {test_zone()});
  ASSERT_TRUE(started.ok()) << started.error().to_string();
  ServingRuntime& rt = *started.value();
  EXPECT_FALSE(rt.reuseport_active());
  ASSERT_EQ(rt.endpoints().size(), 3u);

  Client client;
  for (const net::Endpoint& endpoint : rt.endpoints()) {
    const auto response = client.query(endpoint, "w1.example.com", false);
    EXPECT_EQ(response.flags.rcode, dns::Rcode::kNoError);
    ASSERT_EQ(response.answers.size(), 1u);
  }
  rt.stop();
}

TEST(ServingRuntime, ReloadZonePushesCacheUpdateToLeaseholder) {
  auto started = ServingRuntime::start(test_config(4), {test_zone()});
  ASSERT_TRUE(started.ok()) << started.error().to_string();
  ServingRuntime& rt = *started.value();
  const net::Endpoint server = rt.endpoints()[0];

  Client cache(/*ack_updates=*/true);
  const auto response = cache.query(server, "w0.example.com", /*ext=*/true);
  ASSERT_GT(response.llt, 0);

  // Operator edit: w0 changes address.  Every worker diffs the same
  // snapshot; the one owning the lease pushes CACHE-UPDATE.
  auto edited = test_zone(R"($ORIGIN example.com.
@ IN SOA ns1.example.com. admin.example.com. 2 7200 900 604800 300
@ 300 IN NS ns1.example.com.
ns1 300 IN A 10.0.0.1
w0 300 IN A 10.9.9.9
w1 300 IN A 10.1.0.11
w2 300 IN A 10.1.0.12
w3 300 IN A 10.1.0.13
w4 300 IN A 10.1.0.14
w5 300 IN A 10.1.0.15
w6 300 IN A 10.1.0.16
w7 300 IN A 10.1.0.17
)");
  const std::size_t changes = rt.reload_zone(std::move(edited));
  EXPECT_EQ(changes, 1u) << "exactly the w0 RRset changed";

  ASSERT_TRUE(cache.wait_for([](const std::vector<dns::Message>& all) {
    for (const dns::Message& m : all) {
      if (m.flags.opcode == dns::Opcode::kCacheUpdate && !m.flags.qr) {
        return true;
      }
    }
    return false;
  })) << "leaseholder never received the CACHE-UPDATE push";

  // The ack sent from inside the cache's receive callback must reach the
  // pushing worker and settle the retransmission state.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  uint64_t acked = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto snapshot = rt.metrics();
    acked = 0;
    for (const auto& entry : snapshot.entries) {
      if (entry.name != "cache_update_messages") continue;
      for (const auto& [k, v] : entry.labels) {
        if (k == "result" && v == "acked") acked += entry.counter_value;
      }
    }
    if (acked > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(acked, 1u);
  rt.stop();
}

TEST(ServingRuntime, ShardedJournalingSurvivesRestart) {
  const std::string dir = temp_dir("journal");
  Config config = test_config(4);
  config.state_dir = dir;
  config.fsync = store::FsyncPolicy::kNever;  // speed; equivalence only

  std::string before;
  std::size_t leases = 0;
  {
    auto started = ServingRuntime::start(config, {test_zone()});
    ASSERT_TRUE(started.ok()) << started.error().to_string();
    ServingRuntime& rt = *started.value();
    ASSERT_TRUE(rt.durable());
    const net::Endpoint server = rt.endpoints()[0];

    std::vector<std::unique_ptr<Client>> clients;
    for (int i = 0; i < 5; ++i) clients.push_back(std::make_unique<Client>());
    for (int n = 0; n < 8; ++n) {
      for (auto& client : clients) {
        const auto response = client->query(
            server, "w" + std::to_string(n) + ".example.com", true);
        ASSERT_GT(response.llt, 0);
      }
    }
    leases = rt.live_leases();
    EXPECT_EQ(leases, 40u);
    before = rt.serialize_track_files();
    rt.stop();  // drains every shard's ops into the WAL + final snapshot
  }

  // Restart from the same state dir: the recovered lease set must be
  // exactly what the sharded run journaled, repartitioned across shards.
  {
    auto started = ServingRuntime::start(config, {test_zone()});
    ASSERT_TRUE(started.ok()) << started.error().to_string();
    ServingRuntime& rt = *started.value();
    EXPECT_EQ(rt.recovery().leases_restored, leases);
    EXPECT_EQ(rt.recovery().leases_expired, 0u);
    EXPECT_EQ(rt.serialize_track_files(), before)
        << "restart must reproduce the pre-crash track file byte for byte";
    rt.stop();
  }

  // Single-writer equivalence: a plain (unsharded) LeaseStore open on the
  // same directory recovers the same lease set.
  {
    store::PosixStorage storage;
    store::LeaseStore::Config store_config;
    store_config.dir = dir;
    metrics::MetricsRegistry registry;
    store_config.metrics = &registry;
    core::RecoveredState recovered;
    auto opened = store::LeaseStore::open(&storage, store_config, &recovered);
    ASSERT_TRUE(opened.ok()) << opened.error().to_string();
    EXPECT_EQ(recovered.leases.size(), leases);
  }
  std::filesystem::remove_all(dir);
}

TEST(ServingRuntime, GracefulStopIsIdempotentAndPostStopInspectable) {
  auto started = ServingRuntime::start(test_config(2), {test_zone()});
  ASSERT_TRUE(started.ok()) << started.error().to_string();
  ServingRuntime& rt = *started.value();

  Client client;
  client.query(rt.endpoints()[0], "w3.example.com", true);

  rt.stop();
  rt.stop();  // idempotent

  // Post-stop, control-plane reads run inline on the caller.
  EXPECT_EQ(rt.live_leases(), 1u);
  EXPECT_FALSE(rt.serialize_track_files().empty());
  EXPECT_GT(rt.metrics().entries.size(), 0u);
}

}  // namespace
}  // namespace dnscup::runtime

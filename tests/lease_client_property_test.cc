// Seeded property tests for the cache-side lease module under adversarial
// links: every packet in the testbed (pushes, acks, queries, updates) may
// be lost, duplicated or reordered (jitter), across a sweep of RNG seeds.
// Whatever the link does, three invariants must hold:
//
//   1. No rollback: a zone serial is applied at most once, so duplicated
//      or reordered CACHE-UPDATE pushes can never regress the cache to
//      older data (extra copies land in stale_updates_ignored instead).
//   2. Idempotent acks: every authorized push that arrives is acked —
//      including duplicates, so a notifier whose first ack was lost can
//      always stop retransmitting.
//   3. Convergence: once the lease and the TTL have both run out, a fresh
//      resolution returns the authority's current data — lost pushes and
//      exhausted retry budgets degrade freshness, never correctness.
#include <gtest/gtest.h>

#include "sim/testbed.h"

namespace dnscup::core {
namespace {

using dns::RRType;
using sim::Testbed;
using sim::TestbedConfig;

dns::Ipv4 address_for_round(int round) {
  return dns::Ipv4::parse("198.18.1." + std::to_string(round + 1)).value();
}

/// Resolves through cache 0, retrying a few times — on a lossy link a
/// single resolution may exhaust its retry budget, which is the
/// resolver's business, not this test's.
dns::Ipv4 resolved_address(Testbed& tb) {
  for (int attempt = 0; attempt < 10; ++attempt) {
    const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
    if (r.has_value() &&
        r->status == server::CachingResolver::Outcome::Status::kOk &&
        !r->rrset.rdatas.empty()) {
      return std::get<dns::ARdata>(r->rrset.rdatas[0]).address;
    }
  }
  ADD_FAILURE() << "resolution never succeeded";
  return dns::Ipv4{};
}

/// Repoints zone 0's web host, retrying when the UPDATE or its response
/// fell to the lossy link.  replace_a is idempotent, so a retry after a
/// lost *response* (update applied, ack dropped) is harmless.
void repoint_until_applied(Testbed& tb, dns::Ipv4 address) {
  for (int attempt = 0; attempt < 20; ++attempt) {
    if (tb.repoint_web_host(0, address) == dns::Rcode::kNoError) return;
  }
  FAIL() << "update never reached the master";
}

struct SweepParams {
  double loss = 0.0;
  double duplicate = 0.0;
  net::Duration jitter = 0;
};

void run_seed(uint64_t seed, const SweepParams& params) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " loss=" + std::to_string(params.loss) +
               " dup=" + std::to_string(params.duplicate));
  TestbedConfig config;
  config.zones = 2;
  config.caches = 1;
  config.record_ttl = 300;
  config.max_lease = net::minutes(10);
  config.seed = seed;
  config.link.latency = net::milliseconds(1);
  config.link.jitter = params.jitter;  // reorders packets in flight
  config.link.loss_probability = params.loss;
  config.link.duplicate_probability = params.duplicate;
  Testbed tb(config);

  // Warm + lease the record, then change it several times while the link
  // mangles the pushes and the acks.
  const uint32_t serial_before =
      tb.master().find_zone(tb.zone_origin(0))->serial();
  resolved_address(tb);
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    repoint_until_applied(tb, address_for_round(round));
    tb.loop().run_for(net::seconds(30));
  }
  const uint32_t zone_changes =
      tb.master().find_zone(tb.zone_origin(0))->serial() - serial_before;
  ASSERT_GE(zone_changes, static_cast<uint32_t>(kRounds));

  const auto stats = tb.lease_client(0)->stats();

  // Invariant 1 — no rollback: each zone serial is applied at most once,
  // no matter how many copies of each push arrived; every other arrival
  // was recognized as stale/duplicate and ignored.
  EXPECT_LE(stats.updates_applied, static_cast<uint64_t>(zone_changes));
  EXPECT_EQ(stats.updates_received,
            stats.updates_applied + stats.stale_updates_ignored);
  EXPECT_EQ(stats.unauthorized_updates, 0u);
  EXPECT_EQ(stats.auth_failures, 0u);

  // Invariant 2 — idempotent acks: every authorized arrival was acked,
  // duplicates included.
  EXPECT_EQ(stats.acks_sent, stats.updates_received);

  // The cache settled on *some* version; once the loop is idle its answer
  // is stable (no torn application).
  const auto settled = resolved_address(tb);
  EXPECT_EQ(resolved_address(tb), settled);

  // Invariant 3 — convergence: after lease (10 min) and TTL (5 min) have
  // both expired, a fresh resolution reflects the final authority state,
  // even when every push of it was lost and the notifier gave up.
  tb.loop().run_for(config.max_lease + net::seconds(config.record_ttl) +
                    net::minutes(1));
  EXPECT_EQ(resolved_address(tb), address_for_round(kRounds - 1));
}

TEST(LeaseClientProperty, LossyDuplicatingReorderingLinks) {
  const SweepParams regimes[] = {
      {0.0, 0.5, net::milliseconds(20)},    // dup + reorder
      {0.3, 0.0, net::milliseconds(20)},    // loss + reorder
      {0.25, 0.25, net::milliseconds(50)},  // everything at once
      {0.5, 0.5, net::milliseconds(5)},     // heavy loss and dup
  };
  // 4 regimes x 9 seeds = 36 adversarial runs (>= the 32-seed floor).
  for (const SweepParams& params : regimes) {
    for (uint64_t seed = 1; seed <= 9; ++seed) {
      run_seed(seed * 7919, params);
    }
  }
}

TEST(LeaseClientProperty, PristineLinkAppliesEveryPushExactlyOnce) {
  // Control run: with a perfect link the inequalities above collapse to
  // equalities — every change pushed, applied once, acked once.
  TestbedConfig config;
  config.zones = 2;
  config.caches = 1;
  config.record_ttl = 300;
  config.max_lease = net::minutes(10);
  Testbed tb(config);
  resolved_address(tb);
  for (int round = 0; round < 3; ++round) {
    repoint_until_applied(tb, address_for_round(round));
    tb.loop().run_for(net::seconds(5));
  }
  const auto stats = tb.lease_client(0)->stats();
  EXPECT_EQ(stats.updates_received, 3u);
  EXPECT_EQ(stats.updates_applied, 3u);
  EXPECT_EQ(stats.stale_updates_ignored, 0u);
  EXPECT_EQ(stats.acks_sent, 3u);
  EXPECT_EQ(resolved_address(tb), address_for_round(2));
}

}  // namespace
}  // namespace dnscup::core

#include <gtest/gtest.h>

#include "sim/rates.h"
#include "sim/trace_gen.h"

namespace dnscup::sim {
namespace {

using dns::Name;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }

TEST(ComputeRates, CountsWithinWindowOnly) {
  std::vector<TraceRecord> trace{
      {net::seconds(10), 0, 1, mk("a.com"), RRType::kA},
      {net::seconds(20), 0, 2, mk("a.com"), RRType::kA},
      {net::seconds(30), 1, 3, mk("a.com"), RRType::kA},
      {net::seconds(200), 0, 1, mk("a.com"), RRType::kA},  // outside window
  };
  const auto rates = compute_rates(trace, 100.0);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates.at(RateKey{0, mk("a.com")}), 0.02);  // 2 / 100 s
  EXPECT_DOUBLE_EQ(rates.at(RateKey{1, mk("a.com")}), 0.01);
}

TEST(ComputeRates, EmptyTrace) {
  EXPECT_TRUE(compute_rates({}, 100.0).empty());
}

TEST(MaxLease, PaperValues) {
  workload::DomainInfo regular;
  regular.category = workload::DomainCategory::kRegular;
  workload::DomainInfo cdn;
  cdn.category = workload::DomainCategory::kCdn;
  workload::DomainInfo dyn;
  dyn.category = workload::DomainCategory::kDyn;
  EXPECT_DOUBLE_EQ(max_lease_for(regular), 6.0 * 86400.0);  // six days
  EXPECT_DOUBLE_EQ(max_lease_for(cdn), 200.0);
  EXPECT_DOUBLE_EQ(max_lease_for(dyn), 6000.0);
}

class DemandsTest : public ::testing::Test {
 protected:
  DemandsTest() {
    workload::PopulationConfig config;
    config.regular_per_group = 30;
    config.cdn_domains = 20;
    config.dyn_domains = 10;
    config.seed = 3;
    population_ = workload::DomainPopulation::generate(config);

    TraceGenConfig trace_config;
    trace_config.clients = 30;
    trace_config.duration_s = 2 * 3600.0;
    trace_config.sessions_per_client_hour = 10.0;
    trace_config.seed = 4;
    trace_ = generate_trace(population_, trace_config);
  }

  workload::DomainPopulation population_{
      workload::DomainPopulation::generate({})};
  std::vector<TraceRecord> trace_;
};

TEST_F(DemandsTest, DemandsMapToPopulation) {
  const auto rates = compute_rates(trace_, 3600.0);
  const auto demands = compute_demands(population_, rates);
  ASSERT_GT(demands.size(), 10u);
  for (const auto& d : demands) {
    ASSERT_LT(d.record, population_.size());
    EXPECT_GT(d.rate, 0.0);
    EXPECT_DOUBLE_EQ(d.max_lease, max_lease_for(population_[d.record]));
    EXPECT_LT(d.cache, 3u);
  }
  EXPECT_EQ(demands.size(), rates.size());
}

TEST_F(DemandsTest, CategoryFilterRestricts) {
  const auto rates = compute_rates(trace_, 3600.0);
  const auto cdn_only = compute_demands(
      population_, rates, {workload::DomainCategory::kCdn});
  for (const auto& d : cdn_only) {
    EXPECT_EQ(population_[d.record].category,
              workload::DomainCategory::kCdn);
    EXPECT_DOUBLE_EQ(d.max_lease, 200.0);
  }
  const auto all = compute_demands(population_, rates);
  EXPECT_LT(cdn_only.size(), all.size());
}

TEST_F(DemandsTest, UnknownNamesSkipped) {
  std::map<RateKey, double> rates;
  rates[RateKey{0, mk("not.in.population.example")}] = 1.0;
  EXPECT_TRUE(compute_demands(population_, rates).empty());
}

}  // namespace
}  // namespace dnscup::sim

// Unit tests for the unified telemetry layer (util/metrics.h): instrument
// semantics, labeled families, snapshot algebra (diff/merge), both
// serializers, and end-to-end snapshot determinism across identically
// seeded simulation runs.
#include "util/metrics.h"

#include <gtest/gtest.h>

#include "sim/consistency_sim.h"
#include "sim/lease_sim.h"

namespace dnscup::metrics {
namespace {

TEST(Counter, SharesRegistryCell) {
  MetricsRegistry registry;
  Counter a = registry.counter("requests");
  Counter b = registry.counter("requests");
  ++a;
  a += 4;
  b.inc();
  EXPECT_EQ(a.value(), 6u);
  EXPECT_EQ(b.value(), 6u);
  EXPECT_EQ(static_cast<uint64_t>(a), 6u);
}

TEST(Counter, DetachedDefaultHandleIsUsable) {
  Counter detached;
  ++detached;
  EXPECT_EQ(detached.value(), 1u);
  MetricsRegistry registry;
  EXPECT_EQ(registry.instrument_count(), 0u);
}

TEST(Gauge, SetAddAndHighWaterMark) {
  MetricsRegistry registry;
  Gauge g = registry.gauge("occupancy");
  g.set(10.0);
  g.add(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set_max(5.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set_max(12.0);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
}

TEST(HistogramMetric, MomentsOnly) {
  MetricsRegistry registry;
  HistogramMetric h = registry.histogram("latency_us");
  h.add(1.0);
  h.add(3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_EQ(h.buckets(), nullptr);
}

TEST(HistogramMetric, Bucketed) {
  MetricsRegistry registry;
  HistogramMetric h =
      registry.histogram("size_bytes", {}, HistogramOptions{0.0, 100.0, 10});
  h.add(5.0);
  h.add(15.0);
  h.add(15.0);
  ASSERT_NE(h.buckets(), nullptr);
  EXPECT_EQ(h.buckets()->bin_count(0), 1u);
  EXPECT_EQ(h.buckets()->bin_count(1), 2u);
}

TEST(Registry, LabelOrderDoesNotMatter) {
  MetricsRegistry registry;
  Counter a = registry.counter("rpc", {{"dir", "tx"}, {"peer", "ns1"}});
  Counter b = registry.counter("rpc", {{"peer", "ns1"}, {"dir", "tx"}});
  ++a;
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(registry.instrument_count(), 1u);
}

TEST(Registry, LabeledFamilyMembersAreDistinct) {
  MetricsRegistry registry;
  Counter sent = registry.counter("msgs", {{"result", "sent"}});
  Counter failed = registry.counter("msgs", {{"result", "failed"}});
  sent += 3;
  ++failed;
  EXPECT_EQ(sent.value(), 3u);
  EXPECT_EQ(failed.value(), 1u);
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_total("msgs"), 4u);
}

TEST(Registry, NextInstanceIsSequentialPerScope) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.next_instance("loop"), "0");
  EXPECT_EQ(registry.next_instance("loop"), "1");
  EXPECT_EQ(registry.next_instance("net"), "0");
}

TEST(Snapshot, EntriesSortedAndFindable) {
  MetricsRegistry registry;
  registry.counter("zeta").inc(1);
  registry.counter("alpha", {{"k", "v"}}).inc(2);
  registry.gauge("alpha").set(1.5);
  const Snapshot snap = registry.snapshot(123);
  EXPECT_EQ(snap.timestamp_us, 123);
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "alpha");
  EXPECT_TRUE(snap.entries[0].labels.empty());  // {} sorts before {{"k","v"}}
  EXPECT_EQ(snap.entries[2].name, "zeta");

  const Snapshot::Entry* labeled = snap.find("alpha", {{"k", "v"}});
  ASSERT_NE(labeled, nullptr);
  EXPECT_EQ(labeled->counter_value, 2u);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(Snapshot, DiffSubtractsCountersKeepsGauges) {
  MetricsRegistry registry;
  Counter c = registry.counter("events");
  Gauge g = registry.gauge("depth");
  HistogramMetric h = registry.histogram("lat");
  c += 10;
  g.set(5.0);
  h.add(2.0);
  const Snapshot before = registry.snapshot(100);
  c += 7;
  g.set(9.0);
  h.add(4.0);
  h.add(6.0);
  const Snapshot after = registry.snapshot(200);

  const Snapshot delta = Snapshot::diff(before, after);
  EXPECT_EQ(delta.timestamp_us, 200);
  EXPECT_EQ(delta.find("events")->counter_value, 7u);
  EXPECT_DOUBLE_EQ(delta.find("depth")->gauge_value, 9.0);
  EXPECT_EQ(delta.find("lat")->histogram.count, 2u);
  EXPECT_DOUBLE_EQ(delta.find("lat")->histogram.sum, 10.0);
  EXPECT_DOUBLE_EQ(delta.find("lat")->histogram.mean, 5.0);
}

TEST(Snapshot, DiffClampsBackwardCounters) {
  MetricsRegistry before_reg;
  MetricsRegistry after_reg;
  before_reg.counter("n").inc(10);
  after_reg.counter("n").inc(3);  // "after" below "before": clamp to zero
  const Snapshot delta =
      Snapshot::diff(before_reg.snapshot(), after_reg.snapshot());
  EXPECT_EQ(delta.find("n")->counter_value, 0u);
}

TEST(Snapshot, MergeAddsCountersAndMomentsExactly) {
  MetricsRegistry shard_a;
  MetricsRegistry shard_b;
  shard_a.counter("n").inc(2);
  shard_b.counter("n").inc(5);
  shard_b.counter("only_b").inc(1);
  HistogramMetric ha = shard_a.histogram("lat");
  HistogramMetric hb = shard_b.histogram("lat");
  util::RunningStats reference;
  for (double x : {1.0, 2.0, 7.0}) {
    ha.add(x);
    reference.add(x);
  }
  for (double x : {3.0, 11.0}) {
    hb.add(x);
    reference.add(x);
  }

  Snapshot merged = shard_a.snapshot();
  merged.merge(shard_b.snapshot());
  EXPECT_EQ(merged.find("n")->counter_value, 7u);
  EXPECT_EQ(merged.find("only_b")->counter_value, 1u);
  const Snapshot::HistogramData& lat = merged.find("lat")->histogram;
  EXPECT_EQ(lat.count, reference.count());
  EXPECT_DOUBLE_EQ(lat.mean, reference.mean());
  EXPECT_NEAR(lat.stddev, reference.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(lat.min, 1.0);
  EXPECT_DOUBLE_EQ(lat.max, 11.0);
}

TEST(Snapshot, MergeAddsBucketCounts) {
  const HistogramOptions options{0.0, 10.0, 5};
  MetricsRegistry shard_a;
  MetricsRegistry shard_b;
  shard_a.histogram("h", {}, options).add(1.0);
  shard_b.histogram("h", {}, options).add(1.5);
  shard_b.histogram("h", {}, options).add(9.0);
  Snapshot merged = shard_a.snapshot();
  merged.merge(shard_b.snapshot());
  const Snapshot::HistogramData& h = merged.find("h")->histogram;
  ASSERT_EQ(h.bucket_counts.size(), 5u);
  EXPECT_EQ(h.bucket_counts[0], 2u);
  EXPECT_EQ(h.bucket_counts[4], 1u);
}

TEST(Snapshot, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.counter("c", {{"weird", "q\"uo\\te\n"}}).inc(42);
  registry.gauge("g").set(0.1);
  HistogramMetric h =
      registry.histogram("h", {}, HistogramOptions{0.0, 4.0, 2});
  h.add(1.0);
  h.add(3.7);
  const Snapshot original = registry.snapshot(987654);

  const auto parsed = Snapshot::from_json(original.to_json());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value(), original);
  // Shortest-round-trip doubles: a second serialization is byte-identical.
  EXPECT_EQ(parsed.value().to_json(), original.to_json());
}

TEST(Snapshot, FromJsonRejectsGarbage) {
  EXPECT_FALSE(Snapshot::from_json("").ok());
  EXPECT_FALSE(Snapshot::from_json("{\"metrics\":").ok());
  EXPECT_FALSE(Snapshot::from_json("[1,2,3]").ok());
}

TEST(Snapshot, PrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("dns_queries", {{"side", "client"}}).inc(5);
  registry.gauge("live_leases").set(3.0);
  HistogramMetric h =
      registry.histogram("push_lat", {}, HistogramOptions{0.0, 2.0, 2});
  h.add(0.5);
  h.add(1.5);
  const std::string text = registry.snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE dns_queries counter"), std::string::npos);
  EXPECT_NE(text.find("dns_queries{side=\"client\"} 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE live_leases gauge"), std::string::npos);
  EXPECT_NE(text.find("push_lat_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("push_lat_count 2"), std::string::npos);
}

// The tentpole's end-to-end guarantee: identically configured, identically
// seeded runs of the full protocol stack produce byte-identical snapshot
// serializations (private per-run registries, sorted entries, shortest
// round-trip doubles).
TEST(SnapshotDeterminism, ConsistencyExperimentByteIdentical) {
  sim::ConsistencyConfig config;
  config.zones = 3;
  config.caches = 1;
  config.duration_s = 120.0;
  config.queries_per_cache_per_s = 0.5;
  config.mean_change_interval_s = 30.0;
  config.seed = 7;
  const auto first = run_consistency_experiment(config);
  const auto second = run_consistency_experiment(config);
  EXPECT_GT(first.queries, 0u);
  EXPECT_EQ(first.snapshot, second.snapshot);
  EXPECT_EQ(first.snapshot.to_json(), second.snapshot.to_json());
  EXPECT_EQ(first.snapshot.to_prometheus(), second.snapshot.to_prometheus());
}

TEST(SnapshotDeterminism, LeaseSimByteIdentical) {
  std::vector<core::DemandEntry> demands(4);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    demands[i].record = i;
    demands[i].cache = 0;
    demands[i].rate = 0.01 * static_cast<double>(i + 1);
    demands[i].max_lease = 3600.0;
  }
  const std::vector<double> leases{0.0, 60.0, 600.0, 3600.0};
  const auto first = sim::simulate_leases(demands, leases, 3600.0, 11);
  const auto second = sim::simulate_leases(demands, leases, 3600.0, 11);
  EXPECT_GT(first.queries, 0u);
  EXPECT_EQ(first.snapshot.to_json(), second.snapshot.to_json());
  EXPECT_EQ(first.snapshot.counter_total("lease_sim_queries"),
            first.queries);
}

}  // namespace
}  // namespace dnscup::metrics

// Serve-path allocation and parity tests.
//
// 1. Parity: the zero-copy fast path (AuthServer::try_fast_query) must
//    produce byte-identical responses to the owning decode/handle/encode
//    slow path for every query shape it claims.
// 2. Allocation-freedom: a counting global allocator asserts that the
//    steady-state serve path — datagram in, response out, rate recorded —
//    performs zero heap allocations.  tools/check.sh --bench-smoke runs
//    this binary as the zero-allocation gate.
#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/dnscup_authority.h"
#include "dns/message.h"
#include "dns/name.h"
#include "net/endpoint.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "server/authoritative.h"

namespace {
std::atomic<uint64_t> g_allocs{0};
}

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dnscup::server {
namespace {

using dns::Message;
using dns::Name;
using dns::Question;
using dns::RRClass;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }
dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

/// In-process transport: delivers datagrams synchronously and captures
/// the last response into a fixed buffer — no allocation on send, so it
/// can sit inside the measured loop.
class CaptureTransport final : public net::Transport {
 public:
  const net::Endpoint& local_endpoint() const override { return local_; }

  void send(const net::Endpoint&, std::span<const uint8_t> data) override {
    ASSERT_LE(data.size(), last_.size());
    std::memcpy(last_.data(), data.data(), data.size());
    last_len_ = data.size();
    ++sends_;
  }

  void set_receive_handler(ReceiveHandler handler) override {
    handler_ = std::move(handler);
  }

  void deliver(const net::Endpoint& from, std::span<const uint8_t> data) {
    handler_(from, data);
  }

  std::span<const uint8_t> last() const {
    return std::span<const uint8_t>(last_.data(), last_len_);
  }
  uint64_t sends() const { return sends_; }

 private:
  net::Endpoint local_{net::make_ip(10, 0, 0, 1), 53};
  net::Transport::ReceiveHandler handler_;
  std::array<uint8_t, 4096> last_{};
  std::size_t last_len_ = 0;
  uint64_t sends_ = 0;
};

dns::Zone test_zone() {
  dns::SOARdata soa;
  soa.mname = mk("ns1.example.com");
  soa.rname = mk("admin.example.com");
  soa.serial = 1;
  soa.minimum = 60;
  dns::Zone zone = dns::Zone::make(mk("example.com"), soa, 3600,
                                   {mk("ns1.example.com")}, 3600);
  zone.add_record(mk("ns1.example.com"), RRType::kA, 3600,
                  dns::ARdata{ip("10.0.0.1")});
  for (int i = 0; i < 4; ++i) {
    zone.add_record(mk("www.example.com"), RRType::kA, 300,
                    dns::ARdata{dns::Ipv4{.addr = 0xC0000250u + uint32_t(i)}});
  }
  zone.add_record(mk("alias.example.com"), RRType::kCNAME, 300,
                  dns::CNAMERdata{mk("www.example.com")});
  zone.add_record(mk("sub.example.com"), RRType::kNS, 3600,
                  dns::NSRdata{mk("ns.sub.example.com")});
  zone.add_record(mk("ns.sub.example.com"), RRType::kA, 3600,
                  dns::ARdata{ip("10.0.0.2")});
  return zone;
}

std::vector<uint8_t> query_wire(const char* qname, RRType qtype,
                                uint16_t id = 42) {
  Message m;
  m.id = id;
  m.flags.rd = true;
  m.questions.push_back(Question{mk(qname), qtype, RRClass::kIN, 0});
  return m.encode();
}

class HotPathTest : public ::testing::Test {
 protected:
  HotPathTest() : server_(transport_, loop_) {
    server_.add_zone(test_zone());
  }

  /// Sends `wire` through on_datagram (fast path eligible) and returns
  /// the captured response bytes.
  std::vector<uint8_t> serve(const std::vector<uint8_t>& wire) {
    transport_.deliver(client_, wire);
    const auto captured = transport_.last();
    return {captured.begin(), captured.end()};
  }

  /// The slow path's answer for the same query, encoded the old way.
  std::vector<uint8_t> slow_answer(const std::vector<uint8_t>& wire) {
    auto decoded = Message::decode(wire);
    EXPECT_TRUE(decoded.ok());
    auto response = server_.handle(client_, decoded.value());
    EXPECT_TRUE(response.has_value());
    return response->encode();
  }

  net::EventLoop loop_;
  CaptureTransport transport_;
  net::Endpoint client_{net::make_ip(10, 0, 0, 99), 4000};
  AuthServer server_;
};

TEST_F(HotPathTest, FastPathMatchesSlowPathSuccess) {
  const auto wire = query_wire("www.example.com", RRType::kA);
  EXPECT_EQ(serve(wire), slow_answer(wire));
}

TEST_F(HotPathTest, FastPathMatchesSlowPathNXDomain) {
  const auto wire = query_wire("missing.example.com", RRType::kA);
  EXPECT_EQ(serve(wire), slow_answer(wire));
}

TEST_F(HotPathTest, FastPathMatchesSlowPathNoData) {
  const auto wire = query_wire("www.example.com", RRType::kAAAA);
  EXPECT_EQ(serve(wire), slow_answer(wire));
}

TEST_F(HotPathTest, FastPathMatchesSlowPathRefused) {
  const auto wire = query_wire("www.other.org", RRType::kA);
  EXPECT_EQ(serve(wire), slow_answer(wire));
}

TEST_F(HotPathTest, FallthroughCasesStillMatch) {
  // CNAME chase and delegation fall through to the slow path inside
  // on_datagram; the answer must still match handle()+encode().
  for (const auto& wire :
       {query_wire("alias.example.com", RRType::kA),
        query_wire("deep.sub.example.com", RRType::kA),
        query_wire("sub.example.com", RRType::kNS)}) {
    EXPECT_EQ(serve(wire), slow_answer(wire));
  }
}

TEST_F(HotPathTest, CompressedQnameIsNotFastPathEligible) {
  // A compression pointer in the first (only) question can reference
  // nothing but itself — the reader rejects it, the fast path declines
  // it, and the slow decode drops it as undecodable.  No response, no
  // crash, formerr counted.
  std::vector<uint8_t> wire = query_wire("www.example.com", RRType::kA);
  std::vector<uint8_t> pointered(wire.begin(), wire.begin() + 12);
  pointered.insert(pointered.end(), {3, 'w', 'w', 'w', 0xC0, 12});
  pointered.insert(pointered.end(), {0x00, 0x01, 0x00, 0x01});
  const uint64_t sends_before = transport_.sends();
  const uint64_t formerr_before = server_.stats().formerr;
  transport_.deliver(client_, pointered);
  EXPECT_EQ(transport_.sends(), sends_before);
  EXPECT_EQ(server_.stats().formerr, formerr_before + 1);
}

TEST_F(HotPathTest, TwoQuestionQueryAnswersFormErrViaSlowPath) {
  // qd != 1 is rejected by the fast path up front; the slow path answers
  // FormErr exactly as before.
  std::vector<uint8_t> wire = query_wire("www.example.com", RRType::kA);
  std::vector<uint8_t> doubled(wire.begin(), wire.begin() + 12);
  doubled[5] = 2;  // QDCOUNT = 2
  const std::span<const uint8_t> question(wire.data() + 12,
                                          wire.size() - 12);
  doubled.insert(doubled.end(), question.begin(), question.end());
  doubled.insert(doubled.end(), question.begin(), question.end());
  transport_.deliver(client_, doubled);
  auto responded = Message::decode(transport_.last());
  ASSERT_TRUE(responded.ok());
  EXPECT_EQ(responded.value().flags.rcode, dns::Rcode::kFormErr);
}

TEST_F(HotPathTest, SteadyStateServesWithZeroAllocations) {
  const auto wire = query_wire("www.example.com", RRType::kA);
  const auto nxwire = query_wire("missing.example.com", RRType::kA);
  // Warm every arena and pool: scratch buffers, compression table.
  for (int i = 0; i < 64; ++i) {
    transport_.deliver(client_, wire);
    transport_.deliver(client_, nxwire);
  }
  const uint64_t sends_before = transport_.sends();
  const uint64_t allocs_before = g_allocs.load();
  for (int i = 0; i < 1000; ++i) {
    transport_.deliver(client_, wire);
    transport_.deliver(client_, nxwire);
  }
  const uint64_t allocs_after = g_allocs.load();
  EXPECT_EQ(transport_.sends(), sends_before + 2000);
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "steady-state serve path allocated";
}

TEST_F(HotPathTest, SteadyStateWithDnscupHooksIsAllocationFree) {
  // The full DNScup stack installs a query hook, a fast-query hook and
  // the notifier's extension handler; legacy queries must still serve
  // allocation-free (the rate tracker's ring reaches capacity during
  // warmup, after which record_view never allocates).
  core::DnscupAuthority::Config dc;
  dc.max_lease = [](const dns::Name&, dns::RRType) {
    return net::seconds(3600);
  };
  core::DnscupAuthority dnscup(server_, loop_, dc);

  const auto wire = query_wire("www.example.com", RRType::kA);
  // Warmup must exceed the RateTracker ring capacity (256) so the
  // per-key SampleRing finishes its geometric growth.
  for (int i = 0; i < 600; ++i) transport_.deliver(client_, wire);
  const uint64_t sends_before = transport_.sends();
  const uint64_t allocs_before = g_allocs.load();
  for (int i = 0; i < 1000; ++i) transport_.deliver(client_, wire);
  const uint64_t allocs_after = g_allocs.load();
  EXPECT_EQ(transport_.sends(), sends_before + 1000);
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "steady-state DNScup serve path allocated";
}

}  // namespace
}  // namespace dnscup::server

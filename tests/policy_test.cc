#include <gtest/gtest.h>

#include "core/policy.h"

namespace dnscup::core {
namespace {

using dns::Name;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }

const net::Endpoint kCache{net::make_ip(10, 0, 2, 1), 53};

MaxLeaseFn constant_lease(net::Duration d) {
  return [d](const Name&, RRType) { return d; };
}

TEST(AlwaysGrant, GrantsMaxLease) {
  AlwaysGrantPolicy policy(constant_lease(net::hours(2)));
  const auto decision = policy.decide(mk("x.com"), RRType::kA, kCache, 0.5, 0);
  EXPECT_TRUE(decision.grant);
  EXPECT_EQ(decision.length, net::hours(2));
}

TEST(AlwaysGrant, CategoryAwareLengths) {
  // The paper's per-category maxima: regular 6 d, CDN 200 s, Dyn 6000 s.
  AlwaysGrantPolicy policy([](const Name& name, RRType) -> net::Duration {
    if (name.label(0) == "cdn") return net::seconds(200);
    if (name.label(0) == "dyn") return net::seconds(6000);
    return net::days(6);
  });
  EXPECT_EQ(policy.decide(mk("cdn.x.com"), RRType::kA, kCache, 1, 0).length,
            net::seconds(200));
  EXPECT_EQ(policy.decide(mk("dyn.x.com"), RRType::kA, kCache, 1, 0).length,
            net::seconds(6000));
  EXPECT_EQ(policy.decide(mk("www.x.com"), RRType::kA, kCache, 1, 0).length,
            net::days(6));
}

TEST(AlwaysGrant, ZeroMaxLeaseMeansNoGrant) {
  AlwaysGrantPolicy policy(constant_lease(0));
  EXPECT_FALSE(policy.decide(mk("x.com"), RRType::kA, kCache, 1, 0).grant);
}

TEST(NeverGrant, NeverGrants) {
  NeverGrantPolicy policy;
  EXPECT_FALSE(policy.decide(mk("x.com"), RRType::kA, kCache, 100, 0).grant);
}

class BudgetedPolicyTest : public ::testing::Test {
 protected:
  BudgetedPolicyTest() {
    BudgetedGrantPolicy::Config config;
    config.storage_budget = 10;
    policy_.emplace(constant_lease(net::seconds(1000)), &track_file_,
                    config);
  }

  net::Endpoint holder(uint32_t i) {
    return {net::make_ip(10, 1, 0, static_cast<uint8_t>(i)), 53};
  }

  TrackFile track_file_;
  std::optional<BudgetedGrantPolicy> policy_;
};

TEST_F(BudgetedPolicyTest, GrantsUnderBudget) {
  const auto d =
      policy_->decide(mk("a.com"), RRType::kA, holder(1), 1.0, 0);
  EXPECT_TRUE(d.grant);
  EXPECT_EQ(d.length, net::seconds(1000));
}

TEST_F(BudgetedPolicyTest, RefusesNewGrantsAtBudget) {
  // Fill the track file to the budget.
  for (uint32_t i = 0; i < 10; ++i) {
    track_file_.grant(holder(i), mk(("d" + std::to_string(i) + ".com").c_str()),
                      RRType::kA, 0, net::seconds(1000));
  }
  const auto d =
      policy_->decide(mk("new.com"), RRType::kA, holder(99), 0.5, 0);
  EXPECT_FALSE(d.grant);
}

TEST_F(BudgetedPolicyTest, RenewalsAllowedAtBudget) {
  for (uint32_t i = 0; i < 10; ++i) {
    track_file_.grant(holder(i), mk(("d" + std::to_string(i) + ".com").c_str()),
                      RRType::kA, 0, net::seconds(1000));
  }
  // Holder 3 renewing its existing lease must still succeed.
  const auto d = policy_->decide(mk("d3.com"), RRType::kA, holder(3), 0.5,
                                 net::seconds(1));
  EXPECT_TRUE(d.grant);
}

TEST_F(BudgetedPolicyTest, BudgetFreesUpAfterExpiry) {
  for (uint32_t i = 0; i < 10; ++i) {
    track_file_.grant(holder(i), mk(("d" + std::to_string(i) + ".com").c_str()),
                      RRType::kA, 0, net::seconds(10));
  }
  EXPECT_FALSE(
      policy_->decide(mk("new.com"), RRType::kA, holder(99), 0.5, 0).grant);
  // All leases expired: newcomers are admitted again (after threshold
  // decay pulls the bar back down).
  bool granted = false;
  for (int i = 0; i < 200 && !granted; ++i) {
    granted = policy_
                  ->decide(mk("new.com"), RRType::kA, holder(99), 0.5,
                           net::seconds(20))
                  .grant;
  }
  EXPECT_TRUE(granted);
}

TEST_F(BudgetedPolicyTest, ThresholdRisesUnderPressure) {
  for (uint32_t i = 0; i < 10; ++i) {
    track_file_.grant(holder(i), mk(("d" + std::to_string(i) + ".com").c_str()),
                      RRType::kA, 0, net::seconds(1000));
  }
  const double before = policy_->threshold();
  policy_->decide(mk("new.com"), RRType::kA, holder(99), 2.0, 0);
  EXPECT_GT(policy_->threshold(), before);
  EXPECT_GT(policy_->threshold(), 2.0);  // at least above the rejected rate
}

TEST_F(BudgetedPolicyTest, LowRateCachesFilteredFirst) {
  // Saturate, pushing the threshold above 1 q/s.
  for (uint32_t i = 0; i < 10; ++i) {
    track_file_.grant(holder(i), mk(("d" + std::to_string(i) + ".com").c_str()),
                      RRType::kA, 0, net::seconds(30));
  }
  policy_->decide(mk("new.com"), RRType::kA, holder(99), 1.0, 0);
  // After expiry, a high-rate newcomer beats the threshold sooner than a
  // low-rate one.
  int high_granted_at = -1;
  for (int i = 0; i < 300; ++i) {
    if (policy_
            ->decide(mk("hot.com"), RRType::kA, holder(50), 5.0,
                     net::seconds(60))
            .grant) {
      high_granted_at = i;
      break;
    }
  }
  ASSERT_GE(high_granted_at, 0);
}

// ---- CommBudgetedGrantPolicy -----------------------------------------------

class CommPolicyTest : public ::testing::Test {
 protected:
  CommPolicyTest() {
    CommBudgetedGrantPolicy::Config config;
    config.message_budget = 10.0;
    config.rate_horizon = net::seconds(30);
    policy_.emplace(constant_lease(net::seconds(600)), config);
  }

  /// Feeds `n` decisions spaced `gap` apart, all with the given rate.
  GrantDecision feed(int n, net::Duration gap, double rate,
                     net::SimTime& now) {
    GrantDecision last;
    for (int i = 0; i < n; ++i) {
      now += gap;
      last = policy_->decide(mk("x.com"), RRType::kA, kCache, rate, now);
    }
    return last;
  }

  std::optional<CommBudgetedGrantPolicy> policy_;
};

TEST_F(CommPolicyTest, GrantsEveryoneUnderPressure) {
  net::SimTime now = 0;
  // 50 msg/s, far above the 10/s budget: even tiny rates get leases,
  // because leasing is the only way to reduce traffic.
  const auto decision = feed(5000, net::milliseconds(20), 0.001, now);
  EXPECT_TRUE(decision.grant);
  EXPECT_GT(policy_->measured_message_rate(now), 10.0);
  EXPECT_DOUBLE_EQ(policy_->threshold(), 0.0);
}

TEST_F(CommPolicyTest, DeprivesLowRatesWithHeadroom) {
  net::SimTime now = 0;
  // 1 msg/s, well under budget: the deprivation threshold creeps up and
  // low-rate caches stop being leased (storage reclaim).
  feed(600, net::seconds(1), 0.001, now);
  EXPECT_GT(policy_->threshold(), 0.001);
  const auto low = policy_->decide(mk("x.com"), RRType::kA, kCache, 0.0005,
                                   now + net::seconds(1));
  EXPECT_FALSE(low.grant);
  // High-rate caches keep their leases.
  const auto high = policy_->decide(mk("x.com"), RRType::kA, kCache, 100.0,
                                    now + net::seconds(2));
  EXPECT_TRUE(high.grant);
}

TEST_F(CommPolicyTest, MeasuredRateTracksTraffic) {
  net::SimTime now = 0;
  feed(1500, net::milliseconds(100), 1.0, now);  // 10 msg/s
  EXPECT_NEAR(policy_->measured_message_rate(now), 10.0, 1.5);
  // Silence decays the estimate.
  EXPECT_LT(policy_->measured_message_rate(now + net::minutes(5)),
            policy_->measured_message_rate(now));
}

TEST_F(CommPolicyTest, ZeroMaxLeaseNeverGrants) {
  CommBudgetedGrantPolicy never(constant_lease(0), {});
  EXPECT_FALSE(never.decide(mk("x.com"), RRType::kA, kCache, 5.0, 0).grant);
}

}  // namespace
}  // namespace dnscup::core

#include <gtest/gtest.h>

#include "sim/consistency_sim.h"

namespace dnscup::sim {
namespace {

ConsistencyConfig small_experiment(bool dnscup) {
  ConsistencyConfig config;
  config.zones = 10;
  config.caches = 2;
  config.dnscup_enabled = dnscup;
  config.record_ttl = 600;
  config.max_lease = net::hours(6);
  config.duration_s = 2 * 3600.0;
  config.queries_per_cache_per_s = 0.3;
  config.mean_change_interval_s = 180.0;
  config.seed = 77;
  return config;
}

TEST(ConsistencySim, RunsAndAccountsQueries) {
  const auto result = run_consistency_experiment(small_experiment(true));
  EXPECT_GT(result.queries, 1000u);
  EXPECT_GT(result.answered, 0u);
  EXPECT_LE(result.answered, result.queries);
  EXPECT_GT(result.changes, 10u);
  EXPECT_GT(result.packets_delivered, 0u);
}

TEST(ConsistencySim, DnscupGrantsLeasesAndPushes) {
  const auto result = run_consistency_experiment(small_experiment(true));
  EXPECT_GT(result.leases_granted, 0u);
  EXPECT_GT(result.cache_updates_sent, 0u);
  EXPECT_GT(result.cache_update_acks, 0u);
}

TEST(ConsistencySim, TtlBaselineHasNoDnscupTraffic) {
  const auto result = run_consistency_experiment(small_experiment(false));
  EXPECT_EQ(result.leases_granted, 0u);
  EXPECT_EQ(result.cache_updates_sent, 0u);
}

TEST(ConsistencySim, DnscupDramaticallyReducesStaleness) {
  // The paper's core claim, quantified: strong consistency cuts the
  // stale-answer fraction by at least an order of magnitude versus TTL.
  const auto ttl = run_consistency_experiment(small_experiment(false));
  const auto dnscup = run_consistency_experiment(small_experiment(true));
  ASSERT_GT(ttl.stale_answers, 20u);  // TTL really does serve stale data
  EXPECT_LT(dnscup.stale_fraction, ttl.stale_fraction / 10.0);
}

TEST(ConsistencySim, DnscupStaleAgesAreTiny) {
  // Any stale answer under DNScup comes from in-flight races (propagation
  // delay), so the stale age is bounded by seconds — not by the TTL.
  const auto result = run_consistency_experiment(small_experiment(true));
  if (result.stale_answers > 0) {
    EXPECT_LT(result.stale_age_s.mean(), 10.0);
  }
  const auto ttl = run_consistency_experiment(small_experiment(false));
  ASSERT_GT(ttl.stale_answers, 0u);
  EXPECT_GT(ttl.stale_age_s.mean(), 30.0);
}

TEST(ConsistencySim, SurvivesLossInjection) {
  ConsistencyConfig config = small_experiment(true);
  config.loss_probability = 0.05;
  config.seed = 31;
  const auto result = run_consistency_experiment(config);
  EXPECT_GT(result.answered, 0u);
  EXPECT_GT(result.packets_dropped, 0u);
  // Retransmissions keep the stale fraction low even with loss.
  EXPECT_LT(result.stale_fraction, 0.05);
}

TEST(ConsistencySim, DeterministicForSeed) {
  const auto a = run_consistency_experiment(small_experiment(true));
  const auto b = run_consistency_experiment(small_experiment(true));
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.stale_answers, b.stale_answers);
  EXPECT_EQ(a.changes, b.changes);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
}

}  // namespace
}  // namespace dnscup::sim

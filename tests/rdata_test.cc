#include <gtest/gtest.h>

#include "dns/rdata.h"
#include "dns/wire.h"

namespace dnscup::dns {
namespace {

Name mk(const char* text) { return Name::parse(text).value(); }

// ---- Ipv4 -------------------------------------------------------------------

TEST(Ipv4, ParseAndFormat) {
  const Ipv4 ip = Ipv4::parse("192.0.2.1").value();
  EXPECT_EQ(ip.addr, 0xC0000201u);
  EXPECT_EQ(ip.to_string(), "192.0.2.1");
}

TEST(Ipv4, Extremes) {
  EXPECT_EQ(Ipv4::parse("0.0.0.0").value().addr, 0u);
  EXPECT_EQ(Ipv4::parse("255.255.255.255").value().addr, 0xFFFFFFFFu);
}

TEST(Ipv4, RejectsMalformed) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d",
                          "1..2.3", "1.2.3.4x", "-1.2.3.4"}) {
    EXPECT_FALSE(Ipv4::parse(bad).ok()) << bad;
  }
}

// ---- type names ----------------------------------------------------------------

TEST(RRTypeNames, RoundTrip) {
  for (RRType t : {RRType::kA, RRType::kNS, RRType::kCNAME, RRType::kSOA,
                   RRType::kPTR, RRType::kMX, RRType::kTXT, RRType::kAAAA}) {
    EXPECT_EQ(rrtype_from_string(to_string(t)).value(), t);
  }
  EXPECT_FALSE(rrtype_from_string("BOGUS").ok());
}

// ---- wire round trips ------------------------------------------------------------

Rdata wire_round_trip(const Rdata& in) {
  ByteWriter w;
  encode_rdata(in, w);
  ByteReader r({w.data().data(), w.data().size()});
  auto out = decode_rdata(rdata_type(in), static_cast<uint16_t>(w.size()), r);
  EXPECT_TRUE(out.ok());
  return std::move(out).value();
}

TEST(RdataWire, ARoundTrip) {
  const Rdata in = ARdata{Ipv4::parse("10.1.2.3").value()};
  EXPECT_EQ(wire_round_trip(in), in);
}

TEST(RdataWire, SoaRoundTrip) {
  SOARdata soa;
  soa.mname = mk("ns1.example.com");
  soa.rname = mk("admin.example.com");
  soa.serial = 2024070601;
  soa.refresh = 7200;
  soa.retry = 900;
  soa.expire = 604800;
  soa.minimum = 300;
  const Rdata in = soa;
  EXPECT_EQ(wire_round_trip(in), in);
}

TEST(RdataWire, MxRoundTrip) {
  const Rdata in = MXRdata{10, mk("mail.example.com")};
  EXPECT_EQ(wire_round_trip(in), in);
}

TEST(RdataWire, TxtRoundTrip) {
  const Rdata in = TXTRdata{{"hello", "world", std::string(255, 'x')}};
  EXPECT_EQ(wire_round_trip(in), in);
}

TEST(RdataWire, AaaaRoundTrip) {
  AAAARdata v6;
  for (int i = 0; i < 16; ++i) {
    v6.address[static_cast<std::size_t>(i)] = static_cast<uint8_t>(i * 7);
  }
  const Rdata in = v6;
  EXPECT_EQ(wire_round_trip(in), in);
}

TEST(RdataWire, NsCnamePtrRoundTrip) {
  EXPECT_EQ(wire_round_trip(NSRdata{mk("ns.example.org")}),
            Rdata{NSRdata{mk("ns.example.org")}});
  EXPECT_EQ(wire_round_trip(CNAMERdata{mk("alias.example.org")}),
            Rdata{CNAMERdata{mk("alias.example.org")}});
  EXPECT_EQ(wire_round_trip(PTRRdata{mk("host.example.org")}),
            Rdata{PTRRdata{mk("host.example.org")}});
}

TEST(RdataWire, UnknownTypeCarriedAsGeneric) {
  GenericRdata g;
  g.type = 99;
  g.data = {1, 2, 3, 4};
  ByteWriter w;
  encode_rdata(g, w);
  ByteReader r({w.data().data(), w.data().size()});
  const Rdata out = decode_rdata(static_cast<RRType>(99), 4, r).value();
  EXPECT_EQ(std::get<GenericRdata>(out), g);
}

TEST(RdataWire, EmptyRdlengthDecodesAsTypedStub) {
  // RFC 2136 prerequisite/update records: TYPE=A, RDLENGTH=0.
  const std::vector<uint8_t> empty;
  ByteReader r({empty.data(), empty.size()});
  const Rdata out = decode_rdata(RRType::kA, 0, r).value();
  const auto& g = std::get<GenericRdata>(out);
  EXPECT_EQ(g.type, static_cast<uint16_t>(RRType::kA));
  EXPECT_TRUE(g.data.empty());
}

TEST(RdataWire, TruncatedARejected) {
  const std::vector<uint8_t> two_bytes{1, 2};
  ByteReader r({two_bytes.data(), two_bytes.size()});
  EXPECT_FALSE(decode_rdata(RRType::kA, 4, r).ok());
}

TEST(RdataWire, RdlengthMismatchRejected) {
  // Encode an A (4 bytes) then claim rdlength 3: the u32 read would
  // overrun the stated boundary.
  ByteWriter w;
  encode_rdata(ARdata{Ipv4{0x01020304}}, w);
  ByteReader r({w.data().data(), w.data().size()});
  EXPECT_FALSE(decode_rdata(RRType::kA, 3, r).ok());
}

TEST(RdataWire, AaaaWrongLengthRejected) {
  std::vector<uint8_t> bytes(12, 0);
  ByteReader r({bytes.data(), bytes.size()});
  EXPECT_FALSE(decode_rdata(RRType::kAAAA, 12, r).ok());
}

// ---- text round trips ----------------------------------------------------------

struct TextCase {
  RRType type;
  const char* text;
};

class RdataText : public ::testing::TestWithParam<TextCase> {};

TEST_P(RdataText, RoundTrip) {
  const auto& param = GetParam();
  auto parsed = rdata_from_string(param.type, param.text);
  ASSERT_TRUE(parsed.ok()) << param.text;
  EXPECT_EQ(rdata_type(parsed.value()), param.type);
  // to_string -> parse is the identity on the parsed value.
  const std::string text = rdata_to_string(parsed.value());
  auto reparsed = rdata_from_string(param.type, text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ(reparsed.value(), parsed.value());
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, RdataText,
    ::testing::Values(
        TextCase{RRType::kA, "198.51.100.7"},
        TextCase{RRType::kNS, "ns1.example.net."},
        TextCase{RRType::kCNAME, "www.example.net."},
        TextCase{RRType::kPTR, "host7.example.net."},
        TextCase{RRType::kMX, "20 backup.example.net."},
        TextCase{RRType::kTXT, "\"v=spf1\" \"-all\""},
        TextCase{RRType::kSOA,
                 "ns1.example.net. admin.example.net. 7 3600 600 86400 60"}));

TEST(RdataText, RejectsMalformed) {
  EXPECT_FALSE(rdata_from_string(RRType::kA, "not-an-ip").ok());
  EXPECT_FALSE(rdata_from_string(RRType::kA, "1.2.3.4 extra").ok());
  EXPECT_FALSE(rdata_from_string(RRType::kMX, "99999999 mail.x.").ok());
  EXPECT_FALSE(rdata_from_string(RRType::kMX, "ten mail.x.").ok());
  EXPECT_FALSE(rdata_from_string(RRType::kSOA, "a. b. 1 2 3").ok());
  EXPECT_FALSE(rdata_from_string(RRType::kTXT, "").ok());
}

TEST(RdataType, MatchesVariant) {
  EXPECT_EQ(rdata_type(ARdata{}), RRType::kA);
  EXPECT_EQ(rdata_type(SOARdata{}), RRType::kSOA);
  EXPECT_EQ(rdata_type(GenericRdata{250, {}}), static_cast<RRType>(250));
}

}  // namespace
}  // namespace dnscup::dns

// Two-daemon conformance tests over real loopback sockets: a DNScup
// authority (ServingRuntime — what dnscupd runs) and a DNScup cache
// (CacheRuntime — what dnscached runs), wired together exactly like the
// deployed pair.  These assert the paper's end-to-end claim: a zone
// change at the authority becomes visible at the cache through the
// CACHE-UPDATE push long before the record's TTL would have expired —
// and that without leases the cache is stale for the full TTL.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "cachert/cache_runtime.h"
#include "dns/zone_text.h"
#include "net/udp_transport.h"
#include "runtime/runtime.h"

namespace dnscup {
namespace {

dns::Zone zone_with(const char* address, uint32_t serial, uint32_t ttl) {
  char text[512];
  std::snprintf(text, sizeof text,
                "$ORIGIN example.com.\n"
                "@ IN SOA ns1.example.com. admin.example.com. %u 7200 900 "
                "604800 300\n"
                "@ %u IN NS ns1.example.com.\n"
                "ns1 %u IN A 10.0.0.1\n"
                "www %u IN A %s\n",
                serial, ttl, ttl, ttl, address);
  auto zone =
      dns::parse_zone_text(text, dns::Name::parse("example.com").value());
  EXPECT_TRUE(zone.ok()) << (zone.ok() ? "" : zone.error().to_string());
  return std::move(zone).value();
}

/// A stub client on its own socket; queries a server and blocks for the
/// matching response.
class Client {
 public:
  Client() {
    auto bound = net::UdpTransport::bind(0);
    EXPECT_TRUE(bound.ok());
    udp_ = std::move(bound).value();
    udp_->set_receive_handler(
        [this](const net::Endpoint&, std::span<const uint8_t> data) {
          auto message = dns::Message::decode(data);
          if (!message.ok()) return;
          std::lock_guard lock(mutex_);
          responses_.push_back(std::move(message).value());
          cv_.notify_all();
        });
  }

  dns::Message query(const net::Endpoint& server, const char* name) {
    dns::Message query;
    query.id = next_id_++;
    query.flags.opcode = dns::Opcode::kQuery;
    query.flags.rd = true;
    query.questions.push_back(dns::Question{dns::Name::parse(name).value(),
                                            dns::RRType::kA,
                                            dns::RRClass::kIN, 0});
    udp_->send(server, query.encode());
    dns::Message response;
    std::unique_lock lock(mutex_);
    const bool got =
        cv_.wait_for(lock, std::chrono::seconds(5), [&] {
          for (const dns::Message& m : responses_) {
            if (m.flags.qr && m.id == query.id) {
              response = m;
              return true;
            }
          }
          return false;
        });
    EXPECT_TRUE(got) << "no response for " << name;
    return response;
  }

  /// The A address in the response's answer section, or "" on none.
  static std::string answer_a(const dns::Message& response) {
    for (const auto& rr : response.answers) {
      if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
        return a->address.to_string();
      }
    }
    return "";
  }

 private:
  std::unique_ptr<net::UdpTransport> udp_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<dns::Message> responses_;
  uint16_t next_id_ = 1;
};

struct Pair {
  std::unique_ptr<runtime::ServingRuntime> authority;
  std::unique_ptr<cachert::CacheRuntime> cache;
};

Pair start_pair(uint32_t ttl, bool cache_dnscup, int cache_workers = 1) {
  runtime::Config auth_config;
  auth_config.port = 0;
  auth_config.workers = 1;
  auto authority = runtime::ServingRuntime::start(
      auth_config, {zone_with("10.1.0.10", 1, ttl)});
  EXPECT_TRUE(authority.ok());

  cachert::Config cache_config;
  cache_config.port = 0;
  cache_config.workers = cache_workers;
  cache_config.upstreams = {authority.value()->endpoints()[0]};
  cache_config.dnscup = cache_dnscup;
  auto cache = cachert::CacheRuntime::start(cache_config);
  EXPECT_TRUE(cache.ok());
  return Pair{std::move(authority).value(), std::move(cache).value()};
}

/// Polls the cache until `name` resolves to `address`; returns the time
/// it took, or `deadline` when it never did.
std::chrono::milliseconds poll_until_address(
    Client& client, const net::Endpoint& cache, const char* name,
    const std::string& address, std::chrono::milliseconds deadline) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const auto response = client.query(cache, name);
    if (Client::answer_a(response) == address) {
      return std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
    }
    if (std::chrono::steady_clock::now() - start >= deadline) {
      return deadline;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

// The tentpole conformance claim: with DNScup on, a zone change at the
// authority reaches the cache by push — visible within milliseconds, not
// after the 300-second TTL.
TEST(E2eDaemons, ZoneChangeVisibleWithoutTtlWait) {
  constexpr uint32_t kTtl = 300;  // seconds — far beyond the test budget
  Pair pair = start_pair(kTtl, /*cache_dnscup=*/true);
  Client client;
  const net::Endpoint cache = pair.cache->endpoints()[0];

  const auto warm = client.query(cache, "www.example.com");
  EXPECT_EQ(Client::answer_a(warm), "10.1.0.10");

  // The EXT handshake registered a lease on both sides, held by the
  // cache worker's upstream socket (its lease identity).
  EXPECT_EQ(pair.cache->live_leases(), 1u);
  EXPECT_EQ(pair.authority->live_leases(), 1u);
  const auto leases = pair.authority->collect_leases();
  ASSERT_EQ(leases.size(), 1u);
  EXPECT_EQ(leases[0].holder, pair.cache->upstream_endpoints()[0]);

  pair.authority->reload_zone(zone_with("10.9.9.9", 2, kTtl));

  const auto took =
      poll_until_address(client, cache, "www.example.com", "10.9.9.9",
                         std::chrono::milliseconds(5000));
  EXPECT_LT(took.count(), 5000) << "push never reached the cache";
  // Strong consistency bound: visible in a push round-trip, not a TTL.
  EXPECT_LT(took.count(), static_cast<int64_t>(kTtl) * 1000 / 10);

  // The push was applied and acknowledged, not re-resolved: the entry
  // still carries its lease.
  EXPECT_EQ(pair.cache->live_leases(), 1u);

  pair.cache->stop();
  pair.authority->stop();
}

// The baseline the paper improves on: leases off, the cache serves the
// stale record for the full TTL — the stale window is real and nonzero.
TEST(E2eDaemons, TtlOnlyCacheHasNonzeroStaleWindow) {
  constexpr uint32_t kTtl = 2;  // seconds — short so the test converges
  Pair pair = start_pair(kTtl, /*cache_dnscup=*/false);
  Client client;
  const net::Endpoint cache = pair.cache->endpoints()[0];

  const auto warm = client.query(cache, "www.example.com");
  EXPECT_EQ(Client::answer_a(warm), "10.1.0.10");
  EXPECT_EQ(pair.cache->live_leases(), 0u);   // plain TTL mode
  EXPECT_EQ(pair.authority->live_leases(), 0u);

  pair.authority->reload_zone(zone_with("10.9.9.9", 2, kTtl));

  // Immediately after the change the cache still answers from the TTL
  // entry: the stale window is open.
  const auto stale = client.query(cache, "www.example.com");
  EXPECT_EQ(Client::answer_a(stale), "10.1.0.10");

  // It converges only via TTL expiry and re-resolution.
  const auto took =
      poll_until_address(client, cache, "www.example.com", "10.9.9.9",
                         std::chrono::milliseconds(10000));
  EXPECT_LT(took.count(), 10000) << "cache never converged after TTL";

  pair.cache->stop();
  pair.authority->stop();
}

// Multi-worker cache: every worker keeps its own upstream socket, so
// pushes land on the worker that owns the lease regardless of how the
// kernel spreads client flows across the REUSEPORT group.
TEST(E2eDaemons, MultiWorkerCachePropagatesPushes) {
  constexpr uint32_t kTtl = 300;
  Pair pair = start_pair(kTtl, /*cache_dnscup=*/true, /*cache_workers=*/2);
  ASSERT_EQ(pair.cache->upstream_endpoints().size(), 2u);
  Client client;
  const net::Endpoint cache = pair.cache->endpoints()[0];

  const auto warm = client.query(cache, "www.example.com");
  EXPECT_EQ(Client::answer_a(warm), "10.1.0.10");
  EXPECT_EQ(pair.cache->live_leases(), 1u);

  pair.authority->reload_zone(zone_with("10.9.9.9", 2, kTtl));

  const auto took =
      poll_until_address(client, cache, "www.example.com", "10.9.9.9",
                         std::chrono::milliseconds(5000));
  EXPECT_LT(took.count(), 5000) << "push never reached the owning worker";

  pair.cache->stop();
  pair.authority->stop();
}

// Graceful drain: stop() leaves both runtimes answering consistent
// control-plane queries and is idempotent.
TEST(E2eDaemons, StopIsIdempotentAndStatsSurvive) {
  Pair pair = start_pair(300, /*cache_dnscup=*/true);
  Client client;
  client.query(pair.cache->endpoints()[0], "www.example.com");

  pair.cache->stop();
  pair.cache->stop();
  EXPECT_EQ(pair.cache->cache_entries(), 1u);
  EXPECT_EQ(pair.cache->live_leases(), 1u);
  const auto snapshot = pair.cache->metrics();
  EXPECT_FALSE(snapshot.entries.empty());

  pair.authority->stop();
  pair.authority->stop();
}

}  // namespace
}  // namespace dnscup

// Malformed-packet robustness: Message::decode (and the MessageView parse
// underneath it) must reject hostile wire data with an error — never
// crash, loop or read past the buffer.  Run under the DNSCUP_SANITIZE
// build, where ASan turns any over-read into a hard failure.
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "dns/message.h"
#include "dns/name.h"
#include "dns/wire.h"

namespace dnscup::dns {
namespace {

std::vector<uint8_t> header(uint16_t qd, uint16_t an = 0, uint16_t ns = 0,
                            uint16_t ar = 0) {
  ByteWriter w;
  w.u16(0x1234);  // id
  w.u16(0x0100);  // flags: rd
  w.u16(qd);
  w.u16(an);
  w.u16(ns);
  w.u16(ar);
  return w.take();
}

void append(std::vector<uint8_t>& wire, std::initializer_list<uint8_t> bytes) {
  wire.insert(wire.end(), bytes.begin(), bytes.end());
}

TEST(MalformedPacket, TruncatedHeader) {
  const std::vector<uint8_t> full = header(0);
  for (std::size_t len = 0; len < full.size(); ++len) {
    const auto r = Message::decode(std::span(full.data(), len));
    EXPECT_FALSE(r.ok()) << "header truncated to " << len << " bytes";
  }
  EXPECT_TRUE(Message::decode(full).ok());
}

TEST(MalformedPacket, QuestionCountWithoutQuestionBytes) {
  const std::vector<uint8_t> wire = header(1);
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(MalformedPacket, CompressionPointerLoop) {
  std::vector<uint8_t> wire = header(1);
  // qname at offset 12 is a pointer to itself.
  append(wire, {0xC0, 0x0C});
  append(wire, {0x00, 0x01, 0x00, 0x01});  // qtype, qclass
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(MalformedPacket, MutualPointerLoop) {
  std::vector<uint8_t> wire = header(1);
  // Two pointers referencing each other: 12 -> 14 -> 12 -> ...
  append(wire, {0xC0, 0x0E, 0xC0, 0x0C});
  append(wire, {0x00, 0x01, 0x00, 0x01});
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(MalformedPacket, PointerPastEnd) {
  std::vector<uint8_t> wire = header(1);
  append(wire, {0xC0, 0xFF});  // target offset 255, way past the buffer
  append(wire, {0x00, 0x01, 0x00, 0x01});
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(MalformedPacket, TruncatedPointer) {
  std::vector<uint8_t> wire = header(1);
  append(wire, {0xC0});  // first pointer byte only
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(MalformedPacket, LabelRunsPastEnd) {
  std::vector<uint8_t> wire = header(1);
  append(wire, {0x3F, 'a', 'b'});  // label claims 63 bytes, has 2
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(MalformedPacket, ReservedLabelType) {
  std::vector<uint8_t> wire = header(1);
  append(wire, {0x80, 0x00});  // 10xxxxxx is reserved
  append(wire, {0x00, 0x01, 0x00, 0x01});
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(MalformedPacket, NameOver255Octets) {
  std::vector<uint8_t> wire = header(1);
  // 8 labels of 37 bytes = 8*38 + 1 = 305 wire octets > 255.
  for (int l = 0; l < 8; ++l) {
    wire.push_back(37);
    for (int i = 0; i < 37; ++i) wire.push_back('a');
  }
  wire.push_back(0);
  append(wire, {0x00, 0x01, 0x00, 0x01});
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(MalformedPacket, RdlengthOverrun) {
  std::vector<uint8_t> wire = header(0, 1);
  // Answer: root name, type A, class IN, TTL 0, RDLENGTH 200, 4 bytes.
  append(wire, {0x00, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00});
  append(wire, {0x00, 0xC8, 0x0A, 0x00, 0x00, 0x01});
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(MalformedPacket, RdlengthTruncatedMidField) {
  std::vector<uint8_t> wire = header(0, 1);
  append(wire, {0x00, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00});
  append(wire, {0x00});  // RDLENGTH cut to one byte
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(MalformedPacket, TrailingBytesRejected) {
  Message m;
  m.id = 7;
  m.questions.push_back(Question{Name::parse("example.com").value(),
                                 RRType::kA, RRClass::kIN, 0});
  std::vector<uint8_t> wire = m.encode();
  ASSERT_TRUE(Message::decode(wire).ok());
  wire.push_back(0x00);
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(MalformedPacket, EveryTruncationOfValidMessageErrors) {
  Message m;
  m.id = 9;
  m.flags.qr = true;
  m.flags.aa = true;
  m.questions.push_back(Question{Name::parse("www.example.com").value(),
                                 RRType::kA, RRClass::kIN, 0});
  m.answers.push_back(
      ResourceRecord{Name::parse("www.example.com").value(), RRClass::kIN,
                     300, ARdata{Ipv4{.addr = 0x0A000001}}});
  const std::vector<uint8_t> wire = m.encode();
  // Every strict prefix must decode to an error (never a crash, never a
  // partial success: the section counts promise more bytes than exist).
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto r = Message::decode(std::span(wire.data(), len));
    EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes decoded";
  }
  EXPECT_TRUE(Message::decode(wire).ok());
}

TEST(MalformedPacket, ByteFlipFuzzNeverCrashes) {
  Message m;
  m.id = 11;
  m.flags.qr = true;
  m.questions.push_back(Question{Name::parse("a.b.example.com").value(),
                                 RRType::kAAAA, RRClass::kIN, 0});
  m.answers.push_back(
      ResourceRecord{Name::parse("a.b.example.com").value(), RRClass::kIN,
                     60, CNAMERdata{Name::parse("c.example.com").value()}});
  const std::vector<uint8_t> base = m.encode();
  // Deterministic LCG; flips every byte through several values.  decode
  // may succeed or fail — it must simply never misbehave under ASan.
  uint32_t state = 0x2545F491;
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    for (int round = 0; round < 8; ++round) {
      state = state * 1664525u + 1013904223u;
      std::vector<uint8_t> wire = base;
      wire[pos] ^= static_cast<uint8_t>(state >> 24);
      const auto r = Message::decode(wire);
      (void)r;
    }
  }
}

TEST(MalformedPacket, ViewMaterializesIdenticalToDecode) {
  Message m;
  m.id = 21;
  m.flags.qr = true;
  m.flags.aa = true;
  m.questions.push_back(Question{Name::parse("www.example.com").value(),
                                 RRType::kA, RRClass::kIN, 0});
  for (uint32_t i = 0; i < 3; ++i) {
    m.answers.push_back(
        ResourceRecord{Name::parse("www.example.com").value(), RRClass::kIN,
                       300, ARdata{Ipv4{.addr = 0x0A000000 + i}}});
  }
  m.authority.push_back(ResourceRecord{
      Name::parse("example.com").value(), RRClass::kIN, 300,
      NSRdata{Name::parse("ns1.example.com").value()}});
  const std::vector<uint8_t> wire = m.encode();

  auto view = MessageView::parse(wire);
  ASSERT_TRUE(view.ok());
  auto materialized = view.value().materialize();
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(materialized.value(), m);

  auto decoded = Message::decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), materialized.value());
}

}  // namespace
}  // namespace dnscup::dns

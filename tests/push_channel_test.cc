// PushServer + PushClient integration over real loopback TCP: the
// SUBSCRIBE handshake and zone-serial inventory, paced PUSH delivery with
// on-channel acks, full-supersede coalescing, queue backpressure, failure
// resolutions on disconnect and lease-identity re-adoption on reconnect.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/notifier.h"
#include "dns/name.h"
#include "push/push_client.h"
#include "push/push_server.h"
#include "util/metrics.h"

namespace dnscup::push {
namespace {

using core::ChannelResolution;

uint64_t counter_total(const metrics::Snapshot& snapshot, const char* name) {
  uint64_t total = 0;
  for (const auto& entry : snapshot.entries) {
    if (entry.kind == metrics::InstrumentKind::kCounter &&
        entry.name == name) {
      total += entry.counter_value;
    }
  }
  return total;
}

/// One server + one client with every asynchronous edge funnelled into
/// condition-variable-guarded logs the test can wait on.
class Harness {
 public:
  struct Resolution {
    int worker;
    uint16_t id;
    ChannelResolution resolution;
  };

  explicit Harness(PushServer::Config server_config = {}) {
    server_config.workers = 2;
    auto started = PushServer::start(
        server_config, &server_registry_,
        [this](int worker, uint16_t id, ChannelResolution resolution) {
          std::lock_guard lock(mutex_);
          resolutions_.push_back(Resolution{worker, id, resolution});
          cv_.notify_all();
        });
    EXPECT_TRUE(started.ok());
    server = std::move(started).value();
  }

  void start_client() {
    PushClient::Config config;
    config.authority = server->local_endpoint();
    config.identity = identity;
    config.reconnect_min = net::milliseconds(20);
    config.reconnect_max = net::milliseconds(100);
    config.metrics = &client_registry_;
    client = PushClient::start(
        config,
        [this](std::vector<uint8_t> message) {
          std::lock_guard lock(mutex_);
          updates_.push_back(std::move(message));
          cv_.notify_all();
        },
        [this](SubscribeAck ack, std::vector<LeaseSurvivor>) {
          std::lock_guard lock(mutex_);
          resyncs_.push_back(std::move(ack.zones));
          cv_.notify_all();
        });
  }

  ~Harness() {
    if (client != nullptr) client->stop();
    server->stop();
  }

  core::PushWriter::Item item(uint16_t id, uint32_t serial,
                              const char* name = "www.example.com") {
    core::PushWriter::Item it;
    it.holder = identity;
    it.id = id;
    it.zone = dns::Name::parse("example.com").value();
    it.serial = serial;
    it.covered.emplace_back(dns::Name::parse(name).value(), dns::RRType::kA);
    // The body is opaque to the plane; encode the id in the first two
    // bytes so the test can ack it like a real CACHE-UPDATE ack would.
    it.message = {static_cast<uint8_t>(id >> 8), static_cast<uint8_t>(id)};
    return it;
  }

  template <class Pred>
  bool wait_for(Pred pred, std::chrono::milliseconds deadline =
                               std::chrono::milliseconds(5000)) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, deadline, pred);
  }

  bool wait_subscribed() {
    const auto start = std::chrono::steady_clock::now();
    while (!server->subscribed(identity)) {
      if (std::chrono::steady_clock::now() - start >
          std::chrono::seconds(5)) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
  }

  bool wait_unsubscribed() {
    const auto start = std::chrono::steady_clock::now();
    while (server->subscribed(identity)) {
      if (std::chrono::steady_clock::now() - start >
          std::chrono::seconds(5)) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
  }

  // Callers hold no lock; the predicates passed to wait_for run under it.
  std::vector<Resolution> resolutions_;
  std::vector<std::vector<uint8_t>> updates_;
  std::vector<std::vector<ZoneSerial>> resyncs_;

  const net::Endpoint identity{net::make_ip(127, 0, 0, 1), 45001};
  metrics::MetricsRegistry server_registry_;
  metrics::MetricsRegistry client_registry_;
  std::unique_ptr<PushServer> server;
  std::unique_ptr<PushClient> client;
  std::mutex mutex_;
  std::condition_variable cv_;
};

TEST(PushChannel, SubscribeDeliversZoneInventory) {
  Harness h;
  h.server->set_zone_serial(dns::Name::parse("example.com").value(), 5);
  h.start_client();

  ASSERT_TRUE(h.wait_subscribed());
  ASSERT_TRUE(h.wait_for([&] { return !h.resyncs_.empty(); }));
  {
    std::lock_guard lock(h.mutex_);
    ASSERT_EQ(h.resyncs_[0].size(), 1u);
    EXPECT_EQ(h.resyncs_[0][0].zone,
              dns::Name::parse("example.com").value());
    EXPECT_EQ(h.resyncs_[0][0].serial, 5u);
  }
  EXPECT_EQ(h.server->connection_count(), 1u);
  EXPECT_EQ(h.server->subscription_count(), 1u);
  EXPECT_TRUE(h.client->connected());
}

TEST(PushChannel, PushDeliveredAndAckedOnChannel) {
  Harness h;
  h.start_client();
  ASSERT_TRUE(h.wait_subscribed());

  ASSERT_TRUE(h.server->writer_for(1)->try_push(h.item(7, 1)));
  ASSERT_TRUE(h.wait_for([&] { return !h.updates_.empty(); }));
  std::vector<uint8_t> message;
  {
    std::lock_guard lock(h.mutex_);
    message = h.updates_[0];
  }
  EXPECT_EQ(message, (std::vector<uint8_t>{0, 7}));

  // Ack travels back over the same connection and resolves to the worker
  // that submitted.
  h.client->send_ack(message);
  ASSERT_TRUE(h.wait_for([&] {
    for (const auto& r : h.resolutions_) {
      if (r.id == 7 && r.worker == 1 &&
          r.resolution == ChannelResolution::kAcked) {
        return true;
      }
    }
    return false;
  }));

  const auto snapshot = h.server_registry_.snapshot();
  EXPECT_GE(counter_total(snapshot, "push_frames"), 2u);  // tx and rx
  EXPECT_GE(counter_total(snapshot, "push_connects_total"), 1u);
}

TEST(PushChannel, SupersededSerialCoalesces) {
  PushServer::Config config;
  config.pace_interval = net::milliseconds(500);  // hold the queue
  Harness h(config);
  h.start_client();
  ASSERT_TRUE(h.wait_subscribed());

  // Serial 2 covers everything serial 1 carried: only the newest serial
  // per (cache, name) survives in the queue.
  ASSERT_TRUE(h.server->writer_for(0)->try_push(h.item(1, 1)));
  ASSERT_TRUE(h.server->writer_for(0)->try_push(h.item(2, 2)));

  ASSERT_TRUE(h.wait_for([&] {
    for (const auto& r : h.resolutions_) {
      if (r.id == 1 && r.resolution == ChannelResolution::kCoalesced) {
        return true;
      }
    }
    return false;
  }));

  // The wire only ever carries serial 2.
  ASSERT_TRUE(h.wait_for([&] { return !h.updates_.empty(); }));
  {
    std::lock_guard lock(h.mutex_);
    ASSERT_EQ(h.updates_.size(), 1u);
    EXPECT_EQ(h.updates_[0], (std::vector<uint8_t>{0, 2}));
  }
  EXPECT_GE(counter_total(h.server_registry_.snapshot(),
                          "push_coalesced_total"),
            1u);
}

TEST(PushChannel, DisjointRecordsDoNotCoalesce) {
  PushServer::Config config;
  config.pace_interval = net::milliseconds(200);
  Harness h(config);
  h.start_client();
  ASSERT_TRUE(h.wait_subscribed());

  // Newer serial but covering a different name: no full supersede, both
  // updates must reach the wire.
  ASSERT_TRUE(h.server->writer_for(0)->try_push(h.item(1, 1, "a.example.com")));
  ASSERT_TRUE(h.server->writer_for(0)->try_push(h.item(2, 2, "b.example.com")));
  ASSERT_TRUE(h.wait_for([&] { return h.updates_.size() >= 2; }));
  {
    std::lock_guard lock(h.mutex_);
    for (const auto& r : h.resolutions_) {
      EXPECT_NE(r.resolution, ChannelResolution::kCoalesced);
    }
  }
}

TEST(PushChannel, UnsubscribedHolderIsRejected) {
  Harness h;
  // No client at all: try_push has no channel to ride.
  auto it = h.item(1, 1);
  it.holder = net::Endpoint{net::make_ip(127, 0, 0, 1), 59999};
  EXPECT_FALSE(h.server->writer_for(0)->try_push(std::move(it)));
}

TEST(PushChannel, SaturatedQueueOverflowsToUdp) {
  PushServer::Config config;
  config.max_queue_per_conn = 2;
  config.pace_interval = net::seconds(5);  // nothing drains during the test
  Harness h(config);
  h.start_client();
  ASSERT_TRUE(h.wait_subscribed());

  // Same serial on distinct names: no coalescing, the queue just fills.
  EXPECT_TRUE(h.server->writer_for(0)->try_push(h.item(1, 1, "a.example.com")));
  EXPECT_TRUE(h.server->writer_for(0)->try_push(h.item(2, 1, "b.example.com")));
  EXPECT_FALSE(
      h.server->writer_for(0)->try_push(h.item(3, 1, "c.example.com")));
  EXPECT_GE(counter_total(h.server_registry_.snapshot(),
                          "push_overflow_total"),
            1u);
}

TEST(PushChannel, DisconnectFailsQueuedUpdates) {
  PushServer::Config config;
  config.pace_interval = net::seconds(5);  // keep the update queued
  Harness h(config);
  h.start_client();
  ASSERT_TRUE(h.wait_subscribed());

  ASSERT_TRUE(h.server->writer_for(1)->try_push(h.item(9, 3)));
  h.client->set_paused(true);  // drops the connection, no reconnect

  // The orphaned update resolves kFailed so the notifier can ride UDP.
  ASSERT_TRUE(h.wait_for([&] {
    for (const auto& r : h.resolutions_) {
      if (r.id == 9 && r.worker == 1 &&
          r.resolution == ChannelResolution::kFailed) {
        return true;
      }
    }
    return false;
  }));
  EXPECT_TRUE(h.wait_unsubscribed());
}

TEST(PushChannel, ReconnectReAdoptsIdentity) {
  Harness h;
  h.server->set_zone_serial(dns::Name::parse("example.com").value(), 1);
  h.start_client();
  ASSERT_TRUE(h.wait_subscribed());
  EXPECT_EQ(h.client->connect_count(), 1u);

  h.client->set_paused(true);
  ASSERT_TRUE(h.wait_unsubscribed());
  h.client->set_paused(false);

  // The fresh connection re-adopts the same lease identity: exactly one
  // subscription, a second resync inventory, no lingering ghost.
  ASSERT_TRUE(h.wait_subscribed());
  ASSERT_TRUE(h.wait_for([&] { return h.resyncs_.size() >= 2; }));
  EXPECT_GE(h.client->connect_count(), 2u);
  EXPECT_EQ(h.server->subscription_count(), 1u);

  // And the re-adopted channel still carries pushes.
  ASSERT_TRUE(h.server->writer_for(0)->try_push(h.item(4, 2)));
  ASSERT_TRUE(h.wait_for([&] { return !h.updates_.empty(); }));
}

TEST(PushChannel, StopDrainsAcceptedUpdates) {
  PushServer::Config config;
  config.pace_interval = net::seconds(5);  // stop() must flush, not pacing
  Harness h(config);
  h.start_client();
  ASSERT_TRUE(h.wait_subscribed());

  ASSERT_TRUE(h.server->writer_for(0)->try_push(h.item(11, 1)));
  h.server->stop();

  // The shutdown flush pushed the queued frame out before closing.
  ASSERT_TRUE(h.wait_for([&] { return !h.updates_.empty(); }));
  {
    std::lock_guard lock(h.mutex_);
    EXPECT_EQ(h.updates_[0], (std::vector<uint8_t>{0, 11}));
  }
  EXPECT_GE(counter_total(h.server_registry_.snapshot(),
                          "push_shutdown_flushed_total"),
            1u);
}

}  // namespace
}  // namespace dnscup::push

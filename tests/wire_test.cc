#include <gtest/gtest.h>

#include "dns/wire.h"
#include "util/rng.h"

namespace dnscup::dns {
namespace {

Name mk(const char* text) { return Name::parse(text).value(); }

// ---- integer primitives -----------------------------------------------------

TEST(ByteWriter, BigEndianIntegers) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  const auto& b = w.data();
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[0], 0xAB);
  EXPECT_EQ(b[1], 0x12);
  EXPECT_EQ(b[2], 0x34);
  EXPECT_EQ(b[3], 0xDE);
  EXPECT_EQ(b[4], 0xAD);
  EXPECT_EQ(b[5], 0xBE);
  EXPECT_EQ(b[6], 0xEF);
}

TEST(ByteReader, ReadsBackIntegers) {
  ByteWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(123456789);
  ByteReader r({w.data().data(), w.data().size()});
  EXPECT_EQ(r.u8().value(), 7);
  EXPECT_EQ(r.u16().value(), 65535);
  EXPECT_EQ(r.u32().value(), 123456789u);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteReader, TruncationErrors) {
  const std::vector<uint8_t> three{1, 2, 3};
  ByteReader r({three.data(), three.size()});
  EXPECT_FALSE(r.u32().ok());
  EXPECT_TRUE(r.u16().ok());
  EXPECT_TRUE(r.u8().ok());
  EXPECT_FALSE(r.u8().ok());
  EXPECT_FALSE(r.bytes(1).ok());
}

TEST(ByteReader, SeekBounds) {
  const std::vector<uint8_t> data{1, 2, 3};
  ByteReader r({data.data(), data.size()});
  EXPECT_TRUE(r.seek(3).ok());
  EXPECT_TRUE(r.at_end());
  EXPECT_FALSE(r.seek(4).ok());
}

TEST(ByteWriter, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u8(9);
  w.patch_u16(0, 0xBEEF);
  EXPECT_EQ(w.data()[0], 0xBE);
  EXPECT_EQ(w.data()[1], 0xEF);
  EXPECT_EQ(w.data()[2], 9);
}

// ---- names -------------------------------------------------------------------

TEST(WireName, SimpleRoundTrip) {
  ByteWriter w;
  w.name(mk("www.example.com"));
  ByteReader r({w.data().data(), w.data().size()});
  EXPECT_EQ(r.name().value(), mk("www.example.com"));
  EXPECT_TRUE(r.at_end());
}

TEST(WireName, RootEncodesAsSingleZero) {
  ByteWriter w;
  w.name(Name::root());
  ASSERT_EQ(w.data().size(), 1u);
  EXPECT_EQ(w.data()[0], 0);
}

TEST(WireName, CompressionReusesSuffix) {
  ByteWriter w;
  w.name(mk("www.example.com"));
  const std::size_t first = w.size();
  w.name(mk("ftp.example.com"));  // shares "example.com"
  const std::size_t second = w.size() - first;
  // Second name: 1+3 ("ftp") + 2 (pointer) = 6 bytes.
  EXPECT_EQ(second, 6u);

  ByteReader r({w.data().data(), w.data().size()});
  EXPECT_EQ(r.name().value(), mk("www.example.com"));
  EXPECT_EQ(r.name().value(), mk("ftp.example.com"));
}

TEST(WireName, FullPointerForRepeatedName) {
  ByteWriter w;
  w.name(mk("a.b.c"));
  const std::size_t first = w.size();
  w.name(mk("a.b.c"));
  EXPECT_EQ(w.size() - first, 2u);  // single pointer
}

TEST(WireName, CompressionIsCaseInsensitive) {
  ByteWriter w;
  w.name(mk("www.Example.COM"));
  const std::size_t first = w.size();
  w.name(mk("ftp.example.com"));
  EXPECT_EQ(w.size() - first, 6u);
  ByteReader r({w.data().data(), w.data().size()});
  EXPECT_EQ(r.name().value(), mk("www.example.com"));
  EXPECT_EQ(r.name().value(), mk("ftp.example.com"));
}

TEST(WireName, UncompressedNeverPoints) {
  ByteWriter w;
  w.name(mk("host.example.com"));
  const std::size_t first = w.size();
  w.name_uncompressed(mk("host.example.com"));
  EXPECT_EQ(w.size() - first, mk("host.example.com").wire_length());
}

TEST(WireName, PointerLoopRejected) {
  // A name that points at itself: offset 0 contains a pointer to 0...
  // Forward/self pointers are rejected outright.
  const std::vector<uint8_t> self_loop{0xC0, 0x00};
  ByteReader r({self_loop.data(), self_loop.size()});
  EXPECT_FALSE(r.name().ok());
}

TEST(WireName, MutualLoopRejected) {
  // label "a" then pointer to offset 0: 0 -> "a" -> pointer at 2 -> 0 ...
  const std::vector<uint8_t> loop{1, 'a', 0xC0, 0x00};
  ByteReader r({loop.data(), loop.size()});
  ASSERT_TRUE(r.seek(2).ok());
  // Pointer at offset 2 targets offset 0, whose name runs into the same
  // pointer again -> forward-pointer rule kills it.
  EXPECT_FALSE(r.name().ok());
}

TEST(WireName, BackwardPointerAccepted) {
  ByteWriter w;
  w.name(mk("example.com"));      // offset 0
  w.u16(0xC000);                  // manual pointer to offset 0
  ByteReader r({w.data().data(), w.data().size()});
  EXPECT_EQ(r.name().value(), mk("example.com"));
  EXPECT_EQ(r.name().value(), mk("example.com"));
}

TEST(WireName, TruncatedLabelRejected) {
  const std::vector<uint8_t> bad{5, 'a', 'b'};  // label claims 5, has 2
  ByteReader r({bad.data(), bad.size()});
  EXPECT_FALSE(r.name().ok());
}

TEST(WireName, MissingTerminatorRejected) {
  const std::vector<uint8_t> bad{1, 'a'};  // no root octet
  ByteReader r({bad.data(), bad.size()});
  EXPECT_FALSE(r.name().ok());
}

TEST(WireName, ReservedLabelTypeRejected) {
  const std::vector<uint8_t> bad{0x80, 'a', 0};
  ByteReader r({bad.data(), bad.size()});
  EXPECT_FALSE(r.name().ok());
}

TEST(WireName, TruncatedPointerRejected) {
  const std::vector<uint8_t> bad{0xC0};
  ByteReader r({bad.data(), bad.size()});
  EXPECT_FALSE(r.name().ok());
}

class WireNameProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireNameProperty, RandomNameSequencesRoundTrip) {
  util::Rng rng(GetParam());
  // Write a random sequence of related names (to exercise compression),
  // then read them all back.
  std::vector<Name> names;
  ByteWriter w;
  const Name base = mk("example.com");
  for (int i = 0; i < 50; ++i) {
    Name n = base;
    const auto depth = rng.uniform_int(0, 3);
    for (int64_t d = 0; d < depth; ++d) {
      std::string label;
      const auto len = rng.uniform_int(1, 8);
      for (int64_t c = 0; c < len; ++c) {
        label += static_cast<char>('a' + rng.uniform_int(0, 25));
      }
      n = n.prepend(label);
    }
    names.push_back(n);
    w.name(n);
  }
  ByteReader r({w.data().data(), w.data().size()});
  for (const Name& expected : names) {
    auto got = r.name();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), expected);
  }
  EXPECT_TRUE(r.at_end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireNameProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

class WireFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzz, RandomBytesNeverCrashNameDecoder) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.uniform_int(0, 255));
    }
    ByteReader r({junk.data(), junk.size()});
    (void)r.name();  // must terminate and never crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace dnscup::dns

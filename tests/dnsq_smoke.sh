#!/usr/bin/env bash
# Smoke test for the real daemon binaries: starts a dnscupd authority and
# a dnscached cache as separate processes on loopback, then drives the
# whole DNScup loop with dnsq — plain query, EXT query with a granted
# lease, an RFC 2136 --update at the authority, and the pushed change
# visible at the cache without a TTL wait.
#
# Usage: dnsq_smoke.sh <dnscupd> <dnscached> <dnsq>
set -u

dnscupd="$1"
dnscached="$2"
dnsq="$3"

workdir="$(mktemp -d)"
auth_pid=""
cache_pid=""
cleanup() {
  [ -n "$cache_pid" ] && kill "$cache_pid" 2>/dev/null
  [ -n "$auth_pid" ] && kill "$auth_pid" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  echo "--- authority log ---" >&2; cat "$workdir/auth.log" >&2
  echo "--- cache log ---" >&2; cat "$workdir/cache.log" >&2
  exit 1
}

cat > "$workdir/zone" <<'EOF'
$ORIGIN example.com.
@ IN SOA ns1.example.com. admin.example.com. 1 7200 900 604800 300
@ 300 IN NS ns1.example.com.
ns1 300 IN A 10.0.0.1
www 300 IN A 10.1.0.1
EOF

# Ports derived from the PID keep parallel ctest runs apart.
auth_port=$(( 20000 + $$ % 10000 ))
cache_port=$(( auth_port + 10000 ))

"$dnscupd" --port "$auth_port" --zone "example.com=$workdir/zone" \
  > "$workdir/auth.log" 2>&1 &
auth_pid=$!
"$dnscached" --port "$cache_port" --upstream "127.0.0.1:$auth_port" \
  > "$workdir/cache.log" 2>&1 &
cache_pid=$!

# Wait for both daemons to report their listening endpoints.
for _ in $(seq 50); do
  grep -q "listening" "$workdir/auth.log" 2>/dev/null &&
    grep -q "listening" "$workdir/cache.log" 2>/dev/null && break
  kill -0 "$auth_pid" 2>/dev/null || fail "dnscupd exited early"
  kill -0 "$cache_pid" 2>/dev/null || fail "dnscached exited early"
  sleep 0.1
done

# 1. Plain query straight at the authority.
out="$("$dnsq" "127.0.0.1:$auth_port" www.example.com A)" ||
  fail "authority query failed: $out"
echo "$out" | grep -q "10.1.0.1" || fail "authority served wrong answer"

# 2. EXT query at the authority grants a lease (printed LLT).
out="$("$dnsq" "127.0.0.1:$auth_port" www.example.com A --ext 120)" ||
  fail "EXT query failed: $out"
echo "$out" | grep -q "lease granted" || fail "no lease granted on EXT"

# 3. Query through the cache: resolves via the authority, leases for real.
out="$("$dnsq" "127.0.0.1:$cache_port" www.example.com A)" ||
  fail "cache query failed: $out"
echo "$out" | grep -q "10.1.0.1" || fail "cache served wrong answer"

# 4. Repoint the record at the authority with an RFC 2136 UPDATE.
"$dnsq" "127.0.0.1:$auth_port" www.example.com --update 10.9.9.9 \
  > /dev/null || fail "UPDATE rejected"

# 5. The push reaches the cache: the new address is visible well within
# the 300 s TTL (poll up to 5 s).
for i in $(seq 50); do
  out="$("$dnsq" "127.0.0.1:$cache_port" www.example.com A)"
  echo "$out" | grep -q "10.9.9.9" && break
  [ "$i" = 50 ] && fail "pushed change never reached the cache: $out"
  sleep 0.1
done

# 6. A response from the wrong question id / malformed args fail cleanly.
"$dnsq" "127.0.0.1:$cache_port" 2>/dev/null && fail "bad usage accepted"

echo "dnsq smoke: all checks passed"
exit 0

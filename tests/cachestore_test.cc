// Mmap-backed persistent cache store: backend equivalence against the
// heap store under a seeded op stream, warm-restart reload with
// wall-clock TTL decay, lease demotion, corruption fallback to cold,
// torn-slot recovery, LRU order across restarts, zone-serial
// persistence and slab compaction.
#include "cachestore/mmap_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "server/cache.h"
#include "server/cache_store.h"
#include "util/crc32.h"

namespace dnscup::cachestore {
namespace {

using dns::Name;
using dns::RRType;
using server::CacheEntry;
using server::CacheKey;
using server::LeaseState;
using server::ResolverCache;

Name mk(const char* text) { return Name::parse(text).value(); }

dns::RRset a_set(const std::string& name, uint32_t ttl, uint32_t addr) {
  dns::RRset set{Name::parse(name).value(), RRType::kA, dns::RRClass::kIN,
                 ttl, {}};
  set.add(dns::ARdata{dns::Ipv4{addr}});
  return set;
}

constexpr int64_t kWallBase = 1'700'000'000'000'000;  // fixed fake epoch

/// Per-test store file in the build tree's working directory.
class CacheStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string("cachestore_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            "." + std::to_string(::getpid());
    ::unlink(path_.c_str());
  }
  void TearDown() override { ::unlink(path_.c_str()); }

  MmapCacheStore::Options options(int64_t wall_now = kWallBase,
                                  net::SimTime now = 0) {
    MmapCacheStore::Options opts;
    opts.path = path_;
    opts.file_bytes = 1ull << 20;
    opts.now = now;
    opts.wall_now_us = wall_now;
    return opts;
  }

  std::unique_ptr<MmapCacheStore> open(
      int64_t wall_now = kWallBase, net::SimTime now = 0,
      bool keep_leases = true,
      metrics::MetricsRegistry* metrics = nullptr) {
    auto opts = options(wall_now, now);
    opts.keep_leases = keep_leases;
    opts.metrics = metrics;
    auto opened = MmapCacheStore::open(std::move(opts));
    EXPECT_TRUE(opened.ok()) << opened.error().to_string();
    return std::move(opened).value();
  }

  std::string path_;
};

TEST_F(CacheStoreTest, ColdStartOnFreshFile) {
  auto store = open();
  EXPECT_EQ(store->name(), "mmap");
  EXPECT_TRUE(store->load_report().cold);
  EXPECT_EQ(store->load_report().cold_reason, "fresh file");
  EXPECT_GE(store->slot_count(), 64u);
  EXPECT_EQ(store->slots_used(), 0u);
  EXPECT_EQ(store->size(), 0u);
}

// ---- backend equivalence --------------------------------------------------

struct Lcg {
  uint64_t state;
  uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

/// Drives the same randomized op stream through a heap-backed and an
/// mmap-backed ResolverCache and asserts identical observable behavior —
/// the seam's core contract.
TEST_F(CacheStoreTest, BackendEquivalenceUnderSeededOpStream) {
  constexpr std::size_t kCapacity = 12;
  ResolverCache heap(kCapacity);
  ResolverCache mmap(kCapacity, nullptr, open());

  const net::Endpoint authority{net::make_ip(10, 0, 0, 1), 53};
  Lcg rng{20260809};
  net::SimTime now = 0;
  for (int op = 0; op < 4000; ++op) {
    const std::string name =
        "n" + std::to_string(rng.next() % 24) + ".example.com";
    now += static_cast<net::Duration>(
        rng.next() % static_cast<uint64_t>(net::seconds(5)));
    switch (rng.next() % 8) {
      case 0:
      case 1: {
        const uint32_t ttl = 30 + rng.next() % 600;
        const uint32_t addr = static_cast<uint32_t>(rng.next());
        heap.put(a_set(name, ttl, addr), now);
        mmap.put(a_set(name, ttl, addr), now);
        break;
      }
      case 2: {
        const uint32_t ttl = 30 + rng.next() % 120;
        heap.put_negative(mk(name.c_str()), RRType::kA,
                          dns::Rcode::kNXDomain, ttl, now);
        mmap.put_negative(mk(name.c_str()), RRType::kA,
                          dns::Rcode::kNXDomain, ttl, now);
        break;
      }
      case 3: {
        const auto lease = LeaseState{
            now + net::seconds(60) +
                static_cast<net::Duration>(
                    rng.next() % static_cast<uint64_t>(net::seconds(600))),
            authority};
        EXPECT_EQ(heap.set_lease(mk(name.c_str()), RRType::kA, lease),
                  mmap.set_lease(mk(name.c_str()), RRType::kA, lease));
        break;
      }
      case 4: {
        EXPECT_EQ(heap.invalidate(mk(name.c_str()), RRType::kA),
                  mmap.invalidate(mk(name.c_str()), RRType::kA));
        break;
      }
      case 5: {
        EXPECT_EQ(heap.purge_expired(now), mmap.purge_expired(now));
        break;
      }
      case 6: {
        heap.note_zone_serial(mk("example.com"),
                              static_cast<uint32_t>(op));
        mmap.note_zone_serial(mk("example.com"),
                              static_cast<uint32_t>(op));
        break;
      }
      default: {
        const CacheEntry* h = heap.lookup(mk(name.c_str()), RRType::kA, now);
        const CacheEntry* m = mmap.lookup(mk(name.c_str()), RRType::kA, now);
        ASSERT_EQ(h == nullptr, m == nullptr) << "op " << op << " " << name;
        if (h != nullptr) {
          EXPECT_EQ(h->negative, m->negative);
          EXPECT_EQ(h->expiry, m->expiry);
          EXPECT_EQ(h->rrset.rdatas.size(), m->rrset.rdatas.size());
        }
        break;
      }
    }
    ASSERT_EQ(heap.size(), mmap.size()) << "op " << op;
  }

  const auto hs = heap.stats();
  const auto ms = mmap.stats();
  EXPECT_EQ(hs.hits, ms.hits);
  EXPECT_EQ(hs.misses, ms.misses);
  EXPECT_EQ(hs.expired, ms.expired);
  EXPECT_EQ(hs.insertions, ms.insertions);
  EXPECT_EQ(hs.invalidations, ms.invalidations);
  EXPECT_EQ(hs.evictions, ms.evictions);
  EXPECT_EQ(hs.leased_evictions, ms.leased_evictions);
  EXPECT_EQ(heap.zone_serials(), mmap.zone_serials());

  // Same resident set, entry for entry.
  std::vector<std::pair<std::string, net::SimTime>> heap_dump, mmap_dump;
  heap.for_each([&](const CacheKey& k, const CacheEntry& e) {
    heap_dump.emplace_back(k.name.to_string(), e.expiry);
  });
  mmap.for_each([&](const CacheKey& k, const CacheEntry& e) {
    mmap_dump.emplace_back(k.name.to_string(), e.expiry);
  });
  std::sort(heap_dump.begin(), heap_dump.end());
  std::sort(mmap_dump.begin(), mmap_dump.end());
  EXPECT_EQ(heap_dump, mmap_dump);
}

// ---- warm restart ---------------------------------------------------------

TEST_F(CacheStoreTest, WarmReloadDecaysTtlByDowntime) {
  const net::Endpoint authority{net::make_ip(10, 0, 0, 1), 53};
  {
    ResolverCache cache(0, nullptr, open());
    cache.put(a_set("www.example.com", 600, 7), net::seconds(10));
    cache.put(a_set("mail.example.com", 50, 8), net::seconds(10));
    cache.set_lease(
        mk("www.example.com"), RRType::kA,
        LeaseState{net::seconds(500), authority});
    cache.note_zone_serial(mk("example.com"), 42);
  }  // destructor msyncs

  // The process was down for 120 s of wall time: mail.example.com's 50 s
  // TTL (set at t=10) is long gone, www's 600 s TTL and 500 s lease are
  // not.
  auto reloaded = open(kWallBase + net::seconds(120), 0);
  const auto& report = reloaded->load_report();
  EXPECT_FALSE(report.cold);
  EXPECT_EQ(report.warm_entries, 1u);
  EXPECT_EQ(report.expired_dropped, 1u);
  EXPECT_EQ(report.torn_dropped, 0u);
  EXPECT_EQ(report.zones_loaded, 1u);
  EXPECT_EQ(report.downtime_us, net::seconds(120));

  CacheEntry* entry =
      reloaded->find(CacheKey{mk("www.example.com"), RRType::kA});
  ASSERT_NE(entry, nullptr);
  // Written at t=10 with TTL 600 → expiry 610 in the old clock; the new
  // clock starts 120 s later.
  EXPECT_EQ(entry->expiry, net::seconds(610 - 120));
  ASSERT_TRUE(entry->lease.has_value());
  EXPECT_EQ(entry->lease->expiry, net::seconds(500 - 120));
  EXPECT_EQ(entry->lease->authority, authority);
  ASSERT_EQ(entry->rrset.rdatas.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(entry->rrset.rdatas[0]).address.addr, 7u);

  const auto serials = reloaded->zone_serials();
  ASSERT_EQ(serials.size(), 1u);
  EXPECT_EQ(serials[0].first, mk("example.com"));
  EXPECT_EQ(serials[0].second, 42u);
}

TEST_F(CacheStoreTest, KeepLeasesFalseDemotesWarmLeases) {
  const net::Endpoint authority{net::make_ip(10, 0, 0, 1), 53};
  {
    ResolverCache cache(0, nullptr, open());
    // TTL-fresh and leased: survives demotion as a plain TTL entry.
    cache.put(a_set("a.example.com", 600, 1), 0);
    cache.set_lease(mk("a.example.com"), RRType::kA,
                    LeaseState{net::seconds(900), authority});
    // TTL already short; only the lease would keep it alive.
    cache.put(a_set("b.example.com", 30, 2), 0);
    cache.set_lease(mk("b.example.com"), RRType::kA,
                    LeaseState{net::seconds(900), authority});
  }

  auto reloaded = open(kWallBase + net::seconds(60), 0, /*keep_leases=*/false);
  const auto& report = reloaded->load_report();
  EXPECT_EQ(report.leases_demoted, 2u);
  EXPECT_EQ(report.warm_entries, 1u);   // only a.example.com
  EXPECT_EQ(report.expired_dropped, 1u);
  CacheEntry* entry =
      reloaded->find(CacheKey{mk("a.example.com"), RRType::kA});
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->lease.has_value());
}

TEST_F(CacheStoreTest, NegativeEntriesSurviveRestart) {
  {
    ResolverCache cache(0, nullptr, open());
    cache.put_negative(mk("no.example.com"), RRType::kA,
                       dns::Rcode::kNXDomain, 600, 0);
  }
  auto reloaded = open(kWallBase + net::seconds(10), 0);
  EXPECT_EQ(reloaded->load_report().warm_entries, 1u);
  CacheEntry* entry =
      reloaded->find(CacheKey{mk("no.example.com"), RRType::kA});
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->negative);
  EXPECT_EQ(entry->negative_rcode, dns::Rcode::kNXDomain);
  EXPECT_TRUE(entry->rrset.rdatas.empty());
}

TEST_F(CacheStoreTest, LruOrderSurvivesRestart) {
  {
    ResolverCache cache(0, nullptr, open());
    cache.put(a_set("old.example.com", 600, 1), 0);
    cache.put(a_set("mid.example.com", 600, 2), 0);
    cache.put(a_set("hot.example.com", 600, 3), 0);
    // Touch old.example.com so the pre-restart LRU victim is mid.
    cache.lookup(mk("old.example.com"), RRType::kA, net::seconds(1));
  }
  ResolverCache cache(3, nullptr, open(kWallBase + net::seconds(5), 0));
  EXPECT_EQ(cache.size(), 3u);
  // One insert over capacity must evict the pre-restart LRU entry.
  cache.put(a_set("new.example.com", 600, 4), net::seconds(1));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.peek(mk("mid.example.com"), RRType::kA), nullptr);
  EXPECT_NE(cache.peek(mk("old.example.com"), RRType::kA), nullptr);
  EXPECT_NE(cache.peek(mk("hot.example.com"), RRType::kA), nullptr);
}

// ---- corruption -----------------------------------------------------------

void patch_file(const std::string& path, std::size_t offset,
                const void* bytes, std::size_t len) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(bytes, 1, len, f), len);
  std::fclose(f);
}

TEST_F(CacheStoreTest, BadMagicFallsBackCold) {
  { ResolverCache cache(0, nullptr, open());
    cache.put(a_set("www.example.com", 600, 1), 0); }
  const char junk[8] = {'N', 'O', 'T', 'A', 'C', 'A', 'C', 'H'};
  patch_file(path_, 0, junk, sizeof junk);
  auto reloaded = open(kWallBase + 1, 0);
  EXPECT_TRUE(reloaded->load_report().cold);
  EXPECT_EQ(reloaded->load_report().cold_reason, "bad magic");
  EXPECT_EQ(reloaded->size(), 0u);
}

TEST_F(CacheStoreTest, BadVersionFallsBackCold) {
  { ResolverCache cache(0, nullptr, open());
    cache.put(a_set("www.example.com", 600, 1), 0); }
  // Version then header CRC refreshed so only the version mismatches.
  const uint32_t version = 99;
  patch_file(path_, 8, &version, sizeof version);
  std::vector<uint8_t> head(60);
  { std::ifstream in(path_, std::ios::binary);
    in.read(reinterpret_cast<char*>(head.data()),
            static_cast<std::streamsize>(head.size())); }
  const uint32_t crc = util::crc32(head);
  patch_file(path_, 60, &crc, sizeof crc);
  auto reloaded = open(kWallBase + 1, 0);
  EXPECT_TRUE(reloaded->load_report().cold);
  EXPECT_EQ(reloaded->load_report().cold_reason, "bad version");
}

TEST_F(CacheStoreTest, TornHeaderFallsBackCold) {
  { ResolverCache cache(0, nullptr, open());
    cache.put(a_set("www.example.com", 600, 1), 0); }
  // Flip one CRC-covered header byte without fixing the CRC.
  const uint8_t garbage = 0xA5;
  patch_file(path_, 40, &garbage, sizeof garbage);
  auto reloaded = open(kWallBase + 1, 0);
  EXPECT_TRUE(reloaded->load_report().cold);
  EXPECT_EQ(reloaded->load_report().cold_reason, "bad header crc");
}

TEST_F(CacheStoreTest, ResizedFileFallsBackCold) {
  { ResolverCache cache(0, nullptr, open());
    cache.put(a_set("www.example.com", 600, 1), 0); }
  auto opts = options(kWallBase + 1, 0);
  opts.file_bytes = 2ull << 20;  // operator grew --cache-file-size
  auto reloaded = MmapCacheStore::open(std::move(opts));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded.value()->load_report().cold);
  EXPECT_EQ(reloaded.value()->load_report().cold_reason, "size mismatch");
}

TEST_F(CacheStoreTest, TornSlotIsDroppedOthersSurvive) {
  {
    ResolverCache cache(0, nullptr, open());
    cache.put(a_set("a.example.com", 600, 1), 0);
    cache.put(a_set("b.example.com", 600, 2), 0);
    cache.put(a_set("c.example.com", 600, 3), 0);
  }
  // Corrupt one used slot's name text mid-file (CRC now mismatches).
  auto probe = open(kWallBase + 1, 0);
  ASSERT_EQ(probe->load_report().warm_entries, 3u);
  const std::size_t slot_count = probe->slot_count();
  probe.reset();
  bool patched = false;
  std::vector<uint8_t> slot(512);
  std::ifstream in(path_, std::ios::binary);
  for (std::size_t i = 0; i < slot_count && !patched; ++i) {
    in.seekg(static_cast<std::streamoff>(4096 + i * 512));
    in.read(reinterpret_cast<char*>(slot.data()), 512);
    uint32_t state = 0;
    std::memcpy(&state, slot.data(), sizeof state);
    if (state == 1) {  // kUsed
      const uint8_t garbage = 0xFF;
      patch_file(path_, 4096 + i * 512 + 80, &garbage, sizeof garbage);
      patched = true;
    }
  }
  ASSERT_TRUE(patched);
  auto reloaded = open(kWallBase + 2, 0);
  EXPECT_FALSE(reloaded->load_report().cold);
  EXPECT_EQ(reloaded->load_report().torn_dropped, 1u);
  EXPECT_EQ(reloaded->load_report().warm_entries, 2u);
}

// ---- slab compaction ------------------------------------------------------

TEST_F(CacheStoreTest, SlabCompactionKeepsEntriesIntact) {
  metrics::MetricsRegistry registry;
  auto store = open(kWallBase, 0, true, &registry);
  ResolverCache cache(0, nullptr, std::move(store));
  // Each put re-appends the entry's wire payload to the bump arena; far
  // more appends than the ~900 KiB slab holds forces compaction.
  dns::RRset big{mk("big.example.com"), RRType::kTXT, dns::RRClass::kIN,
                 600, {}};
  big.add(dns::TXTRdata{{std::string(200, 'x')}});
  for (int i = 0; i < 8000; ++i) {
    big.ttl = 600 + static_cast<uint32_t>(i % 7);
    cache.put(big, net::seconds(i % 100));
    cache.put(a_set("a.example.com", 600, static_cast<uint32_t>(i)),
              net::seconds(i % 100));
  }
  uint64_t compactions = 0, persist_failures = 0;
  for (const auto& entry : registry.snapshot(0).entries) {
    if (entry.name == "cache_store_compactions") {
      compactions += entry.counter_value;
    }
    if (entry.name == "cache_store_persist_failures") {
      persist_failures += entry.counter_value;
    }
  }
  EXPECT_GT(compactions, 0u);
  EXPECT_EQ(persist_failures, 0u);

  cache.note_zone_serial(mk("example.com"), 5);
  const net::SimTime end = net::seconds(99);
  ASSERT_NE(cache.lookup(mk("big.example.com"), RRType::kTXT, end), nullptr);
  ASSERT_NE(cache.lookup(mk("a.example.com"), RRType::kA, end), nullptr);
}

TEST_F(CacheStoreTest, CompactedImageReloadsCleanly) {
  {
    metrics::MetricsRegistry registry;
    ResolverCache cache(0, nullptr, open(kWallBase, 0, true, &registry));
    dns::RRset big{mk("big.example.com"), RRType::kTXT, dns::RRClass::kIN,
                   600, {}};
    big.add(dns::TXTRdata{{std::string(200, 'y')}});
    for (int i = 0; i < 8000; ++i) {
      cache.put(big, 0);
      cache.put(a_set("a.example.com", 600, 1), 0);
    }
  }
  auto reloaded = open(kWallBase + net::seconds(5), 0);
  EXPECT_FALSE(reloaded->load_report().cold);
  EXPECT_EQ(reloaded->load_report().warm_entries, 2u);
  EXPECT_EQ(reloaded->load_report().torn_dropped, 0u);
  CacheEntry* entry =
      reloaded->find(CacheKey{mk("big.example.com"), RRType::kTXT});
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->rrset.rdatas.size(), 1u);
  EXPECT_EQ(std::get<dns::TXTRdata>(entry->rrset.rdatas[0]).strings[0],
            std::string(200, 'y'));
}

}  // namespace
}  // namespace dnscup::cachestore

// End-to-end DNScup behaviour on the Figure-7 testbed: the strong-cache-
// consistency invariant, its TTL counterpart, failure injection, and the
// paper's 512-byte message-size claim.
#include <gtest/gtest.h>

#include "sim/testbed.h"

namespace dnscup {
namespace {

using dns::RRType;
using sim::Testbed;
using sim::TestbedConfig;
using Outcome = server::CachingResolver::Outcome;

dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

TEST(DnscupE2E, FullTestbedTopologyResolves) {
  // The paper's testbed: 40 zones, master + 2 slaves, 2 caches.
  TestbedConfig config;
  config.zones = 40;
  Testbed tb(config);
  for (std::size_t z = 0; z < 40; z += 7) {
    const auto r = tb.resolve(0, tb.web_host(z), RRType::kA);
    ASSERT_TRUE(r.has_value()) << z;
    EXPECT_EQ(r->status, Outcome::Status::kOk) << z;
  }
  // Every exchanged datagram respected RFC 1035's 512-byte UDP limit.
  EXPECT_LE(tb.network().max_packet_bytes(), dns::kMaxUdpPayload);
}

TEST(DnscupE2E, StrongConsistencyInvariant) {
  // After a mapping change settles, every cache holding a lease answers
  // with the new mapping long before its TTL would have expired.
  TestbedConfig config;
  config.zones = 8;
  config.caches = 2;
  config.record_ttl = 3600;  // long TTL: weak consistency would stale out
  Testbed tb(config);

  // Both caches load (and lease) every zone.
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t z = 0; z < 8; ++z) {
      ASSERT_TRUE(tb.resolve(c, tb.web_host(z), RRType::kA).has_value());
    }
  }

  // Repoint all zones.
  for (std::size_t z = 0; z < 8; ++z) {
    ASSERT_EQ(tb.repoint_web_host(
                  z, dns::Ipv4{ip("198.18.1.0").addr +
                               static_cast<uint32_t>(z)}),
              dns::Rcode::kNoError);
  }
  tb.loop().run_for(net::seconds(5));  // notification settle time

  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t z = 0; z < 8; ++z) {
      const auto r = tb.resolve(c, tb.web_host(z), RRType::kA);
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address.addr,
                ip("198.18.1.0").addr + static_cast<uint32_t>(z))
          << "cache " << c << " zone " << z;
      EXPECT_TRUE(r->from_cache);  // served from the pushed update
    }
  }
  // Acks balanced: nothing left in flight.
  EXPECT_EQ(tb.dnscup()->notifier().in_flight(), 0u);
  const auto& ns = tb.dnscup()->notifier().stats();
  EXPECT_EQ(ns.acks_received, ns.updates_sent);
}

TEST(DnscupE2E, TtlBaselineServesStale) {
  // The identical scenario without DNScup: caches serve the old mapping
  // until TTL expiry — the paper's motivating failure mode.
  TestbedConfig config;
  config.zones = 2;
  config.caches = 1;
  config.record_ttl = 3600;
  config.dnscup_enabled = false;
  Testbed tb(config);

  ASSERT_TRUE(tb.resolve(0, tb.web_host(0), RRType::kA).has_value());
  tb.repoint_web_host(0, ip("198.18.2.1"));
  tb.loop().run_for(net::minutes(10));

  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  ASSERT_TRUE(r.has_value());
  EXPECT_NE(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("198.18.2.1"));  // still stale after 10 minutes

  // Only after TTL expiry does the cache converge.
  tb.loop().run_for(net::seconds(3601));
  const auto r2 = tb.resolve(0, tb.web_host(0), RRType::kA);
  EXPECT_EQ(std::get<dns::ARdata>(r2->rrset.rdatas[0]).address,
            ip("198.18.2.1"));
}

TEST(DnscupE2E, NotificationSurvivesLossyNetwork) {
  TestbedConfig config;
  config.zones = 2;
  config.caches = 1;
  config.record_ttl = 3600;
  config.link.loss_probability = 0.25;
  config.seed = 7;
  Testbed tb(config);

  ASSERT_TRUE(tb.resolve(0, tb.web_host(0), RRType::kA).has_value());
  ASSERT_EQ(tb.repoint_web_host(0, ip("198.18.3.1")), dns::Rcode::kNoError);
  tb.loop().run_for(net::minutes(2));  // room for retransmissions

  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("198.18.3.1"));
}

TEST(DnscupE2E, LeaseExpiryFallsBackToTtl) {
  TestbedConfig config;
  config.zones = 2;
  config.caches = 1;
  config.record_ttl = 60;
  config.max_lease = net::seconds(120);
  Testbed tb(config);

  ASSERT_TRUE(tb.resolve(0, tb.web_host(0), RRType::kA).has_value());
  // Let both TTL and lease run out with no renewal.
  tb.loop().run_until(tb.loop().now() + net::seconds(300));
  EXPECT_EQ(tb.lease_client(0)->live_leases(tb.loop().now()), 0u);

  // A change now produces no CACHE-UPDATE (no valid leaseholder)...
  const auto sent_before = tb.dnscup()->notifier().stats().updates_sent;
  tb.repoint_web_host(0, ip("198.18.4.1"));
  tb.loop().run_for(net::seconds(2));
  EXPECT_EQ(tb.dnscup()->notifier().stats().updates_sent, sent_before);

  // ...but the next query re-resolves (TTL expired) and re-leases.
  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("198.18.4.1"));
  EXPECT_FALSE(r->from_cache);
  EXPECT_EQ(tb.lease_client(0)->live_leases(tb.loop().now()), 1u);
}

TEST(DnscupE2E, CachePartitionRevokesLeaseAfterRetries) {
  TestbedConfig config;
  config.zones = 2;
  config.caches = 1;
  config.record_ttl = 3600;
  Testbed tb(config);

  ASSERT_TRUE(tb.resolve(0, tb.web_host(0), RRType::kA).has_value());
  EXPECT_EQ(tb.dnscup()->track_file().live_count(tb.loop().now()), 1u);

  // Partition the cache away, then change the mapping.
  const net::Endpoint cache_ep{net::make_ip(10, 0, 2, 1), 53};
  tb.network().partition(tb.master_endpoint(), cache_ep);
  tb.repoint_web_host(0, ip("198.18.5.1"));
  tb.loop().run_for(net::minutes(5));  // exhaust retries

  EXPECT_GE(tb.dnscup()->notifier().stats().failures, 1u);
  // The lease was revoked: the authority no longer believes the cache is
  // consistent (it will stale out via TTL like a legacy cache).
  EXPECT_TRUE(tb.dnscup()
                  ->track_file()
                  .holders_of(tb.web_host(0), RRType::kA, tb.loop().now())
                  .empty());
}

TEST(DnscupE2E, RevokedLeaseCacheConvergesViaTtlExpiry) {
  // The consumer side of retry exhaustion: after the notifier gives up
  // and revokes the lease, the partitioned cache is a legacy cache in
  // disguise — it serves the stale mapping only until its own lease and
  // TTL lapse, then converges and re-leases.  Strong consistency degrades
  // to TTL consistency, never to permanent staleness.
  TestbedConfig config;
  config.zones = 2;
  config.caches = 1;
  config.record_ttl = 300;
  config.max_lease = net::minutes(10);
  Testbed tb(config);

  const auto warm = tb.resolve(0, tb.web_host(0), RRType::kA);
  ASSERT_TRUE(warm.has_value());
  const auto old_address = std::get<dns::ARdata>(warm->rrset.rdatas[0]).address;
  EXPECT_EQ(tb.lease_client(0)->live_leases(tb.loop().now()), 1u);

  // Partition the push path, change the mapping, exhaust the retries.
  const net::Endpoint cache_ep{net::make_ip(10, 0, 2, 1), 53};
  tb.network().partition(tb.master_endpoint(), cache_ep);
  tb.repoint_web_host(0, ip("198.18.5.2"));
  tb.loop().run_for(net::minutes(5));
  EXPECT_GE(tb.dnscup()->notifier().stats().failures, 1u);
  EXPECT_TRUE(tb.dnscup()
                  ->track_file()
                  .holders_of(tb.web_host(0), RRType::kA, tb.loop().now())
                  .empty());

  // Heal the network.  The cache never saw the push or the revocation: it
  // still trusts its lease and serves the stale mapping from cache.
  tb.network().heal(tb.master_endpoint(), cache_ep);
  const auto stale = tb.resolve(0, tb.web_host(0), RRType::kA);
  ASSERT_TRUE(stale.has_value());
  EXPECT_TRUE(stale->from_cache);
  EXPECT_EQ(std::get<dns::ARdata>(stale->rrset.rdatas[0]).address,
            old_address);

  // Once the lease (10 min) has lapsed — the TTL expired inside it — the
  // next resolution goes back upstream and converges on the new mapping.
  tb.loop().run_for(config.max_lease + net::minutes(1));
  const auto fresh = tb.resolve(0, tb.web_host(0), RRType::kA);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh->from_cache);
  EXPECT_EQ(std::get<dns::ARdata>(fresh->rrset.rdatas[0]).address,
            ip("198.18.5.2"));
  // The EXT re-resolution registered a fresh lease on both sides.
  EXPECT_EQ(tb.lease_client(0)->live_leases(tb.loop().now()), 1u);
  EXPECT_FALSE(tb.dnscup()
                   ->track_file()
                   .holders_of(tb.web_host(0), RRType::kA, tb.loop().now())
                   .empty());
}

TEST(DnscupE2E, SlavesStayConsistentWithMaster) {
  TestbedConfig config;
  config.zones = 4;
  config.slaves = 2;
  Testbed tb(config);
  // Bootstrap the slaves.
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t z = 0; z < 4; ++z) {
      tb.slave(s).request_transfer(tb.zone_origin(z));
    }
  }
  tb.loop().run_for(net::seconds(5));

  tb.repoint_web_host(2, ip("198.18.6.1"));
  tb.loop().run_for(net::seconds(5));

  for (std::size_t s = 0; s < 2; ++s) {
    const dns::Zone* zone = tb.slave(s).find_zone(tb.zone_origin(2));
    ASSERT_NE(zone, nullptr);
    const dns::RRset* a = zone->find(tb.web_host(2), RRType::kA);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(std::get<dns::ARdata>(a->rdatas[0]).address,
              ip("198.18.6.1"));
  }
}

TEST(DnscupE2E, MixedLegacyAndDnscupCaches) {
  // Cache 0 runs DNScup, cache 1 is wired up as legacy by stripping its
  // extension — backward compatibility (§1): both coexist against the
  // same authority.
  TestbedConfig config;
  config.zones = 2;
  config.caches = 2;
  config.record_ttl = 3600;
  Testbed tb(config);
  tb.cache(1).set_extension(nullptr);  // cache 1 speaks plain RFC 1035

  ASSERT_TRUE(tb.resolve(0, tb.web_host(0), RRType::kA).has_value());
  ASSERT_TRUE(tb.resolve(1, tb.web_host(0), RRType::kA).has_value());
  // Only cache 0 holds a lease.
  EXPECT_EQ(tb.dnscup()
                ->track_file()
                .holders_of(tb.web_host(0), RRType::kA, tb.loop().now())
                .size(),
            1u);

  tb.repoint_web_host(0, ip("198.18.7.1"));
  tb.loop().run_for(net::seconds(5));

  const auto fresh = tb.resolve(0, tb.web_host(0), RRType::kA);
  EXPECT_EQ(std::get<dns::ARdata>(fresh->rrset.rdatas[0]).address,
            ip("198.18.7.1"));
  const auto stale = tb.resolve(1, tb.web_host(0), RRType::kA);
  EXPECT_NE(std::get<dns::ARdata>(stale->rrset.rdatas[0]).address,
            ip("198.18.7.1"));
}

TEST(DnscupE2E, AllMessagesUnder512BytesWithDnscupTraffic) {
  TestbedConfig config;
  config.zones = 16;
  config.caches = 2;
  Testbed tb(config);
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t z = 0; z < 16; ++z) {
      tb.resolve(c, tb.web_host(z), RRType::kA);
    }
  }
  for (std::size_t z = 0; z < 16; ++z) {
    tb.repoint_web_host(z, dns::Ipv4{ip("198.18.8.0").addr +
                                     static_cast<uint32_t>(z)});
  }
  tb.loop().run_for(net::seconds(10));
  EXPECT_LE(tb.network().max_packet_bytes(), dns::kMaxUdpPayload);
  EXPECT_GT(tb.dnscup()->notifier().stats().updates_sent, 0u);
}

TEST(DnscupE2E, MasterFailureResolvedViaAdvertisedSlaves) {
  // Availability (§1): with slaves advertised in the delegation, a cache
  // keeps resolving after the master dies.
  TestbedConfig config;
  config.zones = 2;
  config.caches = 1;
  config.slaves = 2;
  config.advertise_slaves = true;
  config.record_ttl = 60;
  Testbed tb(config);
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t z = 0; z < 2; ++z) {
      tb.slave(s).request_transfer(tb.zone_origin(z));
    }
  }
  tb.loop().run_for(net::seconds(5));

  ASSERT_TRUE(tb.resolve(0, tb.web_host(0), RRType::kA).has_value());

  // The master goes dark (both directions).
  const net::Endpoint cache_ep{net::make_ip(10, 0, 2, 1), 53};
  tb.network().partition(cache_ep, tb.master_endpoint());
  tb.network().partition(tb.master_endpoint(), cache_ep);

  // Past the TTL the cache must re-resolve — only the slaves can answer.
  tb.loop().run_until(tb.loop().now() + net::minutes(2));
  const auto r = tb.resolve(0, tb.web_host(1), RRType::kA,
                            net::minutes(2));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kOk);
  EXPECT_GT(tb.cache(0).stats().timeouts, 0u);  // it did try the master
}

TEST(DnscupE2E, SlavesAnswerLegacyOnlyNoLeases) {
  // Slaves run no DNScup middleware: answers from them grant no lease,
  // and the cache transparently degrades to TTL for those records.
  TestbedConfig config;
  config.zones = 1;
  config.caches = 1;
  config.slaves = 1;
  config.advertise_slaves = true;
  config.record_ttl = 300;
  Testbed tb(config);
  tb.slave(0).request_transfer(tb.zone_origin(0));
  tb.loop().run_for(net::seconds(5));

  // Force resolution through the slave by cutting the master away.
  const net::Endpoint cache_ep{net::make_ip(10, 0, 2, 1), 53};
  tb.network().partition(cache_ep, tb.master_endpoint());
  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA,
                            net::minutes(2));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kOk);
  EXPECT_EQ(tb.lease_client(0)->live_leases(tb.loop().now()), 0u);
}

TEST(DnscupE2E, RenewalOnQueryAfterLeaseExpiry) {
  TestbedConfig config;
  config.zones = 2;
  config.caches = 1;
  config.record_ttl = 30;
  config.max_lease = net::seconds(60);
  Testbed tb(config);

  tb.resolve(0, tb.web_host(0), RRType::kA);
  const auto& tf = tb.dnscup()->track_file();
  EXPECT_EQ(tf.live_count(tb.loop().now()), 1u);

  // Past lease expiry, the next client query re-resolves and re-leases
  // (the paper's renewal-on-next-query model).
  tb.loop().run_until(tb.loop().now() + net::seconds(90));
  EXPECT_EQ(tf.live_count(tb.loop().now()), 0u);
  tb.resolve(0, tb.web_host(0), RRType::kA);
  EXPECT_EQ(tf.live_count(tb.loop().now()), 1u);
  // The re-grant counts as a renewal (same grantor, entry still cached).
  EXPECT_GE(tb.lease_client(0)->stats().leases_registered +
                tb.lease_client(0)->stats().lease_renewals,
            2u);
}

}  // namespace
}  // namespace dnscup

// Chaos test: random interleavings of resolutions, mapping changes,
// partitions and heals on the full testbed, followed by an
// eventual-consistency check.
//
// Invariants exercised:
//  * the stack never crashes or wedges under arbitrary op orderings;
//  * after all partitions heal and more than a TTL passes, every cache
//    answers every zone with the master's current mapping (leased caches
//    converge by push, revoked/expired ones by TTL refetch);
//  * the notifier never leaks in-flight state forever.
#include <gtest/gtest.h>

#include "sim/testbed.h"
#include "util/rng.h"

namespace dnscup {
namespace {

using dns::RRType;
using sim::Testbed;
using sim::TestbedConfig;

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, RandomOpsConvergeAfterHeal) {
  TestbedConfig config;
  config.zones = 4;
  config.caches = 2;
  config.record_ttl = 60;
  // Convergence after a permanently-failed push is bounded by the *lease*
  // term (the authority revokes its side, but the cache trusts its lease
  // until expiry) — keep it short so the settle window covers it.
  config.max_lease = net::minutes(4);
  config.seed = GetParam();
  Testbed tb(config);
  util::Rng rng(GetParam() * 7919 + 1);

  const net::Endpoint cache_eps[] = {
      {net::make_ip(10, 0, 2, 1), 53},
      {net::make_ip(10, 0, 2, 2), 53},
  };
  bool partitioned[2] = {false, false};
  uint32_t next_ip = net::make_ip(198, 19, 0, 1);

  for (int op = 0; op < 200; ++op) {
    switch (rng.uniform_int(0, 5)) {
      case 0:
      case 1: {  // client query (may time out under partition: fine)
        const auto cache = static_cast<std::size_t>(rng.uniform_int(0, 1));
        const auto zone = static_cast<std::size_t>(rng.uniform_int(0, 3));
        tb.cache(cache).resolve(
            tb.web_host(zone), RRType::kA,
            [](const server::CachingResolver::Outcome&) {});
        break;
      }
      case 2: {  // mapping change
        const auto zone = static_cast<std::size_t>(rng.uniform_int(0, 3));
        tb.repoint_web_host_async(zone, dns::Ipv4{next_ip++});
        break;
      }
      case 3: {  // partition a cache from the master
        const auto c = static_cast<std::size_t>(rng.uniform_int(0, 1));
        if (!partitioned[c]) {
          tb.network().partition(tb.master_endpoint(), cache_eps[c]);
          tb.network().partition(cache_eps[c], tb.master_endpoint());
          partitioned[c] = true;
        }
        break;
      }
      case 4: {  // heal
        const auto c = static_cast<std::size_t>(rng.uniform_int(0, 1));
        if (partitioned[c]) {
          tb.network().heal(tb.master_endpoint(), cache_eps[c]);
          tb.network().heal(cache_eps[c], tb.master_endpoint());
          partitioned[c] = false;
        }
        break;
      }
      default:  // let time pass
        tb.loop().run_for(net::seconds(rng.uniform_int(1, 45)));
        break;
    }
  }

  // Heal everything and let the dust settle well past TTL and retries.
  for (std::size_t c = 0; c < 2; ++c) {
    tb.network().heal(tb.master_endpoint(), cache_eps[c]);
    tb.network().heal(cache_eps[c], tb.master_endpoint());
  }
  tb.loop().run_for(net::minutes(6));  // > max_lease + retries

  // Eventual consistency: every fresh resolution matches the master.
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t z = 0; z < 4; ++z) {
      const auto r =
          tb.resolve(c, tb.web_host(z), RRType::kA, net::minutes(2));
      ASSERT_TRUE(r.has_value()) << "cache " << c << " zone " << z;
      ASSERT_EQ(r->status, server::CachingResolver::Outcome::Status::kOk)
          << "cache " << c << " zone " << z;
      const dns::Zone* zone = tb.master().find_zone(tb.web_host(z));
      const dns::RRset* truth = zone->find(tb.web_host(z), RRType::kA);
      ASSERT_NE(truth, nullptr);
      EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
                std::get<dns::ARdata>(truth->rdatas[0]).address)
          << "cache " << c << " zone " << z << " seed " << GetParam();
    }
  }
  // No notifier state leaked past the settle window.
  EXPECT_EQ(tb.dnscup()->notifier().in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class ChaosLossTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosLossTest, ConvergesDespiteBackgroundLoss) {
  TestbedConfig config;
  config.zones = 3;
  config.caches = 1;
  config.record_ttl = 60;
  config.max_lease = net::minutes(3);
  config.link.loss_probability = 0.1;
  config.seed = GetParam() + 100;
  Testbed tb(config);
  util::Rng rng(GetParam() * 31 + 5);

  uint32_t next_ip = net::make_ip(198, 19, 10, 1);
  for (int op = 0; op < 120; ++op) {
    if (rng.chance(0.4)) {
      tb.cache(0).resolve(
          tb.web_host(static_cast<std::size_t>(rng.uniform_int(0, 2))),
          RRType::kA, [](const server::CachingResolver::Outcome&) {});
    }
    if (rng.chance(0.2)) {
      tb.repoint_web_host_async(
          static_cast<std::size_t>(rng.uniform_int(0, 2)),
          dns::Ipv4{next_ip++});
    }
    tb.loop().run_for(net::seconds(rng.uniform_int(1, 20)));
  }

  tb.loop().run_for(net::minutes(5));
  for (std::size_t z = 0; z < 3; ++z) {
    const auto r = tb.resolve(0, tb.web_host(z), RRType::kA,
                              net::minutes(2));
    ASSERT_TRUE(r.has_value());
    ASSERT_EQ(r->status, server::CachingResolver::Outcome::Status::kOk);
    const dns::RRset* truth =
        tb.master().find_zone(tb.web_host(z))->find(tb.web_host(z),
                                                    RRType::kA);
    EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
              std::get<dns::ARdata>(truth->rdatas[0]).address)
        << "zone " << z << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosLossTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dnscup

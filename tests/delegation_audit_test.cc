#include <gtest/gtest.h>

#include "core/delegation_audit.h"
#include "net/sim_network.h"
#include "server/update.h"

namespace dnscup::core {
namespace {

using dns::Name;
using dns::RRType;
using dns::Zone;

Name mk(const char* text) { return Name::parse(text).value(); }
dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

Zone make_parent() {
  dns::SOARdata soa;
  soa.mname = mk("ns.com");
  soa.rname = mk("admin.com");
  soa.serial = 1;
  Zone z = Zone::make(mk("com"), soa, 3600, {mk("ns.com")}, 3600);
  z.add_record(mk("example.com"), RRType::kNS, 3600,
               dns::NSRdata{mk("ns1.example.com")});
  z.add_record(mk("ns1.example.com"), RRType::kA, 3600,
               dns::ARdata{ip("10.0.1.1")});  // glue
  return z;
}

Zone make_child() {
  dns::SOARdata soa;
  soa.mname = mk("ns1.example.com");
  soa.rname = mk("admin.example.com");
  soa.serial = 1;
  Zone z = Zone::make(mk("example.com"), soa, 3600,
                      {mk("ns1.example.com")}, 3600);
  z.add_record(mk("ns1.example.com"), RRType::kA, 3600,
               dns::ARdata{ip("10.0.1.1")});
  return z;
}

bool has_issue(const std::vector<DelegationFinding>& findings,
               DelegationIssue issue) {
  for (const auto& f : findings) {
    if (f.issue == issue) return true;
  }
  return false;
}

TEST(DelegationAudit, ConsistentDelegationIsClean) {
  EXPECT_TRUE(audit_delegation(make_parent(), make_child()).empty());
}

TEST(DelegationAudit, NoDelegationDetected) {
  Zone parent = make_parent();
  // The apex NS of the parent zone remains; the *delegation* NS goes.
  parent.remove_rrset(mk("example.com"), RRType::kNS);
  const auto findings = audit_delegation(parent, make_child());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].issue, DelegationIssue::kNoDelegation);
}

TEST(DelegationAudit, ChildAddedNameserverMissingAtParent) {
  Zone child = make_child();
  child.add_record(mk("example.com"), RRType::kNS, 3600,
                   dns::NSRdata{mk("ns2.example.com")});
  const auto findings = audit_delegation(make_parent(), child);
  EXPECT_TRUE(has_issue(findings, DelegationIssue::kMissingAtParent));
}

TEST(DelegationAudit, ParentHoldsStaleNameserver) {
  // The classic lame-delegation pattern: the child renames its server but
  // the parent keeps delegating to the dead one.
  Zone child = make_child();
  child.add_record(mk("example.com"), RRType::kNS, 3600,
                   dns::NSRdata{mk("ns9.example.com")});
  child.remove_record(mk("example.com"), RRType::kNS,
                      dns::NSRdata{mk("ns1.example.com")});
  const auto findings = audit_delegation(make_parent(), child);
  EXPECT_TRUE(has_issue(findings, DelegationIssue::kStaleAtParent));
  EXPECT_TRUE(has_issue(findings, DelegationIssue::kMissingAtParent));
}

TEST(DelegationAudit, MissingGlueDetected) {
  Zone parent = make_parent();
  parent.remove_rrset(mk("ns1.example.com"), RRType::kA);
  const auto findings = audit_delegation(parent, make_child());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].issue, DelegationIssue::kMissingGlue);
  EXPECT_EQ(findings[0].subject, mk("ns1.example.com"));
}

TEST(DelegationAudit, GlueMismatchDetected) {
  Zone child = make_child();
  child.remove_rrset(mk("ns1.example.com"), RRType::kA);
  child.add_record(mk("ns1.example.com"), RRType::kA, 3600,
                   dns::ARdata{ip("10.0.9.9")});  // server moved
  const auto findings = audit_delegation(make_parent(), child);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].issue, DelegationIssue::kGlueMismatch);
}

TEST(DelegationAudit, OutOfZoneNsNeedsNoGlue) {
  Zone parent = make_parent();
  Zone child = make_child();
  for (Zone* z : {&parent, &child}) {
    z->add_record(mk("example.com"), RRType::kNS, 3600,
                  dns::NSRdata{mk("ns.hosting.net")});
  }
  EXPECT_TRUE(audit_delegation(parent, child).empty());
}

TEST(DelegationAudit, IssueNamesDistinct) {
  EXPECT_STREQ(to_string(DelegationIssue::kNoDelegation), "no-delegation");
  EXPECT_STREQ(to_string(DelegationIssue::kGlueMismatch), "glue-mismatch");
}

// ---- DelegationGuard: live parent-child sync ------------------------------

class GuardTest : public ::testing::Test {
 protected:
  GuardTest()
      : network_(loop_, 1),
        parent_(network_.bind({net::make_ip(10, 0, 0, 1), 53}), loop_),
        child_(network_.bind({net::make_ip(10, 0, 1, 1), 53}), loop_) {
    parent_.add_zone(make_parent());
    child_.add_zone(make_child());
  }

  net::EventLoop loop_;
  net::SimNetwork network_;
  server::AuthServer parent_;
  server::AuthServer child_;
};

TEST_F(GuardTest, RepairsDelegationWhenChildRenamesServer) {
  DelegationGuard guard(parent_, child_, mk("example.com"));

  // The child migrates: new nameserver name + address via dynamic update.
  const dns::Message update =
      server::UpdateBuilder(mk("example.com"))
          .add(mk("example.com"), 3600, dns::NSRdata{mk("ns2.example.com")})
          .add(mk("ns2.example.com"), 3600, dns::ARdata{ip("10.0.1.2")})
          .delete_record(mk("example.com"),
                         dns::NSRdata{mk("ns1.example.com")})
          .build(1);
  ASSERT_EQ(child_.apply_update(update), dns::Rcode::kNoError);

  EXPECT_GE(guard.syncs(), 1u);
  // Parent now delegates to the new server with correct glue: no findings.
  const auto findings = audit_delegation(
      *parent_.find_zone(mk("www.example.com")),
      *child_.find_zone(mk("www.example.com")));
  EXPECT_TRUE(findings.empty());
}

TEST_F(GuardTest, InitialSyncRepairsPreexistingLameness) {
  // Child already moved before the guard attaches.
  const dns::Message update =
      server::UpdateBuilder(mk("example.com"))
          .add(mk("example.com"), 3600, dns::NSRdata{mk("ns3.example.com")})
          .add(mk("ns3.example.com"), 3600, dns::ARdata{ip("10.0.1.3")})
          .delete_record(mk("example.com"),
                         dns::NSRdata{mk("ns1.example.com")})
          .build(2);
  ASSERT_EQ(child_.apply_update(update), dns::Rcode::kNoError);
  ASSERT_FALSE(audit_delegation(*parent_.find_zone(mk("a.example.com")),
                                *child_.find_zone(mk("a.example.com")))
                   .empty());

  DelegationGuard guard(parent_, child_, mk("example.com"));
  EXPECT_GE(guard.syncs(), 1u);
  EXPECT_TRUE(audit_delegation(*parent_.find_zone(mk("a.example.com")),
                               *child_.find_zone(mk("a.example.com")))
                  .empty());
}

TEST_F(GuardTest, NoChangeNoSync) {
  DelegationGuard guard(parent_, child_, mk("example.com"));
  const uint64_t initial = guard.syncs();
  // A change unrelated to the apex NS / glue.
  const dns::Message update =
      server::UpdateBuilder(mk("example.com"))
          .add(mk("www.example.com"), 300, dns::ARdata{ip("192.0.2.80")})
          .build(3);
  ASSERT_EQ(child_.apply_update(update), dns::Rcode::kNoError);
  EXPECT_EQ(guard.syncs(), initial);
}

}  // namespace
}  // namespace dnscup::core

#include <gtest/gtest.h>

#include <vector>

#include "net/sim_network.h"

namespace dnscup::net {
namespace {

const Endpoint kA{make_ip(10, 0, 0, 1), 53};
const Endpoint kB{make_ip(10, 0, 0, 2), 53};

std::vector<uint8_t> payload(const char* text) {
  return {reinterpret_cast<const uint8_t*>(text),
          reinterpret_cast<const uint8_t*>(text) + strlen(text)};
}

struct Received {
  Endpoint from;
  std::vector<uint8_t> data;
  SimTime at;
};

TEST(SimNetwork, DeliversWithLatency) {
  EventLoop loop;
  SimNetwork net(loop, 1);
  net.set_default_link({milliseconds(5), 0, 0.0, 0.0});
  auto& ta = net.bind(kA);
  auto& tb = net.bind(kB);

  std::vector<Received> received;
  tb.set_receive_handler([&](const Endpoint& from,
                             std::span<const uint8_t> data) {
    received.push_back({from, {data.begin(), data.end()}, loop.now()});
  });
  const auto msg = payload("hello");
  ta.send(kB, msg);
  loop.run_all();

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].from, kA);
  EXPECT_EQ(received[0].data, msg);
  EXPECT_EQ(received[0].at, milliseconds(5));
}

TEST(SimNetwork, EndpointFormatting) {
  EXPECT_EQ(kA.to_string(), "10.0.0.1:53");
}

TEST(SimNetwork, UnboundDestinationDropsSilently) {
  EventLoop loop;
  SimNetwork net(loop, 1);
  auto& ta = net.bind(kA);
  ta.send(kB, payload("void"));
  loop.run_all();
  EXPECT_EQ(net.packets_dropped(), 1u);
  EXPECT_EQ(net.packets_delivered(), 0u);
}

TEST(SimNetwork, FullLossDropsEverything) {
  EventLoop loop;
  SimNetwork net(loop, 1);
  net.set_default_link({milliseconds(1), 0, 1.0, 0.0});
  auto& ta = net.bind(kA);
  auto& tb = net.bind(kB);
  int received = 0;
  tb.set_receive_handler([&](const Endpoint&, std::span<const uint8_t>) {
    ++received;
  });
  for (int i = 0; i < 20; ++i) ta.send(kB, payload("x"));
  loop.run_all();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.packets_dropped(), 20u);
}

TEST(SimNetwork, PartialLossIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    EventLoop loop;
    SimNetwork net(loop, seed);
    net.set_default_link({milliseconds(1), 0, 0.5, 0.0});
    auto& ta = net.bind(kA);
    auto& tb = net.bind(kB);
    int received = 0;
    tb.set_receive_handler([&](const Endpoint&, std::span<const uint8_t>) {
      ++received;
    });
    for (int i = 0; i < 200; ++i) ta.send(kB, payload("x"));
    loop.run_all();
    return received;
  };
  EXPECT_EQ(run(7), run(7));          // reproducible
  const int got = run(7);
  EXPECT_GT(got, 50);                 // roughly half
  EXPECT_LT(got, 150);
}

TEST(SimNetwork, DuplicationDeliversTwice) {
  EventLoop loop;
  SimNetwork net(loop, 3);
  net.set_default_link({milliseconds(1), 0, 0.0, 1.0});
  auto& ta = net.bind(kA);
  auto& tb = net.bind(kB);
  int received = 0;
  tb.set_receive_handler([&](const Endpoint&, std::span<const uint8_t>) {
    ++received;
  });
  ta.send(kB, payload("dup"));
  loop.run_all();
  EXPECT_EQ(received, 2);
}

TEST(SimNetwork, PerPathOverride) {
  EventLoop loop;
  SimNetwork net(loop, 4);
  net.set_default_link({milliseconds(1), 0, 0.0, 0.0});
  net.set_link(kA, kB, {milliseconds(50), 0, 0.0, 0.0});
  auto& ta = net.bind(kA);
  auto& tb = net.bind(kB);
  SimTime a_to_b = -1;
  SimTime b_to_a = -1;
  tb.set_receive_handler([&](const Endpoint&, std::span<const uint8_t>) {
    a_to_b = loop.now();
  });
  ta.set_receive_handler([&](const Endpoint&, std::span<const uint8_t>) {
    b_to_a = loop.now();
  });
  ta.send(kB, payload("slow"));
  tb.send(kA, payload("fast"));
  loop.run_all();
  EXPECT_EQ(a_to_b, milliseconds(50));  // override applies one way
  EXPECT_EQ(b_to_a, milliseconds(1));   // default the other way
}

TEST(SimNetwork, PartitionAndHeal) {
  EventLoop loop;
  SimNetwork net(loop, 5);
  auto& ta = net.bind(kA);
  auto& tb = net.bind(kB);
  int received = 0;
  tb.set_receive_handler([&](const Endpoint&, std::span<const uint8_t>) {
    ++received;
  });
  net.partition(kA, kB);
  ta.send(kB, payload("lost"));
  loop.run_all();
  EXPECT_EQ(received, 0);
  net.heal(kA, kB);
  ta.send(kB, payload("found"));
  loop.run_all();
  EXPECT_EQ(received, 1);
}

TEST(SimNetwork, JitterBoundsDelay) {
  EventLoop loop;
  SimNetwork net(loop, 6);
  net.set_default_link({milliseconds(10), milliseconds(5), 0.0, 0.0});
  auto& ta = net.bind(kA);
  auto& tb = net.bind(kB);
  std::vector<SimTime> arrivals;
  tb.set_receive_handler([&](const Endpoint&, std::span<const uint8_t>) {
    arrivals.push_back(loop.now());
  });
  for (int i = 0; i < 50; ++i) ta.send(kB, payload("j"));
  loop.run_all();
  ASSERT_EQ(arrivals.size(), 50u);
  for (SimTime t : arrivals) {
    EXPECT_GE(t, milliseconds(10));
    EXPECT_LE(t, milliseconds(15));
  }
}

TEST(SimNetwork, TransportStatsAndMaxPacket) {
  EventLoop loop;
  SimNetwork net(loop, 7);
  auto& ta = net.bind(kA);
  auto& tb = net.bind(kB);
  tb.set_receive_handler([](const Endpoint&, std::span<const uint8_t>) {});
  ta.send(kB, payload("12345"));
  ta.send(kB, payload("123456789"));
  loop.run_all();
  EXPECT_EQ(ta.stats().packets_sent, 2u);
  EXPECT_EQ(ta.stats().bytes_sent, 14u);
  EXPECT_EQ(ta.stats().max_packet_bytes, 9u);
  EXPECT_EQ(tb.stats().packets_received, 2u);
  EXPECT_EQ(tb.stats().bytes_received, 14u);
  EXPECT_EQ(net.max_packet_bytes(), 9u);
  EXPECT_EQ(net.packets_delivered(), 2u);
}

TEST(SimNetwork, SelfSendWorks) {
  EventLoop loop;
  SimNetwork net(loop, 8);
  auto& ta = net.bind(kA);
  int received = 0;
  ta.set_receive_handler([&](const Endpoint& from, std::span<const uint8_t>) {
    EXPECT_EQ(from, kA);
    ++received;
  });
  ta.send(kA, payload("loop"));
  loop.run_all();
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace dnscup::net

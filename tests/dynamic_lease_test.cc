#include <gtest/gtest.h>

#include <cmath>

#include "core/dynamic_lease.h"
#include "core/lease_math.h"
#include "util/rng.h"

namespace dnscup::core {
namespace {

std::vector<DemandEntry> simple_demands() {
  // Three caches with very different rates on one record, L = 100 s.
  return {
      {0, 0, 1.0, 100.0},
      {0, 1, 0.1, 100.0},
      {0, 2, 0.01, 100.0},
  };
}

std::vector<DemandEntry> random_demands(util::Rng& rng, std::size_t n) {
  std::vector<DemandEntry> demands;
  for (std::size_t i = 0; i < n; ++i) {
    DemandEntry d;
    d.record = i / 3;
    d.cache = i % 3;
    d.rate = std::exp(rng.uniform_real(std::log(0.001), std::log(10.0)));
    d.max_lease = std::exp(rng.uniform_real(std::log(10.0), std::log(1e5)));
    demands.push_back(d);
  }
  return demands;
}

// ---- evaluate_plan -----------------------------------------------------------

TEST(EvaluatePlan, PollingIsHundredPercentQueryRateZeroStorage) {
  const auto demands = simple_demands();
  const LeasePlan plan = plan_polling(demands);
  EXPECT_DOUBLE_EQ(plan.total_storage, 0.0);
  EXPECT_DOUBLE_EQ(plan.query_rate_percentage, 100.0);
  EXPECT_DOUBLE_EQ(plan.storage_percentage, 0.0);
  EXPECT_NEAR(plan.total_message_rate, 1.11, 1e-9);
}

TEST(EvaluatePlan, MatchesClosedForm) {
  const auto demands = simple_demands();
  LeasePlan plan;
  plan.lengths = {50.0, 0.0, 200.0};
  evaluate_plan(demands, plan);
  const double expected_storage = lease_probability(50, 1.0) +
                                  lease_probability(0, 0.1) +
                                  lease_probability(200, 0.01);
  const double expected_rate =
      renewal_rate(50, 1.0) + 0.1 + renewal_rate(200, 0.01);
  EXPECT_NEAR(plan.total_storage, expected_storage, 1e-12);
  EXPECT_NEAR(plan.total_message_rate, expected_rate, 1e-12);
}

TEST(EvaluatePlan, EmptyDemands) {
  LeasePlan plan;
  evaluate_plan({}, plan);
  EXPECT_DOUBLE_EQ(plan.storage_percentage, 0.0);
  EXPECT_DOUBLE_EQ(plan.query_rate_percentage, 0.0);
}

// ---- storage-constrained ------------------------------------------------------

TEST(StorageConstrained, RespectsBudget) {
  const auto demands = simple_demands();
  for (double budget : {0.0, 0.3, 1.0, 2.5, 10.0}) {
    const LeasePlan plan = plan_storage_constrained(demands, budget);
    EXPECT_LE(plan.total_storage, budget + 1e-9) << budget;
  }
}

TEST(StorageConstrained, GrantsHighestRateFirst) {
  const auto demands = simple_demands();
  // Budget for about one full lease: the 1.0 q/s cache must win.
  const LeasePlan plan = plan_storage_constrained(demands, 1.0);
  EXPECT_DOUBLE_EQ(plan.lengths[0], 100.0);
  EXPECT_GT(plan.lengths[0], plan.lengths[2]);
}

TEST(StorageConstrained, ExactFillTruncatesLastLease) {
  const auto demands = simple_demands();
  const LeasePlan plan = plan_storage_constrained(demands, 1.5);
  // Budget is binding (full grant would exceed 1.5), so usage lands
  // exactly on the budget via a truncated final lease.
  EXPECT_NEAR(plan.total_storage, 1.5, 1e-9);
}

TEST(StorageConstrained, ZeroBudgetIsPolling) {
  const auto demands = simple_demands();
  const LeasePlan plan = plan_storage_constrained(demands, 0.0);
  for (double l : plan.lengths) EXPECT_DOUBLE_EQ(l, 0.0);
  EXPECT_DOUBLE_EQ(plan.query_rate_percentage, 100.0);
}

TEST(StorageConstrained, HugeBudgetGrantsEverything) {
  const auto demands = simple_demands();
  const LeasePlan plan = plan_storage_constrained(demands, 100.0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_DOUBLE_EQ(plan.lengths[i], demands[i].max_lease);
  }
}

TEST(StorageConstrained, MonotoneInBudget) {
  util::Rng rng(5);
  const auto demands = random_demands(rng, 30);
  double prev_messages = 1e18;
  for (double budget = 0.0; budget <= 30.0; budget += 1.5) {
    const LeasePlan plan = plan_storage_constrained(demands, budget);
    EXPECT_LE(plan.total_message_rate, prev_messages + 1e-9);
    prev_messages = plan.total_message_rate;
  }
}

class StorageGreedyVsBruteForce : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(StorageGreedyVsBruteForce, GreedyNearOptimal) {
  util::Rng rng(GetParam());
  const auto demands = random_demands(rng, 10);
  for (double budget_frac : {0.2, 0.5, 0.8}) {
    double max_storage = 0.0;
    for (const auto& d : demands) {
      max_storage += lease_probability(d.max_lease, d.rate);
    }
    const double budget = budget_frac * max_storage;
    const LeasePlan greedy = plan_storage_constrained(demands, budget);
    const LeasePlan brute = brute_force_storage_constrained(demands, budget);
    EXPECT_LE(greedy.total_storage, budget + 1e-9);
    // The greedy may only beat the all-or-nothing brute force (it can
    // truncate the marginal lease); it must never be more than a hair
    // worse on messages.
    EXPECT_LE(greedy.total_message_rate,
              brute.total_message_rate * 1.02 + 1e-9)
        << "seed " << GetParam() << " budget " << budget;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageGreedyVsBruteForce,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- communication-constrained ---------------------------------------------------

TEST(CommConstrained, AllLeasedWhenBudgetTight) {
  const auto demands = simple_demands();
  // The minimum possible traffic is the all-leased renewal rate.
  LeasePlan all;
  all.lengths = {100.0, 100.0, 100.0};
  evaluate_plan(demands, all);
  const LeasePlan plan =
      plan_comm_constrained(demands, all.total_message_rate * 1.001);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(plan.lengths[i], 100.0);
  }
}

TEST(CommConstrained, DeprivesSmallestRatesFirst) {
  const auto demands = simple_demands();
  // Generous budget: everything can be deprived except the hottest.
  LeasePlan polling = plan_polling(demands);
  const double budget = polling.total_message_rate * 0.5;
  const LeasePlan plan = plan_comm_constrained(demands, budget);
  // The 0.01 q/s lease goes first, then 0.1 if budget still allows.
  EXPECT_DOUBLE_EQ(plan.lengths[2], 0.0);
  EXPECT_LE(plan.total_message_rate, budget + 1e-9);
}

TEST(CommConstrained, HugeBudgetMinimizesStorageToZero) {
  const auto demands = simple_demands();
  const LeasePlan plan = plan_comm_constrained(demands, 1e9);
  EXPECT_DOUBLE_EQ(plan.total_storage, 0.0);
}

TEST(CommConstrained, StorageMonotoneInBudget) {
  util::Rng rng(6);
  const auto demands = random_demands(rng, 30);
  double prev_storage = 1e18;
  const LeasePlan polling = plan_polling(demands);
  for (double frac = 0.1; frac <= 1.0; frac += 0.1) {
    const LeasePlan plan =
        plan_comm_constrained(demands, polling.total_message_rate * frac);
    EXPECT_LE(plan.total_storage, prev_storage + 1e-9);
    prev_storage = plan.total_storage;
  }
}

class CommGreedyVsBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CommGreedyVsBruteForce, GreedyNearOptimal) {
  util::Rng rng(GetParam() + 100);
  const auto demands = random_demands(rng, 10);
  const LeasePlan polling = plan_polling(demands);
  for (double frac : {0.3, 0.6, 0.9}) {
    const double budget = polling.total_message_rate * frac;
    const LeasePlan greedy = plan_comm_constrained(demands, budget);
    const LeasePlan brute = brute_force_comm_constrained(demands, budget);
    if (brute.total_message_rate <= budget + 1e-9) {
      EXPECT_LE(greedy.total_message_rate, budget + 1e-9);
      EXPECT_LE(greedy.total_storage, brute.total_storage * 1.02 + 1e-9)
          << "seed " << GetParam() << " budget " << budget;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommGreedyVsBruteForce,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- dominance: the paper's Figure-5 claim --------------------------------------

TEST(Dominance, DynamicBeatsFixedAtEqualStorage) {
  // With heterogeneous rates, the dynamic plan achieves a lower message
  // rate than any fixed-length plan using the same (or more) storage.
  util::Rng rng(9);
  const auto demands = random_demands(rng, 60);
  for (double t : {10.0, 100.0, 1000.0}) {
    const LeasePlan fixed = plan_fixed(demands, t);
    const LeasePlan dynamic =
        plan_storage_constrained(demands, fixed.total_storage);
    EXPECT_LE(dynamic.total_storage, fixed.total_storage + 1e-9);
    EXPECT_LE(dynamic.total_message_rate,
              fixed.total_message_rate + 1e-9)
        << "fixed t=" << t;
  }
}

TEST(Dominance, StrictWhenRatesHeterogeneous) {
  const std::vector<DemandEntry> demands = {
      {0, 0, 10.0, 1000.0},
      {1, 1, 0.001, 1000.0},
  };
  const LeasePlan fixed = plan_fixed(demands, 50.0);
  const LeasePlan dynamic =
      plan_storage_constrained(demands, fixed.total_storage);
  EXPECT_LT(dynamic.total_message_rate, fixed.total_message_rate * 0.9);
}

TEST(PlanFixed, UniformLengths) {
  const auto demands = simple_demands();
  const LeasePlan plan = plan_fixed(demands, 42.0);
  for (double l : plan.lengths) EXPECT_DOUBLE_EQ(l, 42.0);
}

}  // namespace
}  // namespace dnscup::core

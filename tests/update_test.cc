#include <gtest/gtest.h>

#include "dns/zone.h"
#include "net/sim_network.h"
#include "server/authoritative.h"
#include "server/update.h"

namespace dnscup::server {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }
dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

dns::Zone test_zone() {
  dns::SOARdata soa;
  soa.mname = mk("ns1.example.com");
  soa.rname = mk("admin.example.com");
  soa.serial = 10;
  soa.minimum = 60;
  dns::Zone z = dns::Zone::make(mk("example.com"), soa, 3600,
                                {mk("ns1.example.com")}, 3600);
  z.add_record(mk("www.example.com"), RRType::kA, 300,
               dns::ARdata{ip("192.0.2.80")});
  z.add_record(mk("txt.example.com"), RRType::kTXT, 300,
               dns::TXTRdata{{"v1"}});
  return z;
}

// ---- prerequisite matrix (RFC 2136 §3.2) -------------------------------------

struct PrereqCase {
  const char* description;
  // Builder configures the prerequisite under test.
  void (*configure)(UpdateBuilder&);
  Rcode expected;
};

void name_in_use_yes(UpdateBuilder& b) {
  b.require_name_in_use(mk("www.example.com"));
}
void name_in_use_no(UpdateBuilder& b) {
  b.require_name_in_use(mk("missing.example.com"));
}
void name_not_in_use_yes(UpdateBuilder& b) {
  b.require_name_not_in_use(mk("missing.example.com"));
}
void name_not_in_use_no(UpdateBuilder& b) {
  b.require_name_not_in_use(mk("www.example.com"));
}
void rrset_exists_yes(UpdateBuilder& b) {
  b.require_rrset_exists(mk("www.example.com"), RRType::kA);
}
void rrset_exists_no(UpdateBuilder& b) {
  b.require_rrset_exists(mk("www.example.com"), RRType::kMX);
}
void rrset_absent_yes(UpdateBuilder& b) {
  b.require_rrset_absent(mk("www.example.com"), RRType::kMX);
}
void rrset_absent_no(UpdateBuilder& b) {
  b.require_rrset_absent(mk("www.example.com"), RRType::kA);
}
void value_match_yes(UpdateBuilder& b) {
  b.require_rrset_exists_value(mk("www.example.com"),
                               dns::ARdata{ip("192.0.2.80")});
}
void value_match_no(UpdateBuilder& b) {
  b.require_rrset_exists_value(mk("www.example.com"),
                               dns::ARdata{ip("1.2.3.4")});
}
void value_match_partial(UpdateBuilder& b) {
  // Zone has exactly one A; requiring two means the whole-set compare fails.
  b.require_rrset_exists_value(mk("www.example.com"),
                               dns::ARdata{ip("192.0.2.80")});
  b.require_rrset_exists_value(mk("www.example.com"),
                               dns::ARdata{ip("192.0.2.81")});
}

class PrereqMatrix : public ::testing::TestWithParam<PrereqCase> {};

TEST_P(PrereqMatrix, Evaluates) {
  const dns::Zone zone = test_zone();
  UpdateBuilder builder(mk("example.com"));
  GetParam().configure(builder);
  const Message m = builder.build(1);
  EXPECT_EQ(check_prerequisites(zone, m.answers), GetParam().expected)
      << GetParam().description;
}

INSTANTIATE_TEST_SUITE_P(
    Rfc2136, PrereqMatrix,
    ::testing::Values(
        PrereqCase{"name in use ok", name_in_use_yes, Rcode::kNoError},
        PrereqCase{"name in use fails", name_in_use_no, Rcode::kNXDomain},
        PrereqCase{"name not in use ok", name_not_in_use_yes,
                   Rcode::kNoError},
        PrereqCase{"name not in use fails", name_not_in_use_no,
                   Rcode::kYXDomain},
        PrereqCase{"rrset exists ok", rrset_exists_yes, Rcode::kNoError},
        PrereqCase{"rrset exists fails", rrset_exists_no, Rcode::kNXRRSet},
        PrereqCase{"rrset absent ok", rrset_absent_yes, Rcode::kNoError},
        PrereqCase{"rrset absent fails", rrset_absent_no, Rcode::kYXRRSet},
        PrereqCase{"value match ok", value_match_yes, Rcode::kNoError},
        PrereqCase{"value mismatch", value_match_no, Rcode::kNXRRSet},
        PrereqCase{"value partial mismatch", value_match_partial,
                   Rcode::kNXRRSet}));

TEST(Prereq, OutOfZoneIsNotZone) {
  const dns::Zone zone = test_zone();
  UpdateBuilder b(mk("example.com"));
  b.require_name_in_use(mk("www.other.org"));
  EXPECT_EQ(check_prerequisites(zone, b.build(1).answers), Rcode::kNotZone);
}

// ---- update application ----------------------------------------------------------

TEST(ApplyUpdate, AddRecord) {
  dns::Zone zone = test_zone();
  bool changed = false;
  const Message m = UpdateBuilder(mk("example.com"))
                        .add(mk("new.example.com"), 120,
                             dns::ARdata{ip("203.0.113.9")})
                        .build(1);
  EXPECT_EQ(apply_update_section(zone, m.authority, changed),
            Rcode::kNoError);
  EXPECT_TRUE(changed);
  EXPECT_NE(zone.find(mk("new.example.com"), RRType::kA), nullptr);
}

TEST(ApplyUpdate, AddDuplicateIsNoChange) {
  dns::Zone zone = test_zone();
  bool changed = true;
  const Message m = UpdateBuilder(mk("example.com"))
                        .add(mk("www.example.com"), 300,
                             dns::ARdata{ip("192.0.2.80")})
                        .build(1);
  EXPECT_EQ(apply_update_section(zone, m.authority, changed),
            Rcode::kNoError);
  EXPECT_FALSE(changed);
}

TEST(ApplyUpdate, DeleteRRset) {
  dns::Zone zone = test_zone();
  bool changed = false;
  const Message m = UpdateBuilder(mk("example.com"))
                        .delete_rrset(mk("www.example.com"), RRType::kA)
                        .build(1);
  EXPECT_EQ(apply_update_section(zone, m.authority, changed),
            Rcode::kNoError);
  EXPECT_TRUE(changed);
  EXPECT_EQ(zone.find(mk("www.example.com"), RRType::kA), nullptr);
}

TEST(ApplyUpdate, DeleteSpecificRecord) {
  dns::Zone zone = test_zone();
  zone.add_record(mk("www.example.com"), RRType::kA, 300,
                  dns::ARdata{ip("192.0.2.81")});
  bool changed = false;
  const Message m = UpdateBuilder(mk("example.com"))
                        .delete_record(mk("www.example.com"),
                                       dns::ARdata{ip("192.0.2.80")})
                        .build(1);
  EXPECT_EQ(apply_update_section(zone, m.authority, changed),
            Rcode::kNoError);
  EXPECT_TRUE(changed);
  const dns::RRset* a = zone.find(mk("www.example.com"), RRType::kA);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->size(), 1u);
}

TEST(ApplyUpdate, DeleteName) {
  dns::Zone zone = test_zone();
  bool changed = false;
  const Message m = UpdateBuilder(mk("example.com"))
                        .delete_name(mk("txt.example.com"))
                        .build(1);
  EXPECT_EQ(apply_update_section(zone, m.authority, changed),
            Rcode::kNoError);
  EXPECT_FALSE(zone.name_exists(mk("txt.example.com")));
}

TEST(ApplyUpdate, ReplaceA) {
  dns::Zone zone = test_zone();
  bool changed = false;
  const Message m = UpdateBuilder(mk("example.com"))
                        .replace_a(mk("www.example.com"), 300,
                                   ip("198.51.100.5"))
                        .build(1);
  EXPECT_EQ(apply_update_section(zone, m.authority, changed),
            Rcode::kNoError);
  const dns::RRset* a = zone.find(mk("www.example.com"), RRType::kA);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(a->rdatas[0]).address, ip("198.51.100.5"));
}

TEST(ApplyUpdate, SoaProtectedFromDeletion) {
  dns::Zone zone = test_zone();
  bool changed = false;
  const Message m = UpdateBuilder(mk("example.com"))
                        .delete_rrset(mk("example.com"), RRType::kSOA)
                        .build(1);
  EXPECT_EQ(apply_update_section(zone, m.authority, changed),
            Rcode::kNoError);
  EXPECT_FALSE(changed);
  EXPECT_TRUE(zone.validate().ok());
}

TEST(ApplyUpdate, PrescanRejectsAtomically) {
  dns::Zone zone = test_zone();
  // One good add followed by a malformed record (class IN, type ANY).
  std::vector<dns::ResourceRecord> updates;
  updates.push_back(dns::ResourceRecord{
      mk("good.example.com"), dns::RRClass::kIN, 60,
      dns::ARdata{ip("203.0.113.1")}});
  updates.push_back(dns::ResourceRecord{
      mk("bad.example.com"), dns::RRClass::kIN, 60,
      dns::GenericRdata{static_cast<uint16_t>(RRType::kANY), {}}});
  bool changed = false;
  EXPECT_EQ(apply_update_section(zone, updates, changed), Rcode::kFormErr);
  EXPECT_FALSE(changed);
  // Nothing was applied.
  EXPECT_EQ(zone.find(mk("good.example.com"), RRType::kA), nullptr);
}

TEST(ApplyUpdate, OutOfZoneRejected) {
  dns::Zone zone = test_zone();
  bool changed = false;
  const Message m = UpdateBuilder(mk("example.com"))
                        .add(mk("www.other.org"), 60,
                             dns::ARdata{ip("1.1.1.1")})
                        .build(1);
  EXPECT_EQ(apply_update_section(zone, m.authority, changed),
            Rcode::kNotZone);
}

// ---- full server path --------------------------------------------------------------

class UpdateServerTest : public ::testing::Test {
 protected:
  UpdateServerTest()
      : network_(loop_, 1),
        server_(network_.bind({net::make_ip(10, 0, 0, 1), 53}), loop_) {
    server_.add_zone(test_zone());
  }

  net::EventLoop loop_;
  net::SimNetwork network_;
  AuthServer server_;
  net::Endpoint admin_{net::make_ip(10, 0, 0, 9), 5353};
};

TEST_F(UpdateServerTest, WireUpdateAppliesAndBumpsSerial) {
  const Message m = UpdateBuilder(mk("example.com"))
                        .require_rrset_exists(mk("www.example.com"),
                                              RRType::kA)
                        .replace_a(mk("www.example.com"), 300,
                                   ip("198.51.100.7"))
                        .build(7);
  const auto resp = server_.handle(admin_, m);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->flags.rcode, Rcode::kNoError);
  EXPECT_EQ(resp->flags.opcode, dns::Opcode::kUpdate);
  EXPECT_EQ(server_.find_zone(mk("example.com"))->serial(), 11u);
  EXPECT_EQ(server_.stats().updates, 1u);
}

TEST_F(UpdateServerTest, FailedPrereqAppliesNothing) {
  const Message m = UpdateBuilder(mk("example.com"))
                        .require_name_in_use(mk("missing.example.com"))
                        .replace_a(mk("www.example.com"), 300,
                                   ip("198.51.100.7"))
                        .build(8);
  const auto resp = server_.handle(admin_, m);
  EXPECT_EQ(resp->flags.rcode, Rcode::kNXDomain);
  const dns::RRset* a =
      server_.find_zone(mk("example.com"))->find(mk("www.example.com"),
                                                 RRType::kA);
  EXPECT_EQ(std::get<dns::ARdata>(a->rdatas[0]).address, ip("192.0.2.80"));
  EXPECT_EQ(server_.find_zone(mk("example.com"))->serial(), 10u);
}

TEST_F(UpdateServerTest, UnknownZoneNotAuth) {
  const Message m = UpdateBuilder(mk("other.org"))
                        .add(mk("www.other.org"), 60,
                             dns::ARdata{ip("1.1.1.1")})
                        .build(9);
  EXPECT_EQ(server_.handle(admin_, m)->flags.rcode, Rcode::kNotAuth);
}

TEST_F(UpdateServerTest, SlaveRefusesUpdates) {
  AuthServer slave(network_.bind({net::make_ip(10, 0, 0, 2), 53}), loop_,
                   AuthServer::Role::kSlave);
  slave.add_zone(test_zone());
  const Message m = UpdateBuilder(mk("example.com"))
                        .replace_a(mk("www.example.com"), 300,
                                   ip("9.9.9.9"))
                        .build(10);
  EXPECT_EQ(slave.handle(admin_, m)->flags.rcode, Rcode::kNotAuth);
}

TEST_F(UpdateServerTest, NoOpUpdateDoesNotBumpSerialOrNotify) {
  int events = 0;
  server_.add_change_listener(
      [&](const dns::Zone&, const std::vector<dns::RRsetChange>&) {
        ++events;
      });
  const Message m = UpdateBuilder(mk("example.com"))
                        .add(mk("www.example.com"), 300,
                             dns::ARdata{ip("192.0.2.80")})
                        .build(11);
  EXPECT_EQ(server_.handle(admin_, m)->flags.rcode, Rcode::kNoError);
  EXPECT_EQ(server_.find_zone(mk("example.com"))->serial(), 10u);
  EXPECT_EQ(events, 0);
}

TEST_F(UpdateServerTest, ChangeHookGetsDiff) {
  std::vector<dns::RRsetChange> seen;
  server_.add_change_listener(
      [&](const dns::Zone&, const std::vector<dns::RRsetChange>& changes) {
        seen = changes;
      });
  const Message m = UpdateBuilder(mk("example.com"))
                        .replace_a(mk("www.example.com"), 300,
                                   ip("198.51.100.7"))
                        .build(12);
  server_.handle(admin_, m);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].name, mk("www.example.com"));
  ASSERT_TRUE(seen[0].after.has_value());
  EXPECT_EQ(std::get<dns::ARdata>(seen[0].after->rdatas[0]).address,
            ip("198.51.100.7"));
}

TEST_F(UpdateServerTest, UpdateRoundTripsOverWire) {
  auto& admin_transport = network_.bind(admin_);
  std::optional<Message> got;
  admin_transport.set_receive_handler(
      [&](const net::Endpoint&, std::span<const uint8_t> data) {
        got = Message::decode(data).value();
      });
  const Message m = UpdateBuilder(mk("example.com"))
                        .replace_a(mk("www.example.com"), 300,
                                   ip("198.51.100.8"))
                        .build(13);
  admin_transport.send({net::make_ip(10, 0, 0, 1), 53}, m.encode());
  loop_.run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->flags.rcode, Rcode::kNoError);
  EXPECT_EQ(got->id, 13);
}

}  // namespace
}  // namespace dnscup::server

#include <gtest/gtest.h>

#include "dns/zone_text.h"

namespace dnscup::dns {
namespace {

Name mk(const char* text) { return Name::parse(text).value(); }

constexpr const char* kZoneText = R"($ORIGIN example.com.
$TTL 3600
; the apex
@      IN SOA ns1.example.com. admin.example.com. 7 7200 900 604800 300
@      IN NS  ns1.example.com.
ns1    IN A   192.0.2.1
www 60 IN A   192.0.2.80
www 60 IN A   192.0.2.81
alias  IN CNAME www.example.com.
mail   IN MX  10 mx1.example.com.
txt    IN TXT "hello world"
)";

TEST(ZoneText, ParsesExample) {
  const auto z = parse_zone_text(kZoneText, mk("example.com"));
  ASSERT_TRUE(z.ok()) << z.error().to_string();
  const Zone& zone = z.value();
  EXPECT_EQ(zone.origin(), mk("example.com"));
  EXPECT_EQ(zone.serial(), 7u);
  const RRset* www = zone.find(mk("www.example.com"), RRType::kA);
  ASSERT_NE(www, nullptr);
  EXPECT_EQ(www->size(), 2u);
  EXPECT_EQ(www->ttl, 60u);
  const RRset* ns1 = zone.find(mk("ns1.example.com"), RRType::kA);
  ASSERT_NE(ns1, nullptr);
  EXPECT_EQ(ns1->ttl, 3600u);  // $TTL default
}

TEST(ZoneText, RelativeNamesQualified) {
  const Zone zone = parse_zone_text(kZoneText, mk("example.com")).value();
  EXPECT_NE(zone.find(mk("alias.example.com"), RRType::kCNAME), nullptr);
  EXPECT_NE(zone.find(mk("mail.example.com"), RRType::kMX), nullptr);
}

TEST(ZoneText, AtSignIsOrigin) {
  const Zone zone = parse_zone_text(kZoneText, mk("example.com")).value();
  EXPECT_NE(zone.find(mk("example.com"), RRType::kSOA), nullptr);
  EXPECT_NE(zone.find(mk("example.com"), RRType::kNS), nullptr);
}

TEST(ZoneText, DefaultOriginUsedWithoutDirective) {
  const char* text =
      "@ IN SOA ns. admin. 1 1 1 1 1\n"
      "@ IN NS ns.other.org.\n"
      "www IN A 10.0.0.1\n";
  const auto z = parse_zone_text(text, mk("other.org"));
  ASSERT_TRUE(z.ok());
  EXPECT_EQ(z.value().origin(), mk("other.org"));
  EXPECT_NE(z.value().find(mk("www.other.org"), RRType::kA), nullptr);
}

TEST(ZoneText, CommentsAndBlankLinesIgnored) {
  const char* text =
      "; leading comment\n"
      "\n"
      "@ IN SOA ns. admin. 1 1 1 1 1  ; trailing comment\n"
      "www IN A 10.0.0.1\n";
  EXPECT_TRUE(parse_zone_text(text, mk("x.org")).ok());
}

TEST(ZoneText, ErrorsNameTheLine) {
  const char* text =
      "@ IN SOA ns. admin. 1 1 1 1 1\n"
      "www IN A not-an-ip\n";
  const auto z = parse_zone_text(text, mk("x.org"));
  ASSERT_FALSE(z.ok());
  EXPECT_NE(z.error().message.find("line 2"), std::string::npos);
}

TEST(ZoneText, RejectsMissingType) {
  EXPECT_FALSE(parse_zone_text("www 300 IN\n", mk("x.org")).ok());
}

TEST(ZoneText, RejectsRecordOutsideZone) {
  const char* text =
      "$ORIGIN a.org.\n"
      "@ IN SOA ns. admin. 1 1 1 1 1\n"
      "www.b.org. IN A 10.0.0.1\n";
  const auto z = parse_zone_text(text, mk("a.org"));
  ASSERT_FALSE(z.ok());
  EXPECT_NE(z.error().message.find("outside zone"), std::string::npos);
}

TEST(ZoneText, RejectsZoneWithoutSoa) {
  EXPECT_FALSE(parse_zone_text("www IN A 10.0.0.1\n", mk("x.org")).ok());
}

TEST(ZoneText, RejectsEmptyInput) {
  EXPECT_FALSE(parse_zone_text("", mk("x.org")).ok());
  EXPECT_FALSE(parse_zone_text("; only a comment\n", mk("x.org")).ok());
}

TEST(ZoneText, BadDirectives) {
  EXPECT_FALSE(parse_zone_text("$ORIGIN\n", mk("x.org")).ok());
  EXPECT_FALSE(parse_zone_text("$TTL abc\n", mk("x.org")).ok());
}

TEST(ZoneText, SerializeRoundTrip) {
  const Zone zone = parse_zone_text(kZoneText, mk("example.com")).value();
  const std::string text = serialize_zone_text(zone);
  const auto reparsed = parse_zone_text(text, zone.origin());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  EXPECT_TRUE(diff_zones(zone, reparsed.value()).empty());
  EXPECT_EQ(reparsed.value().serial(), zone.serial());
  EXPECT_EQ(reparsed.value().rrset_count(), zone.rrset_count());
}

TEST(ZoneText, FileRoundTrip) {
  const Zone zone = parse_zone_text(kZoneText, mk("example.com")).value();
  const std::string path = ::testing::TempDir() + "dnscup_zone_test.zone";
  ASSERT_TRUE(save_zone_file(zone, path).ok());
  const auto loaded = load_zone_file(path, zone.origin());
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_TRUE(diff_zones(zone, loaded.value()).empty());
  EXPECT_EQ(loaded.value().serial(), zone.serial());
  std::remove(path.c_str());
}

TEST(ZoneText, LoadMissingFileIsIoError) {
  const auto r = load_zone_file("/nonexistent/zone.db", mk("x.org"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, util::ErrorCode::kIo);
}

TEST(ZoneText, LoadMalformedFileNamesThePath) {
  const std::string path = ::testing::TempDir() + "dnscup_bad_test.zone";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("www IN A not-an-ip\n", f);
  std::fclose(f);
  const auto r = load_zone_file(path, mk("x.org"));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(ZoneText, ContinuationOwnerInheritsLastName) {
  const char* text =
      "@ IN SOA ns. admin. 1 1 1 1 1\n"
      "www IN A 10.0.0.1\n"
      "    IN A 10.0.0.2\n";  // leading whitespace -> same owner
  const auto z = parse_zone_text(text, mk("x.org"));
  ASSERT_TRUE(z.ok()) << z.error().to_string();
  const RRset* www = z.value().find(mk("www.x.org"), RRType::kA);
  ASSERT_NE(www, nullptr);
  EXPECT_EQ(www->size(), 2u);
}

}  // namespace
}  // namespace dnscup::dns

// Model-based property tests: random operation sequences against simple
// reference models, checking that the optimized implementations agree
// with an obviously-correct oracle at every step.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "core/track_file.h"
#include "dns/zone.h"
#include "server/cache.h"
#include "util/rng.h"

namespace dnscup {
namespace {

using dns::Name;
using dns::RRType;

Name domain(int i) {
  return Name::from_labels({"d" + std::to_string(i), "model", "test"});
}

dns::RRset a_set(const Name& name, uint32_t ttl, uint32_t addr) {
  dns::RRset set{name, RRType::kA, dns::RRClass::kIN, ttl, {}};
  set.add(dns::ARdata{dns::Ipv4{addr}});
  return set;
}

// ---- ResolverCache vs oracle ---------------------------------------------------

struct CacheOracleEntry {
  uint32_t addr = 0;
  bool negative = false;
  net::SimTime expiry = 0;
  std::optional<net::SimTime> lease_expiry;

  bool fresh(net::SimTime now) const {
    if (now < expiry) return true;
    return lease_expiry.has_value() && now < *lease_expiry;
  }
};

class CacheModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheModelTest, RandomOpsAgreeWithOracle) {
  util::Rng rng(GetParam());
  server::ResolverCache cache;  // unbounded: oracle has no eviction
  std::map<std::string, CacheOracleEntry> oracle;
  net::SimTime now = 0;

  for (int step = 0; step < 5000; ++step) {
    now += net::seconds(rng.uniform_int(0, 30));
    const int d = static_cast<int>(rng.uniform_int(0, 19));
    const Name name = domain(d);
    const std::string key = name.to_string();

    switch (rng.uniform_int(0, 5)) {
      case 0: {  // positive insert
        const auto ttl = static_cast<uint32_t>(rng.uniform_int(1, 600));
        const auto addr = static_cast<uint32_t>(rng.uniform_int(1, 1 << 30));
        cache.put(a_set(name, ttl, addr), now);
        auto& e = oracle[key];
        e.addr = addr;
        e.negative = false;
        e.expiry = now + net::seconds(ttl);
        // lease preserved across refresh (implementation contract)
        break;
      }
      case 1: {  // negative insert
        const auto ttl = static_cast<uint32_t>(rng.uniform_int(1, 120));
        cache.put_negative(name, RRType::kA, dns::Rcode::kNXDomain, ttl,
                           now);
        auto& e = oracle[key];
        e.negative = true;
        e.expiry = now + net::seconds(ttl);
        e.lease_expiry.reset();  // negative overwrite drops the lease
        break;
      }
      case 2: {  // attach a lease to an existing entry
        server::CacheEntry* entry = cache.peek(name, RRType::kA);
        auto it = oracle.find(key);
        ASSERT_EQ(entry != nullptr, it != oracle.end());
        if (entry != nullptr && !entry->negative) {
          const net::SimTime lease_until =
              now + net::seconds(rng.uniform_int(1, 3600));
          entry->lease = server::LeaseState{
              lease_until, {net::make_ip(10, 0, 0, 1), 53}};
          it->second.lease_expiry = lease_until;
        }
        break;
      }
      case 3: {  // invalidate
        const bool removed = cache.invalidate(name, RRType::kA);
        EXPECT_EQ(removed, oracle.erase(key) > 0);
        break;
      }
      case 4: {  // purge expired
        cache.purge_expired(now);
        for (auto it = oracle.begin(); it != oracle.end();) {
          it = it->second.fresh(now) ? std::next(it) : oracle.erase(it);
        }
        break;
      }
      default: {  // lookup
        const server::CacheEntry* entry = cache.lookup(name, RRType::kA, now);
        auto it = oracle.find(key);
        const bool oracle_fresh =
            it != oracle.end() && it->second.fresh(now);
        ASSERT_EQ(entry != nullptr, oracle_fresh) << "step " << step;
        if (entry != nullptr) {
          EXPECT_EQ(entry->negative, it->second.negative);
          if (!entry->negative) {
            EXPECT_EQ(std::get<dns::ARdata>(entry->rrset.rdatas[0])
                          .address.addr,
                      it->second.addr);
          }
        }
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheModelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---- TrackFile vs oracle ----------------------------------------------------------

struct LeaseOracle {
  net::SimTime granted = 0;
  net::Duration length = 0;
  bool valid(net::SimTime now) const { return now < granted + length; }
};

class TrackFileModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrackFileModelTest, RandomOpsAgreeWithOracle) {
  util::Rng rng(GetParam() + 50);
  core::TrackFile track_file;
  // key: (holder-index, domain-index)
  std::map<std::pair<int, int>, LeaseOracle> oracle;
  net::SimTime now = 0;

  auto holder = [](int h) {
    return net::Endpoint{net::make_ip(10, 2, 0, static_cast<uint8_t>(h)),
                         53};
  };

  for (int step = 0; step < 5000; ++step) {
    now += net::seconds(rng.uniform_int(0, 20));
    const int h = static_cast<int>(rng.uniform_int(0, 7));
    const int d = static_cast<int>(rng.uniform_int(0, 7));

    switch (rng.uniform_int(0, 4)) {
      case 0: {  // grant / renew
        const net::Duration length = net::seconds(rng.uniform_int(1, 300));
        track_file.grant(holder(h), domain(d), RRType::kA, now, length);
        oracle[{h, d}] = LeaseOracle{now, length};
        break;
      }
      case 1: {  // revoke
        const bool removed = track_file.revoke(holder(h), domain(d),
                                               RRType::kA);
        EXPECT_EQ(removed, oracle.erase({h, d}) > 0);
        break;
      }
      case 2: {  // prune
        track_file.prune(now);
        for (auto it = oracle.begin(); it != oracle.end();) {
          it = it->second.valid(now) ? std::next(it) : oracle.erase(it);
        }
        break;
      }
      case 3: {  // holders_of
        std::size_t expected = 0;
        for (const auto& [key, lease] : oracle) {
          if (key.second == d && lease.valid(now)) ++expected;
        }
        EXPECT_EQ(track_file.holders_of(domain(d), RRType::kA, now).size(),
                  expected)
            << "step " << step;
        break;
      }
      default: {  // live_count + serialization round trip
        std::size_t expected = 0;
        for (const auto& [key, lease] : oracle) {
          if (lease.valid(now)) ++expected;
        }
        ASSERT_EQ(track_file.live_count(now), expected) << "step " << step;
        if (step % 500 == 0) {
          const auto reparsed =
              core::TrackFile::parse(track_file.serialize(now));
          ASSERT_TRUE(reparsed.ok());
          EXPECT_EQ(reparsed.value().live_count(now), expected);
        }
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackFileModelTest,
                         ::testing::Values(1, 2, 3, 4));

// ---- Zone mutation invariants -------------------------------------------------------

class ZoneModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZoneModelTest, RandomMutationsKeepInvariants) {
  util::Rng rng(GetParam() + 99);
  dns::SOARdata soa;
  soa.mname = Name::parse("ns.model.test").value();
  soa.rname = Name::parse("admin.model.test").value();
  soa.serial = 1;
  const Name origin = Name::parse("model.test").value();
  dns::Zone zone = dns::Zone::make(origin, soa, 300,
                                   {Name::parse("ns.model.test").value()},
                                   300);
  // Oracle: name string -> set of addresses.
  std::map<std::string, std::map<uint32_t, bool>> oracle;

  for (int step = 0; step < 4000; ++step) {
    const int d = static_cast<int>(rng.uniform_int(0, 11));
    const Name name = origin.prepend("h" + std::to_string(d));
    const auto addr = static_cast<uint32_t>(rng.uniform_int(1, 8));

    switch (rng.uniform_int(0, 3)) {
      case 0: {
        const bool changed =
            zone.add_record(name, RRType::kA, 60, dns::ARdata{dns::Ipv4{addr}});
        auto& entry = oracle[name.to_string()];
        const bool expected = entry.find(addr) == entry.end();
        EXPECT_EQ(changed, expected) << step;
        entry[addr] = true;
        break;
      }
      case 1: {
        const bool changed =
            zone.remove_record(name, RRType::kA, dns::ARdata{dns::Ipv4{addr}});
        auto it = oracle.find(name.to_string());
        const bool expected =
            it != oracle.end() && it->second.erase(addr) > 0;
        EXPECT_EQ(changed, expected) << step;
        if (it != oracle.end() && it->second.empty()) oracle.erase(it);
        break;
      }
      case 2: {
        const bool changed = zone.remove_rrset(name, RRType::kA);
        EXPECT_EQ(changed, oracle.erase(name.to_string()) > 0) << step;
        break;
      }
      default: {
        const auto result = zone.lookup(name, RRType::kA);
        auto it = oracle.find(name.to_string());
        if (it == oracle.end()) {
          EXPECT_EQ(result.status, dns::Zone::LookupStatus::kNXDomain);
        } else {
          ASSERT_EQ(result.status, dns::Zone::LookupStatus::kSuccess);
          EXPECT_EQ(result.rrsets[0].size(), it->second.size());
        }
        break;
      }
    }
    // Global invariants after every step.
    ASSERT_TRUE(zone.validate().ok());
  }
  // The zone's final record count agrees with the oracle (+ SOA + NS).
  std::size_t expected_records = 2;
  for (const auto& [name, addrs] : oracle) expected_records += addrs.size();
  EXPECT_EQ(zone.record_count(), expected_records);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneModelTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dnscup

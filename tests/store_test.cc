// Durable lease-state store: storage backends, WAL framing/replay,
// snapshot codec, and the LeaseStore end-to-end open/append/compact
// cycle, including the fault-injected failure modes recovery must
// survive (short writes, bit flips, failing fsyncs).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>

#include "store/lease_store.h"
#include "store/snapshot.h"
#include "store/storage.h"
#include "store/wal.h"

namespace dnscup::store {
namespace {

using core::Lease;
using core::TrackFile;
using dns::Name;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }

const net::Endpoint kCacheA{net::make_ip(10, 0, 2, 1), 53};
const net::Endpoint kCacheB{net::make_ip(10, 0, 2, 2), 5353};

Lease make_lease(const net::Endpoint& holder, const char* name,
                 RRType type = RRType::kA, net::SimTime granted = 0,
                 net::Duration length = net::seconds(3600)) {
  return Lease{holder, mk(name), type, granted, length};
}

std::vector<uint8_t> bytes_of(const char* text) {
  const auto* p = reinterpret_cast<const uint8_t*>(text);
  return std::vector<uint8_t>(p, p + std::strlen(text));
}

// ---- MemStorage -----------------------------------------------------------

TEST(MemStorage, WriteReadListRemove) {
  MemStorage mem;
  ASSERT_TRUE(mem.create_dir("state").ok());
  ASSERT_TRUE(mem.write_atomic("state/a", bytes_of("alpha")).ok());
  ASSERT_TRUE(mem.write_atomic("state/b", bytes_of("beta")).ok());
  ASSERT_TRUE(mem.write_atomic("other/c", bytes_of("gamma")).ok());

  auto listed = mem.list("state");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed.value(), (std::vector<std::string>{"a", "b"}));

  auto a = mem.read("state/a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), bytes_of("alpha"));
  EXPECT_FALSE(mem.read("state/missing").ok());

  ASSERT_TRUE(mem.truncate("state/a", 2).ok());
  EXPECT_EQ(mem.read("state/a").value(), bytes_of("al"));

  ASSERT_TRUE(mem.remove("state/a").ok());
  EXPECT_FALSE(mem.read("state/a").ok());
  EXPECT_FALSE(mem.remove("state/a").ok());
}

TEST(MemStorage, AppendFileAndCopyFreeze) {
  MemStorage mem;
  auto file = mem.open_append("state/log");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append(bytes_of("one")).ok());
  EXPECT_EQ(file.value()->size(), 3u);

  MemStorage frozen(mem);  // the crash point
  ASSERT_TRUE(file.value()->append(bytes_of("two")).ok());

  EXPECT_EQ(mem.read("state/log").value(), bytes_of("onetwo"));
  EXPECT_EQ(frozen.read("state/log").value(), bytes_of("one"));
}

TEST(PosixStorage, SmokeRoundTrip) {
  // Runs in the build tree's working directory, never /tmp.
  const std::string dir =
      "posix_storage_smoke." + std::to_string(::getpid());
  PosixStorage posix;
  ASSERT_TRUE(posix.create_dir(dir).ok());
  ASSERT_TRUE(posix.create_dir(dir).ok());  // idempotent

  ASSERT_TRUE(posix.write_atomic(dir + "/snap", bytes_of("payload")).ok());
  auto file = posix.open_append(dir + "/log");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append(bytes_of("abcdef")).ok());
  ASSERT_TRUE(file.value()->sync().ok());
  EXPECT_EQ(file.value()->size(), 6u);

  auto listed = posix.list(dir);
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed.value(), (std::vector<std::string>{"log", "snap"}));

  ASSERT_TRUE(posix.truncate(dir + "/log", 3).ok());
  EXPECT_EQ(posix.read(dir + "/log").value(), bytes_of("abc"));
  EXPECT_EQ(posix.read(dir + "/snap").value(), bytes_of("payload"));

  ASSERT_TRUE(posix.remove(dir + "/log").ok());
  ASSERT_TRUE(posix.remove(dir + "/snap").ok());
  ::rmdir(dir.c_str());
}

// ---- WAL ------------------------------------------------------------------

std::vector<WalRecord> all_record_types() {
  std::vector<WalRecord> records;
  WalRecord grant;
  grant.type = WalRecordType::kGrant;
  grant.lease = make_lease(kCacheA, "www.example.com", RRType::kA,
                           net::seconds(5), net::seconds(100));
  records.push_back(grant);

  WalRecord renew = grant;
  renew.type = WalRecordType::kRenew;
  renew.lease.holder = kCacheB;
  renew.lease.granted_at = net::seconds(50);
  records.push_back(renew);

  WalRecord revoke;
  revoke.type = WalRecordType::kRevoke;
  // Revocations carry only the lease key; term fields stay zero.
  revoke.lease = make_lease(kCacheA, "www.example.com", RRType::kTXT, 0, 0);
  records.push_back(revoke);

  WalRecord prune;
  prune.type = WalRecordType::kPrune;
  prune.prune_now = net::seconds(123);
  records.push_back(prune);

  WalRecord serial;
  serial.type = WalRecordType::kZoneSerial;
  serial.origin = mk("example.com");
  serial.serial = 2026080601;
  records.push_back(serial);
  return records;
}

void expect_records_equal(const WalRecord& want, const WalRecord& got) {
  EXPECT_EQ(want.type, got.type);
  EXPECT_EQ(want.lease.holder, got.lease.holder);
  EXPECT_EQ(want.lease.name.to_string(), got.lease.name.to_string());
  EXPECT_EQ(want.lease.type, got.lease.type);
  EXPECT_EQ(want.lease.granted_at, got.lease.granted_at);
  EXPECT_EQ(want.lease.length, got.lease.length);
  EXPECT_EQ(want.prune_now, got.prune_now);
  EXPECT_EQ(want.origin.to_string(), got.origin.to_string());
  EXPECT_EQ(want.serial, got.serial);
}

TEST(WalCodec, AllRecordTypesRoundTrip) {
  for (const WalRecord& record : all_record_types()) {
    const std::vector<uint8_t> payload = encode_wal_record(record);
    auto decoded = decode_wal_record(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
    expect_records_equal(record, decoded.value());
  }
}

TEST(WalCodec, RejectsTruncatedPayload) {
  const std::vector<uint8_t> payload =
      encode_wal_record(all_record_types()[0]);
  for (std::size_t n : {std::size_t{0}, payload.size() / 2}) {
    EXPECT_FALSE(
        decode_wal_record(std::span(payload.data(), n)).ok());
  }
}

TEST(Wal, AppendReplayRoundTrip) {
  MemStorage mem;
  const std::vector<WalRecord> records = all_record_types();
  {
    auto writer = WalWriter::open(&mem, "state", 1, WalOptions{});
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& record : records) {
      ASSERT_TRUE(writer.value()->append(record).ok());
    }
    ASSERT_TRUE(writer.value()->sync().ok());
    EXPECT_EQ(writer.value()->next_lsn(), records.size() + 1);
  }

  std::vector<std::pair<uint64_t, WalRecord>> seen;
  auto stats = replay_wal(&mem, "state", 0,
                          [&](uint64_t lsn, const WalRecord& record) {
                            seen.emplace_back(lsn, record);
                          });
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_EQ(stats.value().replayed, records.size());
  EXPECT_EQ(stats.value().torn, 0u);
  EXPECT_EQ(stats.value().next_lsn, records.size() + 1);
  ASSERT_EQ(seen.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(seen[i].first, i + 1);
    expect_records_equal(records[i], seen[i].second);
  }
}

TEST(Wal, ReplaySkipsRecordsAtOrBelowAfterLsn) {
  MemStorage mem;
  auto writer = WalWriter::open(&mem, "state", 1, WalOptions{});
  ASSERT_TRUE(writer.ok());
  for (const WalRecord& record : all_record_types()) {
    ASSERT_TRUE(writer.value()->append(record).ok());
  }
  std::vector<uint64_t> lsns;
  auto stats = replay_wal(&mem, "state", 3,
                          [&](uint64_t lsn, const WalRecord&) {
                            lsns.push_back(lsn);
                          });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().skipped, 3u);
  EXPECT_EQ(lsns, (std::vector<uint64_t>{4, 5}));
}

TEST(Wal, RotationSplitsSegmentsAndReplayCrossesThem) {
  MemStorage mem;
  // Tiny threshold: every append overflows, so each record gets its own
  // segment.
  auto writer = WalWriter::open(&mem, "state", 1, WalOptions{64});
  ASSERT_TRUE(writer.ok());
  const std::vector<WalRecord> records = all_record_types();
  for (const WalRecord& record : records) {
    ASSERT_TRUE(writer.value()->append(record).ok());
  }

  auto segments = list_wal_segments(&mem, "state");
  ASSERT_TRUE(segments.ok());
  EXPECT_GE(segments.value().size(), 2u);
  for (const auto& [first_lsn, name] : segments.value()) {
    EXPECT_EQ(name, wal_segment_name(first_lsn));
  }

  std::size_t n = 0;
  auto stats = replay_wal(&mem, "state", 0,
                          [&](uint64_t, const WalRecord&) { ++n; });
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_EQ(n, records.size());
  EXPECT_EQ(stats.value().segments, segments.value().size());
}

TEST(Wal, TornTailTruncatedAndLogReusable) {
  MemStorage mem;
  auto writer = WalWriter::open(&mem, "state", 1, WalOptions{});
  ASSERT_TRUE(writer.ok());
  const std::vector<WalRecord> records = all_record_types();
  for (const WalRecord& record : records) {
    ASSERT_TRUE(writer.value()->append(record).ok());
  }
  // Chop 3 bytes off the last frame: a crash mid-append.
  const std::string segment = "state/" + wal_segment_name(1);
  std::vector<uint8_t>& contents = mem.files()[segment];
  const uint64_t whole = contents.size();
  contents.resize(whole - 3);

  std::size_t n = 0;
  auto stats = replay_wal(&mem, "state", 0,
                          [&](uint64_t, const WalRecord&) { ++n; });
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_EQ(n, records.size() - 1);
  EXPECT_EQ(stats.value().torn, 1u);
  EXPECT_EQ(stats.value().next_lsn, records.size());
  EXPECT_LT(mem.files()[segment].size(), whole - 3);  // tear truncated away

  // The repaired log accepts a new writer at the continuation LSN and the
  // whole history replays cleanly.
  auto writer2 =
      WalWriter::open(&mem, "state", stats.value().next_lsn, WalOptions{});
  ASSERT_TRUE(writer2.ok()) << writer2.error().to_string();
  ASSERT_TRUE(writer2.value()->append(records[0]).ok());
  n = 0;
  auto stats2 = replay_wal(&mem, "state", 0,
                           [&](uint64_t, const WalRecord&) { ++n; });
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(n, records.size());
  EXPECT_EQ(stats2.value().torn, 0u);
}

TEST(Wal, BitFlipDetectedByCrcAndTailDropped) {
  MemStorage mem;
  auto writer = WalWriter::open(&mem, "state", 1, WalOptions{});
  ASSERT_TRUE(writer.ok());
  const std::vector<WalRecord> records = all_record_types();
  for (const WalRecord& record : records) {
    ASSERT_TRUE(writer.value()->append(record).ok());
  }

  // Latent corruption in the third record's payload (header 16 bytes,
  // two whole frames, then past the next frame header).
  const std::string segment = "state/" + wal_segment_name(1);
  uint64_t offset = 16;
  for (int i = 0; i < 2; ++i) {
    offset += 8 + encode_wal_record(records[i]).size();
  }
  FaultPlan plan;
  plan.flips.push_back({segment, offset + 8 + 2, 0x40});
  FaultInjectingStorage faulty(&mem, plan);

  std::size_t n = 0;
  auto stats = replay_wal(&faulty, "state", 0,
                          [&](uint64_t, const WalRecord&) { ++n; });
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_EQ(n, 2u);  // everything from the flipped record on is dropped
  EXPECT_GE(stats.value().torn, 1u);
  EXPECT_EQ(stats.value().next_lsn, 3u);
}

TEST(Wal, CrashMidAppendLeavesShortWriteThatReplayTruncates) {
  MemStorage mem;
  const std::vector<WalRecord> records = all_record_types();
  uint64_t two_whole = 16;  // segment header
  for (int i = 0; i < 2; ++i) {
    two_whole += 8 + encode_wal_record(records[i]).size();
  }
  FaultPlan plan;
  plan.crash_after_bytes = two_whole + 5;  // dies 5 bytes into record 3
  FaultInjectingStorage faulty(&mem, plan);

  auto writer = WalWriter::open(&faulty, "state", 1, WalOptions{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->append(records[0]).ok());
  ASSERT_TRUE(writer.value()->append(records[1]).ok());
  EXPECT_FALSE(writer.value()->append(records[2]).ok());
  EXPECT_TRUE(faulty.crashed());
  EXPECT_EQ(mem.files()["state/" + wal_segment_name(1)].size(),
            two_whole + 5);

  std::size_t n = 0;
  auto stats = replay_wal(&mem, "state", 0,
                          [&](uint64_t, const WalRecord&) { ++n; });
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(stats.value().torn, 1u);
  EXPECT_EQ(stats.value().next_lsn, 3u);
}

// ---- Snapshots ------------------------------------------------------------

SnapshotData sample_snapshot() {
  SnapshotData snapshot;
  snapshot.last_lsn = 42;
  snapshot.as_of = net::seconds(99);
  snapshot.leases.push_back(make_lease(kCacheA, "www.example.com"));
  snapshot.leases.push_back(make_lease(kCacheB, "ftp.example.com",
                                       RRType::kTXT, net::seconds(7),
                                       net::seconds(1)));
  snapshot.zone_serials[mk("example.com")] = 7;
  snapshot.zone_serials[mk("other.org")] = 2026080601;
  return snapshot;
}

TEST(Snapshot, EncodeDecodeRoundTrip) {
  const SnapshotData snapshot = sample_snapshot();
  auto decoded = decode_snapshot(encode_snapshot(snapshot));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value().last_lsn, 42u);
  EXPECT_EQ(decoded.value().as_of, net::seconds(99));
  ASSERT_EQ(decoded.value().leases.size(), 2u);
  EXPECT_EQ(decoded.value().leases[1].holder, kCacheB);
  EXPECT_EQ(decoded.value().leases[1].type, RRType::kTXT);
  EXPECT_EQ(decoded.value().zone_serials.at(mk("example.com")), 7u);
  EXPECT_EQ(decoded.value().zone_serials.at(mk("other.org")), 2026080601u);
}

TEST(Snapshot, AnySingleBitFlipRejected) {
  std::vector<uint8_t> bytes = encode_snapshot(sample_snapshot());
  // Flipping any byte after the magic must trip the CRC; flipping the
  // magic must trip the magic check.  Sample a spread of positions.
  for (std::size_t offset : {std::size_t{0}, std::size_t{9},
                             bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[offset] ^= 0x10;
    EXPECT_FALSE(decode_snapshot(corrupt).ok()) << "offset " << offset;
  }
  EXPECT_FALSE(decode_snapshot(std::span(bytes.data(), 10)).ok());
}

// ---- LeaseStore -----------------------------------------------------------

LeaseStore::Config store_config(const char* dir = "state") {
  LeaseStore::Config config;
  config.dir = dir;
  config.fsync = FsyncPolicy::kNever;  // MemStorage syncs are free anyway
  return config;
}

TEST(LeaseStore, JournalSurvivesReopen) {
  MemStorage mem;
  core::RecoveredState state;
  {
    auto store = LeaseStore::open(&mem, store_config(), &state);
    ASSERT_TRUE(store.ok()) << store.error().to_string();
    EXPECT_TRUE(state.leases.empty());
    store.value()->record_grant(make_lease(kCacheA, "a.example.com"), false);
    store.value()->record_grant(make_lease(kCacheB, "b.example.com"), false);
    store.value()->record_grant(
        make_lease(kCacheA, "a.example.com", RRType::kA, net::seconds(9)),
        true);
    store.value()->record_revoke(kCacheB, mk("b.example.com"), RRType::kA);
    store.value()->record_zone_serial(mk("example.com"), 8);
    EXPECT_TRUE(store.value()->healthy());
  }

  auto store = LeaseStore::open(&mem, store_config(), &state);
  ASSERT_TRUE(store.ok()) << store.error().to_string();
  EXPECT_EQ(state.replayed_records, 5u);
  EXPECT_EQ(state.torn_records, 0u);
  ASSERT_EQ(state.leases.size(), 1u);
  EXPECT_EQ(state.leases[0].holder, kCacheA);
  EXPECT_EQ(state.leases[0].granted_at, net::seconds(9));  // the renewal won
  EXPECT_EQ(state.zone_serials.at(mk("example.com")), 8u);
}

TEST(LeaseStore, PruneReplaysDeterministically) {
  MemStorage mem;
  core::RecoveredState state;
  {
    auto store = LeaseStore::open(&mem, store_config(), &state);
    ASSERT_TRUE(store.ok());
    store.value()->record_grant(
        make_lease(kCacheA, "short.example.com", RRType::kA, 0,
                   net::seconds(10)),
        false);
    store.value()->record_grant(
        make_lease(kCacheB, "long.example.com", RRType::kA, 0,
                   net::seconds(1000)),
        false);
    store.value()->record_prune(net::seconds(50));
  }
  auto store = LeaseStore::open(&mem, store_config(), &state);
  ASSERT_TRUE(store.ok());
  ASSERT_EQ(state.leases.size(), 1u);
  EXPECT_EQ(state.leases[0].name.to_string(), "long.example.com.");
}

TEST(LeaseStore, SnapshotCompactsWalAndReopenUsesIt) {
  MemStorage mem;
  core::RecoveredState state;
  TrackFile track;
  auto store = LeaseStore::open(&mem, store_config(), &state);
  ASSERT_TRUE(store.ok());
  track.set_journal(store.value().get());

  track.grant(kCacheA, mk("a.example.com"), RRType::kA, 0, net::seconds(100));
  track.grant(kCacheB, mk("b.example.com"), RRType::kA, 0, net::seconds(100));
  store.value()->record_zone_serial(mk("example.com"), 7);
  EXPECT_EQ(store.value()->records_since_snapshot(), 3u);

  ASSERT_TRUE(store.value()->write_snapshot(track, net::seconds(1)).ok());
  EXPECT_EQ(store.value()->records_since_snapshot(), 0u);
  // The records now live in the snapshot; their segment is unlinked.
  auto segments = list_wal_segments(&mem, "state");
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments.value().size(), 1u);  // only the fresh active segment
  EXPECT_EQ(segments.value()[0].first, 4u);

  // One more record after the snapshot: reopen replays exactly that one.
  track.grant(kCacheA, mk("c.example.com"), RRType::kA, 0, net::seconds(100));
  auto reopened = LeaseStore::open(&mem, store_config(), &state);
  ASSERT_TRUE(reopened.ok()) << reopened.error().to_string();
  EXPECT_EQ(state.snapshot_lsn, 3u);
  EXPECT_EQ(state.replayed_records, 1u);
  EXPECT_EQ(state.leases.size(), 3u);
  EXPECT_EQ(state.zone_serials.at(mk("example.com")), 7u);
}

TEST(LeaseStore, CorruptNewestSnapshotFallsBackToOlder) {
  MemStorage mem;
  core::RecoveredState state;
  TrackFile track;
  auto store = LeaseStore::open(&mem, store_config(), &state);
  ASSERT_TRUE(store.ok());
  track.set_journal(store.value().get());
  track.grant(kCacheA, mk("a.example.com"), RRType::kA, 0, net::seconds(100));
  ASSERT_TRUE(store.value()->write_snapshot(track, net::seconds(1)).ok());
  track.grant(kCacheB, mk("b.example.com"), RRType::kA, 0, net::seconds(100));

  // A later snapshot lands with rotted bytes; the WAL tail above the good
  // snapshot is still present, so recovery degrades gracefully to it.
  mem.files()["state/" + snapshot_file_name(2)] = bytes_of("rotten");
  auto reopened = LeaseStore::open(&mem, store_config(), &state);
  ASSERT_TRUE(reopened.ok()) << reopened.error().to_string();
  EXPECT_EQ(state.snapshot_lsn, 1u);
  EXPECT_EQ(state.replayed_records, 1u);
  EXPECT_EQ(state.leases.size(), 2u);
}

TEST(LeaseStore, FsyncPolicyControlsSyncCadence) {
  struct Case {
    FsyncPolicy policy;
    uint32_t interval;
    uint64_t want_syncs;  // for 4 appended records
  };
  for (const Case& c : {Case{FsyncPolicy::kAlways, 64, 4},
                        Case{FsyncPolicy::kInterval, 2, 2},
                        Case{FsyncPolicy::kNever, 64, 0}}) {
    MemStorage mem;
    FaultInjectingStorage counting(&mem, FaultPlan{});
    core::RecoveredState state;
    LeaseStore::Config config = store_config();
    config.fsync = c.policy;
    config.fsync_interval = c.interval;
    auto store = LeaseStore::open(&counting, config, &state);
    ASSERT_TRUE(store.ok());
    const uint64_t baseline = counting.sync_calls();
    for (int i = 0; i < 4; ++i) {
      store.value()->record_grant(
          make_lease(kCacheA, ("n" + std::to_string(i) + ".com").c_str()),
          false);
    }
    EXPECT_EQ(counting.sync_calls() - baseline, c.want_syncs)
        << "policy " << to_string(c.policy);
  }
}

TEST(LeaseStore, IoFailureLatchesDegradedInsteadOfCrashing) {
  MemStorage mem;
  FaultPlan plan;
  plan.fail_sync_after = 1;
  FaultInjectingStorage faulty(&mem, plan);
  core::RecoveredState state;
  LeaseStore::Config config = store_config();
  config.fsync = FsyncPolicy::kAlways;
  auto store = LeaseStore::open(&faulty, config, &state);
  ASSERT_TRUE(store.ok());

  store.value()->record_grant(make_lease(kCacheA, "a.com"), false);  // sync ok
  EXPECT_TRUE(store.value()->healthy());
  store.value()->record_grant(make_lease(kCacheB, "b.com"), false);  // fails
  EXPECT_FALSE(store.value()->healthy());
  // Later appends are dropped silently; the store stays degraded, the
  // process does not crash.
  store.value()->record_grant(make_lease(kCacheA, "c.com"), false);
  EXPECT_FALSE(store.value()->sync().ok());

  TrackFile track;
  EXPECT_FALSE(store.value()->write_snapshot(track, 0).ok());
}

TEST(LeaseStore, StorePublishesMetrics) {
  MemStorage mem;
  metrics::MetricsRegistry registry;
  core::RecoveredState state;
  LeaseStore::Config config = store_config();
  config.metrics = &registry;
  auto store = LeaseStore::open(&mem, config, &state);
  ASSERT_TRUE(store.ok());
  store.value()->record_grant(make_lease(kCacheA, "a.com"), false);
  store.value()->record_grant(make_lease(kCacheA, "a.com"), true);
  store.value()->record_zone_serial(mk("example.com"), 3);
  TrackFile track;
  ASSERT_TRUE(store.value()->write_snapshot(track, 0).ok());

  const metrics::Snapshot snap = registry.snapshot();
  const auto* grants = snap.find("store_records", {{"type", "grant"}});
  ASSERT_NE(grants, nullptr);
  EXPECT_EQ(grants->counter_value, 1u);
  const auto* renews = snap.find("store_records", {{"type", "renew"}});
  ASSERT_NE(renews, nullptr);
  EXPECT_EQ(renews->counter_value, 1u);
  const auto* append_latency = snap.find("store_append_latency_us");
  ASSERT_NE(append_latency, nullptr);
  EXPECT_EQ(append_latency->histogram.count, 3u);
  const auto* snapshots = snap.find("store_snapshots_written");
  ASSERT_NE(snapshots, nullptr);
  EXPECT_EQ(snapshots->counter_value, 1u);
  EXPECT_NE(snap.find("store_wal_segments"), nullptr);
  EXPECT_NE(snap.find("store_recovery_duration_us"), nullptr);
}

}  // namespace
}  // namespace dnscup::store

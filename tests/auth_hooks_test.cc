#include <gtest/gtest.h>

#include "core/auth.h"
#include "core/cache_update.h"
#include "sim/testbed.h"

namespace dnscup::core {
namespace {

using dns::Name;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }
dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

dns::Message sample_update() {
  dns::RRset after{mk("www.example.com"), RRType::kA, dns::RRClass::kIN,
                   300, {}};
  after.add(dns::ARdata{ip("198.51.100.1")});
  std::vector<dns::RRsetChange> changes{
      {mk("www.example.com"), RRType::kA, std::nullopt, after}};
  return encode_cache_update(42, mk("example.com"), 7, changes);
}

// ---- SharedKeyAuthenticator unit tests -------------------------------------

TEST(SharedKeyAuthenticator, SignThenVerify) {
  SharedKeyAuthenticator auth("secret-key");
  dns::Message m = sample_update();
  const std::size_t additional_before = m.additional.size();
  auth.sign(m);
  EXPECT_EQ(m.additional.size(), additional_before + 1);
  EXPECT_TRUE(auth.verify(m));
  // verify() strips the MAC record.
  EXPECT_EQ(m.additional.size(), additional_before);
}

TEST(SharedKeyAuthenticator, SurvivesTheWire) {
  SharedKeyAuthenticator auth("secret-key");
  dns::Message m = sample_update();
  auth.sign(m);
  dns::Message received = dns::Message::decode(m.encode()).value();
  EXPECT_TRUE(auth.verify(received));
}

TEST(SharedKeyAuthenticator, RejectsUnsigned) {
  SharedKeyAuthenticator auth("secret-key");
  dns::Message m = sample_update();
  EXPECT_FALSE(auth.verify(m));
}

TEST(SharedKeyAuthenticator, RejectsWrongKey) {
  SharedKeyAuthenticator signer("key-a");
  SharedKeyAuthenticator verifier("key-b");
  dns::Message m = sample_update();
  signer.sign(m);
  EXPECT_FALSE(verifier.verify(m));
}

TEST(SharedKeyAuthenticator, RejectsTamperedPayload) {
  SharedKeyAuthenticator auth("secret-key");
  dns::Message m = sample_update();
  auth.sign(m);
  // The attacker flips the pushed address after signing.
  std::get<dns::ARdata>(m.answers[0].rdata).address = ip("6.6.6.6");
  EXPECT_FALSE(auth.verify(m));
}

TEST(SharedKeyAuthenticator, RejectsTamperedMac) {
  SharedKeyAuthenticator auth("secret-key");
  dns::Message m = sample_update();
  auth.sign(m);
  auto& mac = std::get<dns::TXTRdata>(m.additional.back().rdata);
  mac.strings[0][0] = mac.strings[0][0] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(auth.verify(m));
}

TEST(SharedKeyAuthenticator, VerifyLeavesMessageIntactOnFailure) {
  SharedKeyAuthenticator signer("key-a");
  SharedKeyAuthenticator verifier("key-b");
  dns::Message m = sample_update();
  signer.sign(m);
  const dns::Message before = m;
  EXPECT_FALSE(verifier.verify(m));
  EXPECT_EQ(m, before);
}

// ---- end-to-end through the testbed -----------------------------------------

TEST(AuthHooksE2E, SignedPushesVerifyAndApply) {
  sim::TestbedConfig config;
  config.zones = 2;
  config.caches = 1;
  config.auth_key = "testbed-shared-key";
  sim::Testbed tb(config);

  ASSERT_TRUE(tb.resolve(0, tb.web_host(0), RRType::kA).has_value());
  ASSERT_EQ(tb.repoint_web_host(0, ip("198.18.20.1")), dns::Rcode::kNoError);
  tb.loop().run_for(net::seconds(2));

  const auto& stats = tb.lease_client(0)->stats();
  EXPECT_EQ(stats.auth_failures, 0u);
  EXPECT_EQ(stats.updates_applied, 1u);
  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("198.18.20.1"));
}

TEST(AuthHooksE2E, ForgedPushDroppedWithoutAck) {
  sim::TestbedConfig config;
  config.zones = 2;
  config.caches = 1;
  config.record_ttl = 3600;
  config.auth_key = "testbed-shared-key";
  sim::Testbed tb(config);
  ASSERT_TRUE(tb.resolve(0, tb.web_host(0), RRType::kA).has_value());

  // Attacker sends an unsigned (or wrongly-signed) push from the master's
  // own endpoint address — even source-authorized pushes must verify.
  dns::RRset poisoned{tb.web_host(0), RRType::kA, dns::RRClass::kIN, 300,
                      {}};
  poisoned.add(dns::ARdata{ip("6.6.6.6")});
  std::vector<dns::RRsetChange> changes{
      {tb.web_host(0), RRType::kA, std::nullopt, poisoned}};
  dns::Message evil =
      encode_cache_update(666, tb.zone_origin(0), 999, changes);
  SharedKeyAuthenticator wrong_key("guessed-key");
  wrong_key.sign(evil);
  tb.master().transport().send({net::make_ip(10, 0, 2, 1), 53},
                               evil.encode());
  tb.loop().run_for(net::seconds(2));

  const auto& stats = tb.lease_client(0)->stats();
  EXPECT_EQ(stats.auth_failures, 1u);
  EXPECT_EQ(stats.acks_sent, 0u);
  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  EXPECT_NE(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("6.6.6.6"));
}

TEST(AuthHooksE2E, PlainTextDefaultUnchanged) {
  // No key configured: the §5.3 default — everything works unsigned.
  sim::TestbedConfig config;
  config.zones = 1;
  config.caches = 1;
  sim::Testbed tb(config);
  ASSERT_TRUE(tb.resolve(0, tb.web_host(0), RRType::kA).has_value());
  tb.repoint_web_host(0, ip("198.18.21.1"));
  tb.loop().run_for(net::seconds(2));
  EXPECT_EQ(tb.lease_client(0)->stats().auth_failures, 0u);
  EXPECT_EQ(tb.lease_client(0)->stats().updates_applied, 1u);
}

TEST(AuthHooksE2E, SignedMessagesStillUnder512Bytes) {
  sim::TestbedConfig config;
  config.zones = 4;
  config.caches = 2;
  config.auth_key = "testbed-shared-key";
  sim::Testbed tb(config);
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t z = 0; z < 4; ++z) {
      tb.resolve(c, tb.web_host(z), RRType::kA);
    }
  }
  for (std::size_t z = 0; z < 4; ++z) {
    tb.repoint_web_host(z, dns::Ipv4{ip("198.18.22.0").addr +
                                     static_cast<uint32_t>(z)});
  }
  tb.loop().run_for(net::seconds(5));
  EXPECT_LE(tb.network().max_packet_bytes(), dns::kMaxUdpPayload);
  EXPECT_EQ(tb.dnscup()->notifier().stats().acks_received,
            tb.dnscup()->notifier().stats().updates_sent);
}

}  // namespace
}  // namespace dnscup::core

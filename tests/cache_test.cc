#include <gtest/gtest.h>

#include "server/cache.h"

namespace dnscup::server {
namespace {

using dns::Name;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }

dns::RRset a_set(const char* name, uint32_t ttl, uint32_t addr) {
  dns::RRset set{mk(name), RRType::kA, dns::RRClass::kIN, ttl, {}};
  set.add(dns::ARdata{dns::Ipv4{addr}});
  return set;
}

TEST(ResolverCache, MissThenHit) {
  ResolverCache cache;
  EXPECT_EQ(cache.lookup(mk("a.com"), RRType::kA, 0), nullptr);
  cache.put(a_set("a.com", 300, 1), 0);
  const CacheEntry* e = cache.lookup(mk("a.com"), RRType::kA, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->negative);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResolverCache, TtlExpiry) {
  ResolverCache cache;
  cache.put(a_set("a.com", 300, 1), 0);
  EXPECT_NE(cache.lookup(mk("a.com"), RRType::kA, net::seconds(299)),
            nullptr);
  EXPECT_EQ(cache.lookup(mk("a.com"), RRType::kA, net::seconds(300)),
            nullptr);
  EXPECT_EQ(cache.stats().expired, 1u);
}

TEST(ResolverCache, LeaseExtendsFreshnessBeyondTtl) {
  // The DNScup invariant: a leased record stays served past its TTL.
  ResolverCache cache;
  CacheEntry& e = cache.put(a_set("a.com", 300, 1), 0);
  e.lease = LeaseState{net::seconds(3600), {net::make_ip(10, 0, 0, 1), 53}};
  EXPECT_NE(cache.lookup(mk("a.com"), RRType::kA, net::seconds(1000)),
            nullptr);
  EXPECT_EQ(cache.lookup(mk("a.com"), RRType::kA, net::seconds(3600)),
            nullptr);  // lease over, TTL long gone
}

TEST(ResolverCache, NegativeEntries) {
  ResolverCache cache;
  cache.put_negative(mk("no.com"), RRType::kA, dns::Rcode::kNXDomain, 60, 0);
  const CacheEntry* e = cache.lookup(mk("no.com"), RRType::kA, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->negative);
  EXPECT_EQ(e->negative_rcode, dns::Rcode::kNXDomain);
  EXPECT_EQ(cache.lookup(mk("no.com"), RRType::kA, net::seconds(61)),
            nullptr);
}

TEST(ResolverCache, RefreshKeepsLease) {
  ResolverCache cache;
  CacheEntry& e = cache.put(a_set("a.com", 300, 1), 0);
  e.lease = LeaseState{net::seconds(7200), {net::make_ip(10, 0, 0, 1), 53}};
  // A later TTL refresh (new resolution) must not clear the lease.
  cache.put(a_set("a.com", 300, 2), net::seconds(100));
  const CacheEntry* after = cache.peek(mk("a.com"), RRType::kA);
  ASSERT_NE(after, nullptr);
  ASSERT_TRUE(after->lease.has_value());
  EXPECT_EQ(after->lease->expiry, net::seconds(7200));
}

TEST(ResolverCache, NegativeOverwriteClearsLease) {
  ResolverCache cache;
  CacheEntry& e = cache.put(a_set("a.com", 300, 1), 0);
  e.lease = LeaseState{net::seconds(7200), {net::make_ip(10, 0, 0, 1), 53}};
  cache.put_negative(mk("a.com"), RRType::kA, dns::Rcode::kNXDomain, 60,
                     net::seconds(10));
  EXPECT_FALSE(cache.peek(mk("a.com"), RRType::kA)->lease.has_value());
}

TEST(ResolverCache, ApplyUpdateReplacesData) {
  ResolverCache cache;
  cache.put(a_set("a.com", 300, 1), 0);
  cache.apply_update(a_set("a.com", 300, 99), net::seconds(50));
  const CacheEntry* e = cache.peek(mk("a.com"), RRType::kA);
  EXPECT_EQ(std::get<dns::ARdata>(e->rrset.rdatas[0]).address.addr, 99u);
  EXPECT_EQ(e->expiry, net::seconds(350));  // TTL restarted at update time
}

TEST(ResolverCache, Invalidate) {
  ResolverCache cache;
  cache.put(a_set("a.com", 300, 1), 0);
  EXPECT_TRUE(cache.invalidate(mk("a.com"), RRType::kA));
  EXPECT_FALSE(cache.invalidate(mk("a.com"), RRType::kA));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ResolverCache, PurgeExpired) {
  ResolverCache cache;
  cache.put(a_set("a.com", 100, 1), 0);
  cache.put(a_set("b.com", 1000, 2), 0);
  CacheEntry& leased = cache.put(a_set("c.com", 100, 3), 0);
  leased.lease =
      LeaseState{net::seconds(5000), {net::make_ip(10, 0, 0, 1), 53}};
  EXPECT_EQ(cache.purge_expired(net::seconds(500)), 1u);  // only a.com
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.peek(mk("c.com"), RRType::kA), nullptr);
}

TEST(ResolverCache, LruEviction) {
  ResolverCache cache(2);
  cache.put(a_set("a.com", 300, 1), 0);
  cache.put(a_set("b.com", 300, 2), 0);
  // Touch a.com so b.com is the LRU victim.
  cache.lookup(mk("a.com"), RRType::kA, 0);
  cache.put(a_set("c.com", 300, 3), 0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.peek(mk("a.com"), RRType::kA), nullptr);
  EXPECT_EQ(cache.peek(mk("b.com"), RRType::kA), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResolverCache, EvictionSkipsLeasedEntries) {
  ResolverCache cache(2);
  CacheEntry& leased = cache.put(a_set("a.com", 300, 1), 0);
  leased.lease =
      LeaseState{net::seconds(5000), {net::make_ip(10, 0, 0, 1), 53}};
  cache.put(a_set("b.com", 300, 2), 0);
  cache.lookup(mk("b.com"), RRType::kA, 0);  // a.com is LRU but leased
  cache.put(a_set("c.com", 300, 3), 0);
  EXPECT_NE(cache.peek(mk("a.com"), RRType::kA), nullptr);  // survived
  EXPECT_EQ(cache.peek(mk("b.com"), RRType::kA), nullptr);  // evicted
}

TEST(ResolverCache, PurgeDropsEntriesWithExpiredLeases) {
  // Regression: an entry whose TTL *and* lease have both run out used to
  // survive purge_expired forever (the expired lease still "protected"
  // it), leaking one cache slot per dead leased record.
  ResolverCache cache;
  CacheEntry& dead = cache.put(a_set("dead.com", 100, 1), 0);
  dead.lease = LeaseState{net::seconds(200), {net::make_ip(10, 0, 0, 1), 53}};
  CacheEntry& alive = cache.put(a_set("alive.com", 100, 2), 0);
  alive.lease =
      LeaseState{net::seconds(5000), {net::make_ip(10, 0, 0, 1), 53}};
  // At t=300 both TTLs are gone; dead.com's lease is too, alive.com's
  // lease still has term.
  EXPECT_EQ(cache.purge_expired(net::seconds(300)), 1u);
  EXPECT_EQ(cache.peek(mk("dead.com"), RRType::kA), nullptr);
  EXPECT_NE(cache.peek(mk("alive.com"), RRType::kA), nullptr);
}

TEST(ResolverCache, ExpiredLeaseDoesNotProtectFromEviction) {
  ResolverCache cache(2);
  CacheEntry& stale = cache.put(a_set("a.com", 300, 1), 0);
  stale.lease = LeaseState{net::seconds(10), {net::make_ip(10, 0, 0, 1), 53}};
  cache.put(a_set("b.com", 300, 2), net::seconds(20));
  cache.lookup(mk("b.com"), RRType::kA, net::seconds(20));
  // a.com is LRU and its lease already ran out: it is a plain victim.
  cache.put(a_set("c.com", 300, 3), net::seconds(20));
  EXPECT_EQ(cache.peek(mk("a.com"), RRType::kA), nullptr);
  EXPECT_NE(cache.peek(mk("b.com"), RRType::kA), nullptr);
  EXPECT_EQ(cache.stats().leased_evictions, 0u);
}

TEST(ResolverCache, LeasedEvictionIsLastResortAndCounted) {
  ResolverCache cache(2);
  const net::Endpoint authority{net::make_ip(10, 0, 0, 1), 53};
  CacheEntry& first = cache.put(a_set("a.com", 300, 1), 0);
  first.lease = LeaseState{net::seconds(5000), authority};
  CacheEntry& second = cache.put(a_set("b.com", 300, 2), 0);
  second.lease = LeaseState{net::seconds(5000), authority};
  cache.lookup(mk("b.com"), RRType::kA, 0);  // a.com is now LRU
  // Every resident entry holds a valid lease, so capacity pressure must
  // claim the LRU leased entry — observably.
  cache.put(a_set("c.com", 300, 3), 0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.peek(mk("a.com"), RRType::kA), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().leased_evictions, 1u);
  // The evicted record now misses: the next client query goes upstream
  // and re-negotiates a lease instead of serving from a freed slot.
  EXPECT_EQ(cache.lookup(mk("a.com"), RRType::kA, 0), nullptr);
  CacheEntry& again = cache.put(a_set("a.com", 300, 1), net::seconds(1));
  EXPECT_FALSE(again.lease.has_value());  // fresh entry, fresh negotiation
}

TEST(ResolverCache, SetLeaseThroughTheSeam) {
  ResolverCache cache;
  const net::Endpoint authority{net::make_ip(10, 0, 0, 1), 53};
  EXPECT_FALSE(cache.set_lease(mk("a.com"), RRType::kA,
                               LeaseState{net::seconds(100), authority}));
  cache.put(a_set("a.com", 300, 1), 0);
  EXPECT_TRUE(cache.set_lease(mk("a.com"), RRType::kA,
                              LeaseState{net::seconds(100), authority}));
  ASSERT_TRUE(cache.peek(mk("a.com"), RRType::kA)->lease.has_value());
  EXPECT_TRUE(cache.set_lease(mk("a.com"), RRType::kA, std::nullopt));
  EXPECT_FALSE(cache.peek(mk("a.com"), RRType::kA)->lease.has_value());
}

TEST(ResolverCache, ZoneSerialsRoundTrip) {
  ResolverCache cache;
  cache.note_zone_serial(mk("example.com"), 7);
  cache.note_zone_serial(mk("other.org"), 3);
  cache.note_zone_serial(mk("example.com"), 9);  // upsert, not append
  const auto serials = cache.zone_serials();
  ASSERT_EQ(serials.size(), 2u);
  for (const auto& [zone, serial] : serials) {
    EXPECT_EQ(serial, zone == mk("example.com") ? 9u : 3u);
  }
}

TEST(ResolverCache, DistinctTypesAreDistinctEntries) {
  ResolverCache cache;
  cache.put(a_set("a.com", 300, 1), 0);
  dns::RRset txt{mk("a.com"), RRType::kTXT, dns::RRClass::kIN, 300, {}};
  txt.add(dns::TXTRdata{{"x"}});
  cache.put(txt, 0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.lookup(mk("a.com"), RRType::kA, 0), nullptr);
  EXPECT_NE(cache.lookup(mk("a.com"), RRType::kTXT, 0), nullptr);
}

TEST(ResolverCache, ForEachVisitsAll) {
  ResolverCache cache;
  cache.put(a_set("a.com", 300, 1), 0);
  cache.put(a_set("b.com", 300, 2), 0);
  std::size_t visited = 0;
  cache.for_each([&](const CacheKey&, const CacheEntry&) { ++visited; });
  EXPECT_EQ(visited, 2u);
}

}  // namespace
}  // namespace dnscup::server

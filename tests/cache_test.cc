#include <gtest/gtest.h>

#include "server/cache.h"

namespace dnscup::server {
namespace {

using dns::Name;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }

dns::RRset a_set(const char* name, uint32_t ttl, uint32_t addr) {
  dns::RRset set{mk(name), RRType::kA, dns::RRClass::kIN, ttl, {}};
  set.add(dns::ARdata{dns::Ipv4{addr}});
  return set;
}

TEST(ResolverCache, MissThenHit) {
  ResolverCache cache;
  EXPECT_EQ(cache.lookup(mk("a.com"), RRType::kA, 0), nullptr);
  cache.put(a_set("a.com", 300, 1), 0);
  const CacheEntry* e = cache.lookup(mk("a.com"), RRType::kA, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->negative);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResolverCache, TtlExpiry) {
  ResolverCache cache;
  cache.put(a_set("a.com", 300, 1), 0);
  EXPECT_NE(cache.lookup(mk("a.com"), RRType::kA, net::seconds(299)),
            nullptr);
  EXPECT_EQ(cache.lookup(mk("a.com"), RRType::kA, net::seconds(300)),
            nullptr);
  EXPECT_EQ(cache.stats().expired, 1u);
}

TEST(ResolverCache, LeaseExtendsFreshnessBeyondTtl) {
  // The DNScup invariant: a leased record stays served past its TTL.
  ResolverCache cache;
  CacheEntry& e = cache.put(a_set("a.com", 300, 1), 0);
  e.lease = LeaseState{net::seconds(3600), {net::make_ip(10, 0, 0, 1), 53}};
  EXPECT_NE(cache.lookup(mk("a.com"), RRType::kA, net::seconds(1000)),
            nullptr);
  EXPECT_EQ(cache.lookup(mk("a.com"), RRType::kA, net::seconds(3600)),
            nullptr);  // lease over, TTL long gone
}

TEST(ResolverCache, NegativeEntries) {
  ResolverCache cache;
  cache.put_negative(mk("no.com"), RRType::kA, dns::Rcode::kNXDomain, 60, 0);
  const CacheEntry* e = cache.lookup(mk("no.com"), RRType::kA, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->negative);
  EXPECT_EQ(e->negative_rcode, dns::Rcode::kNXDomain);
  EXPECT_EQ(cache.lookup(mk("no.com"), RRType::kA, net::seconds(61)),
            nullptr);
}

TEST(ResolverCache, RefreshKeepsLease) {
  ResolverCache cache;
  CacheEntry& e = cache.put(a_set("a.com", 300, 1), 0);
  e.lease = LeaseState{net::seconds(7200), {net::make_ip(10, 0, 0, 1), 53}};
  // A later TTL refresh (new resolution) must not clear the lease.
  cache.put(a_set("a.com", 300, 2), net::seconds(100));
  const CacheEntry* after = cache.peek(mk("a.com"), RRType::kA);
  ASSERT_NE(after, nullptr);
  ASSERT_TRUE(after->lease.has_value());
  EXPECT_EQ(after->lease->expiry, net::seconds(7200));
}

TEST(ResolverCache, NegativeOverwriteClearsLease) {
  ResolverCache cache;
  CacheEntry& e = cache.put(a_set("a.com", 300, 1), 0);
  e.lease = LeaseState{net::seconds(7200), {net::make_ip(10, 0, 0, 1), 53}};
  cache.put_negative(mk("a.com"), RRType::kA, dns::Rcode::kNXDomain, 60,
                     net::seconds(10));
  EXPECT_FALSE(cache.peek(mk("a.com"), RRType::kA)->lease.has_value());
}

TEST(ResolverCache, ApplyUpdateReplacesData) {
  ResolverCache cache;
  cache.put(a_set("a.com", 300, 1), 0);
  cache.apply_update(a_set("a.com", 300, 99), net::seconds(50));
  const CacheEntry* e = cache.peek(mk("a.com"), RRType::kA);
  EXPECT_EQ(std::get<dns::ARdata>(e->rrset.rdatas[0]).address.addr, 99u);
  EXPECT_EQ(e->expiry, net::seconds(350));  // TTL restarted at update time
}

TEST(ResolverCache, Invalidate) {
  ResolverCache cache;
  cache.put(a_set("a.com", 300, 1), 0);
  EXPECT_TRUE(cache.invalidate(mk("a.com"), RRType::kA));
  EXPECT_FALSE(cache.invalidate(mk("a.com"), RRType::kA));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ResolverCache, PurgeExpired) {
  ResolverCache cache;
  cache.put(a_set("a.com", 100, 1), 0);
  cache.put(a_set("b.com", 1000, 2), 0);
  CacheEntry& leased = cache.put(a_set("c.com", 100, 3), 0);
  leased.lease =
      LeaseState{net::seconds(5000), {net::make_ip(10, 0, 0, 1), 53}};
  EXPECT_EQ(cache.purge_expired(net::seconds(500)), 1u);  // only a.com
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.peek(mk("c.com"), RRType::kA), nullptr);
}

TEST(ResolverCache, LruEviction) {
  ResolverCache cache(2);
  cache.put(a_set("a.com", 300, 1), 0);
  cache.put(a_set("b.com", 300, 2), 0);
  // Touch a.com so b.com is the LRU victim.
  cache.lookup(mk("a.com"), RRType::kA, 0);
  cache.put(a_set("c.com", 300, 3), 0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.peek(mk("a.com"), RRType::kA), nullptr);
  EXPECT_EQ(cache.peek(mk("b.com"), RRType::kA), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResolverCache, EvictionSkipsLeasedEntries) {
  ResolverCache cache(2);
  CacheEntry& leased = cache.put(a_set("a.com", 300, 1), 0);
  leased.lease =
      LeaseState{net::seconds(5000), {net::make_ip(10, 0, 0, 1), 53}};
  cache.put(a_set("b.com", 300, 2), 0);
  cache.lookup(mk("b.com"), RRType::kA, 0);  // a.com is LRU but leased
  cache.put(a_set("c.com", 300, 3), 0);
  EXPECT_NE(cache.peek(mk("a.com"), RRType::kA), nullptr);  // survived
  EXPECT_EQ(cache.peek(mk("b.com"), RRType::kA), nullptr);  // evicted
}

TEST(ResolverCache, DistinctTypesAreDistinctEntries) {
  ResolverCache cache;
  cache.put(a_set("a.com", 300, 1), 0);
  dns::RRset txt{mk("a.com"), RRType::kTXT, dns::RRClass::kIN, 300, {}};
  txt.add(dns::TXTRdata{{"x"}});
  cache.put(txt, 0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.lookup(mk("a.com"), RRType::kA, 0), nullptr);
  EXPECT_NE(cache.lookup(mk("a.com"), RRType::kTXT, 0), nullptr);
}

TEST(ResolverCache, ForEachVisitsAll) {
  ResolverCache cache;
  cache.put(a_set("a.com", 300, 1), 0);
  cache.put(a_set("b.com", 300, 2), 0);
  std::size_t visited = 0;
  cache.for_each([&](const CacheKey&, const CacheEntry&) { ++visited; });
  EXPECT_EQ(visited, 2u);
}

}  // namespace
}  // namespace dnscup::server

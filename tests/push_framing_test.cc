// Push-plane wire framing: length-prefix round trips, incremental
// decoding across arbitrary stream fragmentation, corruption handling,
// and the SUBSCRIBE / SUBSCRIBE_ACK body codecs.
#include "push/framing.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

namespace dnscup::push {
namespace {

std::vector<uint8_t> bytes(std::initializer_list<uint8_t> list) {
  return std::vector<uint8_t>(list);
}

TEST(PushFraming, RoundTripsOneFrame) {
  std::vector<uint8_t> stream;
  const auto body = bytes({0xDE, 0xAD, 0xBE, 0xEF});
  ASSERT_TRUE(encode_frame(FrameKind::kPush, body, stream));
  // 2-byte length covers kind + body.
  ASSERT_EQ(stream.size(), 2 + 1 + body.size());
  EXPECT_EQ(stream[0], 0);
  EXPECT_EQ(stream[1], 5);

  FrameReader reader;
  reader.append(stream);
  Frame frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.kind, FrameKind::kPush);
  EXPECT_EQ(frame.body, body);
  EXPECT_FALSE(reader.next(frame));
  EXPECT_EQ(reader.buffered(), 0u);
  EXPECT_FALSE(reader.corrupt());
}

TEST(PushFraming, DecodesByteAtATime) {
  std::vector<uint8_t> stream;
  ASSERT_TRUE(encode_frame(FrameKind::kPing, {}, stream));
  ASSERT_TRUE(encode_frame(FrameKind::kPushAck, bytes({1, 2}), stream));

  FrameReader reader;
  std::vector<Frame> seen;
  for (uint8_t byte : stream) {
    reader.append(std::span(&byte, 1));
    Frame frame;
    while (reader.next(frame)) seen.push_back(frame);
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].kind, FrameKind::kPing);
  EXPECT_TRUE(seen[0].body.empty());
  EXPECT_EQ(seen[1].kind, FrameKind::kPushAck);
  EXPECT_EQ(seen[1].body, bytes({1, 2}));
}

TEST(PushFraming, ManyFramesInOneAppend) {
  std::vector<uint8_t> stream;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(encode_frame(FrameKind::kPush,
                             bytes({static_cast<uint8_t>(i)}), stream));
  }
  FrameReader reader;
  reader.append(stream);
  Frame frame;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(reader.next(frame)) << "frame " << i;
    EXPECT_EQ(frame.body, bytes({static_cast<uint8_t>(i)}));
  }
  EXPECT_FALSE(reader.next(frame));
}

TEST(PushFraming, ZeroLengthFramePoisonsTheStream) {
  // Length 0 cannot even hold the kind byte: framing violation.
  FrameReader reader;
  reader.append(bytes({0, 0, 0, 3, 1}));
  Frame frame;
  EXPECT_FALSE(reader.next(frame));
  EXPECT_TRUE(reader.corrupt());
  // Poisoned for good — the later well-formed bytes never decode.
  EXPECT_FALSE(reader.next(frame));
}

TEST(PushFraming, RejectsOversizedBody) {
  std::vector<uint8_t> stream;
  const std::vector<uint8_t> body(kMaxFrameBody + 1, 0xAB);
  EXPECT_FALSE(encode_frame(FrameKind::kPush, body, stream));
  EXPECT_TRUE(stream.empty());

  // The maximal body round-trips: length prefix 65535 = kind + 65534.
  const std::vector<uint8_t> max_body(kMaxFrameBody, 0xAB);
  EXPECT_TRUE(encode_frame(FrameKind::kPush, max_body, stream));
  FrameReader reader;
  reader.append(stream);
  Frame frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.body.size(), kMaxFrameBody);
}

TEST(PushFraming, SubscribeRoundTrip) {
  const net::Endpoint identity{net::make_ip(10, 1, 2, 3), 5353};
  const auto body = encode_subscribe(identity);
  const auto parsed = parse_subscribe(body);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->version, kPushProtocolVersion);
  EXPECT_EQ(parsed->identity, identity);
  EXPECT_TRUE(parsed->survivors.empty());
}

TEST(PushFraming, SubscribeWithoutSurvivorsStaysOnV1Wire) {
  // An empty survivor inventory must encode byte-identically to the v1
  // form, so warm-capable caches interoperate with v1 authorities.
  const net::Endpoint identity{net::make_ip(10, 1, 2, 3), 5353};
  SubscribeInfo info;
  info.identity = identity;
  EXPECT_EQ(encode_subscribe(info), encode_subscribe(identity));
}

TEST(PushFraming, SubscribeV2RoundTripsSurvivors) {
  SubscribeInfo info;
  info.identity = net::Endpoint{net::make_ip(192, 168, 0, 9), 4242};
  info.survivors.push_back(LeaseSurvivor{
      dns::Name::parse("www.example.com").value(), dns::RRType::kA,
      90'000'000});
  info.survivors.push_back(LeaseSurvivor{
      dns::Name::parse("mail.other.org").value(), dns::RRType::kAAAA,
      1'500'000});

  const auto body = encode_subscribe(info);
  EXPECT_EQ(body[0], kPushProtocolVersionReadopt);
  const auto parsed = parse_subscribe(body);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->version, kPushProtocolVersionReadopt);
  EXPECT_EQ(parsed->identity, info.identity);
  ASSERT_EQ(parsed->survivors.size(), 2u);
  EXPECT_EQ(parsed->survivors[0].name, info.survivors[0].name);
  EXPECT_EQ(parsed->survivors[0].type, dns::RRType::kA);
  EXPECT_EQ(parsed->survivors[0].remaining_us, 90'000'000u);
  EXPECT_EQ(parsed->survivors[1].name, info.survivors[1].name);
  EXPECT_EQ(parsed->survivors[1].type, dns::RRType::kAAAA);
  EXPECT_EQ(parsed->survivors[1].remaining_us, 1'500'000u);
}

TEST(PushFraming, SubscribeRejectsMalformedBodies) {
  const net::Endpoint identity{net::make_ip(10, 1, 2, 3), 5353};
  auto body = encode_subscribe(identity);

  auto wrong_version = body;
  wrong_version[0] = kPushProtocolVersionReadopt + 1;
  EXPECT_FALSE(parse_subscribe(wrong_version).has_value());

  auto truncated = body;
  truncated.pop_back();
  EXPECT_FALSE(parse_subscribe(truncated).has_value());

  auto trailing = body;
  trailing.push_back(0);
  EXPECT_FALSE(parse_subscribe(trailing).has_value());

  auto port_zero = body;
  port_zero[5] = 0;
  port_zero[6] = 0;
  EXPECT_FALSE(parse_subscribe(port_zero).has_value());

  EXPECT_FALSE(parse_subscribe({}).has_value());
}

TEST(PushFraming, SubscribeV2RejectsTruncation) {
  SubscribeInfo info;
  info.identity = net::Endpoint{net::make_ip(10, 1, 2, 3), 5353};
  info.survivors.push_back(LeaseSurvivor{
      dns::Name::parse("www.example.com").value(), dns::RRType::kA, 1000});
  const auto body = encode_subscribe(info);
  for (std::size_t cut = 1; cut < body.size() - 7; ++cut) {
    const std::span<const uint8_t> prefix(body.data(), body.size() - cut);
    EXPECT_FALSE(parse_subscribe(prefix).has_value())
        << "accepted a v2 body truncated by " << cut << " bytes";
  }
}

TEST(PushFraming, SubscribeAckRoundTrip) {
  std::vector<ZoneSerial> zones;
  zones.push_back({dns::Name::parse("example.com").value(), 42});
  zones.push_back({dns::Name::parse("other.org").value(), 7});

  const auto body = encode_subscribe_ack(zones);
  const auto parsed = parse_subscribe_ack(body);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->has_readoption);
  ASSERT_EQ(parsed->zones.size(), 2u);
  EXPECT_EQ(parsed->zones[0].zone, zones[0].zone);
  EXPECT_EQ(parsed->zones[0].serial, 42u);
  EXPECT_EQ(parsed->zones[1].zone, zones[1].zone);
  EXPECT_EQ(parsed->zones[1].serial, 7u);
}

TEST(PushFraming, SubscribeAckEmptyInventory) {
  const auto body = encode_subscribe_ack({});
  const auto parsed = parse_subscribe_ack(body);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->zones.empty());
  EXPECT_FALSE(parsed->has_readoption);
}

TEST(PushFraming, SubscribeAckV2RoundTripsVerdicts) {
  std::vector<ZoneSerial> zones;
  zones.push_back({dns::Name::parse("example.com").value(), 42});
  // 10 verdicts so the bitmask spans two bytes.
  std::vector<bool> bits = {true, false, true,  true, false,
                            true, true,  false, true, true};

  const auto body = encode_subscribe_ack(zones, bits);
  const auto parsed = parse_subscribe_ack(body);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->zones.size(), 1u);
  EXPECT_EQ(parsed->zones[0].serial, 42u);
  ASSERT_TRUE(parsed->has_readoption);
  EXPECT_EQ(parsed->resumed, 7u);
  EXPECT_EQ(parsed->rejected, 3u);
  ASSERT_EQ(parsed->resumed_bits.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(parsed->resumed_bits[i], bits[i]) << "verdict " << i;
  }
}

TEST(PushFraming, SubscribeAckV2AllRejected) {
  const auto body =
      encode_subscribe_ack({}, std::vector<bool>(5, false));
  const auto parsed = parse_subscribe_ack(body);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->has_readoption);
  EXPECT_EQ(parsed->resumed, 0u);
  EXPECT_EQ(parsed->rejected, 5u);
  ASSERT_EQ(parsed->resumed_bits.size(), 5u);
}

TEST(PushFraming, SubscribeAckRejectsTruncation) {
  std::vector<ZoneSerial> zones;
  zones.push_back({dns::Name::parse("example.com").value(), 42});
  auto body = encode_subscribe_ack(zones);
  for (std::size_t cut = 1; cut < body.size(); ++cut) {
    const std::span<const uint8_t> prefix(body.data(), body.size() - cut);
    EXPECT_FALSE(parse_subscribe_ack(prefix).has_value())
        << "accepted a body truncated by " << cut << " bytes";
  }
}

TEST(PushFraming, SubscribeAckV2RejectsTruncation) {
  std::vector<ZoneSerial> zones;
  zones.push_back({dns::Name::parse("example.com").value(), 42});
  auto body = encode_subscribe_ack(zones, {true, false, true});
  for (std::size_t cut = 1; cut < body.size(); ++cut) {
    const std::span<const uint8_t> prefix(body.data(), body.size() - cut);
    EXPECT_FALSE(parse_subscribe_ack(prefix).has_value())
        << "accepted a v2 ack truncated by " << cut << " bytes";
  }
}

}  // namespace
}  // namespace dnscup::push

// Push plane end-to-end over real loopback sockets: a ServingRuntime
// with the TCP subscription plane enabled and a CacheRuntime holding one
// persistent channel per worker.  Asserts the tentpole claims: zone
// changes travel over the channel (verified via per-channel metrics, not
// just convergence), a dropped channel degrades to the UDP+retransmit
// path without losing consistency, a reconnect re-adopts the lease
// identity without duplicate pushes, and shutdown drains every accepted
// update (counted, not stranded).
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "cachert/cache_runtime.h"
#include "dns/zone_text.h"
#include "net/udp_transport.h"
#include "runtime/runtime.h"

namespace dnscup {
namespace {

dns::Zone zone_with(const char* address, uint32_t serial, uint32_t ttl) {
  char text[512];
  std::snprintf(text, sizeof text,
                "$ORIGIN example.com.\n"
                "@ IN SOA ns1.example.com. admin.example.com. %u 7200 900 "
                "604800 300\n"
                "@ %u IN NS ns1.example.com.\n"
                "ns1 %u IN A 10.0.0.1\n"
                "www %u IN A %s\n",
                serial, ttl, ttl, ttl, address);
  auto zone =
      dns::parse_zone_text(text, dns::Name::parse("example.com").value());
  EXPECT_TRUE(zone.ok()) << (zone.ok() ? "" : zone.error().to_string());
  return std::move(zone).value();
}

class Client {
 public:
  Client() {
    auto bound = net::UdpTransport::bind(0);
    EXPECT_TRUE(bound.ok());
    udp_ = std::move(bound).value();
    udp_->set_receive_handler(
        [this](const net::Endpoint&, std::span<const uint8_t> data) {
          auto message = dns::Message::decode(data);
          if (!message.ok()) return;
          std::lock_guard lock(mutex_);
          responses_.push_back(std::move(message).value());
          cv_.notify_all();
        });
  }

  dns::Message query(const net::Endpoint& server, const char* name) {
    dns::Message query;
    query.id = next_id_++;
    query.flags.opcode = dns::Opcode::kQuery;
    query.flags.rd = true;
    query.questions.push_back(dns::Question{dns::Name::parse(name).value(),
                                            dns::RRType::kA,
                                            dns::RRClass::kIN, 0});
    udp_->send(server, query.encode());
    dns::Message response;
    std::unique_lock lock(mutex_);
    const bool got = cv_.wait_for(lock, std::chrono::seconds(5), [&] {
      for (const dns::Message& m : responses_) {
        if (m.flags.qr && m.id == query.id) {
          response = m;
          return true;
        }
      }
      return false;
    });
    EXPECT_TRUE(got) << "no response for " << name;
    return response;
  }

  static std::string answer_a(const dns::Message& response) {
    for (const auto& rr : response.answers) {
      if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
        return a->address.to_string();
      }
    }
    return "";
  }

 private:
  std::unique_ptr<net::UdpTransport> udp_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<dns::Message> responses_;
  uint16_t next_id_ = 1;
};

uint64_t counter_sum(const metrics::Snapshot& snapshot, const char* name,
                     const char* key = nullptr,
                     const char* value = nullptr) {
  uint64_t total = 0;
  for (const auto& entry : snapshot.entries) {
    if (entry.kind != metrics::InstrumentKind::kCounter) continue;
    if (entry.name != name) continue;
    if (key != nullptr) {
      bool match = false;
      for (const auto& [k, v] : entry.labels) {
        if (k == key && v == value) {
          match = true;
          break;
        }
      }
      if (!match) continue;
    }
    total += entry.counter_value;
  }
  return total;
}

struct Pair {
  std::unique_ptr<runtime::ServingRuntime> authority;
  std::unique_ptr<cachert::CacheRuntime> cache;
};

Pair start_pair(uint32_t ttl, int cache_workers = 1) {
  runtime::Config auth_config;
  auth_config.port = 0;
  auth_config.workers = 1;
  auth_config.push_plane = true;
  auth_config.push_port = 0;
  auto authority = runtime::ServingRuntime::start(
      auth_config, {zone_with("10.1.0.10", 1, ttl)});
  EXPECT_TRUE(authority.ok());

  cachert::Config cache_config;
  cache_config.port = 0;
  cache_config.workers = cache_workers;
  cache_config.upstreams = {authority.value()->endpoints()[0]};
  cache_config.push_plane = true;
  cache_config.push_authority = authority.value()->push_endpoint();
  cache_config.push.reconnect_min = net::milliseconds(50);
  cache_config.push.reconnect_max = net::milliseconds(200);
  auto cache = cachert::CacheRuntime::start(cache_config);
  EXPECT_TRUE(cache.ok());
  return Pair{std::move(authority).value(), std::move(cache).value()};
}

/// Spins until `pred` holds, up to `deadline`.
template <class Pred>
bool spin_until(Pred pred,
                std::chrono::milliseconds deadline =
                    std::chrono::milliseconds(5000)) {
  const auto start = std::chrono::steady_clock::now();
  while (!pred()) {
    if (std::chrono::steady_clock::now() - start >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

std::chrono::milliseconds poll_until_address(
    Client& client, const net::Endpoint& cache, const char* name,
    const std::string& address, std::chrono::milliseconds deadline) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const auto response = client.query(cache, name);
    if (Client::answer_a(response) == address) {
      return std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
    }
    if (std::chrono::steady_clock::now() - start >= deadline) {
      return deadline;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

// Tentpole: the CACHE-UPDATE travels over the TCP channel — asserted via
// the channel counters on both ends, not merely by convergence (which
// the UDP path could also have provided).
TEST(E2ePush, ZoneChangeTravelsOverTheChannel) {
  constexpr uint32_t kTtl = 300;
  Pair pair = start_pair(kTtl);
  ASSERT_NE(pair.authority->push_plane(), nullptr);
  Client client;
  const net::Endpoint cache = pair.cache->endpoints()[0];

  ASSERT_TRUE(spin_until([&] { return pair.cache->push_connected() == 1; }))
      << "push channel never connected";

  const auto warm = client.query(cache, "www.example.com");
  EXPECT_EQ(Client::answer_a(warm), "10.1.0.10");
  EXPECT_EQ(pair.authority->live_leases(), 1u);

  // The channel's SUBSCRIBE identity is the lease identity: the worker's
  // upstream socket.
  EXPECT_TRUE(pair.authority->push_plane()->subscribed(
      pair.cache->upstream_endpoints()[0]));

  pair.authority->reload_zone(zone_with("10.9.9.9", 2, kTtl));
  const auto took = poll_until_address(client, cache, "www.example.com",
                                       "10.9.9.9",
                                       std::chrono::milliseconds(5000));
  ASSERT_LT(took.count(), 5000) << "push never reached the cache";

  // Authority side: the update went out on the channel, was acked on the
  // channel, and never rode UDP.
  ASSERT_TRUE(spin_until([&] {
    const auto snapshot = pair.authority->metrics();
    return counter_sum(snapshot, "cache_update_messages", "result",
                       "acked") >= 1;
  })) << "channel ack never resolved";
  const auto auth = pair.authority->metrics();
  EXPECT_GE(counter_sum(auth, "cache_update_messages", "result",
                        "sent_channel"),
            1u);
  EXPECT_EQ(counter_sum(auth, "cache_update_messages", "result", "sent"),
            0u);
  EXPECT_EQ(counter_sum(auth, "cache_update_messages", "result", "fallback"),
            0u);
  EXPECT_GE(counter_sum(auth, "push_frames"), 2u);
  EXPECT_GE(counter_sum(auth, "push_connects_total"), 1u);

  // Cache side: the update arrived via the channel handler and the
  // SUBSCRIBE_ACK inventory was consumed.
  const auto cached = pair.cache->metrics();
  EXPECT_GE(counter_sum(cached, "lease_client_updates", "result", "channel"),
            1u);
  EXPECT_GE(counter_sum(cached, "lease_client_updates", "result", "applied"),
            1u);
  EXPECT_GE(counter_sum(cached, "lease_client_resyncs"), 1u);

  pair.cache->stop();
  pair.authority->stop();
}

// A dropped channel must not cost consistency: the authority falls back
// to the UDP+retransmit path and the cache still converges.
TEST(E2ePush, DroppedChannelFallsBackToUdp) {
  constexpr uint32_t kTtl = 300;
  Pair pair = start_pair(kTtl);
  Client client;
  const net::Endpoint cache = pair.cache->endpoints()[0];

  ASSERT_TRUE(spin_until([&] { return pair.cache->push_connected() == 1; }));
  client.query(cache, "www.example.com");
  EXPECT_EQ(pair.authority->live_leases(), 1u);

  // Kill the channel and wait for the authority to notice the hangup.
  pair.cache->set_push_paused(true);
  ASSERT_TRUE(spin_until([&] {
    return pair.authority->push_plane()->subscription_count() == 0;
  })) << "authority never noticed the dropped channel";

  pair.authority->reload_zone(zone_with("10.9.9.9", 2, kTtl));
  const auto took = poll_until_address(client, cache, "www.example.com",
                                       "10.9.9.9",
                                       std::chrono::milliseconds(5000));
  ASSERT_LT(took.count(), 5000) << "UDP fallback never converged";

  const auto auth = pair.authority->metrics();
  EXPECT_GE(counter_sum(auth, "cache_update_messages", "result", "sent"),
            1u);
  EXPECT_EQ(counter_sum(auth, "cache_update_messages", "result",
                        "sent_channel"),
            0u);

  pair.cache->stop();
  pair.authority->stop();
}

// A reconnect re-adopts the lease identity: the resync inventory shows no
// serial gap (the UDP fallback already delivered the change), so no
// duplicate push and no refetch storm.
TEST(E2ePush, ReconnectReAdoptsLeaseWithoutDuplicatePush) {
  constexpr uint32_t kTtl = 300;
  Pair pair = start_pair(kTtl);
  Client client;
  const net::Endpoint cache = pair.cache->endpoints()[0];

  ASSERT_TRUE(spin_until([&] { return pair.cache->push_connected() == 1; }));
  client.query(cache, "www.example.com");

  pair.cache->set_push_paused(true);
  ASSERT_TRUE(spin_until([&] {
    return pair.authority->push_plane()->subscription_count() == 0;
  }));

  // The change lands over UDP while the channel is down; the lease
  // client records the new zone serial from the applied update.
  pair.authority->reload_zone(zone_with("10.9.9.9", 2, kTtl));
  ASSERT_LT(poll_until_address(client, cache, "www.example.com", "10.9.9.9",
                               std::chrono::milliseconds(5000))
                .count(),
            5000);
  const auto applied_before =
      counter_sum(pair.cache->metrics(), "lease_client_updates", "result",
                  "applied");

  pair.cache->set_push_paused(false);
  ASSERT_TRUE(spin_until([&] { return pair.cache->push_connected() == 1; }));
  EXPECT_GE(pair.cache->push_connects(), 2u);
  ASSERT_TRUE(spin_until([&] {
    return counter_sum(pair.cache->metrics(), "lease_client_resyncs") >= 2;
  })) << "reconnect never delivered the resync inventory";

  // Same subscription slot, same lease, no duplicate update, no refetch:
  // the resync found the serials already in agreement.
  EXPECT_EQ(pair.authority->push_plane()->subscription_count(), 1u);
  EXPECT_EQ(pair.authority->live_leases(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto cached = pair.cache->metrics();
  EXPECT_EQ(counter_sum(cached, "lease_client_updates", "result", "applied"),
            applied_before);
  EXPECT_EQ(counter_sum(cached, "lease_client_resync_refetches"), 0u);

  // The re-adopted channel carries the next change.
  pair.authority->reload_zone(zone_with("10.7.7.7", 3, kTtl));
  ASSERT_LT(poll_until_address(client, cache, "www.example.com", "10.7.7.7",
                               std::chrono::milliseconds(5000))
                .count(),
            5000);
  EXPECT_GE(counter_sum(pair.authority->metrics(), "cache_update_messages",
                        "result", "sent_channel"),
            1u);

  pair.cache->stop();
  pair.authority->stop();
}

// Satellite: SIGTERM-path shutdown drains the coalescing and retransmit
// queues — updates the plane or the notifier accepted are flushed and
// counted, never silently stranded.
TEST(E2ePush, ShutdownDrainsPendingUpdates) {
  constexpr uint32_t kTtl = 300;
  Pair pair = start_pair(kTtl);
  Client client;
  const net::Endpoint cache = pair.cache->endpoints()[0];

  ASSERT_TRUE(spin_until([&] { return pair.cache->push_connected() == 1; }));
  client.query(cache, "www.example.com");
  EXPECT_EQ(pair.authority->live_leases(), 1u);

  // Take the cache away entirely: its lease stays live at the authority,
  // so the next change creates a pending update that will never be acked.
  pair.cache->stop();
  pair.authority->reload_zone(zone_with("10.9.9.9", 2, kTtl));

  // The graceful drain must resolve it: one final UDP copy, counted as
  // shutdown_flush, leaving nothing in flight.
  pair.authority->stop();
  const auto auth = pair.authority->metrics();
  EXPECT_GE(counter_sum(auth, "cache_update_messages", "result",
                        "shutdown_flush"),
            1u);

  // Total conservation: everything ever pushed resolved to exactly one
  // terminal state (acked, failed, or flushed at shutdown).
  const uint64_t terminal =
      counter_sum(auth, "cache_update_messages", "result", "acked") +
      counter_sum(auth, "cache_update_messages", "result", "failed") +
      counter_sum(auth, "cache_update_messages", "result", "shutdown_flush");
  EXPECT_GE(terminal, 1u);
}

// Multi-worker cache: one channel per worker, all subscribed, pushes land
// on the owning worker's channel.
TEST(E2ePush, MultiWorkerCacheSubscribesPerWorker) {
  constexpr uint32_t kTtl = 300;
  Pair pair = start_pair(kTtl, /*cache_workers=*/2);
  Client client;
  const net::Endpoint cache = pair.cache->endpoints()[0];

  ASSERT_TRUE(spin_until([&] { return pair.cache->push_connected() == 2; }))
      << "not every worker connected its channel";
  ASSERT_TRUE(spin_until([&] {
    return pair.authority->push_plane()->subscription_count() == 2;
  }));

  client.query(cache, "www.example.com");
  pair.authority->reload_zone(zone_with("10.9.9.9", 2, kTtl));
  ASSERT_LT(poll_until_address(client, cache, "www.example.com", "10.9.9.9",
                               std::chrono::milliseconds(5000))
                .count(),
            5000);
  EXPECT_GE(counter_sum(pair.authority->metrics(), "cache_update_messages",
                        "result", "sent_channel"),
            1u);

  pair.cache->stop();
  pair.authority->stop();
}

}  // namespace
}  // namespace dnscup

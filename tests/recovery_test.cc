// Crash-recovery acceptance tests for the durable lease-state store.
//
// The central property (ISSUE acceptance criterion): kill the authority
// at an *arbitrary* WAL byte offset, restart it on what survived, and the
// recovered lease set must exactly match a never-crashed control that
// applied only the operations whose WAL frames fully reached "disk" —
// compared via the byte-identical track-file serialization.  On top of
// that, a zone change after the restart must reach every surviving
// leaseholder, resumed fan-out must cover zones that changed while the
// authority was down, and recovered leases must still expire on schedule
// (the re-armed prune timer) with the prune journaled durably.
#include <gtest/gtest.h>

#include "core/cache_update.h"
#include "core/dnscup_authority.h"
#include "net/sim_network.h"
#include "store/lease_store.h"

namespace dnscup::core {
namespace {

using dns::Name;
using dns::RRType;
using store::FaultInjectingStorage;
using store::FaultPlan;
using store::LeaseStore;
using store::MemStorage;

Name mk(const char* text) { return Name::parse(text).value(); }
dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

constexpr net::Endpoint kAuthority{net::make_ip(10, 0, 1, 1), 53};
constexpr net::Endpoint kCacheA{net::make_ip(10, 0, 2, 1), 53};
constexpr net::Endpoint kCacheB{net::make_ip(10, 0, 2, 2), 53};
constexpr net::Endpoint kCacheC{net::make_ip(10, 0, 2, 3), 53};

dns::Zone make_zone(uint32_t serial) {
  dns::SOARdata soa;
  soa.mname = mk("ns1.example.com");
  soa.rname = mk("admin.example.com");
  soa.serial = serial;
  dns::Zone z = dns::Zone::make(mk("example.com"), soa, 300,
                                {mk("ns1.example.com")}, 300);
  z.add_record(mk("www.example.com"), RRType::kA, 300,
               dns::ARdata{ip("192.0.2.80")});
  z.add_record(mk("ftp.example.com"), RRType::kA, 300,
               dns::ARdata{ip("192.0.2.81")});
  return z;
}

LeaseStore::Config store_config() {
  LeaseStore::Config config;
  config.dir = "state";
  config.fsync = store::FsyncPolicy::kAlways;
  return config;
}

// ---- Kill-and-restart equivalence -----------------------------------------

/// One journaled track-file mutation of the scripted workload.
struct Op {
  enum Kind { kGrant, kRevoke, kPrune } kind;
  net::Endpoint holder;
  const char* name;
  net::SimTime at;
  net::Duration length;
};

const std::vector<Op>& workload() {
  static const std::vector<Op> ops = {
      {Op::kGrant, kCacheA, "www.example.com", net::seconds(0),
       net::seconds(3600)},
      {Op::kGrant, kCacheB, "www.example.com", net::seconds(1),
       net::seconds(5)},
      {Op::kGrant, kCacheC, "ftp.example.com", net::seconds(2),
       net::seconds(3600)},
      {Op::kGrant, kCacheA, "www.example.com", net::seconds(3),
       net::seconds(3600)},                                    // renewal
      {Op::kPrune, {}, nullptr, net::seconds(30), 0},          // drops B
      {Op::kRevoke, kCacheC, "ftp.example.com", net::seconds(31), 0},
      {Op::kGrant, kCacheB, "ftp.example.com", net::seconds(32),
       net::seconds(3600)},
  };
  return ops;
}

void apply(TrackFile& track, const Op& op) {
  switch (op.kind) {
    case Op::kGrant:
      track.grant(op.holder, mk(op.name), RRType::kA, op.at, op.length);
      break;
    case Op::kRevoke:
      track.revoke(op.holder, mk(op.name), RRType::kA);
      break;
    case Op::kPrune:
      track.prune(op.at);
      break;
  }
}

/// WAL size (bytes) after each op when nothing crashes; boundary[i] is the
/// offset up to which the first i+1 ops are fully durable.
std::vector<uint64_t> op_boundaries() {
  MemStorage mem;
  RecoveredState state;
  auto store = LeaseStore::open(&mem, store_config(), &state);
  EXPECT_TRUE(store.ok());
  TrackFile track;
  track.set_journal(store.value().get());
  std::vector<uint64_t> boundaries;
  for (const Op& op : workload()) {
    apply(track, op);
    boundaries.push_back(mem.files().at("state/" + store::wal_segment_name(1))
                             .size());
  }
  return boundaries;
}

/// Serialization of a control track file that applied the first
/// `ops_survived` ops and nothing else.
std::string control_serialization(std::size_t ops_survived,
                                  net::SimTime now) {
  TrackFile control;
  for (std::size_t i = 0; i < ops_survived; ++i) {
    apply(control, workload()[i]);
  }
  return control.serialize(now);
}

TEST(KillAndRestart, RecoveryMatchesControlAtEveryCrashOffset) {
  const std::vector<uint64_t> boundaries = op_boundaries();
  const net::SimTime check_at = net::seconds(40);

  // Crash at every op boundary (all of the last op survives) and a few
  // bytes into every frame (the op is torn and must be dropped).
  struct Crash {
    uint64_t offset;
    std::size_t ops_survived;
  };
  std::vector<Crash> crashes;
  crashes.push_back({16, 0});  // segment header only
  crashes.push_back({20, 0});  // torn first frame
  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    crashes.push_back({boundaries[i], i + 1});
    crashes.push_back({boundaries[i] + 3, i + 1});  // tears frame i+2
  }
  crashes.back().offset = boundaries.back();  // no frame after the last

  for (const Crash& crash : crashes) {
    SCOPED_TRACE("crash at WAL offset " + std::to_string(crash.offset));
    MemStorage disk;
    FaultPlan plan;
    plan.crash_after_bytes = crash.offset;
    FaultInjectingStorage faulty(&disk, plan);

    RecoveredState state;
    auto store = LeaseStore::open(&faulty, store_config(), &state);
    ASSERT_TRUE(store.ok());
    TrackFile track;
    track.set_journal(store.value().get());
    for (const Op& op : workload()) apply(track, op);  // runs into the crash

    // "Reboot": recover from the bytes that actually landed.
    RecoveredState recovered;
    auto reopened = LeaseStore::open(&disk, store_config(), &recovered);
    ASSERT_TRUE(reopened.ok()) << reopened.error().to_string();
    TrackFile restarted;
    for (const Lease& lease : recovered.leases) restarted.restore(lease);

    EXPECT_EQ(restarted.serialize(check_at),
              control_serialization(crash.ops_survived, check_at));
  }
}

// ---- Full-stack restart: fan-out resumes, timers re-arm -------------------

/// An authority stack (event loop, sim network, server, DNScup wrapper)
/// with an attached LeaseStore journal, plus acking caches.
struct Stack {
  explicit Stack(MemStorage* disk, uint32_t zone_serial) {
    auth_transport = &network.bind(kAuthority);
    server.emplace(*auth_transport, loop);
    server->add_zone(make_zone(zone_serial));
    auto opened = LeaseStore::open(disk, store_config(), &recovered);
    EXPECT_TRUE(opened.ok());
    store = std::move(opened).value();
    DnscupAuthority::Config config;
    config.max_lease = [](const Name&, RRType) { return net::hours(4); };
    config.journal = store.get();
    dnscup.emplace(*server, loop, std::move(config));
  }

  /// Binds an acking cache that records the CACHE-UPDATEs it receives.
  void add_cache(const net::Endpoint& endpoint,
                 std::vector<dns::Message>* received) {
    auto& transport = network.bind(endpoint);
    transport.set_receive_handler(
        [&transport, received](const net::Endpoint& from,
                               std::span<const uint8_t> data) {
          auto m = dns::Message::decode(data);
          ASSERT_TRUE(m.ok());
          received->push_back(m.value());
          transport.send(from, make_cache_update_ack(m.value()).encode());
        });
  }

  net::EventLoop loop;
  net::SimNetwork network{loop, /*seed=*/1};
  net::SimTransport* auth_transport = nullptr;
  std::optional<server::AuthServer> server;
  RecoveredState recovered;
  std::unique_ptr<LeaseStore> store;
  std::optional<DnscupAuthority> dnscup;
};

TEST(KillAndRestart, ZoneChangedWhileDownReachesEverySurvivingHolder) {
  MemStorage disk;
  {
    // First life: recover (anchors zone serial 7 in the journal), grant
    // two leases on www and one on ftp, then "power loss" — the Stack is
    // simply destroyed with no shutdown snapshot.
    Stack first(&disk, /*zone_serial=*/7);
    first.dnscup->recover(first.recovered);
    TrackFile& track = first.dnscup->track_file();
    track.grant(kCacheA, mk("www.example.com"), RRType::kA, 0,
                net::hours(4));
    track.grant(kCacheB, mk("www.example.com"), RRType::kA, 0,
                net::seconds(5));  // will be expired by the restart
    track.grant(kCacheC, mk("ftp.example.com"), RRType::kA, 0,
                net::hours(4));
  }

  // Second life: the zone changed while the authority was down (serial 7
  // -> 9).  Recovery must push the changed zone's records to the holders
  // that survived — and only to them.
  Stack second(&disk, /*zone_serial=*/9);
  std::vector<dns::Message> at_a, at_b, at_c;
  second.add_cache(kCacheA, &at_a);
  second.add_cache(kCacheB, &at_b);
  second.add_cache(kCacheC, &at_c);
  second.loop.run_until(net::seconds(10));  // B's 5s lease lapses

  ASSERT_EQ(second.recovered.leases.size(), 3u);
  const auto report = second.dnscup->recover(second.recovered);
  EXPECT_EQ(report.leases_restored, 2u);
  EXPECT_EQ(report.leases_expired, 1u);
  EXPECT_EQ(report.zones_changed, 1u);
  EXPECT_EQ(report.changes_pushed, 2u);  // www for A, ftp for C
  second.loop.run_for(net::seconds(5));

  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_TRUE(at_b.empty());
  ASSERT_EQ(at_c.size(), 1u);
  EXPECT_EQ(second.dnscup->notifier().stats().acks_received, 2u);
  EXPECT_EQ(second.dnscup->notifier().in_flight(), 0u);
}

TEST(KillAndRestart, UnchangedZoneTriggersNoFanOut) {
  MemStorage disk;
  {
    Stack first(&disk, /*zone_serial=*/7);
    first.dnscup->recover(first.recovered);
    first.dnscup->track_file().grant(kCacheA, mk("www.example.com"),
                                     RRType::kA, 0, net::hours(4));
  }
  Stack second(&disk, /*zone_serial=*/7);
  std::vector<dns::Message> at_a;
  second.add_cache(kCacheA, &at_a);
  const auto report = second.dnscup->recover(second.recovered);
  EXPECT_EQ(report.leases_restored, 1u);
  EXPECT_EQ(report.zones_changed, 0u);
  EXPECT_EQ(report.changes_pushed, 0u);
  second.loop.run_for(net::seconds(5));
  EXPECT_TRUE(at_a.empty());
  EXPECT_EQ(second.network.packets_delivered(), 0u);
}

TEST(KillAndRestart, PostRestartZoneChangeReachesSurvivors) {
  MemStorage disk;
  {
    Stack first(&disk, /*zone_serial=*/7);
    first.dnscup->recover(first.recovered);
    TrackFile& track = first.dnscup->track_file();
    track.grant(kCacheA, mk("www.example.com"), RRType::kA, 0,
                net::hours(4));
    track.grant(kCacheB, mk("www.example.com"), RRType::kA, 0,
                net::hours(4));
  }

  Stack second(&disk, /*zone_serial=*/7);
  std::vector<dns::Message> at_a, at_b;
  second.add_cache(kCacheA, &at_a);
  second.add_cache(kCacheB, &at_b);
  second.dnscup->recover(second.recovered);

  // A fresh change after the restart (operator zone reload): every
  // surviving holder hears it.
  dns::Zone edited = make_zone(/*serial=*/7);
  edited.add_record(mk("www.example.com"), RRType::kA, 300,
                    dns::ARdata{ip("198.51.100.9")});
  EXPECT_GE(second.server->reload_zone(std::move(edited)), 1u);
  second.loop.run_for(net::seconds(5));

  EXPECT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_b.size(), 1u);
  // The new serial was journaled: another restart sees it as unchanged.
  const dns::Zone* zone = second.server->find_zone(mk("www.example.com"));
  ASSERT_NE(zone, nullptr);
  Stack third(&disk, /*zone_serial=*/zone->serial());
  const auto report = third.dnscup->recover(third.recovered);
  EXPECT_EQ(report.zones_changed, 0u);
}

TEST(KillAndRestart, RecoveredLeasesExpireViaRearmedTimerAndAreJournaled) {
  MemStorage disk;
  {
    Stack first(&disk, /*zone_serial=*/7);
    first.dnscup->recover(first.recovered);
    first.dnscup->track_file().grant(kCacheA, mk("www.example.com"),
                                     RRType::kA, 0, net::seconds(60));
  }
  Stack second(&disk, /*zone_serial=*/7);
  second.dnscup->recover(second.recovered);
  EXPECT_EQ(second.dnscup->track_file().size(), 1u);

  // No queries, no changes: only the re-armed expiry timer can prune.
  second.loop.run_until(net::seconds(120));
  EXPECT_EQ(second.dnscup->track_file().size(), 0u);

  // The prune was journaled, so a third life starts empty.
  Stack third(&disk, /*zone_serial=*/7);
  EXPECT_TRUE(third.recovered.leases.empty());
}

}  // namespace
}  // namespace dnscup::core

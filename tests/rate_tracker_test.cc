#include <gtest/gtest.h>

#include "core/rate_tracker.h"

namespace dnscup::core {
namespace {

using dns::Name;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }

TEST(RateTracker, UnknownKeyIsZero) {
  RateTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.rate(mk("x.com"), RRType::kA, 0), 0.0);
  EXPECT_EQ(tracker.count(mk("x.com"), RRType::kA, 0), 0u);
}

TEST(RateTracker, CountsWithinWindow) {
  RateTracker tracker(net::hours(1));
  for (int i = 0; i < 60; ++i) {
    tracker.record(mk("x.com"), RRType::kA, net::minutes(i));
  }
  // 60 events over the last hour -> 1/min.
  const double rate = tracker.rate(mk("x.com"), RRType::kA, net::minutes(59));
  EXPECT_NEAR(rate, 60.0 / 3600.0, 1e-9);
}

TEST(RateTracker, OldSamplesFallOut) {
  RateTracker tracker(net::seconds(100));
  tracker.record(mk("x.com"), RRType::kA, 0);
  tracker.record(mk("x.com"), RRType::kA, net::seconds(10));
  EXPECT_EQ(tracker.count(mk("x.com"), RRType::kA, net::seconds(50)), 2u);
  EXPECT_EQ(tracker.count(mk("x.com"), RRType::kA, net::seconds(105)), 1u);
  EXPECT_EQ(tracker.count(mk("x.com"), RRType::kA, net::seconds(200)), 0u);
  EXPECT_DOUBLE_EQ(tracker.rate(mk("x.com"), RRType::kA, net::seconds(200)),
                   0.0);
}

TEST(RateTracker, KeysAreIndependent) {
  RateTracker tracker;
  tracker.record(mk("a.com"), RRType::kA, 0);
  tracker.record(mk("a.com"), RRType::kA, 0);
  tracker.record(mk("b.com"), RRType::kA, 0);
  tracker.record(mk("a.com"), RRType::kTXT, 0);
  EXPECT_EQ(tracker.count(mk("a.com"), RRType::kA, 0), 2u);
  EXPECT_EQ(tracker.count(mk("b.com"), RRType::kA, 0), 1u);
  EXPECT_EQ(tracker.count(mk("a.com"), RRType::kTXT, 0), 1u);
  EXPECT_EQ(tracker.tracked_keys(), 3u);
}

TEST(RateTracker, SampleCapBoundsMemory) {
  RateTracker tracker(net::hours(1), 16);
  for (int i = 0; i < 1000; ++i) {
    tracker.record(mk("hot.com"), RRType::kA, net::seconds(i));
  }
  EXPECT_LE(tracker.count(mk("hot.com"), RRType::kA, net::seconds(999)),
            16u);
}

TEST(RateTracker, PruneDropsEmptyKeys) {
  RateTracker tracker(net::seconds(10));
  tracker.record(mk("a.com"), RRType::kA, 0);
  tracker.record(mk("b.com"), RRType::kA, net::seconds(100));
  EXPECT_EQ(tracker.prune(net::seconds(105)), 1u);
  EXPECT_EQ(tracker.tracked_keys(), 1u);
}

TEST(RateTracker, RateMatchesPoissonStream) {
  RateTracker tracker(net::minutes(10));
  // 2 events/second for 10 minutes.
  net::SimTime t = 0;
  for (int i = 0; i < 1200; ++i) {
    t += net::milliseconds(500);
    tracker.record(mk("p.com"), RRType::kA, t);
  }
  const double rate = tracker.rate(mk("p.com"), RRType::kA, t);
  // The 256-sample cap keeps only the last 128 s: rate estimate still
  // counts live samples over the window.
  EXPECT_GT(rate, 0.0);
}

TEST(RateTracker, CaseInsensitiveNames) {
  RateTracker tracker;
  tracker.record(mk("WWW.X.COM"), RRType::kA, 0);
  EXPECT_EQ(tracker.count(mk("www.x.com"), RRType::kA, 0), 1u);
}

TEST(RateTracker, IdleKeysDecayUnderTrafficWithoutExplicitPrune) {
  RateTracker tracker(net::seconds(10));
  // 64 keys that go idle immediately.
  for (int i = 0; i < 64; ++i) {
    tracker.record(mk(("idle" + std::to_string(i) + ".com").c_str()),
                   RRType::kA, 0);
  }
  EXPECT_EQ(tracker.tracked_keys(), 64u);
  // Sustained traffic on one hot key, far past the window: the amortized
  // auto-prune (every ~size/2 recordings) must evict the idle keys with
  // no prune() call from the caller.
  for (int i = 0; i < 200; ++i) {
    tracker.record(mk("hot.com"), RRType::kA, net::seconds(100 + i));
  }
  EXPECT_EQ(tracker.tracked_keys(), 1u);
}

TEST(RateTracker, MaxKeysCapDropsNewKeysAndCounts) {
  RateTracker tracker(net::hours(1), 256, 8);
  for (int i = 0; i < 20; ++i) {
    tracker.record(mk(("k" + std::to_string(i) + ".com").c_str()),
                   RRType::kA, 0);
  }
  // All 20 keys are in-window, so pruning frees nothing: 8 admitted, the
  // rest dropped and counted.
  EXPECT_EQ(tracker.tracked_keys(), 8u);
  EXPECT_EQ(tracker.keys_dropped(), 12u);
  // An established key still records at the cap.
  tracker.record(mk("k0.com"), RRType::kA, net::seconds(1));
  EXPECT_EQ(tracker.count(mk("k0.com"), RRType::kA, net::seconds(1)), 2u);
}

TEST(RateTracker, CapAdmitsAfterPruneFreesRoom) {
  RateTracker tracker(net::seconds(10), 256, 4);
  for (int i = 0; i < 4; ++i) {
    tracker.record(mk(("old" + std::to_string(i) + ".com").c_str()),
                   RRType::kA, 0);
  }
  // At the cap, but every old key is stale by now: the admission-time
  // prune makes room, so the new key is tracked, not dropped.
  tracker.record(mk("new.com"), RRType::kA, net::seconds(100));
  EXPECT_EQ(tracker.keys_dropped(), 0u);
  EXPECT_EQ(tracker.count(mk("new.com"), RRType::kA, net::seconds(100)), 1u);
}

TEST(RateTracker, KeysGaugeTracksOccupancy) {
  metrics::MetricsRegistry registry;
  RateTracker tracker(net::seconds(10));
  tracker.set_keys_gauge(registry.gauge("rate_tracker_keys"));
  auto gauge_value = [&] {
    for (const auto& entry : registry.snapshot(0).entries) {
      if (entry.name == "rate_tracker_keys") return entry.gauge_value;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(gauge_value(), 0.0);
  tracker.record(mk("a.com"), RRType::kA, 0);
  tracker.record(mk("b.com"), RRType::kA, 0);
  EXPECT_DOUBLE_EQ(gauge_value(), 2.0);
  tracker.prune(net::seconds(100));
  EXPECT_DOUBLE_EQ(gauge_value(), 0.0);
}

}  // namespace
}  // namespace dnscup::core

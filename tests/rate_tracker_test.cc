#include <gtest/gtest.h>

#include "core/rate_tracker.h"

namespace dnscup::core {
namespace {

using dns::Name;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }

TEST(RateTracker, UnknownKeyIsZero) {
  RateTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.rate(mk("x.com"), RRType::kA, 0), 0.0);
  EXPECT_EQ(tracker.count(mk("x.com"), RRType::kA, 0), 0u);
}

TEST(RateTracker, CountsWithinWindow) {
  RateTracker tracker(net::hours(1));
  for (int i = 0; i < 60; ++i) {
    tracker.record(mk("x.com"), RRType::kA, net::minutes(i));
  }
  // 60 events over the last hour -> 1/min.
  const double rate = tracker.rate(mk("x.com"), RRType::kA, net::minutes(59));
  EXPECT_NEAR(rate, 60.0 / 3600.0, 1e-9);
}

TEST(RateTracker, OldSamplesFallOut) {
  RateTracker tracker(net::seconds(100));
  tracker.record(mk("x.com"), RRType::kA, 0);
  tracker.record(mk("x.com"), RRType::kA, net::seconds(10));
  EXPECT_EQ(tracker.count(mk("x.com"), RRType::kA, net::seconds(50)), 2u);
  EXPECT_EQ(tracker.count(mk("x.com"), RRType::kA, net::seconds(105)), 1u);
  EXPECT_EQ(tracker.count(mk("x.com"), RRType::kA, net::seconds(200)), 0u);
  EXPECT_DOUBLE_EQ(tracker.rate(mk("x.com"), RRType::kA, net::seconds(200)),
                   0.0);
}

TEST(RateTracker, KeysAreIndependent) {
  RateTracker tracker;
  tracker.record(mk("a.com"), RRType::kA, 0);
  tracker.record(mk("a.com"), RRType::kA, 0);
  tracker.record(mk("b.com"), RRType::kA, 0);
  tracker.record(mk("a.com"), RRType::kTXT, 0);
  EXPECT_EQ(tracker.count(mk("a.com"), RRType::kA, 0), 2u);
  EXPECT_EQ(tracker.count(mk("b.com"), RRType::kA, 0), 1u);
  EXPECT_EQ(tracker.count(mk("a.com"), RRType::kTXT, 0), 1u);
  EXPECT_EQ(tracker.tracked_keys(), 3u);
}

TEST(RateTracker, SampleCapBoundsMemory) {
  RateTracker tracker(net::hours(1), 16);
  for (int i = 0; i < 1000; ++i) {
    tracker.record(mk("hot.com"), RRType::kA, net::seconds(i));
  }
  EXPECT_LE(tracker.count(mk("hot.com"), RRType::kA, net::seconds(999)),
            16u);
}

TEST(RateTracker, PruneDropsEmptyKeys) {
  RateTracker tracker(net::seconds(10));
  tracker.record(mk("a.com"), RRType::kA, 0);
  tracker.record(mk("b.com"), RRType::kA, net::seconds(100));
  EXPECT_EQ(tracker.prune(net::seconds(105)), 1u);
  EXPECT_EQ(tracker.tracked_keys(), 1u);
}

TEST(RateTracker, RateMatchesPoissonStream) {
  RateTracker tracker(net::minutes(10));
  // 2 events/second for 10 minutes.
  net::SimTime t = 0;
  for (int i = 0; i < 1200; ++i) {
    t += net::milliseconds(500);
    tracker.record(mk("p.com"), RRType::kA, t);
  }
  const double rate = tracker.rate(mk("p.com"), RRType::kA, t);
  // The 256-sample cap keeps only the last 128 s: rate estimate still
  // counts live samples over the window.
  EXPECT_GT(rate, 0.0);
}

TEST(RateTracker, CaseInsensitiveNames) {
  RateTracker tracker;
  tracker.record(mk("WWW.X.COM"), RRType::kA, 0);
  EXPECT_EQ(tracker.count(mk("www.x.com"), RRType::kA, 0), 1u);
}

}  // namespace
}  // namespace dnscup::core

#include <gtest/gtest.h>

#include "core/cache_update.h"
#include "core/notifier.h"
#include "net/sim_network.h"

namespace dnscup::core {
namespace {

using dns::Name;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }
dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

class NotifierTest : public ::testing::Test {
 protected:
  static constexpr net::Endpoint kAuthority{net::make_ip(10, 0, 1, 1), 53};
  static constexpr net::Endpoint kCacheA{net::make_ip(10, 0, 2, 1), 53};
  static constexpr net::Endpoint kCacheB{net::make_ip(10, 0, 2, 2), 53};

  NotifierTest() : network_(loop_, 1) {
    auth_transport_ = &network_.bind(kAuthority);
    NotificationModule::Config config;
    config.max_retries = 3;
    config.initial_retry_delay = net::milliseconds(100);
    notifier_.emplace(auth_transport_, &loop_, &track_file_, config);
    auth_transport_->set_receive_handler(
        [this](const net::Endpoint& from, std::span<const uint8_t> data) {
          auto m = dns::Message::decode(data);
          if (m.ok()) notifier_->on_message(from, m.value());
        });

    zone_.emplace(make_zone());
  }

  static dns::Zone make_zone() {
    dns::SOARdata soa;
    soa.mname = mk("ns1.example.com");
    soa.rname = mk("admin.example.com");
    soa.serial = 7;
    dns::Zone z = dns::Zone::make(mk("example.com"), soa, 300,
                                  {mk("ns1.example.com")}, 300);
    z.add_record(mk("www.example.com"), RRType::kA, 300,
                 dns::ARdata{ip("192.0.2.80")});
    return z;
  }

  std::vector<dns::RRsetChange> www_change() {
    dns::RRset after{mk("www.example.com"), RRType::kA, dns::RRClass::kIN,
                     300, {}};
    after.add(dns::ARdata{ip("198.51.100.1")});
    return {{mk("www.example.com"), RRType::kA, std::nullopt, after}};
  }

  /// Binds a cache endpoint that records updates; acks when `ack` is set.
  net::SimTransport& make_cache(const net::Endpoint& ep,
                                std::vector<dns::Message>* received,
                                bool ack) {
    auto& transport = network_.bind(ep);
    transport.set_receive_handler(
        [this, &transport, received, ack](const net::Endpoint& from,
                                          std::span<const uint8_t> data) {
          auto m = dns::Message::decode(data);
          ASSERT_TRUE(m.ok());
          received->push_back(m.value());
          if (ack) {
            transport.send(from, make_cache_update_ack(m.value()).encode());
          }
        });
    return transport;
  }

  net::EventLoop loop_;
  net::SimNetwork network_;
  net::SimTransport* auth_transport_ = nullptr;
  TrackFile track_file_;
  std::optional<NotificationModule> notifier_;
  std::optional<dns::Zone> zone_;
};

TEST_F(NotifierTest, NotifiesOnlyValidLeaseholders) {
  std::vector<dns::Message> at_a, at_b;
  make_cache(kCacheA, &at_a, true);
  make_cache(kCacheB, &at_b, true);

  track_file_.grant(kCacheA, mk("www.example.com"), RRType::kA, 0,
                    net::seconds(3600));
  track_file_.grant(kCacheB, mk("www.example.com"), RRType::kA, 0,
                    net::seconds(1));
  loop_.run_until(net::seconds(10));  // B's lease expires

  notifier_->on_zone_change(*zone_, www_change());
  loop_.run_for(net::seconds(5));

  EXPECT_EQ(at_a.size(), 1u);
  EXPECT_TRUE(at_b.empty());
  EXPECT_EQ(notifier_->stats().updates_sent, 1u);
  EXPECT_EQ(notifier_->stats().acks_received, 1u);
  EXPECT_EQ(notifier_->in_flight(), 0u);
}

TEST_F(NotifierTest, NoLeaseholdersNoTraffic) {
  notifier_->on_zone_change(*zone_, www_change());
  loop_.run_for(net::seconds(2));
  EXPECT_EQ(notifier_->stats().updates_sent, 0u);
  EXPECT_EQ(network_.packets_delivered(), 0u);
}

TEST_F(NotifierTest, UnrelatedChangeNotSent) {
  std::vector<dns::Message> at_a;
  make_cache(kCacheA, &at_a, true);
  track_file_.grant(kCacheA, mk("other.example.com"), RRType::kA, 0,
                    net::seconds(3600));
  notifier_->on_zone_change(*zone_, www_change());
  loop_.run_for(net::seconds(2));
  EXPECT_TRUE(at_a.empty());
}

TEST_F(NotifierTest, RetransmitsUntilAcked) {
  // Cache that never acks: retries exhaust, lease is revoked.
  std::vector<dns::Message> at_a;
  make_cache(kCacheA, &at_a, false);
  track_file_.grant(kCacheA, mk("www.example.com"), RRType::kA, 0,
                    net::seconds(3600));

  notifier_->on_zone_change(*zone_, www_change());
  loop_.run_for(net::seconds(30));

  EXPECT_EQ(at_a.size(), 4u);  // initial + 3 retries
  EXPECT_EQ(notifier_->stats().retransmissions, 3u);
  EXPECT_EQ(notifier_->stats().failures, 1u);
  EXPECT_EQ(notifier_->in_flight(), 0u);
  // Lease revoked so the cache degrades to TTL rather than staying stale.
  EXPECT_TRUE(track_file_
                  .holders_of(mk("www.example.com"), RRType::kA,
                              loop_.now())
                  .empty());
}

TEST_F(NotifierTest, SurvivesPacketLoss) {
  std::vector<dns::Message> at_a;
  make_cache(kCacheA, &at_a, true);
  track_file_.grant(kCacheA, mk("www.example.com"), RRType::kA, 0,
                    net::seconds(3600));
  // 30% loss both ways: with 4 transmissions each way the update gets
  // through (failure odds < 1%); the seed is fixed for determinism.
  network_.set_link(kAuthority, kCacheA,
                    {net::milliseconds(1), 0, 0.3, 0.0});
  network_.set_link(kCacheA, kAuthority,
                    {net::milliseconds(1), 0, 0.3, 0.0});

  notifier_->on_zone_change(*zone_, www_change());
  loop_.run_for(net::seconds(30));

  EXPECT_GE(at_a.size(), 1u);
  EXPECT_GT(notifier_->stats().retransmissions, 0u);
}

TEST_F(NotifierTest, BatchesChangesPerHolder) {
  std::vector<dns::Message> at_a;
  make_cache(kCacheA, &at_a, true);
  track_file_.grant(kCacheA, mk("www.example.com"), RRType::kA, 0,
                    net::seconds(3600));
  track_file_.grant(kCacheA, mk("mail.example.com"), RRType::kA, 0,
                    net::seconds(3600));

  dns::RRset mail_after{mk("mail.example.com"), RRType::kA,
                        dns::RRClass::kIN, 300, {}};
  mail_after.add(dns::ARdata{ip("198.51.100.25")});
  auto changes = www_change();
  changes.push_back(
      {mk("mail.example.com"), RRType::kA, std::nullopt, mail_after});

  notifier_->on_zone_change(*zone_, changes);
  loop_.run_for(net::seconds(5));

  ASSERT_EQ(at_a.size(), 1u);  // one message covering both records
  const auto parsed = parse_cache_update(at_a[0]);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().updated.size(), 2u);
}

TEST_F(NotifierTest, SeparateMessagesPerHolder) {
  std::vector<dns::Message> at_a, at_b;
  make_cache(kCacheA, &at_a, true);
  make_cache(kCacheB, &at_b, true);
  track_file_.grant(kCacheA, mk("www.example.com"), RRType::kA, 0,
                    net::seconds(3600));
  track_file_.grant(kCacheB, mk("www.example.com"), RRType::kA, 0,
                    net::seconds(3600));

  notifier_->on_zone_change(*zone_, www_change());
  loop_.run_for(net::seconds(5));

  EXPECT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_b.size(), 1u);
  EXPECT_EQ(notifier_->stats().updates_sent, 2u);
  EXPECT_EQ(notifier_->stats().acks_received, 2u);
}

TEST_F(NotifierTest, DuplicateAckHarmless) {
  std::vector<dns::Message> at_a;
  auto& cache = make_cache(kCacheA, &at_a, true);
  track_file_.grant(kCacheA, mk("www.example.com"), RRType::kA, 0,
                    net::seconds(3600));
  notifier_->on_zone_change(*zone_, www_change());
  loop_.run_for(net::seconds(2));
  ASSERT_EQ(at_a.size(), 1u);
  // Send the ack again.
  cache.send(kAuthority, make_cache_update_ack(at_a[0]).encode());
  loop_.run_for(net::seconds(2));
  EXPECT_EQ(notifier_->stats().acks_received, 1u);
  EXPECT_EQ(notifier_->in_flight(), 0u);
}

TEST_F(NotifierTest, AckFromWrongSenderIgnored) {
  std::vector<dns::Message> at_a;
  make_cache(kCacheA, &at_a, false);
  track_file_.grant(kCacheA, mk("www.example.com"), RRType::kA, 0,
                    net::seconds(3600));
  notifier_->on_zone_change(*zone_, www_change());
  loop_.run_for(net::milliseconds(50));
  ASSERT_EQ(at_a.size(), 1u);

  // An impostor acks from a different endpoint: must not clear the entry.
  auto& impostor = network_.bind({net::make_ip(10, 6, 6, 6), 53});
  impostor.send(kAuthority, make_cache_update_ack(at_a[0]).encode());
  loop_.run_for(net::milliseconds(50));
  EXPECT_EQ(notifier_->in_flight(), 1u);
}

TEST_F(NotifierTest, AckLatencyTracked) {
  std::vector<dns::Message> at_a;
  make_cache(kCacheA, &at_a, true);
  track_file_.grant(kCacheA, mk("www.example.com"), RRType::kA, 0,
                    net::seconds(3600));
  notifier_->on_zone_change(*zone_, www_change());
  loop_.run_for(net::seconds(2));
  ASSERT_EQ(notifier_->stats().ack_latency_us.count(), 1u);
  // 1 ms each way on the default link.
  EXPECT_NEAR(notifier_->stats().ack_latency_us.mean(), 2000.0, 500.0);
}

}  // namespace
}  // namespace dnscup::core

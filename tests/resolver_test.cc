#include <gtest/gtest.h>

#include "net/sim_network.h"
#include "server/authoritative.h"
#include "server/resolver.h"

namespace dnscup::server {
namespace {

using dns::Name;
using dns::RRType;
using Outcome = CachingResolver::Outcome;

Name mk(const char* text) { return Name::parse(text).value(); }
dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

// Hierarchy: root (".") delegates example.com -> auth1 and glueless.org ->
// ns.example.com (whose address must be resolved through example.com).
class ResolverTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kRootIp = net::make_ip(10, 0, 0, 1);
  static constexpr uint32_t kAuthIp = net::make_ip(10, 0, 1, 1);

  ResolverTest()
      : network_(loop_, 1),
        root_(network_.bind({kRootIp, 53}), loop_),
        auth_(network_.bind({kAuthIp, 53}), loop_),
        resolver_(network_.bind({net::make_ip(10, 0, 2, 1), 53}), loop_,
                  {net::Endpoint{kRootIp, 53}}) {
    // Root zone with delegations.
    dns::SOARdata root_soa;
    root_soa.mname = mk("a.root");
    root_soa.rname = mk("admin.root");
    root_soa.serial = 1;
    root_soa.minimum = 30;
    dns::Zone root_zone(Name::root());
    root_zone.add_record(Name::root(), RRType::kSOA, 86400, root_soa);
    root_zone.add_record(Name::root(), RRType::kNS, 86400,
                         dns::NSRdata{mk("a.root")});
    root_zone.add_record(mk("example.com"), RRType::kNS, 3600,
                         dns::NSRdata{mk("ns.example.com")});
    root_zone.add_record(mk("ns.example.com"), RRType::kA, 3600,
                         dns::ARdata{dns::Ipv4{kAuthIp}});  // glue
    // Glueless delegation: the NS name lives in another TLD branch.
    root_zone.add_record(mk("glueless.org"), RRType::kNS, 3600,
                         dns::NSRdata{mk("ns.example.com")});
    root_->add_zone(std::move(root_zone));

    // example.com zone.
    dns::SOARdata soa;
    soa.mname = mk("ns.example.com");
    soa.rname = mk("admin.example.com");
    soa.serial = 1;
    soa.minimum = 45;
    dns::Zone zone = dns::Zone::make(mk("example.com"), soa, 3600,
                                     {mk("ns.example.com")}, 3600);
    zone.add_record(mk("ns.example.com"), RRType::kA, 3600,
                    dns::ARdata{dns::Ipv4{kAuthIp}});
    zone.add_record(mk("www.example.com"), RRType::kA, 300,
                    dns::ARdata{ip("192.0.2.80")});
    zone.add_record(mk("alias.example.com"), RRType::kCNAME, 300,
                    dns::CNAMERdata{mk("www.example.com")});
    // Adversarial structures: a CNAME loop and an over-long chain.
    zone.add_record(mk("loop1.example.com"), RRType::kCNAME, 300,
                    dns::CNAMERdata{mk("loop2.example.com")});
    zone.add_record(mk("loop2.example.com"), RRType::kCNAME, 300,
                    dns::CNAMERdata{mk("loop1.example.com")});
    for (int i = 0; i < 15; ++i) {
      zone.add_record(
          mk(("c" + std::to_string(i) + ".example.com").c_str()),
          RRType::kCNAME, 300,
          dns::CNAMERdata{
              mk(("c" + std::to_string(i + 1) + ".example.com").c_str())});
    }
    zone.add_record(mk("c15.example.com"), RRType::kA, 300,
                    dns::ARdata{ip("192.0.2.15")});
    auth_->add_zone(std::move(zone));

    // glueless.org zone, served by the same auth server.
    dns::SOARdata gsoa;
    gsoa.mname = mk("ns.example.com");
    gsoa.rname = mk("admin.glueless.org");
    gsoa.serial = 1;
    gsoa.minimum = 45;
    dns::Zone gzone = dns::Zone::make(mk("glueless.org"), gsoa, 3600,
                                      {mk("ns.example.com")}, 3600);
    gzone.add_record(mk("www.glueless.org"), RRType::kA, 300,
                     dns::ARdata{ip("198.51.100.9")});
    auth_->add_zone(std::move(gzone));
  }

  // `root_` and `auth_` are optionals so tests can destroy servers to
  // simulate outages.
  std::optional<Outcome> resolve(const char* qname,
                                 RRType qtype = RRType::kA) {
    std::optional<Outcome> result;
    resolver_.resolve(mk(qname), qtype,
                      [&result](const Outcome& o) { result = o; });
    // Step in small increments so the clock stops soon after completion.
    const net::SimTime deadline = loop_.now() + net::seconds(120);
    while (!result.has_value() && loop_.now() < deadline) {
      loop_.run_until(loop_.now() + net::milliseconds(10));
    }
    return result;
  }

  net::EventLoop loop_;
  net::SimNetwork network_;
  struct Holder {
    Holder(net::Transport& t, net::EventLoop& l) : server(t, l) {}
    AuthServer server;
    AuthServer* operator->() { return &server; }
    AuthServer& operator*() { return server; }
  };
  Holder root_;
  Holder auth_;
  CachingResolver resolver_;
};

TEST_F(ResolverTest, IterativeResolution) {
  const auto r = resolve("www.example.com");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kOk);
  ASSERT_FALSE(r->rrset.empty());
  EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("192.0.2.80"));
  EXPECT_FALSE(r->from_cache);
  // Root referral + auth answer = 2 upstream queries.
  EXPECT_EQ(resolver_.stats().upstream_queries, 2u);
}

TEST_F(ResolverTest, SecondLookupFromCache) {
  resolve("www.example.com");
  const auto before = resolver_.stats().upstream_queries;
  const auto r = resolve("www.example.com");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->from_cache);
  EXPECT_EQ(resolver_.stats().upstream_queries, before);
}

TEST_F(ResolverTest, CachedTtlCountsDown) {
  resolve("www.example.com");
  loop_.run_until(loop_.now() + net::seconds(100));
  const auto r = resolve("www.example.com");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->from_cache);
  EXPECT_LE(r->rrset.ttl, 200u);
  EXPECT_GE(r->rrset.ttl, 195u);
}

TEST_F(ResolverTest, CacheExpiresAfterTtl) {
  resolve("www.example.com");
  const auto before = resolver_.stats().upstream_queries;
  loop_.run_until(loop_.now() + net::seconds(301));
  const auto r = resolve("www.example.com");
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->from_cache);
  EXPECT_GT(resolver_.stats().upstream_queries, before);
}

TEST_F(ResolverTest, NsCachedSoSecondDomainSkipsRoot) {
  resolve("www.example.com");
  resolver_.cache().invalidate(mk("www.example.com"), RRType::kA);
  // NS + glue are cached; a fresh lookup should go straight to auth.
  const auto before = resolver_.stats().upstream_queries;
  const auto r = resolve("www.example.com");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kOk);
  EXPECT_EQ(resolver_.stats().upstream_queries, before + 1);
}

TEST_F(ResolverTest, CnameChaseInAuthAnswer) {
  const auto r = resolve("alias.example.com");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kOk);
  ASSERT_EQ(r->cname_chain.size(), 1u);
  EXPECT_EQ(r->cname_chain[0].type(), RRType::kCNAME);
  EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("192.0.2.80"));
}

TEST_F(ResolverTest, CachedCnameChased) {
  resolve("alias.example.com");
  const auto r = resolve("alias.example.com");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kOk);
  EXPECT_TRUE(r->from_cache);
  EXPECT_EQ(r->cname_chain.size(), 1u);
}

TEST_F(ResolverTest, NxDomainNegativeCached) {
  const auto r = resolve("missing.example.com");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kNXDomain);
  const auto before = resolver_.stats().upstream_queries;
  const auto r2 = resolve("missing.example.com");
  EXPECT_EQ(r2->status, Outcome::Status::kNXDomain);
  EXPECT_TRUE(r2->from_cache);
  EXPECT_EQ(resolver_.stats().upstream_queries, before);
}

TEST_F(ResolverTest, NegativeCacheExpires) {
  resolve("missing.example.com");
  // Negative TTL derives from the SOA minimum (45 s).
  loop_.run_until(loop_.now() + net::seconds(46));
  const auto before = resolver_.stats().upstream_queries;
  resolve("missing.example.com");
  EXPECT_GT(resolver_.stats().upstream_queries, before);
}

TEST_F(ResolverTest, NoDataAnswer) {
  const auto r = resolve("www.example.com", RRType::kMX);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kNoData);
}

TEST_F(ResolverTest, GluelessDelegationResolved) {
  const auto r = resolve("www.glueless.org");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kOk);
  EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("198.51.100.9"));
}

TEST_F(ResolverTest, CnameLoopFailsCleanly) {
  const auto r = resolve("loop1.example.com");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kServFail);
  // Bounded work: the loop guard kicked in well before 100 queries.
  EXPECT_LT(resolver_.stats().upstream_queries, 100u);
}

TEST_F(ResolverTest, LongCnameChainResolvesWithBoundedWork) {
  // A 16-hop chain exceeds a single answer's chase limit, so the
  // resolver restarts at the dangling target (bounded by the depth
  // guard) — it must succeed without runaway queries.
  const auto r = resolve("c0.example.com");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kOk);
  EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("192.0.2.15"));
  EXPECT_LT(resolver_.stats().upstream_queries, 20u);
}

TEST_F(ResolverTest, ModerateCnameChainSucceeds) {
  // 4 hops from c12 to the terminal A record is within limits.
  const auto r = resolve("c12.example.com");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kOk);
  EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("192.0.2.15"));
  EXPECT_GE(r->cname_chain.size(), 3u);
}

TEST_F(ResolverTest, CoalescesIdenticalInflightQueries) {
  std::optional<Outcome> r1, r2;
  resolver_.resolve(mk("www.example.com"), RRType::kA,
                    [&](const Outcome& o) { r1 = o; });
  resolver_.resolve(mk("www.example.com"), RRType::kA,
                    [&](const Outcome& o) { r2 = o; });
  loop_.run_for(net::seconds(60));
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(resolver_.stats().coalesced, 1u);
  EXPECT_EQ(resolver_.stats().upstream_queries, 2u);  // not 4
}

TEST_F(ResolverTest, RetriesThroughPacketLoss) {
  // 60% loss on a dedicated resolver -> auth path; with a generous retry
  // budget the retransmissions get through (failure odds 0.6^8 < 2%, and
  // the seed is fixed so the run is deterministic).
  const net::Endpoint lossy_ep{net::make_ip(10, 0, 2, 2), 53};
  CachingResolver::Config config;
  config.max_retries = 7;
  CachingResolver lossy_resolver(network_.bind(lossy_ep), loop_,
                                 {net::Endpoint{kRootIp, 53}}, config);
  network_.set_link(lossy_ep, {kAuthIp, 53},
                    {net::milliseconds(1), 0, 0.6, 0.0});
  std::optional<Outcome> result;
  lossy_resolver.resolve(mk("www.example.com"), RRType::kA,
                         [&](const Outcome& o) { result = o; });
  loop_.run_for(net::seconds(60));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, Outcome::Status::kOk);
  EXPECT_GT(lossy_resolver.stats().retransmissions, 0u);
}

TEST_F(ResolverTest, TotalOutageTimesOut) {
  network_.partition({net::make_ip(10, 0, 2, 1), 53}, {kRootIp, 53});
  const auto r = resolve("www.example.com");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kTimeout);
  EXPECT_GT(resolver_.stats().timeouts, 0u);
}

TEST_F(ResolverTest, ClientQueriesOverWire) {
  auto& client = network_.bind({net::make_ip(10, 0, 3, 3), 4444});
  std::optional<dns::Message> got;
  client.set_receive_handler(
      [&](const net::Endpoint&, std::span<const uint8_t> data) {
        got = dns::Message::decode(data).value();
      });
  dns::Message q;
  q.id = 77;
  q.flags.rd = true;
  q.questions.push_back(
      dns::Question{mk("www.example.com"), RRType::kA, dns::RRClass::kIN, 0});
  client.send({net::make_ip(10, 0, 2, 1), 53}, q.encode());
  loop_.run_for(net::seconds(60));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 77);
  EXPECT_TRUE(got->flags.qr);
  EXPECT_TRUE(got->flags.ra);
  ASSERT_EQ(got->answers.size(), 1u);
  EXPECT_EQ(resolver_.stats().client_queries, 1u);
}

TEST_F(ResolverTest, SpoofedResponseIgnored) {
  // An attacker who guesses the qid but answers from the wrong address
  // must be ignored.
  auto& attacker = network_.bind({net::make_ip(10, 6, 6, 6), 53});
  std::optional<Outcome> result;
  resolver_.resolve(mk("www.example.com"), RRType::kA,
                    [&](const Outcome& o) { result = o; });
  // Forge responses with every plausible qid before the real answer lands.
  for (uint16_t qid = 1; qid < 10; ++qid) {
    dns::Message forged;
    forged.id = qid;
    forged.flags.qr = true;
    forged.questions.push_back(dns::Question{mk("www.example.com"),
                                             RRType::kA, dns::RRClass::kIN,
                                             0});
    forged.answers.push_back(dns::ResourceRecord{
        mk("www.example.com"), dns::RRClass::kIN, 300,
        dns::ARdata{ip("6.6.6.6")}});
    attacker.send({net::make_ip(10, 0, 2, 1), 53}, forged.encode());
  }
  loop_.run_for(net::seconds(60));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, Outcome::Status::kOk);
  EXPECT_EQ(std::get<dns::ARdata>(result->rrset.rdatas[0]).address,
            ip("192.0.2.80"));
}

}  // namespace
}  // namespace dnscup::server

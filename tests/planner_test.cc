// Planner subsystem unit tests: demand table, λ estimators, incremental
// planners (certified against the batch optimizers and the brute force),
// and the LeasePlanner thread end-to-end in-process.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/dynamic_lease.h"
#include "core/lease_math.h"
#include "planner/demand_table.h"
#include "planner/incremental_plan.h"
#include "planner/lambda_estimator.h"
#include "planner/lease_planner.h"
#include "util/rng.h"

namespace dnscup::planner {
namespace {

// ---- demand table ---------------------------------------------------------

TEST(DemandShard, InsertFindAndStableIds) {
  DemandShard shard(100);
  bool inserted = false;
  DemandShard::Slot* a = shard.upsert(42, &inserted);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(inserted);
  const uint32_t id_a = shard.index_of(a);

  DemandShard::Slot* again = shard.upsert(42, &inserted);
  EXPECT_EQ(again, a);
  EXPECT_FALSE(inserted);

  const DemandShard::Slot* found = shard.find(42);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(shard.index_of(found), id_a);
  EXPECT_EQ(shard.find(43), nullptr);
  EXPECT_EQ(shard.size(), 1u);
}

TEST(DemandShard, NewSlotsReadAsUnplanned) {
  DemandShard shard(16);
  bool inserted = false;
  DemandShard::Slot* slot = shard.upsert(7, &inserted);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->planned_bits.load(), kUnplannedBits);
}

TEST(DemandShard, RejectsAtCapacity) {
  DemandShard shard(16);
  bool inserted = false;
  for (uint64_t k = 1; k <= shard.capacity(); ++k) {
    ASSERT_NE(shard.upsert(k, &inserted), nullptr);
  }
  EXPECT_EQ(shard.upsert(9999, &inserted), nullptr);
  EXPECT_EQ(shard.size(), shard.capacity());
  // Existing keys still resolve after the rejection.
  EXPECT_NE(shard.find(1), nullptr);
}

TEST(DemandShard, PairKeyDistinguishesComponents) {
  const net::Endpoint a{0x0A000001, 5353};
  const net::Endpoint b{0x0A000002, 5353};
  const auto name = dns::Name::parse("www.example.com").value();
  const uint64_t base = pair_key(a, name, dns::RRType::kA);
  EXPECT_NE(base, pair_key(b, name, dns::RRType::kA));
  EXPECT_NE(base, pair_key(a, name, dns::RRType::kAAAA));
  EXPECT_NE(base, 0u);  // 0 is the empty-slot sentinel
}

TEST(DemandShard, ConcurrentReadersSeeConsistentSlots) {
  DemandShard shard(4096);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  // Readers probe random keys; any slot they resolve must carry the key
  // they asked for (the release-store publication contract).
  std::thread reader([&] {
    util::Rng rng(7);
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t key = static_cast<uint64_t>(rng.uniform_int(1, 4000));
      const DemandShard::Slot* slot = shard.find(key);
      if (slot != nullptr &&
          slot->key.load(std::memory_order_acquire) != key) {
        torn.fetch_add(1);
      }
    }
  });
  bool inserted = false;
  for (uint64_t k = 1; k <= 3000; ++k) {
    DemandShard::Slot* slot = shard.upsert(k, &inserted);
    ASSERT_NE(slot, nullptr);
    slot->planned_bits.store(static_cast<uint32_t>(k),
                             std::memory_order_relaxed);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
}

// ---- λ estimators ---------------------------------------------------------

TEST(LambdaEstimator, LastWindowTracksExactly) {
  LambdaEstimator est(EstimatorKind::kLastWindow);
  LambdaEstimator::State state;
  EXPECT_DOUBLE_EQ(est.forecast(state), 0.0);  // unseeded
  est.update(state, 4.0);
  EXPECT_DOUBLE_EQ(est.forecast(state), 4.0);
  est.update(state, 1.0);
  EXPECT_DOUBLE_EQ(est.forecast(state), 1.0);
}

TEST(LambdaEstimator, EwmaSmoothsSpikes) {
  LambdaEstimator est(EstimatorKind::kEwma, {0.3, 0.1});
  LambdaEstimator::State state;
  est.update(state, 1.0);  // seeds at 1.0
  est.update(state, 10.0);
  const double after_spike = est.forecast(state);
  EXPECT_GT(after_spike, 1.0);
  EXPECT_LT(after_spike, 10.0);  // did not jump all the way
  EXPECT_NEAR(after_spike, 0.3 * 10.0 + 0.7 * 1.0, 1e-5);
}

TEST(LambdaEstimator, HoltBeatsEwmaOnRamp) {
  // On a steadily climbing rate Holt's trend term extrapolates ahead,
  // while EWMA always lags below the last observation.
  LambdaEstimator holt(EstimatorKind::kHolt, {0.5, 0.5});
  LambdaEstimator ewma(EstimatorKind::kEwma, {0.5, 0.5});
  LambdaEstimator::State hs, es;
  double holt_err = 0.0;
  double ewma_err = 0.0;
  for (int t = 1; t <= 40; ++t) {
    const double rate = static_cast<double>(t);
    if (t > 1) {
      holt_err += std::abs(holt.forecast(hs) - rate);
      ewma_err += std::abs(ewma.forecast(es) - rate);
    }
    holt.update(hs, rate);
    ewma.update(es, rate);
  }
  EXPECT_LT(holt_err, ewma_err);
}

TEST(LambdaEstimator, HoltForecastClampedAtZero) {
  LambdaEstimator est(EstimatorKind::kHolt, {0.8, 0.8});
  LambdaEstimator::State state;
  est.update(state, 100.0);
  est.update(state, 1.0);
  est.update(state, 0.0);  // steep decline -> negative raw trend
  EXPECT_GE(est.forecast(state), 0.0);
}

TEST(LambdaEstimator, ParseAndNameRoundTrip) {
  for (const auto kind : {EstimatorKind::kLastWindow, EstimatorKind::kEwma,
                          EstimatorKind::kHolt}) {
    const auto parsed = LambdaEstimator::parse(LambdaEstimator::name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(LambdaEstimator::parse("oracle").has_value());
}

// ---- incremental planners -------------------------------------------------

struct RandomUpdate {
  uint32_t id;
  double rate;
  double max_lease;
};

std::vector<RandomUpdate> random_stream(util::Rng& rng, uint32_t max_ids,
                                        std::size_t n) {
  std::vector<RandomUpdate> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RandomUpdate u;
    u.id = static_cast<uint32_t>(rng.uniform_int(0, max_ids - 1));
    // ~10% removals; rates and leases log-uniform like the batch tests.
    if (rng.uniform_real(0.0, 1.0) < 0.1) {
      u.rate = 0.0;
      u.max_lease = 0.0;
    } else {
      u.rate = std::exp(rng.uniform_real(std::log(0.001), std::log(10.0)));
      u.max_lease =
          std::exp(rng.uniform_real(std::log(10.0), std::log(1e5)));
    }
    stream.push_back(u);
  }
  return stream;
}

/// Asserts the incremental planner's assignment matches the batch
/// planner's output over the same entries, length by length.
/// `exact` demands bitwise equality (valid right after replan());
/// otherwise lengths match within a small relative tolerance (the
/// incremental running totals accumulate in a different order).
void expect_matches_batch(const IncrementalPlanner& inc,
                          bool storage_mode, bool exact,
                          const char* context) {
  std::vector<uint32_t> ids;
  const auto demands = inc.export_demands(&ids);
  const core::LeasePlan plan =
      storage_mode ? core::plan_storage_constrained(demands, inc.budget())
                   : core::plan_comm_constrained(demands, inc.budget());
  ASSERT_EQ(plan.lengths.size(), ids.size());
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const double got = inc.lease_for(ids[k]);
    const double want = plan.lengths[k];
    if (exact) {
      ASSERT_EQ(got, want) << context << " id " << ids[k];
    } else {
      ASSERT_NEAR(got, want, 1e-6 * std::max(1.0, want))
          << context << " id " << ids[k];
    }
  }
}

class IncrementalSlpEquivalence : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(IncrementalSlpEquivalence, MatchesBatchUnderRandomStream) {
  util::Rng rng(GetParam());
  constexpr uint32_t kIds = 64;
  IncrementalSlp inc(kIds, /*storage_budget=*/8.0);
  std::vector<uint32_t> dirty;
  const auto stream = random_stream(rng, kIds, 400);
  std::size_t step = 0;
  for (const auto& u : stream) {
    dirty.clear();
    inc.update(u.id, u.rate, u.max_lease, &dirty);
    ASSERT_LE(inc.cost_used(), inc.budget() + 1e-6);
    // The incremental SLP is exact: every 16th step, diff the whole
    // assignment against the batch planner.
    if (++step % 16 == 0) {
      expect_matches_batch(inc, /*storage_mode=*/true, /*exact=*/false,
                           "mid-stream");
    }
  }
  // After the backstop replan the adoption is byte-for-byte.
  inc.replan();
  expect_matches_batch(inc, /*storage_mode=*/true, /*exact=*/true,
                       "post-replan");
}

TEST_P(IncrementalSlpEquivalence, BudgetChangesRepairTheFrontier) {
  util::Rng rng(GetParam() + 50);
  constexpr uint32_t kIds = 32;
  IncrementalSlp inc(kIds, 4.0);
  std::vector<uint32_t> dirty;
  for (const auto& u : random_stream(rng, kIds, 100)) {
    inc.update(u.id, u.rate, u.max_lease, &dirty);
  }
  for (const double budget : {0.0, 1.0, 16.0, 2.0}) {
    dirty.clear();
    inc.set_budget(budget, &dirty);
    ASSERT_LE(inc.cost_used(), budget + 1e-6);
    expect_matches_batch(inc, true, /*exact=*/false, "post-budget-change");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSlpEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(IncrementalSlp, DirtySetCoversEveryFlippedAssignment) {
  // Track assignments through the dirty sets alone; any divergence from
  // ground truth means update() failed to report a change.
  util::Rng rng(99);
  constexpr uint32_t kIds = 48;
  IncrementalSlp inc(kIds, 6.0);
  std::vector<double> mirror(kIds, 0.0);
  std::vector<uint32_t> dirty;
  for (const auto& u : random_stream(rng, kIds, 300)) {
    dirty.clear();
    inc.update(u.id, u.rate, u.max_lease, &dirty);
    for (const uint32_t id : dirty) mirror[id] = inc.lease_for(id);
    for (uint32_t id = 0; id < kIds; ++id) {
      ASSERT_EQ(mirror[id], inc.lease_for(id)) << "id " << id;
    }
  }
}

class IncrementalDeprivationInvariants
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalDeprivationInvariants, BudgetAndAccountingHold) {
  util::Rng rng(GetParam() + 200);
  constexpr uint32_t kIds = 64;
  IncrementalDeprivation inc(kIds, /*message_budget=*/3.0);
  std::vector<uint32_t> dirty;
  std::size_t step = 0;
  for (const auto& u : random_stream(rng, kIds, 400)) {
    dirty.clear();
    inc.update(u.id, u.rate, u.max_lease, &dirty);
    ++step;
    // Lengths are all-or-nothing, and traffic accounting must match a
    // from-scratch recompute of the same assignment.
    std::vector<uint32_t> ids;
    const auto demands = inc.export_demands(&ids);
    double traffic = 0.0;
    std::size_t deprived = 0;
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const double len = inc.lease_for(ids[k]);
      if (len <= 0.0) {
        traffic += demands[k].rate;
        ++deprived;
      } else {
        ASSERT_EQ(len, demands[k].max_lease) << "partial length";
        traffic += core::renewal_rate(demands[k].max_lease, demands[k].rate);
      }
    }
    ASSERT_NEAR(inc.cost_used(), traffic,
                1e-6 * std::max(1.0, traffic))
        << "step " << step;
    // Budget respected, or the plan is all-leased (the minimal-traffic
    // answer the batch planner also returns for infeasible budgets).
    if (deprived > 0) {
      ASSERT_LE(inc.cost_used(), inc.budget() + 1e-6) << "step " << step;
    }
  }
  // The backstop adopts the batch plan verbatim.
  inc.replan();
  expect_matches_batch(inc, /*storage_mode=*/false, /*exact=*/true,
                       "post-replan");
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDeprivationInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- brute-force certification (mirrors dynamic_lease_test) ---------------

class IncrementalVsBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalVsBruteForce, SlpNearOptimal) {
  util::Rng rng(GetParam());
  constexpr uint32_t kIds = 10;
  // Build the instance through incremental updates, not a batch load.
  IncrementalSlp inc(kIds, 0.0);
  std::vector<uint32_t> dirty;
  for (uint32_t id = 0; id < kIds; ++id) {
    const double rate =
        std::exp(rng.uniform_real(std::log(0.001), std::log(10.0)));
    const double max_lease =
        std::exp(rng.uniform_real(std::log(10.0), std::log(1e5)));
    inc.update(id, rate, max_lease, &dirty);
  }
  const auto demands = inc.export_demands(nullptr);
  double max_storage = 0.0;
  for (const auto& d : demands) {
    max_storage += core::lease_probability(d.max_lease, d.rate);
  }
  for (const double frac : {0.2, 0.5, 0.8}) {
    const double budget = frac * max_storage;
    inc.set_budget(budget, &dirty);
    // Evaluate the incremental assignment's costs.
    core::LeasePlan mine;
    std::vector<uint32_t> ids;
    const auto current = inc.export_demands(&ids);
    for (const uint32_t id : ids) mine.lengths.push_back(inc.lease_for(id));
    core::evaluate_plan(current, mine);
    const core::LeasePlan brute =
        core::brute_force_storage_constrained(current, budget);
    EXPECT_LE(mine.total_storage, budget + 1e-9);
    EXPECT_LE(mine.total_message_rate,
              brute.total_message_rate * 1.02 + 1e-9)
        << "seed " << GetParam() << " budget " << budget;
  }
}

TEST_P(IncrementalVsBruteForce, DeprivationNearOptimal) {
  util::Rng rng(GetParam() + 100);
  constexpr uint32_t kIds = 10;
  IncrementalDeprivation inc(kIds, 1e18);
  std::vector<uint32_t> dirty;
  double polling = 0.0;
  for (uint32_t id = 0; id < kIds; ++id) {
    const double rate =
        std::exp(rng.uniform_real(std::log(0.001), std::log(10.0)));
    const double max_lease =
        std::exp(rng.uniform_real(std::log(10.0), std::log(1e5)));
    inc.update(id, rate, max_lease, &dirty);
    polling += rate;
  }
  for (const double frac : {0.3, 0.6, 0.9}) {
    const double budget = polling * frac;
    inc.set_budget(budget, &dirty);
    inc.replan();  // certify the backstop's output, like the batch tests
    core::LeasePlan mine;
    std::vector<uint32_t> ids;
    const auto current = inc.export_demands(&ids);
    for (const uint32_t id : ids) mine.lengths.push_back(inc.lease_for(id));
    core::evaluate_plan(current, mine);
    const core::LeasePlan brute =
        core::brute_force_comm_constrained(current, budget);
    if (brute.total_message_rate <= budget + 1e-9) {
      EXPECT_LE(mine.total_message_rate, budget + 1e-9);
      EXPECT_LE(mine.total_storage, brute.total_storage * 1.02 + 1e-9)
          << "seed " << GetParam() << " budget " << budget;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalVsBruteForce,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- LeasePlanner end-to-end ----------------------------------------------

LeasePlanner::Config fast_config() {
  LeasePlanner::Config config;
  config.mode = LeasePlanner::Mode::kStorage;
  config.storage_budget = 1000.0;
  config.shards = 2;
  config.capacity = 2048;
  config.workers = 2;
  config.poll_interval = net::milliseconds(1);
  config.replan_interval = net::seconds(0);  // manual via replan_now()
  return config;
}

void wait_applied(LeasePlanner& planner, uint64_t target) {
  for (int i = 0; i < 5000 && planner.applied() < target; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(planner.applied(), target);
}

TEST(LeasePlanner, ObservationsBecomeAssignments) {
  auto planner = LeasePlanner::start(fast_config());
  core::LeaseAssignmentSource* handle = planner->handle_for_worker(0);
  const auto name = dns::Name::parse("www.example.com").value();
  const net::Endpoint holder{0x7F000001, 4242};

  // Unknown pair: not planned yet.
  EXPECT_FALSE(handle->assignment(holder, name, dns::RRType::kA).planned);

  handle->observe(holder, name, dns::RRType::kA, /*rate_qps=*/2.0,
                  /*max_lease_s=*/600.0);
  wait_applied(*planner, 1);
  const auto a = handle->assignment(holder, name, dns::RRType::kA);
  EXPECT_TRUE(a.planned);
  // Budget 1000 with one pair: the full maximal lease.
  EXPECT_DOUBLE_EQ(a.lease_s, 600.0);
  EXPECT_EQ(planner->pairs(), 1u);
  planner->stop();
}

TEST(LeasePlanner, TightBudgetDeniesColdPairs) {
  auto config = fast_config();
  // Room for roughly one long-leased hot pair and nothing else: P for the
  // hot pair ≈ 1, the cold pairs would each add ≈ 1 more.
  config.storage_budget = 1.0;
  config.shards = 1;
  auto planner = LeasePlanner::start(config);
  core::LeaseAssignmentSource* handle = planner->handle_for_worker(0);
  const net::Endpoint hot{0x7F000001, 1000};
  const auto name = dns::Name::parse("popular.example.com").value();
  handle->observe(hot, name, dns::RRType::kA, 50.0, 86400.0);
  for (int i = 0; i < 8; ++i) {
    const net::Endpoint cold{0x7F000001, static_cast<uint16_t>(2000 + i)};
    handle->observe(cold, name, dns::RRType::kA, 0.001, 86400.0);
  }
  wait_applied(*planner, 9);
  const auto hot_assignment = handle->assignment(hot, name, dns::RRType::kA);
  EXPECT_TRUE(hot_assignment.planned);
  EXPECT_DOUBLE_EQ(hot_assignment.lease_s, 86400.0);
  // At least the coldest pairs must be planned-but-denied (lease 0).
  int denied = 0;
  for (int i = 0; i < 8; ++i) {
    const net::Endpoint cold{0x7F000001, static_cast<uint16_t>(2000 + i)};
    const auto a = handle->assignment(cold, name, dns::RRType::kA);
    EXPECT_TRUE(a.planned);
    if (a.planned && a.lease_s == 0.0) ++denied;
  }
  EXPECT_GE(denied, 6);
  planner->stop();
}

TEST(LeasePlanner, ForcedReplanMatchesBatch) {
  auto planner = LeasePlanner::start(fast_config());
  core::LeaseAssignmentSource* handle = planner->handle_for_worker(1);
  util::Rng rng(11);
  const auto name = dns::Name::parse("x.example.com").value();
  for (int i = 0; i < 200; ++i) {
    const net::Endpoint holder{0x7F000001,
                               static_cast<uint16_t>(1 + rng.uniform_int(
                                   1, 60000))};
    handle->observe(holder, name, dns::RRType::kA,
                    std::exp(rng.uniform_real(std::log(0.001),
                                              std::log(10.0))),
                    3600.0);
  }
  wait_applied(*planner, 200);
  const uint64_t replans_before = planner->replans();
  planner->replan_now();
  for (int i = 0; i < 5000 && planner->replans() == replans_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(planner->replans(), replans_before);
  planner->stop();
}

TEST(LeasePlanner, MetricsExposePlannerState) {
  auto planner = LeasePlanner::start(fast_config());
  core::LeaseAssignmentSource* handle = planner->handle_for_worker(0);
  const auto name = dns::Name::parse("m.example.com").value();
  handle->observe(net::Endpoint{0x7F000001, 777}, name, dns::RRType::kA,
                  1.0, 60.0);
  wait_applied(*planner, 1);
  const auto snapshot = planner->metrics(0);
  EXPECT_EQ(snapshot.counter_total("planner_observations"), 1u);
  const auto* pairs = snapshot.find("planner_pairs");
  ASSERT_NE(pairs, nullptr);
  EXPECT_DOUBLE_EQ(pairs->gauge_value, 1.0);
  EXPECT_NE(snapshot.find("planner_update_latency_us"), nullptr);
  planner->stop();
}

TEST(LeasePlanner, CleanStopUnderChurn) {
  auto config = fast_config();
  config.queue_capacity = 64;  // force drops under churn too
  auto planner = LeasePlanner::start(config);
  std::atomic<bool> stop{false};
  std::thread feeder([&] {
    core::LeaseAssignmentSource* handle = planner->handle_for_worker(0);
    const auto name = dns::Name::parse("churn.example.com").value();
    util::Rng rng(3);
    while (!stop.load(std::memory_order_acquire)) {
      const net::Endpoint holder{
          0x7F000001, static_cast<uint16_t>(rng.uniform_int(1, 5000))};
      handle->observe(holder, name, dns::RRType::kA,
                      rng.uniform_real(0.01, 5.0), 300.0);
      handle->assignment(holder, name, dns::RRType::kA);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  planner->replan_now();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_release);
  feeder.join();
  planner->stop();  // must not hang or crash with queued observations
  SUCCEED();
}

}  // namespace
}  // namespace dnscup::planner

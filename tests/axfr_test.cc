#include <gtest/gtest.h>

#include "net/sim_network.h"
#include "server/authoritative.h"
#include "server/update.h"

namespace dnscup::server {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }
dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

dns::Zone big_zone(std::size_t hosts) {
  dns::SOARdata soa;
  soa.mname = mk("ns1.big.org");
  soa.rname = mk("admin.big.org");
  soa.serial = 3;
  soa.minimum = 60;
  dns::Zone z =
      dns::Zone::make(mk("big.org"), soa, 3600, {mk("ns1.big.org")}, 3600);
  for (std::size_t i = 0; i < hosts; ++i) {
    z.add_record(mk(("host" + std::to_string(i) + ".big.org").c_str()),
                 RRType::kA, 300,
                 dns::ARdata{dns::Ipv4{static_cast<uint32_t>(0x0A000000 + i)}});
  }
  return z;
}

class AxfrTest : public ::testing::Test {
 protected:
  AxfrTest()
      : network_(loop_, 1),
        master_ep_{net::make_ip(10, 0, 1, 1), 53},
        slave_ep_{net::make_ip(10, 0, 1, 2), 53},
        master_(network_.bind(master_ep_), loop_),
        slave_(network_.bind(slave_ep_), loop_, AuthServer::Role::kSlave) {
    master_.add_slave(slave_ep_);
    slave_.set_master(master_ep_);
  }

  net::EventLoop loop_;
  net::SimNetwork network_;
  net::Endpoint master_ep_;
  net::Endpoint slave_ep_;
  AuthServer master_;
  AuthServer slave_;
};

TEST_F(AxfrTest, BootstrapTransfer) {
  master_.add_zone(big_zone(10));
  slave_.request_transfer(mk("big.org"));
  loop_.run_all();
  const dns::Zone* got = slave_.find_zone(mk("big.org"));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->serial(), 3u);
  EXPECT_EQ(got->record_count(),
            master_.find_zone(mk("big.org"))->record_count());
  EXPECT_EQ(slave_.stats().axfr_pulled, 1u);
  EXPECT_EQ(master_.stats().axfr_served, 1u);
}

TEST_F(AxfrTest, LargeZoneChunksUnder512Bytes) {
  master_.add_zone(big_zone(200));  // far beyond one datagram
  slave_.request_transfer(mk("big.org"));
  loop_.run_all();
  const dns::Zone* got = slave_.find_zone(mk("big.org"));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->record_count(),
            master_.find_zone(mk("big.org"))->record_count());
  EXPECT_LE(network_.max_packet_bytes(), dns::kMaxUdpPayload);
  // Sanity: the transfer really took multiple datagrams.
  EXPECT_GT(network_.packets_delivered(), 5u);
}

TEST_F(AxfrTest, TransferredZoneMatchesExactly) {
  master_.add_zone(big_zone(50));
  slave_.request_transfer(mk("big.org"));
  loop_.run_all();
  const auto changes = dns::diff_zones(*master_.find_zone(mk("big.org")),
                                       *slave_.find_zone(mk("big.org")));
  EXPECT_TRUE(changes.empty());
}

TEST_F(AxfrTest, NotifyTriggersRefresh) {
  master_.add_zone(big_zone(5));
  slave_.request_transfer(mk("big.org"));
  loop_.run_all();
  ASSERT_EQ(slave_.find_zone(mk("big.org"))->serial(), 3u);

  // Master changes: slave must converge via NOTIFY -> AXFR.
  const Message update =
      UpdateBuilder(mk("big.org"))
          .replace_a(mk("host0.big.org"), 300, ip("203.0.113.50"))
          .build(21);
  master_.handle({net::make_ip(10, 0, 9, 9), 5353}, update);
  loop_.run_all();

  const dns::Zone* got = slave_.find_zone(mk("big.org"));
  EXPECT_EQ(got->serial(), 4u);
  const dns::RRset* a = got->find(mk("host0.big.org"), RRType::kA);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(std::get<dns::ARdata>(a->rdatas[0]).address, ip("203.0.113.50"));
  EXPECT_EQ(master_.stats().notifies_sent, 1u);
  EXPECT_EQ(slave_.stats().notifies_received, 1u);
}

TEST_F(AxfrTest, SlaveChangeHookFires) {
  master_.add_zone(big_zone(5));
  slave_.request_transfer(mk("big.org"));
  loop_.run_all();

  std::vector<dns::RRsetChange> seen;
  slave_.add_change_listener(
      [&](const dns::Zone&, const std::vector<dns::RRsetChange>& changes) {
        seen = changes;
      });
  const Message update =
      UpdateBuilder(mk("big.org"))
          .replace_a(mk("host1.big.org"), 300, ip("203.0.113.51"))
          .build(22);
  master_.handle({net::make_ip(10, 0, 9, 9), 5353}, update);
  loop_.run_all();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].name, mk("host1.big.org"));
}

TEST_F(AxfrTest, StaleTransferIgnored) {
  master_.add_zone(big_zone(5));
  slave_.request_transfer(mk("big.org"));
  loop_.run_all();

  // Slave somehow holds a *newer* serial; a re-transfer of the older zone
  // must not roll it back.
  dns::Zone newer = *slave_.find_zone(mk("big.org"));
  newer.bump_serial();
  newer.bump_serial();
  newer.add_record(mk("extra.big.org"), RRType::kA, 60,
                   dns::ARdata{ip("203.0.113.99")});
  slave_.add_zone(std::move(newer));

  slave_.request_transfer(mk("big.org"));
  loop_.run_all();
  EXPECT_NE(slave_.find_zone(mk("big.org"))->find(mk("extra.big.org"),
                                                  RRType::kA),
            nullptr);
}

TEST_F(AxfrTest, NotifyFromStrangerRefused) {
  master_.add_zone(big_zone(3));
  auto& stranger = network_.bind({net::make_ip(10, 0, 7, 7), 53});
  std::optional<Message> got;
  stranger.set_receive_handler(
      [&](const net::Endpoint&, std::span<const uint8_t> data) {
        got = Message::decode(data).value();
      });
  Message notify;
  notify.id = 5;
  notify.flags.opcode = dns::Opcode::kNotify;
  notify.questions.push_back(
      dns::Question{mk("big.org"), RRType::kSOA, dns::RRClass::kIN, 0});
  stranger.send(slave_ep_, notify.encode());
  loop_.run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->flags.rcode, Rcode::kRefused);
  EXPECT_EQ(slave_.find_zone(mk("big.org")), nullptr);
}

TEST_F(AxfrTest, AxfrForUnknownZoneNotAuth) {
  auto& client = network_.bind({net::make_ip(10, 0, 7, 8), 53});
  std::optional<Message> got;
  client.set_receive_handler(
      [&](const net::Endpoint&, std::span<const uint8_t> data) {
        got = Message::decode(data).value();
      });
  Message axfr;
  axfr.id = 9;
  axfr.questions.push_back(
      dns::Question{mk("unknown.org"), RRType::kAXFR, dns::RRClass::kIN, 0});
  client.send(master_ep_, axfr.encode());
  loop_.run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->flags.rcode, Rcode::kNotAuth);
}

TEST_F(AxfrTest, TwoSlavesBothConverge) {
  const net::Endpoint slave2_ep{net::make_ip(10, 0, 1, 3), 53};
  AuthServer slave2(network_.bind(slave2_ep), loop_,
                    AuthServer::Role::kSlave);
  slave2.set_master(master_ep_);
  master_.add_slave(slave2_ep);

  master_.add_zone(big_zone(8));
  slave_.request_transfer(mk("big.org"));
  slave2.request_transfer(mk("big.org"));
  loop_.run_all();

  const Message update =
      UpdateBuilder(mk("big.org"))
          .replace_a(mk("host2.big.org"), 300, ip("203.0.113.52"))
          .build(30);
  master_.handle({net::make_ip(10, 0, 9, 9), 5353}, update);
  loop_.run_all();

  for (AuthServer* s : {&slave_, &slave2}) {
    const dns::RRset* a =
        s->find_zone(mk("big.org"))->find(mk("host2.big.org"), RRType::kA);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(std::get<dns::ARdata>(a->rdatas[0]).address,
              ip("203.0.113.52"));
  }
}

}  // namespace
}  // namespace dnscup::server

// Warm restart end-to-end over real loopback sockets: a dnscup authority
// with the push plane up, and a cache runtime persisting its shards to
// disk.  Kill the cache runtime, start a fresh one on the same
// directory, and assert the PR's tentpole claims: the cache comes back
// warm (client served with zero upstream queries), the surviving lease
// is announced over the v2 SUBSCRIBE and re-adopted by the authority
// without a refetch, pushes resume on the re-adopted lease — and when
// the zone moved while the cache was down, the client detects the serial
// gap and refetches instead of serving stale data.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cachert/cache_runtime.h"
#include "dns/zone_text.h"
#include "net/udp_transport.h"
#include "runtime/runtime.h"

namespace dnscup {
namespace {

dns::Zone zone_with(const char* address, uint32_t serial, uint32_t ttl) {
  char text[512];
  std::snprintf(text, sizeof text,
                "$ORIGIN example.com.\n"
                "@ IN SOA ns1.example.com. admin.example.com. %u 7200 900 "
                "604800 300\n"
                "@ %u IN NS ns1.example.com.\n"
                "ns1 %u IN A 10.0.0.1\n"
                "www %u IN A %s\n",
                serial, ttl, ttl, ttl, address);
  auto zone =
      dns::parse_zone_text(text, dns::Name::parse("example.com").value());
  EXPECT_TRUE(zone.ok()) << (zone.ok() ? "" : zone.error().to_string());
  return std::move(zone).value();
}

class Client {
 public:
  Client() {
    auto bound = net::UdpTransport::bind(0);
    EXPECT_TRUE(bound.ok());
    udp_ = std::move(bound).value();
    udp_->set_receive_handler(
        [this](const net::Endpoint&, std::span<const uint8_t> data) {
          auto message = dns::Message::decode(data);
          if (!message.ok()) return;
          std::lock_guard lock(mutex_);
          responses_.push_back(std::move(message).value());
          cv_.notify_all();
        });
  }

  dns::Message query(const net::Endpoint& server, const char* name) {
    dns::Message query;
    query.id = next_id_++;
    query.flags.opcode = dns::Opcode::kQuery;
    query.flags.rd = true;
    query.questions.push_back(dns::Question{dns::Name::parse(name).value(),
                                            dns::RRType::kA,
                                            dns::RRClass::kIN, 0});
    udp_->send(server, query.encode());
    dns::Message response;
    std::unique_lock lock(mutex_);
    const bool got = cv_.wait_for(lock, std::chrono::seconds(5), [&] {
      for (const dns::Message& m : responses_) {
        if (m.flags.qr && m.id == query.id) {
          response = m;
          return true;
        }
      }
      return false;
    });
    EXPECT_TRUE(got) << "no response for " << name;
    return response;
  }

  static std::string answer_a(const dns::Message& response) {
    for (const auto& rr : response.answers) {
      if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
        return a->address.to_string();
      }
    }
    return "";
  }

 private:
  std::unique_ptr<net::UdpTransport> udp_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<dns::Message> responses_;
  uint16_t next_id_ = 1;
};

uint64_t counter_sum(const metrics::Snapshot& snapshot, const char* name,
                     const char* key = nullptr,
                     const char* value = nullptr) {
  uint64_t total = 0;
  for (const auto& entry : snapshot.entries) {
    if (entry.kind != metrics::InstrumentKind::kCounter) continue;
    if (entry.name != name) continue;
    if (key != nullptr) {
      bool match = false;
      for (const auto& [k, v] : entry.labels) {
        if (k == key && v == value) {
          match = true;
          break;
        }
      }
      if (!match) continue;
    }
    total += entry.counter_value;
  }
  return total;
}

template <class Pred>
bool spin_until(Pred pred,
                std::chrono::milliseconds deadline =
                    std::chrono::milliseconds(5000)) {
  const auto start = std::chrono::steady_clock::now();
  while (!pred()) {
    if (std::chrono::steady_clock::now() - start >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

std::chrono::milliseconds poll_until_address(
    Client& client, const net::Endpoint& cache, const char* name,
    const std::string& address, std::chrono::milliseconds deadline) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const auto response = client.query(cache, name);
    if (Client::answer_a(response) == address) {
      return std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
    }
    if (std::chrono::steady_clock::now() - start >= deadline) {
      return deadline;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

class WarmRestartE2e : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string("warm_restart_e2e_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "." + std::to_string(::getpid());
    ::unlink((dir_ + "/cache-shard-0").c_str());
    ::rmdir(dir_.c_str());

    runtime::Config auth_config;
    auth_config.port = 0;
    auth_config.workers = 1;
    auth_config.push_plane = true;
    auth_config.push_port = 0;
    auto started = runtime::ServingRuntime::start(
        auth_config, {zone_with("10.1.0.10", 1, 300)});
    ASSERT_TRUE(started.ok());
    authority_ = std::move(started).value();
  }

  void TearDown() override {
    if (cache_ != nullptr) cache_->stop();
    cache_.reset();
    authority_->stop();
    authority_.reset();
    ::unlink((dir_ + "/cache-shard-0").c_str());
    ::rmdir(dir_.c_str());
  }

  /// (Re)starts the cache runtime against dir_; stops any previous one.
  void start_cache() {
    if (cache_ != nullptr) cache_->stop();
    cache_.reset();  // destructors msync the shard files
    cachert::Config config;
    config.port = 0;
    config.workers = 1;
    config.upstreams = {authority_->endpoints()[0]};
    config.push_plane = true;
    config.push_authority = authority_->push_endpoint();
    config.push.reconnect_min = net::milliseconds(50);
    config.push.reconnect_max = net::milliseconds(200);
    config.cache_dir = dir_;
    config.cache_file_bytes = 1ull << 20;
    auto started = cachert::CacheRuntime::start(std::move(config));
    ASSERT_TRUE(started.ok()) << started.error().to_string();
    cache_ = std::move(started).value();
    ASSERT_TRUE(spin_until([&] { return cache_->push_connected() == 1; }))
        << "push channel never connected";
  }

  /// First generation: query once so the cache holds a leased entry.
  void populate() {
    start_cache();
    Client client;
    const auto warm = client.query(cache_->endpoints()[0], "www.example.com");
    ASSERT_EQ(Client::answer_a(warm), "10.1.0.10");
    ASSERT_TRUE(spin_until([&] { return authority_->live_leases() == 1; }));
    ASSERT_EQ(cache_->cache_entries(), 1u);
  }

  std::string dir_;
  std::unique_ptr<runtime::ServingRuntime> authority_;
  std::unique_ptr<cachert::CacheRuntime> cache_;
};

// Tentpole: restart on the same directory serves warm with zero upstream
// queries, the surviving lease is re-adopted (authority and client agree,
// counted on both ends), no refetch happens, and the very next zone
// change still arrives as a push on the re-adopted lease.
TEST_F(WarmRestartE2e, RestartServesWarmAndReadoptsLease) {
  populate();

  start_cache();  // second generation, same directory
  EXPECT_EQ(cache_->warm_entries(), 1u);
  const auto reports = cache_->cache_load_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].cold);
  EXPECT_EQ(reports[0].warm_entries, 1u);
  EXPECT_EQ(reports[0].leases_demoted, 0u);

  // The v2 SUBSCRIBE announced the survivor; the authority re-granted it
  // and the client resumed it — no serial gap, nothing rejected.
  ASSERT_TRUE(spin_until([&] {
    return counter_sum(cache_->metrics(), "lease_readoption_total", "result",
                       "resumed") >= 1;
  })) << "lease never re-adopted";
  EXPECT_EQ(counter_sum(cache_->metrics(), "lease_readoption_total", "result",
                        "serial_gap"),
            0u);
  EXPECT_EQ(counter_sum(cache_->metrics(), "lease_readoption_total", "result",
                        "rejected"),
            0u);
  EXPECT_GE(counter_sum(authority_->metrics(), "authority_lease_readoptions",
                        "result", "resumed"),
            1u);
  EXPECT_EQ(counter_sum(cache_->metrics(), "lease_client_resync_refetches"),
            0u);

  // Warm serve: the answer comes from the reloaded entry, not upstream.
  Client client;
  const auto warm = client.query(cache_->endpoints()[0], "www.example.com");
  EXPECT_EQ(Client::answer_a(warm), "10.1.0.10");
  EXPECT_EQ(counter_sum(cache_->metrics(), "resolver_queries", "side",
                        "upstream"),
            0u);

  // The re-adopted lease is live: the next change travels as a push.
  authority_->reload_zone(zone_with("10.9.9.9", 2, 300));
  ASSERT_LT(poll_until_address(client, cache_->endpoints()[0],
                               "www.example.com", "10.9.9.9",
                               std::chrono::milliseconds(5000))
                .count(),
            5000)
      << "push never reached the re-adopted lease";
}

// The zone moved while the cache was down: re-adoption must detect the
// serial gap from the SUBSCRIBE_ACK inventory and refetch — stale data
// is never trusted just because a lease survived on disk.
TEST_F(WarmRestartE2e, SerialGapWhileDownTriggersRefetch) {
  populate();
  cache_->stop();
  cache_.reset();

  authority_->reload_zone(zone_with("10.9.9.9", 2, 300));

  start_cache();
  EXPECT_EQ(cache_->warm_entries(), 1u);
  ASSERT_TRUE(spin_until([&] {
    return counter_sum(cache_->metrics(), "lease_readoption_total", "result",
                       "serial_gap") >= 1;
  })) << "serial gap never detected";

  // Convergence to the post-downtime data, via the resync refetch.
  Client client;
  ASSERT_LT(poll_until_address(client, cache_->endpoints()[0],
                               "www.example.com", "10.9.9.9",
                               std::chrono::milliseconds(5000))
                .count(),
            5000);
}

// Without the push plane there is nothing to re-adopt leases against:
// the warm reload must demote them to plain TTL entries (no stale
// serves), while still serving the TTL-fresh data warm.
TEST_F(WarmRestartE2e, RestartWithoutPushPlaneDemotesLeases) {
  populate();
  cache_->stop();
  cache_.reset();

  cachert::Config config;
  config.port = 0;
  config.workers = 1;
  config.upstreams = {authority_->endpoints()[0]};
  config.cache_dir = dir_;
  config.cache_file_bytes = 1ull << 20;
  auto started = cachert::CacheRuntime::start(std::move(config));
  ASSERT_TRUE(started.ok());
  cache_ = std::move(started).value();

  const auto reports = cache_->cache_load_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].cold);
  EXPECT_EQ(reports[0].warm_entries, 1u);
  EXPECT_EQ(reports[0].leases_demoted, 1u);

  Client client;
  const auto warm = client.query(cache_->endpoints()[0], "www.example.com");
  EXPECT_EQ(Client::answer_a(warm), "10.1.0.10");
  EXPECT_EQ(counter_sum(cache_->metrics(), "resolver_queries", "side",
                        "upstream"),
            0u);
}

}  // namespace
}  // namespace dnscup

#include <gtest/gtest.h>

#include <string>

#include "dns/name.h"
#include "util/rng.h"

namespace dnscup::dns {
namespace {

Name mk(const char* text) {
  auto r = Name::parse(text);
  EXPECT_TRUE(r.ok()) << text;
  return std::move(r).value();
}

TEST(NameParse, Basic) {
  const Name n = mk("www.example.com");
  EXPECT_EQ(n.label_count(), 3u);
  EXPECT_EQ(n.label(0), "www");
  EXPECT_EQ(n.label(2), "com");
  EXPECT_EQ(n.to_string(), "www.example.com.");
}

TEST(NameParse, TrailingDotEquivalent) {
  EXPECT_EQ(mk("example.com"), mk("example.com."));
}

TEST(NameParse, Root) {
  const Name n = mk(".");
  EXPECT_TRUE(n.is_root());
  EXPECT_EQ(n.to_string(), ".");
  EXPECT_EQ(n.wire_length(), 1u);
}

TEST(NameParse, RejectsEmpty) { EXPECT_FALSE(Name::parse("").ok()); }

TEST(NameParse, RejectsEmptyLabel) {
  EXPECT_FALSE(Name::parse("a..b").ok());
  EXPECT_FALSE(Name::parse(".a").ok());
}

TEST(NameParse, RejectsOverlongLabel) {
  const std::string label(64, 'x');
  EXPECT_FALSE(Name::parse(label + ".com").ok());
  const std::string ok_label(63, 'x');
  EXPECT_TRUE(Name::parse(ok_label + ".com").ok());
}

TEST(NameParse, RejectsOverlongName) {
  // 5 labels of 63 = 5*64+1 = 321 > 255.
  std::string long_name;
  for (int i = 0; i < 5; ++i) {
    long_name += std::string(63, static_cast<char>('a' + i)) + ".";
  }
  EXPECT_FALSE(Name::parse(long_name).ok());
}

TEST(NameCompare, CaseInsensitive) {
  EXPECT_EQ(mk("WWW.Example.COM"), mk("www.example.com"));
  EXPECT_EQ(mk("WWW.Example.COM").hash(), mk("www.example.com").hash());
}

TEST(NameCompare, PreservesOriginalCase) {
  EXPECT_EQ(mk("WwW.CoM").to_string(), "WwW.CoM.");
}

TEST(NameCompare, Inequality) {
  EXPECT_NE(mk("a.com"), mk("b.com"));
  EXPECT_NE(mk("a.com"), mk("a.org"));
  EXPECT_NE(mk("www.a.com"), mk("a.com"));
}

TEST(NameOrder, CanonicalByReversedLabels) {
  // Canonical order compares rightmost labels first.
  EXPECT_LT(mk("a.com"), mk("b.com"));
  EXPECT_LT(mk("z.com"), mk("a.org"));      // com < org
  EXPECT_LT(mk("com"), mk("a.com"));        // ancestor before child
  EXPECT_LT(Name::root(), mk("com"));
}

TEST(NameOrder, StrictWeakOrdering) {
  const Name a = mk("a.example.com");
  const Name b = mk("A.EXAMPLE.COM");
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(b < a);
}

TEST(NameRelations, Subdomain) {
  EXPECT_TRUE(mk("www.example.com").is_subdomain_of(mk("example.com")));
  EXPECT_TRUE(mk("example.com").is_subdomain_of(mk("example.com")));
  EXPECT_TRUE(mk("example.com").is_subdomain_of(Name::root()));
  EXPECT_FALSE(mk("example.com").is_subdomain_of(mk("www.example.com")));
  EXPECT_FALSE(mk("badexample.com").is_subdomain_of(mk("example.com")));
  EXPECT_FALSE(mk("example.org").is_subdomain_of(mk("example.com")));
}

TEST(NameRelations, CommonSuffix) {
  EXPECT_EQ(mk("www.example.com").common_suffix_labels(mk("ftp.example.com")),
            2u);
  EXPECT_EQ(mk("a.com").common_suffix_labels(mk("a.org")), 0u);
  EXPECT_EQ(mk("a.b.c").common_suffix_labels(mk("a.b.c")), 3u);
}

TEST(NameBuild, ParentAndPrepend) {
  const Name n = mk("www.example.com");
  EXPECT_EQ(n.parent(), mk("example.com"));
  EXPECT_EQ(n.parent().parent(), mk("com"));
  EXPECT_TRUE(n.parent().parent().parent().is_root());
  EXPECT_EQ(mk("example.com").prepend("www"), n);
}

TEST(NameBuild, Concat) {
  EXPECT_EQ(mk("www").concat(mk("example.com")), mk("www.example.com"));
  EXPECT_EQ(mk("a.b").concat(Name::root()), mk("a.b"));
}

TEST(NameBuild, WireLength) {
  // "www.example.com." = 1+3 + 1+7 + 1+3 + 1 = 17
  EXPECT_EQ(mk("www.example.com").wire_length(), 17u);
}

TEST(LabelCompare, Ordering) {
  EXPECT_EQ(label_compare("abc", "ABC"), 0);
  EXPECT_LT(label_compare("abc", "abd"), 0);
  EXPECT_GT(label_compare("abcd", "abc"), 0);
  EXPECT_TRUE(label_equal("Foo", "fOO"));
}

class NameRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NameRoundTrip, ParseOfToStringIsIdentity) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const auto labels = rng.uniform_int(1, 5);
    std::string text;
    for (int64_t l = 0; l < labels; ++l) {
      const auto len = rng.uniform_int(1, 12);
      for (int64_t i = 0; i < len; ++i) {
        text += static_cast<char>('a' + rng.uniform_int(0, 25));
      }
      text += '.';
    }
    const Name n = mk(text.c_str());
    EXPECT_EQ(mk(n.to_string().c_str()), n);
    EXPECT_EQ(n.to_string(), text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NameRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dnscup::dns

#include <gtest/gtest.h>

#include "net/sim_network.h"
#include "server/authoritative.h"
#include "server/update.h"

namespace dnscup::server {
namespace {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }
dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

dns::Zone seed_zone(std::size_t hosts) {
  dns::SOARdata soa;
  soa.mname = mk("ns1.inc.org");
  soa.rname = mk("admin.inc.org");
  soa.serial = 100;
  soa.minimum = 60;
  dns::Zone z =
      dns::Zone::make(mk("inc.org"), soa, 3600, {mk("ns1.inc.org")}, 3600);
  for (std::size_t i = 0; i < hosts; ++i) {
    z.add_record(mk(("h" + std::to_string(i) + ".inc.org").c_str()),
                 RRType::kA, 300,
                 dns::ARdata{dns::Ipv4{static_cast<uint32_t>(0x0A000000 + i)}});
  }
  return z;
}

class IxfrTest : public ::testing::Test {
 protected:
  IxfrTest()
      : network_(loop_, 1),
        master_ep_{net::make_ip(10, 0, 1, 1), 53},
        slave_ep_{net::make_ip(10, 0, 1, 2), 53},
        admin_{net::make_ip(10, 0, 9, 9), 5353},
        master_(network_.bind(master_ep_), loop_),
        slave_(network_.bind(slave_ep_), loop_, AuthServer::Role::kSlave) {
    master_.add_slave(slave_ep_);
    slave_.set_master(master_ep_);
    master_.add_zone(seed_zone(40));
    // Bootstrap via full transfer.
    slave_.request_transfer(mk("inc.org"));
    loop_.run_all();
  }

  void repoint(const char* host, const char* addr) {
    const Message update = UpdateBuilder(mk("inc.org"))
                               .replace_a(mk(host), 300, ip(addr))
                               .build(next_id_++);
    ASSERT_EQ(master_.handle(admin_, update)->flags.rcode, Rcode::kNoError);
  }

  net::EventLoop loop_;
  net::SimNetwork network_;
  net::Endpoint master_ep_;
  net::Endpoint slave_ep_;
  net::Endpoint admin_;
  AuthServer master_;
  AuthServer slave_;
  uint16_t next_id_ = 500;
};

TEST_F(IxfrTest, NotifyDrivesIncrementalTransfer) {
  const auto packets_before = network_.packets_delivered();
  repoint("h3.inc.org", "203.0.113.3");
  loop_.run_all();

  EXPECT_EQ(master_.stats().ixfr_served, 1u);
  EXPECT_EQ(master_.stats().ixfr_fallbacks, 0u);
  EXPECT_EQ(slave_.stats().ixfr_applied, 1u);
  const dns::Zone* z = slave_.find_zone(mk("inc.org"));
  EXPECT_EQ(z->serial(), 101u);
  EXPECT_EQ(std::get<dns::ARdata>(
                z->find(mk("h3.inc.org"), RRType::kA)->rdatas[0])
                .address,
            ip("203.0.113.3"));
  // Incremental transfer: far fewer packets than the 40-host bootstrap.
  EXPECT_LT(network_.packets_delivered() - packets_before, 8u);
}

TEST_F(IxfrTest, SlaveMatchesMasterExactlyAfterManySteps) {
  for (int i = 0; i < 10; ++i) {
    repoint(("h" + std::to_string(i) + ".inc.org").c_str(),
            ("198.51.100." + std::to_string(i + 1)).c_str());
    loop_.run_all();
  }
  EXPECT_TRUE(dns::diff_zones(*master_.find_zone(mk("inc.org")),
                              *slave_.find_zone(mk("inc.org")))
                  .empty());
  EXPECT_EQ(slave_.find_zone(mk("inc.org"))->serial(), 110u);
  EXPECT_GE(slave_.stats().ixfr_applied, 10u);
}

TEST_F(IxfrTest, MultiStepDiffAfterPartition) {
  // The slave misses several NOTIFYs; the next transfer carries a chained
  // multi-step diff.
  network_.partition(master_ep_, slave_ep_);
  repoint("h1.inc.org", "198.51.100.21");
  repoint("h2.inc.org", "198.51.100.22");
  repoint("h3.inc.org", "198.51.100.23");
  loop_.run_all();
  ASSERT_EQ(slave_.find_zone(mk("inc.org"))->serial(), 100u);  // stale

  network_.heal(master_ep_, slave_ep_);
  slave_.request_transfer(mk("inc.org"));
  loop_.run_all();

  EXPECT_EQ(slave_.find_zone(mk("inc.org"))->serial(), 103u);
  EXPECT_TRUE(dns::diff_zones(*master_.find_zone(mk("inc.org")),
                              *slave_.find_zone(mk("inc.org")))
                  .empty());
  EXPECT_GE(master_.stats().ixfr_served, 1u);
  EXPECT_EQ(master_.stats().ixfr_fallbacks, 0u);
}

TEST_F(IxfrTest, UpToDateSlaveGetsSingleSoa) {
  const auto packets_before = network_.packets_delivered();
  slave_.request_transfer(mk("inc.org"));
  loop_.run_all();
  EXPECT_EQ(network_.packets_delivered() - packets_before, 2u);  // req+SOA
  EXPECT_EQ(slave_.find_zone(mk("inc.org"))->serial(), 100u);
  EXPECT_EQ(slave_.stats().ixfr_applied, 0u);
}

TEST_F(IxfrTest, JournalEvictionForcesFullTransferFallback) {
  master_.set_journal_limit(2);
  network_.partition(master_ep_, slave_ep_);
  for (int i = 0; i < 5; ++i) {  // 5 steps > journal of 2
    repoint(("h" + std::to_string(i) + ".inc.org").c_str(),
            ("198.51.101." + std::to_string(i + 1)).c_str());
  }
  loop_.run_all();
  network_.heal(master_ep_, slave_ep_);

  slave_.request_transfer(mk("inc.org"));
  loop_.run_all();
  EXPECT_GE(master_.stats().ixfr_fallbacks, 1u);
  EXPECT_EQ(slave_.find_zone(mk("inc.org"))->serial(), 105u);
  EXPECT_TRUE(dns::diff_zones(*master_.find_zone(mk("inc.org")),
                              *slave_.find_zone(mk("inc.org")))
                  .empty());
}

TEST_F(IxfrTest, JournalSizeBounded) {
  master_.set_journal_limit(3);
  for (int i = 0; i < 8; ++i) {
    repoint("h0.inc.org", ("198.51.102." + std::to_string(i + 1)).c_str());
    loop_.run_all();
  }
  EXPECT_LE(master_.journal_size(mk("inc.org")), 3u);
}

TEST_F(IxfrTest, RecordAdditionAndRemovalTransferIncrementally) {
  const Message update =
      UpdateBuilder(mk("inc.org"))
          .add(mk("brand-new.inc.org"), 120, dns::ARdata{ip("203.0.113.77")})
          .delete_rrset(mk("h7.inc.org"), RRType::kA)
          .build(next_id_++);
  ASSERT_EQ(master_.handle(admin_, update)->flags.rcode, Rcode::kNoError);
  loop_.run_all();

  const dns::Zone* z = slave_.find_zone(mk("inc.org"));
  EXPECT_NE(z->find(mk("brand-new.inc.org"), RRType::kA), nullptr);
  EXPECT_EQ(z->find(mk("h7.inc.org"), RRType::kA), nullptr);
  EXPECT_EQ(slave_.stats().ixfr_applied, 1u);
}

TEST_F(IxfrTest, ChangeHooksFireOnIncrementalApply) {
  std::vector<dns::RRsetChange> seen;
  slave_.add_change_listener(
      [&](const dns::Zone&, const std::vector<dns::RRsetChange>& changes) {
        seen = changes;
      });
  repoint("h9.inc.org", "203.0.113.9");
  loop_.run_all();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].name, mk("h9.inc.org"));
}

TEST_F(IxfrTest, IxfrWithoutClientSoaFallsBackToFullZone) {
  auto& probe = network_.bind({net::make_ip(10, 0, 7, 7), 53});
  std::size_t responses = 0;
  probe.set_receive_handler(
      [&](const net::Endpoint&, std::span<const uint8_t>) { ++responses; });
  Message req;
  req.id = 9;
  req.questions.push_back(
      dns::Question{mk("inc.org"), RRType::kIXFR, dns::RRClass::kIN, 0});
  probe.send(master_ep_, req.encode());
  loop_.run_all();
  EXPECT_GE(responses, 2u);  // chunked full zone
  EXPECT_GE(master_.stats().ixfr_fallbacks, 1u);
}

TEST_F(IxfrTest, IxfrForUnknownZoneNotAuth) {
  auto& probe = network_.bind({net::make_ip(10, 0, 7, 8), 53});
  std::optional<Message> got;
  probe.set_receive_handler(
      [&](const net::Endpoint&, std::span<const uint8_t> data) {
        got = Message::decode(data).value();
      });
  Message req;
  req.id = 10;
  req.questions.push_back(
      dns::Question{mk("other.org"), RRType::kIXFR, dns::RRClass::kIN, 0});
  probe.send(master_ep_, req.encode());
  loop_.run_all();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->flags.rcode, Rcode::kNotAuth);
}

TEST_F(IxfrTest, AllTransferDatagramsUnder512) {
  for (int i = 0; i < 6; ++i) {
    repoint(("h" + std::to_string(10 + i) + ".inc.org").c_str(),
            ("198.51.103." + std::to_string(i + 1)).c_str());
    loop_.run_all();
  }
  EXPECT_LE(network_.max_packet_bytes(), dns::kMaxUdpPayload);
}

TEST_F(IxfrTest, LossyLinkStillConverges) {
  // Chunks or notifies may vanish; a later explicit refresh converges.
  network_.set_link(master_ep_, slave_ep_,
                    {net::milliseconds(1), 0, 0.3, 0.0});
  for (int i = 0; i < 4; ++i) {
    repoint("h5.inc.org", ("198.51.104." + std::to_string(i + 1)).c_str());
    loop_.run_all();
  }
  network_.heal(master_ep_, slave_ep_);
  slave_.request_transfer(mk("inc.org"));
  loop_.run_all();
  slave_.request_transfer(mk("inc.org"));  // second round in case of gaps
  loop_.run_all();
  EXPECT_TRUE(dns::diff_zones(*master_.find_zone(mk("inc.org")),
                              *slave_.find_zone(mk("inc.org")))
                  .empty());
}

}  // namespace
}  // namespace dnscup::server

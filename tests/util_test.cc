#include <gtest/gtest.h>

#include <cmath>

#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dnscup::util {
namespace {

// ---- Result / Status ------------------------------------------------------

Result<int> half(int x) {
  if (x % 2 != 0) {
    return make_error(ErrorCode::kInvalidArgument, "odd input");
  }
  return x / 2;
}

Result<int> quarter(int x) {
  DNSCUP_ASSIGN_OR_RETURN(int h, half(x));
  DNSCUP_ASSIGN_OR_RETURN(int q, half(h));
  return q;
}

Status check_even(int x) {
  if (x % 2 != 0) return Status(ErrorCode::kInvalidArgument, "odd");
  return {};
}

TEST(Result, HoldsValue) {
  auto r = half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
}

TEST(Result, HoldsError) {
  auto r = half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.error().message, "odd input");
}

TEST(Result, ValueOr) {
  EXPECT_EQ(half(3).value_or(-1), -1);
  EXPECT_EQ(half(8).value_or(-1), 4);
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(quarter(8).value(), 2);
  EXPECT_FALSE(quarter(8 + 2).ok());  // 10/2=5 is odd -> propagated error
  EXPECT_FALSE(quarter(7).ok());
}

TEST(Result, ErrorToString) {
  const Error e = make_error(ErrorCode::kTruncated, "short read");
  EXPECT_EQ(e.to_string(), "truncated: short read");
}

TEST(Status, OkAndError) {
  EXPECT_TRUE(check_even(2).ok());
  const Status s = check_even(3);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kInvalidArgument);
}

TEST(Status, TryMacro) {
  auto both_even = [](int a, int b) -> Status {
    DNSCUP_TRY(check_even(a));
    DNSCUP_TRY(check_even(b));
    return {};
  };
  EXPECT_TRUE(both_even(2, 4).ok());
  EXPECT_FALSE(both_even(2, 3).ok());
  EXPECT_FALSE(both_even(1, 4).ok());
}

TEST(ErrorCode, AllNamesDistinct) {
  EXPECT_STREQ(to_string(ErrorCode::kTruncated), "truncated");
  EXPECT_STREQ(to_string(ErrorCode::kMalformed), "malformed");
  EXPECT_STREQ(to_string(ErrorCode::kNotFound), "not-found");
  EXPECT_STREQ(to_string(ErrorCode::kIo), "io");
}

// ---- RunningStats ----------------------------------------------------------

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, CvOfConstantIsZero) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.add(3.5);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStats, CvOfExponentialNearOne) {
  // The CV of an exponential distribution is exactly 1 — the property the
  // paper's Figure 4 uses to validate the Poisson assumption.
  Rng rng(123);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.cv(), 1.0, 0.02);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng(7);
  RunningStats a, b, combined;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    combined.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(9);
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.normal(0, 1));
  for (int i = 0; i < 10000; ++i) large.add(rng.normal(0, 1));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  EXPECT_NEAR(large.ci95_halfwidth(), 1.96 / 100.0, 0.004);
}

// ---- Histogram --------------------------------------------------------------

TEST(Histogram, BinningAndPdf) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.05);   // bin 0
  h.add(0.05);
  h.add(0.55);   // bin 5
  h.add(0.95);   // bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  const auto pdf = h.pdf();
  EXPECT_DOUBLE_EQ(pdf[0], 0.5);
  EXPECT_DOUBLE_EQ(pdf[5], 0.25);
  double sum = 0.0;
  for (double p : pdf) sum += p;
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(2.0);
  h.add(1.0);  // exactly hi clamps into the last bin
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 2u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.125);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 0.875);
}

TEST(Histogram, EmptyPdfAllZero) {
  Histogram h(0.0, 1.0, 3);
  for (double p : h.pdf()) EXPECT_DOUBLE_EQ(p, 0.0);
}

// ---- percentile --------------------------------------------------------------

TEST(Percentile, Basics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 10), 1.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99), 42.0);
}

// ---- Rng ----------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(555), b(555);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(1), b(1);
  Rng fa = a.fork();
  Rng fb = b.fork();
  EXPECT_EQ(fa.uniform_int(0, 1 << 30), fb.uniform_int(0, 1 << 30));
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, PoissonMean) {
  Rng rng(6);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(static_cast<double>(rng.poisson(3.0)));
  }
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.variance(), 3.0, 0.1);  // Poisson: var = mean
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

// ---- Zipf ------------------------------------------------------------------

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf(100, 0.9);
  double sum = 0.0;
  for (std::size_t i = 0; i < 100; ++i) sum += zipf.pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, RankZeroMostPopular) {
  ZipfDistribution zipf(50, 1.0);
  for (std::size_t i = 1; i < 50; ++i) {
    EXPECT_GT(zipf.pmf(0), zipf.pmf(i));
  }
}

TEST(Zipf, EmpiricalMatchesPmf) {
  ZipfDistribution zipf(10, 1.0);
  Rng rng(77);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.pmf(r), 0.01);
  }
}

TEST(Zipf, SamplesInRange) {
  ZipfDistribution zipf(7, 0.5);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.sample(rng), 7u);
  }
}

}  // namespace
}  // namespace dnscup::util

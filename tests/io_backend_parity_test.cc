// I/O-backend conformance: the portable (recvmmsg/sendmmsg) and io_uring
// backends must be byte-for-byte interchangeable.  A backend is pure
// plumbing — the DNS bytes on the wire, the CACHE-UPDATE push flow and
// the ack bookkeeping may not depend on which one carries them.
//
// Every uring case skips (with a visible message) when the kernel lacks
// the io_uring features the backend needs, so the suite stays green on
// old kernels while exercising both backends where it can.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "cachert/cache_runtime.h"
#include "dns/zone_text.h"
#include "net/io_backend.h"
#include "net/udp_transport.h"
#include "runtime/runtime.h"

namespace dnscup {
namespace {

bool uring_available() {
  return net::uring_compiled() && net::uring_runtime_probe().ok();
}

#define SKIP_WITHOUT_URING()                                              \
  do {                                                                    \
    if (!uring_available()) {                                             \
      GTEST_SKIP() << "io_uring backend unavailable on this kernel — "    \
                      "parity checked against portable only";             \
    }                                                                     \
  } while (0)

dns::Zone zone_with(const char* address, uint32_t serial, uint32_t ttl) {
  char text[512];
  std::snprintf(text, sizeof text,
                "$ORIGIN example.com.\n"
                "@ IN SOA ns1.example.com. admin.example.com. %u 7200 900 "
                "604800 300\n"
                "@ %u IN NS ns1.example.com.\n"
                "ns1 %u IN A 10.0.0.1\n"
                "www %u IN A %s\n",
                serial, ttl, ttl, ttl, address);
  auto zone =
      dns::parse_zone_text(text, dns::Name::parse("example.com").value());
  EXPECT_TRUE(zone.ok()) << (zone.ok() ? "" : zone.error().to_string());
  return std::move(zone).value();
}

uint64_t counter_sum(const metrics::Snapshot& snapshot, const char* name,
                     const char* key = nullptr,
                     const char* value = nullptr) {
  uint64_t total = 0;
  for (const auto& entry : snapshot.entries) {
    if (entry.kind != metrics::InstrumentKind::kCounter) continue;
    if (entry.name != name) continue;
    if (key != nullptr) {
      bool match = false;
      for (const auto& [k, v] : entry.labels) {
        if (k == key && v == value) {
          match = true;
          break;
        }
      }
      if (!match) continue;
    }
    total += entry.counter_value;
  }
  return total;
}

/// A raw-bytes stub client (always on the portable backend, so the
/// variable under test is only the *server's* backend).  Sends pre-built
/// wire images and records each response verbatim.
class RawClient {
 public:
  RawClient() {
    auto bound = net::UdpTransport::bind(0);
    EXPECT_TRUE(bound.ok());
    udp_ = std::move(bound).value();
    udp_->set_receive_handler(
        [this](const net::Endpoint&, std::span<const uint8_t> data) {
          std::lock_guard lock(mutex_);
          responses_.emplace_back(data.begin(), data.end());
          cv_.notify_all();
        });
  }
  ~RawClient() { udp_->stop_receiving(); }

  /// Sends `wire` and blocks for the response whose id matches its first
  /// two bytes.  Returns the raw response bytes (empty on timeout).
  std::vector<uint8_t> exchange(const net::Endpoint& server,
                                std::span<const uint8_t> wire) {
    udp_->send(server, wire);
    std::vector<uint8_t> response;
    std::unique_lock lock(mutex_);
    cv_.wait_for(lock, std::chrono::seconds(5), [&] {
      for (const auto& bytes : responses_) {
        if (bytes.size() >= 2 && bytes[0] == wire[0] && bytes[1] == wire[1]) {
          response = bytes;
          return true;
        }
      }
      return false;
    });
    return response;
  }

 private:
  std::unique_ptr<net::UdpTransport> udp_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::vector<uint8_t>> responses_;
};

std::vector<uint8_t> encode_query(uint16_t id, const char* name, bool ext) {
  dns::Message query;
  query.id = id;
  query.flags.opcode = dns::Opcode::kQuery;
  query.flags.rd = true;
  query.flags.ext = ext;
  query.questions.push_back(
      dns::Question{dns::Name::parse(name).value(), dns::RRType::kA,
                    dns::RRClass::kIN,
                    ext ? dns::rrc_from_rate(10.0) : static_cast<uint16_t>(0)});
  return query.encode();
}

// ---------------------------------------------------------------------
// Backend basics, run against each backend in turn.

void roundtrip_scenario(net::IoBackendKind kind) {
  net::IoBackend::Options options;
  options.port = 0;
  options.reuseport = false;
  auto server = net::bind_io_backend(kind, options);
  ASSERT_TRUE(server.ok()) << server.error().to_string();
  auto client = net::bind_io_backend(kind, options);
  ASSERT_TRUE(client.ok()) << client.error().to_string();

  // The server echoes each datagram back with the first byte flipped,
  // through the batched tx path.
  net::IoBackend* server_io = server.value().get();
  server_io->set_batch_receive_handler(
      [server_io](std::span<const net::RxPacket> batch) {
        std::vector<std::vector<uint8_t>> copies;
        copies.reserve(batch.size());  // spans into copies must stay valid
        std::vector<net::TxPacket> replies;
        for (const auto& packet : batch) {
          std::vector<uint8_t> bytes(packet.data.begin(), packet.data.end());
          bytes[0] ^= 0xFF;
          copies.push_back(std::move(bytes));
          replies.push_back(net::TxPacket{packet.from, copies.back()});
        }
        server_io->send_batch(replies);
      });

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::vector<uint8_t>> echoed;
  client.value()->set_batch_receive_handler(
      [&](std::span<const net::RxPacket> batch) {
        std::lock_guard lock(mutex);
        for (const auto& packet : batch) {
          echoed.emplace_back(packet.data.begin(), packet.data.end());
        }
        cv.notify_all();
      });

  constexpr int kPackets = 100;
  const net::Endpoint server_ep = server_io->local_endpoint();
  for (int i = 0; i < kPackets; ++i) {
    std::vector<uint8_t> payload(64, static_cast<uint8_t>(i));
    client.value()->send(server_ep, payload);
  }
  std::unique_lock lock(mutex);
  const bool all = cv.wait_for(lock, std::chrono::seconds(5), [&] {
    return echoed.size() >= kPackets;
  });
  ASSERT_TRUE(all) << "echoed " << echoed.size() << "/" << kPackets;
  for (const auto& bytes : echoed) {
    ASSERT_EQ(bytes.size(), 64u);
    EXPECT_EQ(bytes[0], static_cast<uint8_t>(bytes[1] ^ 0xFF));
  }
  lock.unlock();
  client.value()->stop_receiving();
  server_io->stop_receiving();
}

TEST(IoBackendBasics, PortableRoundtrip) {
  roundtrip_scenario(net::IoBackendKind::kPortable);
}

TEST(IoBackendBasics, UringRoundtrip) {
  SKIP_WITHOUT_URING();
  roundtrip_scenario(net::IoBackendKind::kUring);
}

// Repeated bind / serve / stop / destroy cycles: no slot, ring or fd
// leaks across restarts (the ASan leg turns any leak into a failure).
void stop_restart_scenario(net::IoBackendKind kind) {
  for (int cycle = 0; cycle < 5; ++cycle) {
    net::IoBackend::Options options;
    options.port = 0;
    options.reuseport = false;
    auto io = net::bind_io_backend(kind, options);
    ASSERT_TRUE(io.ok()) << "cycle " << cycle;
    std::atomic<int> received{0};
    io.value()->set_batch_receive_handler(
        [&](std::span<const net::RxPacket> batch) {
          received.fetch_add(static_cast<int>(batch.size()));
        });
    auto sender = net::UdpTransport::bind(0);
    ASSERT_TRUE(sender.ok());
    const std::vector<uint8_t> payload(32, 0xAB);
    for (int i = 0; i < 10; ++i) {
      sender.value()->send(io.value()->local_endpoint(), payload);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (received.load() < 10 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(received.load(), 10) << "cycle " << cycle;
    io.value()->stop_receiving();
    sender.value()->stop_receiving();
    // Destructors run here; the next cycle starts from scratch.
  }
}

TEST(IoBackendBasics, PortableStopRestartNoLeaks) {
  stop_restart_scenario(net::IoBackendKind::kPortable);
}

TEST(IoBackendBasics, UringStopRestartNoLeaks) {
  SKIP_WITHOUT_URING();
  stop_restart_scenario(net::IoBackendKind::kUring);
}

// ---------------------------------------------------------------------
// Byte parity: the authority must produce identical response bytes under
// both backends for an identical query stream.

struct AuthorityTrace {
  std::vector<std::vector<uint8_t>> responses;
};

AuthorityTrace authority_scenario(net::IoBackendKind kind) {
  AuthorityTrace trace;
  runtime::Config config;
  config.port = 0;
  config.workers = 1;
  config.io_backend = kind;
  auto authority = runtime::ServingRuntime::start(
      config, {zone_with("10.1.0.10", 1, 300)});
  EXPECT_TRUE(authority.ok());
  if (!authority.ok()) return trace;

  RawClient client;
  const net::Endpoint server = authority.value()->endpoints()[0];
  // Fixed, fully deterministic query stream: hits, a miss (NXDOMAIN),
  // repeats, then the same again after a zone reload.
  uint16_t id = 1;
  const char* kNames[] = {"www.example.com", "ns1.example.com",
                          "nonexistent.example.com", "www.example.com"};
  for (const char* name : kNames) {
    trace.responses.push_back(
        client.exchange(server, encode_query(id++, name, false)));
  }
  authority.value()->reload_zone(zone_with("10.9.9.9", 2, 300));
  for (const char* name : kNames) {
    trace.responses.push_back(
        client.exchange(server, encode_query(id++, name, false)));
  }
  authority.value()->stop();
  return trace;
}

TEST(IoBackendParity, AuthorityResponseBytesIdentical) {
  SKIP_WITHOUT_URING();
  const AuthorityTrace portable =
      authority_scenario(net::IoBackendKind::kPortable);
  const AuthorityTrace uring = authority_scenario(net::IoBackendKind::kUring);
  ASSERT_EQ(portable.responses.size(), uring.responses.size());
  for (std::size_t i = 0; i < portable.responses.size(); ++i) {
    ASSERT_FALSE(portable.responses[i].empty()) << "query " << i;
    EXPECT_EQ(portable.responses[i], uring.responses[i])
        << "response bytes diverge at query " << i;
  }
}

// ---------------------------------------------------------------------
// CACHE-UPDATE / ack parity: the full push flow — lease grant, push on
// zone change, apply, ack — must produce the same counters and the same
// converged answer under both backends.

struct PushTrace {
  std::string converged_address;
  uint64_t auth_pushes_sent = 0;
  uint64_t auth_pushes_acked = 0;
  uint64_t cache_updates_applied = 0;
  uint64_t cache_acks_sent = 0;
  std::size_t cache_live_leases = 0;
  std::string backend;
};

PushTrace push_scenario(net::IoBackendKind kind) {
  PushTrace trace;
  runtime::Config auth_config;
  auth_config.port = 0;
  auth_config.workers = 1;
  auth_config.io_backend = kind;
  auto authority = runtime::ServingRuntime::start(
      auth_config, {zone_with("10.1.0.10", 1, 300)});
  EXPECT_TRUE(authority.ok());
  if (!authority.ok()) return trace;

  cachert::Config cache_config;
  cache_config.port = 0;
  cache_config.workers = 1;
  cache_config.io_backend = kind;
  cache_config.upstreams = {authority.value()->endpoints()[0]};
  auto cache = cachert::CacheRuntime::start(cache_config);
  EXPECT_TRUE(cache.ok());
  if (!cache.ok()) return trace;
  trace.backend = std::string(cache.value()->io_backend_name());

  RawClient client;
  const net::Endpoint cache_ep = cache.value()->endpoints()[0];
  // Warm with an EXT query so a lease is granted on both sides.
  auto warm = client.exchange(cache_ep, encode_query(1, "www.example.com",
                                                     /*ext=*/true));
  EXPECT_FALSE(warm.empty());

  authority.value()->reload_zone(zone_with("10.9.9.9", 2, 300));

  // Poll until the push lands and the cache serves the new address.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  uint16_t id = 2;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto bytes =
        client.exchange(cache_ep, encode_query(id++, "www.example.com",
                                               /*ext=*/false));
    auto message = dns::Message::decode(bytes);
    if (message.ok()) {
      for (const auto& rr : message.value().answers) {
        if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
          trace.converged_address = a->address.to_string();
        }
      }
    }
    if (trace.converged_address == "10.9.9.9") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Ack is fire-and-forget after apply; give it a moment to register.
  const auto ack_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < ack_deadline) {
    if (counter_sum(authority.value()->metrics(), "cache_update_messages",
                    "result", "acked") > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  trace.cache_live_leases = cache.value()->live_leases();
  const auto auth_metrics = authority.value()->metrics();
  const auto cache_metrics = cache.value()->metrics();
  trace.auth_pushes_sent =
      counter_sum(auth_metrics, "cache_update_messages", "result", "sent");
  trace.auth_pushes_acked =
      counter_sum(auth_metrics, "cache_update_messages", "result", "acked");
  trace.cache_updates_applied =
      counter_sum(cache_metrics, "lease_client_updates", "result", "applied");
  trace.cache_acks_sent =
      counter_sum(cache_metrics, "lease_client_acks_sent");
  cache.value()->stop();
  authority.value()->stop();
  return trace;
}

TEST(IoBackendParity, CacheUpdateAndAckBehaviorIdentical) {
  SKIP_WITHOUT_URING();
  const PushTrace portable = push_scenario(net::IoBackendKind::kPortable);
  const PushTrace uring = push_scenario(net::IoBackendKind::kUring);
  EXPECT_EQ(portable.backend, "portable");
  EXPECT_EQ(uring.backend, "uring");
  EXPECT_EQ(portable.converged_address, "10.9.9.9");
  EXPECT_EQ(uring.converged_address, "10.9.9.9");
  EXPECT_EQ(portable.auth_pushes_sent, uring.auth_pushes_sent);
  EXPECT_EQ(portable.auth_pushes_acked, uring.auth_pushes_acked);
  EXPECT_EQ(portable.cache_updates_applied, uring.cache_updates_applied);
  EXPECT_EQ(portable.cache_acks_sent, uring.cache_acks_sent);
  EXPECT_EQ(portable.cache_live_leases, uring.cache_live_leases);
}

// The portable scenario must pass standalone on every kernel — it is the
// baseline the uring comparisons anchor to.
TEST(IoBackendParity, PortablePushFlowBaseline) {
  const PushTrace trace = push_scenario(net::IoBackendKind::kPortable);
  EXPECT_EQ(trace.backend, "portable");
  EXPECT_EQ(trace.converged_address, "10.9.9.9");
  EXPECT_GE(trace.auth_pushes_sent, 1u);
  EXPECT_GE(trace.cache_updates_applied, 1u);
  EXPECT_GE(trace.cache_acks_sent, 1u);
  EXPECT_EQ(trace.cache_live_leases, 1u);
}

}  // namespace
}  // namespace dnscup

// DnscupAuthority configuration tests: normalization of the deprecated
// always_grant alias into Config::policy, and the authority-level
// occupancy gauges published at construction.
#include "core/dnscup_authority.h"

#include <gtest/gtest.h>

#include "net/sim_network.h"

namespace dnscup::core {
namespace {

using PolicyKind = DnscupAuthority::PolicyKind;

struct Fixture {
  net::EventLoop loop;
  net::SimNetwork network{loop, /*seed=*/1};
  server::AuthServer server{network.bind({net::make_ip(10, 0, 0, 1), 53}),
                            loop};

  DnscupAuthority make(DnscupAuthority::Config config) {
    if (config.max_lease == nullptr) {
      config.max_lease = [](const dns::Name&, dns::RRType) {
        return net::hours(1);
      };
    }
    return DnscupAuthority(server, loop, std::move(config));
  }
};

TEST(DnscupAuthorityConfig, DefaultPolicyIsStorageBudget) {
  Fixture fx;
  DnscupAuthority authority = fx.make({});
  EXPECT_EQ(authority.policy_kind(), PolicyKind::kStorageBudget);
}

// Regression: the deprecated alias used to be consulted only inside
// make_policy, leaving policy_kind() (and anything else reading
// Config::policy) reporting kStorageBudget while an AlwaysGrantPolicy was
// actually in effect.  The constructor now normalizes the alias into
// `policy` so the two can never disagree.
TEST(DnscupAuthorityConfig, AlwaysGrantAliasNormalizedIntoPolicy) {
  Fixture fx;
  DnscupAuthority::Config config;
  config.always_grant = true;
  DnscupAuthority authority = fx.make(std::move(config));
  EXPECT_EQ(authority.policy_kind(), PolicyKind::kAlwaysGrant);
}

TEST(DnscupAuthorityConfig, ExplicitPolicyKeptWhenAliasUnset) {
  Fixture fx;
  DnscupAuthority::Config config;
  config.policy = PolicyKind::kCommBudget;
  DnscupAuthority authority = fx.make(std::move(config));
  EXPECT_EQ(authority.policy_kind(), PolicyKind::kCommBudget);
}

TEST(DnscupAuthorityMetrics, OccupancyGaugesPublishedAtConstruction) {
  Fixture fx;
  metrics::MetricsRegistry registry;
  DnscupAuthority::Config config;
  config.metrics = &registry;
  config.storage_budget = 1234;
  DnscupAuthority authority = fx.make(std::move(config));
  authority.refresh_gauges();

  const metrics::Snapshot snap = registry.snapshot();
  const auto* budget = snap.find("authority_storage_budget");
  ASSERT_NE(budget, nullptr);
  EXPECT_DOUBLE_EQ(budget->gauge_value, 1234.0);
  const auto* live = snap.find("authority_live_leases");
  ASSERT_NE(live, nullptr);
  EXPECT_DOUBLE_EQ(live->gauge_value, 0.0);
  // The wrapped modules registered their families in the same registry.
  EXPECT_NE(snap.find("detection_change_events"), nullptr);
}

}  // namespace
}  // namespace dnscup::core

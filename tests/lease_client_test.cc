#include <gtest/gtest.h>

#include "core/cache_update.h"
#include "sim/testbed.h"

namespace dnscup::core {
namespace {

using dns::RRType;
using sim::Testbed;
using sim::TestbedConfig;
using Outcome = server::CachingResolver::Outcome;

dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

TestbedConfig small_config() {
  TestbedConfig config;
  config.zones = 4;
  config.caches = 2;
  config.record_ttl = 300;
  config.max_lease = net::hours(2);
  return config;
}

TEST(LeaseClient, ReportsRrcOnUpstreamQueries) {
  Testbed tb(small_config());
  // Several client queries establish a local rate before the cache misses.
  for (int i = 0; i < 5; ++i) {
    tb.resolve(0, tb.web_host(0), RRType::kA);
  }
  EXPECT_GT(tb.lease_client(0)->stats().rrc_reports, 0u);
  // The authority observed EXT queries.
  EXPECT_GT(tb.dnscup()->listener().stats().ext_queries, 0u);
}

TEST(LeaseClient, RegistersLeaseFromLlt) {
  Testbed tb(small_config());
  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kOk);
  EXPECT_EQ(tb.lease_client(0)->stats().leases_registered, 1u);
  EXPECT_EQ(tb.lease_client(0)->live_leases(tb.loop().now()), 1u);
  // Authority agrees.
  EXPECT_EQ(tb.dnscup()->track_file().live_count(tb.loop().now()), 1u);
  const auto holders = tb.dnscup()->track_file().holders_of(
      tb.web_host(0), RRType::kA, tb.loop().now());
  ASSERT_EQ(holders.size(), 1u);
}

TEST(LeaseClient, LeaseKeepsEntryUsableBeyondTtl) {
  Testbed tb(small_config());
  tb.resolve(0, tb.web_host(0), RRType::kA);
  const auto upstream_before = tb.cache(0).stats().upstream_queries;
  // Far beyond the 300 s TTL but within the 2 h lease.
  tb.loop().run_until(tb.loop().now() + net::seconds(3000));
  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kOk);
  EXPECT_TRUE(r->from_cache);
  EXPECT_EQ(tb.cache(0).stats().upstream_queries, upstream_before);
}

TEST(LeaseClient, PushedUpdateAppliedAndAcked) {
  Testbed tb(small_config());
  tb.resolve(0, tb.web_host(0), RRType::kA);

  ASSERT_EQ(tb.repoint_web_host(0, ip("198.18.0.1")), dns::Rcode::kNoError);
  tb.loop().run_for(net::seconds(2));

  const auto& stats = tb.lease_client(0)->stats();
  EXPECT_EQ(stats.updates_received, 1u);
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.acks_sent, 1u);
  // The cache now answers with the new address without any re-resolution.
  const auto upstream_before = tb.cache(0).stats().upstream_queries;
  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("198.18.0.1"));
  EXPECT_TRUE(r->from_cache);
  EXPECT_EQ(tb.cache(0).stats().upstream_queries, upstream_before);
}

TEST(LeaseClient, LeaseSurvivesPush) {
  Testbed tb(small_config());
  tb.resolve(0, tb.web_host(0), RRType::kA);
  tb.repoint_web_host(0, ip("198.18.0.2"));
  tb.loop().run_for(net::seconds(2));
  EXPECT_EQ(tb.lease_client(0)->live_leases(tb.loop().now()), 1u);
  // A second change is also pushed (the lease is still tracked).
  tb.repoint_web_host(0, ip("198.18.0.3"));
  tb.loop().run_for(net::seconds(2));
  EXPECT_EQ(tb.lease_client(0)->stats().updates_applied, 2u);
}

TEST(LeaseClient, OnlyLeaseholderGetsPush) {
  Testbed tb(small_config());
  tb.resolve(0, tb.web_host(0), RRType::kA);  // cache 0 leases zone0
  tb.resolve(1, tb.web_host(1), RRType::kA);  // cache 1 leases zone1
  tb.repoint_web_host(0, ip("198.18.0.4"));
  tb.loop().run_for(net::seconds(2));
  EXPECT_EQ(tb.lease_client(0)->stats().updates_received, 1u);
  EXPECT_EQ(tb.lease_client(1)->stats().updates_received, 0u);
}

TEST(LeaseClient, UnauthorizedPushIgnored) {
  Testbed tb(small_config());
  tb.resolve(0, tb.web_host(0), RRType::kA);

  // An attacker (not the lease grantor) pushes a poisoned mapping.
  auto& attacker = tb.network().bind({net::make_ip(10, 6, 6, 6), 53});
  dns::RRset poisoned{tb.web_host(0), RRType::kA, dns::RRClass::kIN, 300,
                      {}};
  poisoned.add(dns::ARdata{ip("6.6.6.6")});
  std::vector<dns::RRsetChange> changes{
      {tb.web_host(0), RRType::kA, std::nullopt, poisoned}};
  const dns::Message evil =
      encode_cache_update(666, tb.zone_origin(0), 999, changes);
  attacker.send({net::make_ip(10, 0, 2, 1), 53}, evil.encode());
  tb.loop().run_for(net::seconds(2));

  EXPECT_EQ(tb.lease_client(0)->stats().unauthorized_updates, 1u);
  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  ASSERT_TRUE(r.has_value());
  EXPECT_NE(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("6.6.6.6"));
}

TEST(LeaseClient, StaleSerialIgnoredButAcked) {
  Testbed tb(small_config());
  tb.resolve(0, tb.web_host(0), RRType::kA);
  tb.repoint_web_host(0, ip("198.18.0.5"));
  tb.loop().run_for(net::seconds(2));
  const uint32_t current_serial =
      tb.master().find_zone(tb.zone_origin(0))->serial();

  // Replay an *older* update from the authority's endpoint.
  dns::RRset old_data{tb.web_host(0), RRType::kA, dns::RRClass::kIN, 300,
                      {}};
  old_data.add(dns::ARdata{ip("203.0.113.99")});
  std::vector<dns::RRsetChange> changes{
      {tb.web_host(0), RRType::kA, std::nullopt, old_data}};
  const dns::Message replay = encode_cache_update(
      4242, tb.zone_origin(0), current_serial - 1, changes);
  // Sent from the master's own transport so it is "authorized".
  tb.master().transport().send({net::make_ip(10, 0, 2, 1), 53},
                               replay.encode());
  tb.loop().run_for(net::seconds(2));

  EXPECT_EQ(tb.lease_client(0)->stats().stale_updates_ignored, 1u);
  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("198.18.0.5"));
}

TEST(LeaseClient, DuplicatePushReAcked) {
  TestbedConfig config = small_config();
  config.link.duplicate_probability = 1.0;  // every packet duplicated
  Testbed tb(config);
  tb.resolve(0, tb.web_host(0), RRType::kA);
  tb.repoint_web_host(0, ip("198.18.0.6"));
  tb.loop().run_for(net::seconds(2));
  const auto& stats = tb.lease_client(0)->stats();
  EXPECT_GE(stats.updates_received, 2u);  // original + duplicate
  EXPECT_EQ(stats.stale_updates_ignored, stats.updates_received - 1);
  EXPECT_EQ(stats.acks_sent, stats.updates_received);  // every copy acked
  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("198.18.0.6"));
}

TEST(LeaseClient, RenegotiatesOnRateSurge) {
  Testbed tb(small_config());
  // Baseline: a handful of queries establish a modest rate, then a lease.
  for (int i = 0; i < 3; ++i) {
    tb.resolve(0, tb.web_host(0), RRType::kA);
    tb.loop().run_for(net::minutes(10));
  }
  ASSERT_GT(tb.lease_client(0)->live_leases(tb.loop().now()), 0u);
  const auto upstream_before = tb.cache(0).stats().upstream_queries;

  // Flash crowd: the client query rate surges well past the negotiated
  // band while the entry is still cached+leased.
  for (int i = 0; i < 200; ++i) {
    tb.resolve(0, tb.web_host(0), RRType::kA);
    tb.loop().run_for(net::seconds(1));
  }
  EXPECT_GT(tb.lease_client(0)->stats().renegotiations, 0u);
  // The re-negotiation produced real upstream traffic (a refresh) even
  // though every client answer came from cache.
  EXPECT_GT(tb.cache(0).stats().upstream_queries, upstream_before);
}

TEST(LeaseClient, RenegotiationSettlesOnceRateIsStable) {
  // A cold-start rate estimate legitimately triggers a renegotiation or
  // two while the tracker warms up; once the estimate stabilizes at the
  // true rate, renegotiations must stop.
  Testbed tb(small_config());
  for (int i = 0; i < 40; ++i) {
    tb.resolve(0, tb.web_host(0), RRType::kA);
    tb.loop().run_for(net::minutes(1));
  }
  const uint64_t after_warmup = tb.lease_client(0)->stats().renegotiations;
  for (int i = 0; i < 40; ++i) {
    tb.resolve(0, tb.web_host(0), RRType::kA);
    tb.loop().run_for(net::minutes(1));
  }
  EXPECT_EQ(tb.lease_client(0)->stats().renegotiations, after_warmup);
}

TEST(LeaseClient, LegacyCacheUnaffected) {
  // dnscup disabled: no EXT flags, no leases, plain TTL behaviour.
  TestbedConfig config = small_config();
  config.dnscup_enabled = false;
  Testbed tb(config);
  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Outcome::Status::kOk);
  EXPECT_EQ(tb.lease_client(0), nullptr);
  // After a repoint, the cache keeps serving stale data until TTL expiry.
  tb.repoint_web_host(0, ip("198.18.0.7"));
  tb.loop().run_for(net::seconds(2));
  const auto stale = tb.resolve(0, tb.web_host(0), RRType::kA);
  EXPECT_NE(std::get<dns::ARdata>(stale->rrset.rdatas[0]).address,
            ip("198.18.0.7"));
}

TEST(LeaseClient, ChannelUpdateAppliedAndAckedThroughSender) {
  Testbed tb(small_config());
  tb.resolve(0, tb.web_host(0), RRType::kA);

  // The same CACHE-UPDATE the grantor would push, arriving over a TCP
  // subscription channel instead of UDP: the ack must leave through the
  // channel's sender, not the resolver transport.
  dns::RRset updated{tb.web_host(0), RRType::kA, dns::RRClass::kIN, 300, {}};
  updated.add(dns::ARdata{ip("198.18.7.7")});
  std::vector<dns::RRsetChange> changes{
      {tb.web_host(0), RRType::kA, std::nullopt, updated}};
  const dns::Message push =
      encode_cache_update(321, tb.zone_origin(0), 2, changes);

  std::vector<std::vector<uint8_t>> acks;
  EXPECT_TRUE(tb.lease_client(0)->on_channel_update(
      tb.master_endpoint(), push,
      [&](std::vector<uint8_t> ack) { acks.push_back(std::move(ack)); }));

  const auto& stats = tb.lease_client(0)->stats();
  EXPECT_EQ(stats.channel_updates, 1u);
  EXPECT_EQ(stats.updates_applied, 1u);
  ASSERT_EQ(acks.size(), 1u);
  auto decoded = dns::Message::decode(acks[0]);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().id, 321);
  EXPECT_TRUE(decoded.value().flags.qr);

  // The pushed mapping serves from cache, lease intact.
  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("198.18.7.7"));
  EXPECT_TRUE(r->from_cache);
  EXPECT_EQ(tb.lease_client(0)->live_leases(tb.loop().now()), 1u);
}

TEST(LeaseClient, ChannelUpdateFromImpostorNotAcked) {
  Testbed tb(small_config());
  tb.resolve(0, tb.web_host(0), RRType::kA);

  dns::RRset poisoned{tb.web_host(0), RRType::kA, dns::RRClass::kIN, 300,
                      {}};
  poisoned.add(dns::ARdata{ip("6.6.6.6")});
  std::vector<dns::RRsetChange> changes{
      {tb.web_host(0), RRType::kA, std::nullopt, poisoned}};
  const dns::Message evil =
      encode_cache_update(666, tb.zone_origin(0), 999, changes);

  std::vector<std::vector<uint8_t>> acks;
  EXPECT_TRUE(tb.lease_client(0)->on_channel_update(
      {net::make_ip(10, 6, 6, 6), 53}, evil,
      [&](std::vector<uint8_t> ack) { acks.push_back(std::move(ack)); }));
  EXPECT_TRUE(acks.empty());
  EXPECT_EQ(tb.lease_client(0)->stats().unauthorized_updates, 1u);
  const auto r = tb.resolve(0, tb.web_host(0), RRType::kA);
  ASSERT_TRUE(r.has_value());
  EXPECT_NE(std::get<dns::ARdata>(r->rrset.rdatas[0]).address,
            ip("6.6.6.6"));
}

TEST(LeaseClient, ChannelResyncGapRefetchesLeasedRecords) {
  Testbed tb(small_config());
  tb.resolve(0, tb.web_host(0), RRType::kA);  // one leased record, zone 0
  core::LeaseClient* lc = tb.lease_client(0);
  EXPECT_EQ(lc->stats().resync_refetches, 0u);

  // No serial on record for the zone: the inventory exposes a gap (the
  // lease predates any push we could order against) and every live
  // leased record under the zone refetches.
  lc->on_channel_resync({{tb.zone_origin(0), 5}});
  EXPECT_EQ(lc->stats().resyncs, 1u);
  EXPECT_EQ(lc->stats().resync_refetches, 1u);
  tb.loop().run_for(net::seconds(2));  // let the refresh complete

  // Reconnect without intervening changes: same serial, no refetch.
  lc->on_channel_resync({{tb.zone_origin(0), 5}});
  EXPECT_EQ(lc->stats().resyncs, 2u);
  EXPECT_EQ(lc->stats().resync_refetches, 1u);

  // A newer serial means pushes were missed while disconnected.
  lc->on_channel_resync({{tb.zone_origin(0), 6}});
  EXPECT_EQ(lc->stats().resync_refetches, 2u);

  // Zones we hold nothing under never refetch regardless of serial.
  lc->on_channel_resync({{tb.zone_origin(1), 99}});
  EXPECT_EQ(lc->stats().resync_refetches, 2u);
}

}  // namespace
}  // namespace dnscup::core

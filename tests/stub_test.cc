#include <gtest/gtest.h>

#include "net/sim_network.h"
#include "server/authoritative.h"
#include "server/resolver.h"
#include "server/stub.h"

namespace dnscup::server {
namespace {

using dns::Name;
using dns::RRType;
using Answer = StubResolver::Answer;

Name mk(const char* text) { return Name::parse(text).value(); }
dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

// Client host -> (two) local nameservers -> authority.
class StubTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kAuthIp = net::make_ip(10, 0, 1, 1);
  static constexpr uint32_t kNs1Ip = net::make_ip(10, 0, 2, 1);
  static constexpr uint32_t kNs2Ip = net::make_ip(10, 0, 2, 2);

  StubTest()
      : network_(loop_, 1),
        auth_(network_.bind({kAuthIp, 53}), loop_),
        ns1_(network_.bind({kNs1Ip, 53}), loop_,
             std::vector<net::Endpoint>{{kAuthIp, 53}}),
        ns2_(network_.bind({kNs2Ip, 53}), loop_,
             std::vector<net::Endpoint>{{kAuthIp, 53}}),
        stub_(network_.bind({net::make_ip(10, 0, 3, 1), 40000}), loop_,
              {{kNs1Ip, 53}, {kNs2Ip, 53}}) {
    dns::SOARdata soa;
    soa.mname = mk("ns.example.com");
    soa.rname = mk("admin.example.com");
    soa.serial = 1;
    soa.minimum = 30;
    dns::Zone zone = dns::Zone::make(mk("example.com"), soa, 3600,
                                     {mk("ns.example.com")}, 3600);
    zone.add_record(mk("www.example.com"), RRType::kA, 300,
                    dns::ARdata{ip("192.0.2.80")});
    // The local nameservers use the authority as their "root".
    auth_.add_zone(dns::Zone(zone));
    // Root-style zone so referrals resolve: authority serves everything.
    dns::SOARdata root_soa;
    root_soa.mname = mk("a.root");
    root_soa.rname = mk("admin.root");
    root_soa.serial = 1;
    root_soa.minimum = 30;
    dns::Zone root(Name::root());
    root.add_record(Name::root(), RRType::kSOA, 86400, root_soa);
    root.add_record(Name::root(), RRType::kNS, 86400,
                    dns::NSRdata{mk("a.root")});
    root.add_record(mk("example.com"), RRType::kNS, 3600,
                    dns::NSRdata{mk("ns.example.com")});
    root.add_record(mk("ns.example.com"), RRType::kA, 3600,
                    dns::ARdata{dns::Ipv4{kAuthIp}});
    auth_.add_zone(std::move(root));
  }

  std::optional<Answer> ask(const char* qname,
                            RRType qtype = RRType::kA,
                            net::Duration budget = net::seconds(30)) {
    std::optional<Answer> result;
    stub_.query(mk(qname), qtype, [&](const Answer& a) { result = a; });
    const net::SimTime deadline = loop_.now() + budget;
    while (!result.has_value() && loop_.now() < deadline) {
      loop_.run_until(loop_.now() + net::milliseconds(10));
    }
    return result;
  }

  net::EventLoop loop_;
  net::SimNetwork network_;
  AuthServer auth_;
  CachingResolver ns1_;
  CachingResolver ns2_;
  StubResolver stub_;
};

TEST_F(StubTest, ResolvesThroughLocalNameserver) {
  const auto a = ask("www.example.com");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->status, Answer::Status::kOk);
  ASSERT_TRUE(a->address().has_value());
  EXPECT_EQ(*a->address(), ip("192.0.2.80"));
  EXPECT_EQ(stub_.stats().failovers, 0u);
}

TEST_F(StubTest, NXDomainPropagates) {
  const auto a = ask("missing.example.com");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->status, Answer::Status::kNXDomain);
  EXPECT_EQ(a->rcode, dns::Rcode::kNXDomain);
}

TEST_F(StubTest, NoDataPropagates) {
  const auto a = ask("www.example.com", RRType::kMX);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->status, Answer::Status::kNoData);
}

TEST_F(StubTest, FailsOverToSecondNameserver) {
  // First nameserver unreachable: the stub must fail over to NS2.
  network_.partition({net::make_ip(10, 0, 3, 1), 40000}, {kNs1Ip, 53});
  const auto a = ask("www.example.com", RRType::kA, net::seconds(60));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->status, Answer::Status::kOk);
  EXPECT_GE(stub_.stats().failovers, 1u);
}

TEST_F(StubTest, AllNameserversDownTimesOut) {
  network_.partition({net::make_ip(10, 0, 3, 1), 40000}, {kNs1Ip, 53});
  network_.partition({net::make_ip(10, 0, 3, 1), 40000}, {kNs2Ip, 53});
  const auto a = ask("www.example.com", RRType::kA, net::seconds(120));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->status, Answer::Status::kTimeout);
  EXPECT_GE(stub_.stats().timeouts, 1u);
}

TEST_F(StubTest, RetransmitsThroughLoss) {
  network_.set_link({net::make_ip(10, 0, 3, 1), 40000}, {kNs1Ip, 53},
                    {net::milliseconds(1), 0, 0.5, 0.0});
  const auto a = ask("www.example.com", RRType::kA, net::seconds(60));
  ASSERT_TRUE(a.has_value());
  // Either a retry got through to NS1 or we failed over to NS2.
  EXPECT_EQ(a->status, Answer::Status::kOk);
  EXPECT_GT(stub_.stats().retransmissions + stub_.stats().failovers, 0u);
}

TEST_F(StubTest, ConcurrentQueriesKeptApart) {
  std::optional<Answer> a1, a2;
  stub_.query(mk("www.example.com"), RRType::kA,
              [&](const Answer& a) { a1 = a; });
  stub_.query(mk("missing.example.com"), RRType::kA,
              [&](const Answer& a) { a2 = a; });
  loop_.run_for(net::seconds(30));
  ASSERT_TRUE(a1.has_value());
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a1->status, Answer::Status::kOk);
  EXPECT_EQ(a2->status, Answer::Status::kNXDomain);
}

}  // namespace
}  // namespace dnscup::server

// End-to-end tests of the lease planner wired into the serving runtime:
// real sockets, worker threads feeding the planner thread through their
// observation queues, planner-assigned lease lengths on the wire, and
// metrics aggregation.  These also run under the ThreadSanitizer leg of
// tools/check.sh.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dns/zone_text.h"
#include "net/udp_transport.h"
#include "runtime/runtime.h"

namespace dnscup::runtime {
namespace {

constexpr const char* kZoneText = R"($ORIGIN example.com.
@ IN SOA ns1.example.com. admin.example.com. 1 7200 900 604800 300
@ 300 IN NS ns1.example.com.
ns1 300 IN A 10.0.0.1
hot 300 IN A 10.1.0.10
cold 300 IN A 10.1.0.11
)";

dns::Zone test_zone() {
  auto zone =
      dns::parse_zone_text(kZoneText, dns::Name::parse("example.com").value());
  EXPECT_TRUE(zone.ok()) << (zone.ok() ? "" : zone.error().to_string());
  return std::move(zone).value();
}

Config planner_config(double storage_budget) {
  Config config;
  config.port = 0;
  config.workers = 1;
  config.max_lease = net::seconds(86400);
  config.planner = true;
  config.policy = core::DnscupAuthority::PolicyKind::kStorageBudget;
  config.storage_budget = static_cast<std::size_t>(storage_budget);
  config.planner_config.poll_interval = net::milliseconds(1);
  config.planner_config.replan_interval = net::seconds(1);
  // One shard: the budget is split per shard, and these tests reason
  // about exact grant/deny outcomes against the whole budget.
  config.planner_config.shards = 1;
  config.planner_config.capacity = 4096;
  return config;
}

/// Client socket sending EXT queries with a configurable reported RRC.
class Client {
 public:
  Client() {
    auto bound = net::UdpTransport::bind(0);
    EXPECT_TRUE(bound.ok());
    udp_ = std::move(bound).value();
    udp_->set_receive_handler(
        [this](const net::Endpoint&, std::span<const uint8_t> data) {
          auto message = dns::Message::decode(data);
          if (!message.ok()) return;
          std::lock_guard lock(mutex_);
          messages_.push_back(std::move(message).value());
          cv_.notify_all();
        });
  }

  dns::Message query(const net::Endpoint& server, const std::string& name,
                     double rate_qps) {
    dns::Message query;
    query.id = next_id_++;
    query.flags.opcode = dns::Opcode::kQuery;
    query.flags.rd = true;
    query.flags.ext = true;
    query.questions.push_back(dns::Question{
        dns::Name::parse(name).value(), dns::RRType::kA, dns::RRClass::kIN,
        dns::rrc_from_rate(rate_qps)});
    udp_->send(server, query.encode());
    dns::Message response;
    std::unique_lock lock(mutex_);
    const bool got =
        cv_.wait_for(lock, std::chrono::seconds(5), [&] {
          for (const dns::Message& m : messages_) {
            if (m.flags.qr && m.id == query.id) {
              response = m;
              return true;
            }
          }
          return false;
        });
    EXPECT_TRUE(got) << "no response for " << name;
    return response;
  }

 private:
  std::unique_ptr<net::UdpTransport> udp_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<dns::Message> messages_;
  uint16_t next_id_ = 100;
};

void wait_applied(ServingRuntime& rt, uint64_t target) {
  ASSERT_NE(rt.planner(), nullptr);
  for (int i = 0; i < 5000 && rt.planner()->applied() < target; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(rt.planner()->applied(), target);
}

TEST(PlannerRuntime, HotPairKeepsLeaseUnderTightBudget) {
  // Budget ≈ 1 expected live lease: the hot pair's long lease consumes
  // it all; cold pairs must end up planned-but-denied.
  auto started = ServingRuntime::start(planner_config(1.0), {test_zone()});
  ASSERT_TRUE(started.ok()) << started.error().to_string();
  ServingRuntime& rt = *started.value();
  const net::Endpoint server = rt.endpoints()[0];

  Client hot;
  std::vector<std::unique_ptr<Client>> cold;
  for (int i = 0; i < 6; ++i) cold.push_back(std::make_unique<Client>());

  hot.query(server, "hot.example.com", /*rate_qps=*/50.0);
  for (auto& client : cold) {
    client->query(server, "cold.example.com", /*rate_qps=*/0.01);
  }
  wait_applied(rt, 7);  // planner has processed every pair once

  // Planner-assigned: hot keeps the maximal lease (P ≈ 1 fills the
  // budget), the cold pairs are denied new leases.
  const auto hot_response = hot.query(server, "hot.example.com", 50.0);
  EXPECT_EQ(hot_response.flags.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(hot_response.llt, dns::llt_from_seconds(86400));
  wait_applied(rt, 8);

  int denied = 0;
  for (auto& client : cold) {
    const auto response = client->query(server, "cold.example.com", 0.01);
    EXPECT_EQ(response.flags.rcode, dns::Rcode::kNoError);
    ASSERT_FALSE(response.answers.empty());  // answer unaffected by denial
    if (response.llt == 0) ++denied;
  }
  EXPECT_GE(denied, 5);
  rt.stop();
}

TEST(PlannerRuntime, PlannerOverridesAlwaysGrantFallback) {
  // kAlwaysGrant fallback grants the first query of every pair; once the
  // planner (budget ~0) has planned the pair, the same query is denied —
  // the planner's word beats the fallback's.
  auto config = planner_config(0.0);
  config.policy = core::DnscupAuthority::PolicyKind::kAlwaysGrant;
  config.storage_budget = 0;
  auto started = ServingRuntime::start(config, {test_zone()});
  ASSERT_TRUE(started.ok()) << started.error().to_string();
  ServingRuntime& rt = *started.value();
  const net::Endpoint server = rt.endpoints()[0];

  Client client;
  const auto first = client.query(server, "hot.example.com", 5.0);
  EXPECT_GT(first.llt, 0) << "fallback must grant before planning";
  wait_applied(rt, 1);
  const auto second = client.query(server, "hot.example.com", 5.0);
  EXPECT_EQ(second.llt, 0) << "planner (budget 0) must deny";
  EXPECT_EQ(second.flags.rcode, dns::Rcode::kNoError);
  rt.stop();
}

TEST(PlannerRuntime, MetricsIncludePlannerInstruments) {
  auto started = ServingRuntime::start(planner_config(100.0), {test_zone()});
  ASSERT_TRUE(started.ok()) << started.error().to_string();
  ServingRuntime& rt = *started.value();
  const net::Endpoint server = rt.endpoints()[0];

  Client client;
  client.query(server, "hot.example.com", 5.0);
  wait_applied(rt, 1);
  const auto snapshot = rt.metrics();
  EXPECT_GE(snapshot.counter_total("planner_observations"), 1u);
  const auto* pairs = snapshot.find("planner_pairs");
  ASSERT_NE(pairs, nullptr);
  EXPECT_GE(pairs->gauge_value, 1.0);
  // The worker-side RateTracker occupancy gauge rides along.
  EXPECT_NE(snapshot.find("listener_rate_tracker_keys", {{"instance", "0"}}),
            nullptr);
  rt.stop();
}

TEST(PlannerRuntime, CleanStopUnderQueryChurn) {
  auto started = ServingRuntime::start(planner_config(10.0), {test_zone()});
  ASSERT_TRUE(started.ok()) << started.error().to_string();
  ServingRuntime& rt = *started.value();
  const net::Endpoint server = rt.endpoints()[0];

  // Clients are constructed here, not inside the threads: binding a
  // transport registers instruments, and registry registration is
  // single-threaded by design.
  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < 3; ++c) clients.push_back(std::make_unique<Client>());
  std::vector<std::thread> churn;
  for (int c = 0; c < 3; ++c) {
    churn.emplace_back([&server, &clients, c] {
      for (int i = 0; i < 30; ++i) {
        clients[c]->query(
            server, (c % 2 == 0 ? "hot.example.com" : "cold.example.com"),
            1.0 + c);
      }
    });
  }
  for (auto& t : churn) t.join();
  rt.planner()->replan_now();
  rt.stop();  // planner stops after workers join; nothing may hang
  EXPECT_GE(rt.planner()->applied(), 1u);
}

}  // namespace
}  // namespace dnscup::runtime

// dnscached — a DNScup-enabled caching DNS server over real UDP: the
// paper's "local DNS nameserver", daemonized.
//
// Serves stub clients through the cache-side runtime (src/cachert):
// --workers N worker threads, each owning its own event loop, a
// client-facing UDP socket (one SO_REUSEPORT group on --port, or
// per-worker ports where the kernel lacks it), a private upstream socket,
// a TTL cache slice and — unless --no-dnscup — a lease client that sends
// EXT queries with RRC rate reports, registers LLT leases, consumes
// authenticated CACHE-UPDATE pushes from the configured upstreams and
// acknowledges them.  When the authority goes silent, entries fall back
// to plain TTL freshness.
//
// Usage:
//   dnscached --port 5301 --upstream 127.0.0.1:5300 [--upstream ...]
//             [--workers 4] [--no-reuseport] [--batch N]
//             [--rcvbuf bytes] [--sndbuf bytes] [--no-dnscup]
//             [--io-backend portable|uring] [--pin-cpus 0,1,...]
//             [--cache-capacity N] [--query-timeout-ms N] [--retries N]
//             [--cache-dir DIR] [--cache-file-size bytes]
//             [--metrics-out metrics.json] [--metrics-interval 10]
//             [--verbose]
//
// With --cache-dir the cache persists: each worker mmaps
// DIR/cache-shard-<i> and a restart reloads the surviving entries warm
// (TTLs decayed by the downtime).  With the push plane up, reloaded
// leases are announced for re-adoption so matching zone serials resume
// CACHE-UPDATE delivery without a refetch burst.
//
// The daemon prints one status line per second (with --verbose)
// aggregating all workers; SIGINT and SIGTERM both run the graceful
// drain and, with --metrics-out, dump a final JSON metrics snapshot.
// Pair with dnscupd as the upstream authority:
//   dnscupd   --port 5300 --zone example.com=example.com.zone
//   dnscached --port 5301 --upstream 127.0.0.1:5300
//   dnsq 127.0.0.1:5301 www.example.com A
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cachert/cache_runtime.h"
#include "tool_common.h"
#include "util/logging.h"
#include "util/metrics.h"

using namespace dnscup;

namespace {

std::atomic<int> g_signal{0};

void handle_signal(int sig) { g_signal.store(sig); }

struct Options {
  tools::ServingFlags serving{5301};
  std::vector<net::Endpoint> upstreams;
  std::size_t cache_capacity = 0;
  std::string cache_dir;
  std::size_t cache_file_bytes = 64ull << 20;
  int64_t query_timeout_ms = 2000;
  int retries = 2;
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    switch (tools::parse_serving_flag(arg, next, opts.serving)) {
      case tools::FlagParse::kMatched:
        continue;
      case tools::FlagParse::kError:
        return false;
      case tools::FlagParse::kUnmatched:
        break;
    }
    const char* v = nullptr;
    if (arg == "--upstream") {
      if ((v = next()) == nullptr) return false;
      std::string error;
      auto endpoint = net::parse_endpoint(v, &error);
      if (!endpoint.has_value()) {
        std::fprintf(stderr, "--upstream: %s\n", error.c_str());
        return false;
      }
      opts.upstreams.push_back(*endpoint);
    } else if (arg == "--cache-capacity") {
      if ((v = next()) == nullptr) return false;
      opts.cache_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--cache-dir") {
      if ((v = next()) == nullptr) return false;
      opts.cache_dir = v;
    } else if (arg == "--cache-file-size") {
      if ((v = next()) == nullptr) return false;
      opts.cache_file_bytes = static_cast<std::size_t>(std::atoll(v));
      if (opts.cache_file_bytes == 0) return false;
    } else if (arg == "--query-timeout-ms") {
      if ((v = next()) == nullptr) return false;
      opts.query_timeout_ms = std::atoll(v);
      if (opts.query_timeout_ms <= 0) return false;
    } else if (arg == "--retries") {
      if ((v = next()) == nullptr) return false;
      opts.retries = std::atoi(v);
      if (opts.retries < 0) return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts.upstreams.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    std::fprintf(
        stderr,
        "usage: dnscached --port N --upstream ip:port [--upstream ...]\n"
        "%s"
        "               [--cache-capacity N] [--query-timeout-ms N]\n"
        "               [--retries N] [--cache-dir DIR]\n"
        "               [--cache-file-size bytes]\n",
        tools::kServingUsage);
    return 2;
  }
  if (opts.serving.verbose) util::set_log_level(util::LogLevel::kDebug);

  if (opts.serving.push_plane && opts.serving.push_authority.port == 0) {
    std::fprintf(stderr,
                 "--push-plane on dnscached needs --push-authority "
                 "a.b.c.d:port (the authority's push listener)\n");
    return 2;
  }

  cachert::Config config;
  opts.serving.apply(config);
  config.upstreams = opts.upstreams;
  config.push_plane = opts.serving.push_plane;
  config.push_authority = opts.serving.push_authority;
  config.cache_capacity = opts.cache_capacity;
  config.cache_dir = opts.cache_dir;
  config.cache_file_bytes = opts.cache_file_bytes;
  config.query_timeout = net::milliseconds(opts.query_timeout_ms);
  config.max_retries = opts.retries;

  auto started = cachert::CacheRuntime::start(config);
  if (!started.ok()) {
    std::fprintf(stderr, "cache runtime start failed: %s\n",
                 started.error().to_string().c_str());
    return 1;
  }
  cachert::CacheRuntime& rt = *started.value();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  tools::print_listening("dnscached", rt.reuseport_active(), rt.endpoints(),
                         rt.workers(), config.dnscup, rt.io_backend_name());
  std::printf("upstreams:");
  for (const auto& upstream : rt.upstream_endpoints()) {
    std::printf(" %s", upstream.to_string().c_str());
  }
  std::printf(" (worker-local source ports)\n");
  if (config.push_plane) {
    std::printf("push channel -> %s (TCP, per-worker subscriptions)\n",
                config.push_authority.to_string().c_str());
  }
  if (rt.persistent_cache()) {
    uint64_t warm = 0, torn = 0, expired = 0, demoted = 0;
    std::size_t cold = 0;
    std::string cold_reason;
    const auto reports = rt.cache_load_reports();
    for (const auto& report : reports) {
      warm += report.warm_entries;
      torn += report.torn_dropped;
      expired += report.expired_dropped;
      demoted += report.leases_demoted;
      if (report.cold) {
        ++cold;
        cold_reason = report.cold_reason;
      }
    }
    if (cold == reports.size()) {
      std::printf("cache store: %s (cold start: %s)\n",
                  config.cache_dir.c_str(), cold_reason.c_str());
    } else {
      std::printf(
          "cache store: %s (warm restart: %llu entries reloaded, "
          "%llu expired, %llu torn, %llu leases demoted)\n",
          config.cache_dir.c_str(), static_cast<unsigned long long>(warm),
          static_cast<unsigned long long>(expired),
          static_cast<unsigned long long>(torn),
          static_cast<unsigned long long>(demoted));
    }
  }
  std::fflush(stdout);

  auto last_report = std::chrono::steady_clock::now();
  auto last_metrics = last_report;
  while (g_signal.load() == 0) {
    // Workers serve on their own threads; this thread only runs the
    // periodic jobs (each fans a command across workers and blocks).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const auto now = std::chrono::steady_clock::now();
    if (!opts.serving.metrics_out.empty() &&
        now - last_metrics >=
            std::chrono::seconds(opts.serving.metrics_interval_s)) {
      last_metrics = now;
      tools::dump_metrics(rt.metrics(), opts.serving.metrics_out);
    }
    if (opts.serving.verbose && now - last_report >= std::chrono::seconds(1)) {
      last_report = now;
      const auto snapshot = rt.metrics();
      std::printf(
          "queries=%llu upstream=%llu leases=%zu entries=%zu "
          "updates_applied=%llu acks=%llu inbox_drops=%llu",
          static_cast<unsigned long long>(tools::counter_sum(
              snapshot, "resolver_queries", "side", "client")),
          static_cast<unsigned long long>(tools::counter_sum(
              snapshot, "resolver_queries", "side", "upstream")),
          rt.live_leases(), rt.cache_entries(),
          static_cast<unsigned long long>(tools::counter_sum(
              snapshot, "lease_client_updates", "result", "applied")),
          static_cast<unsigned long long>(
              tools::counter_sum(snapshot, "lease_client_acks_sent")),
          static_cast<unsigned long long>(
              tools::counter_sum(snapshot, "cachert_inbox_dropped")));
      if (rt.persistent_cache()) {
        std::printf(
            " store_slots=%llu store_bytes=%llu "
            "readopt=%llu/%llu/%llu (resumed/gap/rejected)",
            static_cast<unsigned long long>(
                tools::gauge_sum(snapshot, "cache_store_slots_used")),
            static_cast<unsigned long long>(
                tools::gauge_sum(snapshot, "cache_store_file_bytes")),
            static_cast<unsigned long long>(tools::counter_sum(
                snapshot, "lease_readoption_total", "result", "resumed")),
            static_cast<unsigned long long>(tools::counter_sum(
                snapshot, "lease_readoption_total", "result", "serial_gap")),
            static_cast<unsigned long long>(tools::counter_sum(
                snapshot, "lease_readoption_total", "result", "rejected")));
      }
      std::printf("\n");
    }
  }
  const int sig = g_signal.load();
  std::printf("\nshutting down (%s)\n",
              sig == SIGTERM ? "SIGTERM" : sig == SIGINT ? "SIGINT"
                                                         : "signal");
  rt.stop();
  if (!opts.serving.metrics_out.empty()) {
    tools::dump_metrics(rt.metrics(), opts.serving.metrics_out);
    std::printf("final metrics snapshot written to %s\n",
                opts.serving.metrics_out.c_str());
  }
  std::printf("final cache: %zu entries, %zu live leases\n",
              rt.cache_entries(), rt.live_leases());
  return 0;
}

// dnscached — a DNScup-enabled caching DNS server over real UDP: the
// paper's "local DNS nameserver", daemonized.
//
// Serves stub clients through the cache-side runtime (src/cachert):
// --workers N worker threads, each owning its own event loop, a
// client-facing UDP socket (one SO_REUSEPORT group on --port, or
// per-worker ports where the kernel lacks it), a private upstream socket,
// a TTL cache slice and — unless --no-dnscup — a lease client that sends
// EXT queries with RRC rate reports, registers LLT leases, consumes
// authenticated CACHE-UPDATE pushes from the configured upstreams and
// acknowledges them.  When the authority goes silent, entries fall back
// to plain TTL freshness.
//
// Usage:
//   dnscached --port 5301 --upstream 127.0.0.1:5300 [--upstream ...]
//             [--workers 4] [--no-reuseport] [--batch N]
//             [--rcvbuf bytes] [--sndbuf bytes] [--no-dnscup]
//             [--cache-capacity N] [--query-timeout-ms N] [--retries N]
//             [--metrics-out metrics.json] [--metrics-interval 10]
//             [--verbose]
//
// The daemon prints one status line per second (with --verbose)
// aggregating all workers; SIGINT and SIGTERM both run the graceful
// drain and, with --metrics-out, dump a final JSON metrics snapshot.
// Pair with dnscupd as the upstream authority:
//   dnscupd   --port 5300 --zone example.com=example.com.zone
//   dnscached --port 5301 --upstream 127.0.0.1:5300
//   dnsq 127.0.0.1:5301 www.example.com A
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cachert/cache_runtime.h"
#include "util/logging.h"
#include "util/metrics.h"

using namespace dnscup;

namespace {

std::atomic<int> g_signal{0};

void handle_signal(int sig) { g_signal.store(sig); }

struct Options {
  uint16_t port = 5301;
  std::vector<net::Endpoint> upstreams;
  int workers = 1;
  bool reuseport = true;
  int batch = 32;
  int rcvbuf = 1 << 20;
  int sndbuf = 1 << 20;
  bool dnscup = true;
  std::size_t cache_capacity = 0;
  int64_t query_timeout_ms = 2000;
  int retries = 2;
  bool verbose = false;
  std::string metrics_out;
  int64_t metrics_interval_s = 10;
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--port") {
      if ((v = next()) == nullptr) return false;
      opts.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--upstream") {
      if ((v = next()) == nullptr) return false;
      auto endpoint = net::parse_endpoint(v);
      if (!endpoint.has_value()) {
        std::fprintf(stderr, "bad upstream endpoint: %s\n", v);
        return false;
      }
      opts.upstreams.push_back(*endpoint);
    } else if (arg == "--workers") {
      if ((v = next()) == nullptr) return false;
      opts.workers = std::atoi(v);
      if (opts.workers < 1) return false;
    } else if (arg == "--no-reuseport") {
      opts.reuseport = false;
    } else if (arg == "--batch") {
      if ((v = next()) == nullptr) return false;
      opts.batch = std::atoi(v);
      if (opts.batch < 1) return false;
    } else if (arg == "--rcvbuf") {
      if ((v = next()) == nullptr) return false;
      opts.rcvbuf = std::atoi(v);
    } else if (arg == "--sndbuf") {
      if ((v = next()) == nullptr) return false;
      opts.sndbuf = std::atoi(v);
    } else if (arg == "--no-dnscup") {
      opts.dnscup = false;
    } else if (arg == "--cache-capacity") {
      if ((v = next()) == nullptr) return false;
      opts.cache_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--query-timeout-ms") {
      if ((v = next()) == nullptr) return false;
      opts.query_timeout_ms = std::atoll(v);
      if (opts.query_timeout_ms <= 0) return false;
    } else if (arg == "--retries") {
      if ((v = next()) == nullptr) return false;
      opts.retries = std::atoi(v);
      if (opts.retries < 0) return false;
    } else if (arg == "--metrics-out") {
      if ((v = next()) == nullptr) return false;
      opts.metrics_out = v;
    } else if (arg == "--metrics-interval") {
      if ((v = next()) == nullptr) return false;
      opts.metrics_interval_s = std::atoll(v);
      if (opts.metrics_interval_s <= 0) return false;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts.upstreams.empty();
}

void dump_metrics(const metrics::Snapshot& snapshot,
                  const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics dump failed: cannot open %s\n",
                 path.c_str());
    return;
  }
  const std::string json = snapshot.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

/// Sum of all counters named `name` whose labels contain (key, value);
/// any (key, value) when key is null.  Collapses per-worker instances.
uint64_t counter_sum(const metrics::Snapshot& snapshot, const char* name,
                     const char* key = nullptr, const char* value = nullptr) {
  uint64_t total = 0;
  for (const auto& entry : snapshot.entries) {
    if (entry.kind != metrics::InstrumentKind::kCounter) continue;
    if (entry.name != name) continue;
    if (key != nullptr) {
      bool match = false;
      for (const auto& [k, v] : entry.labels) {
        if (k == key && v == value) {
          match = true;
          break;
        }
      }
      if (!match) continue;
    }
    total += entry.counter_value;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    std::fprintf(
        stderr,
        "usage: dnscached --port N --upstream ip:port [--upstream ...]\n"
        "                 [--workers N] [--no-reuseport] [--batch N]\n"
        "                 [--rcvbuf bytes] [--sndbuf bytes] [--no-dnscup]\n"
        "                 [--cache-capacity N] [--query-timeout-ms N]\n"
        "                 [--retries N] [--metrics-out file]\n"
        "                 [--metrics-interval seconds] [--verbose]\n");
    return 2;
  }
  if (opts.verbose) util::set_log_level(util::LogLevel::kDebug);

  cachert::Config config;
  config.port = opts.port;
  config.workers = opts.workers;
  config.reuseport = opts.reuseport;
  config.batch_size = static_cast<std::size_t>(opts.batch);
  config.rcvbuf_bytes = opts.rcvbuf;
  config.sndbuf_bytes = opts.sndbuf;
  config.upstreams = opts.upstreams;
  config.dnscup = opts.dnscup;
  config.cache_capacity = opts.cache_capacity;
  config.query_timeout = net::milliseconds(opts.query_timeout_ms);
  config.max_retries = opts.retries;

  auto started = cachert::CacheRuntime::start(config);
  if (!started.ok()) {
    std::fprintf(stderr, "cache runtime start failed: %s\n",
                 started.error().to_string().c_str());
    return 1;
  }
  cachert::CacheRuntime& rt = *started.value();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  if (rt.reuseport_active()) {
    std::printf("dnscached listening on %s, %d workers (SO_REUSEPORT; %s)\n",
                rt.endpoints()[0].to_string().c_str(), rt.workers(),
                opts.dnscup ? "DNScup enabled" : "plain TTL");
  } else {
    std::printf("dnscached: %d workers on per-worker ports (%s):\n",
                rt.workers(), opts.dnscup ? "DNScup enabled" : "plain TTL");
    for (const auto& endpoint : rt.endpoints()) {
      std::printf("  %s\n", endpoint.to_string().c_str());
    }
  }
  std::printf("upstreams:");
  for (const auto& upstream : rt.upstream_endpoints()) {
    std::printf(" %s", upstream.to_string().c_str());
  }
  std::printf(" (worker-local source ports)\n");
  // Supervisors wait for the "listening" line; make it visible even when
  // stdout is a pipe or file (fully buffered).
  std::fflush(stdout);

  auto last_report = std::chrono::steady_clock::now();
  auto last_metrics = last_report;
  while (g_signal.load() == 0) {
    // Workers serve on their own threads; this thread only runs the
    // periodic jobs (each fans a command across workers and blocks).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const auto now = std::chrono::steady_clock::now();
    if (!opts.metrics_out.empty() &&
        now - last_metrics >= std::chrono::seconds(opts.metrics_interval_s)) {
      last_metrics = now;
      dump_metrics(rt.metrics(), opts.metrics_out);
    }
    if (opts.verbose && now - last_report >= std::chrono::seconds(1)) {
      last_report = now;
      const auto snapshot = rt.metrics();
      std::printf(
          "queries=%llu upstream=%llu leases=%zu entries=%zu "
          "updates_applied=%llu acks=%llu inbox_drops=%llu\n",
          static_cast<unsigned long long>(
              counter_sum(snapshot, "resolver_queries", "side", "client")),
          static_cast<unsigned long long>(
              counter_sum(snapshot, "resolver_queries", "side", "upstream")),
          rt.live_leases(), rt.cache_entries(),
          static_cast<unsigned long long>(counter_sum(
              snapshot, "lease_client_updates", "result", "applied")),
          static_cast<unsigned long long>(
              counter_sum(snapshot, "lease_client_acks_sent")),
          static_cast<unsigned long long>(
              counter_sum(snapshot, "cachert_inbox_dropped")));
    }
  }
  const int sig = g_signal.load();
  std::printf("\nshutting down (%s)\n",
              sig == SIGTERM ? "SIGTERM" : sig == SIGINT ? "SIGINT"
                                                         : "signal");
  rt.stop();
  if (!opts.metrics_out.empty()) {
    dump_metrics(rt.metrics(), opts.metrics_out);
    std::printf("final metrics snapshot written to %s\n",
                opts.metrics_out.c_str());
  }
  std::printf("final cache: %zu entries, %zu live leases\n",
              rt.cache_entries(), rt.live_leases());
  return 0;
}

#!/usr/bin/env bash
# CACHE-UPDATE fan-out benchmark: one authority pushing a burst of
# zone-serial churn to 1k and 10k caches, per-datagram UDP+retransmit
# (the paper's notification path) versus the connection-oriented TCP
# push plane (src/push).  Runs bench/push_fanout and asserts the result
# the push plane exists to deliver:
#   - time-to-99%-consistent on the TCP plane beats UDP at the largest
#     scale (application-timer-free recovery + pacing + coalescing);
#   - superseded serials coalesced in-queue (push_coalesced_total > 0),
#     so churn does not multiply wire traffic.
# The bench raises RLIMIT_NOFILE for the ~2-fds-per-cache TCP leg and
# scales a run down (recorded as "requested" vs "caches" in the JSON)
# when the hard limit cannot fit it.
#
# Usage:
#   tools/bench_push.sh                      # scales 1000,10000, 5 rounds
#   SCALES=500,2000 ROUNDS=3 tools/bench_push.sh
#   OUT=/tmp/report.json tools/bench_push.sh
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${JOBS:-$(nproc)}
scales=${SCALES:-1000,10000}
rounds=${ROUNDS:-5}
drop=${DROP:-0.02}
out=${OUT:-$repo_root/BENCH_push_fanout.json}

build_dir="$repo_root/build"
cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$jobs" --target push_fanout

"$build_dir/bench/push_fanout" \
  --scales "$scales" --rounds "$rounds" --drop "$drop" --out "$out"

python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
largest = max(report["scales"], key=lambda s: s["caches"])
udp, tcp = largest["udp"], largest["tcp"]
print(f"largest scale: {largest['caches']} caches "
      f"(requested {largest['requested']})")
print(f"  udp t99 {udp['t99_ms']:.1f} ms, {udp['packets_per_change']:.0f} "
      f"packets/change, {udp['retransmits']} retransmits")
print(f"  tcp t99 {tcp['t99_ms']:.1f} ms, {tcp['packets_per_change']:.0f} "
      f"frames/change, {tcp['coalesced']} coalesced")
if not (udp["ok"] and tcp["ok"]):
    sys.exit("FAIL: a plane did not reach 99% consistency")
if tcp["t99_ms"] >= udp["t99_ms"]:
    sys.exit(f"FAIL: TCP t99 {tcp['t99_ms']:.1f} ms did not beat "
             f"UDP {udp['t99_ms']:.1f} ms at the largest scale")
if tcp["coalesced"] == 0:
    sys.exit("FAIL: no in-queue coalescing under serial churn")
EOF

echo "push fan-out bench ok; report at $out"

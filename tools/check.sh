#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the full test suite, then
# run the durable-store suites (store_test, recovery_test) under
# AddressSanitizer + UBSan — the WAL/snapshot layer does raw byte-level
# I/O and crash-path truncation, exactly where the sanitizers earn their
# keep.  --sanitize widens the sanitizer leg to the whole tree.
#
# Tests are labeled unit / sim / e2e / push / planner / cachestore (see
# tests/CMakeLists.txt).
# The default run executes the in-process labels first, then the TCP
# subscription plane (`-L push`), then the real-socket e2e leg on its
# own (`-L e2e`) so a socket-environment failure is immediately
# distinguishable from a logic failure.  --no-e2e skips both
# socket-bound legs entirely (for sandboxes without working loopback).
#
# The multi-threaded serving runtime gets its own legs:
#   --tsan         build runtime_test + udp_transport_test +
#                  e2e_daemons_test + the push-plane and planner suites
#                  under ThreadSanitizer and fail on any report — the
#                  worker / receiver / journal-writer / push-channel /
#                  planner thread interplay is where a data race would
#                  hide;
#   --planner      the lease-planner leg: the planner-labeled suites in
#                  Release, planner_test under ASan/UBSan (the open-
#                  addressed demand table is raw arena indexing), then a
#                  planner-enabled dnscupd under TSan driven by dnsflood
#                  — the single-writer/multi-reader table contract and
#                  the observation-queue handoff under real load;
#   --bench-smoke  Release build, assert the serve hot path is
#                  allocation-free (hot_path_alloc_test), then start a
#                  2-worker dnscupd on loopback, drive it with dnsflood
#                  for 2 s and fail if the lost-answer rate exceeds 1%;
#                  the JSON result is kept under build/bench/.
#   --wire-micro   Release build, run the wire encode/decode
#                  microbenchmark; it self-fails if the arena encode or
#                  view decode allocates in steady state.  JSON archived
#                  under build/bench/.
#   --io-matrix    run the unit + sim + e2e suite once per datagram I/O
#                  backend (DNSCUP_IO_BACKEND=portable, then =uring).
#                  The uring leg probes kernel support first (dnsflood
#                  --probe-io-backend) and prints an explicit SKIP — not
#                  a failure — where io_uring is unavailable.
#   --cachestore   the persistent cache-store leg: the cachestore-labeled
#                  suites in Release (backend equivalence, warm reload,
#                  corruption fallback, fork + kill -9 torn-file
#                  recovery, warm-restart e2e), then cachestore_test +
#                  cachestore_kill_test under ASan/UBSan — the store is
#                  raw mmap'd byte layout with CRC plumbing, exactly
#                  where the sanitizers earn their keep.
#
# Usage:
#   tools/check.sh                # Release build + ctest + store sanitizers
#   tools/check.sh --no-e2e      # same, skipping the real-socket leg
#   tools/check.sh --sanitize    # sanitize the full suite, not just store
#   tools/check.sh --tsan        # ThreadSanitizer leg only
#   tools/check.sh --planner     # lease-planner leg only
#   tools/check.sh --bench-smoke # serving-runtime load smoke only
#   tools/check.sh --wire-micro  # wire hot-path microbenchmark only
#   tools/check.sh --io-matrix   # full suite under each I/O backend
#   tools/check.sh --cachestore  # persistent cache-store leg only
#   JOBS=4 tools/check.sh        # override build parallelism
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${JOBS:-$(nproc)}
mode=${1:-}

run_suite() {
  local build_dir=$1
  local run_e2e=$2
  shift 2
  cmake -B "$build_dir" -S "$repo_root" "$@"
  cmake --build "$build_dir" -j "$jobs"
  echo "-- unit + sim labels --"
  ctest --test-dir "$build_dir" -LE 'e2e|push|cachestore' \
    --output-on-failure -j "$jobs"
  if [ "$run_e2e" = yes ]; then
    echo "-- cachestore label (persistent store, kill -9 recovery) --"
    ctest --test-dir "$build_dir" -L cachestore --output-on-failure \
      -j "$jobs"
    echo "-- push label (TCP subscription channel, loopback) --"
    ctest --test-dir "$build_dir" -L push --output-on-failure -j "$jobs"
    echo "-- e2e label (real loopback sockets, daemon pairs) --"
    ctest --test-dir "$build_dir" -L e2e --output-on-failure -j "$jobs"
  else
    # The warm-restart e2e needs loopback sockets; the rest of the
    # cachestore label is file-only and still runs.
    echo "-- cachestore label (file-only subset; --no-e2e) --"
    ctest --test-dir "$build_dir" -L cachestore \
      -E '^warm_restart_e2e_test$' --output-on-failure -j "$jobs"
    echo "-- push + e2e labels skipped (--no-e2e) --"
  fi
}

run_tsan() {
  echo "== threaded runtime under ThreadSanitizer (portable backend) =="
  local build_dir="$repo_root/build-tsan"
  cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDNSCUP_SANITIZE=thread
  cmake --build "$build_dir" -j "$jobs" \
    --target runtime_test udp_transport_test e2e_daemons_test \
             io_backend_parity_test push_channel_test e2e_push_test \
             planner_test planner_runtime_test warm_restart_e2e_test \
             cachestore_test
  # halt_on_error turns any race report into a test failure.  The
  # backend is pinned to portable so the leg is deterministic; the
  # parity test still exercises the uring receiver threads explicitly
  # where the kernel supports them.  The push suites put the epoll
  # server thread / client threads / submitter cross-talk under TSan.
  # warm_restart_e2e_test rides in the TSan leg: the one-shot survivor
  # snapshot handoff (start thread → push I/O thread) and the readopt
  # fan-out (push I/O thread → worker threads) are cross-thread seams.
  tsan_tests='runtime_test|udp_transport_test|e2e_daemons_test'
  tsan_tests="$tsan_tests|io_backend_parity_test"
  tsan_tests="$tsan_tests|push_channel_test|e2e_push_test"
  tsan_tests="$tsan_tests|planner_test|planner_runtime_test"
  tsan_tests="$tsan_tests|warm_restart_e2e_test|cachestore_test"
  TSAN_OPTIONS="halt_on_error=1" DNSCUP_IO_BACKEND=portable \
    ctest --test-dir "$build_dir" \
    -R "^($tsan_tests)\$" \
    --output-on-failure
}

run_io_matrix() {
  echo "== I/O backend matrix: unit + sim + e2e per backend =="
  local build_dir="$repo_root/build"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j "$jobs"
  echo "-- backend: portable --"
  DNSCUP_IO_BACKEND=portable ctest --test-dir "$build_dir" -LE e2e \
    --output-on-failure -j "$jobs"
  if [ "$e2e" = yes ]; then
    DNSCUP_IO_BACKEND=portable ctest --test-dir "$build_dir" -L e2e \
      --output-on-failure -j "$jobs"
  fi
  if "$build_dir/tools/dnsflood" --probe-io-backend; then
    echo "-- backend: uring --"
    DNSCUP_IO_BACKEND=uring ctest --test-dir "$build_dir" -LE e2e \
      --output-on-failure -j "$jobs"
    if [ "$e2e" = yes ]; then
      DNSCUP_IO_BACKEND=uring ctest --test-dir "$build_dir" -L e2e \
        --output-on-failure -j "$jobs"
    fi
  else
    echo "-- backend: uring SKIP (kernel lacks io_uring support;" \
         "portable leg above is authoritative) --"
  fi
}

run_wire_micro() {
  echo "== wire hot-path microbenchmark (self-asserts 0 allocs/op) =="
  local build_dir="$repo_root/build"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j "$jobs" --target wire_micro
  mkdir -p "$build_dir/bench"
  "$build_dir/bench/wire_micro" --out "$build_dir/bench/wire-micro.json"
  echo "wire micro ok; result archived at $build_dir/bench/wire-micro.json"
}

run_bench_smoke() {
  echo "== serving-runtime load smoke (2 workers, 2 s) =="
  local build_dir="$repo_root/build"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j "$jobs" \
    --target dnscupd dnsflood hot_path_alloc_test
  local bench_dir="$build_dir/bench"
  mkdir -p "$bench_dir"

  # Steady-state serving must not touch the heap: the counting-allocator
  # suite fails if any serve-path query allocates after warmup.
  echo "-- hot-path allocation contract --"
  ctest --test-dir "$build_dir" -R '^hot_path_alloc_test$' \
    --output-on-failure

  local zone="$bench_dir/smoke.zone"
  {
    echo '$ORIGIN example.com.'
    echo '@ IN SOA ns1.example.com. admin.example.com. 1 7200 900 604800 300'
    echo '@ 300 IN NS ns1.example.com.'
    echo 'ns1 300 IN A 10.0.0.1'
    for i in $(seq 0 199); do
      echo "w$i 300 IN A 10.1.$((i / 256)).$((i % 256))"
    done
  } > "$zone"

  local port=$(( 20000 + RANDOM % 10000 ))
  "$build_dir/tools/dnscupd" --port "$port" \
    --zone "example.com=$zone" --workers 2 \
    > "$bench_dir/smoke-dnscupd.log" 2>&1 &
  local daemon=$!
  trap 'kill "$daemon" 2>/dev/null || true' RETURN
  sleep 0.5
  kill -0 "$daemon" || {
    echo "dnscupd failed to start:"; cat "$bench_dir/smoke-dnscupd.log"
    return 1
  }

  local out="$bench_dir/smoke-flood.json"
  "$build_dir/tools/dnsflood" --server "127.0.0.1:$port" --duration 2 \
    --sockets 4 --concurrency 16 --names 200 --workers-label 2 \
    --out "$out"
  kill -TERM "$daemon" 2>/dev/null || true
  wait "$daemon" 2>/dev/null || true

  # Fail the smoke when more than 1% of answered-or-timed-out queries
  # were lost.
  python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    result = json.load(f)
loss = result["loss_rate"]
print(f"achieved {result['achieved_qps']:.0f} q/s, "
      f"p99 {result['p99_us']} us, loss {100 * loss:.3f}%")
if loss > 0.01:
    sys.exit(f"FAIL: loss rate {loss:.4f} exceeds 1%")
if result["answered"] == 0:
    sys.exit("FAIL: no queries answered")
EOF
  echo "bench smoke ok; result archived at $out"
}

run_planner() {
  echo "== lease-planner leg =="
  local build_dir="$repo_root/build"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j "$jobs" \
    --target planner_test planner_runtime_test dnsflood
  echo "-- planner label (Release) --"
  ctest --test-dir "$build_dir" -L planner --output-on-failure -j "$jobs"
  ctest --test-dir "$build_dir" -R '^planner_runtime_test$' \
    --output-on-failure

  echo "-- planner_test under address,undefined sanitizers --"
  # The demand table is a raw open-addressed arena (pointer arithmetic,
  # release-published keys): ASan/UBSan is where an off-by-one probe or
  # misaligned bit_cast would surface.
  cmake -B "$repo_root/build-store-sanitize" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDNSCUP_SANITIZE=address,undefined
  cmake --build "$repo_root/build-store-sanitize" -j "$jobs" \
    --target planner_test
  ctest --test-dir "$repo_root/build-store-sanitize" \
    -R '^planner_test$' --output-on-failure

  echo "-- planner-enabled dnscupd under ThreadSanitizer + dnsflood --"
  # Real load across the full planner seam: worker threads observing into
  # the MPSC queues and probing planned_bits while the planner thread
  # plans, publishes and replans.
  local tsan_dir="$repo_root/build-tsan"
  cmake -B "$tsan_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDNSCUP_SANITIZE=thread
  cmake --build "$tsan_dir" -j "$jobs" --target dnscupd
  local bench_dir="$build_dir/bench"
  mkdir -p "$bench_dir"
  local zone="$bench_dir/planner-smoke.zone"
  {
    echo '$ORIGIN example.com.'
    echo '@ IN SOA ns1.example.com. admin.example.com. 1 7200 900 604800 300'
    echo '@ 300 IN NS ns1.example.com.'
    echo 'ns1 300 IN A 10.0.0.1'
    for i in $(seq 0 199); do
      echo "w$i 300 IN A 10.1.$((i / 256)).$((i % 256))"
    done
  } > "$zone"
  local port=$(( 20000 + RANDOM % 10000 ))
  TSAN_OPTIONS="halt_on_error=1" "$tsan_dir/tools/dnscupd" --port "$port" \
    --zone "example.com=$zone" --workers 2 \
    --lease-storage-budget 100 --replan-interval 1 \
    > "$bench_dir/planner-smoke-dnscupd.log" 2>&1 &
  local daemon=$!
  trap 'kill "$daemon" 2>/dev/null || true' RETURN
  # TSan-instrumented startup is slow, especially on busy hosts: poll
  # for the planner banner instead of a fixed sleep.
  local waited=0
  until grep -q "dnscup planner: mode=storage" \
      "$bench_dir/planner-smoke-dnscupd.log" 2>/dev/null; do
    kill -0 "$daemon" 2>/dev/null || {
      echo "planner dnscupd died during startup:"
      cat "$bench_dir/planner-smoke-dnscupd.log"
      return 1
    }
    if [ "$waited" -ge 60 ]; then
      echo "planner banner missing after ${waited}s:"
      cat "$bench_dir/planner-smoke-dnscupd.log"
      return 1
    fi
    sleep 1
    waited=$(( waited + 1 ))
  done
  "$build_dir/tools/dnsflood" --server "127.0.0.1:$port" --duration 2 \
    --sockets 4 --concurrency 8 --names 200 --lease-fraction 0.5 \
    --planner-label storage --out "$bench_dir/planner-smoke-flood.json"
  kill -TERM "$daemon" 2>/dev/null || true
  if ! wait "$daemon"; then
    echo "FAIL: planner-enabled dnscupd exited non-zero (TSan report?)"
    cat "$bench_dir/planner-smoke-dnscupd.log"
    return 1
  fi
  echo "planner leg ok; smoke results under $bench_dir/"
}

run_cachestore() {
  echo "== persistent cache-store leg =="
  local build_dir="$repo_root/build"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j "$jobs" \
    --target cachestore_test cachestore_kill_test warm_restart_e2e_test
  echo "-- cachestore label (Release) --"
  ctest --test-dir "$build_dir" -L cachestore --output-on-failure -j "$jobs"

  echo "-- cachestore suites under address,undefined sanitizers --"
  # The store is a raw mmap'd image: fixed-offset slot packing, bump
  # allocation, memmove compaction, CRC windows — ASan/UBSan is where an
  # off-by-one slab bound or misaligned read would surface.  The kill
  # suite reopens truly torn files under the same instrumentation.
  cmake -B "$repo_root/build-store-sanitize" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDNSCUP_SANITIZE=address,undefined
  cmake --build "$repo_root/build-store-sanitize" -j "$jobs" \
    --target cachestore_test cachestore_kill_test
  ctest --test-dir "$repo_root/build-store-sanitize" \
    -R '^(cachestore_test|cachestore_kill_test)$' \
    --output-on-failure -j "$jobs"
  echo "cachestore leg ok"
}

e2e=yes
if [ "$mode" = --no-e2e ]; then
  e2e=no
  mode=""
fi

case "$mode" in
  --tsan)
    run_tsan
    ;;
  --planner)
    run_planner
    ;;
  --bench-smoke)
    run_bench_smoke
    ;;
  --wire-micro)
    run_wire_micro
    ;;
  --io-matrix)
    run_io_matrix
    ;;
  --cachestore)
    run_cachestore
    ;;
  --sanitize)
    echo "== tier-1: release build + ctest =="
    run_suite "$repo_root/build" "$e2e"
    echo "== tier-1 under address,undefined sanitizers =="
    run_suite "$repo_root/build-sanitize" "$e2e" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DDNSCUP_SANITIZE=address,undefined
    ;;
  *)
    echo "== tier-1: release build + ctest =="
    run_suite "$repo_root/build" "$e2e"
    echo "== durable store + wire parser + daemon pair under" \
         "address,undefined sanitizers =="
    # malformed_packet_test rides along: the hostile-input wire-decoder
    # suite is the other place raw byte handling hides memory bugs.
    # e2e_daemons_test puts the new cache-side runtime's socket plumbing
    # under ASan/UBSan too; buffer_pool_test and io_backend_parity_test
    # cover the slot-recycling and backend buffer-ownership edges (pool
    # exhaustion, reuse after partial flushes, stop/restart leaks).
    cmake -B "$repo_root/build-store-sanitize" -S "$repo_root" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DDNSCUP_SANITIZE=address,undefined
    cmake --build "$repo_root/build-store-sanitize" -j "$jobs" \
      --target store_test recovery_test malformed_packet_test \
               buffer_pool_test e2e_daemons_test io_backend_parity_test
    sanitize_tests='store_test|recovery_test|malformed_packet_test'
    sanitize_tests="$sanitize_tests|buffer_pool_test"
    if [ "$e2e" = yes ]; then
      sanitize_tests="$sanitize_tests|e2e_daemons_test|io_backend_parity_test"
    fi
    ctest --test-dir "$repo_root/build-store-sanitize" \
      -R "^($sanitize_tests)\$" \
      --output-on-failure -j "$jobs"
    ;;
esac

echo "== all checks passed =="

#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the full test suite, then
# repeat under AddressSanitizer + UBSan (the DNSCUP_SANITIZE CMake option).
#
# Usage:
#   tools/check.sh                # plain Release build + ctest
#   tools/check.sh --sanitize    # additionally build/test with asan+ubsan
#   JOBS=4 tools/check.sh        # override build parallelism
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${JOBS:-$(nproc)}
sanitize=0
[[ "${1:-}" == "--sanitize" ]] && sanitize=1

run_suite() {
  local build_dir=$1
  shift
  cmake -B "$build_dir" -S "$repo_root" "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

echo "== tier-1: release build + ctest =="
run_suite "$repo_root/build"

if [[ $sanitize -eq 1 ]]; then
  echo "== tier-1 under address,undefined sanitizers =="
  run_suite "$repo_root/build-sanitize" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDNSCUP_SANITIZE=address,undefined
fi

echo "== all checks passed =="

#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the full test suite, then
# run the durable-store suites (store_test, recovery_test) under
# AddressSanitizer + UBSan — the WAL/snapshot layer does raw byte-level
# I/O and crash-path truncation, exactly where the sanitizers earn their
# keep.  --sanitize widens the sanitizer leg to the whole tree.
#
# Usage:
#   tools/check.sh                # Release build + ctest + store sanitizers
#   tools/check.sh --sanitize    # sanitize the full suite, not just store
#   JOBS=4 tools/check.sh        # override build parallelism
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${JOBS:-$(nproc)}
sanitize=0
[[ "${1:-}" == "--sanitize" ]] && sanitize=1

run_suite() {
  local build_dir=$1
  shift
  cmake -B "$build_dir" -S "$repo_root" "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

echo "== tier-1: release build + ctest =="
run_suite "$repo_root/build"

if [[ $sanitize -eq 1 ]]; then
  echo "== tier-1 under address,undefined sanitizers =="
  run_suite "$repo_root/build-sanitize" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDNSCUP_SANITIZE=address,undefined
else
  echo "== durable store under address,undefined sanitizers =="
  cmake -B "$repo_root/build-store-sanitize" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDNSCUP_SANITIZE=address,undefined
  cmake --build "$repo_root/build-store-sanitize" -j "$jobs" \
    --target store_test recovery_test
  ctest --test-dir "$repo_root/build-store-sanitize" \
    -R '^(store_test|recovery_test)$' --output-on-failure -j "$jobs"
fi

echo "== all checks passed =="

// dnscupd — a DNScup-enabled authoritative nameserver over real UDP.
//
// Loads one or more zone files and serves them through the sharded
// multi-worker runtime (src/runtime): --workers N worker threads, each
// owning its own event loop, UDP socket (one SO_REUSEPORT group on
// --port, or per-worker ports where the kernel lacks it) and its shard
// of the lease state.  QUERY / UPDATE / NOTIFY / AXFR / IXFR are served
// with the DNScup middleware attached (lease grants on EXT queries,
// CACHE-UPDATE pushes on change).
//
// Usage:
//   dnscupd --port 5300 --zone example.com=example.com.zone \
//           [--zone other.org=other.zone] [--workers 4] [--no-reuseport]
//           [--max-lease 3600] [--no-dnscup] [--round-robin] [--verbose]
//           [--rcvbuf bytes] [--sndbuf bytes]
//           [--io-backend portable|uring] [--pin-cpus 0,1,...]
//           [--metrics-out metrics.json] [--metrics-interval 10]
//           [--state-dir dir] [--fsync-policy always|interval|never]
//           [--snapshot-interval 60]
//
// The daemon prints one status line per second with aggregated (all
// workers merged) lease/track-file statistics; SIGINT and SIGTERM both
// run the full shutdown path (graceful drain, journal flush, final state
// snapshot + metrics dump), so process managers stopping the daemon get
// the same durability as Ctrl-C.  With --metrics-out it also dumps a
// JSON snapshot of every registry instrument across all workers and the
// journal writer to the given file every --metrics-interval seconds and
// once at shutdown.
//
// With --state-dir the authority is durable: every shard journals lease
// ops through the runtime's single writer thread into a CRC-framed
// write-ahead log, compacted into snapshots, and recovered (repartitioned
// across the shards) on the next start.
// Pair it with `dnsq` for interactive queries and `dnsflood` for load:
//   dnsq 127.0.0.1:5300 www.example.com A
//   dnsflood --server 127.0.0.1:5300 --duration 5
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "dns/zone_text.h"
#include "planner/lambda_estimator.h"
#include "runtime/runtime.h"
#include "tool_common.h"
#include "util/logging.h"
#include "util/metrics.h"

using namespace dnscup;

namespace {

std::atomic<int> g_signal{0};

void handle_signal(int sig) { g_signal.store(sig); }

struct Options {
  tools::ServingFlags serving{5300};
  std::vector<std::pair<std::string, std::string>> zones;  // origin=path
  int64_t max_lease_s = 3600;
  bool round_robin = false;
  std::string state_dir;  ///< empty: volatile authority
  store::FsyncPolicy fsync = store::FsyncPolicy::kAlways;
  int64_t snapshot_interval_s = 60;

  // Online lease planner (src/planner).  Either budget flag turns the
  // planner on and selects its mode; the remaining knobs tune it.
  bool planner = false;
  double lease_storage_budget = -1;  ///< expected live leases (SLP mode)
  double lease_msg_budget = -1;      ///< msgs/s (deprivation mode)
  planner::EstimatorKind estimator = planner::EstimatorKind::kEwma;
  int64_t replan_interval_s = 30;
  int64_t planner_capacity = 1 << 21;
  int planner_shards = 4;
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    switch (tools::parse_serving_flag(arg, next, opts.serving)) {
      case tools::FlagParse::kMatched:
        continue;
      case tools::FlagParse::kError:
        return false;
      case tools::FlagParse::kUnmatched:
        break;
    }
    if (arg == "--zone") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string spec = v;
      const auto eq = spec.find('=');
      if (eq == std::string::npos) return false;
      opts.zones.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--max-lease") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.max_lease_s = std::atoll(v);
    } else if (arg == "--state-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.state_dir = v;
    } else if (arg == "--fsync-policy") {
      const char* v = next();
      if (v == nullptr) return false;
      auto policy = store::fsync_policy_from_string(v);
      if (!policy.ok()) {
        std::fprintf(stderr, "%s\n", policy.error().to_string().c_str());
        return false;
      }
      opts.fsync = policy.value();
    } else if (arg == "--snapshot-interval") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.snapshot_interval_s = std::atoll(v);
      if (opts.snapshot_interval_s <= 0) return false;
    } else if (arg == "--round-robin") {
      opts.round_robin = true;
    } else if (arg == "--lease-storage-budget") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.lease_storage_budget = std::atof(v);
      if (opts.lease_storage_budget < 0) return false;
      opts.planner = true;
    } else if (arg == "--lease-msg-budget") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.lease_msg_budget = std::atof(v);
      if (opts.lease_msg_budget < 0) return false;
      opts.planner = true;
    } else if (arg == "--lambda-estimator") {
      const char* v = next();
      if (v == nullptr) return false;
      auto kind = planner::LambdaEstimator::parse(v);
      if (!kind.has_value()) {
        std::fprintf(stderr,
                     "bad --lambda-estimator %s (last-window|ewma|holt)\n", v);
        return false;
      }
      opts.estimator = *kind;
    } else if (arg == "--replan-interval") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.replan_interval_s = std::atoll(v);
    } else if (arg == "--planner-capacity") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.planner_capacity = std::atoll(v);
      if (opts.planner_capacity < 1) return false;
    } else if (arg == "--planner-shards") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.planner_shards = std::atoi(v);
      if (opts.planner_shards < 1) return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts.zones.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    std::fprintf(
        stderr,
        "usage: dnscupd --port N --zone origin=path [--zone ...]\n"
        "%s"
        "               [--max-lease seconds] [--round-robin]\n"
        "               [--state-dir dir] "
        "[--fsync-policy always|interval|never]\n"
        "               [--snapshot-interval seconds]\n"
        "               [--lease-storage-budget N | --lease-msg-budget X]\n"
        "               [--lambda-estimator last-window|ewma|holt]\n"
        "               [--replan-interval seconds] "
        "[--planner-capacity N]\n"
        "               [--planner-shards N]\n",
        tools::kServingUsage);
    return 2;
  }
  if (opts.serving.verbose) util::set_log_level(util::LogLevel::kDebug);

  std::vector<dns::Zone> zones;
  for (const auto& [origin_text, path] : opts.zones) {
    auto origin = dns::Name::parse(origin_text);
    if (!origin.ok()) {
      std::fprintf(stderr, "bad origin %s\n", origin_text.c_str());
      return 1;
    }
    auto zone = dns::load_zone_file(path, origin.value());
    if (!zone.ok()) {
      std::fprintf(stderr, "%s\n", zone.error().to_string().c_str());
      return 1;
    }
    std::printf("loaded zone %s (%zu RRsets, serial %u) from %s\n",
                origin_text.c_str(), zone.value().rrset_count(),
                zone.value().serial(), path.c_str());
    zones.push_back(std::move(zone).value());
  }

  runtime::Config config;
  opts.serving.apply(config);
  config.round_robin = opts.round_robin;
  config.max_lease = net::seconds(opts.max_lease_s);
  config.state_dir = config.dnscup ? opts.state_dir : std::string();
  config.fsync = opts.fsync;
  config.push_plane = opts.serving.push_plane;
  config.push_port = opts.serving.push_listen;
  if (opts.planner && config.dnscup) {
    config.planner = true;
    if (opts.lease_msg_budget >= 0) {
      config.policy = core::DnscupAuthority::PolicyKind::kCommBudget;
      config.message_budget = opts.lease_msg_budget;
    } else {
      config.policy = core::DnscupAuthority::PolicyKind::kStorageBudget;
      config.storage_budget =
          static_cast<std::size_t>(opts.lease_storage_budget);
    }
    config.planner_config.estimator = opts.estimator;
    config.planner_config.replan_interval =
        net::seconds(opts.replan_interval_s);
    config.planner_config.capacity =
        static_cast<std::size_t>(opts.planner_capacity);
    config.planner_config.shards = opts.planner_shards;
  }

  auto started = runtime::ServingRuntime::start(config, std::move(zones));
  if (!started.ok()) {
    std::fprintf(stderr, "runtime start failed: %s\n",
                 started.error().to_string().c_str());
    return 1;
  }
  runtime::ServingRuntime& rt = *started.value();

  if (rt.durable()) {
    const auto& recovery = rt.recovery();
    std::printf(
        "state dir %s (fsync %s): %llu WAL records replayed, %llu torn; "
        "%llu leases restored, %llu expired, %llu zones changed while "
        "down, %llu changes re-pushed\n",
        opts.state_dir.c_str(), store::to_string(opts.fsync),
        static_cast<unsigned long long>(recovery.replayed_records),
        static_cast<unsigned long long>(recovery.torn_records),
        static_cast<unsigned long long>(recovery.leases_restored),
        static_cast<unsigned long long>(recovery.leases_expired),
        static_cast<unsigned long long>(recovery.zones_changed),
        static_cast<unsigned long long>(recovery.changes_pushed));
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  tools::print_listening("dnscupd", rt.reuseport_active(), rt.endpoints(),
                         rt.workers(), config.dnscup, rt.io_backend_name());
  if (rt.push_plane() != nullptr) {
    // Same contract as the banner: tests and scripts scrape this line to
    // learn the (possibly ephemeral) TCP subscription port.
    std::printf("dnscupd push plane listening on %s (TCP)\n",
                rt.push_endpoint().to_string().c_str());
    std::fflush(stdout);
  }
  if (rt.planner() != nullptr) {
    // Scrapeable like the banner: bench_runtime.sh and check.sh read this
    // line to confirm the planner configuration actually in effect.
    const auto& pc = rt.planner()->config();
    const bool storage = pc.mode == planner::LeasePlanner::Mode::kStorage;
    std::printf(
        "dnscup planner: mode=%s %s-budget=%.1f estimator=%s replan=%llds "
        "shards=%d capacity=%zu\n",
        storage ? "storage" : "comm", storage ? "storage" : "msg",
        storage ? pc.storage_budget : pc.message_budget,
        planner::LambdaEstimator::name(pc.estimator),
        static_cast<long long>(net::to_seconds(pc.replan_interval)),
        pc.shards, pc.capacity);
    std::fflush(stdout);
  }

  auto last_report = std::chrono::steady_clock::now();
  auto last_metrics = last_report;
  auto last_snapshot = last_report;
  while (g_signal.load() == 0) {
    // The workers serve on their own threads; this thread only does the
    // periodic jobs (each fans a command across workers and blocks).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const auto now = std::chrono::steady_clock::now();
    if (!opts.serving.metrics_out.empty() &&
        now - last_metrics >=
            std::chrono::seconds(opts.serving.metrics_interval_s)) {
      last_metrics = now;
      tools::dump_metrics(rt.metrics(), opts.serving.metrics_out);
    }
    if (rt.durable() &&
        now - last_snapshot >=
            std::chrono::seconds(opts.snapshot_interval_s)) {
      last_snapshot = now;
      if (auto status = rt.write_snapshot(); !status.ok()) {
        std::fprintf(stderr, "snapshot failed: %s\n",
                     status.error().to_string().c_str());
      }
    }
    if (opts.serving.verbose && now - last_report >= std::chrono::seconds(1)) {
      last_report = now;
      const auto snapshot = rt.metrics();
      std::printf(
          "queries=%llu updates=%llu leases=%zu pushes=%llu acks=%llu "
          "readopt=%llu/%llu (resumed/rejected) inbox_drops=%llu\n",
          static_cast<unsigned long long>(tools::counter_sum(
              snapshot, "auth_server_requests", "op", "query")),
          static_cast<unsigned long long>(tools::counter_sum(
              snapshot, "auth_server_requests", "op", "update")),
          rt.live_leases(),
          static_cast<unsigned long long>(tools::counter_sum(
              snapshot, "cache_update_messages", "result", "sent")),
          static_cast<unsigned long long>(tools::counter_sum(
              snapshot, "cache_update_messages", "result", "acked")),
          static_cast<unsigned long long>(tools::counter_sum(
              snapshot, "authority_lease_readoptions", "result", "resumed")),
          static_cast<unsigned long long>(tools::counter_sum(
              snapshot, "authority_lease_readoptions", "result", "rejected")),
          static_cast<unsigned long long>(
              tools::counter_sum(snapshot, "runtime_inbox_dropped")));
    }
  }
  const int sig = g_signal.load();
  std::printf("\nshutting down (%s)\n",
              sig == SIGTERM ? "SIGTERM" : sig == SIGINT ? "SIGINT"
                                                         : "signal");
  // Graceful drain: stop intake, answer what is queued, flush the
  // journal; stop() writes the final compacting snapshot itself.
  rt.stop();
  if (rt.durable()) {
    std::printf("final state snapshot written to %s\n",
                opts.state_dir.c_str());
  }
  if (!opts.serving.metrics_out.empty()) {
    tools::dump_metrics(rt.metrics(), opts.serving.metrics_out);
    std::printf("final metrics snapshot written to %s\n",
                opts.serving.metrics_out.c_str());
  }
  std::printf("final track file:\n%s", rt.serialize_track_files().c_str());
  return 0;
}

// dnscupd — a DNScup-enabled authoritative nameserver over real UDP.
//
// Loads one or more zone files, binds a loopback UDP port, and serves
// QUERY / UPDATE / NOTIFY / AXFR / IXFR with the DNScup middleware
// attached (lease grants on EXT queries, CACHE-UPDATE pushes on change).
//
// Usage:
//   dnscupd --port 5300 --zone example.com=example.com.zone \
//           [--zone other.org=other.zone] [--max-lease 3600] [--no-dnscup]
//           [--round-robin] [--verbose]
//           [--metrics-out metrics.json] [--metrics-interval 10]
//           [--state-dir dir] [--fsync-policy always|interval|never]
//           [--snapshot-interval 60]
//
// The daemon prints one status line per second with lease/track-file
// statistics; SIGINT and SIGTERM both run the full shutdown path (final
// state snapshot + metrics dump), so process managers stopping the
// daemon get the same durability as Ctrl-C.  With --metrics-out it also
// dumps a JSON snapshot of every registry instrument (queries, lease
// grants, CACHE-UPDATE pushes, transport traffic, store append/fsync
// latency, event-loop depth, ...) to the given file every
// --metrics-interval seconds and once at shutdown.
//
// With --state-dir the authority is durable: every lease grant/renewal/
// revocation/prune and zone-serial change is written to a CRC-framed
// write-ahead log under the directory, compacted into snapshots every
// --snapshot-interval seconds, and recovered on the next start — leases
// survive crashes, and zone changes that happened while the daemon was
// down are pushed to every surviving leaseholder at startup.
// Pair it with `dnsq` for interactive queries:
//   dnsq 127.0.0.1:5300 www.example.com A
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dnscup_authority.h"
#include "dns/zone_text.h"
#include "net/udp_transport.h"
#include "server/authoritative.h"
#include "store/lease_store.h"
#include "util/logging.h"
#include "util/metrics.h"

using namespace dnscup;

namespace {

std::atomic<int> g_signal{0};

void handle_signal(int sig) { g_signal.store(sig); }

struct Options {
  uint16_t port = 5300;
  std::vector<std::pair<std::string, std::string>> zones;  // origin=path
  int64_t max_lease_s = 3600;
  bool dnscup = true;
  bool round_robin = false;
  bool verbose = false;
  std::string metrics_out;        ///< empty: no metrics dumps
  int64_t metrics_interval_s = 10;
  std::string state_dir;          ///< empty: volatile authority
  store::FsyncPolicy fsync = store::FsyncPolicy::kAlways;
  int64_t snapshot_interval_s = 60;
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--zone") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string spec = v;
      const auto eq = spec.find('=');
      if (eq == std::string::npos) return false;
      opts.zones.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--max-lease") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.max_lease_s = std::atoll(v);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.metrics_out = v;
    } else if (arg == "--metrics-interval") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.metrics_interval_s = std::atoll(v);
      if (opts.metrics_interval_s <= 0) return false;
    } else if (arg == "--state-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.state_dir = v;
    } else if (arg == "--fsync-policy") {
      const char* v = next();
      if (v == nullptr) return false;
      auto policy = store::fsync_policy_from_string(v);
      if (!policy.ok()) {
        std::fprintf(stderr, "%s\n", policy.error().to_string().c_str());
        return false;
      }
      opts.fsync = policy.value();
    } else if (arg == "--snapshot-interval") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.snapshot_interval_s = std::atoll(v);
      if (opts.snapshot_interval_s <= 0) return false;
    } else if (arg == "--no-dnscup") {
      opts.dnscup = false;
    } else if (arg == "--round-robin") {
      opts.round_robin = true;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !opts.zones.empty();
}

/// Serializes datagram delivery with the timer pump (the protocol stack
/// is single-threaded by design).
class LockedTransport final : public net::Transport {
 public:
  LockedTransport(net::Transport& inner, std::mutex& mutex)
      : inner_(&inner), mutex_(&mutex) {}
  const net::Endpoint& local_endpoint() const override {
    return inner_->local_endpoint();
  }
  void send(const net::Endpoint& to, std::span<const uint8_t> data) override {
    inner_->send(to, data);
  }
  void set_receive_handler(ReceiveHandler handler) override {
    inner_->set_receive_handler(
        [this, handler = std::move(handler)](
            const net::Endpoint& from, std::span<const uint8_t> data) {
          std::lock_guard lock(*mutex_);
          handler(from, data);
        });
  }

 private:
  net::Transport* inner_;
  std::mutex* mutex_;
};

/// Writes the snapshot JSON to `path` (truncate + replace; callers hold
/// the stack mutex, so the snapshot itself is consistent).
void dump_metrics(const metrics::Snapshot& snapshot,
                  const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics dump failed: cannot open %s\n",
                 path.c_str());
    return;
  }
  const std::string json = snapshot.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    std::fprintf(
        stderr,
        "usage: dnscupd --port N --zone origin=path [--zone ...]\n"
        "               [--max-lease seconds] [--no-dnscup]\n"
        "               [--round-robin] [--verbose]\n"
        "               [--metrics-out file] [--metrics-interval seconds]\n"
        "               [--state-dir dir] "
        "[--fsync-policy always|interval|never]\n"
        "               [--snapshot-interval seconds]\n");
    return 2;
  }
  if (opts.verbose) util::set_log_level(util::LogLevel::kDebug);

  metrics::MetricsRegistry registry;
  auto transport = net::UdpTransport::bind(opts.port, &registry);
  if (!transport.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 transport.error().to_string().c_str());
    return 1;
  }

  net::EventLoop loop(&registry);
  std::mutex mutex;
  LockedTransport locked(*transport.value(), mutex);
  server::AuthServer authority(locked, loop, server::AuthServer::Role::kMaster,
                               &registry);
  authority.set_round_robin(opts.round_robin);

  for (const auto& [origin_text, path] : opts.zones) {
    auto origin = dns::Name::parse(origin_text);
    if (!origin.ok()) {
      std::fprintf(stderr, "bad origin %s\n", origin_text.c_str());
      return 1;
    }
    auto zone = dns::load_zone_file(path, origin.value());
    if (!zone.ok()) {
      std::fprintf(stderr, "%s\n", zone.error().to_string().c_str());
      return 1;
    }
    std::printf("loaded zone %s (%zu RRsets, serial %u) from %s\n",
                origin_text.c_str(), zone.value().rrset_count(),
                zone.value().serial(), path.c_str());
    authority.add_zone(std::move(zone).value());
  }

  store::PosixStorage posix_storage;
  std::unique_ptr<store::LeaseStore> lease_store;
  core::RecoveredState recovered;
  if (opts.dnscup && !opts.state_dir.empty()) {
    store::LeaseStore::Config store_config;
    store_config.dir = opts.state_dir;
    store_config.fsync = opts.fsync;
    store_config.metrics = &registry;
    auto opened =
        store::LeaseStore::open(&posix_storage, store_config, &recovered);
    if (!opened.ok()) {
      std::fprintf(stderr, "state recovery failed: %s\n",
                   opened.error().to_string().c_str());
      return 1;
    }
    lease_store = std::move(opened).value();
    std::printf(
        "state dir %s (fsync %s): %zu leases recovered, %llu WAL records "
        "replayed, %llu torn, in %lld us\n",
        opts.state_dir.c_str(), store::to_string(opts.fsync),
        recovered.leases.size(),
        static_cast<unsigned long long>(recovered.replayed_records),
        static_cast<unsigned long long>(recovered.torn_records),
        static_cast<long long>(recovered.duration_us));
  }

  std::unique_ptr<core::DnscupAuthority> dnscup;
  if (opts.dnscup) {
    core::DnscupAuthority::Config config;
    const net::Duration max_lease = net::seconds(opts.max_lease_s);
    config.max_lease = [max_lease](const dns::Name&, dns::RRType) {
      return max_lease;
    };
    config.metrics = &registry;
    config.journal = lease_store.get();
    dnscup = std::make_unique<core::DnscupAuthority>(authority, loop, config);
    if (lease_store != nullptr) {
      std::lock_guard lock(mutex);
      const auto report = dnscup->recover(recovered);
      std::printf(
          "recovery: %llu leases restored, %llu expired, %llu zones changed "
          "while down, %llu changes re-pushed\n",
          static_cast<unsigned long long>(report.leases_restored),
          static_cast<unsigned long long>(report.leases_expired),
          static_cast<unsigned long long>(report.zones_changed),
          static_cast<unsigned long long>(report.changes_pushed));
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::printf("dnscupd listening on %s (%s)\n",
              transport.value()->local_endpoint().to_string().c_str(),
              opts.dnscup ? "DNScup enabled" : "plain TTL");

  auto last_report = std::chrono::steady_clock::now();
  auto last_metrics = last_report;
  auto last_snapshot = last_report;
  while (g_signal.load() == 0) {
    {
      std::lock_guard lock(mutex);
      loop.run_for(net::milliseconds(20));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const auto now = std::chrono::steady_clock::now();
    if (!opts.metrics_out.empty() &&
        now - last_metrics >= std::chrono::seconds(opts.metrics_interval_s)) {
      last_metrics = now;
      std::lock_guard lock(mutex);
      dump_metrics(registry.snapshot(loop.now()), opts.metrics_out);
    }
    if (lease_store != nullptr &&
        now - last_snapshot >=
            std::chrono::seconds(opts.snapshot_interval_s)) {
      last_snapshot = now;
      std::lock_guard lock(mutex);
      if (auto status = lease_store->write_snapshot(dnscup->track_file(),
                                                    loop.now());
          !status.ok()) {
        std::fprintf(stderr, "snapshot failed: %s\n",
                     status.error().to_string().c_str());
      }
    }
    if (opts.verbose && now - last_report >= std::chrono::seconds(1)) {
      last_report = now;
      std::lock_guard lock(mutex);
      std::printf(
          "queries=%llu updates=%llu leases=%zu pushes=%llu acks=%llu\n",
          static_cast<unsigned long long>(authority.stats().queries),
          static_cast<unsigned long long>(authority.stats().updates),
          dnscup != nullptr ? dnscup->track_file().live_count(loop.now())
                            : 0,
          dnscup != nullptr
              ? static_cast<unsigned long long>(
                    dnscup->notifier().stats().updates_sent)
              : 0ull,
          dnscup != nullptr
              ? static_cast<unsigned long long>(
                    dnscup->notifier().stats().acks_received)
              : 0ull);
    }
  }
  const int sig = g_signal.load();
  std::printf("\nshutting down (%s)\n",
              sig == SIGTERM ? "SIGTERM" : sig == SIGINT ? "SIGINT"
                                                         : "signal");
  if (lease_store != nullptr) {
    std::lock_guard lock(mutex);
    if (auto status =
            lease_store->write_snapshot(dnscup->track_file(), loop.now());
        status.ok()) {
      std::printf("final state snapshot written to %s\n",
                  opts.state_dir.c_str());
    } else {
      std::fprintf(stderr, "final snapshot failed: %s\n",
                   status.error().to_string().c_str());
    }
  }
  if (!opts.metrics_out.empty()) {
    std::lock_guard lock(mutex);
    dump_metrics(registry.snapshot(loop.now()), opts.metrics_out);
    std::printf("final metrics snapshot written to %s\n",
                opts.metrics_out.c_str());
  }
  std::printf("final track file:\n%s",
              dnscup != nullptr
                  ? dnscup->track_file().serialize(loop.now()).c_str()
                  : "");
  return 0;
}

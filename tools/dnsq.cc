// dnsq — a dig-lite query client for dnscupd (or any DNS-over-UDP
// endpoint speaking this repository's wire format, which is plain
// RFC 1035 unless --ext is given).
//
// Usage:
//   dnsq <ip:port> <name> [type] [--ext [rrc]] [--timeout ms]
//
//   dnsq 127.0.0.1:5300 www.example.com A
//   dnsq 127.0.0.1:5300 www.example.com A --ext 120   # DNScup EXT query
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>

#include "dns/message.h"
#include "net/udp_transport.h"

using namespace dnscup;

namespace {

std::optional<net::Endpoint> parse_endpoint(const char* text) {
  const std::string s = text;
  const auto colon = s.rfind(':');
  if (colon == std::string::npos) return std::nullopt;
  auto ip = dns::Ipv4::parse(s.substr(0, colon));
  if (!ip.ok()) return std::nullopt;
  const int port = std::atoi(s.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return std::nullopt;
  return net::Endpoint{ip.value().addr, static_cast<uint16_t>(port)};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: dnsq <ip:port> <name> [type] [--ext [rrc]] "
                 "[--timeout ms]\n");
    return 2;
  }
  const auto server = parse_endpoint(argv[1]);
  if (!server.has_value()) {
    std::fprintf(stderr, "bad server endpoint: %s\n", argv[1]);
    return 2;
  }
  auto qname = dns::Name::parse(argv[2]);
  if (!qname.ok()) {
    std::fprintf(stderr, "bad name: %s\n", qname.error().to_string().c_str());
    return 2;
  }

  dns::RRType qtype = dns::RRType::kA;
  bool ext = false;
  uint16_t rrc = 0;
  int timeout_ms = 2000;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ext") == 0) {
      ext = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        rrc = static_cast<uint16_t>(std::atoi(argv[++i]));
      }
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      timeout_ms = std::atoi(argv[++i]);
    } else {
      auto t = dns::rrtype_from_string(argv[i]);
      if (!t.ok()) {
        std::fprintf(stderr, "bad type: %s\n", argv[i]);
        return 2;
      }
      qtype = t.value();
    }
  }

  auto transport = net::UdpTransport::bind(0);
  if (!transport.ok()) {
    std::fprintf(stderr, "socket: %s\n",
                 transport.error().to_string().c_str());
    return 1;
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::optional<dns::Message> response;
  transport.value()->set_receive_handler(
      [&](const net::Endpoint&, std::span<const uint8_t> data) {
        auto m = dns::Message::decode(data);
        if (m.ok()) {
          std::lock_guard lock(mutex);
          response = std::move(m).value();
          cv.notify_all();
        }
      });

  dns::Message query;
  query.id = static_cast<uint16_t>(
      std::chrono::steady_clock::now().time_since_epoch().count() & 0xFFFF);
  query.flags.opcode = dns::Opcode::kQuery;
  query.flags.rd = true;
  query.flags.ext = ext;
  query.questions.push_back(
      dns::Question{std::move(qname).value(), qtype, dns::RRClass::kIN,
                    rrc});
  transport.value()->send(*server, query.encode());

  std::unique_lock lock(mutex);
  if (!cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                   [&] { return response.has_value(); })) {
    std::fprintf(stderr, ";; timeout after %d ms\n", timeout_ms);
    return 1;
  }
  std::printf("%s", response->to_string().c_str());
  if (response->flags.ext && response->llt > 0) {
    std::printf(";; DNScup lease granted: %llu seconds\n",
                static_cast<unsigned long long>(
                    dns::llt_to_seconds(response->llt)));
  }
  return response->flags.rcode == dns::Rcode::kNoError ? 0 : 1;
}

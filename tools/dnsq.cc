// dnsq — a dig-lite client for dnscupd / dnscached (or any DNS-over-UDP
// endpoint speaking this repository's wire format, which is plain
// RFC 1035 unless --ext is given).
//
// Query mode (default):
//   dnsq <ip:port> <name> [type] [--ext [rrc]] [--timeout ms]
//
//   dnsq 127.0.0.1:5300 www.example.com A
//   dnsq 127.0.0.1:5301 www.example.com A --ext 120   # DNScup EXT query
//
// Update mode (--update): sends an RFC 2136 UPDATE repointing the name's
// A RRset to a new address — the paper's canonical zone change, handy for
// poking a running dnscupd and watching the CACHE-UPDATE push reach a
// dnscached:
//   dnsq 127.0.0.1:5300 www.example.com --update 10.9.9.9
//        [--zone example.com] [--ttl 300]
// The zone defaults to the name's parent domain.
//
// Responses are accepted only from the queried server and only when the
// message id echoes the query's — anything else is reported and ignored
// (the wait keeps running until the real answer or the timeout).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>

#include "dns/message.h"
#include "net/udp_transport.h"
#include "server/update.h"

using namespace dnscup;

namespace {

struct Options {
  net::Endpoint server;
  dns::Name name;
  dns::RRType qtype = dns::RRType::kA;
  bool ext = false;
  uint16_t rrc = 0;
  int timeout_ms = 2000;
  // --update mode
  std::optional<dns::Ipv4> update_address;
  std::optional<dns::Name> zone;
  uint32_t update_ttl = 300;
};

int usage() {
  std::fprintf(stderr,
               "usage: dnsq <ip:port> <name> [type] [--ext [rrc]] "
               "[--timeout ms]\n"
               "       dnsq <ip:port> <name> --update <ipv4> "
               "[--zone origin] [--ttl n] [--timeout ms]\n");
  return 2;
}

bool parse_args(int argc, char** argv, Options& opts) {
  if (argc < 3) return false;
  std::string ep_error;
  const auto server = net::parse_endpoint(argv[1], &ep_error);
  if (!server.has_value()) {
    std::fprintf(stderr, "%s\n", ep_error.c_str());
    return false;
  }
  opts.server = *server;
  auto name = dns::Name::parse(argv[2]);
  if (!name.ok()) {
    std::fprintf(stderr, "bad name: %s\n", name.error().to_string().c_str());
    return false;
  }
  opts.name = std::move(name).value();

  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ext") == 0) {
      opts.ext = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        opts.rrc = static_cast<uint16_t>(std::atoi(argv[++i]));
      }
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      opts.timeout_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--update") == 0 && i + 1 < argc) {
      auto address = dns::Ipv4::parse(argv[++i]);
      if (!address.ok()) {
        std::fprintf(stderr, "bad address: %s\n",
                     address.error().to_string().c_str());
        return false;
      }
      opts.update_address = address.value();
    } else if (std::strcmp(argv[i], "--zone") == 0 && i + 1 < argc) {
      auto zone = dns::Name::parse(argv[++i]);
      if (!zone.ok()) {
        std::fprintf(stderr, "bad zone: %s\n",
                     zone.error().to_string().c_str());
        return false;
      }
      opts.zone = std::move(zone).value();
    } else if (std::strcmp(argv[i], "--ttl") == 0 && i + 1 < argc) {
      opts.update_ttl = static_cast<uint32_t>(std::atoll(argv[++i]));
    } else {
      auto t = dns::rrtype_from_string(argv[i]);
      if (!t.ok()) {
        std::fprintf(stderr, "bad argument: %s\n", argv[i]);
        return false;
      }
      opts.qtype = t.value();
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage();

  auto transport = net::UdpTransport::bind(0);
  if (!transport.ok()) {
    std::fprintf(stderr, "socket: %s\n",
                 transport.error().to_string().c_str());
    return 1;
  }

  const uint16_t id = static_cast<uint16_t>(
      std::chrono::steady_clock::now().time_since_epoch().count() & 0xFFFF);

  dns::Message query;
  if (opts.update_address.has_value()) {
    const dns::Name zone = opts.zone.has_value() ? *opts.zone
                           : opts.name.is_root() ? opts.name
                                                 : opts.name.parent();
    query = server::UpdateBuilder(zone)
                .replace_a(opts.name, opts.update_ttl, *opts.update_address)
                .build(id);
  } else {
    query.id = id;
    query.flags.opcode = dns::Opcode::kQuery;
    query.flags.rd = true;
    query.flags.ext = opts.ext;
    query.questions.push_back(
        dns::Question{opts.name, opts.qtype, dns::RRClass::kIN, opts.rrc});
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::optional<dns::Message> response;
  transport.value()->set_receive_handler(
      [&](const net::Endpoint& from, std::span<const uint8_t> data) {
        if (from != opts.server) {
          std::fprintf(stderr, ";; ignored datagram from %s\n",
                       from.to_string().c_str());
          return;
        }
        auto m = dns::Message::decode(data);
        if (!m.ok()) {
          std::fprintf(stderr, ";; ignored undecodable response: %s\n",
                       m.error().to_string().c_str());
          return;
        }
        if (m.value().id != id || !m.value().flags.qr) {
          std::fprintf(stderr, ";; ignored response with id %u (sent %u)\n",
                       m.value().id, id);
          return;
        }
        std::lock_guard lock(mutex);
        response = std::move(m).value();
        cv.notify_all();
      });

  transport.value()->send(opts.server, query.encode());

  std::unique_lock lock(mutex);
  if (!cv.wait_for(lock, std::chrono::milliseconds(opts.timeout_ms),
                   [&] { return response.has_value(); })) {
    std::fprintf(stderr, ";; timeout after %d ms\n", opts.timeout_ms);
    return 1;
  }
  std::printf("%s", response->to_string().c_str());
  if (response->flags.ext && response->llt > 0) {
    std::printf(";; DNScup lease granted: %llu seconds\n",
                static_cast<unsigned long long>(
                    dns::llt_to_seconds(response->llt)));
  }
  return response->flags.rcode == dns::Rcode::kNoError ? 0 : 1;
}

#!/usr/bin/env bash
# Two-daemon consistency benchmark: dnscupd (authority) + dnscached
# (cache) as real processes on loopback, background dnsflood load through
# the cache, and the e2e_consistency probe measuring the stale-read
# window — the time between an RFC 2136 UPDATE landing at the authority
# and the cache serving the new mapping.  Runs once with DNScup enabled
# and once with the cache in plain TTL mode (--no-dnscup), then merges
# the probe results with both daemons' final metrics snapshots into one
# report: stale windows per mode plus the DNScup message overhead
# (CACHE-UPDATE pushes, acks, EXT queries) that buys the improvement.
#
# Usage:
#   tools/bench_e2e.sh                       # 8 trials, 2 s record TTL
#   TRIALS=20 TTL=5 tools/bench_e2e.sh
#   OUT=/tmp/report.json tools/bench_e2e.sh
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${JOBS:-$(nproc)}
trials=${TRIALS:-8}
ttl=${TTL:-2}
load_qps=${LOAD_QPS:-500}
out=${OUT:-$repo_root/BENCH_e2e_consistency.json}

build_dir="$repo_root/build"
cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$jobs" \
  --target dnscupd dnscached dnsflood e2e_consistency

bench_dir="$build_dir/bench/e2e"
mkdir -p "$bench_dir"

# One mode = one fresh daemon pair + background load + probe run.
# $1 = label; remaining args are extra dnscached flags (e.g. --no-dnscup).
run_mode() {
  local label=$1
  shift

  local zone="$bench_dir/$label.zone"
  {
    echo '$ORIGIN example.com.'
    echo '@ IN SOA ns1.example.com. admin.example.com. 1 7200 900 604800 300'
    echo "@ $ttl IN NS ns1.example.com."
    echo "ns1 $ttl IN A 10.0.0.1"
    echo "www $ttl IN A 10.1.0.1"
    for i in $(seq 0 99); do
      echo "w$i $ttl IN A 10.2.$((i / 256)).$((i % 256))"
    done
  } > "$zone"

  local auth_port=$(( 21000 + RANDOM % 8000 ))
  local cache_port=$(( auth_port + 8000 ))

  "$build_dir/tools/dnscupd" --port "$auth_port" \
    --zone "example.com=$zone" --workers 1 \
    --metrics-out "$bench_dir/$label-auth-metrics.json" \
    > "$bench_dir/$label-auth.log" 2>&1 &
  local auth_pid=$!
  "$build_dir/tools/dnscached" --port "$cache_port" \
    --upstream "127.0.0.1:$auth_port" --workers 1 \
    --metrics-out "$bench_dir/$label-cache-metrics.json" \
    "$@" \
    > "$bench_dir/$label-cache.log" 2>&1 &
  local cache_pid=$!

  local up=no
  for _ in $(seq 50); do
    if grep -q listening "$bench_dir/$label-auth.log" 2>/dev/null &&
       grep -q listening "$bench_dir/$label-cache.log" 2>/dev/null; then
      up=yes; break
    fi
    sleep 0.1
  done
  if [ "$up" != yes ]; then
    echo "daemon pair failed to start ($label):"
    cat "$bench_dir/$label-auth.log" "$bench_dir/$label-cache.log"
    kill "$auth_pid" "$cache_pid" 2>/dev/null || true
    return 1
  fi

  # Background client load through the cache for the whole probe run
  # (rate-capped open loop; killed once the probe finishes).
  "$build_dir/tools/dnsflood" --server "127.0.0.1:$cache_port" \
    --duration $(( trials * 5 + 30 )) --sockets 1 --concurrency 8 \
    --qps "$load_qps" --names 100 --lease-fraction 0 \
    --out "$bench_dir/$label-flood.json" \
    > "$bench_dir/$label-flood.log" 2>&1 &
  local flood_pid=$!

  echo "== $label: $trials trials, ${ttl}s record TTL, " \
       "~$load_qps q/s background load =="
  local probe_status=0
  "$build_dir/bench/e2e_consistency" \
    --authority "127.0.0.1:$auth_port" --cache "127.0.0.1:$cache_port" \
    --name www.example.com --zone example.com \
    --trials "$trials" --ttl "$ttl" --window-cap-ms $(( ttl * 1000 + 10000 )) \
    --label "$label" --out "$bench_dir/$label-probe.json" || probe_status=$?

  kill "$flood_pid" 2>/dev/null || true
  # SIGTERM makes both daemons write their final metrics snapshot.
  kill -TERM "$cache_pid" "$auth_pid" 2>/dev/null || true
  wait "$cache_pid" "$auth_pid" 2>/dev/null || true
  wait "$flood_pid" 2>/dev/null || true

  if [ "$probe_status" != 0 ]; then
    echo "probe failed ($label):"
    cat "$bench_dir/$label-auth.log" "$bench_dir/$label-cache.log"
    return "$probe_status"
  fi
}

run_mode dnscup
run_mode ttl --no-dnscup

python3 - "$out" "$bench_dir" "$trials" "$ttl" <<'EOF'
import json, sys

out, bench_dir, trials, ttl = sys.argv[1:]

def counter(snapshot, name, **labels):
    """Sum of matching counter values in a metrics to_json snapshot."""
    total = 0
    for entry in snapshot["metrics"]:
        if entry["name"] != name:
            continue
        if any(entry["labels"].get(k) != v for k, v in labels.items()):
            continue
        total += int(entry.get("value", 0))
    return total

report = {
    "bench": "e2e_consistency",
    "description": "stale-read window after an RFC 2136 UPDATE, measured "
                   "against a live dnscupd+dnscached pair on loopback "
                   "under background query load; DNScup push vs plain "
                   "TTL expiry",
    "trials": int(trials),
    "record_ttl_s": int(ttl),
    "modes": {},
}
for label in ("dnscup", "ttl"):
    with open(f"{bench_dir}/{label}-probe.json") as f:
        probe = json.load(f)
    with open(f"{bench_dir}/{label}-auth-metrics.json") as f:
        auth = json.load(f)
    with open(f"{bench_dir}/{label}-cache-metrics.json") as f:
        cache = json.load(f)
    report["modes"][label] = {
        "stale_window_ms": {
            "mean": probe["mean_ms"],
            "p50": probe["p50_ms"],
            "max": probe["max_ms"],
            "windows": probe["windows_ms"],
        },
        "messages": {
            # Authority side: the DNScup invalidation traffic itself.
            "cache_updates_sent": counter(auth, "cache_update_messages",
                                          result="sent"),
            "cache_update_retransmits": counter(auth, "cache_update_messages",
                                                result="retransmit"),
            "cache_updates_acked": counter(auth, "cache_update_messages",
                                           result="acked"),
            "ext_queries_at_authority": counter(auth, "listener_queries",
                                                kind="ext"),
            "legacy_queries_at_authority": counter(auth, "listener_queries",
                                                   kind="legacy"),
            # Cache side: upstream fetch volume and ack traffic.
            "cache_upstream_queries": counter(cache, "resolver_queries",
                                              side="upstream"),
            "cache_client_queries": counter(cache, "resolver_queries",
                                            side="client"),
            "cache_acks_sent": counter(cache, "lease_client_acks_sent"),
            "cache_updates_applied": counter(cache, "lease_client_updates",
                                             result="applied"),
        },
    }

dnscup = report["modes"]["dnscup"]["stale_window_ms"]
plain = report["modes"]["ttl"]["stale_window_ms"]
if dnscup["mean"] > 0:
    report["mean_window_improvement"] = round(plain["mean"] / dnscup["mean"], 1)

with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

for label in ("dnscup", "ttl"):
    w = report["modes"][label]["stale_window_ms"]
    m = report["modes"][label]["messages"]
    print(f"{label:>6}: stale window mean {w['mean']:8.1f} ms  "
          f"p50 {w['p50']:8.1f} ms  max {w['max']:8.1f} ms  |  "
          f"pushes {m['cache_updates_sent']}"
          f"+{m['cache_update_retransmits']} rtx, "
          f"acks {m['cache_updates_acked']}, "
          f"upstream queries {m['cache_upstream_queries']}")
if "mean_window_improvement" in report:
    print(f"DNScup shrinks the mean stale window "
          f"{report['mean_window_improvement']}x  -> {out}")
EOF

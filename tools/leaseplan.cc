// leaseplan — offline dynamic-lease planning from observed query rates.
//
// An operator feeds the per-(cache, record) query rates observed at an
// authoritative nameserver (one line each: "<name> <cache> <rate_qps>
// <max_lease_s>") and a budget; the tool runs the paper's §4.2 greedy
// optimizers and prints the lease assignment plus aggregate costs.
//
// Usage:
//   leaseplan --storage-budget 1000  < rates.txt   # §4.2.1 (SLP)
//   leaseplan --message-budget 50    < rates.txt   # §4.2.2
//   leaseplan --fixed 3600           < rates.txt   # fixed-length baseline
//   leaseplan --compare 1000         < rates.txt   # dynamic vs fixed table
//   leaseplan --compare-estimators 1000 < trace.txt  # λ forecasting replay
//
// --compare-estimators replays a multi-epoch rate trace (one line per
// pair: "<name> <cache> <max_lease_s> <r1> <r2> ... <rT>") through every
// LambdaEstimator: at each epoch the estimator forecasts the next-epoch
// rates, the SLP planner plans on the forecast, and the plan is charged
// against the *true* next-epoch rates.  The report compares each
// estimator's realized message rate against the oracle (planning with
// perfect next-epoch knowledge) — the regret a worse forecast costs.
//
// With `--metrics-out file` every evaluated scheme's aggregate costs are
// also published as leaseplan_* gauges and written as a JSON metrics
// snapshot (timestamp 0: the tool is offline, there is no clock).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dynamic_lease.h"
#include "planner/lambda_estimator.h"
#include "util/metrics.h"

using namespace dnscup;

namespace {

struct Input {
  std::vector<std::string> names;
  std::vector<core::DemandEntry> demands;
};

bool read_rates(std::istream& in, Input& input) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string name;
    std::size_t cache = 0;
    core::DemandEntry d;
    if (!(is >> name >> cache >> d.rate >> d.max_lease)) {
      std::fprintf(stderr, "bad input line %zu: %s\n", lineno, line.c_str());
      return false;
    }
    d.record = input.names.size();
    d.cache = cache;
    input.names.push_back(name);
    input.demands.push_back(d);
  }
  return !input.demands.empty();
}

/// Publishes one scheme's aggregate costs into the snapshot registry.
void record_plan(metrics::MetricsRegistry& registry, const char* scheme,
                 const core::LeasePlan& plan) {
  const metrics::Labels labels{{"scheme", scheme}};
  registry.gauge("leaseplan_total_storage_leases", labels)
      .set(plan.total_storage);
  registry.gauge("leaseplan_storage_pct", labels)
      .set(plan.storage_percentage);
  registry.gauge("leaseplan_message_rate_per_s", labels)
      .set(plan.total_message_rate);
  registry.gauge("leaseplan_query_rate_pct", labels)
      .set(plan.query_rate_percentage);
}

void print_plan(const Input& input, const core::LeasePlan& plan) {
  std::printf("%-32s %-7s %-12s %-12s\n", "name", "cache", "rate q/s",
              "lease s");
  for (std::size_t i = 0; i < input.demands.size(); ++i) {
    std::printf("%-32s %-7zu %-12.4f %-12.0f\n", input.names[i].c_str(),
                input.demands[i].cache, input.demands[i].rate,
                plan.lengths[i]);
  }
  std::printf(
      "\ntotals: storage %.1f leases (%.1f%%), messages %.3f/s "
      "(%.1f%% of polling)\n",
      plan.total_storage, plan.storage_percentage, plan.total_message_rate,
      plan.query_rate_percentage);
}

/// One pair's rate trace for --compare-estimators.
struct TracePair {
  std::string name;
  std::size_t cache = 0;
  double max_lease = 0.0;
  std::vector<double> rates;  ///< per-epoch observed λ
};

bool read_trace(std::istream& in, std::vector<TracePair>& pairs) {
  std::string line;
  std::size_t lineno = 0;
  std::size_t epochs = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    TracePair p;
    if (!(is >> p.name >> p.cache >> p.max_lease)) {
      std::fprintf(stderr, "bad trace line %zu: %s\n", lineno, line.c_str());
      return false;
    }
    double rate = 0.0;
    while (is >> rate) p.rates.push_back(rate);
    if (p.rates.size() < 2) {
      std::fprintf(stderr, "trace line %zu needs >= 2 epochs\n", lineno);
      return false;
    }
    if (epochs == 0) {
      epochs = p.rates.size();
    } else if (p.rates.size() != epochs) {
      std::fprintf(stderr, "trace line %zu has %zu epochs, expected %zu\n",
                   lineno, p.rates.size(), epochs);
      return false;
    }
    pairs.push_back(std::move(p));
  }
  return !pairs.empty();
}

/// Replays the trace through every estimator: plan on the forecast,
/// charge against the truth, compare with the perfect-knowledge oracle.
int compare_estimators(const std::vector<TracePair>& pairs, double budget,
                       metrics::MetricsRegistry& registry) {
  const std::size_t n = pairs.size();
  const std::size_t epochs = pairs.front().rates.size();

  // Oracle: plan every epoch on the true next-epoch rates.
  std::vector<core::DemandEntry> truth(n);
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = core::DemandEntry{i, pairs[i].cache, 0.0, pairs[i].max_lease};
  }
  double oracle_msgs = 0.0;
  for (std::size_t t = 1; t < epochs; ++t) {
    for (std::size_t i = 0; i < n; ++i) truth[i].rate = pairs[i].rates[t];
    oracle_msgs += core::plan_storage_constrained(truth, budget)
                       .total_message_rate;
  }
  oracle_msgs /= static_cast<double>(epochs - 1);

  std::printf(
      "# estimator comparison: SLP budget %.1f, %zu pairs, %zu epochs\n"
      "%-14s %-14s %-16s %-14s %-10s\n",
      budget, n, epochs, "estimator", "mean |λ err|", "realized msg/s",
      "oracle msg/s", "regret %");
  for (const auto kind :
       {planner::EstimatorKind::kLastWindow, planner::EstimatorKind::kEwma,
        planner::EstimatorKind::kHolt}) {
    const planner::LambdaEstimator estimator(kind);
    std::vector<planner::LambdaEstimator::State> states(n);
    std::vector<core::DemandEntry> forecast = truth;
    double abs_error = 0.0;
    double realized_msgs = 0.0;
    for (std::size_t t = 0; t + 1 < epochs; ++t) {
      for (std::size_t i = 0; i < n; ++i) {
        forecast[i].rate = estimator.update(states[i], pairs[i].rates[t]);
        abs_error += std::abs(forecast[i].rate - pairs[i].rates[t + 1]);
      }
      core::LeasePlan plan = core::plan_storage_constrained(forecast, budget);
      // Charge the forecast-based plan against what actually arrives.
      for (std::size_t i = 0; i < n; ++i) {
        truth[i].rate = pairs[i].rates[t + 1];
      }
      core::evaluate_plan(truth, plan);
      realized_msgs += plan.total_message_rate;
    }
    abs_error /= static_cast<double>(n * (epochs - 1));
    realized_msgs /= static_cast<double>(epochs - 1);
    const double regret =
        oracle_msgs > 0 ? 100.0 * (realized_msgs - oracle_msgs) / oracle_msgs
                        : 0.0;
    const char* name = planner::LambdaEstimator::name(kind);
    std::printf("%-14s %-14.4f %-16.3f %-14.3f %-10.2f\n", name, abs_error,
                realized_msgs, oracle_msgs, regret);
    const metrics::Labels labels{{"estimator", name}};
    registry.gauge("leaseplan_estimator_abs_error", labels).set(abs_error);
    registry.gauge("leaseplan_realized_message_rate", labels)
        .set(realized_msgs);
    registry.gauge("leaseplan_oracle_message_rate", labels).set(oracle_msgs);
    registry.gauge("leaseplan_estimator_regret_pct", labels).set(regret);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double storage_budget = -1;
  double message_budget = -1;
  double fixed = -1;
  double compare = -1;
  double compare_estimators_budget = -1;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() { return i + 1 < argc ? std::atof(argv[++i]) : -1.0; };
    if (std::strcmp(argv[i], "--storage-budget") == 0) {
      storage_budget = next();
    } else if (std::strcmp(argv[i], "--message-budget") == 0) {
      message_budget = next();
    } else if (std::strcmp(argv[i], "--fixed") == 0) {
      fixed = next();
    } else if (std::strcmp(argv[i], "--compare") == 0) {
      compare = next();
    } else if (std::strcmp(argv[i], "--compare-estimators") == 0) {
      compare_estimators_budget = next();
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (storage_budget < 0 && message_budget < 0 && fixed < 0 && compare < 0 &&
      compare_estimators_budget < 0) {
    std::fprintf(
        stderr,
        "usage: leaseplan --storage-budget N | --message-budget N |"
        " --fixed T | --compare N |\n"
        "                 --compare-estimators N  [--metrics-out file]"
        " < rates.txt\n"
        "input lines: <name> <cache-id> <rate_qps> <max_lease_s>\n"
        "trace lines (--compare-estimators): <name> <cache-id>"
        " <max_lease_s> <r1> <r2> ... <rT>\n");
    return 2;
  }

  metrics::MetricsRegistry registry;

  if (compare_estimators_budget >= 0) {
    std::vector<TracePair> pairs;
    if (!read_trace(std::cin, pairs)) return 1;
    registry.counter("leaseplan_demand_pairs") += pairs.size();
    const int rc =
        compare_estimators(pairs, compare_estimators_budget, registry);
    if (rc != 0) return rc;
    if (!metrics_out.empty()) {
      std::FILE* f = std::fopen(metrics_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
        return 1;
      }
      const std::string json = registry.snapshot(0).to_json();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
    return 0;
  }

  Input input;
  if (!read_rates(std::cin, input)) return 1;

  registry.counter("leaseplan_demand_pairs") += input.demands.size();

  if (storage_budget >= 0) {
    std::printf("# storage-constrained dynamic lease (budget %.1f)\n",
                storage_budget);
    const auto plan =
        core::plan_storage_constrained(input.demands, storage_budget);
    record_plan(registry, "storage_constrained", plan);
    print_plan(input, plan);
  } else if (message_budget >= 0) {
    std::printf("# communication-constrained dynamic lease (budget %.3f/s)\n",
                message_budget);
    const auto plan =
        core::plan_comm_constrained(input.demands, message_budget);
    record_plan(registry, "comm_constrained", plan);
    print_plan(input, plan);
  } else if (fixed >= 0) {
    std::printf("# fixed-length lease (%.0f s)\n", fixed);
    const auto plan = core::plan_fixed(input.demands, fixed);
    record_plan(registry, "fixed", plan);
    print_plan(input, plan);
  } else {
    const auto dynamic =
        core::plan_storage_constrained(input.demands, compare);
    std::printf("# dynamic vs fixed at equal storage (%.1f leases)\n\n",
                compare);
    std::printf("%-28s %-12s %-12s %-12s\n", "scheme", "storage",
                "messages/s", "query %");
    auto row = [](const char* name, const core::LeasePlan& plan) {
      std::printf("%-28s %-12.1f %-12.3f %-12.1f\n", name,
                  plan.total_storage, plan.total_message_rate,
                  plan.query_rate_percentage);
    };
    const auto polling = core::plan_polling(input.demands);
    row("polling (TTL only)", polling);
    record_plan(registry, "polling", polling);
    // A fixed lease tuned to land on the same storage budget.
    double lo = 1.0;
    double hi = 1e7;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = std::sqrt(lo * hi);
      if (core::plan_fixed(input.demands, mid).total_storage < compare) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const auto fixed_plan = core::plan_fixed(input.demands, lo);
    row("fixed (equal storage)", fixed_plan);
    record_plan(registry, "fixed_equal_storage", fixed_plan);
    row("dynamic (storage-constr.)", dynamic);
    record_plan(registry, "storage_constrained", dynamic);
  }

  if (!metrics_out.empty()) {
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    const std::string json = registry.snapshot(0).to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return 0;
}

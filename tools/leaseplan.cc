// leaseplan — offline dynamic-lease planning from observed query rates.
//
// An operator feeds the per-(cache, record) query rates observed at an
// authoritative nameserver (one line each: "<name> <cache> <rate_qps>
// <max_lease_s>") and a budget; the tool runs the paper's §4.2 greedy
// optimizers and prints the lease assignment plus aggregate costs.
//
// Usage:
//   leaseplan --storage-budget 1000  < rates.txt   # §4.2.1 (SLP)
//   leaseplan --message-budget 50    < rates.txt   # §4.2.2
//   leaseplan --fixed 3600           < rates.txt   # fixed-length baseline
//   leaseplan --compare 1000         < rates.txt   # dynamic vs fixed table
//
// With `--metrics-out file` every evaluated scheme's aggregate costs are
// also published as leaseplan_* gauges and written as a JSON metrics
// snapshot (timestamp 0: the tool is offline, there is no clock).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dynamic_lease.h"
#include "util/metrics.h"

using namespace dnscup;

namespace {

struct Input {
  std::vector<std::string> names;
  std::vector<core::DemandEntry> demands;
};

bool read_rates(std::istream& in, Input& input) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string name;
    std::size_t cache = 0;
    core::DemandEntry d;
    if (!(is >> name >> cache >> d.rate >> d.max_lease)) {
      std::fprintf(stderr, "bad input line %zu: %s\n", lineno, line.c_str());
      return false;
    }
    d.record = input.names.size();
    d.cache = cache;
    input.names.push_back(name);
    input.demands.push_back(d);
  }
  return !input.demands.empty();
}

/// Publishes one scheme's aggregate costs into the snapshot registry.
void record_plan(metrics::MetricsRegistry& registry, const char* scheme,
                 const core::LeasePlan& plan) {
  const metrics::Labels labels{{"scheme", scheme}};
  registry.gauge("leaseplan_total_storage_leases", labels)
      .set(plan.total_storage);
  registry.gauge("leaseplan_storage_pct", labels)
      .set(plan.storage_percentage);
  registry.gauge("leaseplan_message_rate_per_s", labels)
      .set(plan.total_message_rate);
  registry.gauge("leaseplan_query_rate_pct", labels)
      .set(plan.query_rate_percentage);
}

void print_plan(const Input& input, const core::LeasePlan& plan) {
  std::printf("%-32s %-7s %-12s %-12s\n", "name", "cache", "rate q/s",
              "lease s");
  for (std::size_t i = 0; i < input.demands.size(); ++i) {
    std::printf("%-32s %-7zu %-12.4f %-12.0f\n", input.names[i].c_str(),
                input.demands[i].cache, input.demands[i].rate,
                plan.lengths[i]);
  }
  std::printf(
      "\ntotals: storage %.1f leases (%.1f%%), messages %.3f/s "
      "(%.1f%% of polling)\n",
      plan.total_storage, plan.storage_percentage, plan.total_message_rate,
      plan.query_rate_percentage);
}

}  // namespace

int main(int argc, char** argv) {
  double storage_budget = -1;
  double message_budget = -1;
  double fixed = -1;
  double compare = -1;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() { return i + 1 < argc ? std::atof(argv[++i]) : -1.0; };
    if (std::strcmp(argv[i], "--storage-budget") == 0) {
      storage_budget = next();
    } else if (std::strcmp(argv[i], "--message-budget") == 0) {
      message_budget = next();
    } else if (std::strcmp(argv[i], "--fixed") == 0) {
      fixed = next();
    } else if (std::strcmp(argv[i], "--compare") == 0) {
      compare = next();
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (storage_budget < 0 && message_budget < 0 && fixed < 0 && compare < 0) {
    std::fprintf(stderr,
                 "usage: leaseplan --storage-budget N | --message-budget N |"
                 " --fixed T | --compare N  [--metrics-out file]"
                 " < rates.txt\n"
                 "input lines: <name> <cache-id> <rate_qps> <max_lease_s>\n");
    return 2;
  }

  Input input;
  if (!read_rates(std::cin, input)) return 1;

  metrics::MetricsRegistry registry;
  registry.counter("leaseplan_demand_pairs") += input.demands.size();

  if (storage_budget >= 0) {
    std::printf("# storage-constrained dynamic lease (budget %.1f)\n",
                storage_budget);
    const auto plan =
        core::plan_storage_constrained(input.demands, storage_budget);
    record_plan(registry, "storage_constrained", plan);
    print_plan(input, plan);
  } else if (message_budget >= 0) {
    std::printf("# communication-constrained dynamic lease (budget %.3f/s)\n",
                message_budget);
    const auto plan =
        core::plan_comm_constrained(input.demands, message_budget);
    record_plan(registry, "comm_constrained", plan);
    print_plan(input, plan);
  } else if (fixed >= 0) {
    std::printf("# fixed-length lease (%.0f s)\n", fixed);
    const auto plan = core::plan_fixed(input.demands, fixed);
    record_plan(registry, "fixed", plan);
    print_plan(input, plan);
  } else {
    const auto dynamic =
        core::plan_storage_constrained(input.demands, compare);
    std::printf("# dynamic vs fixed at equal storage (%.1f leases)\n\n",
                compare);
    std::printf("%-28s %-12s %-12s %-12s\n", "scheme", "storage",
                "messages/s", "query %");
    auto row = [](const char* name, const core::LeasePlan& plan) {
      std::printf("%-28s %-12.1f %-12.3f %-12.1f\n", name,
                  plan.total_storage, plan.total_message_rate,
                  plan.query_rate_percentage);
    };
    const auto polling = core::plan_polling(input.demands);
    row("polling (TTL only)", polling);
    record_plan(registry, "polling", polling);
    // A fixed lease tuned to land on the same storage budget.
    double lo = 1.0;
    double hi = 1e7;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = std::sqrt(lo * hi);
      if (core::plan_fixed(input.demands, mid).total_storage < compare) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const auto fixed_plan = core::plan_fixed(input.demands, lo);
    row("fixed (equal storage)", fixed_plan);
    record_plan(registry, "fixed_equal_storage", fixed_plan);
    row("dynamic (storage-constr.)", dynamic);
    record_plan(registry, "storage_constrained", dynamic);
  }

  if (!metrics_out.empty()) {
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    const std::string json = registry.snapshot(0).to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return 0;
}

// Shared CLI plumbing for the daemon tools (dnscupd, dnscached) and the
// load generator (dnsflood): the serving flags every daemon grows
// identically (--workers/--batch/--io-backend/--pin-cpus/...), metrics
// dump/aggregation helpers, and the "listening" banner supervisors and
// check.sh wait for.  Header-only; tools/ is the only consumer.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/endpoint.h"
#include "net/io_backend.h"
#include "util/metrics.h"

namespace dnscup::tools {

/// Parses "0,2,4" into CPU ids.  Rejects empty lists, stray characters
/// and negative ids.
inline std::optional<std::vector<int>> parse_pin_cpus(const char* text) {
  std::vector<int> cpus;
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    const long cpu = std::strtol(p, &end, 10);
    if (end == p || cpu < 0 || cpu > 4096) return std::nullopt;
    cpus.push_back(static_cast<int>(cpu));
    p = end;
    if (*p == ',') {
      ++p;
      if (*p == '\0') return std::nullopt;  // trailing comma
    } else if (*p != '\0') {
      return std::nullopt;
    }
  }
  if (cpus.empty()) return std::nullopt;
  return cpus;
}

/// The serving knobs dnscupd and dnscached share verbatim.  Each tool
/// embeds one (with its own default port), feeds unrecognised args to
/// parse_serving_flag() first, and copies the result into its runtime
/// Config via apply().
struct ServingFlags {
  explicit ServingFlags(uint16_t default_port) : port(default_port) {}

  uint16_t port;
  int workers = 1;
  bool reuseport = true;
  int batch = 32;  ///< datagrams served per worker iteration / tx flush
  int rcvbuf = 1 << 20;
  int sndbuf = 1 << 20;
  net::IoBackendKind io_backend = net::IoBackendKind::kDefault;
  std::vector<int> pin_cpus;
  bool dnscup = true;
  bool verbose = false;
  std::string metrics_out;  ///< empty: no metrics dumps
  int64_t metrics_interval_s = 10;

  // Connection-oriented push plane (src/push).  --push-plane enables it
  // on either daemon; dnscupd additionally honours --push-listen (its
  // TCP subscription port, 0 = ephemeral) and dnscached --push-authority
  // (the authority's push listener, printed in dnscupd's banner).  These
  // are wired per daemon, not via apply(): the config fields differ.
  bool push_plane = false;
  uint16_t push_listen = 0;
  net::Endpoint push_authority{};

  /// Copies into runtime::Config or cachert::Config (field names match).
  template <class ConfigT>
  void apply(ConfigT& config) const {
    config.port = port;
    config.workers = workers;
    config.reuseport = reuseport;
    config.batch_size = static_cast<std::size_t>(batch);
    config.rcvbuf_bytes = rcvbuf;
    config.sndbuf_bytes = sndbuf;
    config.io_backend = io_backend;
    config.pin_cpus = pin_cpus;
    config.dnscup = dnscup;
  }
};

enum class FlagParse {
  kMatched,    ///< consumed (possibly with its value argument)
  kError,      ///< matched but the value is missing/invalid
  kUnmatched,  ///< not a shared flag; the tool should try its own
};

/// Tries `arg` against the shared serving flags.  `next` yields the next
/// argv entry (consuming it) or nullptr — the same closure the tools
/// already use for their private flags.
inline FlagParse parse_serving_flag(const std::string& arg,
                                    const std::function<const char*()>& next,
                                    ServingFlags& flags) {
  const char* v = nullptr;
  if (arg == "--port") {
    if ((v = next()) == nullptr) return FlagParse::kError;
    flags.port = static_cast<uint16_t>(std::atoi(v));
  } else if (arg == "--workers") {
    if ((v = next()) == nullptr) return FlagParse::kError;
    flags.workers = std::atoi(v);
    if (flags.workers < 1) return FlagParse::kError;
  } else if (arg == "--no-reuseport") {
    flags.reuseport = false;
  } else if (arg == "--batch") {
    if ((v = next()) == nullptr) return FlagParse::kError;
    flags.batch = std::atoi(v);
    if (flags.batch < 1) return FlagParse::kError;
  } else if (arg == "--rcvbuf") {
    if ((v = next()) == nullptr) return FlagParse::kError;
    flags.rcvbuf = std::atoi(v);
  } else if (arg == "--sndbuf") {
    if ((v = next()) == nullptr) return FlagParse::kError;
    flags.sndbuf = std::atoi(v);
  } else if (arg == "--io-backend") {
    if ((v = next()) == nullptr) return FlagParse::kError;
    const auto kind = net::parse_io_backend_kind(v);
    if (!kind.has_value()) {
      std::fprintf(stderr, "bad --io-backend %s (portable|uring|default)\n",
                   v);
      return FlagParse::kError;
    }
    flags.io_backend = *kind;
  } else if (arg == "--pin-cpus") {
    if ((v = next()) == nullptr) return FlagParse::kError;
    const auto cpus = parse_pin_cpus(v);
    if (!cpus.has_value()) {
      std::fprintf(stderr, "bad --pin-cpus %s (want e.g. 0,1,2)\n", v);
      return FlagParse::kError;
    }
    flags.pin_cpus = *cpus;
  } else if (arg == "--no-dnscup") {
    flags.dnscup = false;
  } else if (arg == "--metrics-out") {
    if ((v = next()) == nullptr) return FlagParse::kError;
    flags.metrics_out = v;
  } else if (arg == "--metrics-interval") {
    if ((v = next()) == nullptr) return FlagParse::kError;
    flags.metrics_interval_s = std::atoll(v);
    if (flags.metrics_interval_s <= 0) return FlagParse::kError;
  } else if (arg == "--push-plane") {
    flags.push_plane = true;
  } else if (arg == "--push-listen") {
    if ((v = next()) == nullptr) return FlagParse::kError;
    const int port = std::atoi(v);
    if (port < 0 || port > 65535) {
      std::fprintf(stderr, "bad --push-listen %s (want a TCP port)\n", v);
      return FlagParse::kError;
    }
    flags.push_listen = static_cast<uint16_t>(port);
    flags.push_plane = true;
  } else if (arg == "--push-authority") {
    if ((v = next()) == nullptr) return FlagParse::kError;
    std::string error;
    const auto endpoint = net::parse_endpoint(v, &error);
    if (!endpoint.has_value()) {
      std::fprintf(stderr, "--push-authority: %s\n", error.c_str());
      return FlagParse::kError;
    }
    flags.push_authority = *endpoint;
    flags.push_plane = true;
  } else if (arg == "--verbose") {
    flags.verbose = true;
  } else {
    return FlagParse::kUnmatched;
  }
  return FlagParse::kMatched;
}

/// Usage text for the shared flags (one fragment both daemons print).
inline constexpr const char* kServingUsage =
    "               [--workers N] [--no-reuseport] [--batch N]\n"
    "               [--rcvbuf bytes] [--sndbuf bytes]\n"
    "               [--io-backend portable|uring] [--pin-cpus 0,1,...]\n"
    "               [--no-dnscup] [--verbose]\n"
    "               [--metrics-out file] [--metrics-interval seconds]\n"
    "               [--push-plane] [--push-listen port]\n"
    "               [--push-authority a.b.c.d:port]\n";

/// Writes the snapshot JSON to `path` (truncate + replace).
inline void dump_metrics(const metrics::Snapshot& snapshot,
                         const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics dump failed: cannot open %s\n",
                 path.c_str());
    return;
  }
  const std::string json = snapshot.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

/// Sum of all counters named `name` whose labels contain (key, value);
/// any (key, value) when key is null.  Collapses per-worker instances.
inline uint64_t counter_sum(const metrics::Snapshot& snapshot,
                            const char* name, const char* key = nullptr,
                            const char* value = nullptr) {
  uint64_t total = 0;
  for (const auto& entry : snapshot.entries) {
    if (entry.kind != metrics::InstrumentKind::kCounter) continue;
    if (entry.name != name) continue;
    if (key != nullptr) {
      bool match = false;
      for (const auto& [k, v] : entry.labels) {
        if (k == key && v == value) {
          match = true;
          break;
        }
      }
      if (!match) continue;
    }
    total += entry.counter_value;
  }
  return total;
}

/// Sum of all gauges named `name`, collapsing per-worker instances
/// (e.g. cache_store_slots_used across shard files).
inline double gauge_sum(const metrics::Snapshot& snapshot, const char* name) {
  double total = 0;
  for (const auto& entry : snapshot.entries) {
    if (entry.kind != metrics::InstrumentKind::kGauge) continue;
    if (entry.name != name) continue;
    total += entry.gauge_value;
  }
  return total;
}

/// The "listening" banner.  Supervisors (and check.sh) wait for this
/// line; both daemons print the same shape, including the I/O backend
/// actually serving (after any uring→portable fallback).
inline void print_listening(const char* daemon, bool reuseport_active,
                            const std::vector<net::Endpoint>& endpoints,
                            int workers, bool dnscup,
                            std::string_view backend) {
  const char* mode = dnscup ? "DNScup enabled" : "plain TTL";
  if (reuseport_active) {
    std::printf("%s listening on %s, %d workers (SO_REUSEPORT; %s; io=%.*s)\n",
                daemon, endpoints[0].to_string().c_str(), workers, mode,
                static_cast<int>(backend.size()), backend.data());
  } else {
    std::printf("%s: %d workers on per-worker ports (%s; io=%.*s):\n", daemon,
                workers, mode, static_cast<int>(backend.size()),
                backend.data());
    for (const auto& endpoint : endpoints) {
      std::printf("  %s\n", endpoint.to_string().c_str());
    }
  }
  // Make the banner visible even when stdout is a pipe or file (fully
  // buffered).
  std::fflush(stdout);
}

}  // namespace dnscup::tools

#!/usr/bin/env bash
# Measure serving-runtime scaling: run dnsflood against dnscupd for each
# (I/O backend, worker count) cell and collect the per-run JSON into one
# report (BENCH_runtime_throughput.json by default).  Release build,
# loopback.
#
# Backends come from BACKENDS (default "portable uring"); the uring
# column is probed first (dnsflood --probe-io-backend) and skipped with a
# note — not an error — on kernels without io_uring.  Multi-worker rows
# (>1 worker) run with --pin-cpus over the available CPUs so the scaling
# sweep measures pinned workers on both backends.
#
# PLANNER (default "off on") adds a lease-planner column: the "on" rows
# start dnscupd with --lease-storage-budget so every EXT query crosses
# the planner seam (observation enqueue + demand-table probe), which is
# exactly the serve-path overhead the planner must not add; compare the
# off/on p99 of the same (backend, workers) cell.
#
# Usage:
#   tools/bench_runtime.sh                 # workers 1 and 8, 5 s each
#   WORKERS="1 2 4 8" DURATION=10 tools/bench_runtime.sh
#   BACKENDS=portable OUT=/tmp/report.json tools/bench_runtime.sh
#   PLANNER=off tools/bench_runtime.sh     # skip the planner-on rows
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${JOBS:-$(nproc)}
workers_list=${WORKERS:-"1 8"}
backends_list=${BACKENDS:-"portable uring"}
planner_list=${PLANNER:-"off on"}
duration=${DURATION:-5}
out=${OUT:-$repo_root/BENCH_runtime_throughput.json}

build_dir="$repo_root/build"
cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$jobs" --target dnscupd dnsflood

bench_dir="$build_dir/bench"
mkdir -p "$bench_dir"

zone="$bench_dir/scaling.zone"
{
  echo '$ORIGIN example.com.'
  echo '@ IN SOA ns1.example.com. admin.example.com. 1 7200 900 604800 300'
  echo '@ 300 IN NS ns1.example.com.'
  echo 'ns1 300 IN A 10.0.0.1'
  for i in $(seq 0 999); do
    echo "w$i 300 IN A 10.1.$((i / 256)).$((i % 256))"
  done
} > "$zone"

# Pin list: CPUs 0..min(workers, ncpus)-1, comma-separated (workers
# cycle over it when there are fewer CPUs than workers).
ncpus=$(nproc)
pin_list_for() {
  local workers=$1
  local n=$(( workers < ncpus ? workers : ncpus ))
  seq -s, 0 $(( n - 1 ))
}

uring_skipped=no
runs=()
for backend in $backends_list; do
  if [ "$backend" = uring ] &&
     ! "$build_dir/tools/dnsflood" --probe-io-backend; then
    echo "== backend uring SKIP (kernel lacks io_uring support) =="
    uring_skipped=yes
    continue
  fi
  for workers in $workers_list; do
    for planner in $planner_list; do
      port=$(( 20000 + RANDOM % 10000 ))
      pin_args=()
      pinned=false
      if [ "$workers" -gt 1 ]; then
        pin_args=(--pin-cpus "$(pin_list_for "$workers")")
        pinned=true
      fi
      planner_args=()
      planner_label=off
      if [ "$planner" = on ]; then
        planner_args=(--lease-storage-budget 100000 --replan-interval 5)
        planner_label=storage
      fi
      log="$bench_dir/scaling-dnscupd-$backend-w$workers-p$planner.log"
      "$build_dir/tools/dnscupd" --port "$port" \
        --zone "example.com=$zone" --workers "$workers" \
        --io-backend "$backend" "${pin_args[@]}" "${planner_args[@]}" \
        > "$log" 2>&1 &
      daemon=$!
      sleep 0.5
      kill -0 "$daemon" || {
        echo "dnscupd failed to start:"; cat "$log"; exit 1
      }

      run_json="$bench_dir/scaling-flood-$backend-w$workers-p$planner.json"
      echo "== backend $backend, $workers worker(s)," \
           "planner $planner_label, ${duration}s =="
      "$build_dir/tools/dnsflood" --server "127.0.0.1:$port" \
        --duration "$duration" --sockets 4 --concurrency 16 \
        --names 1000 --zipf 1.0 --lease-fraction 0.2 \
        --workers-label "$workers" --planner-label "$planner_label" \
        --out "$run_json"
      kill -TERM "$daemon" 2>/dev/null || true
      wait "$daemon" 2>/dev/null || true
      # The server's backend (after any fallback) is in its banner;
      # record it with the run so a silent fallback cannot masquerade as
      # uring.  Same for the planner banner: a planner-on row whose
      # server never printed the planner banner is a misconfigured run.
      server_backend=$(grep -o 'io=[a-z]*' "$log" | head -1 | cut -d= -f2)
      # Absent on planner-off rows; || true keeps set -e out of it.
      server_planner=$(grep -o 'planner: mode=[a-z]*' "$log" | head -1 |
                       cut -d= -f2 || true)
      if [ "$planner" = on ] && [ -z "$server_planner" ]; then
        echo "planner banner missing from planner-on run:"; cat "$log"
        exit 1
      fi
      python3 - "$run_json" "$backend" "${server_backend:-unknown}" \
          "$pinned" "${server_planner:-off}" <<'EOF'
import json, sys
path, requested, served, pinned, planner = sys.argv[1:]
with open(path) as f:
    run = json.load(f)
run["server_io_backend"] = served
run["requested_io_backend"] = requested
run["pinned"] = pinned == "true"
run["server_planner"] = planner
with open(path, "w") as f:
    json.dump(run, f)
    f.write("\n")
EOF
      runs+=("$run_json")
    done
  done
done

python3 - "$out" "$uring_skipped" "${runs[@]}" <<'EOF'
import json, os, sys
out, uring_skipped, *paths = sys.argv[1:]
entries = []
for path in paths:
    with open(path) as f:
        run = json.load(f)
    entries.append({k: run[k] for k in (
        "workers", "server_io_backend", "requested_io_backend", "pinned",
        "planner", "server_planner",
        "batch_slots", "mode", "duration_s", "sockets", "concurrency",
        "names", "zipf_s", "lease_fraction", "sent", "answered",
        "achieved_qps", "p50_us", "p95_us", "p99_us", "loss_rate")})
entries.sort(key=lambda e: (e["requested_io_backend"], e["planner"],
                            e["workers"]))
cpus = len(os.sched_getaffinity(0))
report = {"bench": "runtime_throughput",
          "description": "dnsflood closed-loop vs dnscupd on loopback, "
                         "Release build, per I/O backend",
          "host_cpus": cpus,
          "runs": entries}
by_backend = {}
for e in entries:
    col = e["requested_io_backend"]
    if e["planner"] != "off":
        col += "+planner"
    by_backend.setdefault(col, []).append(e)
scaling = {}
for backend, rows in by_backend.items():
    base = rows[0]["achieved_qps"]
    peak = max(r["achieved_qps"] for r in rows)
    scaling[backend] = round(peak / base, 2) if base else None
report["scaling_vs_first"] = scaling
# Planner serve-path overhead: p99 of each planner-on row against its
# planner-off twin (same backend and worker count).
overhead = {}
for e in entries:
    if e["planner"] == "off":
        continue
    twin = next((o for o in entries if o["planner"] == "off" and
                 o["requested_io_backend"] == e["requested_io_backend"] and
                 o["workers"] == e["workers"]), None)
    if twin and twin["p99_us"]:
        key = f"{e['requested_io_backend']}-w{e['workers']}"
        overhead[key] = {
            "p99_off_us": twin["p99_us"], "p99_on_us": e["p99_us"],
            "qps_off": twin["achieved_qps"], "qps_on": e["achieved_qps"],
            "p99_ratio": round(e["p99_us"] / twin["p99_us"], 3)}
if overhead:
    report["planner_overhead"] = overhead
    if cpus < 2:
        # The planner thread has no core of its own here, so the "on"
        # rows time-slice it against the saturated worker.
        report["planner_note"] = (
            "single-CPU host: planner-on p99 includes the planner "
            "thread time-slicing against the saturated worker; on a "
            "multi-core host the planner runs on its own core and the "
            "serve path only pays the observe-enqueue + table-probe "
            "cost")
if uring_skipped == "yes":
    report["uring"] = ("skipped: kernel lacks the io_uring features the "
                      "backend needs")
top = max(e["workers"] for e in entries)
if cpus < top:
    # Worker threads beyond the core count time-slice; true scaling
    # needs at least as many cores as workers.
    report["note"] = (f"host exposes {cpus} CPU(s) for {top} workers; "
                      "runs are CPU-saturated, scaling_vs_first reflects "
                      "time-slicing, not parallel speedup; pinned rows "
                      "pin all workers to the same CPU set")
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
for e in entries:
    pin = " pinned" if e["pinned"] else ""
    plan = "" if e["planner"] == "off" else f" planner={e['planner']}"
    print(f"{e['server_io_backend']:>8} workers={e['workers']:>2}{pin}{plan}"
          f"  {e['achieved_qps']:>10.0f} q/s  "
          f"p50 {e['p50_us']} us  p99 {e['p99_us']} us  "
          f"loss {100 * e['loss_rate']:.3f}%")
print(f"scaling: {scaling} ({cpus} host CPU(s))  -> {out}")
for key, row in report.get("planner_overhead", {}).items():
    print(f"planner overhead {key}: p99 {row['p99_off_us']} -> "
          f"{row['p99_on_us']} us (x{row['p99_ratio']})")
if "note" in report:
    print(f"note: {report['note']}")
EOF

#!/usr/bin/env bash
# Measure serving-runtime scaling: run dnsflood against dnscupd at each
# worker count and collect the per-run JSON into one report
# (BENCH_runtime_throughput.json by default).  Release build, loopback.
#
# Usage:
#   tools/bench_runtime.sh                 # workers 1 and 4, 5 s each
#   WORKERS="1 2 4 8" DURATION=10 tools/bench_runtime.sh
#   OUT=/tmp/report.json tools/bench_runtime.sh
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${JOBS:-$(nproc)}
workers_list=${WORKERS:-"1 4"}
duration=${DURATION:-5}
out=${OUT:-$repo_root/BENCH_runtime_throughput.json}

build_dir="$repo_root/build"
cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$jobs" --target dnscupd dnsflood

bench_dir="$build_dir/bench"
mkdir -p "$bench_dir"

zone="$bench_dir/scaling.zone"
{
  echo '$ORIGIN example.com.'
  echo '@ IN SOA ns1.example.com. admin.example.com. 1 7200 900 604800 300'
  echo '@ 300 IN NS ns1.example.com.'
  echo 'ns1 300 IN A 10.0.0.1'
  for i in $(seq 0 999); do
    echo "w$i 300 IN A 10.1.$((i / 256)).$((i % 256))"
  done
} > "$zone"

runs=()
for workers in $workers_list; do
  port=$(( 20000 + RANDOM % 10000 ))
  log="$bench_dir/scaling-dnscupd-w$workers.log"
  "$build_dir/tools/dnscupd" --port "$port" \
    --zone "example.com=$zone" --workers "$workers" > "$log" 2>&1 &
  daemon=$!
  sleep 0.5
  kill -0 "$daemon" || { echo "dnscupd failed to start:"; cat "$log"; exit 1; }

  run_json="$bench_dir/scaling-flood-w$workers.json"
  echo "== $workers worker(s), ${duration}s =="
  "$build_dir/tools/dnsflood" --server "127.0.0.1:$port" \
    --duration "$duration" --sockets 4 --concurrency 16 \
    --names 1000 --zipf 1.0 --lease-fraction 0.2 \
    --workers-label "$workers" --out "$run_json"
  kill -TERM "$daemon" 2>/dev/null || true
  wait "$daemon" 2>/dev/null || true
  runs+=("$run_json")
done

python3 - "$out" "${runs[@]}" <<'EOF'
import json, os, sys
out, *paths = sys.argv[1:]
entries = []
for path in paths:
    with open(path) as f:
        run = json.load(f)
    entries.append({k: run[k] for k in (
        "workers", "mode", "duration_s", "sockets", "concurrency",
        "names", "zipf_s", "lease_fraction", "sent", "answered",
        "achieved_qps", "p50_us", "p95_us", "p99_us", "loss_rate")})
entries.sort(key=lambda e: e["workers"])
cpus = len(os.sched_getaffinity(0))
report = {"bench": "runtime_throughput",
          "description": "dnsflood closed-loop vs dnscupd on loopback, "
                         "Release build",
          "host_cpus": cpus,
          "runs": entries}
base = entries[0]["achieved_qps"]
peak = max(e["achieved_qps"] for e in entries)
report["scaling_vs_first"] = round(peak / base, 2) if base else None
top = max(e["workers"] for e in entries)
if cpus < top:
    # Worker threads beyond the core count time-slice; true scaling
    # needs at least as many cores as workers.
    report["note"] = (f"host exposes {cpus} CPU(s) for {top} workers; "
                      "runs are CPU-saturated, scaling_vs_first reflects "
                      "time-slicing, not parallel speedup")
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
for e in entries:
    print(f"workers={e['workers']:>2}  {e['achieved_qps']:>10.0f} q/s  "
          f"p50 {e['p50_us']} us  p99 {e['p99_us']} us  "
          f"loss {100 * e['loss_rate']:.3f}%")
print(f"scaling: {report['scaling_vs_first']}x "
      f"({cpus} host CPU(s))  -> {out}")
if "note" in report:
    print(f"note: {report['note']}")
EOF

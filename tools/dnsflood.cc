// dnsflood — a UDP load generator for dnscupd (open- and closed-loop).
//
// Drives one or more serving endpoints with a Zipf-popular query stream
// and reports achieved QPS, latency percentiles and loss:
//
//   * N sender sockets (--sockets), each with --concurrency outstanding
//     query slots.  In closed-loop mode (the default, --qps 0) a slot
//     fires its next query from inside the receive callback the moment
//     its answer lands — the client-side twin of the server's
//     lock-free-send hot path.  With --qps the slots instead pace their
//     sends so the aggregate offered load matches the target rate.
//   * Names follow a Zipf(s) popularity law over --names synthetic
//     labels (w0.<origin> most popular), the standard DNS workload
//     shape; --lease-fraction of queries carry the DNScup EXT extension
//     and request a lease.
//   * A slot whose answer misses --timeout is counted lost and re-armed,
//     so a dead or drowning server shows up as loss, not as a stall.
//
// Multiple --server endpoints round-robin across sockets, which is how
// the per-worker-port fallback of the sharded runtime is loaded.
//
// Usage:
//   dnsflood --server 127.0.0.1:5300 [--server ...] --duration 5
//            [--sockets 4] [--concurrency 16] [--qps 0] [--names 1000]
//            [--zipf 1.0] [--lease-fraction 0.2] [--origin example.com]
//            [--timeout-ms 200] [--seed 1] [--workers-label N]
//            [--io-backend portable|uring] [--out bench.json]
//
// --out writes one JSON object (achieved_qps, p50/p95/p99_us, loss_rate,
// io_backend, batch_slots, ...); --workers-label tags it with the
// server's worker count so a scaling sweep can concatenate records.
//
// `dnsflood --probe-io-backend` binds (and immediately tears down) one
// io_uring-backed socket and exits 0 when the kernel supports everything
// the uring backend needs, 3 when it does not — scripts (check.sh
// --io-matrix) use it to decide SKIP vs run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dns/message.h"
#include "net/io_backend.h"
#include "util/rng.h"

using namespace dnscup;

namespace {

struct Options {
  std::vector<net::Endpoint> servers;
  double duration_s = 5.0;
  int sockets = 4;
  int concurrency = 16;
  double qps = 0.0;  ///< 0 = closed loop
  std::size_t names = 1000;
  double zipf_s = 1.0;
  double lease_fraction = 0.2;
  std::string origin = "example.com";
  int timeout_ms = 200;
  uint64_t seed = 1;
  int workers_label = 0;
  /// Tag recorded verbatim in the JSON "planner" field — what planner
  /// configuration the server under test ran ("off", "storage", ...).
  std::string planner_label = "off";
  net::IoBackendKind io_backend = net::IoBackendKind::kDefault;
  bool probe = false;  ///< --probe-io-backend: report uring support, exit
  std::string out;
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--server") {
      if ((v = next()) == nullptr) return false;
      std::string ep_error;
      auto ep = net::parse_endpoint(v, &ep_error);
      if (!ep.has_value()) {
        std::fprintf(stderr, "--server: %s\n", ep_error.c_str());
        return false;
      }
      opts.servers.push_back(*ep);
    } else if (arg == "--duration") {
      if ((v = next()) == nullptr) return false;
      opts.duration_s = std::atof(v);
    } else if (arg == "--sockets") {
      if ((v = next()) == nullptr) return false;
      opts.sockets = std::atoi(v);
    } else if (arg == "--concurrency") {
      if ((v = next()) == nullptr) return false;
      opts.concurrency = std::atoi(v);
    } else if (arg == "--qps") {
      if ((v = next()) == nullptr) return false;
      opts.qps = std::atof(v);
    } else if (arg == "--names") {
      if ((v = next()) == nullptr) return false;
      opts.names = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--zipf") {
      if ((v = next()) == nullptr) return false;
      opts.zipf_s = std::atof(v);
    } else if (arg == "--lease-fraction") {
      if ((v = next()) == nullptr) return false;
      opts.lease_fraction = std::atof(v);
    } else if (arg == "--origin") {
      if ((v = next()) == nullptr) return false;
      opts.origin = v;
    } else if (arg == "--timeout-ms") {
      if ((v = next()) == nullptr) return false;
      opts.timeout_ms = std::atoi(v);
    } else if (arg == "--seed") {
      if ((v = next()) == nullptr) return false;
      opts.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--workers-label") {
      if ((v = next()) == nullptr) return false;
      opts.workers_label = std::atoi(v);
    } else if (arg == "--planner-label") {
      if ((v = next()) == nullptr) return false;
      opts.planner_label = v;
    } else if (arg == "--io-backend") {
      if ((v = next()) == nullptr) return false;
      const auto kind = net::parse_io_backend_kind(v);
      if (!kind.has_value()) {
        std::fprintf(stderr, "bad --io-backend %s (portable|uring|default)\n",
                     v);
        return false;
      }
      opts.io_backend = *kind;
    } else if (arg == "--probe-io-backend") {
      opts.probe = true;
    } else if (arg == "--out") {
      if ((v = next()) == nullptr) return false;
      opts.out = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (opts.probe) return true;  // no servers needed for the probe
  return !opts.servers.empty() && opts.duration_s > 0 && opts.sockets > 0 &&
         opts.concurrency > 0 && opts.names > 0;
}

int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Pre-encoded query wire images, two per name (plain / EXT lease
/// request).  Sends only patch the 16-bit id in place — no per-send
/// message building on the load path.
struct QueryTemplates {
  std::vector<std::vector<uint8_t>> plain;
  std::vector<std::vector<uint8_t>> ext;
};

QueryTemplates build_templates(const Options& opts) {
  QueryTemplates templates;
  templates.plain.reserve(opts.names);
  templates.ext.reserve(opts.names);
  for (std::size_t i = 0; i < opts.names; ++i) {
    auto name =
        dns::Name::parse("w" + std::to_string(i) + "." + opts.origin);
    if (!name.ok()) std::abort();
    for (const bool ext : {false, true}) {
      dns::Message query;
      query.flags.opcode = dns::Opcode::kQuery;
      query.flags.rd = true;
      query.flags.ext = ext;
      // RRC: report a nominal 10 q/s so the grant policy sees a popular
      // record worth leasing.
      query.questions.push_back(dns::Question{
          name.value(), dns::RRType::kA, dns::RRClass::kIN,
          ext ? dns::rrc_from_rate(10.0) : static_cast<uint16_t>(0)});
      (ext ? templates.ext : templates.plain).push_back(query.encode());
    }
  }
  return templates;
}

/// One sender socket and its in-flight query slots.  The slot array is
/// fixed; `mutex` guards slot state, the RNG and the latency log (client
/// bookkeeping only — the wire send itself is lock-free).
struct Agent {
  struct Slot {
    bool outstanding = false;
    uint16_t id = 0;
    int64_t sent_at_us = 0;
    int64_t due_us = 0;  ///< open loop: next allowed send
  };

  std::unique_ptr<net::IoBackend> io;
  net::Endpoint server;
  std::unique_ptr<util::Rng> rng;
  std::mutex mutex;
  std::vector<Slot> slots;
  std::vector<uint32_t> latencies_us;
  uint16_t next_seq = 1;
  uint64_t sent = 0;
  uint64_t lost = 0;
  uint64_t mismatched = 0;
  int64_t send_interval_us = 0;  ///< 0 = closed loop
};

struct Load {
  Options opts;
  QueryTemplates templates;
  util::ZipfDistribution zipf;
  std::atomic<bool> running{true};
  std::atomic<uint64_t> ext_sent{0};
  std::vector<std::unique_ptr<Agent>> agents;
};

/// Fires slot `s`; caller holds agent.mutex.
void send_query(Load& load, Agent& agent, std::size_t s, int64_t now) {
  const std::size_t rank = load.zipf.sample(*agent.rng);
  const bool ext = agent.rng->chance(load.opts.lease_fraction);
  const auto& image =
      ext ? load.templates.ext[rank] : load.templates.plain[rank];
  // id encodes the slot so the response handler can find it without a
  // lookup table: id = seq * concurrency + slot (mod 2^16).
  const uint16_t id = static_cast<uint16_t>(
      agent.next_seq++ * static_cast<unsigned>(agent.slots.size()) + s);
  std::vector<uint8_t> wire = image;
  wire[0] = static_cast<uint8_t>(id >> 8);
  wire[1] = static_cast<uint8_t>(id & 0xFF);
  Agent::Slot& slot = agent.slots[s];
  slot.outstanding = true;
  slot.id = id;
  slot.sent_at_us = now;
  ++agent.sent;
  if (ext) load.ext_sent.fetch_add(1, std::memory_order_relaxed);
  agent.io->send(agent.server, wire);
}

void on_response(Load& load, Agent& agent, std::span<const uint8_t> data) {
  if (data.size() < 3 || (data[2] & 0x80) == 0) return;  // not a response
  const uint16_t id = static_cast<uint16_t>((data[0] << 8) | data[1]);
  const int64_t now = now_us();
  std::lock_guard lock(agent.mutex);
  const std::size_t s = id % agent.slots.size();
  Agent::Slot& slot = agent.slots[s];
  if (!slot.outstanding || slot.id != id) {
    ++agent.mismatched;  // late answer to a slot already re-armed
    return;
  }
  slot.outstanding = false;
  agent.latencies_us.push_back(
      static_cast<uint32_t>(std::max<int64_t>(0, now - slot.sent_at_us)));
  if (!load.running.load(std::memory_order_relaxed)) return;
  if (agent.send_interval_us == 0) {
    // Closed loop: next query leaves from inside the receive callback.
    send_query(load, agent, s, now);
  } else {
    slot.due_us = std::max(now, slot.due_us + agent.send_interval_us);
  }
}

/// Open-loop pacing and timeout sweep for every agent (one thread).
void pace(Load& load) {
  const int64_t timeout_us =
      static_cast<int64_t>(load.opts.timeout_ms) * 1000;
  while (load.running.load(std::memory_order_relaxed)) {
    const int64_t now = now_us();
    for (auto& agent : load.agents) {
      std::lock_guard lock(agent->mutex);
      for (std::size_t s = 0; s < agent->slots.size(); ++s) {
        Agent::Slot& slot = agent->slots[s];
        if (slot.outstanding) {
          if (now - slot.sent_at_us >= timeout_us) {
            ++agent->lost;
            send_query(load, *agent, s, now);  // re-arm after a loss
          }
        } else if (agent->send_interval_us > 0 && now >= slot.due_us) {
          slot.due_us = std::max(now, slot.due_us) + agent->send_interval_us;
          send_query(load, *agent, s, now);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

uint32_t percentile(const std::vector<uint32_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    std::fprintf(
        stderr,
        "usage: dnsflood --server ip:port [--server ...] [--duration s]\n"
        "                [--sockets N] [--concurrency N] [--qps N]\n"
        "                [--names N] [--zipf s] [--lease-fraction f]\n"
        "                [--origin name] [--timeout-ms N] [--seed N]\n"
        "                [--workers-label N] [--planner-label tag]\n"
        "                [--io-backend portable|uring]\n"
        "                [--probe-io-backend] [--out file.json]\n");
    return 2;
  }
  if (opts.probe) {
    if (!net::uring_compiled()) {
      std::printf("io_uring: not compiled in\n");
      return 3;
    }
    if (auto status = net::uring_runtime_probe(); !status.ok()) {
      std::printf("io_uring: unavailable (%s)\n",
                  status.error().to_string().c_str());
      return 3;
    }
    std::printf("io_uring: available\n");
    return 0;
  }

  Load load{opts, build_templates(opts),
            util::ZipfDistribution(opts.names, opts.zipf_s)};
  util::Rng seeder(opts.seed);
  const int64_t per_slot_interval_us =
      opts.qps > 0
          ? static_cast<int64_t>(1e6 * opts.sockets * opts.concurrency /
                                 opts.qps)
          : 0;
  const net::IoBackendKind kind =
      net::resolve_io_backend_kind(opts.io_backend);
  for (int i = 0; i < opts.sockets; ++i) {
    auto agent = std::make_unique<Agent>();
    net::IoBackend::Options socket_options;
    socket_options.port = 0;
    socket_options.reuseport = false;
    auto bound = net::bind_io_backend(kind, socket_options);
    if (!bound.ok()) {
      std::fprintf(stderr, "socket: %s\n", bound.error().to_string().c_str());
      return 1;
    }
    agent->io = std::move(bound).value();
    agent->server = opts.servers[i % opts.servers.size()];
    agent->rng = std::make_unique<util::Rng>(seeder.fork());
    agent->slots.resize(opts.concurrency);
    agent->send_interval_us = std::max<int64_t>(1, per_slot_interval_us);
    if (opts.qps <= 0) agent->send_interval_us = 0;
    load.agents.push_back(std::move(agent));
  }
  for (auto& agent : load.agents) {
    Agent* a = agent.get();
    a->io->set_receive_handler(
        [&load, a](const net::Endpoint&, std::span<const uint8_t> data) {
          on_response(load, *a, data);
        });
  }

  // Kick every slot (closed loop: the response stream keeps them firing;
  // open loop: the pacer takes over from `due_us`).
  const int64_t start = now_us();
  for (auto& agent : load.agents) {
    std::lock_guard lock(agent->mutex);
    for (std::size_t s = 0; s < agent->slots.size(); ++s) {
      if (agent->send_interval_us > 0) {
        // Stagger open-loop starts so sends spread over one interval.
        agent->slots[s].due_us =
            start + static_cast<int64_t>(s) * agent->send_interval_us /
                        static_cast<int64_t>(agent->slots.size());
      } else {
        send_query(load, *agent, s, start);
      }
    }
  }
  std::thread pacer([&load] { pace(load); });

  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(opts.duration_s * 1e6)));
  load.running.store(false);
  pacer.join();
  for (auto& agent : load.agents) agent->io->stop_receiving();
  const double elapsed_s = (now_us() - start) / 1e6;

  uint64_t sent = 0, lost = 0, mismatched = 0;
  std::vector<uint32_t> latencies;
  for (auto& agent : load.agents) {
    std::lock_guard lock(agent->mutex);
    sent += agent->sent;
    lost += agent->lost;
    mismatched += agent->mismatched;
    latencies.insert(latencies.end(), agent->latencies_us.begin(),
                     agent->latencies_us.end());
  }
  // Queries still in flight at the deadline are neither answered nor
  // timed out; exclude them from the loss accounting.
  const uint64_t answered = latencies.size();
  const uint64_t accounted = answered + lost;
  const double loss_rate =
      accounted > 0 ? static_cast<double>(lost) / accounted : 0.0;
  std::sort(latencies.begin(), latencies.end());
  const double achieved_qps = answered / elapsed_s;
  const uint32_t p50 = percentile(latencies, 0.50);
  const uint32_t p95 = percentile(latencies, 0.95);
  const uint32_t p99 = percentile(latencies, 0.99);

  // All agents bind through the same resolved kind; any fallback applies
  // to every socket alike.
  const std::string_view backend = load.agents.front()->io->backend_name();
  const std::size_t batch_slots = load.agents.front()->io->batch_slots();

  std::printf(
      "dnsflood: %.1fs %s (io=%.*s), %llu sent, %llu answered (%.0f q/s), "
      "%llu lost (%.3f%%), %llu stray\n"
      "latency p50 %u us, p95 %u us, p99 %u us\n",
      elapsed_s, opts.qps > 0 ? "open-loop" : "closed-loop",
      static_cast<int>(backend.size()), backend.data(),
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(answered), achieved_qps,
      static_cast<unsigned long long>(lost), 100.0 * loss_rate,
      static_cast<unsigned long long>(mismatched), p50, p95, p99);

  if (!opts.out.empty()) {
    std::FILE* f = std::fopen(opts.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opts.out.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"workers\": %d, \"planner\": \"%s\", \"mode\": \"%s\", "
        "\"io_backend\": \"%.*s\", "
        "\"batch_slots\": %zu, \"target_qps\": %.0f, "
        "\"duration_s\": %.3f, \"sockets\": %d, \"concurrency\": %d, "
        "\"names\": %zu, \"zipf_s\": %.3f, \"lease_fraction\": %.3f, "
        "\"sent\": %llu, \"answered\": %llu, \"lost\": %llu, "
        "\"ext_sent\": %llu, \"achieved_qps\": %.1f, \"p50_us\": %u, "
        "\"p95_us\": %u, \"p99_us\": %u, \"loss_rate\": %.6f}\n",
        opts.workers_label, opts.planner_label.c_str(),
        opts.qps > 0 ? "open" : "closed",
        static_cast<int>(backend.size()), backend.data(), batch_slots,
        opts.qps,
        elapsed_s, opts.sockets, opts.concurrency, opts.names, opts.zipf_s,
        opts.lease_fraction, static_cast<unsigned long long>(sent),
        static_cast<unsigned long long>(answered),
        static_cast<unsigned long long>(lost),
        static_cast<unsigned long long>(load.ext_sent.load()), achieved_qps,
        p50, p95, p99, loss_rate);
    std::fclose(f);
  }
  return 0;
}

# Empty compiler generated dependencies file for rates_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rates_test.dir/rates_test.cc.o"
  "CMakeFiles/rates_test.dir/rates_test.cc.o.d"
  "rates_test"
  "rates_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

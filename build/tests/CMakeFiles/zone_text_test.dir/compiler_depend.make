# Empty compiler generated dependencies file for zone_text_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/zone_text_test.dir/zone_text_test.cc.o"
  "CMakeFiles/zone_text_test.dir/zone_text_test.cc.o.d"
  "zone_text_test"
  "zone_text_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

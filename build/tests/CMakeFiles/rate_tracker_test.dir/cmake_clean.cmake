file(REMOVE_RECURSE
  "CMakeFiles/rate_tracker_test.dir/rate_tracker_test.cc.o"
  "CMakeFiles/rate_tracker_test.dir/rate_tracker_test.cc.o.d"
  "rate_tracker_test"
  "rate_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

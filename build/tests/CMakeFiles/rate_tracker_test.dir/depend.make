# Empty dependencies file for rate_tracker_test.
# This may be replaced when dependencies are built.

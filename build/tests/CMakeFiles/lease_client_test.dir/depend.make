# Empty dependencies file for lease_client_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lease_client_test.dir/lease_client_test.cc.o"
  "CMakeFiles/lease_client_test.dir/lease_client_test.cc.o.d"
  "lease_client_test"
  "lease_client_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

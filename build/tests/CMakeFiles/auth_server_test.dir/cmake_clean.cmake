file(REMOVE_RECURSE
  "CMakeFiles/auth_server_test.dir/auth_server_test.cc.o"
  "CMakeFiles/auth_server_test.dir/auth_server_test.cc.o.d"
  "auth_server_test"
  "auth_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for auth_server_test.
# This may be replaced when dependencies are built.

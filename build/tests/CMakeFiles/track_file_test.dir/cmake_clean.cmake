file(REMOVE_RECURSE
  "CMakeFiles/track_file_test.dir/track_file_test.cc.o"
  "CMakeFiles/track_file_test.dir/track_file_test.cc.o.d"
  "track_file_test"
  "track_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for track_file_test.
# This may be replaced when dependencies are built.

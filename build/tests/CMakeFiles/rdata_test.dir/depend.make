# Empty dependencies file for rdata_test.
# This may be replaced when dependencies are built.

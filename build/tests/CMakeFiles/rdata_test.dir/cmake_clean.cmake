file(REMOVE_RECURSE
  "CMakeFiles/rdata_test.dir/rdata_test.cc.o"
  "CMakeFiles/rdata_test.dir/rdata_test.cc.o.d"
  "rdata_test"
  "rdata_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

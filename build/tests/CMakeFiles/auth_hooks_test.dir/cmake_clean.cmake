file(REMOVE_RECURSE
  "CMakeFiles/auth_hooks_test.dir/auth_hooks_test.cc.o"
  "CMakeFiles/auth_hooks_test.dir/auth_hooks_test.cc.o.d"
  "auth_hooks_test"
  "auth_hooks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_hooks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for auth_hooks_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/auth_hooks_test.cc" "tests/CMakeFiles/auth_hooks_test.dir/auth_hooks_test.cc.o" "gcc" "tests/CMakeFiles/auth_hooks_test.dir/auth_hooks_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dnscup_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dnscup_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dnscup_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/dnscup_server.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dnscup_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnscup_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnscup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/lease_math_test.dir/lease_math_test.cc.o"
  "CMakeFiles/lease_math_test.dir/lease_math_test.cc.o.d"
  "lease_math_test"
  "lease_math_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

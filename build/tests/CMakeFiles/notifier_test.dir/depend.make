# Empty dependencies file for notifier_test.
# This may be replaced when dependencies are built.

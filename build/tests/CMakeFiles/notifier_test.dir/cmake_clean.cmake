file(REMOVE_RECURSE
  "CMakeFiles/notifier_test.dir/notifier_test.cc.o"
  "CMakeFiles/notifier_test.dir/notifier_test.cc.o.d"
  "notifier_test"
  "notifier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dynamic_lease_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dynamic_lease_test.dir/dynamic_lease_test.cc.o"
  "CMakeFiles/dynamic_lease_test.dir/dynamic_lease_test.cc.o.d"
  "dynamic_lease_test"
  "dynamic_lease_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_lease_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

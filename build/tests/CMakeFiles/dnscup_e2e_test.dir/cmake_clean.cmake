file(REMOVE_RECURSE
  "CMakeFiles/dnscup_e2e_test.dir/dnscup_e2e_test.cc.o"
  "CMakeFiles/dnscup_e2e_test.dir/dnscup_e2e_test.cc.o.d"
  "dnscup_e2e_test"
  "dnscup_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnscup_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/name_test.dir/name_test.cc.o"
  "CMakeFiles/name_test.dir/name_test.cc.o.d"
  "name_test"
  "name_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

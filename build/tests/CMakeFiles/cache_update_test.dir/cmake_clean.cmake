file(REMOVE_RECURSE
  "CMakeFiles/cache_update_test.dir/cache_update_test.cc.o"
  "CMakeFiles/cache_update_test.dir/cache_update_test.cc.o.d"
  "cache_update_test"
  "cache_update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/consistency_sim_test.dir/consistency_sim_test.cc.o"
  "CMakeFiles/consistency_sim_test.dir/consistency_sim_test.cc.o.d"
  "consistency_sim_test"
  "consistency_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for consistency_sim_test.
# This may be replaced when dependencies are built.

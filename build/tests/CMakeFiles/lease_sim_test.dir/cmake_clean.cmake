file(REMOVE_RECURSE
  "CMakeFiles/lease_sim_test.dir/lease_sim_test.cc.o"
  "CMakeFiles/lease_sim_test.dir/lease_sim_test.cc.o.d"
  "lease_sim_test"
  "lease_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

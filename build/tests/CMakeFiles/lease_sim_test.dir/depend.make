# Empty dependencies file for lease_sim_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ixfr_test.dir/ixfr_test.cc.o"
  "CMakeFiles/ixfr_test.dir/ixfr_test.cc.o.d"
  "ixfr_test"
  "ixfr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixfr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ixfr_test.
# This may be replaced when dependencies are built.

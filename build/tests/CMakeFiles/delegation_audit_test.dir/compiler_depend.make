# Empty compiler generated dependencies file for delegation_audit_test.
# This may be replaced when dependencies are built.

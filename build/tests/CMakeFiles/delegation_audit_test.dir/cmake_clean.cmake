file(REMOVE_RECURSE
  "CMakeFiles/delegation_audit_test.dir/delegation_audit_test.cc.o"
  "CMakeFiles/delegation_audit_test.dir/delegation_audit_test.cc.o.d"
  "delegation_audit_test"
  "delegation_audit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delegation_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dnsq.dir/dnsq.cc.o"
  "CMakeFiles/dnsq.dir/dnsq.cc.o.d"
  "dnsq"
  "dnsq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

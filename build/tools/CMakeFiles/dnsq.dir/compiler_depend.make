# Empty compiler generated dependencies file for dnsq.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/leaseplan.dir/leaseplan.cc.o"
  "CMakeFiles/leaseplan.dir/leaseplan.cc.o.d"
  "leaseplan"
  "leaseplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaseplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

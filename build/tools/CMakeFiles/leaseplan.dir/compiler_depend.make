# Empty compiler generated dependencies file for leaseplan.
# This may be replaced when dependencies are built.

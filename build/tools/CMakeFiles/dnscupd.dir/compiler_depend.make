# Empty compiler generated dependencies file for dnscupd.
# This may be replaced when dependencies are built.

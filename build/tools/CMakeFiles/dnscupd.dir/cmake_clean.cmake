file(REMOVE_RECURSE
  "CMakeFiles/dnscupd.dir/dnscupd.cc.o"
  "CMakeFiles/dnscupd.dir/dnscupd.cc.o.d"
  "dnscupd"
  "dnscupd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnscupd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dnscup_server.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dnscup_server.dir/authoritative.cc.o"
  "CMakeFiles/dnscup_server.dir/authoritative.cc.o.d"
  "CMakeFiles/dnscup_server.dir/cache.cc.o"
  "CMakeFiles/dnscup_server.dir/cache.cc.o.d"
  "CMakeFiles/dnscup_server.dir/resolver.cc.o"
  "CMakeFiles/dnscup_server.dir/resolver.cc.o.d"
  "CMakeFiles/dnscup_server.dir/stub.cc.o"
  "CMakeFiles/dnscup_server.dir/stub.cc.o.d"
  "CMakeFiles/dnscup_server.dir/update.cc.o"
  "CMakeFiles/dnscup_server.dir/update.cc.o.d"
  "libdnscup_server.a"
  "libdnscup_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnscup_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdnscup_server.a"
)

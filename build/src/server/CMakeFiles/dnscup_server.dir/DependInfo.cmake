
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/authoritative.cc" "src/server/CMakeFiles/dnscup_server.dir/authoritative.cc.o" "gcc" "src/server/CMakeFiles/dnscup_server.dir/authoritative.cc.o.d"
  "/root/repo/src/server/cache.cc" "src/server/CMakeFiles/dnscup_server.dir/cache.cc.o" "gcc" "src/server/CMakeFiles/dnscup_server.dir/cache.cc.o.d"
  "/root/repo/src/server/resolver.cc" "src/server/CMakeFiles/dnscup_server.dir/resolver.cc.o" "gcc" "src/server/CMakeFiles/dnscup_server.dir/resolver.cc.o.d"
  "/root/repo/src/server/stub.cc" "src/server/CMakeFiles/dnscup_server.dir/stub.cc.o" "gcc" "src/server/CMakeFiles/dnscup_server.dir/stub.cc.o.d"
  "/root/repo/src/server/update.cc" "src/server/CMakeFiles/dnscup_server.dir/update.cc.o" "gcc" "src/server/CMakeFiles/dnscup_server.dir/update.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/dnscup_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dnscup_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnscup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for dnscup_util.
# This may be replaced when dependencies are built.

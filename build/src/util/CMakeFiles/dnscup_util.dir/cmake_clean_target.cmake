file(REMOVE_RECURSE
  "libdnscup_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dnscup_util.dir/logging.cc.o"
  "CMakeFiles/dnscup_util.dir/logging.cc.o.d"
  "CMakeFiles/dnscup_util.dir/rng.cc.o"
  "CMakeFiles/dnscup_util.dir/rng.cc.o.d"
  "CMakeFiles/dnscup_util.dir/stats.cc.o"
  "CMakeFiles/dnscup_util.dir/stats.cc.o.d"
  "libdnscup_util.a"
  "libdnscup_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnscup_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

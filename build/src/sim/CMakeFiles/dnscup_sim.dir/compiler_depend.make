# Empty compiler generated dependencies file for dnscup_sim.
# This may be replaced when dependencies are built.

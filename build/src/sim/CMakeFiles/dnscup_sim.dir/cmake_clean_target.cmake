file(REMOVE_RECURSE
  "libdnscup_sim.a"
)

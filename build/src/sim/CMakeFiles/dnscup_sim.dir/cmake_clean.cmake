file(REMOVE_RECURSE
  "CMakeFiles/dnscup_sim.dir/consistency_sim.cc.o"
  "CMakeFiles/dnscup_sim.dir/consistency_sim.cc.o.d"
  "CMakeFiles/dnscup_sim.dir/lease_sim.cc.o"
  "CMakeFiles/dnscup_sim.dir/lease_sim.cc.o.d"
  "CMakeFiles/dnscup_sim.dir/rates.cc.o"
  "CMakeFiles/dnscup_sim.dir/rates.cc.o.d"
  "CMakeFiles/dnscup_sim.dir/testbed.cc.o"
  "CMakeFiles/dnscup_sim.dir/testbed.cc.o.d"
  "CMakeFiles/dnscup_sim.dir/trace.cc.o"
  "CMakeFiles/dnscup_sim.dir/trace.cc.o.d"
  "CMakeFiles/dnscup_sim.dir/trace_gen.cc.o"
  "CMakeFiles/dnscup_sim.dir/trace_gen.cc.o.d"
  "libdnscup_sim.a"
  "libdnscup_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnscup_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

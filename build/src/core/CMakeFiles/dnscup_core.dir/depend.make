# Empty dependencies file for dnscup_core.
# This may be replaced when dependencies are built.

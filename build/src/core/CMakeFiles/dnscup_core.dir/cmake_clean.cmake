file(REMOVE_RECURSE
  "CMakeFiles/dnscup_core.dir/auth.cc.o"
  "CMakeFiles/dnscup_core.dir/auth.cc.o.d"
  "CMakeFiles/dnscup_core.dir/cache_update.cc.o"
  "CMakeFiles/dnscup_core.dir/cache_update.cc.o.d"
  "CMakeFiles/dnscup_core.dir/delegation_audit.cc.o"
  "CMakeFiles/dnscup_core.dir/delegation_audit.cc.o.d"
  "CMakeFiles/dnscup_core.dir/dnscup_authority.cc.o"
  "CMakeFiles/dnscup_core.dir/dnscup_authority.cc.o.d"
  "CMakeFiles/dnscup_core.dir/dynamic_lease.cc.o"
  "CMakeFiles/dnscup_core.dir/dynamic_lease.cc.o.d"
  "CMakeFiles/dnscup_core.dir/lease_client.cc.o"
  "CMakeFiles/dnscup_core.dir/lease_client.cc.o.d"
  "CMakeFiles/dnscup_core.dir/listener.cc.o"
  "CMakeFiles/dnscup_core.dir/listener.cc.o.d"
  "CMakeFiles/dnscup_core.dir/notifier.cc.o"
  "CMakeFiles/dnscup_core.dir/notifier.cc.o.d"
  "CMakeFiles/dnscup_core.dir/policy.cc.o"
  "CMakeFiles/dnscup_core.dir/policy.cc.o.d"
  "CMakeFiles/dnscup_core.dir/rate_tracker.cc.o"
  "CMakeFiles/dnscup_core.dir/rate_tracker.cc.o.d"
  "CMakeFiles/dnscup_core.dir/track_file.cc.o"
  "CMakeFiles/dnscup_core.dir/track_file.cc.o.d"
  "libdnscup_core.a"
  "libdnscup_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnscup_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdnscup_core.a"
)

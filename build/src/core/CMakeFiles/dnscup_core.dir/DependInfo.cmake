
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/auth.cc" "src/core/CMakeFiles/dnscup_core.dir/auth.cc.o" "gcc" "src/core/CMakeFiles/dnscup_core.dir/auth.cc.o.d"
  "/root/repo/src/core/cache_update.cc" "src/core/CMakeFiles/dnscup_core.dir/cache_update.cc.o" "gcc" "src/core/CMakeFiles/dnscup_core.dir/cache_update.cc.o.d"
  "/root/repo/src/core/delegation_audit.cc" "src/core/CMakeFiles/dnscup_core.dir/delegation_audit.cc.o" "gcc" "src/core/CMakeFiles/dnscup_core.dir/delegation_audit.cc.o.d"
  "/root/repo/src/core/dnscup_authority.cc" "src/core/CMakeFiles/dnscup_core.dir/dnscup_authority.cc.o" "gcc" "src/core/CMakeFiles/dnscup_core.dir/dnscup_authority.cc.o.d"
  "/root/repo/src/core/dynamic_lease.cc" "src/core/CMakeFiles/dnscup_core.dir/dynamic_lease.cc.o" "gcc" "src/core/CMakeFiles/dnscup_core.dir/dynamic_lease.cc.o.d"
  "/root/repo/src/core/lease_client.cc" "src/core/CMakeFiles/dnscup_core.dir/lease_client.cc.o" "gcc" "src/core/CMakeFiles/dnscup_core.dir/lease_client.cc.o.d"
  "/root/repo/src/core/listener.cc" "src/core/CMakeFiles/dnscup_core.dir/listener.cc.o" "gcc" "src/core/CMakeFiles/dnscup_core.dir/listener.cc.o.d"
  "/root/repo/src/core/notifier.cc" "src/core/CMakeFiles/dnscup_core.dir/notifier.cc.o" "gcc" "src/core/CMakeFiles/dnscup_core.dir/notifier.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/dnscup_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/dnscup_core.dir/policy.cc.o.d"
  "/root/repo/src/core/rate_tracker.cc" "src/core/CMakeFiles/dnscup_core.dir/rate_tracker.cc.o" "gcc" "src/core/CMakeFiles/dnscup_core.dir/rate_tracker.cc.o.d"
  "/root/repo/src/core/track_file.cc" "src/core/CMakeFiles/dnscup_core.dir/track_file.cc.o" "gcc" "src/core/CMakeFiles/dnscup_core.dir/track_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/server/CMakeFiles/dnscup_server.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnscup_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dnscup_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnscup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

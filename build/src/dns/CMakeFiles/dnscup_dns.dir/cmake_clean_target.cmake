file(REMOVE_RECURSE
  "libdnscup_dns.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dnscup_dns.dir/message.cc.o"
  "CMakeFiles/dnscup_dns.dir/message.cc.o.d"
  "CMakeFiles/dnscup_dns.dir/name.cc.o"
  "CMakeFiles/dnscup_dns.dir/name.cc.o.d"
  "CMakeFiles/dnscup_dns.dir/rdata.cc.o"
  "CMakeFiles/dnscup_dns.dir/rdata.cc.o.d"
  "CMakeFiles/dnscup_dns.dir/rr.cc.o"
  "CMakeFiles/dnscup_dns.dir/rr.cc.o.d"
  "CMakeFiles/dnscup_dns.dir/wire.cc.o"
  "CMakeFiles/dnscup_dns.dir/wire.cc.o.d"
  "CMakeFiles/dnscup_dns.dir/zone.cc.o"
  "CMakeFiles/dnscup_dns.dir/zone.cc.o.d"
  "CMakeFiles/dnscup_dns.dir/zone_text.cc.o"
  "CMakeFiles/dnscup_dns.dir/zone_text.cc.o.d"
  "libdnscup_dns.a"
  "libdnscup_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnscup_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dnscup_dns.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for dnscup_workload.
# This may be replaced when dependencies are built.

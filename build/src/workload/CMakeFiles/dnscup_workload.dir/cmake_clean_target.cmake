file(REMOVE_RECURSE
  "libdnscup_workload.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/change_model.cc" "src/workload/CMakeFiles/dnscup_workload.dir/change_model.cc.o" "gcc" "src/workload/CMakeFiles/dnscup_workload.dir/change_model.cc.o.d"
  "/root/repo/src/workload/domain_population.cc" "src/workload/CMakeFiles/dnscup_workload.dir/domain_population.cc.o" "gcc" "src/workload/CMakeFiles/dnscup_workload.dir/domain_population.cc.o.d"
  "/root/repo/src/workload/prober.cc" "src/workload/CMakeFiles/dnscup_workload.dir/prober.cc.o" "gcc" "src/workload/CMakeFiles/dnscup_workload.dir/prober.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/dnscup_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnscup_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dnscup_workload.dir/change_model.cc.o"
  "CMakeFiles/dnscup_workload.dir/change_model.cc.o.d"
  "CMakeFiles/dnscup_workload.dir/domain_population.cc.o"
  "CMakeFiles/dnscup_workload.dir/domain_population.cc.o.d"
  "CMakeFiles/dnscup_workload.dir/prober.cc.o"
  "CMakeFiles/dnscup_workload.dir/prober.cc.o.d"
  "libdnscup_workload.a"
  "libdnscup_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnscup_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dnscup_net.dir/event_loop.cc.o"
  "CMakeFiles/dnscup_net.dir/event_loop.cc.o.d"
  "CMakeFiles/dnscup_net.dir/sim_network.cc.o"
  "CMakeFiles/dnscup_net.dir/sim_network.cc.o.d"
  "CMakeFiles/dnscup_net.dir/udp_transport.cc.o"
  "CMakeFiles/dnscup_net.dir/udp_transport.cc.o.d"
  "libdnscup_net.a"
  "libdnscup_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnscup_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

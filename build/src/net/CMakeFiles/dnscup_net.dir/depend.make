# Empty dependencies file for dnscup_net.
# This may be replaced when dependencies are built.

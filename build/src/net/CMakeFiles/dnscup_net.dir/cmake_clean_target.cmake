file(REMOVE_RECURSE
  "libdnscup_net.a"
)

# Empty compiler generated dependencies file for fig4_cv_poisson.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_cv_poisson.dir/fig4_cv_poisson.cc.o"
  "CMakeFiles/fig4_cv_poisson.dir/fig4_cv_poisson.cc.o.d"
  "fig4_cv_poisson"
  "fig4_cv_poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cv_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

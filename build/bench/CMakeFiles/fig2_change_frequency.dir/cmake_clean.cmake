file(REMOVE_RECURSE
  "CMakeFiles/fig2_change_frequency.dir/fig2_change_frequency.cc.o"
  "CMakeFiles/fig2_change_frequency.dir/fig2_change_frequency.cc.o.d"
  "fig2_change_frequency"
  "fig2_change_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_change_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig2_change_frequency.
# This may be replaced when dependencies are built.

# Empty dependencies file for table1_measurement.
# This may be replaced when dependencies are built.

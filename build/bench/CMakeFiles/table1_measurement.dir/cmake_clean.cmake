file(REMOVE_RECURSE
  "CMakeFiles/table1_measurement.dir/table1_measurement.cc.o"
  "CMakeFiles/table1_measurement.dir/table1_measurement.cc.o.d"
  "table1_measurement"
  "table1_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_online_policy.
# This may be replaced when dependencies are built.

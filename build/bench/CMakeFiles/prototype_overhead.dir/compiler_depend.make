# Empty compiler generated dependencies file for prototype_overhead.
# This may be replaced when dependencies are built.

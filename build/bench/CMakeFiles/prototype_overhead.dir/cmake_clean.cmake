file(REMOVE_RECURSE
  "CMakeFiles/prototype_overhead.dir/prototype_overhead.cc.o"
  "CMakeFiles/prototype_overhead.dir/prototype_overhead.cc.o.d"
  "prototype_overhead"
  "prototype_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prototype_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

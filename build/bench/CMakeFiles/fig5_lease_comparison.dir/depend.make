# Empty dependencies file for fig5_lease_comparison.
# This may be replaced when dependencies are built.

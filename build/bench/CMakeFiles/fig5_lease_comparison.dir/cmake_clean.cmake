file(REMOVE_RECURSE
  "CMakeFiles/fig5_lease_comparison.dir/fig5_lease_comparison.cc.o"
  "CMakeFiles/fig5_lease_comparison.dir/fig5_lease_comparison.cc.o.d"
  "fig5_lease_comparison"
  "fig5_lease_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_lease_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

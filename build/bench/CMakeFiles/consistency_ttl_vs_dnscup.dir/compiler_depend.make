# Empty compiler generated dependencies file for consistency_ttl_vs_dnscup.
# This may be replaced when dependencies are built.

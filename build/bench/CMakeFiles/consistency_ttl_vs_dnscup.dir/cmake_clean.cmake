file(REMOVE_RECURSE
  "CMakeFiles/consistency_ttl_vs_dnscup.dir/consistency_ttl_vs_dnscup.cc.o"
  "CMakeFiles/consistency_ttl_vs_dnscup.dir/consistency_ttl_vs_dnscup.cc.o.d"
  "consistency_ttl_vs_dnscup"
  "consistency_ttl_vs_dnscup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_ttl_vs_dnscup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_lease_math.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_lease_math.dir/ablation_lease_math.cc.o"
  "CMakeFiles/ablation_lease_math.dir/ablation_lease_math.cc.o.d"
  "ablation_lease_math"
  "ablation_lease_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lease_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/testbed_e2e.dir/testbed_e2e.cc.o"
  "CMakeFiles/testbed_e2e.dir/testbed_e2e.cc.o.d"
  "testbed_e2e"
  "testbed_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

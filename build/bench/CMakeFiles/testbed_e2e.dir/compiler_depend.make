# Empty compiler generated dependencies file for testbed_e2e.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_retransmission.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lame_delegation.dir/lame_delegation.cc.o"
  "CMakeFiles/lame_delegation.dir/lame_delegation.cc.o.d"
  "lame_delegation"
  "lame_delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lame_delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lame_delegation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/trace_simulation.dir/trace_simulation.cc.o"
  "CMakeFiles/trace_simulation.dir/trace_simulation.cc.o.d"
  "trace_simulation"
  "trace_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for trace_simulation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/udp_prototype.dir/udp_prototype.cc.o"
  "CMakeFiles/udp_prototype.dir/udp_prototype.cc.o.d"
  "udp_prototype"
  "udp_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

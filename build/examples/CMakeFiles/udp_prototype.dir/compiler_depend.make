# Empty compiler generated dependencies file for udp_prototype.
# This may be replaced when dependencies are built.

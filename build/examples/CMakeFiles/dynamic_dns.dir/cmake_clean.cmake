file(REMOVE_RECURSE
  "CMakeFiles/dynamic_dns.dir/dynamic_dns.cc.o"
  "CMakeFiles/dynamic_dns.dir/dynamic_dns.cc.o.d"
  "dynamic_dns"
  "dynamic_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dynamic_dns.
# This may be replaced when dependencies are built.

# Empty dependencies file for cdn_load_balance.
# This may be replaced when dependencies are built.

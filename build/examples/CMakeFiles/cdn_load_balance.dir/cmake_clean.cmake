file(REMOVE_RECURSE
  "CMakeFiles/cdn_load_balance.dir/cdn_load_balance.cc.o"
  "CMakeFiles/cdn_load_balance.dir/cdn_load_balance.cc.o.d"
  "cdn_load_balance"
  "cdn_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/disaster_failover.dir/disaster_failover.cc.o"
  "CMakeFiles/disaster_failover.dir/disaster_failover.cc.o.d"
  "disaster_failover"
  "disaster_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaster_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for disaster_failover.
# This may be replaced when dependencies are built.

// Fan-out bench: time-to-99%-consistent for one authority pushing a
// burst of zone-serial churn to N caches, UDP+retransmit (the paper's
// datagram CACHE-UPDATE path) versus the connection-oriented push plane
// (src/push).
//
// Both planes deliver the same churn: `--rounds` successive serials for
// the same record set, submitted back-to-back, to every cache.  A cache
// is *consistent* once it has seen the newest serial; the reported
// figure is the wall time from the first transmission until 99% of
// caches are consistent.
//
//   UDP plane   one datagram per (cache, serial) with the notifier's
//               retransmit schedule (500 ms initial, 2x backoff, 5
//               retries).  Datagram loss on the cache receive path is
//               injected at --drop (default 2%) with a deterministic
//               PRNG — loopback cannot otherwise model the WAN loss
//               that makes application-timer recovery expensive.
//   TCP plane   one PushServer; every cache holds a subscribed channel.
//               The same churn rides the paced scheduler, so superseded
//               serials coalesce in-queue and never touch the wire.
//               Transport-level loss recovery belongs to the kernel
//               (RTT-scale), so no loss is injected; the cost being
//               compared is the recovery/fan-out *mechanism*, not
//               loopback's loss rate.
//
// Channel setup (connect + SUBSCRIBE for N caches) is excluded from the
// timed window: a subscription is amortized over the lease lifetime,
// while the UDP plane pays its full cost on every change.
//
// File descriptors: the TCP leg needs ~2 fds per cache.  The bench
// raises RLIMIT_NOFILE (as far as the hard limit / root allows) and
// scales N down, with a notice, when the limit still does not fit.
//
// Usage: push_fanout [--scales 1000,10000] [--rounds 5] [--drop 0.02]
//                    [--out BENCH_push_fanout.json]
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/notifier.h"
#include "dns/name.h"
#include "net/endpoint.h"
#include "push/framing.h"
#include "push/push_server.h"
#include "util/metrics.h"

namespace dnscup {
namespace {

constexpr std::size_t kPayloadBytes = 100;  // realistic CACHE-UPDATE size
constexpr double kConsistentFraction = 0.99;

int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic xorshift for the injected datagram loss.
struct Prng {
  uint64_t state = 0x9E3779B97F4A7C15ull;
  double next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  }
};

uint64_t counter_total(const metrics::Snapshot& snapshot, const char* name) {
  uint64_t total = 0;
  for (const auto& entry : snapshot.entries) {
    if (entry.kind == metrics::InstrumentKind::kCounter &&
        entry.name == name) {
      total += entry.counter_value;
    }
  }
  return total;
}

struct PlaneResult {
  bool ok = false;
  double t99_ms = 0.0;       ///< first send -> 99% of caches on newest serial
  double all_done_ms = 0.0;  ///< until every delivery settled (or timeout)
  uint64_t packets = 0;      ///< datagrams (UDP) / frames (TCP), both ways
  double packets_per_change = 0.0;
  uint64_t retransmits = 0;  ///< UDP only
  uint64_t coalesced = 0;    ///< TCP only
  uint64_t paced_batches = 0;
  uint64_t failures = 0;     ///< retries exhausted / channel failures
};

// ---------------------------------------------------------------------------
// UDP plane: notifier-style datagram fan-out with retransmit timers.
// ---------------------------------------------------------------------------

// Payload layout: cache index (4B BE), serial (4B BE), padding.  Caches
// echo the first 8 bytes back as the ack.
void put32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}
uint32_t get32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) |
         (uint32_t{p[2]} << 8) | uint32_t{p[3]};
}

PlaneResult run_udp(int caches, int rounds, double drop_rate) {
  PlaneResult result;
  const int target = static_cast<int>(caches * kConsistentFraction + 0.999);

  // A modest pool of receiver sockets stands in for the caches; each
  // socket carries caches/M identities.  Buffers are sized so injected
  // loss, not receive-queue overflow, is the loss model.
  const int M = std::min(caches, 64);
  std::vector<int> cache_fds(M, -1);
  std::vector<sockaddr_in> cache_addrs(M);
  const int rcvbuf = 4 * 1024 * 1024;
  for (int i = 0; i < M; ++i) {
    cache_fds[i] = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    ::setsockopt(cache_fds[i], SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(cache_fds[i], reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      std::fprintf(stderr, "udp: bind failed: %s\n", std::strerror(errno));
      return result;
    }
    socklen_t len = sizeof cache_addrs[i];
    ::getsockname(cache_fds[i], reinterpret_cast<sockaddr*>(&cache_addrs[i]),
                  &len);
  }
  const int auth_fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  ::setsockopt(auth_fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  sockaddr_in auth_addr{};
  auth_addr.sin_family = AF_INET;
  auth_addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(auth_fd, reinterpret_cast<sockaddr*>(&auth_addr), sizeof auth_addr);
  socklen_t auth_len = sizeof auth_addr;
  ::getsockname(auth_fd, reinterpret_cast<sockaddr*>(&auth_addr), &auth_len);

  std::atomic<int> consistent{0};
  std::atomic<int64_t> t0_us{0};
  std::atomic<int64_t> t99_us{0};
  std::atomic<bool> stop{false};

  // Cache side: drain every receiver socket, drop at the injected rate,
  // track the newest serial per cache and ack everything that arrives.
  std::thread cache_thread([&] {
    const int ep = ::epoll_create1(0);
    for (int i = 0; i < M; ++i) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u32 = static_cast<uint32_t>(i);
      ::epoll_ctl(ep, EPOLL_CTL_ADD, cache_fds[i], &ev);
    }
    std::vector<uint32_t> newest(static_cast<std::size_t>(caches), 0);
    Prng prng;
    uint8_t buf[512];
    epoll_event events[64];
    while (!stop.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(ep, events, 64, 20);
      for (int e = 0; e < n; ++e) {
        const int fd = cache_fds[events[e].data.u32];
        while (true) {
          const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
          if (r < 0) break;
          if (r < 8) continue;
          if (prng.next() < drop_rate) continue;  // injected network loss
          const uint32_t cache = get32(buf);
          const uint32_t serial = get32(buf + 4);
          if (cache < newest.size() && serial > newest[cache]) {
            newest[cache] = serial;
            if (serial == static_cast<uint32_t>(rounds)) {
              const int done = consistent.fetch_add(1) + 1;
              if (done == target) t99_us.store(now_us());
            }
          }
          // Ack the copy we received (stale copies included, like the
          // lease client does).
          ::sendto(fd, buf, 8, 0, reinterpret_cast<sockaddr*>(&auth_addr),
                   sizeof auth_addr);
        }
      }
    }
    ::close(ep);
  });

  // Authority side: burst every round, then service acks + retransmits.
  struct Pending {
    int retries_left = 5;
    int64_t next_due_us = 0;
    int64_t delay_us = 500'000;  // notifier's initial retry delay
  };
  std::map<std::pair<uint32_t, uint32_t>, Pending> pending;
  uint64_t sends = 0, retransmits = 0, acks = 0, failures = 0;
  uint8_t payload[kPayloadBytes] = {};

  auto send_update = [&](uint32_t cache, uint32_t serial) {
    put32(payload, cache);
    put32(payload + 4, serial);
    const sockaddr_in& dst = cache_addrs[cache % M];
    while (::sendto(auth_fd, payload, sizeof payload, 0,
                    reinterpret_cast<const sockaddr*>(&dst),
                    sizeof dst) < 0) {
      if (errno != EAGAIN && errno != ENOBUFS) break;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  };
  auto drain_acks = [&] {
    uint8_t buf[64];
    while (true) {
      const ssize_t r = ::recv(auth_fd, buf, sizeof buf, 0);
      if (r < 8) break;
      const auto key = std::make_pair(get32(buf), get32(buf + 4));
      if (pending.erase(key) > 0) ++acks;
    }
  };

  t0_us.store(now_us());
  for (uint32_t serial = 1; serial <= static_cast<uint32_t>(rounds);
       ++serial) {
    for (uint32_t cache = 0; cache < static_cast<uint32_t>(caches);
         ++cache) {
      send_update(cache, serial);
      ++sends;
      Pending p;
      p.next_due_us = now_us() + p.delay_us;
      pending[{cache, serial}] = p;
      if ((cache & 0x3FF) == 0) drain_acks();
    }
  }
  const int64_t deadline_us = now_us() + 30'000'000;
  while (!pending.empty() && now_us() < deadline_us) {
    drain_acks();
    const int64_t now = now_us();
    for (auto it = pending.begin(); it != pending.end();) {
      Pending& p = it->second;
      if (p.next_due_us > now) {
        ++it;
        continue;
      }
      if (p.retries_left == 0) {
        ++failures;  // lease revocation in the real notifier
        it = pending.erase(it);
        continue;
      }
      send_update(it->first.first, it->first.second);
      ++retransmits;
      --p.retries_left;
      p.delay_us *= 2;
      p.next_due_us = now + p.delay_us;
      ++it;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const int64_t settled_us = now_us();

  stop.store(true, std::memory_order_release);
  cache_thread.join();
  ::close(auth_fd);
  for (int fd : cache_fds) ::close(fd);

  result.ok = t99_us.load() != 0;
  if (!result.ok) {
    std::fprintf(stderr, "udp: only %d/%d caches reached the newest serial\n",
                 consistent.load(), target);
    return result;
  }
  result.t99_ms = (t99_us.load() - t0_us.load()) / 1000.0;
  result.all_done_ms = (settled_us - t0_us.load()) / 1000.0;
  result.retransmits = retransmits;
  result.failures = failures;
  result.packets = sends + retransmits + acks;
  result.packets_per_change = static_cast<double>(result.packets) / rounds;
  return result;
}

// ---------------------------------------------------------------------------
// TCP plane: PushServer + a multiplexed N-connection subscriber harness.
// ---------------------------------------------------------------------------

/// All N caches in one epoll loop on one thread: each connection sends
/// SUBSCRIBE, acks every PUSH, answers pings and tracks the newest
/// serial it has applied (PUSH body: id 2B, serial 4B BE, padding).
class SubscriberFleet {
 public:
  SubscriberFleet(net::Endpoint authority, int caches, uint32_t target_serial)
      : authority_(authority),
        target_serial_(target_serial),
        target_count_(static_cast<int>(caches * kConsistentFraction + 0.999)) {
    conns_.resize(static_cast<std::size_t>(caches));
    epoll_fd_ = ::epoll_create1(0);
  }

  ~SubscriberFleet() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
    for (auto& c : conns_) {
      if (c.fd >= 0) ::close(c.fd);
    }
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  static net::Endpoint identity_of(int i) {
    return {net::make_ip(10, static_cast<uint8_t>(i >> 16),
                         static_cast<uint8_t>(i >> 8),
                         static_cast<uint8_t>(i)),
            5353};
  }

  /// Opens connections in bounded chunks (the listen backlog is finite)
  /// and runs the event loop until every SUBSCRIBE has been flushed.
  bool connect_all() {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(authority_.ip);
    addr.sin_port = htons(authority_.port);
    constexpr std::size_t kChunk = 512;
    for (std::size_t base = 0; base < conns_.size(); base += kChunk) {
      const std::size_t end = std::min(base + kChunk, conns_.size());
      for (std::size_t i = base; i < end; ++i) {
        Conn& c = conns_[i];
        c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
        if (c.fd < 0) return false;
        const int one = 1;
        ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        if (::connect(c.fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof addr) != 0 &&
            errno != EINPROGRESS) {
          std::fprintf(stderr, "tcp: connect %zu failed: %s\n", i,
                       std::strerror(errno));
          return false;
        }
        const auto hello =
            push::encode_subscribe(identity_of(static_cast<int>(i)));
        push::encode_frame(push::FrameKind::kSubscribe, hello, c.txbuf);
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.u32 = static_cast<uint32_t>(i);
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, c.fd, &ev);
      }
      // Let the chunk's handshakes drain before opening the next one.
      const int64_t deadline = now_us() + 10'000'000;
      while (pending_tx_count(base, end) > 0 && now_us() < deadline) {
        pump(5);
      }
    }
    return true;
  }

  void start() {
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_acquire)) pump(20);
    });
  }

  int consistent() const { return consistent_.load(std::memory_order_acquire); }
  int64_t t99_us() const { return t99_us_.load(std::memory_order_acquire); }

 private:
  struct Conn {
    int fd = -1;
    push::FrameReader reader;
    std::vector<uint8_t> txbuf;
    std::size_t txoff = 0;
    uint32_t newest_serial = 0;
    bool want_write = true;  // registered with EPOLLOUT for the handshake
  };

  std::size_t pending_tx_count(std::size_t begin, std::size_t end) {
    std::size_t n = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (conns_[i].txoff < conns_[i].txbuf.size()) ++n;
    }
    return n;
  }

  void pump(int timeout_ms) {
    epoll_event events[128];
    const int n = ::epoll_wait(epoll_fd_, events, 128, timeout_ms);
    for (int e = 0; e < n; ++e) {
      Conn& c = conns_[events[e].data.u32];
      if (c.fd < 0) continue;
      if (events[e].events & EPOLLIN) handle_read(c);
      if (c.fd >= 0 && (events[e].events & EPOLLOUT)) flush(c);
    }
  }

  void handle_read(Conn& c) {
    uint8_t buf[16 * 1024];
    bool closed = false;
    while (true) {
      const ssize_t r = ::read(c.fd, buf, sizeof buf);
      if (r == 0) {  // server closed (bench teardown)
        closed = true;
        break;
      }
      if (r < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        closed = true;
        break;
      }
      c.reader.append(std::span<const uint8_t>(buf, static_cast<size_t>(r)));
    }
    push::Frame frame;
    while (c.reader.next(frame)) {
      switch (frame.kind) {
        case push::FrameKind::kPush: {
          if (frame.body.size() >= 6) {
            const uint32_t serial = get32(frame.body.data() + 2);
            if (serial > c.newest_serial) {
              c.newest_serial = serial;
              if (serial == target_serial_) {
                const int done = consistent_.fetch_add(1) + 1;
                if (done == target_count_) t99_us_.store(now_us());
              }
            }
          }
          if (frame.body.size() >= 2) {
            // Ack with the update's correlation id (first two body bytes).
            const std::vector<uint8_t> ack(frame.body.begin(),
                                           frame.body.begin() + 2);
            push::encode_frame(push::FrameKind::kPushAck, ack, c.txbuf);
          }
          break;
        }
        case push::FrameKind::kPing:
          push::encode_frame(push::FrameKind::kPong, {}, c.txbuf);
          break;
        default:
          break;  // SUBSCRIBE_ACK inventory, pongs
      }
    }
    if (closed) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
      ::close(c.fd);
      c.fd = -1;
      return;
    }
    flush(c);
  }

  void flush(Conn& c) {
    if (c.fd < 0) return;
    while (c.txoff < c.txbuf.size()) {
      const ssize_t w = ::send(c.fd, c.txbuf.data() + c.txoff,
                               c.txbuf.size() - c.txoff, MSG_NOSIGNAL);
      if (w < 0) break;
      c.txoff += static_cast<std::size_t>(w);
    }
    if (c.txoff == c.txbuf.size()) {
      c.txbuf.clear();
      c.txoff = 0;
    }
    const bool want = c.txoff < c.txbuf.size();
    if (want != c.want_write) {
      c.want_write = want;
      epoll_event ev{};
      ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
      ev.data.u32 = static_cast<uint32_t>(&c - conns_.data());
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
    }
  }

  net::Endpoint authority_;
  uint32_t target_serial_;
  int target_count_;
  std::vector<Conn> conns_;
  int epoll_fd_ = -1;
  std::atomic<int> consistent_{0};
  std::atomic<int64_t> t99_us_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

PlaneResult run_tcp(int caches, int rounds) {
  PlaneResult result;
  metrics::MetricsRegistry registry;
  std::atomic<uint64_t> acked{0}, coalesced{0}, failed{0};

  push::PushServer::Config config;
  config.port = 0;
  config.workers = 1;
  config.backlog = 4096;
  // 2 ms pacing keeps the per-tick syscall burst bounded and gives
  // back-to-back serials a window to coalesce in-queue, like a real
  // deployment's pacer would under churn.
  config.pace_interval = net::milliseconds(2);
  config.pace_burst = 512;
  auto started = push::PushServer::start(
      config, &registry,
      [&](int, uint16_t, core::ChannelResolution resolution) {
        switch (resolution) {
          case core::ChannelResolution::kAcked:
            acked.fetch_add(1, std::memory_order_relaxed);
            break;
          case core::ChannelResolution::kCoalesced:
            coalesced.fetch_add(1, std::memory_order_relaxed);
            break;
          case core::ChannelResolution::kFailed:
            failed.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      });
  if (!started.ok()) {
    std::fprintf(stderr, "tcp: PushServer failed to start\n");
    return result;
  }
  auto server = std::move(started).value();
  const auto zone = dns::Name::parse("example.com").value();
  server->set_zone_serial(zone, 0);

  SubscriberFleet fleet(server->local_endpoint(), caches,
                        static_cast<uint32_t>(rounds));
  if (!fleet.connect_all()) return result;
  fleet.start();
  const int64_t sub_deadline = now_us() + 20'000'000;
  while (server->subscription_count() < static_cast<std::size_t>(caches)) {
    if (now_us() > sub_deadline) {
      std::fprintf(stderr, "tcp: only %zu/%d subscriptions\n",
                   server->subscription_count(), caches);
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::atomic<int64_t> t0_us{0};

  const auto record = dns::Name::parse("www.example.com").value();
  core::PushWriter* writer = server->writer_for(0);
  uint64_t udp_fallbacks = 0;
  t0_us.store(now_us());
  for (uint32_t serial = 1; serial <= static_cast<uint32_t>(rounds);
       ++serial) {
    server->set_zone_serial(zone, serial);
    for (int cache = 0; cache < caches; ++cache) {
      core::PushWriter::Item item;
      item.holder = SubscriberFleet::identity_of(cache);
      item.id = static_cast<uint16_t>(serial);
      item.zone = zone;
      item.serial = serial;
      item.covered.emplace_back(record, dns::RRType::kA);
      item.message.resize(kPayloadBytes);
      item.message[0] = static_cast<uint8_t>(serial >> 8);
      item.message[1] = static_cast<uint8_t>(serial);
      put32(item.message.data() + 2, serial);
      if (!writer->try_push(std::move(item))) ++udp_fallbacks;
    }
  }
  const uint64_t accepted =
      static_cast<uint64_t>(caches) * rounds - udp_fallbacks;
  const int64_t deadline = now_us() + 30'000'000;
  while (acked.load() + coalesced.load() + failed.load() < accepted &&
         now_us() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const int64_t settled_us = now_us();

  const auto snapshot = registry.snapshot();
  server->stop();

  result.ok = fleet.t99_us() != 0;
  if (!result.ok) {
    std::fprintf(stderr, "tcp: only %d caches reached the newest serial\n",
                 fleet.consistent());
    return result;
  }
  result.t99_ms = (fleet.t99_us() - t0_us.load()) / 1000.0;
  result.all_done_ms = (settled_us - t0_us.load()) / 1000.0;
  result.packets = counter_total(snapshot, "push_frames");
  result.packets_per_change = static_cast<double>(result.packets) / rounds;
  result.coalesced = coalesced.load();
  result.paced_batches = counter_total(snapshot, "push_paced_batches_total");
  result.failures = failed.load() + udp_fallbacks;
  return result;
}

// ---------------------------------------------------------------------------

int raise_fd_limit(rlim_t want) {
  rlimit lim{};
  ::getrlimit(RLIMIT_NOFILE, &lim);
  if (lim.rlim_cur < want) {
    rlimit raised = lim;
    raised.rlim_cur = want;
    if (raised.rlim_max < want) raised.rlim_max = want;  // root may raise hard
    if (::setrlimit(RLIMIT_NOFILE, &raised) != 0) {
      raised.rlim_cur = lim.rlim_max;  // fall back to the hard limit
      raised.rlim_max = lim.rlim_max;
      ::setrlimit(RLIMIT_NOFILE, &raised);
    }
    ::getrlimit(RLIMIT_NOFILE, &lim);
  }
  return static_cast<int>(lim.rlim_cur);
}

void json_plane(std::string& out, const char* name, const PlaneResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "      \"%s\": {\"ok\": %s, \"t99_ms\": %.2f, "
                "\"all_done_ms\": %.2f, \"packets\": %llu, "
                "\"packets_per_change\": %.1f, \"retransmits\": %llu, "
                "\"coalesced\": %llu, \"paced_batches\": %llu, "
                "\"failures\": %llu}",
                name, r.ok ? "true" : "false", r.t99_ms, r.all_done_ms,
                static_cast<unsigned long long>(r.packets),
                r.packets_per_change,
                static_cast<unsigned long long>(r.retransmits),
                static_cast<unsigned long long>(r.coalesced),
                static_cast<unsigned long long>(r.paced_batches),
                static_cast<unsigned long long>(r.failures));
  out += buf;
}

}  // namespace
}  // namespace dnscup

int main(int argc, char** argv) {
  using namespace dnscup;
  std::vector<int> scales = {1000, 10000};
  int rounds = 5;
  double drop = 0.02;
  std::string out_path = "BENCH_push_fanout.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--scales") == 0) {
      scales.clear();
      const char* p = argv[i + 1];
      while (*p != '\0') {
        scales.push_back(std::atoi(p));
        const char* comma = std::strchr(p, ',');
        if (comma == nullptr) break;
        p = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      rounds = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--drop") == 0) {
      drop = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  bench::heading("CACHE-UPDATE fan-out: UDP+retransmit vs TCP push plane");
  std::printf("rounds of serial churn per scale: %d; injected UDP loss: "
              "%.1f%%\n", rounds, drop * 100.0);

  std::string json = "{\n  \"bench\": \"push_fanout\",\n";
  json += "  \"rounds\": " + std::to_string(rounds) + ",\n";
  {
    char buf[64];
    std::snprintf(buf, sizeof buf, "  \"udp_drop_rate\": %.3f,\n", drop);
    json += buf;
  }
  json += "  \"scales\": [\n";

  bool first = true;
  bool all_ok = true;
  for (int requested : scales) {
    // ~2 fds per cache for the TCP leg plus harness overhead.
    const int fd_limit = raise_fd_limit(
        static_cast<rlim_t>(requested) * 2 + 1024);
    int caches = requested;
    if (fd_limit < caches * 2 + 512) {
      caches = (fd_limit - 512) / 2;
      std::printf("NOTE: RLIMIT_NOFILE=%d cannot fit %d caches; scaled "
                  "down to %d\n", fd_limit, requested, caches);
    }
    bench::subheading(std::to_string(caches) + " caches");

    const PlaneResult udp = run_udp(caches, rounds, drop);
    std::printf("  udp  t99 %8.2f ms  packets/change %8.1f  "
                "retransmits %llu  failures %llu\n",
                udp.t99_ms, udp.packets_per_change,
                static_cast<unsigned long long>(udp.retransmits),
                static_cast<unsigned long long>(udp.failures));
    const PlaneResult tcp = run_tcp(caches, rounds);
    std::printf("  tcp  t99 %8.2f ms  frames/change  %8.1f  "
                "coalesced %llu  paced batches %llu\n",
                tcp.t99_ms, tcp.packets_per_change,
                static_cast<unsigned long long>(tcp.coalesced),
                static_cast<unsigned long long>(tcp.paced_batches));
    all_ok = all_ok && udp.ok && tcp.ok;

    if (!first) json += ",\n";
    first = false;
    json += "    {\"caches\": " + std::to_string(caches) +
            ", \"requested\": " + std::to_string(requested) + ",\n";
    json_plane(json, "udp", udp);
    json += ",\n";
    json_plane(json, "tcp", tcp);
    json += "\n    }";
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nresult written to %s\n", out_path.c_str());
  return all_ok ? 0 : 1;
}

// §4.1 ablation: the closed-form lease model (P = t/(t+1/λ),
// M = 1/(t+1/λ), ΔM/ΔP = λ) versus event-driven measurement, across a
// sweep of query rates and lease lengths.  This certifies the analysis
// every Figure-5 number rests on.
#include <cstdio>

#include "bench_util.h"
#include "core/lease_math.h"
#include "sim/lease_sim.h"

int main() {
  using namespace dnscup;
  bench::heading("Ablation: closed-form lease model vs event simulation");

  std::printf("%-10s %-10s %-12s %-12s %-12s %-12s\n", "rate q/s",
              "lease s", "P analytic", "P measured", "M analytic",
              "M measured");
  double worst_p = 0.0;
  double worst_m = 0.0;
  for (double rate : {0.01, 0.1, 1.0, 5.0}) {
    for (double lease : {1.0, 10.0, 100.0, 1000.0}) {
      const std::vector<core::DemandEntry> demands{{0, 0, rate, 1e9}};
      const double duration = std::max(20000.0, 2000.0 / rate);
      const auto sim = sim::simulate_leases(demands, {lease}, duration,
                                            /*seed=*/123);
      const double p_analytic = core::lease_probability(lease, rate);
      const double m_analytic = core::renewal_rate(lease, rate);
      std::printf("%-10.2f %-10.0f %-12.4f %-12.4f %-12.5f %-12.5f\n",
                  rate, lease, p_analytic, sim.mean_live_leases, m_analytic,
                  sim.message_rate);
      if (p_analytic > 0.01) {
        worst_p = std::max(worst_p,
                           std::abs(sim.mean_live_leases - p_analytic) /
                               p_analytic);
      }
      worst_m = std::max(
          worst_m, std::abs(sim.message_rate - m_analytic) / m_analytic);
    }
  }
  std::printf("\nworst relative error: P %.1f%%, M %.1f%%\n",
              100.0 * worst_p, 100.0 * worst_m);

  bench::subheading("exchange-rate theorem (dM/dP = lambda)");
  std::printf("%-10s %-14s %-14s %-14s\n", "rate q/s", "t1 -> t2",
              "dM/dP", "lambda");
  for (double rate : {0.05, 0.5, 5.0}) {
    const double t1 = 10.0;
    const double t2 = 300.0;
    const double dp = core::lease_probability(t2, rate) -
                      core::lease_probability(t1, rate);
    const double dm =
        core::renewal_rate(t1, rate) - core::renewal_rate(t2, rate);
    std::printf("%-10.2f %6.0f -> %-6.0f %-14.5f %-14.5f\n", rate, t1, t2,
                dm / dp, rate);
  }
  std::printf(
      "\npaper reference (§4.1): the ratio is a constant equal to the\n"
      "query rate — the basis for both greedy dynamic-lease algorithms.\n");
  return 0;
}

// Figure 1: "The regular domain name distribution with the number of
// requests in each group."  Log-log scatter of (#requests, #domain names)
// per TLD group.  We regenerate the series from the synthetic population,
// log-binning request counts per TLD, and verify the power-law shape the
// paper's plot shows (a straight descending line in log-log space).
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "workload/domain_population.h"

namespace {

using namespace dnscup;

int log_bin(uint64_t requests) {
  if (requests == 0) return 0;
  return static_cast<int>(std::floor(std::log10(
      static_cast<double>(requests))));
}

}  // namespace

int main() {
  bench::heading("Figure 1: regular domain distribution vs request count");

  workload::PopulationConfig config;
  config.regular_per_group = 3000;  // paper: 3000 per major group
  config.cdn_domains = 600;
  config.dyn_domains = 600;
  config.seed = 1;
  const auto population = workload::DomainPopulation::generate(config);

  const char* tlds[] = {"com", "net", "org", "edu", "country",
                        "gov", "biz", "coop"};
  // bin -> tld -> count, bins are decades of request count.
  std::map<int, std::map<std::string, std::size_t>> bins;
  std::map<std::string, std::size_t> totals;
  for (const auto& d : population.domains()) {
    if (d.category != workload::DomainCategory::kRegular) continue;
    ++bins[log_bin(d.request_count)][d.tld];
    ++totals[d.tld];
  }

  std::printf("%-14s", "requests");
  for (const char* tld : tlds) std::printf("%10s", tld);
  std::printf("\n");
  for (const auto& [bin, per_tld] : bins) {
    std::printf("10^%-2d - 10^%-2d ", bin, bin + 1);
    for (const char* tld : tlds) {
      auto it = per_tld.find(tld);
      std::printf("%10zu", it == per_tld.end() ? 0 : it->second);
    }
    std::printf("\n");
  }
  std::printf("%-14s", "total");
  for (const char* tld : tlds) std::printf("%10zu", totals[tld]);
  std::printf("\n");

  bench::subheading("shape check (paper: descending power law per group)");
  // For .com: count per decade must be monotonically decreasing.
  bool monotone = true;
  std::size_t prev = SIZE_MAX;
  for (const auto& [bin, per_tld] : bins) {
    auto it = per_tld.find("com");
    const std::size_t n = it == per_tld.end() ? 0 : it->second;
    if (n > prev) monotone = false;
    prev = n;
  }
  std::printf(".com counts decrease across request decades: %s\n",
              monotone ? "yes (power-law shape holds)" : "NO");
  std::printf(
      "paper reference: five major groups (.com .net .org .edu country)\n"
      "dominate with ~3000 names each; .gov/.biz/.coop form small tails\n");
  return 0;
}

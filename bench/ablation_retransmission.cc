// Ablation: the notification module's retransmission budget under packet
// loss.  DNScup carries CACHE-UPDATE over UDP (§4), so delivery rests on
// the ack/retransmit loop; this sweep shows how the retry budget trades
// consistency (stale answers) against failure-driven lease revocations,
// across loss rates — the design choice DESIGN.md calls out.
#include <cstdio>

#include "bench_util.h"
#include "sim/consistency_sim.h"

int main() {
  using namespace dnscup;
  bench::heading("Ablation: CACHE-UPDATE retransmission budget vs loss");

  std::printf("%-8s %-9s %-10s %-12s %-14s\n", "loss", "retries",
              "stale %", "pushes", "give-ups");
  for (double loss : {0.0, 0.1, 0.3}) {
    for (int retries : {0, 1, 3, 5}) {
      sim::ConsistencyConfig config;
      config.zones = 8;
      config.caches = 2;
      config.dnscup_enabled = true;
      config.record_ttl = 1800;
      config.max_lease = net::hours(6);
      config.duration_s = 3600.0;
      config.queries_per_cache_per_s = 0.4;
      config.mean_change_interval_s = 120.0;
      config.loss_probability = loss;
      config.seed = 900 + static_cast<uint64_t>(loss * 100) +
                    static_cast<uint64_t>(retries);
      // Thread the retry budget through the testbed's notifier config.
      // (run_consistency_experiment builds the testbed; we express the
      // retry budget via a dedicated field.)
      config.notification_max_retries = retries;
      const auto r = run_consistency_experiment(config);
      std::printf("%-8.2f %-9d %-10.3f %-12llu %-14llu\n", loss, retries,
                  100.0 * r.stale_fraction,
                  static_cast<unsigned long long>(r.cache_updates_sent),
                  static_cast<unsigned long long>(r.notification_failures));
    }
  }
  std::printf(
      "\nexpected shape: with zero retries any lost push leaves the cache\n"
      "stale until TTL/lease expiry; a handful of retries drives staleness\n"
      "to ~zero even at 30%% loss, at slightly higher push counts.\n");
  return 0;
}

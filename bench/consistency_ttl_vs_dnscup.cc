// Extension experiment quantifying the paper's §1/§3 motivation: the
// stale-answer rate and staleness age of classic TTL caching versus
// DNScup's proactive invalidation, across record TTLs, using the full
// protocol stack end-to-end (queries, leases, UPDATEs, CACHE-UPDATEs).
#include <cstdio>

#include "bench_util.h"
#include "sim/consistency_sim.h"

int main(int argc, char** argv) {
  using namespace dnscup;
  const std::string metrics_out = bench::metrics_out_arg(argc, argv);
  // Aggregate of every run's private registry (shard merge): counters add
  // across runs, histogram moments merge exactly.
  metrics::Snapshot merged;
  bench::heading("Time-to-consistency: TTL vs DNScup (full stack)");

  std::printf("%-8s %-8s %-9s %-10s %-11s %-10s %-9s\n", "ttl(s)",
              "scheme", "queries", "stale", "stale %", "mean age", "packets");
  for (uint32_t ttl : {60u, 300u, 1800u, 3600u}) {
    for (bool dnscup : {false, true}) {
      sim::ConsistencyConfig config;
      config.zones = 10;
      config.caches = 2;
      config.dnscup_enabled = dnscup;
      config.record_ttl = ttl;
      config.max_lease = net::hours(6);
      config.duration_s = 2 * 3600.0;
      config.queries_per_cache_per_s = 0.3;
      config.mean_change_interval_s = 240.0;
      config.seed = 100 + ttl;
      const auto r = run_consistency_experiment(config);
      merged.merge(r.snapshot);
      std::printf("%-8u %-8s %-9llu %-10llu %-11.3f %-10.1f %-9llu\n", ttl,
                  dnscup ? "dnscup" : "ttl",
                  static_cast<unsigned long long>(r.answered),
                  static_cast<unsigned long long>(r.stale_answers),
                  100.0 * r.stale_fraction,
                  r.stale_answers > 0 ? r.stale_age_s.mean() : 0.0,
                  static_cast<unsigned long long>(r.packets_delivered));
    }
  }
  std::printf(
      "\nexpected shape: TTL staleness grows with the record TTL (stale\n"
      "for up to a full TTL after each change) while DNScup stays near\n"
      "zero at a modest extra message cost — the paper's core motivation\n"
      "(availability under sudden mapping changes, §1).\n");

  bench::subheading("with 5%% packet loss (retransmission robustness)");
  std::printf("%-8s %-9s %-11s %-10s\n", "scheme", "stale", "stale %",
              "dropped");
  for (bool dnscup : {false, true}) {
    sim::ConsistencyConfig config;
    config.zones = 10;
    config.caches = 2;
    config.dnscup_enabled = dnscup;
    config.record_ttl = 1800;
    config.duration_s = 2 * 3600.0;
    config.queries_per_cache_per_s = 0.3;
    config.mean_change_interval_s = 240.0;
    config.loss_probability = 0.05;
    config.seed = 500;
    const auto r = run_consistency_experiment(config);
    merged.merge(r.snapshot);
    std::printf("%-8s %-9llu %-11.3f %-10llu\n", dnscup ? "dnscup" : "ttl",
                static_cast<unsigned long long>(r.stale_answers),
                100.0 * r.stale_fraction,
                static_cast<unsigned long long>(r.packets_dropped));
  }
  bench::write_snapshot(merged, metrics_out);
  return 0;
}

// Ablation: how close does the *online* budgeted grant policy get to the
// *offline* storage-constrained optimum the paper evaluates?
//
// The offline greedy (§4.2.1) sees the whole rate table in advance; the
// live authority must decide per query from the RRC alone, adapting its
// admission threshold as the track file fills.  We drive the listening
// module with Poisson query streams from caches with Zipf rates and
// compare achieved (storage, message-rate) points against the offline
// plan at the same storage budget.
#include <cstdio>
#include <queue>

#include "bench_util.h"
#include "core/dynamic_lease.h"
#include "core/policy.h"
#include "core/track_file.h"
#include "util/rng.h"

namespace {

using namespace dnscup;

struct OnlineResult {
  double mean_live = 0.0;
  double message_rate = 0.0;
  double query_rate = 0.0;
};

/// Replays Poisson arrivals for every demand pair against the policy.
/// A query reaching the authority = one message (renewal or poll); the
/// grant decision uses the pair's true rate as its RRC.
OnlineResult run_online(const std::vector<core::DemandEntry>& demands,
                        std::size_t budget, double duration_s,
                        uint64_t seed) {
  core::TrackFile track_file;
  core::BudgetedGrantPolicy::Config config;
  config.storage_budget = budget;
  core::BudgetedGrantPolicy policy(
      [&demands](const dns::Name& name, dns::RRType) {
        // Encode the pair index in the first label to recover max_lease.
        const std::size_t idx = std::stoul(name.label(0).substr(1));
        return net::from_seconds(demands[idx].max_lease);
      },
      &track_file, config);

  // Event queue of (next arrival, pair index).
  util::Rng rng(seed);
  std::vector<util::Rng> streams;
  std::priority_queue<std::pair<double, std::size_t>,
                      std::vector<std::pair<double, std::size_t>>,
                      std::greater<>>
      arrivals;
  std::vector<dns::Name> names;
  std::vector<net::Endpoint> holders;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    streams.push_back(rng.fork());
    arrivals.push({streams[i].exponential(demands[i].rate), i});
    names.push_back(dns::Name::from_labels(
        {"p" + std::to_string(i), "example", "com"}));
    holders.push_back({net::make_ip(10, 1, static_cast<uint8_t>(
                                               demands[i].cache / 250),
                                    static_cast<uint8_t>(demands[i].cache %
                                                         250)),
                       53});
  }

  uint64_t queries = 0;
  uint64_t messages = 0;
  double live_integral = 0.0;
  double last_t = 0.0;
  while (!arrivals.empty()) {
    auto [t, i] = arrivals.top();
    arrivals.pop();
    if (t >= duration_s) continue;  // drop; no re-arm past the horizon
    const net::SimTime now = net::from_seconds(t);
    live_integral += track_file.live_count(now) * (t - last_t);
    last_t = t;
    ++queries;
    const core::Lease* lease = track_file.find(holders[i], names[i],
                                               dns::RRType::kA);
    if (lease == nullptr || !lease->valid(now)) {
      // Cache miss (TTL or lease expired): the query reaches the
      // authority and the policy decides on a lease.
      ++messages;
      const auto decision = policy.decide(names[i], dns::RRType::kA,
                                          holders[i], demands[i].rate, now);
      if (decision.grant) {
        track_file.grant(holders[i], names[i], dns::RRType::kA, now,
                         decision.length);
      }
    }
    arrivals.push({t + streams[i].exponential(demands[i].rate), i});
  }

  OnlineResult result;
  result.mean_live = live_integral / duration_s;
  result.message_rate = static_cast<double>(messages) / duration_s;
  result.query_rate = static_cast<double>(queries) / duration_s;
  return result;
}

}  // namespace

int main() {
  bench::heading("Ablation: online budgeted policy vs offline greedy");

  util::Rng rng(77);
  std::vector<core::DemandEntry> demands;
  const util::ZipfDistribution zipf(200, 1.0);
  for (std::size_t i = 0; i < 200; ++i) {
    core::DemandEntry d;
    d.record = i;
    d.cache = i % 3;
    d.rate = 2.0 * zipf.pmf(i) * 200.0 / 10.0;  // spread of rates
    d.max_lease = 600.0;
    demands.push_back(d);
  }

  std::printf("%-10s %-22s %-22s %-12s\n", "budget",
              "offline (live, msg/s)", "online (live, msg/s)",
              "msg overhead");
  for (std::size_t budget : {10u, 25u, 50u, 100u, 150u}) {
    const auto offline = core::plan_storage_constrained(
        demands, static_cast<double>(budget));
    const auto online = run_online(demands, budget, 20000.0, 42);
    std::printf("%-10zu %8.1f, %-12.3f %8.1f, %-12.3f %+10.1f%%\n", budget,
                offline.total_storage, offline.total_message_rate,
                online.mean_live, online.message_rate,
                100.0 * (online.message_rate - offline.total_message_rate) /
                    offline.total_message_rate);
  }
  std::printf(
      "\nthe online policy tracks the offline greedy's frontier while\n"
      "respecting the budget it cannot plan for in advance; the residual\n"
      "message overhead is the price of admission-threshold adaptation.\n");
  return 0;
}

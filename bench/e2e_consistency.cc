// End-to-end stale-window probe for a running dnscupd + dnscached pair on
// loopback.  Per trial: warm the cache on a record, repoint the record at
// the authority via RFC 2136 UPDATE, then poll the cache until the new
// address appears; the elapsed time is the end-to-end stale-read window a
// client observes.  With DNScup it is one push round-trip; with a plain
// TTL cache it is bounded below by the record's remaining TTL.
//
//   build/bench/e2e_consistency --authority 127.0.0.1:5300
//       --cache 127.0.0.1:5301 --name www.example.com --zone example.com
//       --trials 10 --ttl 300 --label dnscup --out windows.json
//
// Emits JSON: {"label", "trials", "ttl_s", "windows_ms": [...],
// "mean_ms", "p50_ms", "max_ms"}.  tools/bench_e2e.sh runs it once per
// mode and merges the halves with the daemons' metrics snapshots into
// BENCH_e2e_consistency.json.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dns/message.h"
#include "net/udp_transport.h"
#include "server/update.h"

using namespace dnscup;

namespace {

/// Blocking query/response client on one UDP socket; responses are
/// matched by id and source endpoint.
class SyncClient {
 public:
  SyncClient() {
    auto bound = net::UdpTransport::bind(0);
    if (!bound.ok()) {
      std::fprintf(stderr, "bind: %s\n", bound.error().to_string().c_str());
      std::exit(1);
    }
    udp_ = std::move(bound).value();
    udp_->set_receive_handler(
        [this](const net::Endpoint& from, std::span<const uint8_t> data) {
          auto message = dns::Message::decode(data);
          if (!message.ok()) return;
          std::lock_guard lock(mutex_);
          last_from_ = from;
          response_ = std::move(message).value();
          cv_.notify_all();
        });
  }

  /// Sends `message` to `server` and waits for the matching response;
  /// nullopt on timeout.
  std::optional<dns::Message> exchange(const net::Endpoint& server,
                                       dns::Message message, int timeout_ms) {
    {
      std::lock_guard lock(mutex_);
      response_.reset();
    }
    udp_->send(server, message.encode());
    std::unique_lock lock(mutex_);
    const bool got = cv_.wait_for(
        lock, std::chrono::milliseconds(timeout_ms), [&] {
          return response_.has_value() && response_->id == message.id &&
                 response_->flags.qr && last_from_ == server;
        });
    if (!got) return std::nullopt;
    return response_;
  }

  uint16_t next_id() { return next_id_++; }

 private:
  std::unique_ptr<net::UdpTransport> udp_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<dns::Message> response_;
  net::Endpoint last_from_;
  uint16_t next_id_ = 1;
};

std::optional<dns::Ipv4> answer_a(const dns::Message& response) {
  for (const auto& rr : response.answers) {
    if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
      return a->address;
    }
  }
  return std::nullopt;
}

dns::Message make_query(uint16_t id, const dns::Name& name) {
  dns::Message query;
  query.id = id;
  query.flags.opcode = dns::Opcode::kQuery;
  query.flags.rd = true;
  query.questions.push_back(
      dns::Question{name, dns::RRType::kA, dns::RRClass::kIN, 0});
  return query;
}

struct Options {
  net::Endpoint authority;
  net::Endpoint cache;
  dns::Name name;
  dns::Name zone;
  int trials = 10;
  uint32_t ttl = 300;
  int window_cap_ms = 15000;  ///< give up on a trial after this long
  std::string label = "dnscup";
  std::string out;
};

int usage() {
  std::fprintf(stderr,
               "usage: e2e_consistency --authority ip:port --cache ip:port\n"
               "         --name fqdn --zone origin [--trials N] [--ttl s]\n"
               "         [--window-cap-ms N] [--label text] [--out file]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  bool have_authority = false, have_cache = false, have_name = false,
       have_zone = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--authority" && (v = next()) != nullptr) {
      auto endpoint = net::parse_endpoint(v);
      if (!endpoint) return usage();
      opts.authority = *endpoint;
      have_authority = true;
    } else if (arg == "--cache" && (v = next()) != nullptr) {
      auto endpoint = net::parse_endpoint(v);
      if (!endpoint) return usage();
      opts.cache = *endpoint;
      have_cache = true;
    } else if (arg == "--name" && (v = next()) != nullptr) {
      auto name = dns::Name::parse(v);
      if (!name.ok()) return usage();
      opts.name = std::move(name).value();
      have_name = true;
    } else if (arg == "--zone" && (v = next()) != nullptr) {
      auto zone = dns::Name::parse(v);
      if (!zone.ok()) return usage();
      opts.zone = std::move(zone).value();
      have_zone = true;
    } else if (arg == "--trials" && (v = next()) != nullptr) {
      opts.trials = std::atoi(v);
    } else if (arg == "--ttl" && (v = next()) != nullptr) {
      opts.ttl = static_cast<uint32_t>(std::atoll(v));
    } else if (arg == "--window-cap-ms" && (v = next()) != nullptr) {
      opts.window_cap_ms = std::atoi(v);
    } else if (arg == "--label" && (v = next()) != nullptr) {
      opts.label = v;
    } else if (arg == "--out" && (v = next()) != nullptr) {
      opts.out = v;
    } else {
      return usage();
    }
  }
  if (!have_authority || !have_cache || !have_name || !have_zone ||
      opts.trials < 1) {
    return usage();
  }

  SyncClient client;
  std::vector<double> windows_ms;

  for (int trial = 0; trial < opts.trials; ++trial) {
    // Fresh target address per trial so "converged" is unambiguous.
    const dns::Ipv4 target =
        dns::Ipv4::parse("198.18." + std::to_string(2 + trial / 250) + "." +
                         std::to_string(1 + trial % 250))
            .value();

    // Warm the cache (and, with DNScup, the lease).
    auto warm = client.exchange(
        opts.cache, make_query(client.next_id(), opts.name), 3000);
    if (!warm || !answer_a(*warm)) {
      std::fprintf(stderr, "trial %d: cache warm query failed\n", trial);
      return 1;
    }

    // Repoint at the authority.
    const dns::Message update = server::UpdateBuilder(opts.zone)
                                    .replace_a(opts.name, opts.ttl, target)
                                    .build(client.next_id());
    auto updated = client.exchange(opts.authority, update, 3000);
    if (!updated || updated->flags.rcode != dns::Rcode::kNoError) {
      std::fprintf(stderr, "trial %d: UPDATE failed\n", trial);
      return 1;
    }

    // Poll the cache until the new mapping is served.
    const auto start = std::chrono::steady_clock::now();
    double window_ms = -1.0;
    for (;;) {
      auto polled = client.exchange(
          opts.cache, make_query(client.next_id(), opts.name), 3000);
      const auto now = std::chrono::steady_clock::now();
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(now - start).count();
      if (polled) {
        const auto address = answer_a(*polled);
        if (address && *address == target) {
          window_ms = elapsed_ms;
          break;
        }
      }
      if (elapsed_ms > opts.window_cap_ms) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (window_ms < 0) {
      std::fprintf(stderr,
                   "trial %d: cache never converged within %d ms\n", trial,
                   opts.window_cap_ms);
      return 1;
    }
    windows_ms.push_back(window_ms);
    std::fprintf(stderr, "trial %d: stale window %.1f ms\n", trial,
                 window_ms);
  }

  std::vector<double> sorted = windows_ms;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  for (double w : sorted) sum += w;
  const double mean = sum / sorted.size();
  const double p50 = sorted[sorted.size() / 2];
  const double max = sorted.back();

  std::string json = "{\n  \"label\": \"" + opts.label + "\",\n";
  json += "  \"trials\": " + std::to_string(opts.trials) + ",\n";
  json += "  \"ttl_s\": " + std::to_string(opts.ttl) + ",\n";
  json += "  \"windows_ms\": [";
  for (std::size_t i = 0; i < windows_ms.size(); ++i) {
    if (i > 0) json += ", ";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", windows_ms[i]);
    json += buf;
  }
  json += "],\n";
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "  \"mean_ms\": %.2f,\n  \"p50_ms\": %.2f,\n"
                "  \"max_ms\": %.2f\n}",
                mean, p50, max);
  json += buf;
  json += "\n";

  if (opts.out.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(opts.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opts.out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  std::fprintf(stderr, "%s: mean %.1f ms, p50 %.1f ms, max %.1f ms\n",
               opts.label.c_str(), mean, p50, max);
  return 0;
}

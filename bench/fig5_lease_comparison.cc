// Figure 5: "Performance comparison between fixed and dynamic lease" —
// the paper's headline result.
//
//  (a) storage requirement: query-rate percentage (Y) vs storage
//      percentage (X, linear 0-70).  Paper: at 20% query rate the dynamic
//      lease needs 19% storage vs 47% for fixed (-60%).
//  (b) query rate: the same curves on a log storage axis down to 0.001%.
//      Paper: at 1% storage, dynamic yields 56% query rate vs 88% for
//      fixed (-36%).
//
// Pipeline exactly as §5.1: synthesize the one-week academic trace
// (3 nameservers, ~2000 clients, 15-min client caching), compute
// per-(nameserver, domain) rates from the first day, build demands with
// the paper's per-category maximal leases (regular 6 d, CDN 200 s, Dyn
// 6000 s), then sweep fixed lease lengths and dynamic storage budgets.
#include <cstdio>

#include "bench_util.h"
#include "core/dynamic_lease.h"
#include "sim/lease_sim.h"
#include "sim/rates.h"
#include "sim/trace_gen.h"

int main(int argc, char** argv) {
  using namespace dnscup;
  const std::string metrics_out = bench::metrics_out_arg(argc, argv);
  metrics::MetricsRegistry registry;
  bench::heading("Figure 5: fixed vs dynamic lease (regular domains, NS I)");

  workload::PopulationConfig pop_config;
  pop_config.regular_per_group = 3000;
  pop_config.cdn_domains = 600;
  pop_config.dyn_domains = 600;
  pop_config.seed = 5;
  const auto population = workload::DomainPopulation::generate(pop_config);

  sim::TraceGenConfig trace_config;
  trace_config.nameservers = 3;
  trace_config.clients = 2000;
  trace_config.duration_s = 86400.0;  // rates come from the first day
  trace_config.client_cache_s = 900.0;
  trace_config.sessions_per_client_hour = 4.0;
  trace_config.zipf_exponent = 1.10;  // real DNS popularity is highly skewed
  trace_config.seed = 6;
  const auto trace = generate_trace(population, trace_config);
  const auto rates = sim::compute_rates(trace, 86400.0);

  // The paper's Figure 5 shows regular domains at the first nameserver;
  // build demands accordingly (other categories behave similarly, §5.1.2).
  auto demands = sim::compute_demands(
      population, rates, {workload::DomainCategory::kRegular});
  std::erase_if(demands,
                [](const core::DemandEntry& d) { return d.cache != 0; });
  std::printf("demand pairs (regular domains @ NS I): %zu\n", demands.size());
  registry.counter("fig5_demand_pairs", {{"category", "regular"}}) +=
      demands.size();

  // ---- sweep both schemes -------------------------------------------------
  bench::Curve fixed_curve;    // x = storage %, y = query rate %
  bench::Curve dynamic_curve;
  for (double t = 1.0; t <= 6.0 * 86400.0; t *= 1.6) {
    const auto plan = core::plan_fixed(demands, t);
    fixed_curve.add(plan.storage_percentage, plan.query_rate_percentage);
  }
  const double max_storage =
      core::plan_storage_constrained(demands, 1e18).total_storage;
  for (double frac = 1e-5; frac <= 1.0; frac *= 1.7) {
    const auto plan =
        core::plan_storage_constrained(demands, frac * max_storage);
    dynamic_curve.add(plan.storage_percentage, plan.query_rate_percentage);
  }
  fixed_curve.sort();
  dynamic_curve.sort();

  bench::subheading("(a) query-rate %% vs storage %% (linear axis)");
  std::printf("%-12s %-14s %-14s\n", "storage %", "fixed lease",
              "dynamic lease");
  for (double s : {1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0,
                   60.0}) {
    std::printf("%-12.1f %-14.1f %-14.1f\n", s, fixed_curve.y_at(s),
                dynamic_curve.y_at(s));
  }

  bench::subheading("(b) query-rate %% vs storage %% (log axis)");
  for (double s : {0.001, 0.01, 0.1, 1.0, 10.0, 60.0}) {
    std::printf("%-12g %-14.1f %-14.1f\n", s, fixed_curve.y_at(s),
                dynamic_curve.y_at(s));
  }

  bench::subheading("paper reference points");
  const double fixed_at_20 = fixed_curve.x_at(20.0);
  const double dyn_at_20 = dynamic_curve.x_at(20.0);
  registry.gauge("fig5_storage_pct_at_20pct_queries", {{"scheme", "fixed"}})
      .set(fixed_at_20);
  registry.gauge("fig5_storage_pct_at_20pct_queries", {{"scheme", "dynamic"}})
      .set(dyn_at_20);
  std::printf(
      "@ query rate 20%%: storage fixed %.1f%% vs dynamic %.1f%% "
      "(paper: 47%% vs 19%%, -60%%)\n",
      fixed_at_20, dyn_at_20);
  if (dyn_at_20 > 0) {
    std::printf("  measured storage reduction: %.0f%%\n",
                100.0 * (1.0 - dyn_at_20 / fixed_at_20));
  }
  const double fixed_at_1pct = fixed_curve.y_at(1.0);
  const double dyn_at_1pct = dynamic_curve.y_at(1.0);
  registry.gauge("fig5_query_rate_pct_at_1pct_storage", {{"scheme", "fixed"}})
      .set(fixed_at_1pct);
  registry
      .gauge("fig5_query_rate_pct_at_1pct_storage", {{"scheme", "dynamic"}})
      .set(dyn_at_1pct);
  std::printf(
      "@ storage 1%%: query rate fixed %.1f%% vs dynamic %.1f%% "
      "(paper: 88%% vs 56%%, -36%%)\n",
      fixed_at_1pct, dyn_at_1pct);
  std::printf("  measured query-rate reduction: %.0f%%\n",
              100.0 * (1.0 - dyn_at_1pct / fixed_at_1pct));

  std::printf(
      "\nshape check: dynamic curve at/below fixed everywhere: %s\n",
      [&] {
        for (double s = 0.5; s <= 60.0; s += 0.5) {
          if (dynamic_curve.y_at(s) > fixed_curve.y_at(s) + 1.0) {
            return "NO";
          }
        }
        return "yes";
      }());

  // ---- CDN and Dyn domains (§5.1.2: "we have similar results") ------------
  for (auto category : {workload::DomainCategory::kCdn,
                        workload::DomainCategory::kDyn}) {
    auto cat_demands = sim::compute_demands(population, rates, {category});
    std::erase_if(cat_demands,
                  [](const core::DemandEntry& d) { return d.cache != 0; });
    if (cat_demands.empty()) continue;
    registry.counter("fig5_demand_pairs",
                     {{"category",
                       std::string(workload::to_string(category))}}) +=
        cat_demands.size();
    bench::subheading(std::string(workload::to_string(category)) +
                      " domains @ NS I (same sweep)");
    std::printf("pairs: %zu, max lease %.0f s\n", cat_demands.size(),
                cat_demands.front().max_lease);
    bench::Curve cat_fixed;
    bench::Curve cat_dynamic;
    for (double t = 1.0; t <= cat_demands.front().max_lease; t *= 1.5) {
      const auto plan = core::plan_fixed(cat_demands, t);
      cat_fixed.add(plan.storage_percentage, plan.query_rate_percentage);
    }
    const double cat_max =
        core::plan_storage_constrained(cat_demands, 1e18).total_storage;
    for (double frac = 1e-4; frac <= 1.0; frac *= 2.0) {
      const auto plan =
          core::plan_storage_constrained(cat_demands, frac * cat_max);
      cat_dynamic.add(plan.storage_percentage, plan.query_rate_percentage);
    }
    cat_fixed.sort();
    cat_dynamic.sort();
    std::printf("%-12s %-14s %-14s\n", "storage %", "fixed lease",
                "dynamic lease");
    for (double s : {1.0, 5.0, 10.0, 20.0, 40.0}) {
      std::printf("%-12.1f %-14.1f %-14.1f\n", s, cat_fixed.y_at(s),
                  cat_dynamic.y_at(s));
    }
  }
  std::printf(
      "\npaper reference: the dynamic lease dominates the fixed lease for\n"
      "CDN and Dyn domains as well (curves omitted in the paper for\n"
      "space; §5.1.2).\n");

  // Cross-check the closed-form dynamic plan against the event-driven
  // replay (§4.1 property): its lease_sim_* instruments ride along in the
  // same snapshot.
  const auto check_plan =
      core::plan_storage_constrained(demands, 0.01 * max_storage);
  const auto replay = sim::simulate_leases(demands, check_plan.lengths,
                                           6 * 3600.0, /*seed=*/7);
  std::printf(
      "replay check @ ~1%% storage: closed-form %.1f%% vs replay %.1f%% "
      "query rate\n",
      check_plan.query_rate_percentage, replay.query_rate_percentage);
  metrics::Snapshot snapshot = registry.snapshot(0);
  snapshot.merge(replay.snapshot);
  bench::write_snapshot(snapshot, metrics_out);
  return 0;
}

// §5.2 prototype claim: "the difference in computation overhead between
// TTL and DNScup is hardly noticeable."  google-benchmark measurement of
// the per-operation costs: query processing with and without the DNScup
// listening module, wire encode/decode (with and without EXT fields),
// CACHE-UPDATE construction/parsing, and track-file operations.
#include <benchmark/benchmark.h>

#include "core/cache_update.h"
#include "core/dnscup_authority.h"
#include "net/sim_network.h"
#include "server/authoritative.h"

namespace {

using namespace dnscup;
using dns::Message;
using dns::Name;
using dns::RRClass;
using dns::RRType;

Name mk(const char* text) { return Name::parse(text).value(); }

struct ServerFixture {
  net::EventLoop loop;
  net::SimNetwork network{loop, 1};
  server::AuthServer server{network.bind({net::make_ip(10, 0, 0, 1), 53}),
                            loop};
  std::unique_ptr<core::DnscupAuthority> dnscup;

  explicit ServerFixture(bool with_dnscup) {
    dns::SOARdata soa;
    soa.mname = mk("ns1.example.com");
    soa.rname = mk("admin.example.com");
    soa.serial = 1;
    soa.minimum = 60;
    dns::Zone zone = dns::Zone::make(mk("example.com"), soa, 3600,
                                     {mk("ns1.example.com")}, 3600);
    for (int i = 0; i < 100; ++i) {
      zone.add_record(
          mk(("h" + std::to_string(i) + ".example.com").c_str()),
          RRType::kA, 300,
          dns::ARdata{dns::Ipv4{0x0A000000u + static_cast<uint32_t>(i)}});
    }
    server.add_zone(std::move(zone));
    if (with_dnscup) {
      core::DnscupAuthority::Config config;
      config.max_lease = [](const Name&, RRType) { return net::hours(1); };
      dnscup = std::make_unique<core::DnscupAuthority>(server, loop, config);
    }
  }

  Message query(int i, bool ext) const {
    Message m;
    m.id = static_cast<uint16_t>(i);
    m.flags.ext = ext;
    dns::Question q;
    q.qname = mk(("h" + std::to_string(i % 100) + ".example.com").c_str());
    q.qtype = RRType::kA;
    q.rrc = ext ? 360 : 0;
    m.questions.push_back(std::move(q));
    return m;
  }
};

const net::Endpoint kClient{net::make_ip(10, 0, 2, 1), 53};

void BM_QueryProcessing_PlainTtl(benchmark::State& state) {
  ServerFixture fixture(/*with_dnscup=*/false);
  int i = 0;
  for (auto _ : state) {
    const Message q = fixture.query(i++, false);
    benchmark::DoNotOptimize(fixture.server.handle(kClient, q));
  }
}
BENCHMARK(BM_QueryProcessing_PlainTtl);

void BM_QueryProcessing_DnscupLegacyQuery(benchmark::State& state) {
  // DNScup middleware installed, but the querier is a legacy cache.
  ServerFixture fixture(/*with_dnscup=*/true);
  int i = 0;
  for (auto _ : state) {
    const Message q = fixture.query(i++, false);
    benchmark::DoNotOptimize(fixture.server.handle(kClient, q));
  }
}
BENCHMARK(BM_QueryProcessing_DnscupLegacyQuery);

void BM_QueryProcessing_DnscupExtQuery(benchmark::State& state) {
  // EXT query: rate tracking + policy decision + lease grant + LLT stamp.
  ServerFixture fixture(/*with_dnscup=*/true);
  int i = 0;
  for (auto _ : state) {
    const Message q = fixture.query(i++, true);
    benchmark::DoNotOptimize(fixture.server.handle(kClient, q));
  }
}
BENCHMARK(BM_QueryProcessing_DnscupExtQuery);

void BM_MessageEncode_Plain(benchmark::State& state) {
  ServerFixture fixture(false);
  const Message q = fixture.query(1, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.encode());
  }
}
BENCHMARK(BM_MessageEncode_Plain);

void BM_MessageEncode_Ext(benchmark::State& state) {
  ServerFixture fixture(false);
  const Message q = fixture.query(1, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.encode());
  }
}
BENCHMARK(BM_MessageEncode_Ext);

void BM_MessageDecode_Plain(benchmark::State& state) {
  ServerFixture fixture(false);
  const auto wire = fixture.query(1, false).encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Message::decode(wire));
  }
}
BENCHMARK(BM_MessageDecode_Plain);

void BM_MessageDecode_Ext(benchmark::State& state) {
  ServerFixture fixture(false);
  const auto wire = fixture.query(1, true).encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Message::decode(wire));
  }
}
BENCHMARK(BM_MessageDecode_Ext);

void BM_CacheUpdateEncode(benchmark::State& state) {
  dns::RRset after{mk("h1.example.com"), RRType::kA, RRClass::kIN, 300, {}};
  after.add(dns::ARdata{dns::Ipv4{0x0A0A0A0A}});
  std::vector<dns::RRsetChange> changes{
      {mk("h1.example.com"), RRType::kA, std::nullopt, after}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::encode_cache_update(1, mk("example.com"), 7, changes)
            .encode());
  }
}
BENCHMARK(BM_CacheUpdateEncode);

void BM_CacheUpdateParse(benchmark::State& state) {
  dns::RRset after{mk("h1.example.com"), RRType::kA, RRClass::kIN, 300, {}};
  after.add(dns::ARdata{dns::Ipv4{0x0A0A0A0A}});
  std::vector<dns::RRsetChange> changes{
      {mk("h1.example.com"), RRType::kA, std::nullopt, after}};
  const auto wire =
      core::encode_cache_update(1, mk("example.com"), 7, changes).encode();
  for (auto _ : state) {
    const auto msg = Message::decode(wire).value();
    benchmark::DoNotOptimize(core::parse_cache_update(msg));
  }
}
BENCHMARK(BM_CacheUpdateParse);

void BM_TrackFileGrantRenew(benchmark::State& state) {
  core::TrackFile tf;
  net::SimTime now = 0;
  uint32_t i = 0;
  for (auto _ : state) {
    const net::Endpoint holder{
        net::make_ip(10, 1, static_cast<uint8_t>(i / 250 % 250),
                     static_cast<uint8_t>(i % 250)),
        53};
    tf.grant(holder, mk("h1.example.com"), RRType::kA, now,
             net::seconds(3600));
    now += net::milliseconds(1);
    ++i;
  }
}
BENCHMARK(BM_TrackFileGrantRenew);

void BM_TrackFileHoldersLookup(benchmark::State& state) {
  core::TrackFile tf;
  for (uint32_t i = 0; i < 1000; ++i) {
    tf.grant({net::make_ip(10, 1, static_cast<uint8_t>(i / 250),
                           static_cast<uint8_t>(i % 250)),
              53},
             mk("h1.example.com"), RRType::kA, 0, net::seconds(3600));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tf.holders_of(mk("h1.example.com"), RRType::kA, net::seconds(1)));
  }
}
BENCHMARK(BM_TrackFileHoldersLookup);

void BM_ZoneLookup(benchmark::State& state) {
  ServerFixture fixture(false);
  const dns::Zone* zone = fixture.server.find_zone(mk("example.com"));
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(zone->lookup(
        mk(("h" + std::to_string(i++ % 100) + ".example.com").c_str()),
        RRType::kA));
  }
}
BENCHMARK(BM_ZoneLookup);

}  // namespace

BENCHMARK_MAIN();

// Warm vs cold restart for the persistent cache store (the PR's tentpole
// claim, measured): an in-process dnscup authority serving N records and
// a cache-side runtime persisting its shard to disk.  The bench
//
//   1. populates the cache over real loopback sockets and measures the
//      steady-state hit rate of a full query sweep (the pre-restart
//      baseline),
//   2. restarts the cache runtime on the same cache directory (warm) and
//      re-measures the very first sweep — upstream queries during that
//      sweep are the restart's refetch burst,
//   3. wipes the directory and restarts again (cold) for the same sweep,
//
// and emits BENCH_cache_restart.json.  The acceptance claims: the warm
// restart recovers >= 90% of the pre-restart hit rate, cuts the upstream
// burst versus cold, re-adopts the surviving leases (counted on both
// ends), and serves zero stale answers.
//
//   build/bench/cache_restart [--names 1000] [--out BENCH_cache_restart.json]
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cachert/cache_runtime.h"
#include "dns/zone_text.h"
#include "net/udp_transport.h"
#include "runtime/runtime.h"

using namespace dnscup;

namespace {

std::string address_of(int i) {
  char text[32];
  std::snprintf(text, sizeof text, "10.%d.%d.%d", (i >> 16) & 255,
                (i >> 8) & 255, i & 255);
  return text;
}

dns::Zone build_zone(int names, uint32_t ttl) {
  std::string text =
      "$ORIGIN example.com.\n"
      "@ IN SOA ns1.example.com. admin.example.com. 1 7200 900 604800 "
      "300\n"
      "@ 300 IN NS ns1.example.com.\n"
      "ns1 300 IN A 10.0.0.1\n";
  for (int i = 0; i < names; ++i) {
    text += "h" + std::to_string(i) + " " + std::to_string(ttl) + " IN A " +
            address_of(i) + "\n";
  }
  auto zone =
      dns::parse_zone_text(text, dns::Name::parse("example.com").value());
  if (!zone.ok()) {
    std::fprintf(stderr, "zone: %s\n", zone.error().to_string().c_str());
    std::exit(1);
  }
  return std::move(zone).value();
}

/// Blocking query client: one UDP socket, responses matched by id.
class SyncClient {
 public:
  SyncClient() {
    auto bound = net::UdpTransport::bind(0);
    if (!bound.ok()) std::exit(1);
    udp_ = std::move(bound).value();
    udp_->set_receive_handler(
        [this](const net::Endpoint&, std::span<const uint8_t> data) {
          auto message = dns::Message::decode(data);
          if (!message.ok()) return;
          std::lock_guard lock(mutex_);
          response_ = std::move(message).value();
          cv_.notify_all();
        });
  }

  /// Queries `name` (A) and returns the first A answer's address text;
  /// empty on timeout or NODATA.
  std::string query_a(const net::Endpoint& server, const std::string& name) {
    dns::Message query;
    query.id = next_id_++;
    query.flags.opcode = dns::Opcode::kQuery;
    query.flags.rd = true;
    query.questions.push_back(dns::Question{dns::Name::parse(name).value(),
                                            dns::RRType::kA,
                                            dns::RRClass::kIN, 0});
    {
      std::lock_guard lock(mutex_);
      response_.reset();
    }
    udp_->send(server, query.encode());
    std::unique_lock lock(mutex_);
    const bool got =
        cv_.wait_for(lock, std::chrono::seconds(3), [&] {
          return response_.has_value() && response_->id == query.id &&
                 response_->flags.qr;
        });
    if (!got) return "";
    for (const auto& rr : response_->answers) {
      if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
        return a->address.to_string();
      }
    }
    return "";
  }

 private:
  std::unique_ptr<net::UdpTransport> udp_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<dns::Message> response_;
  uint16_t next_id_ = 1;
};

uint64_t counter_sum(const metrics::Snapshot& snapshot, const char* name,
                     const char* key = nullptr,
                     const char* value = nullptr) {
  uint64_t total = 0;
  for (const auto& entry : snapshot.entries) {
    if (entry.kind != metrics::InstrumentKind::kCounter) continue;
    if (entry.name != name) continue;
    if (key != nullptr) {
      bool match = false;
      for (const auto& [k, v] : entry.labels) {
        if (k == key && v == value) match = true;
      }
      if (!match) continue;
    }
    total += entry.counter_value;
  }
  return total;
}

struct SweepResult {
  double hit_rate = 0;       ///< 1 - upstream_queries / sweep_queries
  uint64_t upstream = 0;     ///< upstream queries the sweep triggered
  uint64_t stale = 0;        ///< answers not matching the zone
  double elapsed_ms = 0;
};

/// One full sweep over every name; the upstream delta across the sweep is
/// the refetch burst it caused.
SweepResult sweep(SyncClient& client, cachert::CacheRuntime& cache,
                  int names) {
  SweepResult result;
  const uint64_t upstream_before =
      counter_sum(cache.metrics(), "resolver_queries", "side", "upstream");
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < names; ++i) {
    const std::string got = client.query_a(
        cache.endpoints()[0], "h" + std::to_string(i) + ".example.com");
    if (got != address_of(i)) ++result.stale;
  }
  result.elapsed_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - start)
          .count();
  result.upstream =
      counter_sum(cache.metrics(), "resolver_queries", "side", "upstream") -
      upstream_before;
  result.hit_rate =
      1.0 - static_cast<double>(result.upstream) / static_cast<double>(names);
  return result;
}

std::unique_ptr<cachert::CacheRuntime> start_cache(
    const runtime::ServingRuntime& authority, const std::string& dir) {
  cachert::Config config;
  config.port = 0;
  config.workers = 1;
  config.upstreams = {authority.endpoints()[0]};
  config.push_plane = true;
  config.push_authority = authority.push_endpoint();
  config.push.reconnect_min = net::milliseconds(50);
  config.push.reconnect_max = net::milliseconds(200);
  config.cache_dir = dir;
  config.cache_file_bytes = 32ull << 20;  // plenty of slots for the sweep
  auto started = cachert::CacheRuntime::start(std::move(config));
  if (!started.ok()) {
    std::fprintf(stderr, "cache runtime: %s\n",
                 started.error().to_string().c_str());
    std::exit(1);
  }
  auto cache = std::move(started).value();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (cache->push_connected() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cache;
}

}  // namespace

int main(int argc, char** argv) {
  int names = 1000;
  std::string out = "BENCH_cache_restart.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--names") == 0) names = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--out") == 0) out = argv[i + 1];
  }

  runtime::Config auth_config;
  auth_config.port = 0;
  auth_config.workers = 1;
  auth_config.push_plane = true;
  auth_config.push_port = 0;
  auto authority =
      runtime::ServingRuntime::start(auth_config, {build_zone(names, 3600)});
  if (!authority.ok()) {
    std::fprintf(stderr, "authority: %s\n",
                 authority.error().to_string().c_str());
    return 1;
  }

  const std::string dir = "bench_cache_restart." + std::to_string(::getpid());
  SyncClient client;

  // Generation 1: populate (every query misses, fetches upstream, takes a
  // lease), then measure the steady-state baseline sweep.
  auto cache = start_cache(*authority.value(), dir);
  sweep(client, *cache, names);  // population sweep
  const SweepResult baseline = sweep(client, *cache, names);
  const uint64_t leases_before = cache->live_leases();
  std::printf("baseline:  hit_rate=%.4f upstream=%llu stale=%llu (%.1f ms)\n",
              baseline.hit_rate,
              static_cast<unsigned long long>(baseline.upstream),
              static_cast<unsigned long long>(baseline.stale),
              baseline.elapsed_ms);

  // Generation 2: warm restart on the same directory.
  cache->stop();
  cache.reset();
  cache = start_cache(*authority.value(), dir);
  const uint64_t warm_entries = cache->warm_entries();
  // Let the re-adoption handshake finish before sweeping.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (counter_sum(cache->metrics(), "lease_readoption_total", "result",
                       "resumed") < leases_before &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  const uint64_t readopted = counter_sum(
      cache->metrics(), "lease_readoption_total", "result", "resumed");
  const SweepResult warm = sweep(client, *cache, names);
  std::printf(
      "warm:      hit_rate=%.4f upstream=%llu stale=%llu (%.1f ms), "
      "%llu entries reloaded, %llu leases re-adopted\n",
      warm.hit_rate, static_cast<unsigned long long>(warm.upstream),
      static_cast<unsigned long long>(warm.stale), warm.elapsed_ms,
      static_cast<unsigned long long>(warm_entries),
      static_cast<unsigned long long>(readopted));

  // Generation 3: cold restart — same persistence config, wiped files.
  cache->stop();
  cache.reset();
  ::unlink((dir + "/cache-shard-0").c_str());
  cache = start_cache(*authority.value(), dir);
  const SweepResult cold = sweep(client, *cache, names);
  std::printf("cold:      hit_rate=%.4f upstream=%llu stale=%llu (%.1f ms)\n",
              cold.hit_rate, static_cast<unsigned long long>(cold.upstream),
              static_cast<unsigned long long>(cold.stale), cold.elapsed_ms);

  cache->stop();
  cache.reset();
  authority.value()->stop();
  ::unlink((dir + "/cache-shard-0").c_str());
  ::rmdir(dir.c_str());

  const double recovery =
      baseline.hit_rate > 0 ? warm.hit_rate / baseline.hit_rate : 0;
  const double burst_cut =
      cold.upstream > 0
          ? 1.0 - static_cast<double>(warm.upstream) /
                      static_cast<double>(cold.upstream)
          : 0;
  std::printf("warm recovers %.1f%% of baseline hit rate, "
              "cuts the upstream burst by %.1f%%\n",
              100 * recovery, 100 * burst_cut);

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"bench\": \"cache_restart\",\n"
      "  \"names\": %d,\n"
      "  \"baseline\": {\"hit_rate\": %.4f, \"upstream_queries\": %llu, "
      "\"stale\": %llu, \"sweep_ms\": %.1f},\n"
      "  \"warm_restart\": {\"hit_rate\": %.4f, \"upstream_queries\": %llu, "
      "\"stale\": %llu, \"sweep_ms\": %.1f,\n"
      "    \"entries_reloaded\": %llu, \"leases_before_restart\": %llu, "
      "\"leases_readopted\": %llu},\n"
      "  \"cold_restart\": {\"hit_rate\": %.4f, \"upstream_queries\": %llu, "
      "\"stale\": %llu, \"sweep_ms\": %.1f},\n"
      "  \"warm_hit_rate_recovery\": %.4f,\n"
      "  \"warm_upstream_burst_cut\": %.4f\n"
      "}\n",
      names, baseline.hit_rate,
      static_cast<unsigned long long>(baseline.upstream),
      static_cast<unsigned long long>(baseline.stale), baseline.elapsed_ms,
      warm.hit_rate, static_cast<unsigned long long>(warm.upstream),
      static_cast<unsigned long long>(warm.stale), warm.elapsed_ms,
      static_cast<unsigned long long>(warm_entries),
      static_cast<unsigned long long>(leases_before),
      static_cast<unsigned long long>(readopted), cold.hit_rate,
      static_cast<unsigned long long>(cold.upstream),
      static_cast<unsigned long long>(cold.stale), cold.elapsed_ms, recovery,
      burst_cut);
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  const bool pass = recovery >= 0.9 && warm.upstream < cold.upstream &&
                    warm.stale == 0 && baseline.stale == 0;
  return pass ? 0 : 1;
}

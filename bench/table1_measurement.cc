// Table 1: "Measurement Parameters" — the five TTL classes with their
// sampling resolutions and durations — plus a probing campaign run with
// exactly those parameters, reporting per-class domain counts and average
// change frequencies (the §3.2 headline statistics).
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "util/stats.h"
#include "workload/prober.h"

int main() {
  using namespace dnscup;
  bench::heading("Table 1: measurement parameters");

  std::printf("%-6s %-14s %-15s %-10s\n", "Class", "TTL (s)",
              "Resolution (s)", "Duration");
  const char* durations[] = {"1 day", "3 days", "7 days", "7 days",
                             "1 month"};
  for (std::size_t i = 0; i < workload::kTable1.size(); ++i) {
    const auto& p = workload::kTable1[i];
    char ttl_range[32];
    if (p.ttl_hi == 0) {
      std::snprintf(ttl_range, sizeof ttl_range, "[%u,inf)", p.ttl_lo);
    } else {
      std::snprintf(ttl_range, sizeof ttl_range, "[%u,%u)", p.ttl_lo,
                    p.ttl_hi);
    }
    std::printf("%-6d %-14s %-15.0f %-10s\n", p.ttl_class, ttl_range,
                p.resolution_s, durations[i]);
  }

  bench::subheading("campaign with Table-1 parameters (scaled 10%)");
  workload::PopulationConfig pop_config;
  pop_config.regular_per_group = 600;
  pop_config.cdn_domains = 300;
  pop_config.dyn_domains = 300;
  pop_config.seed = 2;
  const auto population = workload::DomainPopulation::generate(pop_config);

  workload::ProberConfig prober_config;
  prober_config.duration_scale = 0.1;  // keep the bench under 30 s
  prober_config.seed = 3;
  const auto results = run_probing_campaign(population, prober_config);

  // Per-class means over regular domains (the §3.2 quoted means; CDN/Dyn
  // providers are reported separately by the Figure-2 bench).
  std::map<int, util::RunningStats> freq_per_class;
  std::map<int, std::size_t> probes_per_class;
  for (const auto& r : results) {
    if (r.category != workload::DomainCategory::kRegular) continue;
    freq_per_class[r.ttl_class].add(r.change_frequency());
    probes_per_class[r.ttl_class] += r.probes;
  }
  std::printf("%-6s %-9s %-12s %-22s\n", "Class", "domains", "probes",
              "mean change frequency");
  for (const auto& [cls, stats] : freq_per_class) {
    std::printf("%-6d %-9zu %-12zu %6.2f%%\n", cls, stats.count(),
                probes_per_class[cls], 100.0 * stats.mean());
  }
  std::printf(
      "paper reference (§3.2): class means ~10%% / 8%% / 3%% / 0.1%% / "
      "0.2%%\n");
  return 0;
}

// Online lease-planner bench (src/planner): the storage/communication
// tradeoff at nameserver scale plus the cost of keeping the plan fresh.
//
// Per scale (default 1M and 10M (cache, record) pairs):
//
//   * demand table  — populate a sharded DemandShard arena with every
//     pair and measure writer upsert and reader probe throughput; the
//     table is the structure that makes 10M pairs affordable (32 B/pair,
//     zero-lock reads).
//   * tradeoff curves — sweep the storage budget (fraction of the pair
//     count) through plan_storage_constrained and the message budget
//     (fraction of the polling maximum Σλ) through plan_comm_constrained,
//     recording the paper's §5.1.2 relative metrics.  Polling and a
//     fixed-length lease ride along as baselines.
//   * incremental vs full replan — build IncrementalSlp /
//     IncrementalDeprivation one update at a time, then measure the
//     latency of random single-pair updates (p50/p99) against the cost
//     of a full batch replan over the same entries.  The ratio is the
//     case for incremental maintenance: a replan at 10M pairs costs
//     seconds, a single-pair repair costs microseconds.
//
// Demand synthesis: λ log-uniform over [1e-4, 10] q/s (the trace-derived
// spread between one-lookup-a-few-hours resolvers and hot shared caches);
// maximal leases follow the paper's record-stability mix — 90% stable
// records (6-day horizon), 5% volatile (200 s), 5% in between (6000 s).
//
// Usage: lease_planner [--pairs 1000000,10000000] [--updates 200000]
//                      [--seed 42] [--out BENCH_lease_planner.json]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dynamic_lease.h"
#include "planner/demand_table.h"
#include "planner/incremental_plan.h"
#include "util/rng.h"

namespace dnscup {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Demands {
  std::vector<core::DemandEntry> entries;
  double total_rate = 0.0;
};

double sample_rate(util::Rng& rng) {
  return std::exp(rng.uniform_real(std::log(1e-4), std::log(10.0)));
}

double sample_max_lease(util::Rng& rng) {
  const double mix = rng.uniform_real(0.0, 1.0);
  if (mix < 0.90) return 518400.0;  // stable record, 6-day horizon
  if (mix < 0.95) return 200.0;     // volatile record
  return 6000.0;
}

Demands make_demands(std::size_t pairs, util::Rng& rng) {
  Demands d;
  d.entries.reserve(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    core::DemandEntry entry;
    entry.record = i;
    entry.cache = i;
    entry.rate = sample_rate(rng);
    entry.max_lease = sample_max_lease(rng);
    d.entries.push_back(entry);
    d.total_rate += entry.rate;
  }
  return d;
}

std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

/// Demand-table leg: arena population + lock-free probe throughput.
std::string bench_table(std::size_t pairs, util::Rng& rng) {
  const int shards = 8;
  const std::size_t per_shard = pairs / shards + 1;
  std::vector<std::unique_ptr<planner::DemandShard>> table;
  for (int s = 0; s < shards; ++s) {
    table.push_back(std::make_unique<planner::DemandShard>(per_shard));
  }
  std::vector<uint64_t> keys;
  keys.reserve(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    keys.push_back(
        static_cast<uint64_t>(rng.uniform_int(1, INT64_MAX)));
  }

  const auto t0 = Clock::now();
  std::size_t inserted_count = 0;
  for (uint64_t key : keys) {
    bool inserted = false;
    auto* slot = table[(key >> 56) % shards]->upsert(key, &inserted);
    if (slot != nullptr && inserted) {
      slot->observed = 1.0f;
      ++inserted_count;
    }
  }
  const double populate_s = seconds_since(t0);

  // Reader probes over existing keys, in a scrambled order so the probe
  // pattern is cache-hostile like a live worker's.
  const std::size_t probes = std::min<std::size_t>(pairs, 2'000'000);
  uint64_t found = 0;
  const auto t1 = Clock::now();
  for (std::size_t i = 0; i < probes; ++i) {
    const uint64_t key = keys[(i * 0x9E3779B97F4A7C15ull) % keys.size()];
    found += table[(key >> 56) % shards]->find(key) != nullptr;
  }
  const double probe_s = seconds_since(t1);

  std::size_t slot_count = 0;
  for (const auto& shard : table) slot_count += shard->slot_count();
  const double bytes = static_cast<double>(slot_count) *
                       sizeof(planner::DemandShard::Slot);
  std::printf("  table: %zu pairs in %d shards (%zu slots, %.0f MiB): "
              "%.2fM upserts/s, %.2fM finds/s\n",
              inserted_count, shards, slot_count, bytes / (1 << 20),
              inserted_count / populate_s / 1e6, probes / probe_s / 1e6);
  std::string json = "      \"table\": {\"shards\": 8";
  json += ", \"inserted\": " + std::to_string(inserted_count);
  json += ", \"slot_count\": " + std::to_string(slot_count);
  json += ", \"arena_bytes\": " + std::to_string(
              static_cast<unsigned long long>(bytes));
  json += ", \"upserts_per_s\": " + fmt("%.0f", inserted_count / populate_s);
  json += ", \"finds_per_s\": " + fmt("%.0f", probes / probe_s);
  json += ", \"found\": " + std::to_string(found) + "}";
  return json;
}

/// One batch-planner sweep; returns the JSON array of curve points.
std::string sweep(const Demands& d, bool storage_mode,
                  const std::vector<double>& fractions) {
  std::string json = "[\n";
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const double frac = fractions[i];
    const double budget =
        storage_mode ? frac * static_cast<double>(d.entries.size())
                     : frac * d.total_rate;
    const auto t0 = Clock::now();
    const core::LeasePlan plan =
        storage_mode ? core::plan_storage_constrained(d.entries, budget)
                     : core::plan_comm_constrained(d.entries, budget);
    const double plan_s = seconds_since(t0);
    std::printf("  %s frac %.2f: storage %6.2f%%  messages %6.2f%% "
                "(batch plan %.2f s)\n",
                storage_mode ? "storage" : "   comm", frac,
                plan.storage_percentage, plan.query_rate_percentage, plan_s);
    json += "        {\"budget_frac\": " + fmt("%.2f", frac);
    json += ", \"budget\": " + fmt("%.4f", budget);
    json += ", \"storage_pct\": " + fmt("%.4f", plan.storage_percentage);
    json += ", \"message_pct\": " + fmt("%.4f", plan.query_rate_percentage);
    json += ", \"message_rate\": " + fmt("%.4f", plan.total_message_rate);
    json += ", \"plan_s\": " + fmt("%.4f", plan_s) + "}";
    if (i + 1 < fractions.size()) json += ",";
    json += "\n";
  }
  json += "      ]";
  return json;
}

/// Incremental-planner leg: build cost, single-update p50/p99, replan.
std::string bench_incremental(const Demands& d, bool storage_mode,
                              std::size_t updates, util::Rng& rng) {
  const double budget =
      storage_mode ? 0.2 * static_cast<double>(d.entries.size())
                   : 0.5 * d.total_rate;
  std::unique_ptr<planner::IncrementalPlanner> inc;
  if (storage_mode) {
    inc = std::make_unique<planner::IncrementalSlp>(d.entries.size(), budget);
  } else {
    inc = std::make_unique<planner::IncrementalDeprivation>(d.entries.size(),
                                                            budget);
  }

  std::vector<uint32_t> dirty;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < d.entries.size(); ++i) {
    dirty.clear();
    inc->update(static_cast<uint32_t>(i), d.entries[i].rate,
                d.entries[i].max_lease, &dirty);
  }
  const double build_s = seconds_since(t0);

  // Random single-pair demand changes against the fully loaded planner.
  std::vector<int64_t> latencies_ns;
  latencies_ns.reserve(updates);
  for (std::size_t i = 0; i < updates; ++i) {
    const auto id = static_cast<uint32_t>(
        rng.uniform_int(0, static_cast<int64_t>(d.entries.size()) - 1));
    const double rate = sample_rate(rng);
    const double max_lease = d.entries[id].max_lease;
    dirty.clear();
    const auto start = Clock::now();
    inc->update(id, rate, max_lease, &dirty);
    latencies_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
  }
  std::sort(latencies_ns.begin(), latencies_ns.end());
  const int64_t p50 = latencies_ns[latencies_ns.size() / 2];
  const int64_t p99 = latencies_ns[latencies_ns.size() * 99 / 100];

  const auto t1 = Clock::now();
  inc->replan();
  const double replan_s = seconds_since(t1);

  std::printf("  incremental %s: build %.2f s, update p50 %lld ns "
              "p99 %lld ns, full replan %.2f s (%.0fx a p99 update)\n",
              storage_mode ? "slp" : "deprivation", build_s,
              static_cast<long long>(p50), static_cast<long long>(p99),
              replan_s, replan_s * 1e9 / static_cast<double>(p99));
  std::string json = "{";
  json += "\"budget\": " + fmt("%.4f", budget);
  json += ", \"build_s\": " + fmt("%.4f", build_s);
  json += ", \"updates\": " + std::to_string(updates);
  json += ", \"update_p50_ns\": " + std::to_string(p50);
  json += ", \"update_p99_ns\": " + std::to_string(p99);
  json += ", \"replan_s\": " + fmt("%.4f", replan_s);
  json += ", \"granted\": " + std::to_string(inc->granted());
  json += ", \"cost_used\": " + fmt("%.4f", inc->cost_used()) + "}";
  return json;
}

}  // namespace
}  // namespace dnscup

int main(int argc, char** argv) {
  using namespace dnscup;

  std::vector<std::size_t> scales = {1'000'000, 10'000'000};
  std::size_t updates = 200'000;
  uint64_t seed = 42;
  std::string out_path = "BENCH_lease_planner.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--pairs") == 0) {
      scales.clear();
      const char* p = argv[i + 1];
      while (*p != '\0') {
        scales.push_back(static_cast<std::size_t>(std::atoll(p)));
        const char* comma = std::strchr(p, ',');
        if (comma == nullptr) break;
        p = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--updates") == 0) {
      updates = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<uint64_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = argv[i + 1];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  bench::heading("online lease planner: table, tradeoff curves, "
                 "incremental vs replan");
  const std::vector<double> fractions = {0.02, 0.05, 0.1, 0.2,
                                         0.4,  0.6,  0.8};

  std::string json = "{\n  \"bench\": \"lease_planner\",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  \"rate_distribution\": \"log-uniform 1e-4..10 qps\",\n";
  json += "  \"max_lease_mix\": \"90% 518400s, 5% 200s, 5% 6000s\",\n";
  json += "  \"scales\": [\n";

  bool first = true;
  for (std::size_t pairs : scales) {
    bench::subheading(std::to_string(pairs) + " pairs");
    util::Rng rng(seed);
    const Demands d = make_demands(pairs, rng);
    std::printf("  Σλ = %.0f q/s over %zu pairs\n", d.total_rate,
                d.entries.size());

    if (!first) json += ",\n";
    first = false;
    json += "    {\n      \"pairs\": " + std::to_string(pairs) + ",\n";
    json += "      \"total_rate_qps\": " + fmt("%.2f", d.total_rate) + ",\n";
    json += bench_table(pairs, rng) + ",\n";
    json += "      \"storage_curve\": " + sweep(d, true, fractions) + ",\n";
    json += "      \"comm_curve\": " + sweep(d, false, fractions) + ",\n";

    const core::LeasePlan polling = core::plan_polling(d.entries);
    const core::LeasePlan fixed = core::plan_fixed(d.entries, 3600.0);
    std::printf("  baselines: polling %.0f msg/s; fixed 3600 s storage "
                "%.2f%% messages %.2f%%\n",
                polling.total_message_rate, fixed.storage_percentage,
                fixed.query_rate_percentage);
    json += "      \"polling_message_rate\": " +
            fmt("%.4f", polling.total_message_rate) + ",\n";
    json += "      \"fixed_3600\": {\"storage_pct\": " +
            fmt("%.4f", fixed.storage_percentage) + ", \"message_pct\": " +
            fmt("%.4f", fixed.query_rate_percentage) + "},\n";

    json += "      \"incremental_slp\": " +
            bench_incremental(d, true, updates, rng) + ",\n";
    json += "      \"incremental_deprivation\": " +
            bench_incremental(d, false, updates, rng) + "\n    }";
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nresult written to %s\n", out_path.c_str());
  return 0;
}

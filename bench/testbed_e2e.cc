// §5.2 prototype observations, reproduced on the Figure-7 testbed (root +
// master + two slaves + two caches, 40 zones from the most popular
// domains):
//   * "all message sizes are far below the limitation of 512 bytes";
//   * the cache-update path works end-to-end (grant -> change -> push ->
//     ack) over the simulated LAN.
#include <cstdio>

#include "bench_util.h"
#include "sim/testbed.h"

int main(int argc, char** argv) {
  using namespace dnscup;
  const std::string metrics_out = bench::metrics_out_arg(argc, argv);
  bench::heading("Prototype testbed (Figure 7): 40 zones, 2 caches, 2 slaves");

  sim::TestbedConfig config;
  config.zones = 40;
  config.caches = 2;
  config.slaves = 2;
  config.record_ttl = 300;
  config.max_lease = net::hours(24);
  config.seed = 9;
  sim::Testbed tb(config);

  // Bootstrap the slaves with every zone (AXFR chunked under 512 B).
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t z = 0; z < config.zones; ++z) {
      tb.slave(s).request_transfer(tb.zone_origin(z));
    }
  }
  tb.loop().run_for(net::seconds(10));

  // Both caches resolve (and lease) every zone's web host.
  std::size_t resolved = 0;
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t z = 0; z < config.zones; ++z) {
      const auto r = tb.resolve(c, tb.web_host(z), dns::RRType::kA);
      if (r.has_value() &&
          r->status == server::CachingResolver::Outcome::Status::kOk) {
        ++resolved;
      }
    }
  }
  std::printf("resolutions: %zu/80 ok\n", resolved);

  // Repoint every web host: the DNScup path pushes 80 cache updates.
  for (std::size_t z = 0; z < config.zones; ++z) {
    tb.repoint_web_host(
        z, dns::Ipv4{net::make_ip(198, 18, 10, 0) +
                     static_cast<uint32_t>(z)});
  }
  tb.loop().run_for(net::seconds(10));

  // Verify every cache converged.
  std::size_t consistent = 0;
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t z = 0; z < config.zones; ++z) {
      const auto r = tb.resolve(c, tb.web_host(z), dns::RRType::kA);
      if (r.has_value() && !r->rrset.empty() &&
          std::get<dns::ARdata>(r->rrset.rdatas[0]).address.addr ==
              net::make_ip(198, 18, 10, 0) + static_cast<uint32_t>(z)) {
        ++consistent;
      }
    }
  }

  const auto& notifier = tb.dnscup()->notifier().stats();
  const auto& listener = tb.dnscup()->listener().stats();
  bench::subheading("protocol activity");
  std::printf("leases granted:        %llu\n",
              static_cast<unsigned long long>(listener.leases_granted));
  std::printf("cache updates sent:    %llu\n",
              static_cast<unsigned long long>(notifier.updates_sent));
  std::printf("acks received:         %llu\n",
              static_cast<unsigned long long>(notifier.acks_received));
  std::printf("retransmissions:       %llu\n",
              static_cast<unsigned long long>(notifier.retransmissions));
  std::printf("mean push->ack (ms):   %.2f\n",
              notifier.ack_latency_us.mean() / 1000.0);
  std::printf("caches consistent:     %zu/80\n", consistent);

  bench::subheading("message-size audit (paper: all below 512 bytes)");
  std::printf("largest datagram on the wire: %zu bytes (limit %zu)  %s\n",
              tb.network().max_packet_bytes(), dns::kMaxUdpPayload,
              tb.network().max_packet_bytes() <= dns::kMaxUdpPayload
                  ? "PASS"
                  : "FAIL");
  std::printf("total datagrams delivered:    %llu\n",
              static_cast<unsigned long long>(
                  tb.network().packets_delivered()));
  bench::write_snapshot(tb.metrics_snapshot(), metrics_out);
  return consistent == 80 ? 0 : 1;
}

// Figure 4: "The mean of CV of query interval in DNS traces" — for each of
// the three local nameservers, the mean coefficient of variation of
// per-domain query inter-arrival times as a function of the client-side
// caching period, with 95% confidence intervals.  CV -> 1 validates the
// Poisson assumption underlying the §4.1 lease model.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "sim/trace_gen.h"
#include "util/stats.h"
#include "workload/domain_population.h"

namespace {

using namespace dnscup;

/// Mean CV (and its 95% CI) of per-domain inter-arrival times at one
/// nameserver.
struct CvResult {
  double mean = 0.0;
  double ci95 = 0.0;
};

CvResult mean_cv(const std::vector<sim::TraceRecord>& trace, uint16_t ns) {
  // Per-domain interval stats.
  std::map<std::string, std::pair<net::SimTime, util::RunningStats>> per_domain;
  for (const auto& r : trace) {
    if (r.nameserver != ns) continue;
    auto& [last, stats] = per_domain[r.qname.to_string()];
    if (stats.count() > 0 || last != 0) {
      stats.add(net::to_seconds(r.timestamp - last));
    }
    last = r.timestamp;
  }
  util::RunningStats cvs;
  for (const auto& [name, entry] : per_domain) {
    const auto& stats = entry.second;
    if (stats.count() >= 30) cvs.add(stats.cv());
  }
  return {cvs.mean(), cvs.ci95_halfwidth()};
}

}  // namespace

int main() {
  bench::heading("Figure 4: mean of CV of query interval vs caching period");

  workload::PopulationConfig pop_config;
  pop_config.regular_per_group = 100;
  pop_config.cdn_domains = 60;
  pop_config.dyn_domains = 40;
  pop_config.seed = 4;
  const auto population = workload::DomainPopulation::generate(pop_config);

  const double caching_periods[] = {1, 10, 100, 900, 3600, 10000};

  std::printf("%-12s %-22s %-22s %-22s\n", "cache (s)", "NS I (mean, ci95)",
              "NS II (mean, ci95)", "NS III (mean, ci95)");
  for (double period : caching_periods) {
    sim::TraceGenConfig config;
    config.nameservers = 3;
    config.clients = 300;
    config.duration_s = 86400.0;  // one day per sweep point
    config.client_cache_s = period;
    config.sessions_per_client_hour = 20.0;
    config.burst_queries_mean = 1.6;  // page loads re-resolve the domain
    config.seed = 40 + static_cast<uint64_t>(period);
    const auto trace = generate_trace(population, config);

    std::printf("%-12.0f", period);
    for (uint16_t ns = 0; ns < 3; ++ns) {
      const CvResult r = mean_cv(trace, ns);
      std::printf(" %6.3f +/- %-11.3f", r.mean, r.ci95);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper reference: mean CV approaches 1 as the client caching\n"
      "period grows (intervals become Poisson), with very small 95%% CIs\n"
      "at all three nameservers.\n");
  return 0;
}

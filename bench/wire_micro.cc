// Wire hot-path micro-benchmark: encode/decode throughput and — via a
// counting global allocator — heap traffic per operation.  The refactor's
// contract is that arena-backed encode and view-based decode allocate
// nothing in steady state; this bench measures it and emits the numbers
// as JSON (BENCH_wire_micro.json) so regressions show up as a diff.
//
//   build/bench/wire_micro [--out BENCH_wire_micro.json]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "dns/message.h"
#include "dns/name.h"
#include "dns/rdata.h"
#include "dns/wire.h"
#include "util/assert.h"

namespace {
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_alloc_bytes{0};
}  // namespace

// Counting allocator: every heap allocation in the process ticks the
// counters.  Frees are uncounted — the bench reports allocation traffic,
// not live bytes.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dnscup {
namespace {

using dns::Message;
using dns::Name;
using dns::RRClass;
using dns::RRType;

struct BenchResult {
  double ops_per_sec = 0.0;
  double allocs_per_op = 0.0;
  double bytes_per_op = 0.0;
};

template <typename Fn>
BenchResult run_bench(const char* name, std::size_t iters, Fn&& fn) {
  for (std::size_t i = 0; i < 2000; ++i) fn();  // warm arenas and caches
  const uint64_t allocs0 = g_allocs.load();
  const uint64_t bytes0 = g_alloc_bytes.load();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  const uint64_t allocs1 = g_allocs.load();
  const uint64_t bytes1 = g_alloc_bytes.load();
  const double secs =
      std::chrono::duration<double>(t1 - t0).count();
  BenchResult r;
  r.ops_per_sec = static_cast<double>(iters) / secs;
  r.allocs_per_op =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(iters);
  r.bytes_per_op =
      static_cast<double>(bytes1 - bytes0) / static_cast<double>(iters);
  std::printf("%-24s %12.0f ops/s  %8.3f allocs/op  %10.1f bytes/op\n",
              name, r.ops_per_sec, r.allocs_per_op, r.bytes_per_op);
  return r;
}

/// A representative response: one question, a 4-member A RRset and an
/// SOA in authority — compression-heavy names under one origin.
Message make_message() {
  Message m;
  m.id = 0x1234;
  m.flags.qr = true;
  m.flags.aa = true;
  m.questions.push_back(dns::Question{
      Name::parse("www.cdn.example.com").value(), RRType::kA, RRClass::kIN,
      0});
  for (uint32_t i = 0; i < 4; ++i) {
    m.answers.push_back(dns::ResourceRecord{
        Name::parse("www.cdn.example.com").value(), RRClass::kIN, 300,
        dns::ARdata{dns::Ipv4{.addr = 0x0A000001 + i}}});
  }
  m.authority.push_back(dns::ResourceRecord{
      Name::parse("example.com").value(), RRClass::kIN, 300,
      dns::SOARdata{Name::parse("ns1.example.com").value(),
                    Name::parse("admin.example.com").value(), 1, 7200, 900,
                    604800, 300}});
  return m;
}

void append_json(std::string& out, const char* key, const BenchResult& r,
                 bool last) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  \"%s\": {\"ops_per_sec\": %.0f, \"allocs_per_op\": %.4f, "
                "\"bytes_allocated_per_op\": %.1f}%s\n",
                key, r.ops_per_sec, r.allocs_per_op, r.bytes_per_op,
                last ? "" : ",");
  out += buf;
}

int run(int argc, char** argv) {
  std::string out_path = "BENCH_wire_micro.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }

  const Message message = make_message();
  const std::vector<uint8_t> wire = message.encode();
  std::printf("message: %zu wire bytes, %zu answers\n\n", wire.size(),
              message.answers.size());
  constexpr std::size_t kIters = 200000;

  // Arena encode: the steady-state tx path (AuthServer::encode_scratch).
  std::vector<uint8_t> arena;
  const BenchResult encode_arena =
      run_bench("encode (arena)", kIters, [&message, &arena] {
        arena.clear();
        dns::ByteWriter w(arena);
        message.encode_into(w);
        DNSCUP_ASSERT(!w.message().empty());
      });

  // Owning encode: the old per-response-vector path, for comparison.
  const BenchResult encode_owning =
      run_bench("encode (owning)", kIters, [&message] {
        const std::vector<uint8_t> bytes = message.encode();
        DNSCUP_ASSERT(!bytes.empty());
      });

  // View decode: structural parse only — what the serve fast path does.
  // The view is reused across iterations (parse_into), so its section
  // vectors keep their capacity and a warm parse never allocates.
  dns::MessageView view;
  const BenchResult decode_view =
      run_bench("decode (view)", kIters, [&wire, &view] {
        const auto st = dns::MessageView::parse_into(wire, view);
        DNSCUP_ASSERT(st.ok());
        DNSCUP_ASSERT(view.answers.size() == 4);
      });

  // Owning decode: full materialization (cold paths, tests).
  const BenchResult decode_owning =
      run_bench("decode (owning)", kIters, [&wire] {
        auto decoded = Message::decode(wire);
        DNSCUP_ASSERT(decoded.ok());
      });

  // The refactor's contract: arena encode and view decode are
  // allocation-free in steady state.
  if (encode_arena.allocs_per_op > 0.0 || decode_view.allocs_per_op > 0.0) {
    std::fprintf(stderr,
                 "FAIL: steady-state hot path allocated (encode %.4f/op, "
                 "decode view %.4f/op)\n",
                 encode_arena.allocs_per_op, decode_view.allocs_per_op);
    return 1;
  }
  std::printf("\nhot path steady-state allocations: 0 (contract holds)\n");

  std::string json = "{\n  \"bench\": \"wire_micro\",\n";
  char sized[128];
  std::snprintf(sized, sizeof sized, "  \"wire_bytes\": %zu,\n", wire.size());
  json += sized;
  append_json(json, "encode_arena", encode_arena, false);
  append_json(json, "encode_owning", encode_owning, false);
  append_json(json, "decode_view", decode_view, false);
  append_json(json, "decode_owning", decode_owning, true);
  json += "}\n";
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dnscup

int main(int argc, char** argv) { return dnscup::run(argc, argv); }

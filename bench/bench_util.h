// Shared helpers for the reproduction benches: fixed-width table printing
// and curve interpolation.  Every bench prints the series a paper figure
// plots (or the rows of a table), plus the paper's published reference
// values where the text quotes them, so EXPERIMENTS.md can record
// paper-vs-measured side by side.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace dnscup::bench {

inline void heading(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
}

/// Extracts a `--metrics-out <file>` argument; empty when absent.
inline std::string metrics_out_arg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0) return argv[i + 1];
  }
  return {};
}

/// Writes the snapshot's JSON to `path`; no-op when `path` is empty.
inline void write_snapshot(const metrics::Snapshot& snapshot,
                           const std::string& path) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  const std::string json = snapshot.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nmetrics snapshot (%zu instruments) written to %s\n",
              snapshot.entries.size(), path.c_str());
}

/// An x-sorted polyline; interpolates y at arbitrary x (clamped ends).
class Curve {
 public:
  void add(double x, double y) { points_.push_back({x, y}); }

  void sort() {
    std::sort(points_.begin(), points_.end());
  }

  double y_at(double x) const {
    if (points_.empty()) return 0.0;
    if (x <= points_.front().first) return points_.front().second;
    if (x >= points_.back().first) return points_.back().second;
    for (std::size_t i = 1; i < points_.size(); ++i) {
      if (points_[i].first >= x) {
        const auto [x0, y0] = points_[i - 1];
        const auto [x1, y1] = points_[i];
        if (x1 == x0) return y0;
        return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
      }
    }
    return points_.back().second;
  }

  /// x where y first crosses `y` (curves assumed monotone); clamped.
  double x_at(double y) const {
    if (points_.empty()) return 0.0;
    const bool decreasing = points_.back().second < points_.front().second;
    for (std::size_t i = 1; i < points_.size(); ++i) {
      const auto [x0, y0] = points_[i - 1];
      const auto [x1, y1] = points_[i];
      const bool crosses =
          decreasing ? (y0 >= y && y >= y1) : (y0 <= y && y <= y1);
      if (crosses) {
        if (y1 == y0) return x0;
        return x0 + (x1 - x0) * (y - y0) / (y1 - y0);
      }
    }
    return points_.back().first;
  }

  const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<double, double>> points_;
};

}  // namespace dnscup::bench

// CDN load balancing — the paper's motivating scenario #3 (§1): TTL-based
// DNS redirection "only supports a coarse-grained load-balance, and is
// unable to support quick reaction to network failures or flash crowds".
//
// A CDN serves one hostname from three replicas and rebalances by
// repointing the record.  Mid-run, replica 1 is hit by a flash crowd and
// the CDN shifts traffic to replicas 2 and 3.  With a 300-second TTL the
// caches keep sending clients to the overloaded replica for minutes;
// DNScup retargets them in a round trip.
//
// Run: ./build/examples/cdn_load_balance
#include <cstdio>
#include <map>

#include "sim/testbed.h"

using namespace dnscup;

namespace {

struct RunResult {
  // Requests landing on each replica during the 10 minutes after the
  // flash-crowd response started.
  std::map<uint32_t, int> hits_after_shift;
  uint64_t packets = 0;
};

RunResult run(bool dnscup_enabled) {
  sim::TestbedConfig config;
  config.zones = 1;
  config.caches = 2;
  config.record_ttl = 300;  // typical CDN-edge TTL class
  config.max_lease = net::seconds(200);  // paper's CDN maximal lease
  config.dnscup_enabled = dnscup_enabled;
  sim::Testbed tb(config);

  const dns::Ipv4 replica1 = dns::Ipv4::parse("198.51.100.1").value();
  const dns::Ipv4 replica2 = dns::Ipv4::parse("198.51.100.2").value();
  const dns::Ipv4 replica3 = dns::Ipv4::parse("198.51.100.3").value();
  tb.repoint_web_host(0, replica1);  // all traffic on replica 1 initially

  // Warm both caches.
  tb.resolve(0, tb.web_host(0), dns::RRType::kA);
  tb.resolve(1, tb.web_host(0), dns::RRType::kA);

  // t = 60 s: flash crowd on replica 1 -> rebalance to 2 (and 3 later).
  tb.loop().run_until(net::seconds(60));
  tb.repoint_web_host(0, replica2);
  // DNScup caches renew ~every 200 s lease; to keep the comparison fair
  // both runs use the same client probing pattern below.

  RunResult result;
  const net::SimTime shift_time = tb.loop().now();
  int step = 0;
  while (tb.loop().now() < shift_time + net::minutes(10)) {
    for (std::size_t c = 0; c < 2; ++c) {
      const auto r = tb.resolve(c, tb.web_host(0), dns::RRType::kA);
      if (r.has_value() && !r->rrset.empty()) {
        ++result.hits_after_shift[std::get<dns::ARdata>(
                                      r->rrset.rdatas.front())
                                      .address.addr];
      }
    }
    // Halfway through, spread further onto replica 3.
    if (++step == 30) tb.repoint_web_host(0, replica3);
    tb.loop().run_until(tb.loop().now() + net::seconds(10));
  }
  result.packets = tb.network().packets_delivered();
  return result;
}

void report(const char* label, const RunResult& r) {
  int total = 0;
  for (const auto& [addr, hits] : r.hits_after_shift) total += hits;
  std::printf("%-8s", label);
  for (const char* suffix : {".1", ".2", ".3"}) {
    const uint32_t addr =
        dns::Ipv4::parse(std::string("198.51.100") + suffix).value().addr;
    auto it = r.hits_after_shift.find(addr);
    const int hits = it == r.hits_after_shift.end() ? 0 : it->second;
    std::printf("  replica%s: %3d (%4.1f%%)", suffix, hits,
                total == 0 ? 0.0 : 100.0 * hits / total);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== CDN flash crowd: shift traffic off replica 1 ==\n");
  std::printf(
      "TTL 300 s; rebalance to replica 2 at t=60s, replica 3 at +5min;\n"
      "client requests probed every 10 s for 10 minutes after the shift\n\n");

  const RunResult ttl = run(false);
  const RunResult dnscup = run(true);

  std::printf("requests landing on each replica AFTER the rebalance:\n");
  report("TTL", ttl);
  report("DNScup", dnscup);

  std::printf(
      "\nunder TTL the overloaded replica keeps receiving traffic until\n"
      "cached records expire; DNScup retargets both caches immediately,\n"
      "giving the CDN the fine-grained, fast control §1 calls for.\n");
  return 0;
}

// Trace-driven lease planning — the §5.1 pipeline in miniature.
//
// Synthesizes an "academic environment" DNS trace (three local
// nameservers, clients with 15-minute browser caches), extracts
// per-(nameserver, domain) query rates from the first day exactly as the
// paper does, then runs both dynamic-lease optimizers and the baselines
// and prints the cost table.
//
// Run: ./build/examples/trace_simulation [clients] [hours]
#include <cstdio>
#include <cstdlib>

#include "core/dynamic_lease.h"
#include "sim/lease_sim.h"
#include "sim/rates.h"
#include "sim/trace_gen.h"

using namespace dnscup;

int main(int argc, char** argv) {
  const uint32_t clients =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 500;
  const double hours = argc > 2 ? std::atof(argv[2]) : 24.0;

  std::printf("== Trace-driven lease planning (%u clients, %.0f h) ==\n\n",
              clients, hours);

  workload::PopulationConfig pop_config;
  pop_config.regular_per_group = 1000;
  pop_config.cdn_domains = 300;
  pop_config.dyn_domains = 300;
  pop_config.seed = 1;
  const auto population = workload::DomainPopulation::generate(pop_config);

  sim::TraceGenConfig trace_config;
  trace_config.nameservers = 3;
  trace_config.clients = clients;
  trace_config.duration_s = hours * 3600.0;
  trace_config.client_cache_s = 900.0;  // Mozilla default, per the paper
  trace_config.sessions_per_client_hour = 4.0;
  trace_config.seed = 2;
  const auto trace = generate_trace(population, trace_config);
  std::printf("trace: %zu queries across 3 nameservers\n", trace.size());

  const auto rates = sim::compute_rates(trace, trace_config.duration_s);
  const auto demands = sim::compute_demands(population, rates);
  std::printf("demand pairs (nameserver x domain): %zu\n\n", demands.size());

  // ---- plans ---------------------------------------------------------------
  const auto polling = core::plan_polling(demands);
  const auto fixed = core::plan_fixed(demands, 3600.0);
  const double budget = fixed.total_storage;  // equal-storage comparison
  const auto dynamic = core::plan_storage_constrained(demands, budget);
  const auto comm = core::plan_comm_constrained(
      demands, polling.total_message_rate * 0.25);

  std::printf("%-26s %12s %12s %12s %12s\n", "scheme", "storage",
              "storage %", "msg rate", "query %");
  auto row = [](const char* name, const core::LeasePlan& plan) {
    std::printf("%-26s %12.1f %11.1f%% %12.3f %11.1f%%\n", name,
                plan.total_storage, plan.storage_percentage,
                plan.total_message_rate, plan.query_rate_percentage);
  };
  row("polling (TTL only)", polling);
  row("fixed lease (1 h)", fixed);
  row("dynamic, storage-constr.", dynamic);
  row("dynamic, comm-constr.", comm);

  // ---- validate the headline plan by event-driven replay --------------------
  const auto replay =
      sim::simulate_leases(demands, dynamic.lengths, 4 * 3600.0, 3);
  std::printf(
      "\nevent-driven replay of the storage-constrained plan (4 h):\n"
      "  mean live leases %.1f (analytic steady state %.1f), message rate "
      "%.3f/s (analytic %.3f/s)\n"
      "  (the replay is far shorter than the 6-day maximal lease, so the\n"
      "   live-lease count is still ramping toward steady state)\n",
      replay.mean_live_leases, dynamic.total_storage, replay.message_rate,
      dynamic.total_message_rate);

  std::printf(
      "\nat the same storage, the dynamic lease cuts the message rate from\n"
      "%.3f/s (fixed) to %.3f/s — the Figure-5 effect on this trace.\n",
      fixed.total_message_rate, dynamic.total_message_rate);
  return 0;
}

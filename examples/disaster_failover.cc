// Disaster failover — the paper's motivating scenario #1 (§1): "sudden
// and dramatic Internet failures caused by natural and human disasters",
// where a service must be redirected to a backup site immediately.
//
// A popular site has a one-day TTL (normal for stable records).  At
// t = 1 h its primary datacenter fails and the operator repoints it to a
// backup.  We run the same timeline twice on the Figure-7 testbed — with
// DNScup and with plain TTL — and compare how long clients keep being
// sent to the dead address.
//
// Run: ./build/examples/disaster_failover
#include <cstdio>

#include "sim/testbed.h"

using namespace dnscup;
using Outcome = server::CachingResolver::Outcome;

namespace {

struct RunResult {
  net::Duration staleness = 0;  // how long the cache served the dead site
  uint64_t packets = 0;
};

RunResult run(bool dnscup_enabled) {
  sim::TestbedConfig config;
  config.zones = 1;
  config.caches = 1;
  config.record_ttl = 86400;  // one day, per the paper's stable-record norm
  config.max_lease = net::hours(12);
  config.dnscup_enabled = dnscup_enabled;
  sim::Testbed tb(config);

  // Clients have been using the site, so the mapping is cached (and, with
  // DNScup, leased).
  const auto initial = tb.resolve(0, tb.web_host(0), dns::RRType::kA);
  const auto old_address =
      std::get<dns::ARdata>(initial->rrset.rdatas.front()).address;

  // t = 1 h: disaster.  The operator repoints to the backup site.
  tb.loop().run_until(net::hours(1));
  const dns::Ipv4 backup = dns::Ipv4::parse("203.0.113.99").value();
  tb.repoint_web_host(0, backup);

  // Probe the cache once a minute until it hands out the backup address.
  RunResult result;
  for (int minute = 0;; ++minute) {
    const auto r = tb.resolve(0, tb.web_host(0), dns::RRType::kA);
    const auto got = std::get<dns::ARdata>(r->rrset.rdatas.front()).address;
    if (got == backup) {
      result.staleness = tb.loop().now() - net::hours(1);
      break;
    }
    if (got == old_address && minute > 48 * 60) break;  // give up: 2 days
    tb.loop().run_until(tb.loop().now() + net::minutes(1));
  }
  result.packets = tb.network().packets_delivered();
  return result;
}

}  // namespace

int main() {
  std::printf("== Disaster failover: redirect to backup site ==\n\n");
  std::printf("record TTL: 1 day; failure at t=1h; backup at 203.0.113.99\n\n");

  const RunResult with_ttl = run(false);
  const RunResult with_dnscup = run(true);

  std::printf("%-12s %-28s %-10s\n", "scheme", "clients sent to dead site",
              "packets");
  std::printf("%-12s %-28s %-10llu\n", "TTL",
              (std::to_string(with_ttl.staleness / net::minutes(1)) +
               " minutes after failure")
                  .c_str(),
              static_cast<unsigned long long>(with_ttl.packets));
  std::printf("%-12s %-28s %-10llu\n", "DNScup",
              (std::to_string(with_dnscup.staleness / net::seconds(1)) +
               " seconds after failure")
                  .c_str(),
              static_cast<unsigned long long>(with_dnscup.packets));

  std::printf(
      "\nwith plain TTL the cached mapping stays poisoned for up to the\n"
      "full TTL (here ~%lld minutes observed); DNScup invalidates it in\n"
      "about a round trip — the service-availability argument of §1.\n",
      static_cast<long long>(with_ttl.staleness / net::minutes(1)));
  return 0;
}

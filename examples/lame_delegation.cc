// Lame-delegation prevention — the paper's §1 side application of
// DNScup: keeping a parent zone's view of its child zones consistent.
//
// A child zone migrates its nameserver (new name + address).  Without
// coordination the parent keeps delegating to the dead server — the
// "lame delegation" misconfiguration Pappas et al. measured across the
// real DNS.  The DelegationGuard applies DNScup's change-detection
// machinery to the parent-child relationship: the parent's NS + glue
// records follow the child's apex automatically.
//
// Run: ./build/examples/lame_delegation
#include <cstdio>

#include "core/delegation_audit.h"
#include "net/sim_network.h"
#include "server/update.h"

using namespace dnscup;
using dns::Name;
using dns::RRType;

namespace {

Name mk(const char* text) { return Name::parse(text).value(); }
dns::Ipv4 ip(const char* text) { return dns::Ipv4::parse(text).value(); }

void report(const char* when, const dns::Zone& parent,
            const dns::Zone& child) {
  const auto findings = core::audit_delegation(parent, child);
  if (findings.empty()) {
    std::printf("%s: delegation consistent\n", when);
    return;
  }
  std::printf("%s: delegation LAME —\n", when);
  for (const auto& f : findings) {
    std::printf("  [%s] %s: %s\n", core::to_string(f.issue),
                f.subject.to_string().c_str(), f.detail.c_str());
  }
}

}  // namespace

int main() {
  std::printf("== Lame delegation prevention via DNScup ==\n\n");

  net::EventLoop loop;
  net::SimNetwork network(loop, 1);
  server::AuthServer parent(network.bind({net::make_ip(10, 0, 0, 1), 53}),
                            loop);
  server::AuthServer child(network.bind({net::make_ip(10, 0, 1, 1), 53}),
                           loop);

  // Parent: the .com zone delegating example.com.
  dns::SOARdata parent_soa;
  parent_soa.mname = mk("a.gtld.net");
  parent_soa.rname = mk("admin.gtld.net");
  parent_soa.serial = 1;
  dns::Zone com = dns::Zone::make(mk("com"), parent_soa, 86400,
                                  {mk("a.gtld.net")}, 86400);
  com.add_record(mk("example.com"), RRType::kNS, 86400,
                 dns::NSRdata{mk("ns1.example.com")});
  com.add_record(mk("ns1.example.com"), RRType::kA, 86400,
                 dns::ARdata{ip("10.0.1.1")});
  parent.add_zone(std::move(com));

  // Child: example.com.
  dns::SOARdata child_soa;
  child_soa.mname = mk("ns1.example.com");
  child_soa.rname = mk("admin.example.com");
  child_soa.serial = 1;
  dns::Zone example = dns::Zone::make(mk("example.com"), child_soa, 3600,
                                      {mk("ns1.example.com")}, 3600);
  example.add_record(mk("ns1.example.com"), RRType::kA, 3600,
                     dns::ARdata{ip("10.0.1.1")});
  child.add_zone(std::move(example));

  auto parent_zone = [&] { return parent.find_zone(mk("x.example.com")); };
  auto child_zone = [&] { return child.find_zone(mk("x.example.com")); };
  report("initial state", *parent_zone(), *child_zone());

  // Attach the guard (the DNScup application).
  core::DelegationGuard guard(parent, child, mk("example.com"));

  // The child migrates its nameserver via dynamic update.
  std::printf("\nchild migrates: ns1.example.com -> ns2.example.com "
              "(10.0.1.2)\n\n");
  const dns::Message update =
      server::UpdateBuilder(mk("example.com"))
          .add(mk("example.com"), 3600, dns::NSRdata{mk("ns2.example.com")})
          .add(mk("ns2.example.com"), 3600, dns::ARdata{ip("10.0.1.2")})
          .delete_record(mk("example.com"),
                         dns::NSRdata{mk("ns1.example.com")})
          .build(1);
  child.apply_update(update);

  report("after migration (guard active)", *parent_zone(), *child_zone());
  std::printf("guard performed %llu sync(s); parent zone serial bumped to "
              "%u\n",
              static_cast<unsigned long long>(guard.syncs()),
              parent_zone()->serial());

  // For contrast: what the audit finds when the guard is absent.
  std::printf("\n-- counterfactual without the guard --\n");
  dns::Zone stale_parent = dns::Zone::make(mk("com"), parent_soa, 86400,
                                           {mk("a.gtld.net")}, 86400);
  stale_parent.add_record(mk("example.com"), RRType::kNS, 86400,
                          dns::NSRdata{mk("ns1.example.com")});
  stale_parent.add_record(mk("ns1.example.com"), RRType::kA, 86400,
                          dns::ARdata{ip("10.0.1.1")});
  report("unguarded parent", stale_parent, *child_zone());
  return 0;
}

// Dynamic DNS — the paper's motivating scenario #2 (§1): a host on a
// DHCP-assigned address (home server / mobile device) whose mapping
// changes frequently.
//
// Classic providers cope by setting tiny TTLs (60 s), so every cache
// refetches the record every minute whether or not it changed — the
// redundant-traffic problem §3.2 quantifies at 10-25x.  DNScup instead
// grants a lease and pushes only actual changes.
//
// We simulate a host renumbering on average once an hour for a day, with
// a cache whose clients query it steadily, and compare upstream traffic
// and freshness under the two schemes.
//
// Run: ./build/examples/dynamic_dns
#include <cstdio>

#include "sim/testbed.h"
#include "util/rng.h"

using namespace dnscup;

namespace {

struct RunResult {
  uint64_t upstream_queries = 0;
  uint64_t pushes = 0;
  uint64_t stale_answers = 0;
  uint64_t total_answers = 0;
};

RunResult run(bool dnscup_enabled) {
  sim::TestbedConfig config;
  config.zones = 1;
  config.caches = 1;
  config.record_ttl = 60;  // DynDNS-style aggressive TTL
  config.max_lease = net::seconds(6000);  // paper's Dyn maximal lease
  config.dnscup_enabled = dnscup_enabled;
  sim::Testbed tb(config);

  util::Rng rng(17);
  dns::Ipv4 truth = [&] {
    const auto r = tb.resolve(0, tb.web_host(0), dns::RRType::kA);
    return std::get<dns::ARdata>(r->rrset.rdatas.front()).address;
  }();

  RunResult result;
  uint32_t next_ip = net::make_ip(100, 64, 0, 1);  // CGNAT-style pool
  net::SimTime next_renumber =
      net::from_seconds(rng.exponential(1.0 / 3600.0));

  const net::SimTime day = net::hours(24);
  net::SimTime next_query = net::seconds(30);
  while (next_query < day) {
    // Advance to the next event (client query or DHCP renumber).
    if (next_renumber < next_query) {
      tb.loop().run_until(next_renumber);
      truth = dns::Ipv4{next_ip++};
      tb.repoint_web_host_async(0, truth);
      tb.loop().run_for(net::milliseconds(50));  // update + push settle
      next_renumber += net::from_seconds(rng.exponential(1.0 / 3600.0));
      continue;
    }
    tb.loop().run_until(next_query);
    const auto r = tb.resolve(0, tb.web_host(0), dns::RRType::kA);
    if (r.has_value() && !r->rrset.empty()) {
      ++result.total_answers;
      if (std::get<dns::ARdata>(r->rrset.rdatas.front()).address != truth) {
        ++result.stale_answers;
      }
    }
    next_query += net::seconds(30);  // clients poll the host twice a minute
  }

  result.upstream_queries = tb.cache(0).stats().upstream_queries;
  if (tb.dnscup() != nullptr) {
    result.pushes = tb.dnscup()->notifier().stats().updates_sent;
  }
  return result;
}

}  // namespace

int main() {
  std::printf("== Dynamic DNS: DHCP host renumbering ~1/hour for a day ==\n");
  std::printf("record TTL 60 s; client queries every 30 s\n\n");

  const RunResult ttl = run(false);
  const RunResult dnscup = run(true);

  std::printf("%-10s %-18s %-14s %-14s\n", "scheme", "upstream queries",
              "pushes", "stale answers");
  std::printf("%-10s %-18llu %-14llu %llu / %llu\n", "TTL",
              static_cast<unsigned long long>(ttl.upstream_queries),
              0ull,
              static_cast<unsigned long long>(ttl.stale_answers),
              static_cast<unsigned long long>(ttl.total_answers));
  std::printf("%-10s %-18llu %-14llu %llu / %llu\n", "DNScup",
              static_cast<unsigned long long>(dnscup.upstream_queries),
              static_cast<unsigned long long>(dnscup.pushes),
              static_cast<unsigned long long>(dnscup.stale_answers),
              static_cast<unsigned long long>(dnscup.total_answers));

  if (dnscup.upstream_queries > 0) {
    std::printf(
        "\nDNScup cut upstream DNS traffic by %.0fx while *also* removing\n"
        "stale answers — the paper's §3.2 observation that aggressive\n"
        "Dyn-DNS TTLs cost 10-25x redundant traffic without achieving\n"
        "freshness.\n",
        static_cast<double>(ttl.upstream_queries) /
            static_cast<double>(dnscup.upstream_queries));
  }
  return 0;
}

// Quickstart: the whole DNScup story in one file.
//
// Builds, from the public API, a miniature Internet on the deterministic
// simulated network:
//
//   authoritative nameserver for example.com  (with DNScup middleware)
//   local caching nameserver                  (with the DNScup lease client)
//
// then walks through the paper's Figure-3 protocol exchange:
//   1. the cache resolves www.example.com (EXT query carrying its RRC),
//   2. the authority answers and grants a lease (LLT),
//   3. the operator repoints www via an RFC 2136 dynamic update,
//   4. the authority pushes a CACHE-UPDATE; the cache applies it and acks.
//
// Run: ./build/examples/quickstart
#include <cstdio>

#include "core/dnscup_authority.h"
#include "core/lease_client.h"
#include "net/sim_network.h"
#include "server/authoritative.h"
#include "server/resolver.h"
#include "server/update.h"
#include "util/metrics.h"

using namespace dnscup;
using dns::Name;
using dns::RRType;

namespace {

Name mk(const char* text) { return Name::parse(text).value(); }

void show(const char* step, const server::CachingResolver::Outcome& o) {
  if (o.status != server::CachingResolver::Outcome::Status::kOk) {
    std::printf("%s: resolution failed\n", step);
    return;
  }
  std::printf("%s: www.example.com -> %s (ttl %u, %s)\n", step,
              std::get<dns::ARdata>(o.rrset.rdatas.front())
                  .address.to_string()
                  .c_str(),
              o.rrset.ttl, o.from_cache ? "cache" : "network");
}

}  // namespace

int main() {
  std::printf("== DNScup quickstart ==\n\n");

  // ---- the network -------------------------------------------------------
  // One registry observes the whole stack; every component below
  // publishes its instruments here.
  metrics::MetricsRegistry registry;
  net::EventLoop loop(&registry);
  net::SimNetwork network(loop, /*seed=*/1, &registry);
  const net::Endpoint auth_ep{net::make_ip(10, 0, 1, 1), 53};
  const net::Endpoint cache_ep{net::make_ip(10, 0, 2, 1), 53};
  const net::Endpoint admin_ep{net::make_ip(10, 0, 9, 9), 5353};

  // ---- authoritative server for example.com -------------------------------
  dns::SOARdata soa;
  soa.mname = mk("ns1.example.com");
  soa.rname = mk("hostmaster.example.com");
  soa.serial = 2026070600;
  soa.refresh = 7200;
  soa.retry = 900;
  soa.expire = 604800;
  soa.minimum = 300;
  dns::Zone zone = dns::Zone::make(mk("example.com"), soa, 3600,
                                   {mk("ns1.example.com")}, 3600);
  zone.add_record(mk("ns1.example.com"), RRType::kA, 3600,
                  dns::ARdata{dns::Ipv4{auth_ep.ip}});
  zone.add_record(mk("www.example.com"), RRType::kA, 600,
                  dns::ARdata{dns::Ipv4::parse("192.0.2.80").value()});

  server::AuthServer authority(network.bind(auth_ep), loop,
                               server::AuthServer::Role::kMaster, &registry);
  authority.add_zone(std::move(zone));

  // Attach the DNScup middleware: track file + lease policy + the
  // detection / listening / notification modules.
  core::DnscupAuthority::Config dnscup_config;
  dnscup_config.max_lease = [](const Name&, RRType) { return net::hours(6); };
  dnscup_config.metrics = &registry;
  core::DnscupAuthority dnscup(authority, loop, dnscup_config);

  // ---- local caching nameserver -------------------------------------------
  // It iterates from "root hints" — here, straight at the authority.
  server::CachingResolver::Config resolver_config;
  resolver_config.metrics = &registry;
  server::CachingResolver cache(network.bind(cache_ep), loop, {auth_ep},
                                resolver_config);
  core::LeaseClient::Config client_config;
  client_config.metrics = &registry;
  core::LeaseClient lease_client(cache, client_config);  // cache-side module

  // ---- 1+2: resolve, get a lease -------------------------------------------
  server::CachingResolver::Outcome outcome;
  cache.resolve(mk("www.example.com"), RRType::kA,
                [&](const server::CachingResolver::Outcome& o) {
                  outcome = o;
                });
  loop.run_for(net::seconds(1));
  show("initial resolution", outcome);
  std::printf("lease granted: %zu live lease(s) in the authority's track "
              "file\n",
              dnscup.track_file().live_count(loop.now()));
  std::printf("track file:\n%s\n",
              dnscup.track_file().serialize(loop.now()).c_str());

  // ---- 3: the operator repoints www (RFC 2136 dynamic update) -------------
  auto& admin = network.bind(admin_ep);
  admin.set_receive_handler([](const net::Endpoint&,
                               std::span<const uint8_t> data) {
    const auto resp = dns::Message::decode(data);
    if (resp.ok()) {
      std::printf("update response: %s\n",
                  dns::to_string(resp.value().flags.rcode));
    }
  });
  const dns::Message update =
      server::UpdateBuilder(mk("example.com"))
          .require_rrset_exists(mk("www.example.com"), RRType::kA)
          .replace_a(mk("www.example.com"), 600,
                     dns::Ipv4::parse("198.51.100.17").value())
          .build(1);
  std::printf("\noperator: repointing www.example.com -> 198.51.100.17\n");
  admin.send(auth_ep, update.encode());

  // ---- 4: the push arrives at the cache ------------------------------------
  loop.run_for(net::seconds(1));
  const auto& notifier = dnscup.notifier().stats();
  std::printf("CACHE-UPDATE pushed: %llu sent, %llu acked (%.1f ms to ack)\n",
              static_cast<unsigned long long>(notifier.updates_sent),
              static_cast<unsigned long long>(notifier.acks_received),
              notifier.ack_latency_us.mean() / 1000.0);

  cache.resolve(mk("www.example.com"), RRType::kA,
                [&](const server::CachingResolver::Outcome& o) {
                  outcome = o;
                });
  loop.run_for(net::seconds(1));
  show("after push", outcome);
  std::printf(
      "\nthe cache served the *new* address from its cache without any\n"
      "re-resolution: strong consistency, %llu total datagrams exchanged.\n",
      static_cast<unsigned long long>(network.packets_delivered()));

  // ---- telemetry: everything above, from one snapshot ----------------------
  const metrics::Snapshot snapshot = registry.snapshot(loop.now());
  std::printf(
      "\nregistry snapshot (%zu instruments) of the same exchange:\n"
      "  auth queries answered:  %llu\n"
      "  lease decisions:        %llu\n"
      "  cache-update messages:  %llu\n"
      "  events fired:           %llu\n",
      snapshot.entries.size(),
      static_cast<unsigned long long>(
          snapshot.counter_total("auth_server_requests")),
      static_cast<unsigned long long>(
          snapshot.counter_total("listener_lease_decisions")),
      static_cast<unsigned long long>(
          snapshot.counter_total("cache_update_messages")),
      static_cast<unsigned long long>(
          snapshot.counter_total("event_loop_events_fired")));
  return 0;
}

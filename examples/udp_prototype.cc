// Real-socket prototype: the same DNScup stack the simulations use,
// running over actual loopback UDP sockets — authority and cache as two
// independently scheduled endpoints exchanging genuine datagrams, like
// the paper's BIND-based prototype on its LAN testbed.
//
// NOTE: protocol components are single-threaded by design; the
// UdpTransport receive thread delivers datagrams, and this example
// serializes everything through one mutex, mirroring how named's event
// loop serializes socket events.
//
// Run: ./build/examples/udp_prototype
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "core/dnscup_authority.h"
#include "core/lease_client.h"
#include "net/udp_transport.h"
#include "server/authoritative.h"
#include "server/resolver.h"
#include "server/update.h"

using namespace dnscup;
using dns::Name;
using dns::RRType;

namespace {

Name mk(const char* text) { return Name::parse(text).value(); }

/// Wall-clock adapter: UdpTransport delivers asynchronously; protocol
/// objects still consume a net::EventLoop for timers, which we pump from
/// the main thread at wall-clock pace.
struct WallClockPump {
  net::EventLoop loop;
  std::mutex mutex;

  void pump_for(double seconds) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < deadline) {
      {
        std::lock_guard lock(mutex);
        loop.run_for(net::milliseconds(10));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
};

/// Serializes datagram delivery with the event-loop pump: the protocol
/// components are single-threaded by design, so every receive callback
/// must hold the same mutex the pump holds while firing timers.
class LockedTransport final : public net::Transport {
 public:
  LockedTransport(net::Transport& inner, std::mutex& mutex)
      : inner_(&inner), mutex_(&mutex) {}

  const net::Endpoint& local_endpoint() const override {
    return inner_->local_endpoint();
  }
  void send(const net::Endpoint& to,
            std::span<const uint8_t> data) override {
    inner_->send(to, data);
  }
  void set_receive_handler(ReceiveHandler handler) override {
    inner_->set_receive_handler(
        [this, handler = std::move(handler)](
            const net::Endpoint& from, std::span<const uint8_t> data) {
          std::lock_guard lock(*mutex_);
          handler(from, data);
        });
  }

 private:
  net::Transport* inner_;
  std::mutex* mutex_;
};

}  // namespace

int main() {
  std::printf("== DNScup over real loopback UDP sockets ==\n\n");

  WallClockPump pump;

  auto auth_transport = net::UdpTransport::bind(0);
  auto cache_transport = net::UdpTransport::bind(0);
  auto admin_transport = net::UdpTransport::bind(0);
  if (!auth_transport.ok() || !cache_transport.ok() ||
      !admin_transport.ok()) {
    std::fprintf(stderr, "socket setup failed\n");
    return 1;
  }
  auto& auth_udp = *auth_transport.value();
  auto& cache_udp = *cache_transport.value();
  auto& admin_udp = *admin_transport.value();
  std::printf("authority on %s, cache on %s\n",
              auth_udp.local_endpoint().to_string().c_str(),
              cache_udp.local_endpoint().to_string().c_str());

  LockedTransport auth_locked(auth_udp, pump.mutex);
  LockedTransport cache_locked(cache_udp, pump.mutex);

  // ---- authority -----------------------------------------------------------
  dns::SOARdata soa;
  soa.mname = mk("ns1.proto.test");
  soa.rname = mk("admin.proto.test");
  soa.serial = 1;
  soa.minimum = 60;
  dns::Zone zone = dns::Zone::make(mk("proto.test"), soa, 3600,
                                   {mk("ns1.proto.test")}, 3600);
  zone.add_record(mk("www.proto.test"), RRType::kA, 300,
                  dns::ARdata{dns::Ipv4::parse("192.0.2.1").value()});

  server::AuthServer authority(auth_locked, pump.loop);
  authority.add_zone(std::move(zone));
  core::DnscupAuthority::Config dnscup_config;
  dnscup_config.max_lease = [](const Name&, RRType) { return net::hours(1); };
  core::DnscupAuthority dnscup(authority, pump.loop, dnscup_config);

  // ---- cache ----------------------------------------------------------------
  server::CachingResolver cache(cache_locked, pump.loop,
                                {auth_udp.local_endpoint()});
  core::LeaseClient lease_client(cache);

  // ---- resolve over real sockets ---------------------------------------------
  std::printf("\nresolving www.proto.test through real UDP...\n");
  {
    std::lock_guard lock(pump.mutex);
    cache.resolve(mk("www.proto.test"), RRType::kA,
                  [](const server::CachingResolver::Outcome& o) {
                    if (o.status ==
                        server::CachingResolver::Outcome::Status::kOk) {
                      std::printf("  -> %s\n",
                                  std::get<dns::ARdata>(
                                      o.rrset.rdatas.front())
                                      .address.to_string()
                                      .c_str());
                    }
                  });
  }
  pump.pump_for(0.5);

  std::printf("leases held by the cache: %zu\n",
              dnscup.track_file().live_count(pump.loop.now()));

  // ---- dynamic update + push over real sockets --------------------------------
  std::printf("\nrepointing www.proto.test -> 198.51.100.42 ...\n");
  const dns::Message update =
      server::UpdateBuilder(mk("proto.test"))
          .replace_a(mk("www.proto.test"), 300,
                     dns::Ipv4::parse("198.51.100.42").value())
          .build(7);
  admin_udp.send(auth_udp.local_endpoint(), update.encode());
  pump.pump_for(0.5);

  {
    std::lock_guard lock(pump.mutex);
    cache.resolve(mk("www.proto.test"), RRType::kA,
                  [](const server::CachingResolver::Outcome& o) {
                    if (o.status ==
                        server::CachingResolver::Outcome::Status::kOk) {
                      std::printf("cache now answers: %s (%s)\n",
                                  std::get<dns::ARdata>(
                                      o.rrset.rdatas.front())
                                      .address.to_string()
                                      .c_str(),
                                  o.from_cache ? "from cache, pushed"
                                               : "re-resolved");
                    }
                  });
  }
  pump.pump_for(0.5);

  const auto& notifier = dnscup.notifier().stats();
  std::printf(
      "\nCACHE-UPDATE over real UDP: %llu sent, %llu acked\n"
      "largest datagram: %zu bytes (RFC 1035 limit: 512)\n",
      static_cast<unsigned long long>(notifier.updates_sent),
      static_cast<unsigned long long>(notifier.acks_received),
      std::max(auth_udp.stats().max_packet_bytes,
               cache_udp.stats().max_packet_bytes));
  return 0;
}

// Online lease-grant policies.
//
// The offline optimizers (dynamic_lease.h) assume rate snapshots; a live
// authority must decide per query.  A GrantPolicy sees each query's name,
// the requesting cache, and the RRC-reported (or locally estimated) query
// rate, and answers grant/deny plus a lease length.
//
// BudgetedGrantPolicy approximates the storage-constrained dynamic lease
// online: it grants the per-record maximal length while the live-lease
// count stays under budget, and adapts a minimum-rate admission threshold
// so that under pressure only the highest-rate caches keep leases —
// mirroring the greedy's highest-λ-first order.  When a cache later
// reports a significantly different RRC, the next grant renegotiates the
// term automatically (paper §5.1.2's re-negotiation note).
#pragma once

#include <functional>
#include <memory>

#include "core/rate_tracker.h"
#include "core/track_file.h"
#include "dns/name.h"
#include "dns/rdata.h"
#include "net/endpoint.h"
#include "net/time.h"

namespace dnscup::core {

struct GrantDecision {
  bool grant = false;
  net::Duration length = 0;
};

class GrantPolicy {
 public:
  virtual ~GrantPolicy() = default;

  /// `reported_rate` is the cache's RRC in queries/second (0 when the
  /// querier sent none — a legacy, TTL-only cache).
  virtual GrantDecision decide(const dns::Name& name, dns::RRType type,
                               const net::Endpoint& holder,
                               double reported_rate, net::SimTime now) = 0;
};

/// Looks up the maximal lease length L_i for a record — per the paper:
/// 6 days for regular domains, 200 s for CDN, 6000 s for Dyn domains.
using MaxLeaseFn = std::function<net::Duration(const dns::Name&, dns::RRType)>;

/// Seam between the authority and an online lease planner (src/planner).
///
/// The planner runs on its own thread off the query hot path; a grant
/// policy talks to it through two thread-safe calls: `observe` feeds a
/// demand sample (a non-blocking enqueue into the planner's per-worker
/// MPSC queue — overflow drops and is counted), and `assignment` probes
/// the planner's published plan (a lock-free read of the demand table).
/// Core deliberately only knows this interface, never the planner's
/// types, so the dependency points planner → core.
class LeaseAssignmentSource {
 public:
  virtual ~LeaseAssignmentSource() = default;

  struct Assignment {
    /// False until the planner has processed at least one observation for
    /// the pair — the caller should fall back to its own policy.
    bool planned = false;
    /// Assigned lease length in seconds; 0 means the optimizer deprived
    /// the pair (deny, cache falls back to TTL polling).
    double lease_s = 0.0;
  };

  virtual Assignment assignment(const net::Endpoint& holder,
                                const dns::Name& name, dns::RRType type) = 0;

  /// `rate_qps` is the demand estimate for the pair (RRC-reported, or the
  /// authority's RateTracker fallback); `max_lease_s` is L_i in seconds.
  virtual void observe(const net::Endpoint& holder, const dns::Name& name,
                       dns::RRType type, double rate_qps,
                       double max_lease_s) = 0;
};

/// Grants every EXT query the record's maximal lease (the fixed-lease
/// baseline when MaxLeaseFn is constant).
class AlwaysGrantPolicy final : public GrantPolicy {
 public:
  explicit AlwaysGrantPolicy(MaxLeaseFn max_lease)
      : max_lease_(std::move(max_lease)) {}

  GrantDecision decide(const dns::Name& name, dns::RRType type,
                       const net::Endpoint& holder, double reported_rate,
                       net::SimTime now) override;

 private:
  MaxLeaseFn max_lease_;
};

/// Never grants: DNScup disabled, pure TTL behaviour.
class NeverGrantPolicy final : public GrantPolicy {
 public:
  GrantDecision decide(const dns::Name&, dns::RRType, const net::Endpoint&,
                       double, net::SimTime) override {
    return {};
  }
};

class BudgetedGrantPolicy final : public GrantPolicy {
 public:
  struct Config {
    std::size_t storage_budget = 10000;  ///< target live-lease count
    /// Under-budget threshold decay per decision; higher reacts slower.
    double threshold_decay = 0.98;
    double initial_threshold = 0.0;      ///< queries/second
  };

  /// `track_file` supplies the live-lease count (not owned).
  BudgetedGrantPolicy(MaxLeaseFn max_lease, const TrackFile* track_file,
                      Config config);

  GrantDecision decide(const dns::Name& name, dns::RRType type,
                       const net::Endpoint& holder, double reported_rate,
                       net::SimTime now) override;

  double threshold() const { return threshold_; }

 private:
  std::size_t live_count(net::SimTime now);

  MaxLeaseFn max_lease_;
  const TrackFile* track_file_;
  Config config_;
  double threshold_;
  // live_count() walks the whole track file; cache it for up to a second
  // of simulated time so per-query cost stays O(1).
  net::SimTime live_refreshed_at_ = -1;
  std::size_t cached_live_ = 0;
};

/// Online approximation of the communication-constrained dynamic lease
/// (§4.2.2): minimize lease storage subject to a cap on authority-bound
/// message traffic.
///
/// Leasing always *reduces* traffic (renewals replace polling), so the
/// all-leased state is the communication minimum; storage is reclaimed by
/// depriving the lowest-rate caches — exactly while the measured message
/// rate stays under budget.  The policy tracks the authority's incoming
/// message rate with an EWMA and adapts a deprivation threshold: grants
/// go to every cache whose reported rate is at or above the threshold;
/// the threshold creeps up (denying more low-rate caches, saving storage)
/// while traffic is comfortably under budget, and drops toward zero
/// (leasing everyone, the traffic minimum) when the budget is threatened.
class CommBudgetedGrantPolicy final : public GrantPolicy {
 public:
  struct Config {
    double message_budget = 100.0;  ///< messages/second allowance
    /// EWMA horizon for the measured message rate.
    net::Duration rate_horizon = net::minutes(5);
    /// Threshold adaptation per decision.
    double threshold_growth = 1.02;
    double threshold_decay = 0.90;
    /// Budget headroom below which the threshold may grow.
    double headroom = 0.8;
  };

  CommBudgetedGrantPolicy(MaxLeaseFn max_lease, Config config);

  GrantDecision decide(const dns::Name& name, dns::RRType type,
                       const net::Endpoint& holder, double reported_rate,
                       net::SimTime now) override;

  /// Current EWMA estimate of authority-bound messages/second.
  double measured_message_rate(net::SimTime now) const;
  double threshold() const { return threshold_; }

 private:
  void observe_message(net::SimTime now);

  MaxLeaseFn max_lease_;
  Config config_;
  double threshold_ = 0.0;
  // EWMA of the inter-arrival rate of messages reaching the authority.
  double rate_estimate_ = 0.0;
  net::SimTime last_message_ = -1;
};

/// Grants what the online lease planner assigned (paper §4.2 run live):
/// every EXT decision feeds the planner an observation — the reported RRC
/// when present, the authority's own RateTracker estimate otherwise — and
/// the granted length is the planner's current assignment for the pair,
/// capped at the record's maximal lease.  A pair the optimizer deprived
/// (assigned length 0) is denied.  Until the planner has processed the
/// pair's first observation the wrapped fallback policy decides, so cold
/// starts behave exactly like the planner-less authority.
class PlannerGrantPolicy final : public GrantPolicy {
 public:
  PlannerGrantPolicy(MaxLeaseFn max_lease, LeaseAssignmentSource* planner,
                     std::unique_ptr<GrantPolicy> fallback)
      : max_lease_(std::move(max_lease)),
        planner_(planner),
        fallback_(std::move(fallback)) {}

  /// Observed-rate fallback for EXT queries carrying no RRC (not owned;
  /// the ListeningModule's tracker, wired by DnscupAuthority after
  /// construction because the listener is built after the policy).
  void set_observed_rates(const RateTracker* observed) {
    observed_ = observed;
  }

  GrantDecision decide(const dns::Name& name, dns::RRType type,
                       const net::Endpoint& holder, double reported_rate,
                       net::SimTime now) override;

  GrantPolicy& fallback() { return *fallback_; }

 private:
  MaxLeaseFn max_lease_;
  LeaseAssignmentSource* planner_;
  std::unique_ptr<GrantPolicy> fallback_;
  const RateTracker* observed_ = nullptr;
};

}  // namespace dnscup::core

#include "core/policy.h"

#include <algorithm>
#include <cmath>

namespace dnscup::core {

GrantDecision AlwaysGrantPolicy::decide(const dns::Name& name,
                                        dns::RRType type,
                                        const net::Endpoint& holder,
                                        double reported_rate,
                                        net::SimTime now) {
  (void)holder;
  (void)reported_rate;
  (void)now;
  const net::Duration length = max_lease_(name, type);
  if (length <= 0) return {};
  return {true, length};
}

BudgetedGrantPolicy::BudgetedGrantPolicy(MaxLeaseFn max_lease,
                                         const TrackFile* track_file,
                                         Config config)
    : max_lease_(std::move(max_lease)),
      track_file_(track_file),
      config_(config),
      threshold_(config.initial_threshold) {}

std::size_t BudgetedGrantPolicy::live_count(net::SimTime now) {
  if (live_refreshed_at_ < 0 || now - live_refreshed_at_ >= net::seconds(1)) {
    cached_live_ = track_file_->live_count(now);
    live_refreshed_at_ = now;
  }
  return cached_live_;
}

GrantDecision BudgetedGrantPolicy::decide(const dns::Name& name,
                                          dns::RRType type,
                                          const net::Endpoint& holder,
                                          double reported_rate,
                                          net::SimTime now) {
  const net::Duration length = max_lease_(name, type);
  if (length <= 0) return {};

  const std::size_t live = live_count(now);
  const bool renewal = [&] {
    const Lease* lease = track_file_->find(holder, name, type);
    return lease != nullptr && lease->valid(now);
  }();

  if (live >= config_.storage_budget && !renewal) {
    // Over budget: refuse, and raise the admission bar to just above the
    // refused rate.  The bar never grows multiplicatively (an unbounded
    // ratchet would lock everyone out after a burst of hot rejections);
    // it converges toward the marginal — budget-th highest — query rate,
    // which is exactly the offline greedy's cut.
    threshold_ = std::max(threshold_, reported_rate * 1.01);
    return {};
  }
  // Under budget: decay the threshold so admission loosens over time.
  threshold_ *= config_.threshold_decay;
  if (reported_rate < threshold_) return {};
  return {true, length};
}

CommBudgetedGrantPolicy::CommBudgetedGrantPolicy(MaxLeaseFn max_lease,
                                                 Config config)
    : max_lease_(std::move(max_lease)), config_(config) {}

void CommBudgetedGrantPolicy::observe_message(net::SimTime now) {
  if (last_message_ < 0) {
    last_message_ = now;
    return;
  }
  const double dt = net::to_seconds(std::max<net::Duration>(
      now - last_message_, net::microseconds(1)));
  last_message_ = now;
  const double sample = 1.0 / dt;
  const double horizon = net::to_seconds(config_.rate_horizon);
  const double alpha = std::min(1.0, dt / horizon);
  rate_estimate_ = alpha * sample + (1.0 - alpha) * rate_estimate_;
}

double CommBudgetedGrantPolicy::measured_message_rate(
    net::SimTime now) const {
  if (last_message_ < 0) return 0.0;
  // Decay the estimate across the silent gap since the last message.
  const double dt = net::to_seconds(std::max<net::Duration>(
      now - last_message_, 0));
  const double horizon = net::to_seconds(config_.rate_horizon);
  return rate_estimate_ * std::exp(-dt / horizon);
}

GrantDecision CommBudgetedGrantPolicy::decide(const dns::Name& name,
                                              dns::RRType type,
                                              const net::Endpoint& holder,
                                              double reported_rate,
                                              net::SimTime now) {
  (void)holder;
  // Every decision corresponds to a message that reached the authority.
  observe_message(now);

  const net::Duration length = max_lease_(name, type);
  if (length <= 0) return {};

  const double measured = measured_message_rate(now);
  if (measured > config_.message_budget) {
    // Budget threatened: leasing is the only way down — admit everyone.
    threshold_ = 0.0;
  } else if (measured < config_.message_budget * config_.headroom) {
    // Comfortable headroom: creep the bar up to deprive low-rate caches
    // (storage reclaim, §4.2.2's smallest-λ-first deprivation order).
    threshold_ = std::max(threshold_ * config_.threshold_growth,
                          1e-6);
  } else {
    threshold_ *= config_.threshold_decay;
  }
  if (reported_rate < threshold_) return {};
  return {true, length};
}

GrantDecision PlannerGrantPolicy::decide(const dns::Name& name,
                                         dns::RRType type,
                                         const net::Endpoint& holder,
                                         double reported_rate,
                                         net::SimTime now) {
  const net::Duration max_lease = max_lease_(name, type);
  if (max_lease <= 0) return {};

  double rate = reported_rate;
  if (rate <= 0.0 && observed_ != nullptr) {
    rate = observed_->rate(name, type, now);
  }
  // Probe before observing: the answer reflects the plan as of query
  // arrival, so a pair's first-ever query deterministically falls
  // through to the wrapped policy however fast the planner thread
  // drains the observation just queued.
  const LeaseAssignmentSource::Assignment a =
      planner_->assignment(holder, name, type);
  if (rate > 0.0) {
    planner_->observe(holder, name, type, rate, net::to_seconds(max_lease));
  }
  if (a.planned) {
    if (a.lease_s <= 0.0) return {};  // deprived: cache polls via TTL
    return {true, std::min(max_lease, net::from_seconds(a.lease_s))};
  }
  return fallback_->decide(name, type, holder, rate, now);
}

}  // namespace dnscup::core

#include "core/lease_client.h"

#include "core/cache_update.h"
#include "util/logging.h"

namespace dnscup::core {

using server::CacheEntry;
using server::LeaseState;

LeaseClient::LeaseClient(server::CachingResolver& resolver, Config config)
    : resolver_(&resolver), config_(config) {
  resolver_->set_extension(this);
  auto& registry = metrics::resolve(config.metrics);
  const metrics::Labels base{
      {"instance", registry.next_instance("lease_client")}};
  auto labeled = [&](const char* key, const char* value) {
    metrics::Labels labels = base;
    labels.emplace_back(key, value);
    return labels;
  };
  stats_.rrc_reports = registry.counter("lease_client_rrc_reports", base);
  stats_.leases_registered = registry.counter(
      "lease_client_leases", labeled("event", "registered"));
  stats_.lease_renewals =
      registry.counter("lease_client_leases", labeled("event", "renewed"));
  stats_.updates_received = registry.counter(
      "lease_client_updates", labeled("result", "received"));
  stats_.updates_applied =
      registry.counter("lease_client_updates", labeled("result", "applied"));
  stats_.stale_updates_ignored = registry.counter(
      "lease_client_updates", labeled("result", "stale_ignored"));
  stats_.unauthorized_updates = registry.counter(
      "lease_client_updates", labeled("result", "unauthorized"));
  stats_.auth_failures = registry.counter("lease_client_updates",
                                          labeled("result", "auth_failed"));
  stats_.acks_sent = registry.counter("lease_client_acks_sent", base);
  stats_.renegotiations =
      registry.counter("lease_client_renegotiations", base);
  stats_.channel_updates = registry.counter("lease_client_updates",
                                            labeled("result", "channel"));
  stats_.resyncs = registry.counter("lease_client_resyncs", base);
  stats_.resync_refetches =
      registry.counter("lease_client_resync_refetches", base);
  stats_.readoptions_resumed = registry.counter(
      "lease_readoption_total", labeled("result", "resumed"));
  stats_.readoptions_serial_gap = registry.counter(
      "lease_readoption_total", labeled("result", "serial_gap"));
  stats_.readoptions_rejected = registry.counter(
      "lease_readoption_total", labeled("result", "rejected"));

  // A warm-restarted cache's persistent store remembers the highest zone
  // serials applied before the restart; seeding the ordering guard from
  // it lets the post-restart resync distinguish "no pushes missed" from
  // a real serial gap.
  for (const auto& [zone, serial] : resolver_->cache().zone_serials()) {
    zone_serials_[zone] = serial;
  }
}

LeaseClient::Stats LeaseClient::stats() const {
  return Stats{
      .rrc_reports = stats_.rrc_reports,
      .leases_registered = stats_.leases_registered,
      .lease_renewals = stats_.lease_renewals,
      .updates_received = stats_.updates_received,
      .updates_applied = stats_.updates_applied,
      .stale_updates_ignored = stats_.stale_updates_ignored,
      .unauthorized_updates = stats_.unauthorized_updates,
      .auth_failures = stats_.auth_failures,
      .acks_sent = stats_.acks_sent,
      .renegotiations = stats_.renegotiations,
      .channel_updates = stats_.channel_updates,
      .resyncs = stats_.resyncs,
      .resync_refetches = stats_.resync_refetches,
      .readoptions_resumed = stats_.readoptions_resumed,
      .readoptions_serial_gap = stats_.readoptions_serial_gap,
      .readoptions_rejected = stats_.readoptions_rejected,
  };
}

void LeaseClient::on_client_query(const dns::Name& qname, dns::RRType qtype) {
  rates_.record(qname, qtype, resolver_->loop().now());
  maybe_renegotiate(qname, qtype);
}

void LeaseClient::maybe_renegotiate(const dns::Name& qname,
                                    dns::RRType qtype) {
  if (config_.renegotiate_rate_factor <= 0.0) return;
  const net::SimTime now = resolver_->loop().now();
  const server::CacheEntry* entry = resolver_->cache().peek(qname, qtype);
  if (entry == nullptr || !entry->lease.has_value() ||
      now >= entry->lease->expiry) {
    return;  // nothing leased; the normal miss path negotiates
  }
  auto it = lease_meta_.find(MetaKey{qname, qtype});
  if (it == lease_meta_.end()) return;
  LeaseMeta& meta = it->second;
  if (now - meta.last_renegotiation < config_.renegotiate_min_interval) {
    return;
  }
  const double current = rates_.rate(qname, qtype, now);
  const double baseline = meta.rate_at_grant;
  if (baseline <= 0.0) return;
  const double ratio = current / baseline;
  if (ratio < config_.renegotiate_rate_factor &&
      ratio > 1.0 / config_.renegotiate_rate_factor) {
    return;  // rate still in the negotiated band
  }
  meta.last_renegotiation = now;
  ++stats_.renegotiations;
  // A forced EXT refresh carries the new RRC; the authority re-decides
  // the lease term and the response re-registers it here.
  resolver_->refresh(qname, qtype,
                     [](const server::CachingResolver::Outcome&) {});
}

void LeaseClient::on_outgoing_query(dns::Message& query) {
  query.flags.ext = true;
  const net::SimTime now = resolver_->loop().now();
  for (auto& q : query.questions) {
    q.rrc = dns::rrc_from_rate(rates_.rate(q.qname, q.qtype, now));
    ++stats_.rrc_reports;
  }
}

void LeaseClient::on_response(const net::Endpoint& from,
                              const dns::Message& response) {
  if (!response.flags.ext || response.llt == 0) return;
  if (response.flags.rcode != dns::Rcode::kNoError ||
      response.questions.size() != 1) {
    return;
  }
  const dns::Question& q = response.questions[0];
  const net::SimTime now = resolver_->loop().now();

  // The cache entry for the answer was just inserted by the resolver's
  // normal processing; attach the lease to it.
  CacheEntry* entry = resolver_->cache().peek(q.qname, q.qtype);
  if (entry == nullptr || entry->negative) return;

  const net::Duration length =
      net::seconds(static_cast<int64_t>(dns::llt_to_seconds(response.llt)));
  if (entry->lease.has_value() && entry->lease->authority == from) {
    ++stats_.lease_renewals;
  } else {
    ++stats_.leases_registered;
  }
  // Through the storage seam (not a raw member write), so a persistent
  // backend re-serializes the entry with its new lease state.
  resolver_->cache().set_lease(q.qname, q.qtype,
                               LeaseState{now + length, from});
  auto& meta = lease_meta_[MetaKey{q.qname, q.qtype}];
  meta.rate_at_grant = rates_.rate(q.qname, q.qtype, now);
}

bool LeaseClient::on_unsolicited(const net::Endpoint& from,
                                 const dns::Message& message) {
  if (message.flags.opcode != dns::Opcode::kCacheUpdate || message.flags.qr) {
    return false;
  }
  return handle_update(from, message, [&](std::vector<uint8_t> ack) {
    resolver_->transport().send(from, ack);
  });
}

bool LeaseClient::on_channel_update(const net::Endpoint& from,
                                    const dns::Message& message,
                                    const AckSender& send_ack) {
  if (message.flags.opcode != dns::Opcode::kCacheUpdate || message.flags.qr) {
    return false;
  }
  ++stats_.channel_updates;
  return handle_update(from, message, send_ack);
}

void LeaseClient::on_channel_resync(
    const std::vector<std::pair<dns::Name, uint32_t>>& zones) {
  ++stats_.resyncs;
  const net::SimTime now = resolver_->loop().now();
  std::vector<std::pair<dns::Name, dns::RRType>> refetch;
  for (const auto& [zone, serial] : zones) {
    auto it = zone_serials_.find(zone);
    // A gap means pushes were missed while disconnected.  No recorded
    // serial at all is also a gap when we hold leases under the zone:
    // those leases came from plain EXT grants and we cannot prove the
    // data is current.
    const bool gap =
        it == zone_serials_.end() || dns::serial_gt(serial, it->second);
    if (!gap) continue;
    resolver_->cache().for_each(
        [&](const server::CacheKey& key, const CacheEntry& entry) {
          if (!entry.lease.has_value() || now >= entry.lease->expiry) return;
          if (!key.name.is_subdomain_of(zone)) return;
          refetch.emplace_back(key.name, key.type);
        });
    // Adopt the authority's serial: the refetches below re-read the
    // current data, so a reconnect without intervening changes stays
    // quiet next time.
    zone_serials_[zone] = serial;
    resolver_->cache().note_zone_serial(zone, serial);
  }
  for (const auto& [name, type] : refetch) {
    ++stats_.resync_refetches;
    resolver_->refresh(name, type,
                       [](const server::CachingResolver::Outcome&) {});
  }
}

void LeaseClient::on_readoption(
    const std::vector<std::pair<dns::Name, dns::RRType>>& announced,
    const std::vector<bool>& resumed,
    const std::vector<std::pair<dns::Name, uint32_t>>& zones) {
  // Which zones moved on while we were down?  Decided against the seeded
  // (pre-restart) serials, before on_channel_resync adopts the new ones.
  std::vector<dns::Name> gap_zones;
  for (const auto& [zone, serial] : zones) {
    auto it = zone_serials_.find(zone);
    if (it == zone_serials_.end() || dns::serial_gt(serial, it->second)) {
      gap_zones.push_back(zone);
    }
  }
  for (std::size_t i = 0; i < announced.size(); ++i) {
    const auto& [name, type] = announced[i];
    if (i >= resumed.size() || !resumed[i]) {
      // The authority does not track this lease (anymore): demote it to
      // a plain TTL entry so we never serve it as push-maintained.  The
      // next client query re-negotiates normally.
      resolver_->cache().set_lease(name, type, std::nullopt);
      lease_meta_.erase(MetaKey{name, type});
      ++stats_.readoptions_rejected;
      continue;
    }
    bool under_gap = false;
    for (const dns::Name& zone : gap_zones) {
      if (name.is_subdomain_of(zone)) {
        under_gap = true;
        break;
      }
    }
    // Resumed either way — the lease stands and pushes flow again; the
    // serial-gap resync below refetches the gap cases' data.
    if (under_gap) {
      ++stats_.readoptions_serial_gap;
    } else {
      ++stats_.readoptions_resumed;
    }
  }
  on_channel_resync(zones);
}

bool LeaseClient::handle_update(const net::Endpoint& from,
                                const dns::Message& message,
                                const AckSender& send_ack) {
  ++stats_.updates_received;
  if (!config_.trusted_authorities.empty()) {
    bool trusted = false;
    for (const net::Endpoint& authority : config_.trusted_authorities) {
      if (authority == from) {
        trusted = true;
        break;
      }
    }
    if (!trusted) {
      ++stats_.unauthorized_updates;
      return true;  // consumed silently; never ack an untrusted pusher
    }
  }
  dns::Message verified = message;
  if (config_.authenticator != nullptr &&
      !config_.authenticator->verify(verified)) {
    ++stats_.auth_failures;
    return true;  // consumed; no ack for an unverifiable push
  }
  auto parsed = parse_cache_update(verified);
  if (!parsed) {
    DNSCUP_LOG_WARN("lease client: malformed CACHE-UPDATE from %s: %s",
                    from.to_string().c_str(),
                    parsed.error().message.c_str());
    return true;  // consumed, but not acknowledged
  }
  const CacheUpdate& update = parsed.value();
  const net::SimTime now = resolver_->loop().now();

  // Authorization: every affected record we hold under lease must have
  // been granted by this sender.  Records we do not hold are ignored.
  auto authorized = [&](const dns::Name& name, dns::RRType type) {
    const CacheEntry* entry = resolver_->cache().peek(name, type);
    if (entry == nullptr) return true;  // nothing cached; harmless
    if (!entry->lease.has_value()) return true;
    return entry->lease->authority == from;
  };
  for (const auto& set : update.updated) {
    if (!authorized(set.name, set.type)) {
      ++stats_.unauthorized_updates;
      return true;  // consumed silently; no ack for an impostor
    }
  }
  for (const auto& [name, type] : update.removed) {
    if (!authorized(name, type)) {
      ++stats_.unauthorized_updates;
      return true;
    }
  }

  // Ordering guard: never roll back to an older zone serial.
  auto serial_it = zone_serials_.find(update.zone);
  const bool stale =
      serial_it != zone_serials_.end() &&
      !dns::serial_gt(update.serial, serial_it->second);
  if (stale) {
    ++stats_.stale_updates_ignored;
  } else {
    zone_serials_[update.zone] = update.serial;
    resolver_->cache().note_zone_serial(update.zone, update.serial);
    for (const auto& set : update.updated) {
      CacheEntry* existing = resolver_->cache().peek(set.name, set.type);
      const bool had_lease =
          existing != nullptr && existing->lease.has_value();
      const auto lease = had_lease ? existing->lease : std::nullopt;
      resolver_->cache().apply_update(set, now);
      if (had_lease) {
        // The push does not end the lease; write it through the seam.
        resolver_->cache().set_lease(set.name, set.type, lease);
      }
      ++stats_.updates_applied;
    }
    for (const auto& [name, type] : update.removed) {
      resolver_->cache().invalidate(name, type);
      ++stats_.updates_applied;
    }
  }

  // Acknowledge (idempotent: duplicates are re-acked so the notifier can
  // stop retransmitting even when our first ack was lost).
  const dns::Message ack = make_cache_update_ack(message);
  send_ack(ack.encode());
  ++stats_.acks_sent;
  return true;
}

std::size_t LeaseClient::live_leases(net::SimTime now) const {
  std::size_t count = 0;
  resolver_->cache().for_each(
      [&](const server::CacheKey&, const CacheEntry& entry) {
        if (entry.lease.has_value() && now < entry.lease->expiry) ++count;
      });
  return count;
}

}  // namespace dnscup::core

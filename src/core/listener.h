// DNScup listening module (paper §5.2, Figure 6).
//
// Monitors incoming DNS queries at the authoritative nameserver, reads the
// RRC rate report from EXT queries, asks the grant policy whether to lease,
// records granted leases in the track file, and stamps the LLT field into
// the response.  Legacy queries (no EXT flag) pass through untouched and
// keep plain TTL semantics.
#pragma once

#include <cstdint>

#include "core/policy.h"
#include "core/rate_tracker.h"
#include "core/track_file.h"
#include "dns/message.h"
#include "net/time.h"
#include "util/metrics.h"

namespace dnscup::core {

class ListeningModule {
 public:
  struct Stats {
    uint64_t ext_queries = 0;
    uint64_t legacy_queries = 0;
    uint64_t leases_granted = 0;
    uint64_t leases_denied = 0;
  };

  /// Neither the track file nor the policy is owned.  Counters register in
  /// `metrics` (default_registry() when null) under listener_*.
  ListeningModule(TrackFile* track_file, GrantPolicy* policy,
                  metrics::MetricsRegistry* metrics = nullptr);

  /// AuthServer query-hook entry point: inspects the query, possibly
  /// grants a lease and sets response.llt.  Only positive authoritative
  /// answers are leased — there is nothing to push for a referral, and
  /// negative answers change when names appear, which the detection module
  /// reports as RRset additions only for previously-leased names.
  void on_query(const net::Endpoint& from, const dns::Message& query,
                dns::Message& response, net::SimTime now);

  /// AuthServer fast-query-hook entry point: the allocation-free twin of
  /// on_query for plain legacy queries (no EXT flag, so no lease grant and
  /// no response mutation) — records the observed rate and counts the
  /// query.  Must stay behaviorally identical to on_query's legacy branch.
  void on_query_view(const dns::NameView& qname, dns::RRType qtype,
                     net::SimTime now);

  /// Observed (not reported) per-record query rates, for re-negotiation
  /// audits and the workload analyses.
  const RateTracker& observed_rates() const { return observed_; }

  /// Value snapshot of the registry-backed counters.
  Stats stats() const;

 private:
  struct Instruments {
    metrics::Counter ext_queries;
    metrics::Counter legacy_queries;
    metrics::Counter leases_granted;
    metrics::Counter leases_denied;
  };

  TrackFile* track_file_;
  GrantPolicy* policy_;
  RateTracker observed_;
  Instruments stats_;
};

}  // namespace dnscup::core

// DNScup notification module (paper §5.2, Figure 6).
//
// On a zone-data change, looks up every cache holding a valid lease on a
// changed record in the track file and pushes one CACHE-UPDATE message per
// cache (batching all of that cache's affected records).  UDP is lossy, so
// unacknowledged updates are retransmitted with exponential backoff; after
// the retry budget is exhausted the cache's leases on the affected records
// are revoked — the cache falls back to TTL expiry, degrading to classic
// weak consistency rather than silently serving stale data forever.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/auth.h"
#include "core/track_file.h"
#include "dns/message.h"
#include "dns/zone.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "util/metrics.h"
#include "util/stats.h"

namespace dnscup::core {

class NotificationModule {
 public:
  struct Config {
    int max_retries = 5;
    net::Duration initial_retry_delay = net::milliseconds(500);
    double backoff_factor = 2.0;
    /// When set, every CACHE-UPDATE is signed before transmission
    /// (paper §5.3); not owned, may be null (plain text).
    MessageAuthenticator* authenticator = nullptr;
    /// Registry for cache_update_* instruments (default_registry() when
    /// null).
    metrics::MetricsRegistry* metrics = nullptr;
  };

  struct Stats {
    uint64_t changes_observed = 0;
    uint64_t updates_sent = 0;          ///< first transmissions
    uint64_t retransmissions = 0;
    uint64_t acks_received = 0;
    uint64_t failures = 0;              ///< retries exhausted
    util::RunningStats ack_latency_us;  ///< send -> ack
  };

  NotificationModule(net::Transport* transport, net::EventLoop* loop,
                     TrackFile* track_file, Config config);
  NotificationModule(net::Transport* transport, net::EventLoop* loop,
                     TrackFile* track_file)
      : NotificationModule(transport, loop, track_file, Config()) {}

  /// AuthServer change-hook entry point: fans the change out to all
  /// leaseholders of the affected records.
  void on_zone_change(const dns::Zone& zone,
                      const std::vector<dns::RRsetChange>& changes);

  /// Consumes CACHE-UPDATE acknowledgements; true when handled.
  bool on_message(const net::Endpoint& from, const dns::Message& message);

  std::size_t in_flight() const { return pending_.size(); }
  /// Value snapshot of the registry-backed counters; ack_latency_us is the
  /// materialized moments of the cache_update_ack_latency_us histogram.
  Stats stats() const;

 private:
  struct Instruments {
    metrics::Counter changes_observed;
    metrics::Counter updates_sent;
    metrics::Counter retransmissions;
    metrics::Counter acks_received;
    metrics::Counter failures;
    metrics::HistogramMetric ack_latency_us;
  };

  struct Pending {
    net::Endpoint target;
    dns::Message message;
    int retries_left = 0;
    net::Duration next_delay = 0;
    net::SimTime first_sent = 0;
    net::TimerHandle timer;
    /// Leases to revoke if delivery ultimately fails.
    std::vector<std::pair<dns::Name, dns::RRType>> covered;
  };

  void transmit(uint16_t id);
  void on_retry_timer(uint16_t id);

  net::Transport* transport_;
  net::EventLoop* loop_;
  TrackFile* track_file_;
  Config config_;
  std::map<uint16_t, Pending> pending_;
  uint16_t next_id_ = 1;
  Instruments stats_;
  std::vector<uint8_t> scratch_;  ///< reusable tx encode arena

};

}  // namespace dnscup::core

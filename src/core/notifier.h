// DNScup notification module (paper §5.2, Figure 6).
//
// On a zone-data change, looks up every cache holding a valid lease on a
// changed record in the track file and pushes one CACHE-UPDATE message per
// cache (batching all of that cache's affected records).  UDP is lossy, so
// unacknowledged updates are retransmitted with exponential backoff; after
// the retry budget is exhausted the cache's leases on the affected records
// are revoked — the cache falls back to TTL expiry, degrading to classic
// weak consistency rather than silently serving stale data forever.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/auth.h"
#include "core/track_file.h"
#include "dns/message.h"
#include "dns/zone.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "util/metrics.h"
#include "util/stats.h"

namespace dnscup::core {

/// Sink for CACHE-UPDATEs that should travel over the connection-oriented
/// push plane (src/push) instead of per-datagram UDP.  The notifier hands
/// the fully encoded (and, when configured, signed) message over; the
/// plane owns delivery and reports back asynchronously through
/// NotificationModule::on_channel_resolution on the notifier's thread.
class PushWriter {
 public:
  struct Item {
    net::Endpoint holder;  ///< lease identity the update is addressed to
    uint16_t id = 0;       ///< DNS message id (resolution correlation key)
    dns::Name zone;
    uint32_t serial = 0;
    /// (name, type) pairs the update covers — the coalescing key: a
    /// queued update is superseded when a newer serial covers all of it.
    std::vector<std::pair<dns::Name, dns::RRType>> covered;
    /// Encoded CACHE-UPDATE wire message, byte-identical to what the UDP
    /// fallback would send (signatures included).
    std::vector<uint8_t> message;
  };

  virtual ~PushWriter() = default;

  /// True when the plane accepted delivery (holder subscribed, queue
  /// capacity left after coalescing).  False means the caller must use
  /// the UDP path — the holder is unsubscribed, disconnected, or its
  /// channel is saturated.
  virtual bool try_push(Item item) = 0;
};

/// How the push plane disposed of an accepted Item.
enum class ChannelResolution {
  kAcked,      ///< the cache acknowledged over the channel
  kCoalesced,  ///< superseded in-queue by a newer serial covering it
  kFailed,     ///< connection lost / flush failed — fall back to UDP
};

class NotificationModule {
 public:
  struct Config {
    int max_retries = 5;
    net::Duration initial_retry_delay = net::milliseconds(500);
    double backoff_factor = 2.0;
    /// When set, every CACHE-UPDATE is signed before transmission
    /// (paper §5.3); not owned, may be null (plain text).
    MessageAuthenticator* authenticator = nullptr;
    /// Registry for cache_update_* instruments (default_registry() when
    /// null).
    metrics::MetricsRegistry* metrics = nullptr;
    /// Connection-oriented push plane; when set, subscribed holders get
    /// their updates over the channel and UDP becomes the fallback.  Not
    /// owned; must outlive the module.
    PushWriter* push_writer = nullptr;
    /// How long to wait for a channel resolution before falling back to
    /// the UDP retransmit schedule.
    net::Duration channel_ack_timeout = net::seconds(5);
  };

  struct Stats {
    uint64_t changes_observed = 0;
    uint64_t updates_sent = 0;          ///< first UDP transmissions
    uint64_t retransmissions = 0;
    uint64_t acks_received = 0;
    uint64_t failures = 0;              ///< retries exhausted
    uint64_t channel_sent = 0;          ///< handed to the push plane
    uint64_t channel_coalesced = 0;     ///< superseded in-channel
    uint64_t channel_fallbacks = 0;     ///< channel failed -> UDP path
    uint64_t shutdown_flushed = 0;      ///< final-copy sends at stop()
    util::RunningStats ack_latency_us;  ///< send -> ack
  };

  NotificationModule(net::Transport* transport, net::EventLoop* loop,
                     TrackFile* track_file, Config config);
  NotificationModule(net::Transport* transport, net::EventLoop* loop,
                     TrackFile* track_file)
      : NotificationModule(transport, loop, track_file, Config()) {}

  /// AuthServer change-hook entry point: fans the change out to all
  /// leaseholders of the affected records.
  void on_zone_change(const dns::Zone& zone,
                      const std::vector<dns::RRsetChange>& changes);

  /// Consumes CACHE-UPDATE acknowledgements; true when handled.
  bool on_message(const net::Endpoint& from, const dns::Message& message);

  /// Push-plane outcome for an accepted Item.  Must run on this module's
  /// event-loop thread (the runtime routes it to the owning worker).  An
  /// ack settles the update; kCoalesced retires it without revocation (a
  /// newer covering serial is queued behind it); kFailed re-arms the UDP
  /// retransmit schedule.
  void on_channel_resolution(uint16_t id, ChannelResolution resolution);

  /// Shutdown drain: sends one final UDP copy of every in-flight update
  /// (channel or UDP), cancels its timer and forgets it, so stop() never
  /// strands a queued CACHE-UPDATE silently.  Returns how many were
  /// flushed; also counted as cache_update_messages{result=shutdown_flush}.
  std::size_t flush_pending();

  std::size_t in_flight() const { return pending_.size(); }
  /// Value snapshot of the registry-backed counters; ack_latency_us is the
  /// materialized moments of the cache_update_ack_latency_us histogram.
  Stats stats() const;

 private:
  struct Instruments {
    metrics::Counter changes_observed;
    metrics::Counter updates_sent;
    metrics::Counter retransmissions;
    metrics::Counter acks_received;
    metrics::Counter failures;
    metrics::Counter channel_sent;
    metrics::Counter channel_coalesced;
    metrics::Counter channel_fallbacks;
    metrics::Counter shutdown_flushed;
    metrics::HistogramMetric ack_latency_us;
  };

  struct Pending {
    net::Endpoint target;
    dns::Message message;
    int retries_left = 0;
    net::Duration next_delay = 0;
    net::SimTime first_sent = 0;
    net::TimerHandle timer;
    /// Leases to revoke if delivery ultimately fails.
    std::vector<std::pair<dns::Name, dns::RRType>> covered;
    /// In the push plane's hands; the timer is the channel-ack deadline
    /// rather than a UDP retransmit.
    bool via_channel = false;
  };

  void transmit(uint16_t id);
  void on_retry_timer(uint16_t id);
  void on_channel_timeout(uint16_t id);
  /// Re-arms the UDP path for a pending whose channel delivery failed.
  void fall_back_to_udp(uint16_t id);

  net::Transport* transport_;
  net::EventLoop* loop_;
  TrackFile* track_file_;
  Config config_;
  std::map<uint16_t, Pending> pending_;
  uint16_t next_id_ = 1;
  Instruments stats_;
  std::vector<uint8_t> scratch_;  ///< reusable tx encode arena

};

}  // namespace dnscup::core

// DNScup cache-side module: turns a plain CachingResolver into a
// lease-holding DNS cache.
//
// As a CachingResolver::Extension it
//  * measures the local client query rate per record and reports it in the
//    RRC field of outgoing EXT queries (paper Figure 3 step 1);
//  * registers leases granted via the LLT field of responses (step 2) —
//    the cached entry then stays authoritative past its TTL while the
//    lease is valid;
//  * consumes unsolicited CACHE-UPDATE pushes (step 3): applies the new
//    RRsets / invalidations to the cache and acknowledges (step 4).
//
// Updates are accepted only from the endpoint that granted the lease, and
// zone serials are checked so reordered or duplicated pushes cannot roll
// the cache back to older data.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "core/auth.h"
#include "core/rate_tracker.h"
#include "dns/zone.h"
#include "server/resolver.h"
#include "util/metrics.h"

namespace dnscup::core {

class LeaseClient final : public server::CachingResolver::Extension {
 public:
  struct Stats {
    uint64_t rrc_reports = 0;
    uint64_t leases_registered = 0;
    uint64_t lease_renewals = 0;
    uint64_t updates_received = 0;
    uint64_t updates_applied = 0;
    uint64_t stale_updates_ignored = 0;   ///< older serial than seen
    uint64_t unauthorized_updates = 0;    ///< push from a non-grantor
    uint64_t auth_failures = 0;           ///< MAC missing or invalid
    uint64_t acks_sent = 0;
    uint64_t renegotiations = 0;          ///< rate-drift refresh queries
    uint64_t channel_updates = 0;         ///< pushes arriving over TCP
    uint64_t resyncs = 0;                 ///< SUBSCRIBE_ACK inventories seen
    uint64_t resync_refetches = 0;        ///< leased records refetched
    uint64_t readoptions_resumed = 0;     ///< warm leases resumed as-is
    uint64_t readoptions_serial_gap = 0;  ///< resumed but zone moved on
    uint64_t readoptions_rejected = 0;    ///< demoted to plain TTL entries
  };

  struct Config {
    /// Re-negotiate the lease when the local query rate drifts from the
    /// rate reported at grant time by this factor (in either direction).
    /// The refreshed EXT query carries the new RRC, letting the authority
    /// re-decide the lease term (§5.1.2).  0 disables re-negotiation.
    double renegotiate_rate_factor = 4.0;
    /// Cooldown between re-negotiations of the same record.
    net::Duration renegotiate_min_interval = net::minutes(5);
    /// When set, pushed CACHE-UPDATEs must verify before being applied
    /// (paper §5.3); unverifiable pushes are dropped without an ack.
    /// Not owned, may be null (plain text).
    MessageAuthenticator* authenticator = nullptr;
    /// Upstream trust set: when non-empty, unsolicited CACHE-UPDATE
    /// pushes are accepted only from these endpoints (the configured
    /// upstream authorities).  Without it, a push for a record we hold no
    /// lease on would be applied from *any* sender — fine in a closed
    /// simulation, a poisoning vector on a real socket.  The per-record
    /// grantor check still applies on top.
    std::vector<net::Endpoint> trusted_authorities;
    /// Registry for lease_client_* instruments (default_registry() when
    /// null).
    metrics::MetricsRegistry* metrics = nullptr;
  };

  /// The resolver must outlive the client; attaches itself as extension.
  explicit LeaseClient(server::CachingResolver& resolver)
      : LeaseClient(resolver, Config()) {}
  LeaseClient(server::CachingResolver& resolver, Config config);

  // Extension interface -----------------------------------------------
  void on_client_query(const dns::Name& qname, dns::RRType qtype) override;
  void on_outgoing_query(dns::Message& query) override;
  void on_response(const net::Endpoint& from,
                   const dns::Message& response) override;
  bool on_unsolicited(const net::Endpoint& from,
                      const dns::Message& message) override;

  /// Delivers one encoded CACHE-UPDATE ack (used by both the UDP path —
  /// transport().send — and the push channel's in-band PUSH_ACK).
  using AckSender = std::function<void(std::vector<uint8_t> ack)>;

  /// A CACHE-UPDATE that arrived over the push channel instead of UDP.
  /// `from` is the lease-granting authority the channel is bound to; the
  /// same trust / grantor / serial checks as the UDP path apply, and the
  /// ack goes back through `send_ack` so it rides the channel rather
  /// than an ambiguous UDP flow.  Returns true when consumed.
  bool on_channel_update(const net::Endpoint& from,
                         const dns::Message& message,
                         const AckSender& send_ack);

  /// Serial-gap resync after a (re)connect: the authority's zone-serial
  /// inventory from the SUBSCRIBE_ACK.  Any zone whose serial is ahead
  /// of the last one we applied (or that we hold leases under without
  /// ever applying a push) had updates we missed while disconnected —
  /// every leased record under it is refetched.
  void on_channel_resync(
      const std::vector<std::pair<dns::Name, uint32_t>>& zones);

  /// Outcome of a warm-restart lease re-adoption handshake (the v2
  /// SUBSCRIBE/SUBSCRIBE_ACK exchange).  `announced` are the survivors
  /// sent in the SUBSCRIBE; `resumed` parallels it (true = the authority
  /// re-registered that lease).  Rejected survivors are demoted — their
  /// lease state is cleared so they fall back to plain TTL entries and
  /// the next query re-negotiates; resumed ones keep their lease.  Then
  /// the normal serial-gap resync runs over `zones`, so a resumed lease
  /// under a zone that moved on while we were down is refetched (counted
  /// as serial_gap), while matching serials resume with no refetch at
  /// all.  Plain types, not push framing structs: core cannot depend on
  /// the push plane (the dependency points the other way).
  void on_readoption(
      const std::vector<std::pair<dns::Name, dns::RRType>>& announced,
      const std::vector<bool>& resumed,
      const std::vector<std::pair<dns::Name, uint32_t>>& zones);

  /// Live leases currently registered in the cache.
  std::size_t live_leases(net::SimTime now) const;

  /// Value snapshot of the registry-backed counters.
  Stats stats() const;
  const RateTracker& client_rates() const { return rates_; }

 private:
  struct Instruments {
    metrics::Counter rrc_reports;
    metrics::Counter leases_registered;
    metrics::Counter lease_renewals;
    metrics::Counter updates_received;
    metrics::Counter updates_applied;
    metrics::Counter stale_updates_ignored;
    metrics::Counter unauthorized_updates;
    metrics::Counter auth_failures;
    metrics::Counter acks_sent;
    metrics::Counter renegotiations;
    metrics::Counter channel_updates;
    metrics::Counter resyncs;
    metrics::Counter resync_refetches;
    metrics::Counter readoptions_resumed;
    metrics::Counter readoptions_serial_gap;
    metrics::Counter readoptions_rejected;
  };

  struct LeaseMeta {
    double rate_at_grant = 0.0;
    net::SimTime last_renegotiation = 0;
  };
  struct MetaKey {
    dns::Name name;
    dns::RRType type;
    bool operator<(const MetaKey& other) const {
      if (name < other.name) return true;
      if (other.name < name) return false;
      return type < other.type;
    }
  };

  void maybe_renegotiate(const dns::Name& qname, dns::RRType qtype);
  /// Shared CACHE-UPDATE pipeline: trust gate, verify, parse, grantor
  /// check, serial guard, apply, ack via `send_ack`.
  bool handle_update(const net::Endpoint& from, const dns::Message& message,
                     const AckSender& send_ack);

  server::CachingResolver* resolver_;
  Config config_;
  RateTracker rates_;
  /// Highest zone serial applied, per zone (dedupe / ordering guard).
  std::map<dns::Name, uint32_t> zone_serials_;
  std::map<MetaKey, LeaseMeta> lease_meta_;
  Instruments stats_;
};

}  // namespace dnscup::core

#include "core/dynamic_lease.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/lease_math.h"
#include "util/assert.h"

namespace dnscup::core {

void evaluate_plan(const std::vector<DemandEntry>& demands, LeasePlan& plan) {
  DNSCUP_ASSERT(plan.lengths.size() == demands.size());
  plan.total_storage = 0.0;
  plan.total_message_rate = 0.0;
  double max_rate = 0.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const double t = plan.lengths[i];
    const double rate = demands[i].rate;
    plan.total_storage += lease_probability(t, rate);
    plan.total_message_rate += renewal_rate(t, rate);
    max_rate += rate;
  }
  plan.storage_percentage =
      demands.empty() ? 0.0
                      : 100.0 * plan.total_storage /
                            static_cast<double>(demands.size());
  plan.query_rate_percentage =
      max_rate == 0.0 ? 0.0 : 100.0 * plan.total_message_rate / max_rate;
}

LeasePlan plan_storage_constrained(const std::vector<DemandEntry>& demands,
                                   double storage_budget) {
  DNSCUP_ASSERT(storage_budget >= 0.0);
  LeasePlan plan;
  plan.lengths.assign(demands.size(), 0.0);

  // Greedy: grant maximal leases in decreasing λ order (ΔM/ΔP = λ).
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&demands](std::size_t a,
                                                   std::size_t b) {
    if (demands[a].rate != demands[b].rate) {
      return demands[a].rate > demands[b].rate;
    }
    return a < b;
  });

  double used = 0.0;
  for (std::size_t idx : order) {
    const DemandEntry& d = demands[idx];
    if (d.rate <= 0.0 || d.max_lease <= 0.0) continue;
    const double full = lease_probability(d.max_lease, d.rate);
    if (used + full <= storage_budget) {
      plan.lengths[idx] = d.max_lease;
      used += full;
      continue;
    }
    // Truncate the final lease to land exactly on the budget.
    const double remaining = storage_budget - used;
    if (remaining > 0.0) {
      plan.lengths[idx] = lease_length_for_probability(remaining, d.rate);
      used = storage_budget;
    }
    break;
  }
  evaluate_plan(demands, plan);
  return plan;
}

LeasePlan plan_comm_constrained(const std::vector<DemandEntry>& demands,
                                double message_budget) {
  DNSCUP_ASSERT(message_budget >= 0.0);
  LeasePlan plan;
  plan.lengths.resize(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    plan.lengths[i] = demands[i].max_lease;
  }
  evaluate_plan(demands, plan);

  // Deprive smallest-λ caches while the budget holds: removing entry i
  // adds λ_i - M(L_i, λ_i) traffic and frees P(L_i, λ_i) storage.
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&demands](std::size_t a,
                                                   std::size_t b) {
    if (demands[a].rate != demands[b].rate) {
      return demands[a].rate < demands[b].rate;
    }
    return a < b;
  });

  double traffic = plan.total_message_rate;
  for (std::size_t idx : order) {
    const DemandEntry& d = demands[idx];
    if (plan.lengths[idx] <= 0.0 || d.rate <= 0.0) continue;
    const double added = d.rate - renewal_rate(plan.lengths[idx], d.rate);
    if (traffic + added > message_budget) continue;
    plan.lengths[idx] = 0.0;
    traffic += added;
  }
  evaluate_plan(demands, plan);
  return plan;
}

LeasePlan plan_fixed(const std::vector<DemandEntry>& demands, double t) {
  DNSCUP_ASSERT(t >= 0.0);
  LeasePlan plan;
  plan.lengths.resize(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    // Even the fixed scheme may not lease beyond a record's safe horizon
    // L_i (the record could change under the lease) — without this cap the
    // comparison against the dynamic planner would not be apples-to-apples.
    plan.lengths[i] = std::min(t, demands[i].max_lease);
  }
  evaluate_plan(demands, plan);
  return plan;
}

LeasePlan plan_polling(const std::vector<DemandEntry>& demands) {
  return plan_fixed(demands, 0.0);
}

namespace {

/// Enumerates all leased-subsets of the demands (each entry unleased or at
/// its maximum) and returns the best plan per the given objective.
template <typename Feasible, typename Better>
LeasePlan brute_force(const std::vector<DemandEntry>& demands,
                      Feasible feasible, Better better) {
  DNSCUP_ASSERT(demands.size() <= 20);
  LeasePlan best;
  best.lengths.assign(demands.size(), 0.0);
  evaluate_plan(demands, best);
  bool have_best = feasible(best);

  const std::size_t combos = std::size_t{1} << demands.size();
  for (std::size_t mask = 1; mask < combos; ++mask) {
    LeasePlan candidate;
    candidate.lengths.assign(demands.size(), 0.0);
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (mask & (std::size_t{1} << i)) {
        candidate.lengths[i] = demands[i].max_lease;
      }
    }
    evaluate_plan(demands, candidate);
    if (!feasible(candidate)) continue;
    if (!have_best || better(candidate, best)) {
      best = std::move(candidate);
      have_best = true;
    }
  }
  return best;
}

}  // namespace

LeasePlan brute_force_storage_constrained(
    const std::vector<DemandEntry>& demands, double storage_budget) {
  constexpr double kEps = 1e-9;
  return brute_force(
      demands,
      [storage_budget](const LeasePlan& p) {
        return p.total_storage <= storage_budget + kEps;
      },
      [](const LeasePlan& a, const LeasePlan& b) {
        return a.total_message_rate < b.total_message_rate - kEps;
      });
}

LeasePlan brute_force_comm_constrained(
    const std::vector<DemandEntry>& demands, double message_budget) {
  constexpr double kEps = 1e-9;
  return brute_force(
      demands,
      [message_budget](const LeasePlan& p) {
        return p.total_message_rate <= message_budget + kEps;
      },
      [](const LeasePlan& a, const LeasePlan& b) {
        return a.total_storage < b.total_storage - kEps;
      });
}

}  // namespace dnscup::core

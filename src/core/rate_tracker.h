// Sliding-window query-rate estimation.
//
// Caches use it to fill the RRC field of outgoing queries ("the query rate
// originated from the local clients", §5.2); authorities use it as a
// fallback estimate when a legacy cache sends no RRC, and to drive lease
// re-negotiation when observed rates drift from reported ones.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "dns/name.h"
#include "dns/rdata.h"
#include "net/time.h"

namespace dnscup::core {

class RateTracker {
 public:
  /// `window` is the averaging horizon; `max_samples_per_key` bounds
  /// memory for very hot records (rate stays exact while the oldest
  /// retained sample is within the window).
  explicit RateTracker(net::Duration window = net::hours(1),
                       std::size_t max_samples_per_key = 256)
      : window_(window), max_samples_(max_samples_per_key) {}

  void record(const dns::Name& name, dns::RRType type, net::SimTime now);

  /// Estimated arrival rate in events/second over the window at `now`.
  /// With zero or one retained sample the estimate is count/window.
  double rate(const dns::Name& name, dns::RRType type,
              net::SimTime now) const;

  /// Number of events retained in-window for the key.
  std::size_t count(const dns::Name& name, dns::RRType type,
                    net::SimTime now) const;

  /// Drops keys whose samples all fell out of the window.
  std::size_t prune(net::SimTime now);

  std::size_t tracked_keys() const { return samples_.size(); }

 private:
  struct Key {
    dns::Name name;
    dns::RRType type;
    bool operator==(const Key& other) const {
      return type == other.type && name == other.name;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return k.name.hash() * 31 + static_cast<std::size_t>(k.type);
    }
  };

  void trim(std::deque<net::SimTime>& times, net::SimTime now) const;

  net::Duration window_;
  std::size_t max_samples_;
  std::unordered_map<Key, std::deque<net::SimTime>, KeyHash> samples_;
};

}  // namespace dnscup::core

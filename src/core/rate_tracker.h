// Sliding-window query-rate estimation.
//
// Caches use it to fill the RRC field of outgoing queries ("the query rate
// originated from the local clients", §5.2); authorities use it as a
// fallback estimate when a legacy cache sends no RRC, and to drive lease
// re-negotiation when observed rates drift from reported ones.
//
// Samples live in per-key ring buffers (not deques, whose block churn
// allocates on every push/pop cycle), and keys can be probed with a wire
// NameView via transparent hashing — so on the serve hot path, recording a
// query for an already-tracked name performs zero heap allocations.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dns/name.h"
#include "dns/rdata.h"
#include "net/time.h"
#include "util/metrics.h"

namespace dnscup::core {

/// Fixed-capacity FIFO of timestamps.  Storage grows geometrically up to
/// `capacity` and is then reused forever; once warm, push/pop are
/// allocation-free (unlike std::deque's block churn).
class SampleRing {
 public:
  explicit SampleRing(std::size_t capacity) : cap_(capacity) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  net::SimTime front() const { return buf_[head_]; }
  net::SimTime at(std::size_t i) const {
    return buf_[(head_ + i) % buf_.size()];
  }

  /// Appends; drops the oldest sample when at capacity.
  void push(net::SimTime t) {
    if (size_ == cap_ && size_ > 0) pop_front();
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) % buf_.size()] = t;
    ++size_;
  }

  void pop_front() {
    head_ = (head_ + 1) % buf_.size();
    --size_;
  }

 private:
  void grow() {
    std::size_t next = buf_.empty() ? 8 : buf_.size() * 2;
    if (next > cap_) next = cap_;
    std::vector<net::SimTime> fresh(next);
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = at(i);
    buf_ = std::move(fresh);
    head_ = 0;
  }

  std::size_t cap_;
  std::vector<net::SimTime> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

class RateTracker {
 public:
  /// `window` is the averaging horizon; `max_samples_per_key` bounds
  /// memory for very hot records (rate stays exact while the oldest
  /// retained sample is within the window).  `max_keys` caps the tracked
  /// key set: a new key arriving at the cap triggers a prune, and is
  /// dropped (counted in keys_dropped()) if the map is still full — so a
  /// scan of millions of one-off names cannot grow estimator state
  /// without bound.
  explicit RateTracker(net::Duration window = net::hours(1),
                       std::size_t max_samples_per_key = 256,
                       std::size_t max_keys = 1 << 20)
      : window_(window), max_samples_(max_samples_per_key),
        max_keys_(max_keys) {}

  void record(const dns::Name& name, dns::RRType type, net::SimTime now);

  /// Hot-path variant: probes by view; the owning Name key is materialized
  /// only the first time a (name, type) is seen.
  void record_view(const dns::NameView& name, dns::RRType type,
                   net::SimTime now);

  /// Estimated arrival rate in events/second over the window at `now`.
  /// With zero or one retained sample the estimate is count/window.
  double rate(const dns::Name& name, dns::RRType type,
              net::SimTime now) const;

  /// Number of events retained in-window for the key.
  std::size_t count(const dns::Name& name, dns::RRType type,
                    net::SimTime now) const;

  /// Drops keys whose samples all fell out of the window.  Also runs
  /// automatically from record()/record_view() every ~size/2 recordings,
  /// so idle keys decay away under traffic without any external timer
  /// (amortized O(1) per recording, and erase-only — no allocation on the
  /// serve hot path).
  std::size_t prune(net::SimTime now);

  std::size_t tracked_keys() const { return samples_.size(); }

  /// New keys rejected because the tracker was at max_keys even after a
  /// prune.
  uint64_t keys_dropped() const { return keys_dropped_; }

  /// Published occupancy (tracked-key count), refreshed on insert/prune.
  void set_keys_gauge(metrics::Gauge gauge) {
    keys_gauge_ = std::move(gauge);
    keys_gauge_.set(static_cast<double>(samples_.size()));
  }

 private:
  struct Key {
    dns::Name name;
    dns::RRType type;
    bool operator==(const Key& other) const {
      return type == other.type && name == other.name;
    }
  };
  /// Borrowed probe key for transparent lookups from wire views.
  struct KeyView {
    const dns::NameView& name;
    dns::RRType type;
  };
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(const Key& k) const {
      return k.name.hash() * 31 + static_cast<std::size_t>(k.type);
    }
    std::size_t operator()(const KeyView& k) const {
      return k.name.hash() * 31 + static_cast<std::size_t>(k.type);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const { return a == b; }
    bool operator()(const Key& a, const KeyView& b) const {
      return a.type == b.type && b.name.equals(a.name);
    }
    bool operator()(const KeyView& a, const Key& b) const {
      return a.type == b.type && a.name.equals(b.name);
    }
  };

  void trim(SampleRing& times, net::SimTime now) const;
  /// True when a new key may be inserted (prunes first when at the cap).
  bool admit_new_key(net::SimTime now);
  void maybe_auto_prune(net::SimTime now);

  net::Duration window_;
  std::size_t max_samples_;
  std::size_t max_keys_;
  std::size_t ops_since_prune_ = 0;
  uint64_t keys_dropped_ = 0;
  metrics::Gauge keys_gauge_;
  std::unordered_map<Key, SampleRing, KeyHash, KeyEq> samples_;
};

}  // namespace dnscup::core

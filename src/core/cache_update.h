// The CACHE-UPDATE message (paper §5.2): opcode 6, carried over UDP.
//
// Layout mirrors RFC 2136 UPDATE, which the paper builds on: the zone (and
// its current serial) in the question/additional slots, the changed RRsets
// in the answer section, and deletions as empty-RDATA class-ANY stubs in
// the authority section.  The receiving cache replaces its copies of the
// changed records and acknowledges with an empty response of the same id;
// the notification module retransmits unacknowledged updates.
#pragma once

#include <optional>
#include <vector>

#include "dns/message.h"
#include "dns/rr.h"
#include "dns/zone.h"
#include "util/result.h"

namespace dnscup::core {

struct CacheUpdate {
  dns::Name zone;
  uint32_t serial = 0;  ///< zone serial after the change (dedupe/ordering)
  /// RRsets with new data (replace-in-cache).
  std::vector<dns::RRset> updated;
  /// (name, type) pairs whose RRset was removed (invalidate-in-cache).
  std::vector<std::pair<dns::Name, dns::RRType>> removed;
};

/// Builds the wire message for one cache holding leases on the changed
/// records.  `changes` entries with `after` become `updated`; without
/// `after` become `removed`.
dns::Message encode_cache_update(uint16_t id, const dns::Name& zone,
                                 uint32_t serial,
                                 const std::vector<dns::RRsetChange>& changes);

/// Parses a CACHE-UPDATE request.  Fails on anything that is not a
/// well-formed opcode-6 request.
util::Result<CacheUpdate> parse_cache_update(const dns::Message& message);

/// The acknowledgement a cache returns: empty opcode-6 response, same id.
dns::Message make_cache_update_ack(const dns::Message& update);

/// True if `message` is a CACHE-UPDATE acknowledgement.
bool is_cache_update_ack(const dns::Message& message);

}  // namespace dnscup::core

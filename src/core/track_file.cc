#include "core/track_file.h"

#include <charconv>
#include <sstream>

#include "core/persistence.h"
#include "util/assert.h"

namespace dnscup::core {

TrackFile::TrackFile(metrics::MetricsRegistry* metrics) {
  auto& registry = metrics::resolve(metrics);
  const metrics::Labels base{
      {"instance", registry.next_instance("track_file")}};
  auto labeled = [&](const char* op) {
    metrics::Labels labels = base;
    labels.emplace_back("op", op);
    return labels;
  };
  stats_.grants = registry.counter("track_file_lease_ops", labeled("grant"));
  stats_.renewals =
      registry.counter("track_file_lease_ops", labeled("renew"));
  stats_.revocations =
      registry.counter("track_file_lease_ops", labeled("revoke"));
  stats_.pruned = registry.counter("track_file_pruned", base);
}

TrackFile::Stats TrackFile::stats() const {
  return Stats{
      .grants = stats_.grants,
      .renewals = stats_.renewals,
      .revocations = stats_.revocations,
      .pruned = stats_.pruned,
  };
}

void TrackFile::grant(const net::Endpoint& holder, const dns::Name& name,
                      dns::RRType type, net::SimTime now,
                      net::Duration length) {
  DNSCUP_ASSERT(length > 0);
  auto& holders = leases_[Key{name, type}];
  auto [it, inserted] = holders.try_emplace(holder);
  const bool renewal = !inserted && it->second.valid(now);
  if (renewal) {
    ++stats_.renewals;
  } else {
    ++stats_.grants;
  }
  it->second = Lease{holder, name, type, now, length};
  if (journal_ != nullptr) journal_->record_grant(it->second, renewal);
}

void TrackFile::restore(const Lease& lease) {
  leases_[Key{lease.name, lease.type}][lease.holder] = lease;
}

const Lease* TrackFile::find(const net::Endpoint& holder,
                             const dns::Name& name, dns::RRType type) const {
  auto it = leases_.find(Key{name, type});
  if (it == leases_.end()) return nullptr;
  auto hit = it->second.find(holder);
  return hit == it->second.end() ? nullptr : &hit->second;
}

std::vector<Lease> TrackFile::holders_of(const dns::Name& name,
                                         dns::RRType type,
                                         net::SimTime now) const {
  std::vector<Lease> out;
  auto it = leases_.find(Key{name, type});
  if (it == leases_.end()) return out;
  for (const auto& [holder, lease] : it->second) {
    if (lease.valid(now)) out.push_back(lease);
  }
  return out;
}

std::vector<Lease> TrackFile::leases_of(const net::Endpoint& holder,
                                        net::SimTime now) const {
  std::vector<Lease> out;
  for (const auto& [key, holders] : leases_) {
    auto it = holders.find(holder);
    if (it != holders.end() && it->second.valid(now)) {
      out.push_back(it->second);
    }
  }
  return out;
}

bool TrackFile::revoke(const net::Endpoint& holder, const dns::Name& name,
                       dns::RRType type) {
  auto it = leases_.find(Key{name, type});
  if (it == leases_.end()) return false;
  if (it->second.erase(holder) == 0) return false;
  if (it->second.empty()) leases_.erase(it);
  ++stats_.revocations;
  if (journal_ != nullptr) journal_->record_revoke(holder, name, type);
  return true;
}

std::size_t TrackFile::prune(net::SimTime now) {
  std::size_t removed = 0;
  for (auto it = leases_.begin(); it != leases_.end();) {
    auto& holders = it->second;
    for (auto hit = holders.begin(); hit != holders.end();) {
      if (!hit->second.valid(now)) {
        hit = holders.erase(hit);
        ++removed;
      } else {
        ++hit;
      }
    }
    it = holders.empty() ? leases_.erase(it) : std::next(it);
  }
  stats_.pruned += removed;
  // One compact WAL record covers the whole sweep: replay re-applies the
  // same expiry filter.  An empty sweep changes nothing, so skip it.
  if (removed > 0 && journal_ != nullptr) journal_->record_prune(now);
  return removed;
}

std::size_t TrackFile::live_count(net::SimTime now) const {
  std::size_t count = 0;
  for (const auto& [key, holders] : leases_) {
    for (const auto& [holder, lease] : holders) {
      if (lease.valid(now)) ++count;
    }
  }
  return count;
}

std::size_t TrackFile::size() const {
  std::size_t count = 0;
  for (const auto& [key, holders] : leases_) count += holders.size();
  return count;
}

std::string TrackFile::serialize(net::SimTime now) const {
  std::ostringstream os;
  for (const auto& [key, holders] : leases_) {
    for (const auto& [holder, lease] : holders) {
      if (!lease.valid(now)) continue;
      os << holder.to_string() << ' ' << lease.name.to_string() << ' '
         << dns::to_string(lease.type) << ' ' << lease.granted_at << ' '
         << lease.length << '\n';
    }
  }
  return os.str();
}

namespace {

util::Result<net::Endpoint> parse_endpoint(std::string_view text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string_view::npos) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "endpoint missing port");
  }
  DNSCUP_ASSIGN_OR_RETURN(dns::Ipv4 ip, dns::Ipv4::parse(text.substr(0, colon)));
  uint16_t port = 0;
  const auto ptext = text.substr(colon + 1);
  const auto [ptr, ec] =
      std::from_chars(ptext.data(), ptext.data() + ptext.size(), port);
  if (ec != std::errc() || ptr != ptext.data() + ptext.size()) {
    return util::make_error(util::ErrorCode::kMalformed, "bad port");
  }
  return net::Endpoint{ip.addr, port};
}

}  // namespace

util::Result<TrackFile> TrackFile::parse(std::string_view text) {
  TrackFile tf;
  std::size_t start = 0;
  std::size_t lineno = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(start, nl - start);
    start = nl + 1;
    ++lineno;
    if (line.empty()) continue;

    std::istringstream is{std::string(line)};
    std::string addr, name_text, type_text;
    int64_t granted = 0;
    int64_t length = 0;
    if (!(is >> addr >> name_text >> type_text >> granted >> length)) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "track file line " + std::to_string(lineno));
    }
    DNSCUP_ASSIGN_OR_RETURN(net::Endpoint holder, parse_endpoint(addr));
    DNSCUP_ASSIGN_OR_RETURN(dns::Name name, dns::Name::parse(name_text));
    DNSCUP_ASSIGN_OR_RETURN(dns::RRType type,
                            dns::rrtype_from_string(type_text));
    auto& holders = tf.leases_[Key{name, type}];
    const bool inserted =
        holders.try_emplace(holder, Lease{holder, name, type, granted, length})
            .second;
    if (!inserted) {
      return util::make_error(
          util::ErrorCode::kExists,
          "duplicate lease for " + holder.to_string() + " on track file line " +
              std::to_string(lineno));
    }
  }
  return tf;
}

}  // namespace dnscup::core

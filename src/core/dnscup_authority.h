// DNScup authority-side middleware (paper Figure 6).
//
// Wraps an unmodified AuthServer with the three DNScup components:
//
//   detection module    — subscribes to zone-change events (dynamic
//                         updates, AXFR refreshes and manual reloads all
//                         flow through AuthServer's change hooks);
//   listening module    — observes queries, grants leases, stamps LLT;
//   notification module — pushes CACHE-UPDATE messages to leaseholders
//                         and tracks acknowledgements.
//
// The wrapper owns the track file and the grant policy; the AuthServer's
// "named modules" stay untouched, which is the paper's minimal-modification
// deployment claim.
#pragma once

#include <memory>

#include "core/listener.h"
#include "core/notifier.h"
#include "core/persistence.h"
#include "core/policy.h"
#include "core/track_file.h"
#include "server/authoritative.h"

namespace dnscup::core {

class DnscupAuthority {
 public:
  enum class PolicyKind {
    kStorageBudget,  ///< §4.2.1 online: cap the live-lease count
    kCommBudget,     ///< §4.2.2 online: cap authority-bound traffic
    kAlwaysGrant,    ///< fixed-lease mode: every EXT query gets max lease
  };

  struct Config {
    MaxLeaseFn max_lease;                       ///< required
    PolicyKind policy = PolicyKind::kStorageBudget;
    std::size_t storage_budget = 100000;        ///< live-lease target
    double message_budget = 1e6;                ///< messages/s (kCommBudget)
    NotificationModule::Config notification;    ///< retransmit behaviour
    /// Deprecated alias for policy = kAlwaysGrant.  Normalized into
    /// `policy` by the constructor, so the two can never disagree.
    bool always_grant = false;
    /// Online lease planner (not owned, may be null).  When set, the
    /// grant policy selected above becomes the *fallback*: every EXT
    /// decision feeds the planner an observation and grants whatever
    /// lease length the planner assigned the (cache, record) pair —
    /// falling back to the configured policy only until the planner has
    /// processed the pair (see PlannerGrantPolicy).
    LeaseAssignmentSource* planner = nullptr;
    /// Registry for authority/track-file/listener/notifier instruments
    /// (default_registry() when null).
    metrics::MetricsRegistry* metrics = nullptr;
    /// Durable-state journal (store::LeaseStore or any StateJournal).
    /// When set, every lease mutation and zone-serial change is recorded
    /// through it; recover() restores the journal's state after a crash.
    /// Not owned, may be null (volatile authority, the previous default).
    StateJournal* journal = nullptr;
  };

  /// Attaches DNScup to `server`.  The server must outlive this object.
  DnscupAuthority(server::AuthServer& server, net::EventLoop& loop,
                  Config config);

  TrackFile& track_file() { return track_file_; }
  const TrackFile& track_file() const { return track_file_; }
  ListeningModule& listener() { return listener_; }
  NotificationModule& notifier() { return notifier_; }
  GrantPolicy& policy() { return *policy_; }

  /// The policy actually in effect after deprecated-alias normalization.
  PolicyKind policy_kind() const { return config_.policy; }

  struct DetectionStats {
    uint64_t change_events = 0;
    uint64_t rrsets_changed = 0;
  };
  /// Value snapshot of the registry-backed counters.
  DetectionStats detection_stats() const;

  /// Recomputes the authority_live_leases / authority_storage_budget
  /// occupancy gauges (live_count is O(leases), so this is not done on
  /// the query hot path — change events and periodic dumps call it).
  void refresh_gauges();

  /// What recover() did, for logging and tests.
  struct RecoveryReport {
    uint64_t leases_restored = 0;   ///< still valid at recovery time
    uint64_t leases_expired = 0;    ///< expired during the outage, dropped
    uint64_t zones_changed = 0;     ///< zones whose serial moved while down
    uint64_t changes_pushed = 0;    ///< RRset changes fanned out on resume
  };

  /// Crash recovery: re-adopts the surviving lease set from the durable
  /// store, re-arms the expiry (prune) timer, and resumes CACHE-UPDATE
  /// fan-out — any zone whose serial no longer matches the last serial
  /// the leaseholders were notified about is pushed to every surviving
  /// holder.  Call once, after zones are loaded and before serving.
  RecoveryReport recover(const RecoveredState& state);

  /// One surviving lease a warm-restarted cache announces in its v2
  /// SUBSCRIBE (push framing's LeaseSurvivor, re-declared here because
  /// core does not depend on the push plane).
  struct ReadoptRequest {
    dns::Name name;
    dns::RRType type = dns::RRType::kA;
    net::Duration remaining = 0;  ///< lease time the cache believes is left
  };

  /// Cache-restart lease re-adoption: re-registers each survivor we are
  /// authoritative for, with the announced remaining term clamped by the
  /// configured max lease.  Returns one verdict per request (true =
  /// re-adopted; CACHE-UPDATE pushes for the record resume).  Grants go
  /// through the track file, so they journal and count like fresh
  /// grants, and the expiry timer covers them.  Counted under
  /// authority_lease_readoptions{result=resumed|rejected}.
  std::vector<bool> readopt(const net::Endpoint& holder,
                            const std::vector<ReadoptRequest>& requests);

 private:
  /// Schedules a prune at the earliest lease expiry (re-armed after every
  /// sweep), so expired tuples leave the track file — and the durable
  /// store — without waiting for traffic.
  void arm_expiry_timer();
  struct Instruments {
    metrics::Counter change_events;
    metrics::Counter rrsets_changed;
  };

  server::AuthServer* server_;
  net::EventLoop* loop_;
  Config config_;
  TrackFile track_file_;
  std::unique_ptr<GrantPolicy> policy_;
  ListeningModule listener_;
  NotificationModule notifier_;
  Instruments detection_stats_;
  metrics::Gauge live_leases_;
  metrics::Gauge storage_budget_;
  metrics::Gauge recovered_leases_;
  metrics::Counter recovery_changes_pushed_;
  metrics::Counter readoptions_resumed_;
  metrics::Counter readoptions_rejected_;
  net::TimerHandle expiry_timer_;
};

}  // namespace dnscup::core

// DNScup authority-side middleware (paper Figure 6).
//
// Wraps an unmodified AuthServer with the three DNScup components:
//
//   detection module    — subscribes to zone-change events (dynamic
//                         updates, AXFR refreshes and manual reloads all
//                         flow through AuthServer's change hooks);
//   listening module    — observes queries, grants leases, stamps LLT;
//   notification module — pushes CACHE-UPDATE messages to leaseholders
//                         and tracks acknowledgements.
//
// The wrapper owns the track file and the grant policy; the AuthServer's
// "named modules" stay untouched, which is the paper's minimal-modification
// deployment claim.
#pragma once

#include <memory>

#include "core/listener.h"
#include "core/notifier.h"
#include "core/policy.h"
#include "core/track_file.h"
#include "server/authoritative.h"

namespace dnscup::core {

class DnscupAuthority {
 public:
  enum class PolicyKind {
    kStorageBudget,  ///< §4.2.1 online: cap the live-lease count
    kCommBudget,     ///< §4.2.2 online: cap authority-bound traffic
    kAlwaysGrant,    ///< fixed-lease mode: every EXT query gets max lease
  };

  struct Config {
    MaxLeaseFn max_lease;                       ///< required
    PolicyKind policy = PolicyKind::kStorageBudget;
    std::size_t storage_budget = 100000;        ///< live-lease target
    double message_budget = 1e6;                ///< messages/s (kCommBudget)
    NotificationModule::Config notification;    ///< retransmit behaviour
    /// Deprecated alias for policy = kAlwaysGrant.
    bool always_grant = false;
  };

  /// Attaches DNScup to `server`.  The server must outlive this object.
  DnscupAuthority(server::AuthServer& server, net::EventLoop& loop,
                  Config config);

  TrackFile& track_file() { return track_file_; }
  const TrackFile& track_file() const { return track_file_; }
  ListeningModule& listener() { return listener_; }
  NotificationModule& notifier() { return notifier_; }
  GrantPolicy& policy() { return *policy_; }

  struct DetectionStats {
    uint64_t change_events = 0;
    uint64_t rrsets_changed = 0;
  };
  const DetectionStats& detection_stats() const { return detection_stats_; }

 private:
  server::AuthServer* server_;
  net::EventLoop* loop_;
  TrackFile track_file_;
  std::unique_ptr<GrantPolicy> policy_;
  ListeningModule listener_;
  NotificationModule notifier_;
  DetectionStats detection_stats_;
};

}  // namespace dnscup::core

// Delegation consistency auditing — the paper's §1 side application:
// "we can apply the functionality of DNScup to maintain state consistency
// between a DNS nameserver of a parent zone and the DNS nameservers of
// its child zones, preventing the lame delegation problem [Pappas et
// al.]."
//
// A delegation is *lame* when the parent's NS records for a child zone
// disagree with the child's apex NS RRset, or point at servers that are
// not authoritative for the child.  audit_delegation() reports the
// discrepancies; DelegationGuard subscribes a parent AuthServer to a
// child's zone changes so the parent's NS/glue records follow the child's
// apex automatically — DNScup's detection/notification machinery applied
// to the parent-child relationship.
#pragma once

#include <string>
#include <vector>

#include "dns/zone.h"
#include "server/authoritative.h"

namespace dnscup::core {

enum class DelegationIssue {
  kNoDelegation,       ///< parent has no NS records for the child at all
  kMissingAtParent,    ///< child apex lists an NS the parent omits
  kStaleAtParent,      ///< parent lists an NS the child no longer has
  kMissingGlue,        ///< in-zone NS target without an A record at parent
  kGlueMismatch,       ///< parent glue A disagrees with child's own A
};

const char* to_string(DelegationIssue issue);

struct DelegationFinding {
  DelegationIssue issue;
  dns::Name subject;   ///< the NS name (or child origin for kNoDelegation)
  std::string detail;
};

/// Compares the parent's view of the delegation for `child.origin()`
/// against the child zone's own apex data.  An empty result means the
/// delegation is consistent (not lame).
std::vector<DelegationFinding> audit_delegation(const dns::Zone& parent,
                                                const dns::Zone& child);

/// Keeps a parent server's delegation records for one child zone in sync
/// with the child's apex: subscribes to the child server's zone-change
/// events and rewrites the parent's NS + glue whenever the child's apex
/// NS set or an NS target's address changes.  Both servers must outlive
/// the guard.
class DelegationGuard {
 public:
  DelegationGuard(server::AuthServer& parent, server::AuthServer& child,
                  dns::Name child_origin);

  uint64_t syncs() const { return syncs_; }

 private:
  void sync_from(const dns::Zone& child_zone);

  server::AuthServer* parent_;
  dns::Name child_origin_;
  uint64_t syncs_ = 0;
};

}  // namespace dnscup::core

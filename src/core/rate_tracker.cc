#include "core/rate_tracker.h"

#include <algorithm>

namespace dnscup::core {

void RateTracker::record(const dns::Name& name, dns::RRType type,
                         net::SimTime now) {
  auto it = samples_.find(Key{name, type});
  if (it == samples_.end()) {
    if (!admit_new_key(now)) return;
    it = samples_.try_emplace(Key{name, type}, max_samples_).first;
    keys_gauge_.set(static_cast<double>(samples_.size()));
  }
  it->second.push(now);
  trim(it->second, now);
  maybe_auto_prune(now);
}

void RateTracker::record_view(const dns::NameView& name, dns::RRType type,
                              net::SimTime now) {
  auto it = samples_.find(KeyView{name, type});
  if (it == samples_.end()) {
    if (!admit_new_key(now)) return;
    // First sighting of this key: materialize an owning Name (the only
    // allocation this path ever makes — steady state hits the view probe).
    it = samples_.try_emplace(Key{name.materialize(), type}, max_samples_)
             .first;
    keys_gauge_.set(static_cast<double>(samples_.size()));
  }
  it->second.push(now);
  trim(it->second, now);
  maybe_auto_prune(now);
}

bool RateTracker::admit_new_key(net::SimTime now) {
  if (samples_.size() < max_keys_) return true;
  prune(now);
  if (samples_.size() < max_keys_) return true;
  ++keys_dropped_;
  return false;
}

void RateTracker::maybe_auto_prune(net::SimTime now) {
  // A full prune every ~size/2 recordings keeps the walk amortized O(1)
  // per recording while guaranteeing idle keys disappear within one
  // window's worth of traffic.
  const std::size_t interval =
      std::max<std::size_t>(64, samples_.size() / 2);
  if (++ops_since_prune_ < interval) return;
  prune(now);
}

void RateTracker::trim(SampleRing& times, net::SimTime now) const {
  const net::SimTime horizon = now - window_;
  while (!times.empty() && times.front() < horizon) times.pop_front();
}

double RateTracker::rate(const dns::Name& name, dns::RRType type,
                         net::SimTime now) const {
  auto it = samples_.find(Key{name, type});
  if (it == samples_.end()) return 0.0;
  // Count in-window samples without mutating state (const method).
  const net::SimTime horizon = now - window_;
  std::size_t live = 0;
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    if (it->second.at(i) >= horizon) ++live;
  }
  if (live == 0) return 0.0;
  return static_cast<double>(live) / net::to_seconds(window_);
}

std::size_t RateTracker::count(const dns::Name& name, dns::RRType type,
                               net::SimTime now) const {
  auto it = samples_.find(Key{name, type});
  if (it == samples_.end()) return 0;
  const net::SimTime horizon = now - window_;
  std::size_t live = 0;
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    if (it->second.at(i) >= horizon) ++live;
  }
  return live;
}

std::size_t RateTracker::prune(net::SimTime now) {
  std::size_t removed = 0;
  for (auto it = samples_.begin(); it != samples_.end();) {
    trim(it->second, now);
    if (it->second.empty()) {
      it = samples_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  ops_since_prune_ = 0;
  keys_gauge_.set(static_cast<double>(samples_.size()));
  return removed;
}

}  // namespace dnscup::core

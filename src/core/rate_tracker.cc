#include "core/rate_tracker.h"

namespace dnscup::core {

void RateTracker::record(const dns::Name& name, dns::RRType type,
                         net::SimTime now) {
  auto& times = samples_[Key{name, type}];
  times.push_back(now);
  if (times.size() > max_samples_) times.pop_front();
  trim(times, now);
}

void RateTracker::trim(std::deque<net::SimTime>& times,
                       net::SimTime now) const {
  const net::SimTime horizon = now - window_;
  while (!times.empty() && times.front() < horizon) times.pop_front();
}

double RateTracker::rate(const dns::Name& name, dns::RRType type,
                         net::SimTime now) const {
  auto it = samples_.find(Key{name, type});
  if (it == samples_.end()) return 0.0;
  // Count in-window samples without mutating state (const method).
  const net::SimTime horizon = now - window_;
  std::size_t live = 0;
  for (auto t : it->second) {
    if (t >= horizon) ++live;
  }
  if (live == 0) return 0.0;
  return static_cast<double>(live) / net::to_seconds(window_);
}

std::size_t RateTracker::count(const dns::Name& name, dns::RRType type,
                               net::SimTime now) const {
  auto it = samples_.find(Key{name, type});
  if (it == samples_.end()) return 0;
  const net::SimTime horizon = now - window_;
  std::size_t live = 0;
  for (auto t : it->second) {
    if (t >= horizon) ++live;
  }
  return live;
}

std::size_t RateTracker::prune(net::SimTime now) {
  std::size_t removed = 0;
  for (auto it = samples_.begin(); it != samples_.end();) {
    trim(it->second, now);
    if (it->second.empty()) {
      it = samples_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace dnscup::core

#include "core/auth.h"

#include <cstdio>

#include "util/assert.h"

namespace dnscup::core {

namespace {

constexpr const char* kMacLabel = "_dnscup-mac";

bool is_mac_record(const dns::ResourceRecord& rr) {
  return rr.type() == dns::RRType::kTXT && rr.name.label_count() > 0 &&
         dns::label_equal(rr.name.label(0), kMacLabel);
}

}  // namespace

std::string SharedKeyAuthenticator::digest(
    const dns::Message& message) const {
  // Keyed FNV-1a over key || wire || key.  Demonstration only — see the
  // header comment; a deployment substitutes HMAC-SHA256 here.
  const auto wire = message.encode();
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (char c : key_) mix(static_cast<uint8_t>(c));
  for (uint8_t b : wire) mix(b);
  for (char c : key_) mix(static_cast<uint8_t>(c));
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

void SharedKeyAuthenticator::sign(dns::Message& message) {
  DNSCUP_ASSERT(!message.questions.empty());
  const std::string mac = digest(message);
  dns::ResourceRecord rr;
  rr.name = message.questions[0].qname.prepend(kMacLabel);
  rr.rrclass = dns::RRClass::kIN;
  rr.ttl = 0;
  rr.rdata = dns::TXTRdata{{mac}};
  message.additional.push_back(std::move(rr));
}

bool SharedKeyAuthenticator::verify(dns::Message& message) {
  // Locate the MAC record (it is the last additional record we appended,
  // but scan defensively).
  for (std::size_t i = message.additional.size(); i-- > 0;) {
    const auto& rr = message.additional[i];
    if (!is_mac_record(rr)) continue;
    const auto* txt = std::get_if<dns::TXTRdata>(&rr.rdata);
    if (txt == nullptr || txt->strings.size() != 1) return false;
    const std::string presented = txt->strings[0];

    dns::Message stripped = message;
    stripped.additional.erase(stripped.additional.begin() +
                              static_cast<std::ptrdiff_t>(i));
    if (digest(stripped) != presented) return false;
    message = std::move(stripped);
    return true;
  }
  return false;  // unsigned
}

}  // namespace dnscup::core

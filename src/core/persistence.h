// Persistence hooks between the DNScup core and the durable state store.
//
// The core publishes every hard-state mutation — lease grants/renewals,
// revocations, prunes and zone-serial changes — through the StateJournal
// interface; src/store's LeaseStore implements it with a write-ahead log
// and snapshots.  The core never depends on the store layer, only on this
// interface, so simulations and tests run unchanged with no journal
// attached.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/track_file.h"

namespace dnscup::core {

class StateJournal {
 public:
  virtual ~StateJournal() = default;

  /// A lease was granted (or renewed — same replay semantics, kept
  /// distinct for observability).
  virtual void record_grant(const Lease& lease, bool renewal) = 0;
  virtual void record_revoke(const net::Endpoint& holder,
                             const dns::Name& name, dns::RRType type) = 0;
  /// Expired leases were pruned at `now`; replay re-applies the same
  /// deterministic expiry filter.
  virtual void record_prune(net::SimTime now) = 0;
  /// A zone changed; `serial` is its serial after the change.  Recovery
  /// compares this against the currently loaded zone to detect changes
  /// that happened while the authority was down.
  virtual void record_zone_serial(const dns::Name& origin,
                                  uint32_t serial) = 0;
};

/// What the store hands back after crash recovery: the surviving lease
/// set (validity not yet filtered — the authority drops leases that
/// expired during the outage), the last zone serial each leaseholder was
/// notified about, and recovery telemetry.
struct RecoveredState {
  std::vector<Lease> leases;
  std::map<dns::Name, uint32_t> zone_serials;
  uint64_t snapshot_lsn = 0;     ///< 0 when no snapshot was found
  uint64_t replayed_records = 0;
  uint64_t torn_records = 0;
  int64_t duration_us = 0;       ///< wall-clock recovery time
};

}  // namespace dnscup::core

// Message-authentication hooks for CACHE-UPDATE (paper §5.3).
//
// The 2006 prototype transmits in plain text and defers integrity to
// DNSSEC / secure dynamic update (RFC 2535/3007).  This module provides
// the seam those mechanisms would plug into: the notification module
// signs every CACHE-UPDATE through a MessageAuthenticator before sending,
// and the lease client verifies before applying.  With no authenticator
// configured, behaviour is the paper's plain-text default.
//
// SharedKeyAuthenticator is a *demonstration* implementation in the shape
// of TSIG (shared key, per-message MAC carried in the additional
// section).  Its digest is a keyed FNV-1a — NOT cryptographically secure;
// it exists to exercise the signing/verification path and its failure
// handling, and to be replaced by a real HMAC when one is available.
#pragma once

#include <string>

#include "dns/message.h"

namespace dnscup::core {

class MessageAuthenticator {
 public:
  virtual ~MessageAuthenticator() = default;

  /// Adds authentication data to an outgoing message.
  virtual void sign(dns::Message& message) = 0;

  /// Validates and strips the authentication data of an incoming
  /// message.  Returns false when the message is unsigned or the MAC
  /// does not verify; `message` is left unmodified in that case.
  virtual bool verify(dns::Message& message) = 0;
};

/// TSIG-shaped shared-key authenticator (demonstration digest; see file
/// comment).  The MAC rides as a TXT record owned by `_dnscup-mac.<qname>`
/// appended to the additional section.
class SharedKeyAuthenticator final : public MessageAuthenticator {
 public:
  explicit SharedKeyAuthenticator(std::string key) : key_(std::move(key)) {}

  void sign(dns::Message& message) override;
  bool verify(dns::Message& message) override;

 private:
  std::string digest(const dns::Message& message) const;
  std::string key_;
};

}  // namespace dnscup::core

// Dynamic lease planning (paper §4.2).
//
// Input: one DemandEntry per (resource record R_i, DNS cache C_j) pair with
// the Poisson query rate λ_ij observed in the traces and the per-record
// maximal lease length L_i.  A plan assigns every pair a lease length
// l_ij in [0, L_i].  Costs follow §4.1:
//
//   storage   Σ P(l_ij, λ_ij)               (expected live leases)
//   messages  Σ [l_ij > 0 ? M(l_ij, λ_ij)   (lease renewals)
//                        : λ_ij]            (no lease -> TTL polling)
//
// Two greedy optimizers (the exact problems are knapsack-equivalent and
// NP-complete, §4.2):
//
//  * storage-constrained (SLP): minimize messages s.t. storage <= budget.
//    Grant maximal leases in decreasing λ order; the marginal exchange
//    rate ΔM/ΔP = λ makes that the greedy-optimal order.  The last grant
//    is truncated to land exactly on the budget.
//
//  * communication-constrained: minimize storage s.t. messages <= budget.
//    Start from all-maximal leases (communication minimum) and deprive
//    the smallest-λ caches first — each deprivation frees storage
//    P(L,λ) at communication cost λ·P(L,λ), so small λ buys the most
//    storage per unit of added traffic.
//
// Baselines: fixed-length lease (same t for everyone — the comparison
// curve of Figure 5) and polling (no leases, the TTL status quo).
#pragma once

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace dnscup::core {

struct DemandEntry {
  std::size_t record = 0;  ///< resource-record index (R_i)
  std::size_t cache = 0;   ///< DNS-cache index (C_j)
  double rate = 0.0;       ///< λ_ij, queries/second
  double max_lease = 0.0;  ///< L_i, seconds
};

struct LeasePlan {
  /// Lease length per demand entry, parallel to the input vector.
  std::vector<double> lengths;

  /// Σ P — expected number of live leases.
  double total_storage = 0.0;
  /// Σ M — total message rate (renewals for leased, polling otherwise).
  double total_message_rate = 0.0;

  /// Relative metrics (paper §5.1.2): storage normalized by the pair
  /// count ("maximal number of leases the nameserver could grant"),
  /// message rate normalized by Σ λ (the polling maximum).
  double storage_percentage = 0.0;
  double query_rate_percentage = 0.0;
};

/// Recomputes a plan's aggregate costs from its lengths (exposed for
/// tests and for evaluating hand-crafted plans).
void evaluate_plan(const std::vector<DemandEntry>& demands, LeasePlan& plan);

/// Storage-constrained dynamic lease (§4.2.1).  `storage_budget` is the
/// allowance P_max in expected leases.
LeasePlan plan_storage_constrained(const std::vector<DemandEntry>& demands,
                                   double storage_budget);

/// Communication-constrained dynamic lease (§4.2.2).  `message_budget` in
/// messages/second.  When even all-maximal leases exceed the budget the
/// plan with minimal achievable traffic (all leased) is returned.
LeasePlan plan_comm_constrained(const std::vector<DemandEntry>& demands,
                                double message_budget);

/// Fixed-length lease baseline: every query is granted the same length t,
/// capped at the record's maximum L_i (no scheme may lease a record past
/// its safe change horizon).
LeasePlan plan_fixed(const std::vector<DemandEntry>& demands, double t);

/// TTL-only polling baseline (lease length 0 everywhere).
LeasePlan plan_polling(const std::vector<DemandEntry>& demands);

/// Exhaustive optimum for small instances (≤ ~20 entries), used by tests
/// to certify the greedy solutions.  Considers each entry either unleased
/// or maximally leased, which is sufficient: for a fixed leased-set the
/// costs are monotone in t, so an optimum exists at the extremes (plus one
/// fractional entry, which the greedy handles via truncation).
LeasePlan brute_force_storage_constrained(
    const std::vector<DemandEntry>& demands, double storage_budget);
LeasePlan brute_force_comm_constrained(
    const std::vector<DemandEntry>& demands, double message_budget);

}  // namespace dnscup::core

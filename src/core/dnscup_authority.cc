#include "core/dnscup_authority.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "util/assert.h"
#include "util/logging.h"

namespace dnscup::core {

namespace {

/// Resolves the deprecated always_grant alias into `policy` so the two
/// fields can never disagree downstream, and defaults the notifier's
/// registry to the authority-wide one.
DnscupAuthority::Config normalize(DnscupAuthority::Config config) {
  if (config.always_grant) {
    config.policy = DnscupAuthority::PolicyKind::kAlwaysGrant;
  }
  if (config.notification.metrics == nullptr) {
    config.notification.metrics = config.metrics;
  }
  return config;
}

std::unique_ptr<GrantPolicy> make_base_policy(
    const DnscupAuthority::Config& config, const TrackFile* track_file) {
  DNSCUP_ASSERT(config.max_lease != nullptr);
  using PolicyKind = DnscupAuthority::PolicyKind;
  switch (config.policy) {
    case PolicyKind::kAlwaysGrant:
      return std::make_unique<AlwaysGrantPolicy>(config.max_lease);
    case PolicyKind::kCommBudget: {
      CommBudgetedGrantPolicy::Config policy_config;
      policy_config.message_budget = config.message_budget;
      return std::make_unique<CommBudgetedGrantPolicy>(config.max_lease,
                                                       policy_config);
    }
    case PolicyKind::kStorageBudget:
      break;
  }
  BudgetedGrantPolicy::Config policy_config;
  policy_config.storage_budget = config.storage_budget;
  return std::make_unique<BudgetedGrantPolicy>(config.max_lease, track_file,
                                               policy_config);
}

std::unique_ptr<GrantPolicy> make_policy(const DnscupAuthority::Config& config,
                                         const TrackFile* track_file) {
  auto base = make_base_policy(config, track_file);
  if (config.planner == nullptr) return base;
  return std::make_unique<PlannerGrantPolicy>(config.max_lease, config.planner,
                                              std::move(base));
}

}  // namespace

DnscupAuthority::DnscupAuthority(server::AuthServer& server,
                                 net::EventLoop& loop, Config config)
    : server_(&server),
      loop_(&loop),
      config_(normalize(std::move(config))),
      track_file_(config_.metrics),
      policy_(make_policy(config_, &track_file_)),
      listener_(&track_file_, policy_.get(), config_.metrics),
      notifier_(&server.transport(), &loop, &track_file_,
                config_.notification) {
  auto& registry = metrics::resolve(config_.metrics);
  detection_stats_.change_events =
      registry.counter("detection_change_events");
  detection_stats_.rrsets_changed =
      registry.counter("detection_rrsets_changed");
  live_leases_ = registry.gauge("authority_live_leases");
  storage_budget_ = registry.gauge("authority_storage_budget");
  storage_budget_.set(static_cast<double>(config_.storage_budget));
  recovered_leases_ = registry.gauge("authority_recovered_leases");
  recovery_changes_pushed_ =
      registry.counter("authority_recovery_changes_pushed");
  readoptions_resumed_ = registry.counter(
      "authority_lease_readoptions", {{"result", "resumed"}});
  readoptions_rejected_ = registry.counter(
      "authority_lease_readoptions", {{"result", "rejected"}});

  track_file_.set_journal(config_.journal);

  // The planner wrapper's no-RRC fallback reads the listener's observed
  // rates; wired here because the listener is constructed after the
  // policy (it holds the policy pointer).
  if (config_.planner != nullptr) {
    static_cast<PlannerGrantPolicy&>(*policy_).set_observed_rates(
        &listener_.observed_rates());
  }

  // Listening module: sees every query/response pair.
  server_->set_query_hook([this](const net::Endpoint& from,
                                 const dns::Message& query,
                                 dns::Message& response) {
    listener_.on_query(from, query, response, loop_->now());
  });
  // Zero-copy twin of the above for plain legacy queries: on_query never
  // mutates the response for non-EXT queries, so the fast path only needs
  // the rate observation and the legacy counter replicated.
  server_->set_fast_query_hook([this](const net::Endpoint&,
                                      const dns::NameView& qname,
                                      dns::RRType qtype) {
    listener_.on_query_view(qname, qtype, loop_->now());
  });

  // Detection module: every zone-data change (dynamic update, manual
  // reload, AXFR refresh) arrives here and fans out via the notifier.
  server_->add_change_listener(
      [this](const dns::Zone& zone,
             const std::vector<dns::RRsetChange>& changes) {
        ++detection_stats_.change_events;
        detection_stats_.rrsets_changed += changes.size();
        notifier_.on_zone_change(zone, changes);
        // Persist the serial the leaseholders have now been told about:
        // after a crash, a mismatch against the loaded zone is the signal
        // to re-push.
        if (config_.journal != nullptr) {
          config_.journal->record_zone_serial(zone.origin(), zone.serial());
        }
        refresh_gauges();
      });

  // Notification module: consumes CACHE-UPDATE acknowledgements before
  // the server's normal dispatch.
  // The notifier only eats CACHE-UPDATE acknowledgements, never plain
  // queries, so the fast path may bypass it (may_consume_queries=false).
  server_->set_extension_handler(
      [this](const net::Endpoint& from, const dns::Message& message) {
        return notifier_.on_message(from, message);
      },
      /*may_consume_queries=*/false);
}

DnscupAuthority::DetectionStats DnscupAuthority::detection_stats() const {
  return DetectionStats{
      .change_events = detection_stats_.change_events,
      .rrsets_changed = detection_stats_.rrsets_changed,
  };
}

void DnscupAuthority::refresh_gauges() {
  live_leases_.set(static_cast<double>(track_file_.live_count(loop_->now())));
  storage_budget_.set(static_cast<double>(config_.storage_budget));
}

DnscupAuthority::RecoveryReport DnscupAuthority::recover(
    const RecoveredState& state) {
  const net::SimTime now = loop_->now();
  RecoveryReport report;

  // 1. Re-adopt leases that are still in term; leases that ran out while
  // the authority was down fall back to TTL semantics on their caches and
  // are simply dropped.
  for (const Lease& lease : state.leases) {
    if (lease.valid(now)) {
      track_file_.restore(lease);
      ++report.leases_restored;
    } else {
      ++report.leases_expired;
    }
  }
  recovered_leases_.set(static_cast<double>(report.leases_restored));

  // 2. Re-arm expiry so recovered leases leave the track file (and the
  // durable store) on schedule even with no query traffic.
  arm_expiry_timer();

  // 3. Resume CACHE-UPDATE fan-out.  The journal records the serial the
  // leaseholders were last notified about; a loaded zone with a different
  // serial changed while we were down (or mid-crash), so its current
  // RRsets are pushed to every surviving leaseholder.
  std::map<dns::Name, dns::Zone*> changed;
  for (const dns::Name& origin : server_->zone_origins()) {
    dns::Zone* zone = server_->find_zone(origin);
    DNSCUP_ASSERT(zone != nullptr);
    auto it = state.zone_serials.find(origin);
    if (it != state.zone_serials.end() && it->second != zone->serial()) {
      changed.emplace(origin, zone);
      ++report.zones_changed;
    }
    // Re-anchor the journal at the serial now being served, so the next
    // crash compares against reality.
    if (config_.journal != nullptr) {
      config_.journal->record_zone_serial(origin, zone->serial());
    }
  }

  if (!changed.empty()) {
    std::map<dns::Zone*, std::set<std::pair<dns::Name, dns::RRType>>> leased;
    track_file_.for_each([&](const Lease& lease) {
      if (!lease.valid(now)) return;
      dns::Zone* zone = server_->find_zone(lease.name);
      if (zone != nullptr && changed.count(zone->origin()) > 0) {
        leased[zone].emplace(lease.name, lease.type);
      }
    });
    for (const auto& [zone, pairs] : leased) {
      std::vector<dns::RRsetChange> changes;
      changes.reserve(pairs.size());
      for (const auto& [name, type] : pairs) {
        const dns::RRset* after = zone->find(name, type);
        changes.push_back(dns::RRsetChange{
            name, type, std::nullopt,
            after != nullptr ? std::optional<dns::RRset>(*after)
                             : std::nullopt});
      }
      notifier_.on_zone_change(*zone, changes);
      report.changes_pushed += changes.size();
      recovery_changes_pushed_ += changes.size();
    }
  }

  refresh_gauges();
  DNSCUP_LOG_INFO(
      "recovery: %llu leases restored, %llu expired, %llu zones changed "
      "while down, %llu changes re-pushed",
      static_cast<unsigned long long>(report.leases_restored),
      static_cast<unsigned long long>(report.leases_expired),
      static_cast<unsigned long long>(report.zones_changed),
      static_cast<unsigned long long>(report.changes_pushed));
  return report;
}

std::vector<bool> DnscupAuthority::readopt(
    const net::Endpoint& holder, const std::vector<ReadoptRequest>& requests) {
  const net::SimTime now = loop_->now();
  std::vector<bool> verdicts;
  verdicts.reserve(requests.size());
  bool any = false;
  for (const ReadoptRequest& req : requests) {
    // Re-adopt only records we are (still) authoritative for, for at
    // most the configured max lease: the announced remaining term is the
    // cache's claim, not a commitment we ever made in this incarnation.
    if (server_->find_zone(req.name) == nullptr) {
      verdicts.push_back(false);
      ++readoptions_rejected_;
      continue;
    }
    const net::Duration length =
        std::min(req.remaining, config_.max_lease(req.name, req.type));
    if (length <= 0) {
      verdicts.push_back(false);
      ++readoptions_rejected_;
      continue;
    }
    track_file_.grant(holder, req.name, req.type, now, length);
    verdicts.push_back(true);
    ++readoptions_resumed_;
    any = true;
  }
  if (any) {
    arm_expiry_timer();
    refresh_gauges();
  }
  return verdicts;
}

void DnscupAuthority::arm_expiry_timer() {
  expiry_timer_.cancel();
  net::SimTime earliest = std::numeric_limits<net::SimTime>::max();
  track_file_.for_each([&](const Lease& lease) {
    earliest = std::min(earliest, lease.expiry());
  });
  if (earliest == std::numeric_limits<net::SimTime>::max()) return;
  expiry_timer_ = loop_->schedule_at(earliest, [this] {
    track_file_.prune(loop_->now());
    refresh_gauges();
    arm_expiry_timer();
  });
}

}  // namespace dnscup::core

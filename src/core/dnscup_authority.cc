#include "core/dnscup_authority.h"

#include "util/assert.h"

namespace dnscup::core {

namespace {

std::unique_ptr<GrantPolicy> make_policy(const DnscupAuthority::Config& config,
                                         const TrackFile* track_file) {
  DNSCUP_ASSERT(config.max_lease != nullptr);
  using PolicyKind = DnscupAuthority::PolicyKind;
  const PolicyKind kind =
      config.always_grant ? PolicyKind::kAlwaysGrant : config.policy;
  switch (kind) {
    case PolicyKind::kAlwaysGrant:
      return std::make_unique<AlwaysGrantPolicy>(config.max_lease);
    case PolicyKind::kCommBudget: {
      CommBudgetedGrantPolicy::Config policy_config;
      policy_config.message_budget = config.message_budget;
      return std::make_unique<CommBudgetedGrantPolicy>(config.max_lease,
                                                       policy_config);
    }
    case PolicyKind::kStorageBudget:
      break;
  }
  BudgetedGrantPolicy::Config policy_config;
  policy_config.storage_budget = config.storage_budget;
  return std::make_unique<BudgetedGrantPolicy>(config.max_lease, track_file,
                                               policy_config);
}

}  // namespace

DnscupAuthority::DnscupAuthority(server::AuthServer& server,
                                 net::EventLoop& loop, Config config)
    : server_(&server),
      loop_(&loop),
      policy_(make_policy(config, &track_file_)),
      listener_(&track_file_, policy_.get()),
      notifier_(&server.transport(), &loop, &track_file_,
                config.notification) {
  // Listening module: sees every query/response pair.
  server_->set_query_hook([this](const net::Endpoint& from,
                                 const dns::Message& query,
                                 dns::Message& response) {
    listener_.on_query(from, query, response, loop_->now());
  });

  // Detection module: every zone-data change (dynamic update, manual
  // reload, AXFR refresh) arrives here and fans out via the notifier.
  server_->add_change_listener(
      [this](const dns::Zone& zone,
             const std::vector<dns::RRsetChange>& changes) {
        ++detection_stats_.change_events;
        detection_stats_.rrsets_changed += changes.size();
        notifier_.on_zone_change(zone, changes);
      });

  // Notification module: consumes CACHE-UPDATE acknowledgements before
  // the server's normal dispatch.
  server_->set_extension_handler(
      [this](const net::Endpoint& from, const dns::Message& message) {
        return notifier_.on_message(from, message);
      });
}

}  // namespace dnscup::core

#include "core/dnscup_authority.h"

#include "util/assert.h"

namespace dnscup::core {

namespace {

/// Resolves the deprecated always_grant alias into `policy` so the two
/// fields can never disagree downstream, and defaults the notifier's
/// registry to the authority-wide one.
DnscupAuthority::Config normalize(DnscupAuthority::Config config) {
  if (config.always_grant) {
    config.policy = DnscupAuthority::PolicyKind::kAlwaysGrant;
  }
  if (config.notification.metrics == nullptr) {
    config.notification.metrics = config.metrics;
  }
  return config;
}

std::unique_ptr<GrantPolicy> make_policy(const DnscupAuthority::Config& config,
                                         const TrackFile* track_file) {
  DNSCUP_ASSERT(config.max_lease != nullptr);
  using PolicyKind = DnscupAuthority::PolicyKind;
  switch (config.policy) {
    case PolicyKind::kAlwaysGrant:
      return std::make_unique<AlwaysGrantPolicy>(config.max_lease);
    case PolicyKind::kCommBudget: {
      CommBudgetedGrantPolicy::Config policy_config;
      policy_config.message_budget = config.message_budget;
      return std::make_unique<CommBudgetedGrantPolicy>(config.max_lease,
                                                       policy_config);
    }
    case PolicyKind::kStorageBudget:
      break;
  }
  BudgetedGrantPolicy::Config policy_config;
  policy_config.storage_budget = config.storage_budget;
  return std::make_unique<BudgetedGrantPolicy>(config.max_lease, track_file,
                                               policy_config);
}

}  // namespace

DnscupAuthority::DnscupAuthority(server::AuthServer& server,
                                 net::EventLoop& loop, Config config)
    : server_(&server),
      loop_(&loop),
      config_(normalize(std::move(config))),
      track_file_(config_.metrics),
      policy_(make_policy(config_, &track_file_)),
      listener_(&track_file_, policy_.get(), config_.metrics),
      notifier_(&server.transport(), &loop, &track_file_,
                config_.notification) {
  auto& registry = metrics::resolve(config_.metrics);
  detection_stats_.change_events =
      registry.counter("detection_change_events");
  detection_stats_.rrsets_changed =
      registry.counter("detection_rrsets_changed");
  live_leases_ = registry.gauge("authority_live_leases");
  storage_budget_ = registry.gauge("authority_storage_budget");
  storage_budget_.set(static_cast<double>(config_.storage_budget));

  // Listening module: sees every query/response pair.
  server_->set_query_hook([this](const net::Endpoint& from,
                                 const dns::Message& query,
                                 dns::Message& response) {
    listener_.on_query(from, query, response, loop_->now());
  });

  // Detection module: every zone-data change (dynamic update, manual
  // reload, AXFR refresh) arrives here and fans out via the notifier.
  server_->add_change_listener(
      [this](const dns::Zone& zone,
             const std::vector<dns::RRsetChange>& changes) {
        ++detection_stats_.change_events;
        detection_stats_.rrsets_changed += changes.size();
        notifier_.on_zone_change(zone, changes);
        refresh_gauges();
      });

  // Notification module: consumes CACHE-UPDATE acknowledgements before
  // the server's normal dispatch.
  server_->set_extension_handler(
      [this](const net::Endpoint& from, const dns::Message& message) {
        return notifier_.on_message(from, message);
      });
}

DnscupAuthority::DetectionStats DnscupAuthority::detection_stats() const {
  return DetectionStats{
      .change_events = detection_stats_.change_events,
      .rrsets_changed = detection_stats_.rrsets_changed,
  };
}

void DnscupAuthority::refresh_gauges() {
  live_leases_.set(static_cast<double>(track_file_.live_count(loop_->now())));
  storage_budget_.set(static_cast<double>(config_.storage_budget));
}

}  // namespace dnscup::core

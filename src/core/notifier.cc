#include "core/notifier.h"

#include <algorithm>

#include "core/cache_update.h"
#include "util/assert.h"
#include "util/logging.h"

namespace dnscup::core {

NotificationModule::NotificationModule(net::Transport* transport,
                                       net::EventLoop* loop,
                                       TrackFile* track_file, Config config)
    : transport_(transport),
      loop_(loop),
      track_file_(track_file),
      config_(config) {
  DNSCUP_ASSERT(transport_ != nullptr && loop_ != nullptr &&
                track_file_ != nullptr);
  auto& registry = metrics::resolve(config.metrics);
  const metrics::Labels base{
      {"instance", registry.next_instance("notifier")}};
  auto labeled = [&](const char* key, const char* value) {
    metrics::Labels labels = base;
    labels.emplace_back(key, value);
    return labels;
  };
  stats_.changes_observed =
      registry.counter("cache_update_changes_observed", base);
  stats_.updates_sent =
      registry.counter("cache_update_messages", labeled("result", "sent"));
  stats_.retransmissions = registry.counter("cache_update_messages",
                                            labeled("result", "retransmit"));
  stats_.acks_received =
      registry.counter("cache_update_messages", labeled("result", "acked"));
  stats_.failures =
      registry.counter("cache_update_messages", labeled("result", "failed"));
  stats_.ack_latency_us = registry.histogram(
      "cache_update_ack_latency_us", base,
      metrics::HistogramOptions{0.0, 1'000'000.0, 20});
}

NotificationModule::Stats NotificationModule::stats() const {
  return Stats{
      .changes_observed = stats_.changes_observed,
      .updates_sent = stats_.updates_sent,
      .retransmissions = stats_.retransmissions,
      .acks_received = stats_.acks_received,
      .failures = stats_.failures,
      .ack_latency_us = stats_.ack_latency_us.moments(),
  };
}

void NotificationModule::on_zone_change(
    const dns::Zone& zone, const std::vector<dns::RRsetChange>& changes) {
  if (changes.empty()) return;
  ++stats_.changes_observed;
  const net::SimTime now = loop_->now();

  // Group the changed records by leaseholder so each cache gets one
  // message covering everything it leases.
  std::map<net::Endpoint, std::vector<const dns::RRsetChange*>> per_holder;
  for (const auto& change : changes) {
    for (const Lease& lease :
         track_file_->holders_of(change.name, change.type, now)) {
      per_holder[lease.holder].push_back(&change);
    }
  }

  for (const auto& [holder, holder_changes] : per_holder) {
    std::vector<dns::RRsetChange> batch;
    batch.reserve(holder_changes.size());
    for (const auto* c : holder_changes) batch.push_back(*c);

    uint16_t id = next_id_++;
    while (pending_.count(id) > 0 || id == 0) id = next_id_++;

    Pending pending;
    pending.target = holder;
    pending.message =
        encode_cache_update(id, zone.origin(), zone.serial(), batch);
    if (config_.authenticator != nullptr) {
      config_.authenticator->sign(pending.message);
    }
    pending.retries_left = config_.max_retries;
    pending.next_delay = config_.initial_retry_delay;
    pending.first_sent = now;
    for (const auto& c : batch) pending.covered.emplace_back(c.name, c.type);
    pending_.emplace(id, std::move(pending));
    ++stats_.updates_sent;
    transmit(id);
  }
}

void NotificationModule::transmit(uint16_t id) {
  Pending& pending = pending_.at(id);
  // Encode into the reusable scratch arena: during a lease-push storm
  // every fan-out transmission reuses the same buffer instead of
  // allocating a fresh vector per leaseholder.
  scratch_.clear();
  dns::ByteWriter w(scratch_);
  pending.message.encode_into(w);
  transport_->send(pending.target, w.message());
  pending.timer = loop_->schedule(pending.next_delay,
                                  [this, id] { on_retry_timer(id); });
}

void NotificationModule::on_retry_timer(uint16_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  if (pending.retries_left <= 0) {
    // Give up: revoke the affected leases so the cache degrades to TTL
    // rather than trusting a lease we can no longer service.
    for (const auto& [name, type] : pending.covered) {
      track_file_->revoke(pending.target, name, type);
    }
    ++stats_.failures;
    DNSCUP_LOG_WARN("notifier: giving up on CACHE-UPDATE %u to %s", id,
                    pending.target.to_string().c_str());
    pending_.erase(it);
    return;
  }
  --pending.retries_left;
  pending.next_delay = static_cast<net::Duration>(
      static_cast<double>(pending.next_delay) * config_.backoff_factor);
  ++stats_.retransmissions;
  transmit(id);
}

bool NotificationModule::on_message(const net::Endpoint& from,
                                    const dns::Message& message) {
  if (!is_cache_update_ack(message)) return false;
  auto it = pending_.find(message.id);
  if (it == pending_.end()) return true;  // duplicate ack; still consumed
  if (it->second.target != from) return true;  // not the addressee
  it->second.timer.cancel();
  ++stats_.acks_received;
  stats_.ack_latency_us.add(
      static_cast<double>(loop_->now() - it->second.first_sent));
  pending_.erase(it);
  return true;
}

}  // namespace dnscup::core

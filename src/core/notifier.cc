#include "core/notifier.h"

#include <algorithm>

#include "core/cache_update.h"
#include "util/assert.h"
#include "util/logging.h"

namespace dnscup::core {

NotificationModule::NotificationModule(net::Transport* transport,
                                       net::EventLoop* loop,
                                       TrackFile* track_file, Config config)
    : transport_(transport),
      loop_(loop),
      track_file_(track_file),
      config_(config) {
  DNSCUP_ASSERT(transport_ != nullptr && loop_ != nullptr &&
                track_file_ != nullptr);
  auto& registry = metrics::resolve(config.metrics);
  const metrics::Labels base{
      {"instance", registry.next_instance("notifier")}};
  auto labeled = [&](const char* key, const char* value) {
    metrics::Labels labels = base;
    labels.emplace_back(key, value);
    return labels;
  };
  stats_.changes_observed =
      registry.counter("cache_update_changes_observed", base);
  stats_.updates_sent =
      registry.counter("cache_update_messages", labeled("result", "sent"));
  stats_.retransmissions = registry.counter("cache_update_messages",
                                            labeled("result", "retransmit"));
  stats_.acks_received =
      registry.counter("cache_update_messages", labeled("result", "acked"));
  stats_.failures =
      registry.counter("cache_update_messages", labeled("result", "failed"));
  stats_.channel_sent = registry.counter("cache_update_messages",
                                         labeled("result", "sent_channel"));
  stats_.channel_coalesced = registry.counter("cache_update_messages",
                                              labeled("result", "coalesced"));
  stats_.channel_fallbacks = registry.counter("cache_update_messages",
                                              labeled("result", "fallback"));
  stats_.shutdown_flushed = registry.counter(
      "cache_update_messages", labeled("result", "shutdown_flush"));
  stats_.ack_latency_us = registry.histogram(
      "cache_update_ack_latency_us", base,
      metrics::HistogramOptions{0.0, 1'000'000.0, 20});
}

NotificationModule::Stats NotificationModule::stats() const {
  return Stats{
      .changes_observed = stats_.changes_observed,
      .updates_sent = stats_.updates_sent,
      .retransmissions = stats_.retransmissions,
      .acks_received = stats_.acks_received,
      .failures = stats_.failures,
      .channel_sent = stats_.channel_sent,
      .channel_coalesced = stats_.channel_coalesced,
      .channel_fallbacks = stats_.channel_fallbacks,
      .shutdown_flushed = stats_.shutdown_flushed,
      .ack_latency_us = stats_.ack_latency_us.moments(),
  };
}

void NotificationModule::on_zone_change(
    const dns::Zone& zone, const std::vector<dns::RRsetChange>& changes) {
  if (changes.empty()) return;
  ++stats_.changes_observed;
  const net::SimTime now = loop_->now();

  // Group the changed records by leaseholder so each cache gets one
  // message covering everything it leases.
  std::map<net::Endpoint, std::vector<const dns::RRsetChange*>> per_holder;
  for (const auto& change : changes) {
    for (const Lease& lease :
         track_file_->holders_of(change.name, change.type, now)) {
      per_holder[lease.holder].push_back(&change);
    }
  }

  for (const auto& [holder, holder_changes] : per_holder) {
    std::vector<dns::RRsetChange> batch;
    batch.reserve(holder_changes.size());
    for (const auto* c : holder_changes) batch.push_back(*c);

    uint16_t id = next_id_++;
    while (pending_.count(id) > 0 || id == 0) id = next_id_++;

    Pending pending;
    pending.target = holder;
    pending.message =
        encode_cache_update(id, zone.origin(), zone.serial(), batch);
    if (config_.authenticator != nullptr) {
      config_.authenticator->sign(pending.message);
    }
    pending.retries_left = config_.max_retries;
    pending.next_delay = config_.initial_retry_delay;
    pending.first_sent = now;
    for (const auto& c : batch) pending.covered.emplace_back(c.name, c.type);

    // Prefer the connection-oriented push plane: the payload bytes are
    // identical either way, but the channel paces delivery, coalesces
    // superseded serials and acks in-band.  The channel-ack deadline is
    // the safety net — a dropped resolution simply degrades to the UDP
    // retransmit schedule.
    if (config_.push_writer != nullptr) {
      PushWriter::Item item;
      item.holder = holder;
      item.id = id;
      item.zone = zone.origin();
      item.serial = zone.serial();
      item.covered = pending.covered;
      scratch_.clear();
      dns::ByteWriter w(scratch_);
      pending.message.encode_into(w);
      const auto bytes = w.message();
      item.message.assign(bytes.begin(), bytes.end());
      if (config_.push_writer->try_push(std::move(item))) {
        pending.via_channel = true;
        pending.timer = loop_->schedule(config_.channel_ack_timeout,
                                        [this, id] { on_channel_timeout(id); });
        pending_.emplace(id, std::move(pending));
        ++stats_.channel_sent;
        continue;
      }
    }

    pending_.emplace(id, std::move(pending));
    ++stats_.updates_sent;
    transmit(id);
  }
}

void NotificationModule::transmit(uint16_t id) {
  Pending& pending = pending_.at(id);
  // Encode into the reusable scratch arena: during a lease-push storm
  // every fan-out transmission reuses the same buffer instead of
  // allocating a fresh vector per leaseholder.
  scratch_.clear();
  dns::ByteWriter w(scratch_);
  pending.message.encode_into(w);
  transport_->send(pending.target, w.message());
  pending.timer = loop_->schedule(pending.next_delay,
                                  [this, id] { on_retry_timer(id); });
}

void NotificationModule::on_retry_timer(uint16_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  if (pending.retries_left <= 0) {
    // Give up: revoke the affected leases so the cache degrades to TTL
    // rather than trusting a lease we can no longer service.
    for (const auto& [name, type] : pending.covered) {
      track_file_->revoke(pending.target, name, type);
    }
    ++stats_.failures;
    DNSCUP_LOG_WARN("notifier: giving up on CACHE-UPDATE %u to %s", id,
                    pending.target.to_string().c_str());
    pending_.erase(it);
    return;
  }
  --pending.retries_left;
  pending.next_delay = static_cast<net::Duration>(
      static_cast<double>(pending.next_delay) * config_.backoff_factor);
  ++stats_.retransmissions;
  transmit(id);
}

void NotificationModule::on_channel_resolution(uint16_t id,
                                               ChannelResolution resolution) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // already settled (e.g. late + UDP ack)
  Pending& pending = it->second;
  switch (resolution) {
    case ChannelResolution::kAcked:
      // Accept even after a UDP fallback began: an ack is an ack.
      pending.timer.cancel();
      ++stats_.acks_received;
      stats_.ack_latency_us.add(
          static_cast<double>(loop_->now() - pending.first_sent));
      pending_.erase(it);
      return;
    case ChannelResolution::kCoalesced:
      if (!pending.via_channel) return;  // already on the UDP path
      // A newer serial covering the same records is queued behind this
      // one, so retiring it loses nothing — and must NOT revoke leases.
      pending.timer.cancel();
      ++stats_.channel_coalesced;
      pending_.erase(it);
      return;
    case ChannelResolution::kFailed:
      if (!pending.via_channel) return;
      pending.timer.cancel();
      fall_back_to_udp(id);
      return;
  }
}

void NotificationModule::on_channel_timeout(uint16_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end() || !it->second.via_channel) return;
  fall_back_to_udp(id);
}

void NotificationModule::fall_back_to_udp(uint16_t id) {
  Pending& pending = pending_.at(id);
  pending.via_channel = false;
  ++stats_.channel_fallbacks;
  transmit(id);  // full retry budget is still intact
}

std::size_t NotificationModule::flush_pending() {
  // One last wire copy of everything still in flight — channel-queued or
  // awaiting a UDP retry — so shutdown does not silently strand updates.
  // The cache either acks into the void (harmless) or at least hears the
  // freshest data before our retransmit machinery goes away.
  const std::size_t flushed = pending_.size();
  for (auto& [id, pending] : pending_) {
    pending.timer.cancel();
    scratch_.clear();
    dns::ByteWriter w(scratch_);
    pending.message.encode_into(w);
    transport_->send(pending.target, w.message());
    ++stats_.shutdown_flushed;
  }
  pending_.clear();
  return flushed;
}

bool NotificationModule::on_message(const net::Endpoint& from,
                                    const dns::Message& message) {
  if (!is_cache_update_ack(message)) return false;
  auto it = pending_.find(message.id);
  if (it == pending_.end()) return true;  // duplicate ack; still consumed
  if (it->second.target != from) return true;  // not the addressee
  it->second.timer.cancel();
  ++stats_.acks_received;
  stats_.ack_latency_us.add(
      static_cast<double>(loop_->now() - it->second.first_sent));
  pending_.erase(it);
  return true;
}

}  // namespace dnscup::core

#include "core/listener.h"

namespace dnscup::core {

ListeningModule::ListeningModule(TrackFile* track_file, GrantPolicy* policy,
                                 metrics::MetricsRegistry* metrics)
    : track_file_(track_file), policy_(policy) {
  auto& registry = metrics::resolve(metrics);
  const metrics::Labels base{
      {"instance", registry.next_instance("listener")}};
  auto labeled = [&](const char* key, const char* value) {
    metrics::Labels labels = base;
    labels.emplace_back(key, value);
    return labels;
  };
  stats_.ext_queries =
      registry.counter("listener_queries", labeled("kind", "ext"));
  stats_.legacy_queries =
      registry.counter("listener_queries", labeled("kind", "legacy"));
  stats_.leases_granted = registry.counter("listener_lease_decisions",
                                           labeled("result", "granted"));
  stats_.leases_denied = registry.counter("listener_lease_decisions",
                                          labeled("result", "denied"));
  // Estimator-state occupancy: the tracker self-prunes idle keys under
  // traffic; this gauge is how a 10M-pair authority watches that working.
  observed_.set_keys_gauge(
      registry.gauge("listener_rate_tracker_keys", base));
}

ListeningModule::Stats ListeningModule::stats() const {
  return Stats{
      .ext_queries = stats_.ext_queries,
      .legacy_queries = stats_.legacy_queries,
      .leases_granted = stats_.leases_granted,
      .leases_denied = stats_.leases_denied,
  };
}

void ListeningModule::on_query(const net::Endpoint& from,
                               const dns::Message& query,
                               dns::Message& response, net::SimTime now) {
  if (query.questions.size() != 1) return;
  const dns::Question& q = query.questions[0];
  observed_.record(q.qname, q.qtype, now);

  if (!query.flags.ext) {
    ++stats_.legacy_queries;
    return;  // TTL-only cache; nothing to negotiate
  }
  ++stats_.ext_queries;

  // Lease only positive authoritative answers to the question itself.
  if (response.flags.rcode != dns::Rcode::kNoError || !response.flags.aa ||
      response.answers.empty()) {
    return;
  }

  const double reported = dns::rrc_to_rate(q.rrc);
  const GrantDecision decision =
      policy_->decide(q.qname, q.qtype, from, reported, now);
  if (!decision.grant) {
    ++stats_.leases_denied;
    return;
  }
  track_file_->grant(from, q.qname, q.qtype, now, decision.length);
  ++stats_.leases_granted;
  response.flags.ext = true;
  response.llt = dns::llt_from_seconds(
      static_cast<uint64_t>(net::to_seconds(decision.length)));
}

void ListeningModule::on_query_view(const dns::NameView& qname,
                                    dns::RRType qtype, net::SimTime now) {
  observed_.record_view(qname, qtype, now);
  ++stats_.legacy_queries;
}

}  // namespace dnscup::core

// The lease-length effectiveness model of paper §4.1.
//
// Queries from a DNS cache for one record arrive Poisson with rate λ.  The
// authority grants a lease of length t at each query arriving with no live
// lease, so lease periods of length t alternate with idle gaps of mean 1/λ:
//
//   P(t, λ) = t / (t + 1/λ)   expected probability a lease is live
//                             (the per-(record,cache) storage cost), and
//   M(t, λ) = 1 / (t + 1/λ)   lease-renewal message rate.
//
// Increasing a lease from t1 to t2 trades storage for messages at the
// fixed exchange rate ΔM/ΔP = λ (§4.1) — which is why both greedy
// optimizers in dynamic_lease.h rank caches by query rate.
#pragma once

#include "util/assert.h"

namespace dnscup::core {

/// Expected probability that the authority holds a live lease.
/// t in seconds, rate in queries/second.  t <= 0 yields 0 (no lease).
inline double lease_probability(double t, double rate) {
  DNSCUP_ASSERT(rate > 0.0);
  if (t <= 0.0) return 0.0;
  return t / (t + 1.0 / rate);
}

/// Lease-renewal message rate (messages/second) under lease length t.
/// t <= 0 degenerates to polling: every query goes to the authority.
inline double renewal_rate(double t, double rate) {
  DNSCUP_ASSERT(rate > 0.0);
  if (t <= 0.0) return rate;
  return 1.0 / (t + 1.0 / rate);
}

/// Lease length achieving a target lease probability p in [0, 1).
/// Inverse of lease_probability in t.
inline double lease_length_for_probability(double p, double rate) {
  DNSCUP_ASSERT(rate > 0.0);
  DNSCUP_ASSERT(p >= 0.0 && p < 1.0);
  if (p <= 0.0) return 0.0;
  return p / (rate * (1.0 - p));
}

/// The §4.1 invariant: message-rate reduction per unit of storage increase
/// when growing a lease, which equals the query rate for any t1 < t2.
inline double message_per_storage_ratio(double rate) { return rate; }

}  // namespace dnscup::core

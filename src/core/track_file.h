// The DNScup track file (paper §4, §5.2): the authoritative nameserver's
// record of which DNS caches hold live leases on which resource records.
//
// Each tuple carries the five fields of the prototype's database file:
// source address, queried name, query type, query (grant) time and lease
// length.  Expired leases are pruned lazily; the text serialization matches
// the prototype's on-disk track file and round-trips through parse().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rdata.h"
#include "net/endpoint.h"
#include "net/time.h"
#include "util/metrics.h"
#include "util/result.h"

namespace dnscup::core {

class StateJournal;  // persistence.h — durable-store hook

struct Lease {
  net::Endpoint holder;       ///< the DNS cache (local nameserver)
  dns::Name name;
  dns::RRType type = dns::RRType::kA;
  net::SimTime granted_at = 0;
  net::Duration length = 0;

  net::SimTime expiry() const { return granted_at + length; }
  bool valid(net::SimTime now) const { return now < expiry(); }
};

class TrackFile {
 public:
  struct Stats {
    uint64_t grants = 0;
    uint64_t renewals = 0;
    uint64_t revocations = 0;
    uint64_t pruned = 0;
  };

  /// Lease-op counters register in `metrics` (default_registry() when
  /// null) under track_file_* with a per-instance label.
  explicit TrackFile(metrics::MetricsRegistry* metrics = nullptr);

  /// Attaches a durable-state journal (persistence.h); every grant,
  /// revoke and non-empty prune is recorded through it.  Not owned; null
  /// detaches.  restore() bypasses the journal — recovered leases already
  /// live in the store.
  void set_journal(StateJournal* journal) { journal_ = journal; }

  /// Grants or renews a lease; renewal restarts the term at `now`.
  void grant(const net::Endpoint& holder, const dns::Name& name,
             dns::RRType type, net::SimTime now, net::Duration length);

  /// Re-inserts a lease recovered from the durable store: no stats
  /// counting, no journaling — the tuple is already persistent.
  void restore(const Lease& lease);

  /// The lease a holder has on (name, type), expired or not.
  const Lease* find(const net::Endpoint& holder, const dns::Name& name,
                    dns::RRType type) const;

  /// All holders with *valid* leases on (name, type) — the notification
  /// fan-out set for a change to that record.
  std::vector<Lease> holders_of(const dns::Name& name, dns::RRType type,
                                net::SimTime now) const;

  /// All valid leases held by one cache.
  std::vector<Lease> leases_of(const net::Endpoint& holder,
                               net::SimTime now) const;

  bool revoke(const net::Endpoint& holder, const dns::Name& name,
              dns::RRType type);

  /// Drops expired leases; returns how many were removed.
  std::size_t prune(net::SimTime now);

  /// Number of valid leases at `now` — the authority's storage usage,
  /// the quantity the storage-constrained algorithm budgets.
  std::size_t live_count(net::SimTime now) const;

  /// Total tuples including expired-but-unpruned.
  std::size_t size() const;

  /// Value snapshot of the registry-backed counters.
  Stats stats() const;

  /// One "address name type grant_time_us length_us" line per valid lease.
  std::string serialize(net::SimTime now) const;
  /// Parses serialize() output.  Malformed lines and duplicate
  /// (holder, name, type) tuples are hard errors, not silent skips: a
  /// track file is authoritative state, and a duplicate means two grant
  /// times for one lease with no way to know which is real.
  static util::Result<TrackFile> parse(std::string_view text);

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, holders] : leases_) {
      for (const auto& [holder, lease] : holders) fn(lease);
    }
  }

 private:
  struct Key {
    dns::Name name;
    dns::RRType type;
    bool operator<(const Key& other) const {
      if (name < other.name) return true;
      if (other.name < name) return false;
      return type < other.type;
    }
  };

  struct Instruments {
    metrics::Counter grants;
    metrics::Counter renewals;
    metrics::Counter revocations;
    metrics::Counter pruned;
  };

  std::map<Key, std::map<net::Endpoint, Lease>> leases_;
  Instruments stats_;
  StateJournal* journal_ = nullptr;
};

}  // namespace dnscup::core

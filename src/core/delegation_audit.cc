#include "core/delegation_audit.h"

#include <algorithm>

#include "util/assert.h"

namespace dnscup::core {

using dns::Name;
using dns::RRset;
using dns::RRType;
using dns::Zone;

const char* to_string(DelegationIssue issue) {
  switch (issue) {
    case DelegationIssue::kNoDelegation: return "no-delegation";
    case DelegationIssue::kMissingAtParent: return "missing-at-parent";
    case DelegationIssue::kStaleAtParent: return "stale-at-parent";
    case DelegationIssue::kMissingGlue: return "missing-glue";
    case DelegationIssue::kGlueMismatch: return "glue-mismatch";
  }
  return "?";
}

namespace {

std::vector<Name> ns_targets(const RRset* set) {
  std::vector<Name> out;
  if (set == nullptr) return out;
  for (const auto& rd : set->rdatas) {
    out.push_back(std::get<dns::NSRdata>(rd).nsdname);
  }
  return out;
}

bool contains_name(const std::vector<Name>& names, const Name& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

std::vector<DelegationFinding> audit_delegation(const Zone& parent,
                                                const Zone& child) {
  DNSCUP_ASSERT(child.origin().is_subdomain_of(parent.origin()));
  std::vector<DelegationFinding> findings;

  const auto parent_ns = ns_targets(parent.find(child.origin(), RRType::kNS));
  const auto child_ns = ns_targets(child.find(child.origin(), RRType::kNS));

  if (parent_ns.empty()) {
    findings.push_back({DelegationIssue::kNoDelegation, child.origin(),
                        "parent holds no NS records for the child zone"});
    return findings;
  }

  for (const Name& ns : child_ns) {
    if (!contains_name(parent_ns, ns)) {
      findings.push_back({DelegationIssue::kMissingAtParent, ns,
                          "child apex lists this NS; parent does not"});
    }
  }
  for (const Name& ns : parent_ns) {
    if (!contains_name(child_ns, ns)) {
      findings.push_back({DelegationIssue::kStaleAtParent, ns,
                          "parent lists this NS; child apex does not"});
    }
  }

  // Glue checks for NS targets living at or below the child zone cut
  // (these are unreachable without parent glue).
  for (const Name& ns : parent_ns) {
    if (!ns.is_subdomain_of(child.origin())) continue;
    const RRset* glue = parent.find(ns, RRType::kA);
    if (glue == nullptr || glue->empty()) {
      findings.push_back({DelegationIssue::kMissingGlue, ns,
                          "in-zone NS target lacks an A record at parent"});
      continue;
    }
    const RRset* actual = child.find(ns, RRType::kA);
    if (actual != nullptr && !glue->same_data(*actual)) {
      findings.push_back({DelegationIssue::kGlueMismatch, ns,
                          "parent glue disagrees with the child's A RRset"});
    }
  }
  return findings;
}

DelegationGuard::DelegationGuard(server::AuthServer& parent,
                                 server::AuthServer& child,
                                 Name child_origin)
    : parent_(&parent), child_origin_(std::move(child_origin)) {
  child.add_change_listener(
      [this](const Zone& zone, const std::vector<dns::RRsetChange>&) {
        if (zone.origin() == child_origin_) sync_from(zone);
      });
  // Initial alignment from the child's current contents.
  const Zone* zone = child.find_zone(child_origin_);
  if (zone != nullptr && zone->origin() == child_origin_) sync_from(*zone);
}

void DelegationGuard::sync_from(const Zone& child_zone) {
  Zone* parent_zone = parent_->find_zone(child_origin_);
  if (parent_zone == nullptr ||
      parent_zone->origin() == child_origin_) {
    return;  // not actually the parent of this child
  }

  const RRset* apex_ns = child_zone.find(child_origin_, RRType::kNS);
  if (apex_ns == nullptr) return;

  bool changed = false;
  // Rewrite the delegation NS set.
  const RRset* current = parent_zone->find(child_origin_, RRType::kNS);
  if (current == nullptr || !current->same_data(*apex_ns)) {
    RRset replacement = *apex_ns;
    replacement.name = child_origin_;
    parent_zone->put(std::move(replacement));
    changed = true;
  }
  // Refresh glue for in-zone NS targets.
  for (const auto& rd : apex_ns->rdatas) {
    const Name& ns = std::get<dns::NSRdata>(rd).nsdname;
    if (!ns.is_subdomain_of(child_origin_)) continue;
    const RRset* address = child_zone.find(ns, RRType::kA);
    if (address == nullptr) continue;
    const RRset* glue = parent_zone->find(ns, RRType::kA);
    if (glue == nullptr || !glue->same_data(*address)) {
      RRset fresh = *address;
      parent_zone->put(std::move(fresh));
      changed = true;
    }
  }
  if (changed) {
    parent_zone->bump_serial();
    ++syncs_;
  }
}

}  // namespace dnscup::core

// Track-file sharding (the seam the multi-worker runtime partitions on).
//
// The authority's hard state — the lease tuples of the track file — is
// keyed by (holder, name, type).  shard_of() maps such a key onto one of N
// shards with a stable FNV-1a hash, giving three properties the runtime
// and its tests rely on:
//
//  * stability: the mapping depends only on the key bytes, never on
//    process layout, so recovery partitions a durable lease set the same
//    way on every start;
//  * doubling compatibility: shard_of(k, 2N) % N == shard_of(k, N), i.e.
//    going from N to 2N workers either keeps a key in place or moves it to
//    shard(old + N) — resharding moves only the expected keys;
//  * holder affinity (per shard count): all leases of one holder endpoint
//    still spread by name, but any single (holder, name, type) tuple lives
//    in exactly one shard, so grant/renew/revoke for a tuple is always a
//    single-writer operation.
//
// Live traffic under SO_REUSEPORT is placed by the kernel's flow hash
// (per holder socket), not by shard_of(); shard_of() governs recovered
// state and the per-worker-port fallback.  A tuple that migrates between
// the two placements is benign: CACHE-UPDATE is idempotent, and the
// single-writer journal dedupes by key.
#pragma once

#include <cctype>
#include <cstdint>
#include <vector>

#include "core/persistence.h"
#include "core/track_file.h"

namespace dnscup::core {

/// Stable 64-bit FNV-1a over the lease key bytes.  Name labels hash via
/// their canonical (lower-cased) text so equal names always collide.
inline uint64_t shard_hash(const net::Endpoint& holder, const dns::Name& name,
                           dns::RRType type) {
  constexpr uint64_t kOffset = 1469598103934665603ull;
  constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t h = kOffset;
  auto mix = [&h](uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= kPrime;
    }
  };
  mix(holder.ip, 4);
  mix(holder.port, 2);
  const std::string text = name.to_string();
  for (const char c : text) {
    // Names compare case-insensitively, so equal names must hash equally.
    h ^= static_cast<uint8_t>(
        std::tolower(static_cast<unsigned char>(c)));
    h *= kPrime;
  }
  mix(static_cast<uint64_t>(type), 2);
  return h;
}

/// Shard index in [0, shards) for a lease key; shards must be >= 1.
inline std::size_t shard_of(const net::Endpoint& holder,
                            const dns::Name& name, dns::RRType type,
                            std::size_t shards) {
  return static_cast<std::size_t>(shard_hash(holder, name, type) % shards);
}

inline std::size_t shard_of(const Lease& lease, std::size_t shards) {
  return shard_of(lease.holder, lease.name, lease.type, shards);
}

/// Splits a recovered state into per-shard states: leases partition by
/// shard_of(); the zone-serial map (cross-shard by nature) is replicated
/// so every shard's authority can detect missed zone changes for its own
/// leaseholders.  Recovery telemetry stays on shard 0 to avoid
/// double-counting when reports are summed.
inline std::vector<RecoveredState> partition_recovered(
    const RecoveredState& state, std::size_t shards) {
  std::vector<RecoveredState> parts(shards);
  for (RecoveredState& part : parts) {
    part.zone_serials = state.zone_serials;
    part.snapshot_lsn = state.snapshot_lsn;
  }
  if (!parts.empty()) {
    parts[0].replayed_records = state.replayed_records;
    parts[0].torn_records = state.torn_records;
    parts[0].duration_us = state.duration_us;
  }
  for (const Lease& lease : state.leases) {
    parts[shard_of(lease, shards)].leases.push_back(lease);
  }
  return parts;
}

}  // namespace dnscup::core

#include "core/cache_update.h"

#include "util/assert.h"

namespace dnscup::core {

using dns::Message;
using dns::Name;
using dns::Opcode;
using dns::Question;
using dns::Rcode;
using dns::ResourceRecord;
using dns::RRClass;
using dns::RRset;
using dns::RRType;

Message encode_cache_update(uint16_t id, const Name& zone, uint32_t serial,
                            const std::vector<dns::RRsetChange>& changes) {
  Message m;
  m.id = id;
  m.flags.opcode = Opcode::kCacheUpdate;
  m.questions.push_back(Question{zone, RRType::kSOA, RRClass::kIN, 0});

  for (const auto& change : changes) {
    if (change.after.has_value()) {
      for (auto& rec : change.after->to_records()) {
        m.answers.push_back(std::move(rec));
      }
    } else {
      ResourceRecord stub;
      stub.name = change.name;
      stub.rrclass = RRClass::kANY;
      stub.ttl = 0;
      stub.rdata =
          dns::GenericRdata{static_cast<uint16_t>(change.type), {}};
      m.authority.push_back(std::move(stub));
    }
  }

  // Zone serial rides as an SOA skeleton in the additional section.
  dns::SOARdata soa;
  soa.serial = serial;
  m.additional.push_back(
      ResourceRecord{zone, RRClass::kIN, 0, std::move(soa)});
  return m;
}

util::Result<CacheUpdate> parse_cache_update(const Message& message) {
  if (message.flags.opcode != Opcode::kCacheUpdate || message.flags.qr) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "not a CACHE-UPDATE request");
  }
  if (message.questions.size() != 1 ||
      message.questions[0].qtype != RRType::kSOA) {
    return util::make_error(util::ErrorCode::kMalformed,
                            "CACHE-UPDATE needs a single zone question");
  }
  CacheUpdate update;
  update.zone = message.questions[0].qname;

  for (const auto& rr : message.additional) {
    if (const auto* soa = std::get_if<dns::SOARdata>(&rr.rdata)) {
      update.serial = soa->serial;
    }
  }

  // Group answer records into RRsets.
  for (const auto& rr : message.answers) {
    if (!rr.name.is_subdomain_of(update.zone)) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "updated record outside the zone");
    }
    RRset* target = nullptr;
    for (auto& set : update.updated) {
      if (set.type == rr.type() && set.name == rr.name) {
        target = &set;
        break;
      }
    }
    if (target == nullptr) {
      update.updated.push_back(RRset{rr.name, rr.type(), rr.rrclass,
                                     rr.ttl, {}});
      target = &update.updated.back();
    }
    target->add(rr.rdata);
  }

  for (const auto& rr : message.authority) {
    if (rr.rrclass != RRClass::kANY) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "removal stub must be class ANY");
    }
    if (!rr.name.is_subdomain_of(update.zone)) {
      return util::make_error(util::ErrorCode::kMalformed,
                              "removed record outside the zone");
    }
    update.removed.emplace_back(rr.name, rr.type());
  }
  return update;
}

Message make_cache_update_ack(const Message& update) {
  DNSCUP_ASSERT(update.flags.opcode == Opcode::kCacheUpdate);
  Message ack;
  ack.id = update.id;
  ack.flags.qr = true;
  ack.flags.opcode = Opcode::kCacheUpdate;
  ack.flags.rcode = Rcode::kNoError;
  ack.questions = update.questions;
  return ack;
}

bool is_cache_update_ack(const Message& message) {
  return message.flags.qr &&
         message.flags.opcode == Opcode::kCacheUpdate;
}

}  // namespace dnscup::core
